// trace_vta — observe a Virtual Target Architecture model with a VCD trace
// and a Chrome trace-event JSON side by side.
//
// Builds a small VTA scene (four masters sharing an OPB bus + a guarded
// Shared Object) and runs a monitor process that samples bus occupancy, the
// number of queued masters and the object's queue into a VCD file, viewable
// with any waveform viewer (gtkwave etc.).  With the obs tracer armed, the
// same run also emits vta_trace.trace.json (open in https://ui.perfetto.dev):
// one wall-clock span per process activation plus simulated-time counter
// tracks — the host-profiling view the VCD cannot give.
#include <obs/trace.hpp>
#include <osss/osss.hpp>
#include <sim/sim.hpp>

#include <cstdio>

namespace {

struct job_queue {
    int jobs = 0;
};

}  // namespace

int main()
{
    obs::tracer::instance().set_enabled(true);
    obs::tracer::instance().set_thread_name("sim-main");

    sim::kernel k;
    const sim::time clk = sim::time::ns(10);

    osss::opb_bus bus{"opb", clk};
    osss::shared_object<job_queue> so{"jobs", osss::scheduling_policy::round_robin};
    osss::object_socket<job_queue> sock{so};

    sim::vcd_writer vcd{"vta_trace.vcd", "vta"};
    const int v_bus_busy = vcd.add_variable("opb_busy", 1);
    const int v_bus_pend = vcd.add_variable("opb_pending", 8);
    const int v_jobs = vcd.add_variable("job_queue", 8);
    const int v_grants = vcd.add_variable("bus_grants", 16);
    vcd.start();

    // Four producers hammer the Shared Object through the bus with payloads
    // of different sizes and phases.
    for (int m = 0; m < 4; ++m) {
        auto port = osss::service_port<job_queue>::rmi(
            sock, "producer_" + std::to_string(m), bus, m);
        k.spawn([](osss::service_port<job_queue> p, int id) -> sim::process {
            for (int i = 0; i < 20; ++i) {
                co_await sim::delay(sim::time::us(1 + id));
                auto push = [](job_queue& q) { ++q.jobs; };
                co_await p.call(static_cast<std::size_t>(256 << id), 8, push);
            }
        }(port, m), "producer");
    }
    // One consumer drains the queue through a guarded call.
    {
        auto port = osss::service_port<job_queue>::rmi(sock, "consumer", bus, 9);
        k.spawn([](osss::service_port<job_queue> p) -> sim::process {
            for (int i = 0; i < 80; ++i) {
                auto ready = [](const job_queue& q) { return q.jobs > 0; };
                auto pop = [](job_queue& q) { --q.jobs; };
                co_await p.call_when(8, 64, ready, pop);
            }
        }(port), "consumer");
    }
    // Monitor: samples every 100 ns into the VCD.
    k.spawn([](sim::kernel& kr, osss::opb_bus& b, osss::shared_object<job_queue>& q,
               sim::vcd_writer& w, int vb, int vp, int vj, int vg) -> sim::process {
        for (int i = 0; i < 4000; ++i) {
            w.record(vb, b.busy() ? 1 : 0, kr.now());
            w.record(vp, b.pending_masters(), kr.now());
            w.record(vj, static_cast<std::uint64_t>(q.object().jobs), kr.now());
            w.record(vg, b.arbitration().grants, kr.now());
            co_await sim::delay(sim::time::ns(100));
        }
    }(k, bus, so, vcd, v_bus_busy, v_bus_pend, v_jobs, v_grants), "monitor");

    const sim::time end = k.run(sim::time::us(400));
    std::printf("simulated %s:\n", end.str().c_str());
    std::printf("  bus: %llu transactions, %llu beats, busy %s, wait %s\n",
                static_cast<unsigned long long>(bus.stats().transactions),
                static_cast<unsigned long long>(bus.stats().data_beats),
                bus.stats().busy_time.str().c_str(), bus.stats().wait_time.str().c_str());
    std::printf("  shared object: %llu calls\n",
                static_cast<unsigned long long>(so.total_calls()));
    vcd.flush();
    std::printf("  waveform written to vta_trace.vcd\n");
    const std::size_t evs = obs::tracer::instance().write_json_file("vta_trace.trace.json");
    std::printf("  %zu span/counter events written to vta_trace.trace.json\n", evs);
    return 0;
}
