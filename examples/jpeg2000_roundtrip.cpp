// jpeg2000_roundtrip — the codec library on its own: encode an image in both
// modes, decode it in one shot and stage by stage, report sizes and quality.
#include <j2k/j2k.hpp>

#include <cstdio>

int main()
{
    const j2k::image img = j2k::make_test_image(256, 256, 3);
    std::printf("input: %dx%d, %d components, %d bpp (%zu bytes raw)\n", img.width(),
                img.height(), img.components(), img.bit_depth(),
                static_cast<std::size_t>(img.width()) * img.height() * img.components());

    // ---- lossless (5/3 reversible) ----
    j2k::codec_params lossless;
    lossless.mode = j2k::wavelet::w5_3;
    lossless.tile_width = 64;
    lossless.tile_height = 64;
    const auto cs_ll = j2k::encode(img, lossless);
    const j2k::image out_ll = j2k::decode(cs_ll);
    std::printf("\nlossless: %zu bytes (%.2f:1), exact: %s\n", cs_ll.size(),
                static_cast<double>(img.width()) * img.height() * img.components() /
                    static_cast<double>(cs_ll.size()),
                out_ll == img ? "yes" : "NO");

    // ---- lossy (9/7 irreversible) at a few rates ----
    std::printf("\nlossy rate/quality sweep:\n");
    for (double step : {1.0 / 256, 1.0 / 64, 1.0 / 16}) {
        j2k::codec_params lossy = lossless;
        lossy.mode = j2k::wavelet::w9_7;
        lossy.quant.base_step = step;
        const auto cs = j2k::encode(img, lossy);
        const auto out = j2k::decode(cs);
        std::printf("  base step 1/%-4.0f  %7zu bytes (%5.2f:1)   PSNR %5.2f dB\n",
                    1.0 / step, cs.size(),
                    static_cast<double>(img.width()) * img.height() * img.components() /
                        static_cast<double>(cs.size()),
                    j2k::psnr(img, out));
    }

    // ---- staged decoding (the structure the OSSS models build on) ----
    std::printf("\nstaged decode of the lossless stream:\n");
    j2k::decoder dec{cs_ll};
    j2k::decode_stats stats;
    j2k::image assembled{dec.info().width, dec.info().height, dec.info().components,
                         dec.info().bit_depth};
    const auto grid = dec.tiles();
    for (int t = 0; t < dec.tile_count(); ++t) {
        const auto coeffs = dec.entropy_decode(t, &stats.t1);  // MQ + tier-1
        const auto wavelet = dec.dequantize(coeffs);           // IQ
        const auto pixels = dec.idwt(wavelet);                 // IDWT
        for (int c = 0; c < dec.info().components; ++c)
            j2k::insert_tile(assembled.comp(c), pixels.comps[static_cast<std::size_t>(c)],
                             grid[static_cast<std::size_t>(t)]);
    }
    dec.finish(assembled);  // ICT + DC shift
    std::printf("  %d tiles, %llu MQ decisions, staged == one-shot: %s\n",
                dec.tile_count(),
                static_cast<unsigned long long>(stats.t1.mq_decisions),
                assembled == out_ll ? "yes" : "NO");

    // ---- scalability: the decoder's two complexity knobs ----
    std::printf("\nscalability:\n");
    for (int d = 1; d <= 2; ++d) {
        const auto small = dec.decode_reduced(d);
        std::printf("  resolution 1/%d: %dx%d\n", 1 << d, small.width(), small.height());
    }
    dec.set_max_passes(8);
    const auto coarse = dec.decode_all();
    std::printf("  8 coding passes: PSNR %.1f dB at a fraction of the MQ work\n",
                j2k::psnr(img, coarse));
    dec.set_max_passes(0);
    return assembled == out_ll && out_ll == img ? 0 : 1;
}
