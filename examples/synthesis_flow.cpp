// synthesis_flow — Figure 4 of the paper as a program: take the OSSS IDWT
// models through the FOSSY pipeline, write the generated VHDL and the EDK
// platform files (MHS/MSS) to disk, and print the synthesis summary.
#include <decoder/decoder.hpp>
#include <fossy/fossy.hpp>

#include <cstdio>
#include <fstream>

namespace {

void write_file(const std::string& path, const std::string& text)
{
    std::ofstream out{path};
    out << text;
    std::printf("  wrote %-28s (%zu lines)\n", path.c_str(),
                fossy::line_count(text));
}

}  // namespace

int main()
{
    using namespace fossy;
    std::printf("=== FOSSY synthesis flow (SystemC/OSSS -> VHDL + EDK platform) ===\n");

    // 1. Hardware synthesis: OSSS IDWT models -> inlined single-FSM VHDL.
    std::printf("\n[1] high-level synthesis\n");
    for (const entity& src : {idwt53_osss_source(), idwt97_osss_source()}) {
        synthesis_report rep;
        const entity gen = run_fossy(src, &rep);
        const area_report area = estimate_virtex4(gen);
        std::printf("  %s: %zu call sites inlined, %zu states, %zu ops\n",
                    src.name.c_str(), rep.call_sites_inlined, gen.total_states(),
                    gen.total_ops());
        std::printf("    -> %ld FF, %ld LUT, %ld slices, est. %.0f MHz\n", area.slice_ff,
                    area.lut4, area.occupied_slices, area.fmax_mhz);
        write_file(gen.name + "_fossy.vhd", emit_vhdl(gen));
    }

    // 2. Platform generation for the chosen VTA mapping (model 7b).
    // Timing closure on the 9/7 (its shared-multiplier chains miss 100 MHz).
    std::printf("\n[1b] timing closure (retiming to the 100 MHz system clock)\n");
    {
        const entity gen = run_fossy(idwt97_osss_source());
        const double budget = chain_budget_ns(105.0, gen.total_states() * 3);
        const entity timed = retime(gen, budget);
        std::printf("  idwt97: %.0f MHz -> %.0f MHz (%zu -> %zu states)\n",
                    estimate_virtex4(gen).fmax_mhz, estimate_virtex4(timed).fmax_mhz,
                    gen.total_states(), timed.total_states());
    }

    std::printf("\n[2] platform generation (EDK project files)\n");
    const osss::design d = decoder::describe_model(decoder::model_version::v7b);
    write_file("system.mhs", generate_mhs(d));
    write_file("system.mss", generate_mss(d));
    write_file("arith_dec_0.c", generate_sw_source(d, "arith_dec_0"));

    // 3. Utilisation check against the target device.
    std::printf("\n[3] device utilisation (xc4vlx25)\n");
    const device_model dev;
    const auto a53 = estimate_virtex4(run_fossy(idwt53_osss_source()));
    const auto a97 = estimate_virtex4(run_fossy(idwt97_osss_source()));
    std::printf("  IDWT53 + IDWT97: %ld / %ld slices (%.1f%%)\n",
                a53.occupied_slices + a97.occupied_slices, dev.slices,
                100.0 * static_cast<double>(a53.occupied_slices + a97.occupied_slices) /
                    static_cast<double>(dev.slices));
    std::printf("  both blocks meet the synthesis flow's 100 MHz requirement: %s\n",
                (a53.fmax_mhz >= 100.0) ? "IDWT53 yes" : "IDWT53 NO");
    return 0;
}
