// design_space_exploration — the paper's Figure 3 flow as a program: start
// from the SW-only model, explore the application-layer restructurings, then
// the VTA mappings, printing what each step buys (or costs).
#include <decoder/decoder.hpp>

#include <cstdio>

int main()
{
    using decoder::model_version;
    std::printf("=== JPEG 2000 decoder — design space exploration (lossless) ===\n\n");
    const auto wl = decoder::workload::standard();

    struct step {
        model_version v;
        const char* what;
    };
    const step steps[] = {
        {model_version::v1, "start: software-only reference"},
        {model_version::v2, "move IQ+IDWT into a HW Shared Object (blocking co-processor)"},
        {model_version::v3, "pipeline tiles; split IDWT into 3 HW blocks + params SO"},
        {model_version::v4, "parallelise the arithmetic decoder over 4 SW tasks"},
        {model_version::v5, "combine both (7 clients on the HW/SW Shared Object)"},
        {model_version::v6a, "map to VTA: 1 CPU, everything on the OPB bus"},
        {model_version::v6b, "VTA: move the IDWT links to point-to-point channels"},
        {model_version::v7a, "VTA: 4 CPUs, IDWT on the bus"},
        {model_version::v7b, "VTA: 4 CPUs, IDWT on P2P"},
    };

    double base = 0;
    for (const auto& s : steps) {
        const auto r = decoder::run_model(wl, s.v, false);
        if (s.v == model_version::v1) base = r.decode_time.to_ms();
        std::printf("model %-3s %-62s\n", decoder::version_name(s.v), s.what);
        std::printf("          decode %8.1f ms (speed-up %4.2fx)   IDWT %7.2f ms   %s\n\n",
                    r.decode_time.to_ms(), base / r.decode_time.to_ms(),
                    r.idwt_time.to_ms(), r.image_ok ? "image OK" : "IMAGE WRONG");
    }

    std::printf("structural inventory of the chosen implementation (7b):\n\n%s\n",
                decoder::describe_model(model_version::v7b).report().c_str());
    return 0;
}
