// quickstart — the OSSS methodology in 80 lines.
//
// Builds the smallest meaningful OSSS model: a producer software task and a
// consumer hardware module communicating through a guarded Shared Object,
// with EET-annotated computation.  Then it refines the same behaviour to the
// VTA layer (an OPB bus with RMI) without touching the method calls — the
// "seamless refinement" the library is about.
#include <osss/osss.hpp>

#include <cstdio>

namespace {

/// The shared object's user class: a tiny mailbox with a computation.
struct mailbox {
    std::vector<int> data;
    [[nodiscard]] bool has_data() const { return !data.empty(); }
};

sim::time run_once(bool vta)
{
    sim::kernel k;
    const sim::time clk = sim::time::ns(10);  // 100 MHz

    osss::shared_object<mailbox> so{"mailbox", osss::scheduling_policy::fifo};
    osss::object_socket<mailbox> socket{so};
    osss::opb_bus bus{"opb", clk};

    // One port per communication partner.  Application Layer: direct binding;
    // VTA: the same calls go through the bus with serialised payloads.
    auto producer_port = vta ? osss::service_port<mailbox>::rmi(socket, "producer", bus, 0)
                             : osss::service_port<mailbox>::direct(so, "producer");
    auto consumer_port = vta ? osss::service_port<mailbox>::rmi(socket, "consumer", bus, 1)
                             : osss::service_port<mailbox>::direct(so, "consumer");

    // Producer software task: compute for 5 us (EET), then publish.
    k.spawn([](osss::service_port<mailbox>& port) -> sim::process {
        for (int i = 1; i <= 3; ++i) {
            auto produce = [i] { return i * i; };
            const int value = co_await osss::eet(sim::time::us(5), produce);
            auto push = [value](mailbox& m) { m.data.push_back(value); };
            co_await port.call(sizeof value, 0, push);
            std::printf("  [%8s] producer published %d\n",
                        sim::kernel::current()->now().str().c_str(), value);
        }
    }(producer_port), "producer");

    // Consumer hardware module: guarded call blocks until data is available.
    k.spawn([](osss::service_port<mailbox>& port) -> sim::process {
        for (int i = 0; i < 3; ++i) {
            auto ready = [](const mailbox& m) { return m.has_data(); };
            auto pop = [](mailbox& m) {
                const int v = m.data.back();
                m.data.pop_back();
                return v;
            };
            const int v = co_await port.call_when(0, sizeof(int), ready, pop);
            std::printf("  [%8s] consumer received  %d\n",
                        sim::kernel::current()->now().str().c_str(), v);
        }
    }(consumer_port), "consumer");

    return k.run();
}

}  // namespace

int main()
{
    std::printf("Application Layer model (abstract, zero-cost communication):\n");
    const sim::time app = run_once(false);
    std::printf("  finished at %s\n\n", app.str().c_str());

    std::printf("Virtual Target Architecture model (same behaviour, OPB bus + RMI):\n");
    const sim::time vta = run_once(true);
    std::printf("  finished at %s\n\n", vta.str().c_str());

    std::printf("The refinement added %s of communication time without changing "
                "a single method call.\n", (vta - app).str().c_str());
    return 0;
}
