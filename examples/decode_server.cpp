// decode_server — flood the batch-decode service with a mixed workload and
// watch it degrade gracefully.
//
// Three phases:
//   1. steady state  — mixed full / reduced-resolution / layer-capped jobs
//                      through a comfortably sized queue (block policy);
//   2. overload      — the same mix slammed into a tiny queue with the
//                      drop_oldest policy: old previews are evicted, the
//                      service stays responsive, nothing OOMs;
//   3. drain         — shutdown() completes every admitted job.
// Metrics are dumped after each phase, and the whole run is recorded by the
// obs tracer: decode_server.trace.json shows each job's span tree (admission,
// queue wait, per-tile stage spans) and the queue-depth counter track.  Open
// it in https://ui.perfetto.dev or chrome://tracing.
#include <obs/trace.hpp>
#include <runtime/service.hpp>

#include <j2k/j2k.hpp>

#include <cstdio>
#include <future>
#include <vector>

namespace {

struct workload {
    const char* name;
    const std::vector<std::uint8_t>* cs;
    runtime::decode_options opt;
};

int run_mix(runtime::decode_service& svc, const std::vector<workload>& mix, int rounds)
{
    std::vector<std::pair<const char*, std::future<j2k::image>>> futs;
    for (int r = 0; r < rounds; ++r)
        for (const auto& w : mix) futs.emplace_back(w.name, svc.submit(*w.cs, w.opt));
    int ok = 0, shed = 0;
    for (auto& [name, f] : futs) {
        try {
            const j2k::image img = f.get();
            std::printf("  done %-14s -> %dx%d, %d comp\n", name, img.width(),
                        img.height(), img.components());
            ++ok;
        } catch (const runtime::service_error& e) {
            std::printf("  shed %-14s -> %s\n", name, e.what());
            ++shed;
        }
    }
    std::printf("  phase total: %d decoded, %d shed\n", ok, shed);
    return ok;
}

}  // namespace

int main()
{
    obs::tracer::instance().set_enabled(true);
    obs::tracer::instance().set_thread_name("submitter");

    // One layered stream (for quality-capped jobs) and one plain stream.
    const j2k::image img = j2k::make_test_image(256, 256, 3);
    j2k::codec_params p;
    p.tile_width = 64;
    p.tile_height = 64;
    const auto plain = j2k::encode(img, p);
    p.quality_layers = 4;
    const auto layered = j2k::encode(img, p);

    const std::vector<workload> mix{
        {"full", &plain, {}},
        {"half-res", &plain, {.discard_levels = 1}},
        {"thumbnail", &plain, {.discard_levels = 3}},
        {"2-layer", &layered, {.max_quality_layers = 2}},
        {"draft-passes", &plain, {.max_passes = 4}},
    };

    std::printf("=== phase 1: steady state (block policy, capacity 64) ===\n");
    {
        runtime::decode_service svc{{.workers = 4, .queue_capacity = 64}};
        run_mix(svc, mix, 4);
        std::printf("\n%s\n", svc.metrics().dump().c_str());
    }

    std::printf("=== phase 2: overload (drop_oldest policy, capacity 2) ===\n");
    {
        runtime::decode_service svc{{.workers = 2,
                                     .queue_capacity = 2,
                                     .policy = runtime::backpressure::drop_oldest}};
        run_mix(svc, mix, 8);
        std::printf("\n%s\n", svc.metrics().dump().c_str());
    }

    std::printf("=== phase 3: shutdown drains admitted work ===\n");
    {
        runtime::decode_service svc{{.workers = 4, .queue_capacity = 64}};
        std::vector<std::future<j2k::image>> futs;
        for (int i = 0; i < 12; ++i) futs.push_back(svc.submit(plain));
        svc.shutdown();
        int ready = 0;
        for (auto& f : futs)
            if (f.wait_for(std::chrono::seconds(0)) == std::future_status::ready) ++ready;
        std::printf("  after shutdown(): %d/12 futures ready\n", ready);
        std::printf("\n%s\n", svc.metrics().dump().c_str());
    }

    const std::size_t evs =
        obs::tracer::instance().write_json_file("decode_server.trace.json");
    std::printf("trace: %zu events written to decode_server.trace.json "
                "(open in https://ui.perfetto.dev)\n",
                evs);
    return 0;
}
