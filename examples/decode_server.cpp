// decode_server — the decode service behind a real socket, exercised by a
// real client over loopback.
//
// Modes:
//   decode_server                       demo: in-process server + client, 5 phases
//   decode_server serve [port] [--cache-bytes N] [--ops-port P] [--shards S]
//                                       run a server until stdin closes; N > 0
//                                       enables the decoded-result cache, P
//                                       adds the HTTP ops plane (/metrics,
//                                       /healthz, /readyz, /trace) on P
//   decode_server client <port> <file>  decode one .ojk file, save out.pnm
//   decode_server client <port> <file> --stream
//                                       progressive: one frame per quality
//                                       layer, saved as out_L<k>.pnm
//   decode_server client <port> <file> --codec ccsds123
//                                       decode under another registered codec
//                                       (multispectral cubes save as out.raw,
//                                       the J2NE raw image framing)
//
// The demo drives the whole admission path end to end:
//   1. pipelined burst — 16 small requests in one write: the event loop
//      parses them together and admits them through submit_batch (watch
//      pool_submissions stay far below jobs_submitted);
//   2. overload — a batch flood against a per-priority bound of 1: typed
//      `shed` responses come back while an interactive request sails through;
//   3. drain — stop() completes every admitted job and flushes responses;
//   4. progressive stream — one request, one `streaming` frame per quality
//      layer, each refinement decodable the moment it lands.
// The run is recorded by the obs tracer: decode_server.trace.json shows
// connection/frame spans next to the decode span tree (open in
// https://ui.perfetto.dev).
#include <obs/trace.hpp>
#include <runtime/net/client.hpp>
#include <runtime/net/server.hpp>
#include <runtime/ops/ops_server.hpp>

#include <ccsds/ccsds123.hpp>
#include <codec/backend.hpp>
#include <j2k/backend.hpp>
#include <j2k/j2k.hpp>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace {

namespace net = runtime::net;

std::vector<std::uint8_t> demo_stream(int w, int h, int comps, int tile)
{
    j2k::codec_params p;
    p.tile_width = tile;
    p.tile_height = tile;
    return j2k::encode(j2k::make_test_image(w, h, comps), p);
}

int run_serve(std::uint16_t port, std::size_t cache_bytes, int ops_port,
              std::size_t shards)
{
    net::server_config cfg;
    cfg.port = port;
    cfg.service.workers = 0;  // hardware concurrency
    cfg.service.queue_capacity = 64;
    cfg.service.cache_bytes = cache_bytes;
    cfg.shards = shards;  // 0 = auto (one per hardware thread)
    net::server srv{cfg};
    srv.start();
    std::printf("decode_server listening on 127.0.0.1:%u (%zu shard%s, ^D to stop)%s\n",
                srv.port(), srv.shards(), srv.shards() == 1 ? "" : "s",
                cache_bytes ? " [result cache on]" : "");

    std::unique_ptr<runtime::ops::ops_server> ops;
    if (ops_port >= 0) {
        // The rolling per-stage windows are fed from trace spans, so the ops
        // plane arms the tracer for the life of the serve.
        obs::tracer::instance().set_enabled(true);
        runtime::ops::ops_config ocfg;
        ocfg.port = static_cast<std::uint16_t>(ops_port);
        ops = std::make_unique<runtime::ops::ops_server>(srv.service(), ocfg);
        ops->set_extra_counters([&srv] {
            const auto st = srv.stats();
            std::vector<std::pair<std::string, std::uint64_t>> out{
                {"net_connections_accepted_total", st.connections_accepted},
                {"net_connections_open", st.connections_open},
                {"net_accepts_failed_total", st.accepts_failed},
                {"net_frames_in_total", st.frames_in},
                {"net_responses_out_total", st.responses_out},
                {"net_bytes_in_total", st.bytes_in},
                {"net_bytes_out_total", st.bytes_out},
                {"net_batches_total", st.batches},
                {"net_batched_jobs_total", st.batched_jobs},
                {"net_bad_frames_total", st.bad_frames},
                {"net_slow_reader_closed_total", st.slow_reader_closed},
                {"net_progressive_streams_total", st.progressive_streams},
                {"net_layer_frames_out_total", st.layer_frames_out},
                {"net_streams_cancelled_total", st.streams_cancelled},
            };
            // Per-shard breakdown (the aggregates above stay label-free for
            // dashboard compatibility); only worth the exposition bytes when
            // there is more than one shard.
            if (srv.shards() > 1) {
                for (std::size_t i = 0; i < srv.shards(); ++i) {
                    const auto ss = srv.stats(i);
                    const std::string lbl =
                        "{shard=\"" + std::to_string(i) + "\"}";
                    out.emplace_back("net_connections_accepted_total" + lbl,
                                     ss.connections_accepted);
                    out.emplace_back("net_frames_in_total" + lbl, ss.frames_in);
                    out.emplace_back("net_responses_out_total" + lbl,
                                     ss.responses_out);
                    out.emplace_back("net_bytes_in_total" + lbl, ss.bytes_in);
                    out.emplace_back("net_bytes_out_total" + lbl, ss.bytes_out);
                    out.emplace_back("net_accepts_failed_total" + lbl,
                                     ss.accepts_failed);
                    out.emplace_back("net_slow_reader_closed_total" + lbl,
                                     ss.slow_reader_closed);
                }
            }
            return out;
        });
        ops->start();
        std::printf("ops plane on http://127.0.0.1:%u  "
                    "(/metrics /healthz /readyz /trace)\n",
                    ops->port());
    }

    // Serve until stdin closes.
    for (int c = std::getchar(); c != EOF; c = std::getchar()) {
    }
    // Stop the decode front-end first: /readyz flips to 503 the moment the
    // service starts draining, while the ops plane keeps answering.
    srv.stop();
    if (ops) ops->stop();
    const auto st = srv.stats();
    std::printf("served %llu frames on %llu connections (%llu bytes in, %llu out)\n",
                static_cast<unsigned long long>(st.frames_in),
                static_cast<unsigned long long>(st.connections_accepted),
                static_cast<unsigned long long>(st.bytes_in),
                static_cast<unsigned long long>(st.bytes_out));
    if (cache_bytes) {
        const auto m = srv.service().metrics();
        std::printf("cache: hits=%llu misses=%llu collapses=%llu evictions=%llu "
                    "session_resumes=%llu bytes=%llu\n",
                    static_cast<unsigned long long>(m.cache_hits),
                    static_cast<unsigned long long>(m.cache_misses),
                    static_cast<unsigned long long>(m.cache_collapses),
                    static_cast<unsigned long long>(m.cache_evictions),
                    static_cast<unsigned long long>(m.cache_session_resumes),
                    static_cast<unsigned long long>(m.cache_bytes));
    }
    return 0;
}

int run_client(std::uint16_t port, const char* path, bool stream,
               const char* codec_name)
{
    std::ifstream in{path, std::ios::binary};
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path);
        return 1;
    }
    const std::vector<std::uint8_t> cs{std::istreambuf_iterator<char>{in},
                                       std::istreambuf_iterator<char>{}};

    // Resolve --codec through the same registry the server consults; the
    // wire byte is what actually crosses the socket.
    std::uint8_t codec_id = j2k::k_codec_wire_id;
    if (codec_name != nullptr) {
        (void)j2k::ensure_backend_registered();
        (void)ccsds::ensure_backend_registered();
        const codec::backend* be = codec::find_backend(codec_name);
        if (be == nullptr) {
            std::fprintf(stderr, "unknown codec '%s' (registered:", codec_name);
            for (const codec::backend* b : codec::backends())
                std::fprintf(stderr, " %.*s", int(b->name().size()),
                             b->name().data());
            std::fprintf(stderr, ")\n");
            return 1;
        }
        codec_id = be->wire_id();
    }

    net::client cli{"127.0.0.1", port};
    if (codec_id != j2k::k_codec_wire_id) {
        // Other codecs decode whole cubes over the raw framing (PNM cannot
        // carry a 200-band image); streaming is a per-codec capability the
        // server enforces, so the flag combination is simply not offered.
        net::request r;
        r.codestream = cs;
        r.format = net::result_format::raw;
        r.request_id = 1;
        r.codec = codec_id;
        const auto resp = cli.decode(r);
        if (!resp.ok()) {
            std::fprintf(stderr, "decode failed: %s (%s)\n",
                         net::status_name(resp.st), resp.message().c_str());
            return 1;
        }
        const auto img = net::decode_image_raw(resp.payload);
        std::ofstream out{"out.raw", std::ios::binary};
        out.write(reinterpret_cast<const char*>(resp.payload.data()),
                  static_cast<std::streamsize>(resp.payload.size()));
        std::printf("decoded %s (%s) -> out.raw: %dx%d, %d band%s, %d-bit "
                    "(%zu bytes)\n",
                    path, codec_name, img.width(), img.height(),
                    img.components(), img.components() == 1 ? "" : "s",
                    img.bit_depth(), resp.payload.size());
        return 0;
    }
    if (stream) {
        const auto fin = cli.decode_progressive(
            {cs, 0, net::result_format::pnm, 1}, [&](const net::layer_frame& lf) {
                char name[64];
                std::snprintf(name, sizeof name, "out_L%d.pnm", lf.layer);
                std::ofstream out{name, std::ios::binary};
                out.write(reinterpret_cast<const char*>(lf.image.data()),
                          static_cast<std::streamsize>(lf.image.size()));
                std::printf("layer %d/%d -> %s (%zu bytes)%s\n", lf.layer, lf.total,
                            name, lf.image.size(), lf.last ? "  [final]" : "");
            });
        if (fin.st != net::status::streaming) {
            std::fprintf(stderr, "stream failed: %s (%s)\n", net::status_name(fin.st),
                         fin.message().c_str());
            return 1;
        }
        return 0;
    }
    const auto r = cli.decode({cs, 0, net::result_format::pnm, 1});
    if (!r.ok()) {
        std::fprintf(stderr, "decode failed: %s (%s)\n", net::status_name(r.st),
                     r.message().c_str());
        return 1;
    }
    std::ofstream out{"out.pnm", std::ios::binary};
    out.write(reinterpret_cast<const char*>(r.payload.data()),
              static_cast<std::streamsize>(r.payload.size()));
    std::printf("decoded %s -> out.pnm (%zu bytes)\n", path, r.payload.size());
    return 0;
}

int run_demo()
{
    obs::tracer::instance().set_enabled(true);
    obs::tracer::instance().set_thread_name("client");

    const auto small = demo_stream(64, 64, 1, 64);      // one tile, quick
    const auto heavy = demo_stream(256, 256, 3, 32);    // 64 tiles, slow

    std::printf("=== phase 1: pipelined burst is batched ===\n");
    {
        net::server_config cfg;
        cfg.service.workers = 2;
        cfg.service.queue_capacity = 64;
        cfg.small_job_threshold = 1u << 20;  // everything below 1 MiB coalesces
        net::server srv{cfg};
        srv.start();
        net::client cli{"127.0.0.1", srv.port()};
        constexpr std::uint32_t n = 16;
        std::vector<net::request> reqs;
        for (std::uint32_t i = 0; i < n; ++i)
            reqs.push_back({small, 1, net::result_format::raw, i});
        cli.send_burst(reqs);
        int ok = 0;
        for (std::uint32_t i = 0; i < n; ++i)
            if (cli.recv().ok()) ++ok;
        const auto m = srv.service().metrics();
        const auto st = srv.stats();
        std::printf("  %d/%u decoded; %llu jobs through %llu pool submissions "
                    "(%llu batched in %llu batches)\n",
                    ok, n, static_cast<unsigned long long>(m.jobs_submitted),
                    static_cast<unsigned long long>(m.pool_submissions),
                    static_cast<unsigned long long>(st.batched_jobs),
                    static_cast<unsigned long long>(st.batches));
        srv.stop();
    }

    std::printf("=== phase 2: overload sheds batch, spares interactive ===\n");
    {
        net::server_config cfg;
        cfg.service.workers = 1;
        cfg.service.queue_capacity = 32;
        cfg.service.batch_capacity = 1;  // batch admission bound
        cfg.small_job_threshold = 0;     // admit each frame on parse
        net::server srv{cfg};
        srv.start();
        net::client cli{"127.0.0.1", srv.port()};
        constexpr std::uint32_t n = 8;
        std::vector<net::request> reqs;
        for (std::uint32_t i = 0; i < n; ++i)
            reqs.push_back({heavy, 1, net::result_format::raw, i});
        cli.send_burst(reqs);
        int ok = 0, shed = 0;
        for (std::uint32_t i = 0; i < n; ++i) {
            const auto r = cli.recv();
            r.ok() ? ++ok : ++shed;
        }
        const auto inter = cli.decode({heavy, 0, net::result_format::raw, 99});
        const auto m = srv.service().metrics();
        std::printf("  batch flood: %d decoded, %d shed "
                    "(batch rejected=%llu, interactive rejected=%llu); "
                    "interactive request -> %s\n",
                    ok, shed,
                    static_cast<unsigned long long>(m.shed_by_priority[1].rejected),
                    static_cast<unsigned long long>(m.shed_by_priority[0].rejected),
                    net::status_name(inter.st));
        srv.stop();
    }

    std::printf("=== phase 3: stop() drains admitted work ===\n");
    {
        net::server_config cfg;
        cfg.service.workers = 2;
        cfg.service.queue_capacity = 64;
        net::server srv{cfg};
        srv.start();
        net::client cli{"127.0.0.1", srv.port()};
        constexpr std::uint32_t n = 12;
        std::vector<net::request> reqs;
        for (std::uint32_t i = 0; i < n; ++i)
            reqs.push_back({small, 1, net::result_format::raw, i});
        cli.send_burst(reqs);
        int ok = 0;
        for (std::uint32_t i = 0; i < n; ++i)
            if (cli.recv().ok()) ++ok;
        srv.stop();  // idempotent; every admitted job already settled
        std::printf("  %d/%u responses received before stop\n", ok, n);
    }

    std::printf("=== phase 4: progressive request streams layer by layer ===\n");
    {
        j2k::codec_params lp;
        lp.tile_width = 64;
        lp.tile_height = 64;
        lp.quality_layers = 5;
        const j2k::image src = j2k::make_test_image(256, 256, 3);
        const auto layered = j2k::encode(src, lp);

        net::server_config cfg;
        cfg.service.workers = 2;
        cfg.service.queue_capacity = 64;
        net::server srv{cfg};
        srv.start();
        net::client cli{"127.0.0.1", srv.port()};
        const auto fin = cli.decode_progressive(
            {layered, 0, net::result_format::raw, 1},
            [&](const net::layer_frame& lf) {
                const j2k::image out = net::decode_image_raw(lf.image);
                const double q = j2k::psnr(src, out);
                if (std::isinf(q))
                    std::printf("  layer %d/%d: exact%s\n", lf.layer, lf.total,
                                lf.last ? "  [final]" : "");
                else
                    std::printf("  layer %d/%d: %.2f dB%s\n", lf.layer, lf.total, q,
                                lf.last ? "  [final]" : "");
            });
        srv.stop();
        const auto st = srv.stats();
        const auto m = srv.service().metrics();
        std::printf("  %s; %llu streaming frames for %llu progressive job "
                    "(%llu tier-1 segment bytes total)\n",
                    net::status_name(fin.st),
                    static_cast<unsigned long long>(st.layer_frames_out),
                    static_cast<unsigned long long>(m.jobs_progressive),
                    static_cast<unsigned long long>(m.t1_segment_bytes));
        std::printf("\n%s\n", srv.service().metrics().dump().c_str());
    }

    std::printf("=== phase 5: result cache serves repeats without decoding ===\n");
    {
        net::server_config cfg;
        cfg.service.workers = 2;
        cfg.service.queue_capacity = 64;
        cfg.service.cache_bytes = 64u << 20;
        net::server srv{cfg};
        srv.start();
        net::client cli{"127.0.0.1", srv.port()};
        constexpr std::uint32_t n = 8;
        int ok = 0;
        for (std::uint32_t i = 0; i < n; ++i)
            if (cli.decode({heavy, 1, net::result_format::raw, i}).ok()) ++ok;
        net::request bypass{heavy, 1, net::result_format::raw, n};
        bypass.cache_bypass = true;
        const auto br = cli.decode(bypass);
        const auto m = srv.service().metrics();
        std::printf("  %d/%u repeats decoded; cache hits=%llu misses=%llu "
                    "(bypass request -> %s, not counted)\n",
                    ok, n, static_cast<unsigned long long>(m.cache_hits),
                    static_cast<unsigned long long>(m.cache_misses),
                    net::status_name(br.st));
        srv.stop();
    }

    std::printf("=== phase 6: a second codec over the same wire ===\n");
    {
        // A 16-bit 8-band cube through the CCSDS-123 backend: same framing,
        // same pool, same cache — the request's codec byte picks the decoder.
        const codec::image cube = codec::make_test_image(128, 96, 8, 16, 42);
        const auto ccs = ccsds::encode(cube);

        net::server_config cfg;
        cfg.service.workers = 2;
        cfg.service.queue_capacity = 64;
        cfg.service.cache_bytes = 64u << 20;
        net::server srv{cfg};
        srv.start();
        net::client cli{"127.0.0.1", srv.port()};

        net::request r;
        r.codestream = ccs;
        r.format = net::result_format::raw;
        r.request_id = 1;
        r.codec = ccsds::k_codec_wire_id;
        const auto first = cli.decode(r);
        r.request_id = 2;
        const auto repeat = cli.decode(r);
        const bool exact = first.ok() &&
                           net::decode_image_raw(first.payload) == cube;
        std::printf("  %zu-byte stream (%.2fx compression) -> %dx%d, 8 bands, "
                    "16-bit: %s; repeat -> %s\n",
                    ccs.size(),
                    double(128 * 96 * 8 * 2) / double(ccs.size()),
                    cube.width(), cube.height(),
                    exact ? "bit-exact" : "MISMATCH",
                    net::status_name(repeat.st));

        net::request unknown;
        unknown.codestream = ccs;
        unknown.request_id = 3;
        unknown.codec = 42;  // nothing registered there
        const auto rej = cli.decode(unknown);
        std::printf("  unknown codec byte 42 -> %s (\"%s\")\n",
                    net::status_name(rej.st), rej.message().c_str());

        const auto m = srv.service().metrics();
        for (const auto& c : m.by_codec)
            std::printf("  codec %-9s completed=%llu unsupported=%llu "
                        "cache hits=%llu misses=%llu\n",
                        c.name.c_str(),
                        static_cast<unsigned long long>(c.completed),
                        static_cast<unsigned long long>(c.unsupported),
                        static_cast<unsigned long long>(c.cache_hits),
                        static_cast<unsigned long long>(c.cache_misses));
        srv.stop();
    }

    const std::size_t evs =
        obs::tracer::instance().write_json_file("decode_server.trace.json");
    std::printf("trace: %zu events written to decode_server.trace.json "
                "(open in https://ui.perfetto.dev)\n",
                evs);
    return 0;
}

}  // namespace

int main(int argc, char** argv)
{
    if (argc >= 2 && std::strcmp(argv[1], "serve") == 0) {
        std::uint16_t port = 0;
        std::size_t cache_bytes = 0;
        int ops_port = -1;       // < 0 → no ops plane
        std::size_t shards = 1;  // 0 = auto (one per hardware thread)
        for (int i = 2; i < argc; ++i) {
            if (std::strcmp(argv[i], "--cache-bytes") == 0 && i + 1 < argc)
                cache_bytes = static_cast<std::size_t>(std::atoll(argv[++i]));
            else if (std::strcmp(argv[i], "--ops-port") == 0 && i + 1 < argc)
                ops_port = std::atoi(argv[++i]);
            else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc)
                shards = static_cast<std::size_t>(std::atoll(argv[++i]));
            else
                port = static_cast<std::uint16_t>(std::atoi(argv[i]));
        }
        return run_serve(port, cache_bytes, ops_port, shards);
    }
    if (argc >= 4 && std::strcmp(argv[1], "client") == 0) {
        bool stream = false;
        const char* codec_name = nullptr;
        for (int i = 4; i < argc; ++i) {
            if (std::strcmp(argv[i], "--stream") == 0)
                stream = true;
            else if (std::strcmp(argv[i], "--codec") == 0 && i + 1 < argc)
                codec_name = argv[++i];
        }
        return run_client(static_cast<std::uint16_t>(std::atoi(argv[2])), argv[3],
                          stream, codec_name);
    }
    return run_demo();
}
