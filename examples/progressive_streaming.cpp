// progressive_streaming — quality-progressive JPEG 2000 in action: encode one
// layered stream, simulate a slow download, and decode each prefix as it
// arrives, writing the improving reconstructions as PPM files.
#include <j2k/j2k.hpp>

#include <cmath>
#include <cstdio>

int main()
{
    const j2k::image img = j2k::make_test_image(256, 256, 3);
    j2k::codec_params p;
    p.quality_layers = 6;
    p.tile_width = 64;
    p.tile_height = 64;
    const auto cs = j2k::encode(img, p);
    const auto info = j2k::read_header(cs);
    std::printf("progressive stream: %zu bytes, %d quality layers, %d tiles\n\n",
                cs.size(), info.quality_layers, info.tile_count());

    // "Download" the stream in 20%-steps; decode whatever layers are complete.
    j2k::decoder dec{cs};
    int last_layers = -1;
    for (int pct = 20; pct <= 100; pct += 20) {
        const std::size_t received = cs.size() * static_cast<std::size_t>(pct) / 100;
        const int layers = info.layers_in_prefix(received);
        std::printf("received %3d%% (%7zu B) -> %d complete layer%s", pct, received,
                    layers, layers == 1 ? "" : "s");
        if (layers == 0 || layers == last_layers) {
            std::printf("  (no new image)\n");
            continue;
        }
        last_layers = layers;
        dec.set_max_quality_layers(layers);
        const j2k::image out = dec.decode_all();
        const double q = j2k::psnr(img, out);
        char path[64];
        std::snprintf(path, sizeof path, "progressive_L%d.ppm", layers);
        j2k::save_pnm(out, path);
        if (std::isinf(q))
            std::printf("  -> %s (exact)\n", path);
        else
            std::printf("  -> %s (%.2f dB)\n", path, q);
    }

    std::printf("\nresolution-progressive views of the final image:\n");
    dec.set_max_quality_layers(0);
    for (int d = 2; d >= 0; --d) {
        const j2k::image r = dec.decode_reduced(d);
        char path[64];
        std::snprintf(path, sizeof path, "progressive_res%d.ppm", d);
        j2k::save_pnm(r, path);
        std::printf("  1/%d resolution: %3dx%3d -> %s\n", 1 << d, r.width(), r.height(),
                    path);
    }
    return 0;
}
