// progressive_streaming — quality-progressive JPEG 2000 in action: encode one
// layered stream, simulate a slow download, and refine a single decode_session
// as each prefix arrives, writing the improving reconstructions as PPM files.
//
// The point of the session (vs. re-running the decoder per prefix): tier-1
// entropy decoding is resumable, so every arriving layer costs only its *new*
// codeword segments — the MQ decoder state for each codeblock persists between
// advances.  The tier-1 byte counter printed per step is the incremental cost;
// the "naive" column is what a from-scratch decode of the same prefix would
// have entropy-decoded (all segments up to that layer, again).
#include <j2k/j2k.hpp>

#include <cmath>
#include <cstdio>

int main()
{
    const j2k::image img = j2k::make_test_image(256, 256, 3);
    j2k::codec_params p;
    p.quality_layers = 6;
    p.tile_width = 64;
    p.tile_height = 64;
    const auto cs = j2k::encode(img, p);
    const auto info = j2k::read_header(cs);
    std::printf("progressive stream: %zu bytes, %d quality layers, %d tiles\n\n",
                cs.size(), info.quality_layers, info.tile_count());

    // "Download" the stream in 20%-steps; advance the session over whatever
    // layers are complete.  One session for the whole download — IQ/IDWT/ICT
    // re-run per refinement, tier-1 never repeats a segment.
    j2k::decode_session session{cs};
    std::uint64_t naive_t1 = 0;  // Σ over refreshes of (all segments so far)
    for (int pct = 20; pct <= 100; pct += 20) {
        const std::size_t received = cs.size() * static_cast<std::size_t>(pct) / 100;
        const int layers = info.layers_in_prefix(received);
        std::printf("received %3d%% (%7zu B) -> %d complete layer%s", pct, received,
                    layers, layers == 1 ? "" : "s");
        if (layers == 0 || layers <= session.layers_decoded()) {
            std::printf("  (no new image)\n");
            continue;
        }
        const std::uint64_t before = session.tier1_segment_bytes();
        const j2k::image out = session.advance_to(layers);
        const std::uint64_t stepped = session.tier1_segment_bytes() - before;
        naive_t1 += session.tier1_segment_bytes();  // a fresh decode re-reads all
        const double q = j2k::psnr(img, out);
        char path[64];
        std::snprintf(path, sizeof path, "progressive_L%d.ppm", layers);
        j2k::save_pnm(out, path);
        if (std::isinf(q))
            std::printf("  -> %s (exact, +%llu tier-1 B)\n", path,
                        static_cast<unsigned long long>(stepped));
        else
            std::printf("  -> %s (%.2f dB, +%llu tier-1 B)\n", path, q,
                        static_cast<unsigned long long>(stepped));
    }
    std::printf("\ntier-1 bytes entropy-decoded: session %llu, from-scratch %llu "
                "(%.1fx)\n",
                static_cast<unsigned long long>(session.tier1_segment_bytes()),
                static_cast<unsigned long long>(naive_t1),
                static_cast<double>(naive_t1) /
                    static_cast<double>(session.tier1_segment_bytes()));

    std::printf("\nresolution-progressive views of the final image:\n");
    j2k::decoder dec{cs};
    for (int d = 2; d >= 0; --d) {
        const j2k::image r = dec.decode_reduced(d);
        char path[64];
        std::snprintf(path, sizeof path, "progressive_res%d.ppm", d);
        j2k::save_pnm(r, path);
        std::printf("  1/%d resolution: %3dx%3d -> %s\n", 1 << d, r.width(), r.height(),
                    path);
    }
    return 0;
}
