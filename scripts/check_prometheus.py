#!/usr/bin/env python3
"""Validate a Prometheus text-exposition document (version 0.0.4).

Usage:
    check_prometheus.py <file|-> [required_family ...]

Checks, line by line:
  * metric names match ``[a-zA-Z_:][a-zA-Z0-9_:]*``
  * label names match ``[a-zA-Z_][a-zA-Z0-9_]*`` and label values use only
    the legal escapes (``\\\\``, ``\\"``, ``\\n``)
  * sample values parse as floats (including +Inf/-Inf/NaN)
  * ``# TYPE``/``# HELP`` lines, when present, are well-formed
  * no raw control characters anywhere

Any ``required_family`` arguments must appear as a sample's metric name
(label sets and suffixes like ``_sum``/``_count`` don't count — the exact
family must carry at least one sample).

Exit codes: 0 ok, 1 malformed exposition or missing family.
"""

import re
import sys

METRIC_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")
# A label value is any run of characters with backslash escapes; only
# \\ \" \n are legal escapes inside the quotes.
LABELS = re.compile(r'\{((?:[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*",?)*)\}$')
SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"  # name
    r"(\{.*\})?"  # optional label set (validated separately)
    r" ([^ ]+)"  # value
    r"( [0-9]+)?$"  # optional timestamp
)
LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def is_float(tok):
    if tok in ("+Inf", "-Inf", "Inf", "NaN"):
        return True
    try:
        float(tok)
        return True
    except ValueError:
        return False


def check(text):
    """Return (families_seen, errors)."""
    errors = []
    families = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if any(ord(c) < 0x20 and c != "\t" for c in line):
            errors.append(f"line {lineno}: raw control character")
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("TYPE", "HELP"):
                if len(parts) < 3 or not METRIC_NAME.match(parts[2]):
                    errors.append(f"line {lineno}: malformed # {parts[1]} line")
                elif parts[1] == "TYPE" and (
                    len(parts) < 4
                    or parts[3]
                    not in ("counter", "gauge", "histogram", "summary", "untyped")
                ):
                    errors.append(f"line {lineno}: unknown TYPE {parts[3:]!r}")
            continue  # other comments are free-form
        m = SAMPLE.match(line)
        if not m:
            errors.append(f"line {lineno}: not a sample line: {line[:80]!r}")
            continue
        name, labelset, value = m.group(1), m.group(2), m.group(3)
        families.add(name)
        if labelset:
            body = labelset[1:-1].rstrip(",")
            consumed = 0
            for pm in LABEL_PAIR.finditer(body):
                consumed = pm.end()
                bad = re.search(r'\\[^\\"n]', pm.group(2))
                if bad:
                    errors.append(
                        f"line {lineno}: illegal escape {bad.group(0)!r} "
                        f"in label {pm.group(1)}"
                    )
            leftover = body[consumed:].strip(", ")
            if leftover:
                errors.append(f"line {lineno}: malformed label set near {leftover[:40]!r}")
        if not is_float(value):
            errors.append(f"line {lineno}: non-numeric value {value!r}")
    return families, errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    src = argv[1]
    text = sys.stdin.read() if src == "-" else open(src).read()
    families, errors = check(text)
    for fam in argv[2:]:
        if fam not in families:
            errors.append(f"required family missing: {fam}")
    for e in errors:
        print(f"  {e}")
    n_samples = sum(1 for ln in text.splitlines() if ln and not ln.startswith("#"))
    print(
        f"check_prometheus: {len(families)} families, {n_samples} samples, "
        f"{len(errors)} error(s)"
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
