#!/usr/bin/env python3
"""Gate bench regressions against the committed baseline JSON.

Usage:
    check_bench_regression.py <baseline.json> <fresh.json> <key> [<key> ...]

Each <key> is a dotted path into the bench JSON (e.g. ``zipf.hit_rate``).
Every gated key is a scale-free, higher-is-better ratio (speedups, hit
rates, batching factors) — absolute jobs/sec depends on the machine, but a
parallel speedup or cache hit rate should not silently decay.  A fresh value
more than TOLERANCE below the committed baseline fails the check.

Exit codes: 0 ok, 1 regression or malformed input.
"""

import json
import sys

TOLERANCE = 0.25  # fail when fresh < baseline * (1 - TOLERANCE)


def lookup(obj, dotted):
    for part in dotted.split("."):
        if not isinstance(obj, dict) or part not in obj:
            return None
        obj = obj[part]
    return obj


def main(argv):
    if len(argv) < 4:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    baseline_path, fresh_path, keys = argv[1], argv[2], argv[3:]
    with open(baseline_path) as f:
        baseline = json.load(f)
    with open(fresh_path) as f:
        fresh = json.load(f)

    failed = False
    for key in keys:
        base = lookup(baseline, key)
        now = lookup(fresh, key)
        if base is None:
            # New metric with no committed history yet: report, don't gate.
            print(f"  {key}: no baseline (fresh={now}) — skipped")
            continue
        if now is None:
            print(f"  {key}: MISSING from fresh output (baseline={base})")
            failed = True
            continue
        if not isinstance(base, (int, float)) or not isinstance(now, (int, float)):
            print(f"  {key}: non-numeric (baseline={base!r}, fresh={now!r})")
            failed = True
            continue
        floor = base * (1.0 - TOLERANCE)
        status = "ok" if now >= floor else "REGRESSION"
        print(f"  {key}: baseline={base:.3f} fresh={now:.3f} floor={floor:.3f} {status}")
        if now < floor:
            failed = True

    if failed:
        print("bench regression check FAILED", file=sys.stderr)
        return 1
    print("bench regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
