# CMake generated Testfile for 
# Source directory: /root/repo/tests/j2k
# Build directory: /root/repo/build-tsan/tests/j2k
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/j2k/test_j2k[1]_include.cmake")
