
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/j2k/test_codec.cpp" "tests/j2k/CMakeFiles/test_j2k.dir/test_codec.cpp.o" "gcc" "tests/j2k/CMakeFiles/test_j2k.dir/test_codec.cpp.o.d"
  "/root/repo/tests/j2k/test_codec_sweep.cpp" "tests/j2k/CMakeFiles/test_j2k.dir/test_codec_sweep.cpp.o" "gcc" "tests/j2k/CMakeFiles/test_j2k.dir/test_codec_sweep.cpp.o.d"
  "/root/repo/tests/j2k/test_dwt.cpp" "tests/j2k/CMakeFiles/test_j2k.dir/test_dwt.cpp.o" "gcc" "tests/j2k/CMakeFiles/test_j2k.dir/test_dwt.cpp.o.d"
  "/root/repo/tests/j2k/test_layers.cpp" "tests/j2k/CMakeFiles/test_j2k.dir/test_layers.cpp.o" "gcc" "tests/j2k/CMakeFiles/test_j2k.dir/test_layers.cpp.o.d"
  "/root/repo/tests/j2k/test_mq.cpp" "tests/j2k/CMakeFiles/test_j2k.dir/test_mq.cpp.o" "gcc" "tests/j2k/CMakeFiles/test_j2k.dir/test_mq.cpp.o.d"
  "/root/repo/tests/j2k/test_pnm.cpp" "tests/j2k/CMakeFiles/test_j2k.dir/test_pnm.cpp.o" "gcc" "tests/j2k/CMakeFiles/test_j2k.dir/test_pnm.cpp.o.d"
  "/root/repo/tests/j2k/test_scalability.cpp" "tests/j2k/CMakeFiles/test_j2k.dir/test_scalability.cpp.o" "gcc" "tests/j2k/CMakeFiles/test_j2k.dir/test_scalability.cpp.o.d"
  "/root/repo/tests/j2k/test_tier1.cpp" "tests/j2k/CMakeFiles/test_j2k.dir/test_tier1.cpp.o" "gcc" "tests/j2k/CMakeFiles/test_j2k.dir/test_tier1.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/j2k/CMakeFiles/j2k.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/runtime/CMakeFiles/runtime_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
