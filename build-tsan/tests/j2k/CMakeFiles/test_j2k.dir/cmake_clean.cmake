file(REMOVE_RECURSE
  "CMakeFiles/test_j2k.dir/test_codec.cpp.o"
  "CMakeFiles/test_j2k.dir/test_codec.cpp.o.d"
  "CMakeFiles/test_j2k.dir/test_codec_sweep.cpp.o"
  "CMakeFiles/test_j2k.dir/test_codec_sweep.cpp.o.d"
  "CMakeFiles/test_j2k.dir/test_dwt.cpp.o"
  "CMakeFiles/test_j2k.dir/test_dwt.cpp.o.d"
  "CMakeFiles/test_j2k.dir/test_layers.cpp.o"
  "CMakeFiles/test_j2k.dir/test_layers.cpp.o.d"
  "CMakeFiles/test_j2k.dir/test_mq.cpp.o"
  "CMakeFiles/test_j2k.dir/test_mq.cpp.o.d"
  "CMakeFiles/test_j2k.dir/test_pnm.cpp.o"
  "CMakeFiles/test_j2k.dir/test_pnm.cpp.o.d"
  "CMakeFiles/test_j2k.dir/test_scalability.cpp.o"
  "CMakeFiles/test_j2k.dir/test_scalability.cpp.o.d"
  "CMakeFiles/test_j2k.dir/test_tier1.cpp.o"
  "CMakeFiles/test_j2k.dir/test_tier1.cpp.o.d"
  "test_j2k"
  "test_j2k.pdb"
  "test_j2k[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_j2k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
