# Empty dependencies file for test_j2k.
# This may be replaced when dependencies are built.
