
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_kernel.cpp" "tests/sim/CMakeFiles/test_sim.dir/test_kernel.cpp.o" "gcc" "tests/sim/CMakeFiles/test_sim.dir/test_kernel.cpp.o.d"
  "/root/repo/tests/sim/test_misc.cpp" "tests/sim/CMakeFiles/test_sim.dir/test_misc.cpp.o" "gcc" "tests/sim/CMakeFiles/test_sim.dir/test_misc.cpp.o.d"
  "/root/repo/tests/sim/test_sync.cpp" "tests/sim/CMakeFiles/test_sim.dir/test_sync.cpp.o" "gcc" "tests/sim/CMakeFiles/test_sim.dir/test_sync.cpp.o.d"
  "/root/repo/tests/sim/test_time.cpp" "tests/sim/CMakeFiles/test_sim.dir/test_time.cpp.o" "gcc" "tests/sim/CMakeFiles/test_sim.dir/test_time.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/sim/CMakeFiles/sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
