file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/test_kernel.cpp.o"
  "CMakeFiles/test_sim.dir/test_kernel.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_misc.cpp.o"
  "CMakeFiles/test_sim.dir/test_misc.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_sync.cpp.o"
  "CMakeFiles/test_sim.dir/test_sync.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_time.cpp.o"
  "CMakeFiles/test_sim.dir/test_time.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
