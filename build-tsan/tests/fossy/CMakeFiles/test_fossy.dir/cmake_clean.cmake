file(REMOVE_RECURSE
  "CMakeFiles/test_fossy.dir/test_transform.cpp.o"
  "CMakeFiles/test_fossy.dir/test_transform.cpp.o.d"
  "CMakeFiles/test_fossy.dir/test_vhdl.cpp.o"
  "CMakeFiles/test_fossy.dir/test_vhdl.cpp.o.d"
  "test_fossy"
  "test_fossy.pdb"
  "test_fossy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fossy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
