# Empty dependencies file for test_fossy.
# This may be replaced when dependencies are built.
