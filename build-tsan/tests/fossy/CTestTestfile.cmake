# CMake generated Testfile for 
# Source directory: /root/repo/tests/fossy
# Build directory: /root/repo/build-tsan/tests/fossy
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/fossy/test_fossy[1]_include.cmake")
