# CMake generated Testfile for 
# Source directory: /root/repo/tests/osss
# Build directory: /root/repo/build-tsan/tests/osss
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/osss/test_osss[1]_include.cmake")
