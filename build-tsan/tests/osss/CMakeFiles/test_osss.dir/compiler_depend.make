# Empty compiler generated dependencies file for test_osss.
# This may be replaced when dependencies are built.
