
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/osss/test_arbiter.cpp" "tests/osss/CMakeFiles/test_osss.dir/test_arbiter.cpp.o" "gcc" "tests/osss/CMakeFiles/test_osss.dir/test_arbiter.cpp.o.d"
  "/root/repo/tests/osss/test_channels.cpp" "tests/osss/CMakeFiles/test_osss.dir/test_channels.cpp.o" "gcc" "tests/osss/CMakeFiles/test_osss.dir/test_channels.cpp.o.d"
  "/root/repo/tests/osss/test_module.cpp" "tests/osss/CMakeFiles/test_osss.dir/test_module.cpp.o" "gcc" "tests/osss/CMakeFiles/test_osss.dir/test_module.cpp.o.d"
  "/root/repo/tests/osss/test_polymorphic.cpp" "tests/osss/CMakeFiles/test_osss.dir/test_polymorphic.cpp.o" "gcc" "tests/osss/CMakeFiles/test_osss.dir/test_polymorphic.cpp.o.d"
  "/root/repo/tests/osss/test_properties.cpp" "tests/osss/CMakeFiles/test_osss.dir/test_properties.cpp.o" "gcc" "tests/osss/CMakeFiles/test_osss.dir/test_properties.cpp.o.d"
  "/root/repo/tests/osss/test_ret_plb.cpp" "tests/osss/CMakeFiles/test_osss.dir/test_ret_plb.cpp.o" "gcc" "tests/osss/CMakeFiles/test_osss.dir/test_ret_plb.cpp.o.d"
  "/root/repo/tests/osss/test_shared_object.cpp" "tests/osss/CMakeFiles/test_osss.dir/test_shared_object.cpp.o" "gcc" "tests/osss/CMakeFiles/test_osss.dir/test_shared_object.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/osss/CMakeFiles/osss.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
