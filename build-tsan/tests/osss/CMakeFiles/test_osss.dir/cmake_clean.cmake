file(REMOVE_RECURSE
  "CMakeFiles/test_osss.dir/test_arbiter.cpp.o"
  "CMakeFiles/test_osss.dir/test_arbiter.cpp.o.d"
  "CMakeFiles/test_osss.dir/test_channels.cpp.o"
  "CMakeFiles/test_osss.dir/test_channels.cpp.o.d"
  "CMakeFiles/test_osss.dir/test_module.cpp.o"
  "CMakeFiles/test_osss.dir/test_module.cpp.o.d"
  "CMakeFiles/test_osss.dir/test_polymorphic.cpp.o"
  "CMakeFiles/test_osss.dir/test_polymorphic.cpp.o.d"
  "CMakeFiles/test_osss.dir/test_properties.cpp.o"
  "CMakeFiles/test_osss.dir/test_properties.cpp.o.d"
  "CMakeFiles/test_osss.dir/test_ret_plb.cpp.o"
  "CMakeFiles/test_osss.dir/test_ret_plb.cpp.o.d"
  "CMakeFiles/test_osss.dir/test_shared_object.cpp.o"
  "CMakeFiles/test_osss.dir/test_shared_object.cpp.o.d"
  "test_osss"
  "test_osss.pdb"
  "test_osss[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_osss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
