# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("j2k")
subdirs("runtime")
subdirs("osss")
subdirs("fossy")
subdirs("decoder")
