# CMake generated Testfile for 
# Source directory: /root/repo/tests/decoder
# Build directory: /root/repo/build-tsan/tests/decoder
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/decoder/test_decoder[1]_include.cmake")
