file(REMOVE_RECURSE
  "CMakeFiles/test_decoder.dir/test_models.cpp.o"
  "CMakeFiles/test_decoder.dir/test_models.cpp.o.d"
  "CMakeFiles/test_decoder.dir/test_serial.cpp.o"
  "CMakeFiles/test_decoder.dir/test_serial.cpp.o.d"
  "CMakeFiles/test_decoder.dir/test_workload.cpp.o"
  "CMakeFiles/test_decoder.dir/test_workload.cpp.o.d"
  "test_decoder"
  "test_decoder.pdb"
  "test_decoder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_decoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
