# CMake generated Testfile for 
# Source directory: /root/repo/tests/runtime
# Build directory: /root/repo/build-tsan/tests/runtime
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/runtime/test_runtime[1]_include.cmake")
