
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/runtime/test_pool.cpp" "tests/runtime/CMakeFiles/test_runtime.dir/test_pool.cpp.o" "gcc" "tests/runtime/CMakeFiles/test_runtime.dir/test_pool.cpp.o.d"
  "/root/repo/tests/runtime/test_queue.cpp" "tests/runtime/CMakeFiles/test_runtime.dir/test_queue.cpp.o" "gcc" "tests/runtime/CMakeFiles/test_runtime.dir/test_queue.cpp.o.d"
  "/root/repo/tests/runtime/test_service.cpp" "tests/runtime/CMakeFiles/test_runtime.dir/test_service.cpp.o" "gcc" "tests/runtime/CMakeFiles/test_runtime.dir/test_service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/runtime/CMakeFiles/runtime.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/j2k/CMakeFiles/j2k.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/runtime/CMakeFiles/runtime_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
