file(REMOVE_RECURSE
  "CMakeFiles/progressive_streaming.dir/progressive_streaming.cpp.o"
  "CMakeFiles/progressive_streaming.dir/progressive_streaming.cpp.o.d"
  "progressive_streaming"
  "progressive_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/progressive_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
