# Empty dependencies file for progressive_streaming.
# This may be replaced when dependencies are built.
