file(REMOVE_RECURSE
  "CMakeFiles/synthesis_flow.dir/synthesis_flow.cpp.o"
  "CMakeFiles/synthesis_flow.dir/synthesis_flow.cpp.o.d"
  "synthesis_flow"
  "synthesis_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthesis_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
