# Empty dependencies file for synthesis_flow.
# This may be replaced when dependencies are built.
