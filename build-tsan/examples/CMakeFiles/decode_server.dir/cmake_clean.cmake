file(REMOVE_RECURSE
  "CMakeFiles/decode_server.dir/decode_server.cpp.o"
  "CMakeFiles/decode_server.dir/decode_server.cpp.o.d"
  "decode_server"
  "decode_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decode_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
