# Empty compiler generated dependencies file for decode_server.
# This may be replaced when dependencies are built.
