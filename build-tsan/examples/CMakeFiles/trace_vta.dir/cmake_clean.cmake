file(REMOVE_RECURSE
  "CMakeFiles/trace_vta.dir/trace_vta.cpp.o"
  "CMakeFiles/trace_vta.dir/trace_vta.cpp.o.d"
  "trace_vta"
  "trace_vta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_vta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
