# Empty dependencies file for trace_vta.
# This may be replaced when dependencies are built.
