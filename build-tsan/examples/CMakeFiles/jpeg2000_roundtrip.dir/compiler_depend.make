# Empty compiler generated dependencies file for jpeg2000_roundtrip.
# This may be replaced when dependencies are built.
