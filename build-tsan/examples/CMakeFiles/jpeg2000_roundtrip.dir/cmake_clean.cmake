file(REMOVE_RECURSE
  "CMakeFiles/jpeg2000_roundtrip.dir/jpeg2000_roundtrip.cpp.o"
  "CMakeFiles/jpeg2000_roundtrip.dir/jpeg2000_roundtrip.cpp.o.d"
  "jpeg2000_roundtrip"
  "jpeg2000_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jpeg2000_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
