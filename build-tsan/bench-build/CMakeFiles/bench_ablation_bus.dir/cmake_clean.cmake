file(REMOVE_RECURSE
  "../bench/bench_ablation_bus"
  "../bench/bench_ablation_bus.pdb"
  "CMakeFiles/bench_ablation_bus.dir/bench_ablation_bus.cpp.o"
  "CMakeFiles/bench_ablation_bus.dir/bench_ablation_bus.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
