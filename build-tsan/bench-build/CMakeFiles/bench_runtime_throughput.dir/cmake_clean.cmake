file(REMOVE_RECURSE
  "../bench/bench_runtime_throughput"
  "../bench/bench_runtime_throughput.pdb"
  "CMakeFiles/bench_runtime_throughput.dir/bench_runtime_throughput.cpp.o"
  "CMakeFiles/bench_runtime_throughput.dir/bench_runtime_throughput.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_runtime_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
