file(REMOVE_RECURSE
  "../bench/bench_fig1_profile"
  "../bench/bench_fig1_profile.pdb"
  "CMakeFiles/bench_fig1_profile.dir/bench_fig1_profile.cpp.o"
  "CMakeFiles/bench_fig1_profile.dir/bench_fig1_profile.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
