file(REMOVE_RECURSE
  "../bench/bench_sim_kernel"
  "../bench/bench_sim_kernel.pdb"
  "CMakeFiles/bench_sim_kernel.dir/bench_sim_kernel.cpp.o"
  "CMakeFiles/bench_sim_kernel.dir/bench_sim_kernel.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sim_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
