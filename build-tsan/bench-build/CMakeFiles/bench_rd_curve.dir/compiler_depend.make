# Empty compiler generated dependencies file for bench_rd_curve.
# This may be replaced when dependencies are built.
