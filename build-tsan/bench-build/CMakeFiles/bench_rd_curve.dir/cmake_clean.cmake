file(REMOVE_RECURSE
  "../bench/bench_rd_curve"
  "../bench/bench_rd_curve.pdb"
  "CMakeFiles/bench_rd_curve.dir/bench_rd_curve.cpp.o"
  "CMakeFiles/bench_rd_curve.dir/bench_rd_curve.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rd_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
