file(REMOVE_RECURSE
  "../bench/bench_j2k_kernels"
  "../bench/bench_j2k_kernels.pdb"
  "CMakeFiles/bench_j2k_kernels.dir/bench_j2k_kernels.cpp.o"
  "CMakeFiles/bench_j2k_kernels.dir/bench_j2k_kernels.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_j2k_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
