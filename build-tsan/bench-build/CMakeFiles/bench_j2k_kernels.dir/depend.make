# Empty dependencies file for bench_j2k_kernels.
# This may be replaced when dependencies are built.
