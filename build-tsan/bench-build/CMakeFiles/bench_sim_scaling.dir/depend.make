# Empty dependencies file for bench_sim_scaling.
# This may be replaced when dependencies are built.
