file(REMOVE_RECURSE
  "../bench/bench_sim_scaling"
  "../bench/bench_sim_scaling.pdb"
  "CMakeFiles/bench_sim_scaling.dir/bench_sim_scaling.cpp.o"
  "CMakeFiles/bench_sim_scaling.dir/bench_sim_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sim_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
