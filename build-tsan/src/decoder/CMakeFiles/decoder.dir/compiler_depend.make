# Empty compiler generated dependencies file for decoder.
# This may be replaced when dependencies are built.
