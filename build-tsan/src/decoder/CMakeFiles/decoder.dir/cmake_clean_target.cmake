file(REMOVE_RECURSE
  "libdecoder.a"
)
