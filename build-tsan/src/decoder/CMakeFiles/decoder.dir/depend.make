# Empty dependencies file for decoder.
# This may be replaced when dependencies are built.
