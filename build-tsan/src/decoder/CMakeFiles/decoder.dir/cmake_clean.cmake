file(REMOVE_RECURSE
  "CMakeFiles/decoder.dir/models.cpp.o"
  "CMakeFiles/decoder.dir/models.cpp.o.d"
  "CMakeFiles/decoder.dir/timing.cpp.o"
  "CMakeFiles/decoder.dir/timing.cpp.o.d"
  "CMakeFiles/decoder.dir/workload.cpp.o"
  "CMakeFiles/decoder.dir/workload.cpp.o.d"
  "libdecoder.a"
  "libdecoder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
