file(REMOVE_RECURSE
  "CMakeFiles/sim.dir/kernel.cpp.o"
  "CMakeFiles/sim.dir/kernel.cpp.o.d"
  "CMakeFiles/sim.dir/time.cpp.o"
  "CMakeFiles/sim.dir/time.cpp.o.d"
  "CMakeFiles/sim.dir/trace.cpp.o"
  "CMakeFiles/sim.dir/trace.cpp.o.d"
  "libsim.a"
  "libsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
