file(REMOVE_RECURSE
  "CMakeFiles/fossy.dir/estimate.cpp.o"
  "CMakeFiles/fossy.dir/estimate.cpp.o.d"
  "CMakeFiles/fossy.dir/idwt_models.cpp.o"
  "CMakeFiles/fossy.dir/idwt_models.cpp.o.d"
  "CMakeFiles/fossy.dir/platform.cpp.o"
  "CMakeFiles/fossy.dir/platform.cpp.o.d"
  "CMakeFiles/fossy.dir/transform.cpp.o"
  "CMakeFiles/fossy.dir/transform.cpp.o.d"
  "CMakeFiles/fossy.dir/vhdl.cpp.o"
  "CMakeFiles/fossy.dir/vhdl.cpp.o.d"
  "libfossy.a"
  "libfossy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fossy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
