file(REMOVE_RECURSE
  "libfossy.a"
)
