# Empty compiler generated dependencies file for fossy.
# This may be replaced when dependencies are built.
