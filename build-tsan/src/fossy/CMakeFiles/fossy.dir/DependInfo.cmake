
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fossy/estimate.cpp" "src/fossy/CMakeFiles/fossy.dir/estimate.cpp.o" "gcc" "src/fossy/CMakeFiles/fossy.dir/estimate.cpp.o.d"
  "/root/repo/src/fossy/idwt_models.cpp" "src/fossy/CMakeFiles/fossy.dir/idwt_models.cpp.o" "gcc" "src/fossy/CMakeFiles/fossy.dir/idwt_models.cpp.o.d"
  "/root/repo/src/fossy/platform.cpp" "src/fossy/CMakeFiles/fossy.dir/platform.cpp.o" "gcc" "src/fossy/CMakeFiles/fossy.dir/platform.cpp.o.d"
  "/root/repo/src/fossy/transform.cpp" "src/fossy/CMakeFiles/fossy.dir/transform.cpp.o" "gcc" "src/fossy/CMakeFiles/fossy.dir/transform.cpp.o.d"
  "/root/repo/src/fossy/vhdl.cpp" "src/fossy/CMakeFiles/fossy.dir/vhdl.cpp.o" "gcc" "src/fossy/CMakeFiles/fossy.dir/vhdl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/osss/CMakeFiles/osss.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
