
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/j2k/codec.cpp" "src/j2k/CMakeFiles/j2k.dir/codec.cpp.o" "gcc" "src/j2k/CMakeFiles/j2k.dir/codec.cpp.o.d"
  "/root/repo/src/j2k/codestream.cpp" "src/j2k/CMakeFiles/j2k.dir/codestream.cpp.o" "gcc" "src/j2k/CMakeFiles/j2k.dir/codestream.cpp.o.d"
  "/root/repo/src/j2k/color.cpp" "src/j2k/CMakeFiles/j2k.dir/color.cpp.o" "gcc" "src/j2k/CMakeFiles/j2k.dir/color.cpp.o.d"
  "/root/repo/src/j2k/dwt.cpp" "src/j2k/CMakeFiles/j2k.dir/dwt.cpp.o" "gcc" "src/j2k/CMakeFiles/j2k.dir/dwt.cpp.o.d"
  "/root/repo/src/j2k/image.cpp" "src/j2k/CMakeFiles/j2k.dir/image.cpp.o" "gcc" "src/j2k/CMakeFiles/j2k.dir/image.cpp.o.d"
  "/root/repo/src/j2k/mq_coder.cpp" "src/j2k/CMakeFiles/j2k.dir/mq_coder.cpp.o" "gcc" "src/j2k/CMakeFiles/j2k.dir/mq_coder.cpp.o.d"
  "/root/repo/src/j2k/pnm.cpp" "src/j2k/CMakeFiles/j2k.dir/pnm.cpp.o" "gcc" "src/j2k/CMakeFiles/j2k.dir/pnm.cpp.o.d"
  "/root/repo/src/j2k/quant.cpp" "src/j2k/CMakeFiles/j2k.dir/quant.cpp.o" "gcc" "src/j2k/CMakeFiles/j2k.dir/quant.cpp.o.d"
  "/root/repo/src/j2k/tier1.cpp" "src/j2k/CMakeFiles/j2k.dir/tier1.cpp.o" "gcc" "src/j2k/CMakeFiles/j2k.dir/tier1.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/runtime/CMakeFiles/runtime_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
