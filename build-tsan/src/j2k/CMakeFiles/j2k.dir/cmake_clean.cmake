file(REMOVE_RECURSE
  "CMakeFiles/j2k.dir/codec.cpp.o"
  "CMakeFiles/j2k.dir/codec.cpp.o.d"
  "CMakeFiles/j2k.dir/codestream.cpp.o"
  "CMakeFiles/j2k.dir/codestream.cpp.o.d"
  "CMakeFiles/j2k.dir/color.cpp.o"
  "CMakeFiles/j2k.dir/color.cpp.o.d"
  "CMakeFiles/j2k.dir/dwt.cpp.o"
  "CMakeFiles/j2k.dir/dwt.cpp.o.d"
  "CMakeFiles/j2k.dir/image.cpp.o"
  "CMakeFiles/j2k.dir/image.cpp.o.d"
  "CMakeFiles/j2k.dir/mq_coder.cpp.o"
  "CMakeFiles/j2k.dir/mq_coder.cpp.o.d"
  "CMakeFiles/j2k.dir/pnm.cpp.o"
  "CMakeFiles/j2k.dir/pnm.cpp.o.d"
  "CMakeFiles/j2k.dir/quant.cpp.o"
  "CMakeFiles/j2k.dir/quant.cpp.o.d"
  "CMakeFiles/j2k.dir/tier1.cpp.o"
  "CMakeFiles/j2k.dir/tier1.cpp.o.d"
  "libj2k.a"
  "libj2k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/j2k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
