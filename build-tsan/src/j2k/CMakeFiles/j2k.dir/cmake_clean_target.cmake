file(REMOVE_RECURSE
  "libj2k.a"
)
