# Empty dependencies file for j2k.
# This may be replaced when dependencies are built.
