# CMake generated Testfile for 
# Source directory: /root/repo/src/j2k
# Build directory: /root/repo/build-tsan/src/j2k
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
