file(REMOVE_RECURSE
  "CMakeFiles/osss.dir/design.cpp.o"
  "CMakeFiles/osss.dir/design.cpp.o.d"
  "libosss.a"
  "libosss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
