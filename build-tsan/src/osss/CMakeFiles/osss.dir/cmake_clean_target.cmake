file(REMOVE_RECURSE
  "libosss.a"
)
