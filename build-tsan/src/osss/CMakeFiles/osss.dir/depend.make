# Empty dependencies file for osss.
# This may be replaced when dependencies are built.
