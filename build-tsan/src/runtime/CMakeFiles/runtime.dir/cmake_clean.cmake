file(REMOVE_RECURSE
  "CMakeFiles/runtime.dir/service.cpp.o"
  "CMakeFiles/runtime.dir/service.cpp.o.d"
  "libruntime.a"
  "libruntime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
