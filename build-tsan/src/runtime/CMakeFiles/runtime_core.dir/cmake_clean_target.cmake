file(REMOVE_RECURSE
  "libruntime_core.a"
)
