# Empty dependencies file for runtime_core.
# This may be replaced when dependencies are built.
