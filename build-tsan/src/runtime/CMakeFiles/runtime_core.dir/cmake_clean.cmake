file(REMOVE_RECURSE
  "CMakeFiles/runtime_core.dir/metrics.cpp.o"
  "CMakeFiles/runtime_core.dir/metrics.cpp.o.d"
  "CMakeFiles/runtime_core.dir/thread_pool.cpp.o"
  "CMakeFiles/runtime_core.dir/thread_pool.cpp.o.d"
  "libruntime_core.a"
  "libruntime_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
