#include "trace.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace obs {

namespace detail {

std::atomic<bool> g_trace_enabled{false};

void event_ring::drain(std::vector<trace_event>& out) const
{
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    const std::uint64_t n = h < k_capacity ? h : k_capacity;
    for (std::uint64_t i = h - n; i < h; ++i) {
        const slot& s = slots_[i & (k_capacity - 1)];
        if (s.seq.load(std::memory_order_acquire) != i + 1) continue;  // mid-write
        trace_event ev;
        ev.ts_ns = s.ts_ns.load(std::memory_order_relaxed);
        ev.name = reinterpret_cast<const char*>(s.name.load(std::memory_order_relaxed));
        ev.category = reinterpret_cast<const char*>(s.cat.load(std::memory_order_relaxed));
        ev.type = static_cast<event_type>(s.type.load(std::memory_order_relaxed));
        ev.value = static_cast<std::int64_t>(s.value.load(std::memory_order_relaxed));
        ev.tid = tid_;
        // Accept only if the slot was not overwritten while we read it: the
        // acquire fence pairs with the writer's release fence, so if any new
        // payload word was seen the re-read below sees the invalidation too.
        std::atomic_thread_fence(std::memory_order_acquire);
        if (s.seq.load(std::memory_order_relaxed) != i + 1) continue;
        out.push_back(ev);
    }
}

namespace {

/// Per-thread handle; shared ownership with the tracer registry so a ring
/// outlives its thread and a late drain still sees the events.
thread_local std::shared_ptr<event_ring> tl_ring;

/// Thread name set before the thread emitted anything: applied when (if) the
/// ring is created, so naming a thread never allocates a ring by itself.
thread_local const char* tl_pending_name = nullptr;

}  // namespace

}  // namespace detail

tracer& tracer::instance()
{
    static tracer t;
    return t;
}

tracer::tracer()
    : epoch_ns_{static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count())}
{
}

std::uint64_t tracer::now_ns() const noexcept
{
    return static_cast<std::uint64_t>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now().time_since_epoch())
                   .count()) -
           epoch_ns_;
}

detail::event_ring& tracer::ring_for_this_thread()
{
    if (!detail::tl_ring) {
        std::lock_guard lk{rings_m_};
        auto ring = std::make_shared<detail::event_ring>(
            static_cast<std::uint32_t>(rings_.size()));
        if (detail::tl_pending_name) ring->set_thread_name(detail::tl_pending_name);
        rings_.push_back(ring);
        detail::tl_ring = std::move(ring);
    }
    return *detail::tl_ring;
}

void tracer::emit(event_type t, const char* cat, const char* name,
                  std::int64_t value) noexcept
{
    ring_for_this_thread().push(t, cat, name, now_ns(), value);
}

const char* tracer::intern(std::string_view s)
{
    std::lock_guard lk{intern_m_};
    return interned_.emplace(s).first->c_str();
}

void tracer::set_thread_name(std::string_view name)
{
    detail::tl_pending_name = intern(name);
    if (detail::tl_ring) detail::tl_ring->set_thread_name(detail::tl_pending_name);
}

std::vector<trace_event> tracer::collect() const
{
    return collect_since(0);
}

std::vector<trace_event> tracer::collect_since(std::uint64_t since_ns) const
{
    std::vector<std::shared_ptr<detail::event_ring>> rings;
    {
        std::lock_guard lk{rings_m_};
        rings = rings_;
    }
    std::vector<trace_event> evs;
    for (const auto& r : rings) r->drain(evs);
    if (since_ns > 0)
        evs.erase(std::remove_if(evs.begin(), evs.end(),
                                 [since_ns](const trace_event& ev) {
                                     return ev.ts_ns < since_ns;
                                 }),
                  evs.end());
    std::stable_sort(evs.begin(), evs.end(),
                     [](const trace_event& a, const trace_event& b) {
                         return a.ts_ns < b.ts_ns;
                     });
    return evs;
}

tracer::stats tracer::get_stats() const
{
    std::lock_guard lk{rings_m_};
    stats s;
    s.threads = rings_.size();
    for (const auto& r : rings_) {
        s.pushed += r->pushed();
        s.overwritten += r->overwritten();
    }
    return s;
}

namespace {

void json_escape(std::ostream& os, const char* s)
{
    if (!s) {
        os << "null";
        return;
    }
    os << '"';
    for (; *s; ++s) {
        const char c = *s;
        if (c == '"' || c == '\\')
            os << '\\' << c;
        else if (static_cast<unsigned char>(c) < 0x20)
            os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
               << "0123456789abcdef"[c & 0xf];
        else
            os << c;
    }
    os << '"';
}

void write_ts_us(std::ostream& os, std::uint64_t ns)
{
    // Microseconds with nanosecond resolution, without float rounding.
    os << ns / 1000 << '.' << static_cast<char>('0' + (ns % 1000) / 100)
       << static_cast<char>('0' + (ns % 100) / 10) << static_cast<char>('0' + ns % 10);
}

/// One trace event as a Chrome trace-event JSON object (no separator).
void write_event(std::ostream& os, const trace_event& ev)
{
    const char* ph = nullptr;
    switch (ev.type) {
    case event_type::begin: ph = "B"; break;
    case event_type::end: ph = "E"; break;
    case event_type::instant: ph = "i"; break;
    case event_type::counter: ph = "C"; break;
    case event_type::async_begin: ph = "b"; break;
    case event_type::async_end: ph = "e"; break;
    }
    os << "{\"ph\":\"" << ph << "\",\"name\":";
    json_escape(os, ev.name);
    os << ",\"cat\":";
    json_escape(os, ev.category ? ev.category : "default");
    os << ",\"pid\":1,\"tid\":" << ev.tid << ",\"ts\":";
    write_ts_us(os, ev.ts_ns);
    switch (ev.type) {
    case event_type::instant:
        os << ",\"s\":\"t\"";
        break;
    case event_type::counter:
        os << ",\"args\":{\"value\":" << ev.value << '}';
        break;
    case event_type::async_begin:
    case event_type::async_end:
        os << ",\"id\":\"" << static_cast<std::uint64_t>(ev.value) << '"';
        break;
    default:
        break;
    }
    os << '}';
}

}  // namespace

std::size_t tracer::write_json(std::ostream& os) const
{
    std::vector<trace_event> evs = collect();

    // A ring wrap can strand "E" events whose "B" was overwritten; an
    // unmatched E confuses the viewer's stack reconstruction, so drop any E
    // with no open B on its thread.  (Unclosed Bs are fine — trace viewers
    // auto-close them at the end of the trace.)
    std::vector<std::uint32_t> depth;
    std::vector<trace_event> kept;
    kept.reserve(evs.size());
    for (const trace_event& ev : evs) {
        if (ev.tid >= depth.size()) depth.resize(ev.tid + 1, 0);
        if (ev.type == event_type::begin) ++depth[ev.tid];
        if (ev.type == event_type::end) {
            if (depth[ev.tid] == 0) continue;
            --depth[ev.tid];
        }
        kept.push_back(ev);
    }

    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    auto sep = [&] {
        if (!first) os << ',';
        first = false;
        os << '\n';
    };

    sep();
    os << R"({"ph":"M","name":"process_name","pid":1,"tid":0,"args":{"name":"osss_jpeg2000"}})";
    {
        std::lock_guard lk{rings_m_};
        for (const auto& r : rings_) {
            if (const char* tn = r->thread_name()) {
                sep();
                os << R"({"ph":"M","name":"thread_name","pid":1,"tid":)" << r->tid()
                   << R"(,"args":{"name":)";
                json_escape(os, tn);
                os << "}}";
            }
        }
    }

    std::size_t written = 0;
    for (const trace_event& ev : kept) {
        sep();
        write_event(os, ev);
        ++written;
    }
    os << "\n]}\n";
    return written;
}

tracer::tail_result tracer::write_json_tail(std::ostream& os,
                                            std::uint64_t since_ns) const
{
    // Metadata first, so a tail joined mid-run labels its tracks; repeating
    // these across chunks is harmless (the viewer just re-applies them).
    os << R"({"ph":"M","name":"process_name","pid":1,"tid":0,"args":{"name":"osss_jpeg2000"}})"
       << ",\n";
    {
        std::lock_guard lk{rings_m_};
        for (const auto& r : rings_) {
            if (const char* tn = r->thread_name()) {
                os << R"({"ph":"M","name":"thread_name","pid":1,"tid":)" << r->tid()
                   << R"(,"args":{"name":)";
                json_escape(os, tn);
                os << "}},\n";
            }
        }
    }
    // No B-depth filtering here: an E whose B went out in an earlier chunk is
    // legitimate in a tail, and the concatenated stream reconstructs fine.
    const std::vector<trace_event> evs = collect_since(since_ns);
    for (const trace_event& ev : evs) {
        write_event(os, ev);
        os << ",\n";
    }
    return {evs.size(), next_cursor(evs, since_ns)};
}

std::size_t tracer::write_json_file(const std::string& path) const
{
    std::ofstream out{path};
    if (!out) throw std::runtime_error{"tracer: cannot open " + path};
    const std::size_t n = write_json(out);
    out.flush();
    if (!out) throw std::runtime_error{"tracer: write failed for " + path};
    return n;
}

}  // namespace obs
