// obs/rolling.hpp — rolling per-stage latency/rate aggregation over drained
// trace spans.
//
// The span tracer (trace.hpp) records *events*; production monitoring wants
// *distributions that forget*: "tier-1 p99 over the last 10 seconds", not
// since process start.  `rolling_stats` is the bridge: feed it batches from
// `tracer::collect_since()` and it pairs begin/end (and async b/e) events
// into completed spans, bucketing each duration into a per-stage ring of
// one-second log2 histograms.  Querying a trailing window (1 s / 10 s / 60 s)
// sums the live slots and interpolates quantiles — O(window × 64 buckets),
// no sample retention.
//
// Pairing state (open spans) survives across consume() calls, so a span
// whose B and E arrive in different drain batches still completes.  Sync
// spans pair per-thread innermost-first (Chrome "E closes the innermost B"
// semantics); async spans pair by (name, id) across threads.
//
// Everything is mutex-guarded: consume() runs on the ops-plane drain thread
// while /metrics handlers (or tests) query concurrently.
#pragma once

#include "metrics.hpp"
#include "trace.hpp"

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace obs {

class rolling_stats {
public:
    static constexpr int k_slots = 64;  ///< one-second slots retained per stage
    static constexpr int k_max_window_s = k_slots - 1;  ///< slot 64 may be mid-overwrite

    explicit rolling_stats(std::size_t max_stages = 32) : max_stages_{max_stages} {}

    rolling_stats(const rolling_stats&) = delete;
    rolling_stats& operator=(const rolling_stats&) = delete;

    /// Feed one drained batch (as returned by tracer::collect_since — sorted
    /// by timestamp).  Batches must come from a monotonically advancing
    /// cursor; re-feeding the same events double-counts them.
    void consume(const std::vector<trace_event>& evs);

    struct window_stats {
        std::uint64_t count = 0;   ///< spans completed inside the window
        double rate_per_s = 0.0;   ///< count / window seconds
        double mean_ns = 0.0;
        double p50_ns = 0.0;
        double p99_ns = 0.0;
        std::uint64_t max_ns = 0;
    };

    /// Stats for `stage` over the trailing `window_s` seconds (clamped to
    /// [1, k_max_window_s]) ending at `now_ns` — pass the tracer's now_ns()
    /// so rates decay to zero when traffic stops; 0 means "newest consumed
    /// timestamp".  Unknown stages return all-zero stats.
    [[nodiscard]] window_stats window(std::string_view stage, int window_s,
                                      std::uint64_t now_ns = 0) const;

    /// Stage names seen so far, in name order.
    [[nodiscard]] std::vector<std::string> stages() const;

    struct totals {
        std::uint64_t spans = 0;            ///< completed spans recorded
        std::uint64_t unmatched_ends = 0;   ///< E/e with no open B/b (ring wrap)
        std::uint64_t dropped_stages = 0;   ///< spans past the max_stages cap
        std::uint64_t open_spans = 0;       ///< begins still awaiting their end
    };
    [[nodiscard]] totals get_totals() const;

private:
    /// One second of one stage: a compact log2 histogram plus count/sum/max.
    struct slot {
        std::uint64_t second = ~std::uint64_t{0};  ///< ts_ns / 1e9 this slot holds
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
        std::uint64_t max = 0;
        std::array<std::uint64_t, log2_histogram::k_buckets> buckets{};
    };
    struct stage_ring {
        std::array<slot, k_slots> slots{};
        std::uint64_t newest_second = 0;
    };
    struct open_sync {
        const char* name = nullptr;
        std::uint64_t ts_ns = 0;
    };

    stage_ring* ring_for(std::string_view name);  // may return null (cap)
    void observe(stage_ring& r, std::uint64_t end_ts_ns, std::uint64_t dur_ns);

    const std::size_t max_stages_;
    mutable std::mutex m_;
    std::map<std::string, stage_ring, std::less<>> stages_;
    std::map<std::uint32_t, std::vector<open_sync>> sync_open_;  ///< per tid
    std::map<std::pair<std::string, std::uint64_t>, std::uint64_t> async_open_;
    std::uint64_t newest_ts_ = 0;
    totals totals_;
};

}  // namespace obs
