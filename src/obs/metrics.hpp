// obs/metrics.hpp — generic metrics: counters, gauges, log2 histograms, and
// a named registry with text / JSON exposition.
//
// Everything on the update path is a relaxed atomic — recording is a handful
// of uncontended RMWs, cheap enough to leave enabled in production.  The
// registry hands out stable references (instruments are never deallocated
// while the registry lives), so hot paths bind a reference once and never
// touch the name map again.
//
// `log2_histogram` is the service's latency histogram promoted to a general
// facility: bucket b counts values with bit_width b, quantiles interpolate
// linearly inside the hit bucket, bounding the error at ~half a bucket width.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace obs {

/// Sanitise a metric name for Prometheus text exposition, once, at the
/// boundary: every character outside [a-zA-Z0-9_:] becomes '_', and a name
/// whose first character may not lead a Prometheus identifier (digit, or
/// empty input) gains a '_' prefix.  Registry names are free-form; anything
/// that leaves the process over /metrics goes through here.
[[nodiscard]] std::string prometheus_name(std::string_view name);

/// JSON string-escape (quotes added) — exposition helpers share this so a
/// hostile instrument name can never break the emitted JSON.
[[nodiscard]] std::string json_quote(std::string_view s);

/// Monotonically increasing event count.
class counter {
public:
    void add(std::uint64_t n = 1) noexcept { v_.fetch_add(n, std::memory_order_relaxed); }
    [[nodiscard]] std::uint64_t value() const noexcept
    {
        return v_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous level (queue depth, in-flight jobs, ...) with a high-water
/// mark maintained across every set/add.
class gauge {
public:
    void set(std::int64_t v) noexcept
    {
        v_.store(v, std::memory_order_relaxed);
        raise_max(v);
    }
    void add(std::int64_t d) noexcept
    {
        raise_max(v_.fetch_add(d, std::memory_order_relaxed) + d);
    }
    [[nodiscard]] std::int64_t value() const noexcept
    {
        return v_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::int64_t max() const noexcept
    {
        return max_.load(std::memory_order_relaxed);
    }

private:
    void raise_max(std::int64_t v) noexcept
    {
        std::int64_t cur = max_.load(std::memory_order_relaxed);
        while (cur < v && !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed,
                                                      std::memory_order_relaxed)) {
        }
    }

    std::atomic<std::int64_t> v_{0};
    std::atomic<std::int64_t> max_{0};
};

/// Log2-bucketed histogram of non-negative integer samples.
class log2_histogram {
public:
    static constexpr int k_buckets = 64;  ///< bucket b counts values with bit_width b

    void observe(std::uint64_t v) noexcept;

    struct data {
        std::array<std::uint64_t, k_buckets> buckets{};
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
        std::uint64_t max = 0;

        /// Approximate quantile, q clamped to [0, 1].  Returns 0 for an empty
        /// histogram; never exceeds the largest observed sample.
        [[nodiscard]] double quantile(double q) const noexcept;
        [[nodiscard]] double mean() const noexcept
        {
            return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
        }
    };

    [[nodiscard]] data snapshot() const noexcept;

private:
    std::array<std::atomic<std::uint64_t>, k_buckets> buckets_{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> max_{0};
};

/// Named instrument registry.  get_* creates on first use and returns a
/// reference that stays valid for the registry's lifetime; exposition walks
/// the maps in name order.  Each subsystem that wants isolated metrics (one
/// decode_service, one benchmark run) owns its own registry; `global()` is
/// the process-wide default.
class registry {
public:
    registry() = default;
    registry(const registry&) = delete;
    registry& operator=(const registry&) = delete;

    counter& get_counter(const std::string& name);
    gauge& get_gauge(const std::string& name);
    log2_histogram& get_histogram(const std::string& name);

    /// One `name value` line per instrument (gauges add `name_max`,
    /// histograms expose count/mean/p50/p95/p99/max).
    [[nodiscard]] std::string expose_text() const;
    /// Single JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
    [[nodiscard]] std::string expose_json() const;

    static registry& global();

private:
    mutable std::mutex m_;
    std::map<std::string, std::unique_ptr<counter>> counters_;
    std::map<std::string, std::unique_ptr<gauge>> gauges_;
    std::map<std::string, std::unique_ptr<log2_histogram>> histograms_;
};

}  // namespace obs
