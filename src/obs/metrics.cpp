#include "metrics.hpp"

#include <bit>
#include <cstdio>

namespace obs {

std::string prometheus_name(std::string_view name)
{
    auto ok = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
               (c >= '0' && c <= '9') || c == '_' || c == ':';
    };
    std::string out;
    out.reserve(name.size() + 1);
    if (name.empty() || (name.front() >= '0' && name.front() <= '9')) out += '_';
    for (const char c : name) out += ok(c) ? c : '_';
    return out;
}

std::string json_quote(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (const char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
    out += '"';
    return out;
}

namespace {

int bucket_of(std::uint64_t v) noexcept
{
    const int b = static_cast<int>(std::bit_width(v));  // 0 for v == 0
    return b >= log2_histogram::k_buckets ? log2_histogram::k_buckets - 1 : b;
}

void fetch_max(std::atomic<std::uint64_t>& slot, std::uint64_t v) noexcept
{
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (cur < v && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed,
                                                  std::memory_order_relaxed)) {
    }
}

}  // namespace

void log2_histogram::observe(std::uint64_t v) noexcept
{
    buckets_[static_cast<std::size_t>(bucket_of(v))].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    fetch_max(max_, v);
}

log2_histogram::data log2_histogram::snapshot() const noexcept
{
    data d;
    for (int b = 0; b < k_buckets; ++b)
        d.buckets[static_cast<std::size_t>(b)] =
            buckets_[static_cast<std::size_t>(b)].load(std::memory_order_relaxed);
    d.count = count_.load(std::memory_order_relaxed);
    d.sum = sum_.load(std::memory_order_relaxed);
    d.max = max_.load(std::memory_order_relaxed);
    return d;
}

double log2_histogram::data::quantile(double q) const noexcept
{
    if (count == 0) return 0.0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    const double target = q * static_cast<double>(count);
    std::uint64_t cum = 0;
    for (int b = 0; b < k_buckets; ++b) {
        const std::uint64_t n = buckets[static_cast<std::size_t>(b)];
        if (n == 0) continue;
        if (static_cast<double>(cum + n) >= target) {
            // Bucket b holds values in [lo, hi); interpolate linearly.  The
            // interpolated point can overshoot the real extremum (a single
            // sample lands mid-bucket, q=1 lands at the open upper bound), so
            // clamp to the observed maximum.
            const double lo = b == 0 ? 0.0 : static_cast<double>(1ull << (b - 1));
            const double hi = static_cast<double>(1ull << b);
            const double frac = (target - static_cast<double>(cum)) / static_cast<double>(n);
            const double est = lo + (hi - lo) * frac;
            const double cap = static_cast<double>(max);
            return est < cap ? est : cap;
        }
        cum += n;
    }
    return static_cast<double>(max);
}

counter& registry::get_counter(const std::string& name)
{
    std::lock_guard lk{m_};
    auto& slot = counters_[name];
    if (!slot) slot = std::make_unique<counter>();
    return *slot;
}

gauge& registry::get_gauge(const std::string& name)
{
    std::lock_guard lk{m_};
    auto& slot = gauges_[name];
    if (!slot) slot = std::make_unique<gauge>();
    return *slot;
}

log2_histogram& registry::get_histogram(const std::string& name)
{
    std::lock_guard lk{m_};
    auto& slot = histograms_[name];
    if (!slot) slot = std::make_unique<log2_histogram>();
    return *slot;
}

std::string registry::expose_text() const
{
    std::lock_guard lk{m_};
    std::string out;
    char buf[256];
    for (const auto& [name, c] : counters_) {
        std::snprintf(buf, sizeof buf, "%s %llu\n", name.c_str(),
                      static_cast<unsigned long long>(c->value()));
        out += buf;
    }
    for (const auto& [name, g] : gauges_) {
        std::snprintf(buf, sizeof buf, "%s %lld\n%s_max %lld\n", name.c_str(),
                      static_cast<long long>(g->value()), name.c_str(),
                      static_cast<long long>(g->max()));
        out += buf;
    }
    for (const auto& [name, h] : histograms_) {
        const auto d = h->snapshot();
        std::snprintf(buf, sizeof buf,
                      "%s_count %llu\n%s_mean %.1f\n%s_p50 %.1f\n%s_p95 %.1f\n"
                      "%s_p99 %.1f\n%s_max %llu\n",
                      name.c_str(), static_cast<unsigned long long>(d.count),
                      name.c_str(), d.mean(), name.c_str(), d.quantile(0.50),
                      name.c_str(), d.quantile(0.95), name.c_str(), d.quantile(0.99),
                      name.c_str(), static_cast<unsigned long long>(d.max));
        out += buf;
    }
    return out;
}

std::string registry::expose_json() const
{
    // Names are free-form user input to the registry; they cross the JSON
    // boundary exactly here, so this is where they get escaped (a name with
    // a quote or control character must not break the document).
    std::lock_guard lk{m_};
    std::string out = "{\"counters\":{";
    char buf[192];
    bool first = true;
    for (const auto& [name, c] : counters_) {
        if (!first) out += ',';
        out += json_quote(name);
        std::snprintf(buf, sizeof buf, ":%llu",
                      static_cast<unsigned long long>(c->value()));
        out += buf;
        first = false;
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [name, g] : gauges_) {
        if (!first) out += ',';
        out += json_quote(name);
        std::snprintf(buf, sizeof buf, ":{\"value\":%lld,\"max\":%lld}",
                      static_cast<long long>(g->value()),
                      static_cast<long long>(g->max()));
        out += buf;
        first = false;
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& [name, h] : histograms_) {
        const auto d = h->snapshot();
        if (!first) out += ',';
        out += json_quote(name);
        std::snprintf(buf, sizeof buf,
                      ":{\"count\":%llu,\"mean\":%.1f,\"p50\":%.1f,"
                      "\"p95\":%.1f,\"p99\":%.1f,\"max\":%llu}",
                      static_cast<unsigned long long>(d.count), d.mean(),
                      d.quantile(0.50), d.quantile(0.95), d.quantile(0.99),
                      static_cast<unsigned long long>(d.max));
        out += buf;
        first = false;
    }
    out += "}}";
    return out;
}

registry& registry::global()
{
    static registry r;
    return r;
}

}  // namespace obs
