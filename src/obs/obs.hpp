// obs/obs.hpp — umbrella header for the observability layer: span tracing
// (trace.hpp), metrics (metrics.hpp), rolling per-stage aggregation
// (rolling.hpp), and the helper that couples tracing to metrics.
#pragma once

#include "metrics.hpp"
#include "rolling.hpp"
#include "trace.hpp"

#include <chrono>

namespace obs {

/// RAII stage timer: accumulates the scope's wall time (nanoseconds) into a
/// counter, and — when tracing is armed — brackets it with a span.  This is
/// the one abstraction behind both Figure-1-style cumulative stage profiles
/// and per-tile flame charts; callers stop hand-rolling clock_gettime pairs.
/// Pass nullptr cat/name to accumulate without emitting a span (used when an
/// inner layer already traces the same region).
class stage_timer {
public:
    stage_timer(const char* cat, const char* name, counter& ns) noexcept
        : span_{cat, name}, ns_{ns}, start_{std::chrono::steady_clock::now()}
    {
    }
    ~stage_timer()
    {
        ns_.add(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start_)
                .count()));
    }
    stage_timer(const stage_timer&) = delete;
    stage_timer& operator=(const stage_timer&) = delete;

private:
    scoped_span span_;
    counter& ns_;
    std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
