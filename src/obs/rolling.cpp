#include "rolling.hpp"

#include <algorithm>
#include <bit>

namespace obs {

namespace {

constexpr std::uint64_t k_ns_per_s = 1'000'000'000ull;

int bucket_of(std::uint64_t v) noexcept
{
    const int b = static_cast<int>(std::bit_width(v));  // 0 for v == 0
    return b >= log2_histogram::k_buckets ? log2_histogram::k_buckets - 1 : b;
}

}  // namespace

rolling_stats::stage_ring* rolling_stats::ring_for(std::string_view name)
{
    auto it = stages_.find(name);
    if (it != stages_.end()) return &it->second;
    if (stages_.size() >= max_stages_) {
        ++totals_.dropped_stages;
        return nullptr;
    }
    return &stages_.emplace(std::string{name}, stage_ring{}).first->second;
}

void rolling_stats::observe(stage_ring& r, std::uint64_t end_ts_ns,
                            std::uint64_t dur_ns)
{
    const std::uint64_t second = end_ts_ns / k_ns_per_s;
    slot& s = r.slots[second % k_slots];
    if (s.second != second) {
        s = slot{};
        s.second = second;
    }
    ++s.count;
    s.sum += dur_ns;
    s.max = std::max(s.max, dur_ns);
    ++s.buckets[static_cast<std::size_t>(bucket_of(dur_ns))];
    r.newest_second = std::max(r.newest_second, second);
    ++totals_.spans;
}

void rolling_stats::consume(const std::vector<trace_event>& evs)
{
    std::lock_guard lk{m_};
    for (const trace_event& ev : evs) {
        if (!ev.name) continue;
        newest_ts_ = std::max(newest_ts_, ev.ts_ns);
        switch (ev.type) {
        case event_type::begin:
            sync_open_[ev.tid].push_back({ev.name, ev.ts_ns});
            break;
        case event_type::end: {
            auto& stack = sync_open_[ev.tid];
            if (stack.empty()) {
                // The matching B fell off the ring before a drain saw it, or
                // preceded the first cursor; the duration is unknowable.
                ++totals_.unmatched_ends;
                break;
            }
            // Chrome semantics: E closes the innermost open B on the thread,
            // whatever its name (the tracer emits balanced pairs, but a
            // wrapped ring can strand mismatches — trust the stack).
            const open_sync b = stack.back();
            stack.pop_back();
            if (stage_ring* r = ring_for(b.name))
                observe(*r, ev.ts_ns, ev.ts_ns >= b.ts_ns ? ev.ts_ns - b.ts_ns : 0);
            break;
        }
        case event_type::async_begin:
            async_open_[{std::string{ev.name}, static_cast<std::uint64_t>(ev.value)}] =
                ev.ts_ns;
            break;
        case event_type::async_end: {
            const auto key = std::make_pair(std::string{ev.name},
                                            static_cast<std::uint64_t>(ev.value));
            auto it = async_open_.find(key);
            if (it == async_open_.end()) {
                ++totals_.unmatched_ends;
                break;
            }
            const std::uint64_t begin_ts = it->second;
            async_open_.erase(it);
            if (stage_ring* r = ring_for(ev.name))
                observe(*r, ev.ts_ns, ev.ts_ns >= begin_ts ? ev.ts_ns - begin_ts : 0);
            break;
        }
        case event_type::instant:
        case event_type::counter:
            break;  // point events carry no duration
        }
    }
}

rolling_stats::window_stats rolling_stats::window(std::string_view stage, int window_s,
                                                  std::uint64_t now_ns) const
{
    window_stats w;
    window_s = std::clamp(window_s, 1, k_max_window_s);
    std::lock_guard lk{m_};
    auto it = stages_.find(stage);
    if (it == stages_.end()) return w;
    const stage_ring& r = it->second;
    if (now_ns == 0) now_ns = newest_ts_;
    const std::uint64_t now_second = now_ns / k_ns_per_s;

    // Sum the slots for seconds (now - window, now]; a slot participates only
    // when it still holds the second the window expects (older slots are
    // either reset-on-write leftovers or from a lap ago).
    log2_histogram::data d;
    for (int back = 0; back < window_s; ++back) {
        if (now_second < static_cast<std::uint64_t>(back)) break;
        const std::uint64_t second = now_second - static_cast<std::uint64_t>(back);
        const slot& s = r.slots[second % k_slots];
        if (s.second != second) continue;
        d.count += s.count;
        d.sum += s.sum;
        d.max = std::max(d.max, s.max);
        for (int b = 0; b < log2_histogram::k_buckets; ++b)
            d.buckets[static_cast<std::size_t>(b)] +=
                s.buckets[static_cast<std::size_t>(b)];
    }
    w.count = d.count;
    w.rate_per_s = static_cast<double>(d.count) / window_s;
    w.mean_ns = d.mean();
    w.p50_ns = d.quantile(0.50);
    w.p99_ns = d.quantile(0.99);
    w.max_ns = d.max;
    return w;
}

std::vector<std::string> rolling_stats::stages() const
{
    std::lock_guard lk{m_};
    std::vector<std::string> out;
    out.reserve(stages_.size());
    for (const auto& [name, ring] : stages_) out.push_back(name);
    return out;
}

rolling_stats::totals rolling_stats::get_totals() const
{
    std::lock_guard lk{m_};
    totals t = totals_;
    for (const auto& [tid, stack] : sync_open_) t.open_spans += stack.size();
    t.open_spans += async_open_.size();
    return t;
}

}  // namespace obs
