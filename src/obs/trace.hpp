// obs/trace.hpp — low-overhead span tracer with Chrome trace-event output.
//
// The write path is a per-thread lock-free ring buffer: emitting an event is
// five relaxed atomic stores plus one release store into the calling thread's
// own ring (no shared cache line, no lock, no allocation).  A drain — from any
// thread, at any time — walks every registered ring and serialises the
// surviving events to Chrome trace-event JSON, loadable in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing.  Rings overwrite their oldest
// events on wrap, so a long run keeps the most recent window per thread.
//
// Two switches, layered:
//   * compile time — building with OBS_TRACING_ENABLED=0 (cmake
//     -DOBS_TRACING=OFF) turns every OBS_TRACE_* macro into nothing: no
//     branch, no string, no code.
//   * run time — tracing starts disabled; `tracer::set_enabled(true)` arms
//     it.  Disarmed macros cost one relaxed atomic load.
//
// Name and category arguments must have static storage duration (string
// literals).  For dynamic names (process names, event names) intern them once
// via `tracer::intern` and emit the returned pointer.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#ifndef OBS_TRACING_ENABLED
#define OBS_TRACING_ENABLED 1
#endif

namespace obs {

namespace detail {

extern std::atomic<bool> g_trace_enabled;

}  // namespace detail

/// True when the tracer is armed (cheap: one relaxed load).
[[nodiscard]] inline bool tracing_enabled() noexcept
{
    return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// True when the OBS_TRACE_* macros were compiled in at all.
[[nodiscard]] constexpr bool tracing_compiled() noexcept
{
    return OBS_TRACING_ENABLED != 0;
}

enum class event_type : std::uint8_t {
    begin,        ///< "B" — opens a synchronous span on this thread
    end,          ///< "E" — closes the innermost open span on this thread
    instant,      ///< "i" — a point event
    counter,      ///< "C" — a sample on a named counter track
    async_begin,  ///< "b" — opens an async span correlated by id (cross-thread)
    async_end,    ///< "e" — closes the async span with the same id
};

/// One decoded trace event (drain-side representation).
struct trace_event {
    std::uint64_t ts_ns = 0;       ///< nanoseconds since tracer epoch
    const char* name = nullptr;    ///< static / interned string
    const char* category = nullptr;
    event_type type = event_type::instant;
    std::uint32_t tid = 0;         ///< tracer-assigned thread index
    std::int64_t value = 0;        ///< counter value or async span id
};

namespace detail {

/// Single-producer ring of trace events.  The owning thread is the only
/// writer; drains may run concurrently from any thread.  Every slot word is a
/// relaxed atomic (no torn reads, clean under TSan) and carries a sequence
/// number: a reader accepts a slot only when the sequence it sees before and
/// after reading the payload matches the index it expects, so a slot being
/// overwritten mid-drain is skipped, never misreported.
class event_ring {
public:
    static constexpr std::size_t k_capacity = 1u << 15;  ///< events per thread

    explicit event_ring(std::uint32_t tid) noexcept : tid_{tid} {}

    void push(event_type t, const char* cat, const char* name, std::uint64_t ts_ns,
              std::int64_t value) noexcept
    {
        const std::uint64_t h = head_.load(std::memory_order_relaxed);
        slot& s = slots_[h & (k_capacity - 1)];
        // Seqlock write protocol: invalidate, fence, payload, publish.  The
        // release fence makes the invalidation visible to any drain that
        // observes one of the new payload words (the drain re-checks the
        // sequence behind an acquire fence), so a slot being overwritten is
        // skipped, never misread.
        s.seq.store(0, std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_release);
        s.ts_ns.store(ts_ns, std::memory_order_relaxed);
        s.name.store(reinterpret_cast<std::uintptr_t>(name), std::memory_order_relaxed);
        s.cat.store(reinterpret_cast<std::uintptr_t>(cat), std::memory_order_relaxed);
        s.type.store(static_cast<std::uint64_t>(t), std::memory_order_relaxed);
        s.value.store(static_cast<std::uint64_t>(value), std::memory_order_relaxed);
        s.seq.store(h + 1, std::memory_order_release);
        head_.store(h + 1, std::memory_order_release);
    }

    /// Append every event still resident in the ring to `out` (oldest first).
    void drain(std::vector<trace_event>& out) const;

    [[nodiscard]] std::uint32_t tid() const noexcept { return tid_; }
    [[nodiscard]] std::uint64_t pushed() const noexcept
    {
        return head_.load(std::memory_order_acquire);
    }
    /// Events overwritten before any drain could see them.
    [[nodiscard]] std::uint64_t overwritten() const noexcept
    {
        const std::uint64_t h = pushed();
        return h > k_capacity ? h - k_capacity : 0;
    }

    void set_thread_name(const char* name) noexcept
    {
        thread_name_.store(reinterpret_cast<std::uintptr_t>(name),
                           std::memory_order_relaxed);
    }
    [[nodiscard]] const char* thread_name() const noexcept
    {
        return reinterpret_cast<const char*>(
            thread_name_.load(std::memory_order_relaxed));
    }

private:
    struct slot {
        std::atomic<std::uint64_t> seq{0};  ///< 0 = empty, else write index + 1
        std::atomic<std::uint64_t> ts_ns{0};
        std::atomic<std::uintptr_t> name{0};
        std::atomic<std::uintptr_t> cat{0};
        std::atomic<std::uint64_t> type{0};
        std::atomic<std::uint64_t> value{0};
    };

    std::atomic<std::uint64_t> head_{0};
    std::uint32_t tid_;
    std::atomic<std::uintptr_t> thread_name_{0};
    std::vector<slot> slots_{k_capacity};
};

}  // namespace detail

/// Process-wide tracer: owns the per-thread rings and the JSON serialiser.
class tracer {
public:
    static tracer& instance();

    /// Arm / disarm event collection.  Cheap to toggle at runtime.
    void set_enabled(bool on) noexcept
    {
        detail::g_trace_enabled.store(on && tracing_compiled(),
                                      std::memory_order_relaxed);
    }
    [[nodiscard]] bool enabled() const noexcept { return tracing_enabled(); }

    /// Stable pointer for a dynamic string, valid for the process lifetime.
    const char* intern(std::string_view s);

    /// Label the calling thread's track in the trace viewer.
    void set_thread_name(std::string_view name);

    // Emission primitives.  The macros below are the intended entry points;
    // they gate on tracing_enabled() before calling in.
    void begin(const char* cat, const char* name) noexcept
    {
        emit(event_type::begin, cat, name, 0);
    }
    void end(const char* cat, const char* name) noexcept
    {
        emit(event_type::end, cat, name, 0);
    }
    void instant(const char* cat, const char* name) noexcept
    {
        emit(event_type::instant, cat, name, 0);
    }
    void counter(const char* cat, const char* name, std::int64_t value) noexcept
    {
        emit(event_type::counter, cat, name, value);
    }
    void async_begin(const char* cat, const char* name, std::uint64_t id) noexcept
    {
        emit(event_type::async_begin, cat, name, static_cast<std::int64_t>(id));
    }
    void async_end(const char* cat, const char* name, std::uint64_t id) noexcept
    {
        emit(event_type::async_end, cat, name, static_cast<std::int64_t>(id));
    }

    /// Drain every ring and write one Chrome trace-event JSON object.
    /// Returns the number of events written.  Safe while emission continues
    /// (in-flight events may be skipped); call with workers quiesced for a
    /// complete picture.
    std::size_t write_json(std::ostream& os) const;
    /// write_json to a file; throws std::runtime_error on I/O failure.
    std::size_t write_json_file(const std::string& path) const;

    /// Collect the raw events (mainly for tests).
    [[nodiscard]] std::vector<trace_event> collect() const;

    /// Cursor drain: every resident event with ts_ns >= since_ns, oldest
    /// first.  Drains are NON-DESTRUCTIVE — events stay in their rings until
    /// overwritten by ring wrap — so any number of cursor consumers (live
    /// /trace tails, the rolling aggregator) and the end-of-run
    /// write_json_file() coexist: none of them can steal events from another,
    /// and the only loss mode is the pre-existing ring overwrite.  Use
    /// next_cursor() on the result to advance: batches from a monotonically
    /// advancing cursor are disjoint by construction.
    [[nodiscard]] std::vector<trace_event> collect_since(std::uint64_t since_ns) const;

    /// The cursor that makes the next collect_since() disjoint from a batch
    /// just collected: max timestamp + 1, or `prev` for an empty batch.
    [[nodiscard]] static std::uint64_t next_cursor(const std::vector<trace_event>& batch,
                                                   std::uint64_t prev) noexcept
    {
        return batch.empty() ? prev : batch.back().ts_ns + 1;
    }

    struct tail_result {
        std::size_t events = 0;          ///< events written to the stream
        std::uint64_t next_since_ns = 0; ///< pass as since_ns of the next tail
    };

    /// Streaming tail: write the events at/after `since_ns` as Chrome
    /// trace-event *array elements* — one JSON object per line, each followed
    /// by a comma, no enclosing brackets.  A consumer that prepends "[" to
    /// the first chunk and concatenates subsequent chunks gets the JSON
    /// Array Format, which Perfetto loads as-is (the trailing comma and the
    /// missing "]" are explicitly tolerated by that format).  Thread-name
    /// metadata records are re-emitted in every chunk so a tail joined
    /// mid-run still labels its tracks.
    tail_result write_json_tail(std::ostream& os, std::uint64_t since_ns) const;

    struct stats {
        std::size_t threads = 0;      ///< rings registered so far
        std::uint64_t pushed = 0;     ///< events ever emitted
        std::uint64_t overwritten = 0;///< lost to ring wrap before a drain
    };
    [[nodiscard]] stats get_stats() const;

    /// Monotonic id source for async (cross-thread) spans.
    [[nodiscard]] std::uint64_t next_id() noexcept
    {
        return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
    }

    /// Nanoseconds since the tracer singleton was constructed.
    [[nodiscard]] std::uint64_t now_ns() const noexcept;

private:
    tracer();

    void emit(event_type t, const char* cat, const char* name,
              std::int64_t value) noexcept;
    detail::event_ring& ring_for_this_thread();

    std::uint64_t epoch_ns_;  ///< steady-clock origin of every timestamp
    std::atomic<std::uint64_t> next_id_{0};

    mutable std::mutex rings_m_;
    std::vector<std::shared_ptr<detail::event_ring>> rings_;

    mutable std::mutex intern_m_;
    std::unordered_set<std::string> interned_;
};

/// RAII span: begin at construction, end at destruction, on this thread's
/// track.  Arms once — toggling the tracer mid-span cannot unbalance B/E.
class scoped_span {
public:
    scoped_span(const char* cat, const char* name) noexcept
        : cat_{cat}, name_{name},
          armed_{tracing_compiled() && cat != nullptr && name != nullptr &&
                 tracing_enabled()}
    {
        if (armed_) tracer::instance().begin(cat_, name_);
    }
    ~scoped_span()
    {
        if (armed_) tracer::instance().end(cat_, name_);
    }
    scoped_span(const scoped_span&) = delete;
    scoped_span& operator=(const scoped_span&) = delete;

private:
    const char* cat_;
    const char* name_;
    bool armed_;
};

}  // namespace obs

// clang-format off
#if OBS_TRACING_ENABLED
#define OBS_DETAIL_CONCAT2(a, b) a##b
#define OBS_DETAIL_CONCAT(a, b) OBS_DETAIL_CONCAT2(a, b)
/// Span covering the rest of the enclosing scope.
#define OBS_TRACE_SCOPE(cat, name) \
    ::obs::scoped_span OBS_DETAIL_CONCAT(obs_scope_, __LINE__){cat, name}
#define OBS_TRACE_BEGIN(cat, name) \
    do { if (::obs::tracing_enabled()) ::obs::tracer::instance().begin(cat, name); } while (0)
#define OBS_TRACE_END(cat, name) \
    do { if (::obs::tracing_enabled()) ::obs::tracer::instance().end(cat, name); } while (0)
#define OBS_TRACE_INSTANT(cat, name) \
    do { if (::obs::tracing_enabled()) ::obs::tracer::instance().instant(cat, name); } while (0)
/// Sample on a counter track (queue depth, occupancy, ...).
#define OBS_TRACE_COUNTER(cat, name, value) \
    do { if (::obs::tracing_enabled()) \
        ::obs::tracer::instance().counter(cat, name, static_cast<std::int64_t>(value)); } while (0)
/// Async span: correlated by id, may begin and end on different threads.
#define OBS_TRACE_ASYNC_BEGIN(cat, name, id) \
    do { if (::obs::tracing_enabled()) \
        ::obs::tracer::instance().async_begin(cat, name, static_cast<std::uint64_t>(id)); } while (0)
#define OBS_TRACE_ASYNC_END(cat, name, id) \
    do { if (::obs::tracing_enabled()) \
        ::obs::tracer::instance().async_end(cat, name, static_cast<std::uint64_t>(id)); } while (0)
#else
#define OBS_TRACE_SCOPE(cat, name) do { } while (0)
#define OBS_TRACE_BEGIN(cat, name) do { } while (0)
#define OBS_TRACE_END(cat, name) do { } while (0)
#define OBS_TRACE_INSTANT(cat, name) do { } while (0)
#define OBS_TRACE_COUNTER(cat, name, value) do { } while (0)
#define OBS_TRACE_ASYNC_BEGIN(cat, name, id) do { } while (0)
#define OBS_TRACE_ASYNC_END(cat, name, id) do { } while (0)
#endif
// clang-format on
