// fossy/platform.hpp — EDK platform file generation.
//
// The last step of the paper's synthesis flow (Figure 4): from the design's
// VTA structure FOSSY emits the vendor architecture definition files an EDK
// project needs — the MHS (Microprocessor Hardware Specification) describing
// processors, buses, memories and the FOSSY-generated HW blocks, and the MSS
// (Microprocessor Software Specification) describing the software platform:
// drivers, the OSSS embedded RMI library, and the task-to-processor mapping.
#pragma once

#include <osss/design.hpp>

#include <string>

namespace fossy {

/// Render the MHS file for `d` (Virtex-4 ML401-style platform @ 100 MHz).
[[nodiscard]] std::string generate_mhs(const osss::design& d);

/// Render the MSS file for `d`.
[[nodiscard]] std::string generate_mss(const osss::design& d);

/// Generate the C source of one software task: the cross-compiled side of
/// the design, linked against the OSSS embedded RMI library ("The SW tasks
/// are cross-compiled and linked against a specific OSSS embedded library
/// that enables the communication with the HW/SW Shared Object").  Every
/// Application-Layer method call of the task becomes an osss_rmi_call stub.
[[nodiscard]] std::string generate_sw_source(const osss::design& d,
                                             const std::string& task_name);

}  // namespace fossy
