// fossy/rtl.hpp — the RTL intermediate representation of the FOSSY
// synthesiser (Functional Oldenburg System SYnthesiser).
//
// FOSSY consumes the VTA model's hardware side and produces synthesisable
// VHDL.  This IR sits between the two: an entity is a set of ports, signals,
// inferred memories, subprograms (VHDL functions/procedures — present in
// hand-written style), and one or more explicit finite state machines whose
// states execute dataflow operations.
//
// Two authoring styles matter for the paper's Table 2 comparison:
//   * "hand-written reference" — several cooperating FSMs, filter maths kept
//     in subprograms, operators instantiated in parallel;
//   * "FOSSY output" — the transform pipeline inlines every subprogram and
//     flattens all FSMs into a single explicit state machine (identifiers
//     preserved), trading sharing for logic depth.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fossy {

enum class port_dir { in, out, inout };

struct port {
    std::string name;
    port_dir dir = port_dir::in;
    int width = 1;
};

/// A scalar signal/variable of the architecture.
struct signal_decl {
    std::string name;
    int width = 1;
    bool registered = false;  ///< true ⇒ holds state (costs flip-flops)
};

/// An inferred memory.
struct memory_decl {
    std::string name;
    int words = 0;
    int width = 0;
    bool block_ram = true;  ///< false ⇒ distributed (LUT) RAM
};

/// Dataflow operation kinds, each with a distinct area/delay cost.
enum class op_kind {
    assign,    ///< wire/register move
    add,       ///< addition/subtraction (carry chain)
    mul,       ///< multiplier
    shift,     ///< constant shift (wiring only)
    compare,   ///< relational operator
    logic,     ///< bitwise and/or/xor/not
    mux,       ///< 2:1 select
    mem_read,  ///< memory port read
    mem_write, ///< memory port write
    call,      ///< subprogram invocation (eliminated by inlining)
};

[[nodiscard]] constexpr const char* op_name(op_kind k) noexcept
{
    switch (k) {
        case op_kind::assign: return "assign";
        case op_kind::add: return "add";
        case op_kind::mul: return "mul";
        case op_kind::shift: return "shift";
        case op_kind::compare: return "compare";
        case op_kind::logic: return "logic";
        case op_kind::mux: return "mux";
        case op_kind::mem_read: return "mem_read";
        case op_kind::mem_write: return "mem_write";
        case op_kind::call: return "call";
    }
    return "?";
}

struct operation {
    op_kind kind = op_kind::assign;
    int width = 16;
    std::string result;             ///< target signal (or memory for mem_write)
    std::vector<std::string> args;  ///< operand signals; for call: [subprogram]
};

struct transition {
    std::string condition;  ///< VHDL-ish boolean expression; "" = unconditional
    std::string target;     ///< state name
};

struct fsm_state {
    std::string name;
    std::vector<operation> ops;
    std::vector<transition> next;
};

struct fsm {
    std::string name;
    std::vector<fsm_state> states;
};

/// A VHDL function/procedure (hand-written style keeps these separate).
struct subprogram {
    std::string name;
    std::vector<std::string> params;
    std::vector<operation> body;
    std::string result;  ///< name of the value a call substitutes
};

struct entity {
    std::string name;
    std::vector<port> ports;
    std::vector<signal_decl> signals;
    std::vector<memory_decl> memories;
    std::vector<subprogram> subprograms;
    std::vector<fsm> fsms;
    /// Set by the share_operators pass: operator instances are shared across
    /// states (the estimator then counts max-per-state, not total, usage).
    bool shared_ops = false;

    [[nodiscard]] std::size_t total_states() const noexcept
    {
        std::size_t n = 0;
        for (const auto& f : fsms) n += f.states.size();
        return n;
    }
    [[nodiscard]] std::size_t total_ops() const noexcept
    {
        std::size_t n = 0;
        for (const auto& f : fsms)
            for (const auto& s : f.states) n += s.ops.size();
        return n;
    }
};

}  // namespace fossy
