// fossy/estimate.hpp — Virtex-4 area/timing estimation.
//
// Stands in for XST + ISE place-and-route in the paper's Table 2: maps an
// RTL entity onto the resource classes an ISE report shows for a Virtex-4
// LX25 — slice flip-flops, 4-input LUTs, occupied slices, total equivalent
// gate count, and an estimated maximum frequency from the longest
// combinational chain inside any FSM state.
//
// The model is calibrated at the level that matters for the paper's
// comparison: *relative* differences between a hand-partitioned design and a
// FOSSY-flattened one (register duplication, operator sharing, mux insertion,
// logic depth).  Absolute counts are representative, not sign-off.
#pragma once

#include "rtl.hpp"

namespace fossy {

/// One row of Table 2.
struct area_report {
    long slice_ff = 0;
    long lut4 = 0;
    long occupied_slices = 0;
    long equivalent_gates = 0;
    double fmax_mhz = 0.0;
};

/// Per-device capacity (Virtex-4 LX25), for utilisation percentages.
struct device_model {
    long slices = 10752;
    long slice_ff = 21504;
    long lut4 = 21504;
    const char* name = "xc4vlx25";
};

/// Estimate `e` on a Virtex-4.  The entity is analysed as-is: run the FOSSY
/// pipeline first for generated-style results, or pass a hand-written entity
/// directly for reference-style results.
[[nodiscard]] area_report estimate_virtex4(const entity& e);

/// Longest combinational delay (ns) through any single FSM state.
[[nodiscard]] double critical_path_ns(const entity& e);

/// Combinational delay of one operator instance (Virtex-4 model).
[[nodiscard]] double op_delay_ns(const operation& op) noexcept;

/// Largest in-state chain (ns) compatible with `fmax_mhz`, given the state
/// count (the FSM decode depth grows with it).  Feed this to fossy::retime.
[[nodiscard]] double chain_budget_ns(double fmax_mhz, std::size_t states) noexcept;

}  // namespace fossy
