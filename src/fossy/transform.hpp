// fossy/transform.hpp — the FOSSY synthesis transformations.
//
// The pipeline the paper describes for the hardware subsystem:
//
//   1. inline_subprograms — every function/procedure call site is replaced by
//      a copy of the body with call-site-unique temporaries (identifiers are
//      preserved with a site prefix so the generated VHDL stays readable).
//   2. flatten_fsms — all FSMs of the entity are merged into one explicit
//      state machine (state names prefixed by their source FSM).
//   3. share_operators — multipliers are shared across states: per state the
//      demand stays, but the instantiated operator count drops to the
//      entity-wide maximum simultaneous use.  Sharing inserts input muxes and
//      lengthens combinational paths, which is the area-down/frequency-down
//      trade Table 2 shows for the IDWT97.
//
// `synthesize` runs the full pipeline and reports what changed.
#pragma once

#include "rtl.hpp"

namespace fossy {

/// Result of running the synthesis pipeline on one entity.
struct synthesis_report {
    std::size_t call_sites_inlined = 0;
    std::size_t fsms_merged = 0;
    std::size_t states_before = 0;
    std::size_t states_after = 0;
    std::size_t ops_before = 0;
    std::size_t ops_after = 0;
    std::size_t multipliers_shared = 0;
    std::size_t states_split = 0;  ///< states cut by the retiming pass
};

/// Replace every `op_kind::call` by the callee's body (recursively).
/// Temporaries are renamed `<site>_<name>`; throws std::invalid_argument on
/// unknown callees or recursion.
[[nodiscard]] entity inline_subprograms(const entity& e, synthesis_report* rep = nullptr);

/// Merge all FSMs into a single one named "<entity>_fsm".  A flattened
/// round-robin scheduler chains the source FSMs' idle states, preserving each
/// original state under the name "<fsm>_<state>".
[[nodiscard]] entity flatten_fsms(const entity& e, synthesis_report* rep = nullptr);

/// Share multiplier instances entity-wide; adds the operand muxes the sharing
/// needs.  Only meaningful after flattening.
[[nodiscard]] entity share_operators(const entity& e, synthesis_report* rep = nullptr);

/// Loop unrolling: replicate every state whose name starts with `prefix`
/// into `copies` chained instances (`<state>_l0` … `<state>_lN-1`), the way
/// FOSSY unrolls the decomposition-level loop of the IDWT.  Signals written
/// in unrolled states are replicated alongside.
[[nodiscard]] entity unroll_states(const entity& e, const std::string& prefix, int copies);

/// Timing-driven state splitting ("operation chaining under a clock
/// constraint"): any state whose combinational chain exceeds
/// `target_clock_ns` is cut into a chain of sub-states; values crossing a
/// cut become registers.  Costs latency (more states/FFs), buys frequency —
/// the knob that lets generated designs meet the 100 MHz system clock.
[[nodiscard]] entity retime(const entity& e, double target_clock_ns,
                            synthesis_report* rep = nullptr);

/// Full FOSSY pipeline: inline → flatten → share.
[[nodiscard]] entity synthesize(const entity& e, synthesis_report* rep = nullptr);

}  // namespace fossy
