#include "transform.hpp"

#include "estimate.hpp"

#include <map>
#include <set>
#include <stdexcept>

namespace fossy {

namespace {

const subprogram* find_subprogram(const entity& e, const std::string& name)
{
    for (const auto& s : e.subprograms)
        if (s.name == name) return &s;
    return nullptr;
}

/// Expand one call op into the callee body with site-unique temporaries.
void expand_call(const entity& e, const operation& call_op, unsigned site,
                 std::vector<operation>& out, std::set<std::string>& new_signals,
                 std::size_t& inlined, int depth)
{
    if (depth > 16) throw std::invalid_argument{"fossy: recursive subprogram"};
    if (call_op.args.empty())
        throw std::invalid_argument{"fossy: call without callee"};
    const subprogram* sp = find_subprogram(e, call_op.args.front());
    if (!sp) throw std::invalid_argument{"fossy: unknown subprogram " + call_op.args.front()};
    ++inlined;
    const std::string prefix = sp->name + "_s" + std::to_string(site) + "_";
    auto rename = [&](const std::string& n) {
        // Parameters and the result keep their identity via the caller's
        // operands; locals get a site-unique name (identifier-preserving).
        for (std::size_t i = 0; i < sp->params.size() && i + 1 < call_op.args.size(); ++i)
            if (n == sp->params[i]) return call_op.args[i + 1];
        if (n == sp->result && !call_op.result.empty()) return call_op.result;
        const std::string renamed = prefix + n;
        new_signals.insert(renamed);
        return renamed;
    };
    for (const auto& op : sp->body) {
        if (op.kind == op_kind::call) {
            operation nested = op;
            nested.result = rename(op.result);
            for (std::size_t i = 1; i < nested.args.size(); ++i)
                nested.args[i] = rename(nested.args[i]);
            // Unsigned: deep nesting wraps the site hash instead of
            // overflowing (names only need to be distinct, not ordered).
            expand_call(e, nested, site * 131u + 7u, out, new_signals, inlined, depth + 1);
            continue;
        }
        operation copy = op;
        copy.result = rename(op.result);
        for (auto& a : copy.args) a = rename(a);
        out.push_back(std::move(copy));
    }
}

}  // namespace

entity inline_subprograms(const entity& e, synthesis_report* rep)
{
    entity out = e;
    out.subprograms.clear();
    std::size_t inlined = 0;
    std::set<std::string> new_signals;
    unsigned site = 0;
    for (auto& f : out.fsms) {
        for (auto& st : f.states) {
            std::vector<operation> ops;
            for (const auto& op : st.ops) {
                if (op.kind == op_kind::call) {
                    expand_call(e, op, site++, ops, new_signals, inlined, 0);
                } else {
                    ops.push_back(op);
                }
            }
            st.ops = std::move(ops);
        }
    }
    // Inlined locals are intra-state wires; only each subprogram's return
    // value is registered at the state boundary (the small flip-flop overhead
    // Table 2 shows for the IDWT53).
    for (const auto& n : new_signals) out.signals.push_back({n, 18, false});
    for (const auto& sp : e.subprograms)
        out.signals.push_back({sp.name + "_ret", 18, true});
    if (rep) rep->call_sites_inlined += inlined;
    return out;
}

entity flatten_fsms(const entity& e, synthesis_report* rep)
{
    if (rep) {
        rep->states_before += e.total_states();
        rep->fsms_merged += e.fsms.size() > 1 ? e.fsms.size() : 0;
    }
    entity out = e;
    if (e.fsms.size() <= 1) {
        if (rep) rep->states_after += e.total_states();
        return out;
    }
    out.fsms.clear();
    fsm merged;
    merged.name = e.name + "_fsm";
    for (const auto& f : e.fsms) {
        for (const auto& st : f.states) {
            fsm_state copy = st;
            copy.name = f.name + "_" + st.name;
            for (auto& tr : copy.next) tr.target = f.name + "_" + tr.target;
            merged.states.push_back(std::move(copy));
        }
    }
    // Round-robin scheduler chaining: each source FSM's entry state falls
    // through to the next FSM's entry when its own machine idles.
    for (std::size_t i = 0; i < e.fsms.size(); ++i) {
        const auto& cur = e.fsms[i];
        const auto& nxt = e.fsms[(i + 1) % e.fsms.size()];
        if (cur.states.empty() || nxt.states.empty()) continue;
        const std::string from = cur.name + "_" + cur.states.front().name;
        const std::string to = nxt.name + "_" + nxt.states.front().name;
        for (auto& st : merged.states) {
            if (st.name == from)
                st.next.push_back({"others", to});
        }
    }
    out.fsms.push_back(std::move(merged));
    if (rep) rep->states_after += out.total_states();
    return out;
}

entity share_operators(const entity& e, synthesis_report* rep)
{
    entity out = e;
    // Demand: maximum number of multiplications in any single state (these
    // must run in parallel); total instantiated before sharing is the sum.
    std::size_t max_per_state = 0;
    std::size_t total = 0;
    for (const auto& f : out.fsms) {
        for (const auto& s : f.states) {
            std::size_t n = 0;
            for (const auto& op : s.ops) n += op.kind == op_kind::mul;
            max_per_state = std::max(max_per_state, n);
            total += n;
        }
    }
    out.shared_ops = true;
    if (total <= max_per_state) return out;  // nothing to share

    // Every shared multiplier needs operand muxes; model this by inserting
    // two mux operations per folded multiplier use.
    const std::size_t folded = total - max_per_state;
    for (auto& f : out.fsms) {
        for (auto& s : f.states) {
            std::vector<operation> ops;
            for (auto& op : s.ops) {
                if (op.kind == op_kind::mul) {
                    ops.push_back({op_kind::mux, op.width, op.result + "_a", op.args});
                    ops.push_back({op_kind::mux, op.width, op.result + "_b", op.args});
                    operation shared = op;
                    shared.args = {op.result + "_a", op.result + "_b"};
                    ops.push_back(std::move(shared));
                } else {
                    ops.push_back(op);
                }
            }
            s.ops = std::move(ops);
        }
    }
    if (rep) rep->multipliers_shared += folded;
    return out;
}

entity unroll_states(const entity& e, const std::string& prefix, int copies)
{
    if (copies < 1) throw std::invalid_argument{"unroll_states: copies >= 1"};
    entity out = e;
    std::set<std::string> replicated_signals;
    for (auto& f : out.fsms) {
        std::vector<fsm_state> states;
        for (const auto& st : f.states) {
            if (st.name.rfind(prefix, 0) != 0) {
                states.push_back(st);
                continue;
            }
            for (int c = 0; c < copies; ++c) {
                fsm_state copy = st;
                const std::string suffix = "_l" + std::to_string(c);
                copy.name = st.name + suffix;
                for (auto& op : copy.ops) {
                    if (!op.result.empty()) {
                        replicated_signals.insert(op.result + suffix);
                        op.result += suffix;
                    }
                }
                copy.next.clear();
                if (c + 1 < copies) {
                    copy.next.push_back({"", st.name + "_l" + std::to_string(c + 1)});
                } else {
                    copy.next = st.next;  // last copy keeps the original exits
                }
                states.push_back(std::move(copy));
            }
        }
        // Retarget transitions that pointed at an unrolled state to its first copy.
        for (auto& st : states) {
            for (auto& tr : st.next) {
                for (const auto& orig : e.fsms) {
                    for (const auto& os_ : orig.states) {
                        if (tr.target == os_.name && os_.name.rfind(prefix, 0) == 0)
                            tr.target = os_.name + "_l0";
                    }
                }
            }
        }
        f.states = std::move(states);
    }
    for (const auto& n : replicated_signals) out.signals.push_back({n, 18, false});
    return out;
}

entity retime(const entity& e, double target_clock_ns, synthesis_report* rep)
{
    if (target_clock_ns <= 0.0)
        throw std::invalid_argument{"retime: target clock must be positive"};
    entity out = e;
    std::set<std::string> cut_registers;
    for (auto& f : out.fsms) {
        std::vector<fsm_state> states;
        for (auto& st : f.states) {
            // Greedy list scheduling: pack ops into sub-states whose internal
            // chains stay within the budget.  Producers precede consumers in
            // the IR, so a single forward walk suffices.
            std::vector<std::vector<operation>> groups{{}};
            std::vector<std::pair<std::size_t, operation>> latches;
            std::map<std::string, double> ready;
            for (const auto& op : st.ops) {
                double start = 0.0;
                for (const auto& a : op.args) {
                    auto it = ready.find(a);
                    if (it != ready.end()) start = std::max(start, it->second);
                }
                double done = start + op_delay_ns(op);
                if (done > target_clock_ns && !groups.back().empty()) {
                    groups.emplace_back();
                    ready.clear();
                    done = op_delay_ns(op);  // operands now come from registers
                }
                groups.back().push_back(op);
                if (!op.result.empty())
                    ready[op.result] = op.kind == op_kind::mem_read ? 0.0 : done;
            }
            if (groups.size() == 1) {
                states.push_back(st);
                continue;
            }
            if (rep) ++rep->states_split;
            // Only values *live across a cut* (produced in one sub-state and
            // consumed in a later one) need boundary registers — and since at
            // most one FSM state is active at a time, every split state can
            // reuse the same physical stage registers: rename live values to
            // canonical per-(group, slot) names.
            for (std::size_t g = 0; g + 1 < groups.size(); ++g) {
                int slot = 0;
                for (auto& producer : groups[g]) {
                    if (producer.result.empty()) continue;
                    bool live = false;
                    for (std::size_t h = g + 1; h < groups.size() && !live; ++h)
                        for (const auto& consumer : groups[h])
                            for (const auto& a : consumer.args)
                                if (a == producer.result) live = true;
                    if (!live) continue;
                    const std::string reg =
                        "stage_reg_" + std::to_string(g) + "_" + std::to_string(slot++);
                    const std::string orig = producer.result;
                    // Later groups read the stage register; same-group
                    // consumers keep reading the original wire.
                    for (std::size_t h = g + 1; h < groups.size(); ++h)
                        for (auto& consumer : groups[h])
                            for (auto& a : consumer.args)
                                if (a == orig) a = reg;
                    latches.push_back({g, {op_kind::assign, producer.width, reg, {orig}}});
                    cut_registers.insert(reg);
                }
            }
            for (auto& [g, latch] : latches) groups[g].push_back(latch);
            latches.clear();
            for (std::size_t g = 0; g < groups.size(); ++g) {
                fsm_state sub;
                sub.name = g == 0 ? st.name : st.name + "_c" + std::to_string(g);
                sub.ops = std::move(groups[g]);
                if (g + 1 < groups.size())
                    sub.next = {{"", st.name + "_c" + std::to_string(g + 1)}};
                else
                    sub.next = st.next;  // the final sub-state keeps the exits
                states.push_back(std::move(sub));
            }
        }
        f.states = std::move(states);
    }
    // Values crossing a cut boundary must be held in registers.
    for (const auto& name : cut_registers) {
        bool found = false;
        for (auto& s : out.signals) {
            if (s.name == name) {
                s.registered = true;
                found = true;
            }
        }
        if (!found) out.signals.push_back({name, 18, true});
    }
    return out;
}

entity synthesize(const entity& e, synthesis_report* rep)
{
    if (rep) rep->ops_before += e.total_ops();
    entity out = inline_subprograms(e, rep);
    out = flatten_fsms(out, rep);
    out = share_operators(out, rep);
    if (rep) rep->ops_after += out.total_ops();
    return out;
}

}  // namespace fossy
