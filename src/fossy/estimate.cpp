#include "estimate.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <vector>

namespace fossy {

namespace {

/// LUT cost of one operator instance.
long lut_cost(const operation& op) noexcept
{
    const long w = op.width;
    switch (op.kind) {
        case op_kind::add: return w;                 // carry chain, 1 LUT/bit
        case op_kind::mul: return 24;                // DSP48 block + glue
        case op_kind::compare: return (w + 1) / 2;   // 2 bits per LUT4
        case op_kind::logic: return (w + 1) / 2;
        case op_kind::mux: return w;                 // 2:1 select per bit
        case op_kind::mem_read: return 2;            // address/control glue
        case op_kind::mem_write: return 3;
        case op_kind::assign: return 0;
        case op_kind::shift: return 0;               // constant shift = wiring
        case op_kind::call: return 0;                // removed by inlining
    }
    return 0;
}

}  // namespace

/// Combinational delay (ns) of one operator on Virtex-4 fabric (-10 grade),
/// including local routing.
double op_delay_ns(const operation& op) noexcept
{
    switch (op.kind) {
        case op_kind::add: return 1.1 + 0.035 * op.width;  // carry ripple
        case op_kind::mul: return 3.4 + 0.020 * op.width;  // DSP48-assisted
        case op_kind::compare: return 1.3;
        case op_kind::logic: return 0.6;
        case op_kind::mux: return 0.7;
        case op_kind::mem_read: return 1.9;  // synchronous BRAM clock-to-out
        case op_kind::mem_write: return 0.9;
        case op_kind::assign: return 0.15;
        case op_kind::shift: return 0.1;
        case op_kind::call: return 0.0;
    }
    return 0.0;
}

double chain_budget_ns(double fmax_mhz, std::size_t states) noexcept
{
    // Invert the fmax model: fmax = 1000 / ((chain + decode)·routing + ovh).
    const double decode = 0.2 * std::log2(static_cast<double>(states) + 1.0);
    return (1000.0 / fmax_mhz - 1.2) / 1.15 - decode;
}

namespace {

[[nodiscard]] long state_bits(std::size_t states) noexcept
{
    long b = 1;
    while ((1ll << b) < static_cast<long long>(states)) ++b;
    return b;
}

/// Longest dependency chain within one state (ops are a DAG via result→args).
double state_critical_path(const fsm_state& st)
{
    // longest path ending at op i, by walking ops in order (producers appear
    // before consumers in our IR).
    std::map<std::string, double> ready;  // signal → time it becomes valid
    double worst = 0.0;
    for (const auto& op : st.ops) {
        double start = 0.0;
        for (const auto& a : op.args) {
            auto it = ready.find(a);
            if (it != ready.end()) start = std::max(start, it->second);
        }
        const double done = start + op_delay_ns(op);
        if (!op.result.empty()) {
            // Synchronous block RAM registers its read data: consumers see it
            // at the start of the next cycle, not after the access delay.
            const double visible = op.kind == op_kind::mem_read ? 0.0 : done;
            ready[op.result] = std::max(ready[op.result], visible);
        }
        worst = std::max(worst, done);
    }
    return worst;
}

}  // namespace

double critical_path_ns(const entity& e)
{
    double worst = 0.0;
    for (const auto& f : e.fsms)
        for (const auto& s : f.states) worst = std::max(worst, state_critical_path(s));
    // FSM next-state decode adds one level per 8 states (wide case mux tree).
    const double fsm_decode =
        0.2 * std::log2(static_cast<double>(e.total_states()) + 1.0);
    return worst + fsm_decode;
}

area_report estimate_virtex4(const entity& e)
{
    area_report r;

    // ---- flip-flops: registered signals + FSM state register -------------
    for (const auto& s : e.signals)
        if (s.registered) r.slice_ff += s.width;
    for (const auto& f : e.fsms) r.slice_ff += state_bits(f.states.size());
    for (const auto& p : e.ports)
        if (p.dir == port_dir::out) r.slice_ff += p.width;  // registered outputs

    // ---- LUTs: operator instances + FSM next-state logic -----------------
    // Operator instances: per (kind,width) bucket, the maximum number of
    // simultaneous uses in any one state must exist in hardware; uses in
    // other states share those instances through the FSM (this mirrors what
    // XST achieves on both hand-written and generated RTL).  Sharing muxes
    // inserted by the share_operators pass are counted like any other op.
    std::map<std::pair<op_kind, int>, long> instances;
    auto count_states = [&instances](const std::vector<fsm_state>& states) {
        for (const auto& s : states) {
            std::map<std::pair<op_kind, int>, long> in_state;
            for (const auto& op : s.ops) in_state[{op.kind, op.width}] += 1;
            for (const auto& [key, n] : in_state)
                instances[key] = std::max(instances[key], n);
        }
    };
    for (const auto& f : e.fsms) count_states(f.states);
    for (const auto& sp : e.subprograms) {
        // A (non-inlined) subprogram is one hardware instance of its body.
        fsm_state body{"sub", sp.body, {}};
        count_states({body});
    }
    for (const auto& [key, n] : instances)
        r.lut4 += n * lut_cost({key.first, key.second, "", {}});
    // Per-state result muxing into shared operators and next-state decode:
    // grows with state count and fan-in (the flattening overhead).
    for (const auto& f : e.fsms) {
        long transitions = 0;
        for (const auto& s : f.states) transitions += static_cast<long>(s.next.size());
        r.lut4 += transitions * state_bits(f.states.size()) / 6 + transitions;
        r.lut4 += static_cast<long>(f.states.size()) * 2;  // enable decode per state
    }

    // ---- slices: 2 LUT4 + 2 FF per slice.  Real packing lands between the
    // ideal max(lut,ff)/2 (perfect pairing) and (lut+ff)/2 (no pairing);
    // blend 40/60 towards the pessimistic bound, as ISE map typically does.
    r.occupied_slices = static_cast<long>(std::ceil(
        0.6 * (r.lut4 + r.slice_ff) / 2.0 + 0.4 * std::max(r.lut4, r.slice_ff) / 2.0));

    // ---- equivalent gates: ISE-style accounting ---------------------------
    long ram_bits = 0;
    for (const auto& m : e.memories)
        ram_bits += static_cast<long>(m.words) * m.width;
    r.equivalent_gates = 6 * r.lut4 + 8 * r.slice_ff + ram_bits;

    // ---- timing ------------------------------------------------------------
    const double path = critical_path_ns(e);
    const double clk_overhead = 1.2;   // clock-to-Q + setup
    const double routing_factor = 1.15;
    r.fmax_mhz = 1000.0 / (path * routing_factor + clk_overhead);
    return r;
}

}  // namespace fossy
