#include "idwt_models.hpp"

#include "transform.hpp"

#include <string>

namespace fossy {

namespace {

using ops_t = std::vector<operation>;

std::string idx(const std::string& base, int i)
{
    return base + std::to_string(i);
}

/// Shared scaffolding: ports and the line buffer of the paper's snippet
/// (xilinx_block_ram<osss_array<short, 2N+5>, 32, 16>).
entity idwt_shell(std::string name, int data_width)
{
    entity e;
    e.name = std::move(name);
    e.ports = {
        {"start", port_dir::in, 1},
        {"done", port_dir::out, 1},
        {"mode", port_dir::in, 2},
        {"tile_w", port_dir::in, 8},
        {"tile_h", port_dir::in, 8},
        {"din", port_dir::in, data_width},
        {"din_valid", port_dir::in, 1},
        {"dout", port_dir::out, data_width},
        {"dout_valid", port_dir::out, 1},
    };
    e.memories.push_back({"line_buffer", 2 * k_idwt_tile_n + 5, 32, true});
    return e;
}

void add_counters(entity& e, int n)
{
    for (int i = 0; i < n; ++i) e.signals.push_back({idx("cnt", i), 8, true});
}

void add_regs(entity& e, const std::string& base, int n, int width, bool registered = true)
{
    for (int i = 0; i < n; ++i) e.signals.push_back({idx(base, i), width, registered});
}

/// Address-generation ops shared by every processing state.
ops_t addressing(const std::string& tag)
{
    return {
        {op_kind::add, 8, tag + "_addr", {"cnt0", "base"}},
        {op_kind::compare, 8, tag + "_last", {"cnt0", "tile_w"}},
        {op_kind::mux, 8, tag + "_naddr", {tag + "_addr", "zero"}},
    };
}

}  // namespace

// ---------------------------------------------------------------------------
// IDWT 5/3 — hand-crafted reference: two cooperating FSMs, all filter maths
// written out in place, operators instantiated per use, shallow logic.
// ---------------------------------------------------------------------------

entity idwt53_reference()
{
    entity e = idwt_shell("idwt53_ref", 16);
    add_counters(e, 6);
    add_regs(e, "px", 10, 16);
    add_regs(e, "lb", 6, 16);
    e.signals.push_back({"base", 8, true});
    e.signals.push_back({"zero", 8, false});
    e.signals.push_back({"tile_w_r", 8, true});

    auto predict_ops = [](const std::string& tag) -> ops_t {
        // x[i] -= (x[i-1] + x[i+1]) >> 1, via line buffer.
        ops_t o = addressing(tag);
        o.push_back({op_kind::mem_read, 16, tag + "_a", {"line_buffer", tag + "_addr"}});
        o.push_back({op_kind::mem_read, 16, tag + "_b", {"line_buffer", tag + "_naddr"}});
        o.push_back({op_kind::add, 16, tag + "_sum", {tag + "_a", tag + "_b"}});
        o.push_back({op_kind::shift, 16, tag + "_half", {tag + "_sum", "1"}});
        o.push_back({op_kind::add, 16, tag + "_res", {"px0", tag + "_half"}});
        o.push_back({op_kind::mem_write, 16, "line_buffer", {tag + "_addr", tag + "_res"}});
        return o;
    };
    auto update_ops = [](const std::string& tag) -> ops_t {
        // x[i] += (x[i-1] + x[i+1] + 2) >> 2.
        ops_t o = addressing(tag);
        o.push_back({op_kind::mem_read, 16, tag + "_a", {"line_buffer", tag + "_addr"}});
        o.push_back({op_kind::mem_read, 16, tag + "_b", {"line_buffer", tag + "_naddr"}});
        o.push_back({op_kind::add, 16, tag + "_sum", {tag + "_a", tag + "_b"}});
        o.push_back({op_kind::add, 16, tag + "_rnd", {tag + "_sum", "two"}});
        o.push_back({op_kind::shift, 16, tag + "_q", {tag + "_rnd", "2"}});
        o.push_back({op_kind::add, 16, tag + "_res", {"px1", tag + "_q"}});
        o.push_back({op_kind::mem_write, 16, "line_buffer", {tag + "_addr", tag + "_res"}});
        return o;
    };
    auto edge_ops = [](const std::string& tag) -> ops_t {
        ops_t o;
        o.push_back({op_kind::mem_read, 16, tag + "_m", {"line_buffer", "one"}});
        o.push_back({op_kind::assign, 16, tag + "_mirror", {tag + "_m"}});
        o.push_back({op_kind::shift, 16, tag + "_h", {tag + "_mirror", "1"}});
        o.push_back({op_kind::add, 16, tag + "_res", {"px0", tag + "_h"}});
        o.push_back({op_kind::mem_write, 16, "line_buffer", {"zero", tag + "_res"}});
        return o;
    };
    auto move_ops = [](const std::string& tag) -> ops_t {
        ops_t o;
        o.push_back({op_kind::mem_read, 16, tag + "_v", {"line_buffer", "cnt1"}});
        o.push_back({op_kind::assign, 16, "px0", {tag + "_v"}});
        o.push_back({op_kind::assign, 16, "px1", {"px0"}});
        o.push_back({op_kind::add, 8, "cnt1", {"cnt1", "one"}});
        o.push_back({op_kind::compare, 8, tag + "_end", {"cnt1", "tile_w_r"}});
        return o;
    };

    // Control FSM: row pass then column pass per level, counter-driven.
    fsm ctrl{"ctrl", {}};
    ctrl.states.push_back({"idle", {{op_kind::assign, 1, "done", {"zero"}}}, {{"start = '1'", "cfg"}}});
    ctrl.states.push_back({"cfg",
                           {{op_kind::assign, 8, "tile_w_r", {"tile_w"}},
                            {op_kind::assign, 8, "base", {"zero"}},
                            {op_kind::assign, 8, "cnt0", {"zero"}}},
                           {{"", "load_row"}}});
    ctrl.states.push_back({"load_row", move_ops("ld"), {{"din_valid = '1'", "h_left"}}});
    ctrl.states.push_back({"h_left", edge_ops("hl"), {{"", "h_predict"}}});
    ctrl.states.push_back({"h_predict", predict_ops("hp"), {{"hp_last = '1'", "h_update"}}});
    ctrl.states.push_back({"h_update", update_ops("hu"), {{"hu_last = '1'", "h_right"}}});
    ctrl.states.push_back({"h_right", edge_ops("hr"), {{"", "store_row"}}});
    ctrl.states.push_back({"store_row", move_ops("st"), {{"st_end = '1'", "load_col"}}});
    ctrl.states.push_back({"load_col", move_ops("lc"), {{"", "v_left"}}});
    ctrl.states.push_back({"v_left", edge_ops("vl"), {{"", "v_predict"}}});
    ctrl.states.push_back({"v_predict", predict_ops("vp"), {{"vp_last = '1'", "v_update"}}});
    ctrl.states.push_back({"v_update", update_ops("vu"), {{"vu_last = '1'", "v_right"}}});
    ctrl.states.push_back({"v_right", edge_ops("vr"), {{"", "store_col"}}});
    ctrl.states.push_back({"store_col", move_ops("sc"), {{"sc_end = '1'", "level"}}});
    ctrl.states.push_back({"level",
                           {{op_kind::shift, 8, "tile_w_r", {"tile_w_r", "1"}},
                            {op_kind::compare, 8, "lvl_done", {"tile_w_r", "one"}}},
                           {{"lvl_done = '1'", "flush"}, {"", "load_row"}}});
    ctrl.states.push_back({"flush", move_ops("fl"), {{"fl_end = '1'", "done_st"}}});
    ctrl.states.push_back({"done_st", {{op_kind::assign, 1, "done", {"one"}}}, {{"", "idle"}}});
    // Deinterleave/interleave passes between the row and column stages.
    for (const char* tag : {"deint_rd", "deint_wr", "int_rd", "int_wr"}) {
        fsm_state st;
        st.name = tag;
        st.ops = {
            {op_kind::mem_read, 16, std::string{tag} + "_v", {"line_buffer", "cnt4"}},
            {op_kind::shift, 8, std::string{tag} + "_half", {"cnt4", "1"}},
            {op_kind::add, 8, std::string{tag} + "_dst", {std::string{tag} + "_half", "base"}},
            {op_kind::mem_write, 16, "line_buffer", {std::string{tag} + "_dst", std::string{tag} + "_v"}},
            {op_kind::add, 8, "cnt4", {"cnt4", "one"}},
            {op_kind::compare, 8, std::string{tag} + "_end", {"cnt4", "tile_w_r"}},
        };
        st.next = {{std::string{tag} + "_end = '1'", "level"}, {"", tag}};
        ctrl.states.push_back(st);
    }

    // I/O FSM: streams samples in/out of the line buffer concurrently.
    fsm io{"io", {}};
    io.states.push_back({"wait_in", move_ops("wi"), {{"din_valid = '1'", "push"}}});
    io.states.push_back({"push",
                         {{op_kind::mem_write, 16, "line_buffer", {"cnt2", "din"}},
                          {op_kind::add, 8, "cnt2", {"cnt2", "one"}}},
                         {{"", "wait_in"}}});
    io.states.push_back({"pop",
                         {{op_kind::mem_read, 16, "out_v", {"line_buffer", "cnt3"}},
                          {op_kind::assign, 16, "dout", {"out_v"}},
                          {op_kind::add, 8, "cnt3", {"cnt3", "one"}}},
                         {{"", "wait_out"}}});
    io.states.push_back({"wait_out", move_ops("wo"), {{"", "pop"}}});
    e.signals.push_back({"out_v", 16, true});

    e.fsms = {ctrl, io};
    return e;
}

// ---------------------------------------------------------------------------
// IDWT 5/3 — OSSS/SystemC source: one FSM with the level loop still rolled,
// filter maths in subprograms invoked per phase.
// ---------------------------------------------------------------------------

entity idwt53_osss_source()
{
    entity e = idwt_shell("idwt53", 16);
    add_counters(e, 4);
    add_regs(e, "px", 4, 16);
    e.signals.push_back({"base", 8, true});
    e.signals.push_back({"zero", 8, false});
    e.signals.push_back({"tile_w_r", 8, true});

    // Filter subprograms (the "functions and procedures" the paper notes are
    // inlined into a single explicit state machine by FOSSY).
    e.subprograms.push_back({"lift_predict",
                             {"xm", "xc", "xp"},
                             {
                                 {op_kind::add, 16, "sum", {"xm", "xp"}},
                                 {op_kind::shift, 16, "half", {"sum", "1"}},
                                 {op_kind::add, 16, "res", {"xc", "half"}},
                                 {op_kind::assign, 16, "chk", {"res"}},
                             },
                             "res"});
    e.subprograms.push_back({"lift_update",
                             {"xm", "xc", "xp"},
                             {
                                 {op_kind::add, 16, "sum", {"xm", "xp"}},
                                 {op_kind::add, 16, "rnd", {"sum", "two"}},
                                 {op_kind::shift, 16, "q", {"rnd", "2"}},
                                 {op_kind::add, 16, "res", {"xc", "q"}},
                                 {op_kind::assign, 16, "chk", {"res"}},
                             },
                             "res"});
    e.subprograms.push_back({"mirror",
                             {"i", "n"},
                             {
                                 {op_kind::compare, 8, "neg", {"i", "zero"}},
                                 {op_kind::add, 8, "ref", {"n", "i"}},
                                 {op_kind::mux, 8, "res", {"i", "ref"}},
                             },
                             "res"});
    e.subprograms.push_back({"fetch",
                             {"i"},
                             {
                                 {op_kind::call, 8, "mi", {"mirror", "i", "tile_w_r"}},
                                 {op_kind::mem_read, 16, "v", {"line_buffer", "mi"}},
                                 {op_kind::assign, 16, "res", {"v"}},
                             },
                             "res"});

    auto phase = [](const std::string& name, const std::string& sub,
                    const std::string& nxt) -> fsm_state {
        fsm_state st;
        st.name = name;
        st.ops = {
            {op_kind::call, 16, name + "_a", {"fetch", "cnt0"}},
            {op_kind::call, 16, name + "_c", {"fetch", "cnt1"}},
            {op_kind::call, 16, name + "_b", {"fetch", "cnt2"}},
            {op_kind::call, 16, name + "_r", {sub, name + "_a", name + "_c", name + "_b"}},
            {op_kind::mem_write, 16, "line_buffer", {"cnt1", name + "_r"}},
            {op_kind::add, 8, "cnt1", {"cnt1", "one"}},
            {op_kind::compare, 8, name + "_end", {"cnt1", "tile_w_r"}},
        };
        st.next = {{name + "_end = '1'", nxt}};
        return st;
    };

    // Boundary handling of one phase: mirror both edges explicitly.
    auto edge_half = [](const std::string& name, const std::string& sub,
                        const std::string& pos, const std::string& nxt) -> fsm_state {
        fsm_state st;
        st.name = name;
        st.ops = {
            {op_kind::call, 16, name + "_v", {"fetch", pos}},
            {op_kind::call, 16, name + "_r", {sub, name + "_v", name + "_v", name + "_v"}},
            {op_kind::mem_write, 16, "line_buffer", {pos, name + "_r"}},
        };
        st.next = {{"", nxt}};
        return st;
    };

    fsm main{"main", {}};
    main.states.push_back({"idle", {{op_kind::assign, 1, "done", {"zero"}}}, {{"start = '1'", "cfg"}}});
    main.states.push_back({"cfg",
                           {{op_kind::assign, 8, "tile_w_r", {"tile_w"}},
                            {op_kind::assign, 8, "cnt0", {"zero"}}},
                           {{"", "lvl_load"}}});
    // The "lvl_" states form the per-level loop body FOSSY unrolls.
    main.states.push_back(phase("lvl_load", "fetch", "lvl_hedge_lo"));
    main.states.push_back(edge_half("lvl_hedge_lo", "lift_predict", "zero", "lvl_hedge_hi"));
    main.states.push_back(edge_half("lvl_hedge_hi", "lift_predict", "tile_w_r", "lvl_hpred"));
    main.states.push_back(phase("lvl_hpred", "lift_predict", "lvl_hupd"));
    main.states.push_back(phase("lvl_hupd", "lift_update", "lvl_hfix_lo"));
    main.states.push_back(edge_half("lvl_hfix_lo", "lift_update", "zero", "lvl_hfix_hi"));
    main.states.push_back(edge_half("lvl_hfix_hi", "lift_update", "tile_w_r", "lvl_vedge_lo"));
    main.states.push_back(edge_half("lvl_vedge_lo", "lift_predict", "zero", "lvl_vedge_hi"));
    main.states.push_back(edge_half("lvl_vedge_hi", "lift_predict", "tile_w_r", "lvl_vpred"));
    main.states.push_back(phase("lvl_vpred", "lift_predict", "lvl_vupd"));
    main.states.push_back(phase("lvl_vupd", "lift_update", "lvl_vfix_lo"));
    main.states.push_back(edge_half("lvl_vfix_lo", "lift_update", "zero", "lvl_vfix_hi"));
    main.states.push_back(edge_half("lvl_vfix_hi", "lift_update", "tile_w_r", "lvl_store"));
    main.states.push_back(phase("lvl_store", "fetch", "lvl_load"));
    main.states.back().next = {{"all_levels = '1'", "done_st"}, {"", "lvl_load"}};
    main.states.push_back({"done_st", {{op_kind::assign, 1, "done", {"one"}}}, {{"", "idle"}}});
    e.fsms = {main};
    return e;
}

// ---------------------------------------------------------------------------
// IDWT 9/7 — hand-crafted reference: deeply pipelined (one multiplier per
// state, operands pre-registered), four lifting stages plus scaling, three
// FSMs.  Larger but fast.
// ---------------------------------------------------------------------------

entity idwt97_reference()
{
    entity e = idwt_shell("idwt97_ref", 18);
    e.memories.push_back({"coef_buffer", 2 * k_idwt_tile_n + 5, 32, true});
    add_counters(e, 8);
    add_regs(e, "px", 16, 18);
    add_regs(e, "pipe", 20, 18);
    e.signals.push_back({"base", 8, true});
    e.signals.push_back({"zero", 8, false});
    e.signals.push_back({"tile_w_r", 8, true});

    // One lifting stage = 3 pipelined states: neighbour sum (add only),
    // coefficient multiply (mul only), accumulate (add only).
    auto stage = [](const std::string& tag, const std::string& nxt) {
        std::vector<fsm_state> sts;
        sts.push_back({tag + "_sum",
                       {
                           {op_kind::mem_read, 18, tag + "_a", {"line_buffer", "cnt0"}},
                           {op_kind::mem_read, 18, tag + "_b", {"line_buffer", "cnt1"}},
                           {op_kind::add, 18, tag + "_s", {tag + "_a", tag + "_b"}},
                           {op_kind::assign, 18, tag + "_sr", {tag + "_s"}},
                       },
                       {{"", tag + "_mul"}}});
        sts.push_back({tag + "_mul",
                       {
                           {op_kind::mul, 18, tag + "_m", {tag + "_sr", tag + "_coef"}},
                           {op_kind::assign, 18, tag + "_mr", {tag + "_m"}},
                       },
                       {{"", tag + "_acc"}}});
        sts.push_back({tag + "_acc",
                       {
                           {op_kind::mem_read, 18, tag + "_c", {"line_buffer", "cnt2"}},
                           {op_kind::add, 18, tag + "_r", {tag + "_c", tag + "_mr"}},
                           {op_kind::mem_write, 18, "line_buffer", {"cnt2", tag + "_r"}},
                           {op_kind::add, 8, "cnt2", {"cnt2", "one"}},
                           {op_kind::compare, 8, tag + "_end", {"cnt2", "tile_w_r"}},
                       },
                       {{tag + "_end = '1'", nxt}, {"", tag + "_sum"}}});
        return sts;
    };

    fsm ctrl{"ctrl", {}};
    ctrl.states.push_back({"idle", {{op_kind::assign, 1, "done", {"zero"}}}, {{"start = '1'", "cfg"}}});
    ctrl.states.push_back({"cfg",
                           {{op_kind::assign, 8, "tile_w_r", {"tile_w"}},
                            {op_kind::assign, 18, "ha_coef", {"c_alpha"}},
                            {op_kind::assign, 18, "hb_coef", {"c_beta"}},
                            {op_kind::assign, 18, "hg_coef", {"c_gamma"}},
                            {op_kind::assign, 18, "hd_coef", {"c_delta"}}},
                           {{"", "ha_sum"}}});
    for (const char* dir : {"h", "v"}) {
        for (const char* st : {"a", "b", "g", "d"}) {
            const std::string tag = std::string{dir} + st;
            std::string nxt;
            if (std::string{st} == "d")
                nxt = std::string{dir} == "h" ? "va_sum" : "scale_lo";
            else
                nxt = std::string{dir} + std::string{st == std::string{"a"} ? "b" : st == std::string{"b"} ? "g" : "d"} + "_sum";
            for (auto& s : stage(tag, nxt)) ctrl.states.push_back(std::move(s));
        }
    }
    ctrl.states.push_back({"scale_lo",
                           {
                               {op_kind::mem_read, 18, "sl_v", {"line_buffer", "cnt0"}},
                               {op_kind::mul, 18, "sl_m", {"sl_v", "c_invk"}},
                               {op_kind::mem_write, 18, "line_buffer", {"cnt0", "sl_m"}},
                               {op_kind::compare, 8, "sl_end", {"cnt0", "tile_w_r"}},
                           },
                           {{"sl_end = '1'", "scale_hi"}, {"", "scale_lo"}}});
    ctrl.states.push_back({"scale_hi",
                           {
                               {op_kind::mem_read, 18, "sh_v", {"line_buffer", "cnt1"}},
                               {op_kind::mul, 18, "sh_m", {"sh_v", "c_k"}},
                               {op_kind::mem_write, 18, "line_buffer", {"cnt1", "sh_m"}},
                               {op_kind::compare, 8, "sh_end", {"cnt1", "tile_w_r"}},
                           },
                           {{"sh_end = '1'", "level"}, {"", "scale_hi"}}});
    ctrl.states.push_back({"level",
                           {{op_kind::shift, 8, "tile_w_r", {"tile_w_r", "1"}},
                            {op_kind::compare, 8, "lvl_done", {"tile_w_r", "one"}}},
                           {{"lvl_done = '1'", "done_st"}, {"", "ha_sum"}}});
    ctrl.states.push_back({"done_st", {{op_kind::assign, 1, "done", {"one"}}}, {{"", "idle"}}});
    for (const char* c : {"c_alpha", "c_beta", "c_gamma", "c_delta", "c_k", "c_invk"})
        e.signals.push_back({c, 18, true});
    for (const char* dir : {"h", "v"})
        for (const char* st : {"a", "b", "g", "d"})
            e.signals.push_back({std::string{dir} + st + "_coef", 18, true});

    // Dedicated I/O and write-back FSMs (hand partitioning).
    fsm io{"io", {}};
    io.states.push_back({"wait_in",
                         {{op_kind::compare, 1, "in_rdy", {"din_valid", "one"}}},
                         {{"in_rdy = '1'", "push"}}});
    io.states.push_back({"push",
                         {{op_kind::mem_write, 18, "coef_buffer", {"cnt4", "din"}},
                          {op_kind::add, 8, "cnt4", {"cnt4", "one"}}},
                         {{"", "wait_in"}}});
    fsm wb{"wb", {}};
    wb.states.push_back({"wait_out",
                         {{op_kind::mem_read, 18, "wb_v", {"coef_buffer", "cnt5"}},
                          {op_kind::assign, 18, "dout", {"wb_v"}}},
                         {{"", "adv"}}});
    wb.states.push_back({"adv",
                         {{op_kind::add, 8, "cnt5", {"cnt5", "one"}},
                          {op_kind::compare, 8, "wb_end", {"cnt5", "tile_w_r"}}},
                         {{"wb_end = '1'", "wait_out"}, {"", "wait_out"}}});
    e.fsms = {ctrl, io, wb};
    return e;
}

// ---------------------------------------------------------------------------
// IDWT 9/7 — OSSS/SystemC source: the lifting step is one subprogram (sum,
// multiply, accumulate fused), level loop rolled.  FOSSY's output shares the
// multipliers (area down) at the cost of muxes and a longer combinational
// chain (frequency down) — the Table 2 trade-off.
// ---------------------------------------------------------------------------

entity idwt97_osss_source()
{
    entity e = idwt_shell("idwt97", 18);
    e.memories.push_back({"coef_buffer", 2 * k_idwt_tile_n + 5, 32, true});
    add_counters(e, 6);
    add_regs(e, "px", 6, 18);
    e.signals.push_back({"base", 8, true});
    e.signals.push_back({"zero", 8, false});
    e.signals.push_back({"tile_w_r", 8, true});
    for (const char* c : {"c_alpha", "c_beta", "c_gamma", "c_delta", "c_k", "c_invk"})
        e.signals.push_back({c, 18, true});

    e.subprograms.push_back({"mirror",
                             {"i", "n"},
                             {
                                 {op_kind::compare, 8, "neg", {"i", "zero"}},
                                 {op_kind::add, 8, "ref", {"n", "i"}},
                                 {op_kind::mux, 8, "res", {"i", "ref"}},
                             },
                             "res"});
    // Fused lifting step: x[c] += coef * (x[m] + x[p]).
    e.subprograms.push_back({"lift_step",
                             {"m", "c", "p", "coef"},
                             {
                                 {op_kind::call, 8, "mm", {"mirror", "m", "tile_w_r"}},
                                 {op_kind::call, 8, "mp", {"mirror", "p", "tile_w_r"}},
                                 {op_kind::mem_read, 18, "xa", {"line_buffer", "mm"}},
                                 {op_kind::mem_read, 18, "xb", {"line_buffer", "mp"}},
                                 {op_kind::add, 18, "sum", {"xa", "xb"}},
                                 {op_kind::mul, 18, "prod", {"sum", "coef"}},
                                 {op_kind::shift, 18, "rnd", {"prod", "14"}},
                                 {op_kind::logic, 18, "sat_m", {"max_pos", "max_pos"}},
                                 {op_kind::compare, 18, "ovf", {"coef", "max_pos"}},
                                 {op_kind::mux, 18, "clipped", {"rnd", "sat_m"}},
                                 {op_kind::mem_read, 18, "xc", {"line_buffer", "c"}},
                                 {op_kind::add, 18, "res", {"xc", "clipped"}},
                                 {op_kind::mem_write, 18, "line_buffer", {"c", "res"}},
                             },
                             "res"});
    e.subprograms.push_back({"scale_step",
                             {"i", "coef"},
                             {
                                 {op_kind::mem_read, 18, "v", {"line_buffer", "i"}},
                                 {op_kind::mul, 18, "res", {"v", "coef"}},
                                 {op_kind::mem_write, 18, "line_buffer", {"i", "res"}},
                             },
                             "res"});

    auto phase = [](const std::string& name, const std::string& coef,
                    const std::string& nxt) -> fsm_state {
        fsm_state st;
        st.name = name;
        st.ops = {
            {op_kind::call, 18, name + "_r", {"lift_step", "cnt0", "cnt1", "cnt2", coef}},
            {op_kind::add, 8, "cnt1", {"cnt1", "one"}},
            {op_kind::compare, 8, name + "_end", {"cnt1", "tile_w_r"}},
        };
        st.next = {{name + "_end = '1'", nxt}, {"", name}};
        return st;
    };

    fsm main{"main", {}};
    main.states.push_back({"idle", {{op_kind::assign, 1, "done", {"zero"}}}, {{"start = '1'", "cfg"}}});
    main.states.push_back({"cfg",
                           {{op_kind::assign, 8, "tile_w_r", {"tile_w"}},
                            {op_kind::assign, 8, "cnt0", {"zero"}}},
                           {{"", "lvl_ha"}}});
    auto edge97 = [](const std::string& name, const std::string& coef,
                     const std::string& nxt) -> std::vector<fsm_state> {
        fsm_state lo;
        lo.name = name + "lo";
        lo.ops = {{op_kind::call, 18, name + "_lo", {"lift_step", "zero", "zero", "one", coef}}};
        lo.next = {{"", name + "hi"}};
        fsm_state hi;
        hi.name = name + "hi";
        hi.ops = {{op_kind::call, 18, name + "_hi", {"lift_step", "tile_w_r", "tile_w_r", "zero", coef}}};
        hi.next = {{"", nxt}};
        return {lo, hi};
    };
    const char* stages[] = {"a", "b", "g", "d"};
    const char* coefs[] = {"c_alpha", "c_beta", "c_gamma", "c_delta"};
    for (const char* dir : {"h", "v"}) {
        for (int i = 0; i < 4; ++i) {
            const std::string tag = std::string{"lvl_"} + dir + stages[i];
            std::string nxt;
            if (i < 3)
                nxt = std::string{"lvl_"} + dir + stages[i + 1] + "elo";
            else
                nxt = dir == std::string{"h"} ? "lvl_vaelo" : "lvl_slo";
            // Edge state precedes the streaming phase of the same stage.
            const std::string ename = tag + "e";
            if (!(dir == std::string{"h"} && i == 0))
                for (auto& es : edge97(ename, coefs[i], tag)) main.states.push_back(std::move(es));
            main.states.push_back(phase(tag, coefs[i], nxt));
        }
    }
    // entry fixup: cfg jumps to the first streaming phase directly
    main.states[1].next = {{"", "lvl_ha"}};
    {
        fsm_state st;
        st.name = "lvl_slo";
        st.ops = {
            {op_kind::call, 18, "slo_r", {"scale_step", "cnt0", "c_invk"}},
            {op_kind::add, 8, "cnt0", {"cnt0", "one"}},
            {op_kind::compare, 8, "slo_end", {"cnt0", "tile_w_r"}},
        };
        st.next = {{"slo_end = '1'", "lvl_shi"}, {"", "lvl_slo"}};
        main.states.push_back(st);
        st.name = "lvl_shi";
        st.ops[0] = {op_kind::call, 18, "shi_r", {"scale_step", "cnt1", "c_k"}};
        st.ops[2] = {op_kind::compare, 8, "shi_end", {"cnt1", "tile_w_r"}};
        st.next = {{"shi_end = '1'", "done_st"}, {"", "lvl_shi"}};
        main.states.push_back(st);
    }
    main.states.push_back({"done_st", {{op_kind::assign, 1, "done", {"one"}}}, {{"", "idle"}}});
    e.fsms = {main};
    return e;
}

// ---------------------------------------------------------------------------
// IQ — dead-zone inverse quantiser: per sample |q| -> (|q| + 0.5)·step with a
// per-subband step looked up from a small table.
// ---------------------------------------------------------------------------

entity iq_reference()
{
    entity e = idwt_shell("iq_ref", 18);
    e.memories.push_back({"step_table", 16, 18, false});  // distributed LUT RAM
    add_counters(e, 3);
    add_regs(e, "qr", 6, 18);
    e.signals.push_back({"zero", 8, false});
    e.signals.push_back({"tile_w_r", 8, true});

    fsm ctrl{"ctrl", {}};
    ctrl.states.push_back({"idle", {{op_kind::assign, 1, "done", {"zero"}}}, {{"start = '1'", "cfg"}}});
    ctrl.states.push_back({"cfg",
                           {{op_kind::assign, 8, "tile_w_r", {"tile_w"}},
                            {op_kind::assign, 8, "cnt0", {"zero"}}},
                           {{"", "fetch"}}});
    // Pipelined: fetch / reconstruct / store, one sample in flight per stage.
    ctrl.states.push_back({"fetch",
                           {
                               {op_kind::mem_read, 18, "q_in", {"line_buffer", "cnt0"}},
                               {op_kind::mem_read, 18, "step", {"step_table", "band_idx"}},
                               {op_kind::compare, 18, "is_zero", {"q_in", "zero"}},
                           },
                           {{"", "recon"}}});
    ctrl.states.push_back({"recon",
                           {
                               {op_kind::add, 18, "biased", {"q_in", "half"}},
                               {op_kind::mul, 18, "scaled", {"biased", "step"}},
                               {op_kind::mux, 18, "value", {"scaled", "zero"}},
                               {op_kind::assign, 18, "qr0", {"value"}},
                           },
                           {{"", "store"}}});
    ctrl.states.push_back({"store",
                           {
                               {op_kind::mem_write, 18, "line_buffer", {"cnt0", "qr0"}},
                               {op_kind::add, 8, "cnt0", {"cnt0", "one"}},
                               {op_kind::compare, 8, "at_end", {"cnt0", "tile_w_r"}},
                           },
                           {{"at_end = '1'", "done_st"}, {"", "fetch"}}});
    ctrl.states.push_back({"done_st", {{op_kind::assign, 1, "done", {"one"}}}, {{"", "idle"}}});
    e.fsms = {ctrl};
    return e;
}

entity iq_osss_source()
{
    entity e = idwt_shell("iq", 18);
    e.memories.push_back({"step_table", 16, 18, false});
    add_counters(e, 2);
    e.signals.push_back({"zero", 8, false});
    e.signals.push_back({"tile_w_r", 8, true});
    // Reconstruction as one subprogram (fused) — FOSSY inlines it per site.
    e.subprograms.push_back({"dequant",
                             {"q", "step"},
                             {
                                 {op_kind::compare, 18, "is_zero", {"q", "zero"}},
                                 {op_kind::add, 18, "biased", {"q", "half"}},
                                 {op_kind::mul, 18, "scaled", {"biased", "step"}},
                                 {op_kind::shift, 18, "norm", {"scaled", "14"}},
                                 {op_kind::mux, 18, "res", {"norm", "zero"}},
                             },
                             "res"});
    fsm main{"main", {}};
    main.states.push_back({"idle", {{op_kind::assign, 1, "done", {"zero"}}}, {{"start = '1'", "cfg"}}});
    main.states.push_back({"cfg",
                           {{op_kind::assign, 8, "tile_w_r", {"tile_w"}},
                            {op_kind::assign, 8, "cnt0", {"zero"}}},
                           {{"", "lvl_band"}}});
    // Per-level/band loop body (unrolled by FOSSY like the IDWT's).
    fsm_state body;
    body.name = "lvl_band";
    body.ops = {
        {op_kind::mem_read, 18, "q_in", {"line_buffer", "cnt0"}},
        {op_kind::mem_read, 18, "step", {"step_table", "cnt1"}},
        {op_kind::call, 18, "val", {"dequant", "q_in", "step"}},
        {op_kind::mem_write, 18, "line_buffer", {"cnt0", "val"}},
        {op_kind::add, 8, "cnt0", {"cnt0", "one"}},
        {op_kind::compare, 8, "band_end", {"cnt0", "tile_w_r"}},
    };
    body.next = {{"band_end = '1'", "done_st"}, {"", "lvl_band"}};
    main.states.push_back(body);
    main.states.push_back({"done_st", {{op_kind::assign, 1, "done", {"one"}}}, {{"", "idle"}}});
    e.fsms = {main};
    return e;
}

entity run_fossy(const entity& source, synthesis_report* rep)
{
    entity unrolled = unroll_states(source, "lvl_", 5);  // HW supports 5 levels
    return synthesize(unrolled, rep);
}

}  // namespace fossy
