// fossy/vhdl.hpp — VHDL back end of FOSSY.
//
// Emits synthesisable VHDL-93 from the RTL IR.  Generated code follows the
// shape the paper describes: one clocked process per FSM holding an explicit
// state machine, all identifiers preserved, subprograms (if still present)
// emitted as VHDL functions.  Line counts of the emission are the "lines of
// code" figures Table 2's surrounding text quotes.
#pragma once

#include "rtl.hpp"

#include <string>

namespace fossy {

/// Render `e` as a VHDL design unit (entity + architecture).
[[nodiscard]] std::string emit_vhdl(const entity& e);

/// Number of lines in an emission (the paper's LoC metric).
[[nodiscard]] std::size_t line_count(const std::string& text) noexcept;

/// Approximate size of the *source* model (OSSS/SystemC style: subprograms
/// kept, one compact statement per operation) — the "synthesisable SystemC
/// model" LoC the paper quotes next to the VHDL numbers.
[[nodiscard]] std::size_t systemc_loc_estimate(const entity& e) noexcept;

}  // namespace fossy
