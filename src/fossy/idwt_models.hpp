// fossy/idwt_models.hpp — RTL models of the IDWT hardware blocks.
//
// Four entities reproduce the Table 2 comparison:
//
//   * idwt53_reference / idwt97_reference — the hand-crafted VHDL designs
//     (Thales reference): hand-partitioned FSMs, explicit parallel operators,
//     compact source.
//   * idwt53_osss_source / idwt97_osss_source — the synthesisable
//     OSSS/SystemC models: filter mathematics in subprograms, the
//     decomposition-level loop still rolled.  Running them through the FOSSY
//     pipeline (unroll → inline → flatten → share) yields the generated
//     designs whose area/frequency/LoC are compared against the references.
//
// Both IDWTs process one tile line-by-line through a (2N+5)-sample line
// buffer in block RAM — the memory the paper's "explicit memory insertion"
// snippet shows.
#pragma once

#include "rtl.hpp"

namespace fossy {

/// Tile width parameter N of the line buffer (paper: osss_array<short, 2N+5>).
inline constexpr int k_idwt_tile_n = 64;

[[nodiscard]] entity idwt53_reference();
[[nodiscard]] entity idwt97_reference();
[[nodiscard]] entity idwt53_osss_source();
[[nodiscard]] entity idwt97_osss_source();

/// The inverse quantiser of the HW/SW Shared Object (dead-zone reconstruction
/// with per-subband steps) — the other hardware block FOSSY synthesises.
[[nodiscard]] entity iq_reference();
[[nodiscard]] entity iq_osss_source();

/// Number of decomposition levels FOSSY unrolls (matches the codec default).
inline constexpr int k_idwt_levels = 3;

/// Run the FOSSY pipeline on an OSSS source model (unroll the level loop,
/// inline subprograms, flatten FSMs, share multipliers).
[[nodiscard]] entity run_fossy(const entity& source, struct synthesis_report* rep = nullptr);

}  // namespace fossy
