// fossy/fossy.hpp — umbrella header for the FOSSY synthesis back end.
#pragma once

#include "estimate.hpp"     // IWYU pragma: export
#include "idwt_models.hpp"  // IWYU pragma: export
#include "platform.hpp"     // IWYU pragma: export
#include "rtl.hpp"          // IWYU pragma: export
#include "transform.hpp"    // IWYU pragma: export
#include "vhdl.hpp"         // IWYU pragma: export
