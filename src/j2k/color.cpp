#include "color.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace j2k {

namespace {

void require_rgb(const image& img, const char* who)
{
    if (img.components() != 3)
        throw std::invalid_argument{std::string{who} + ": needs exactly 3 components"};
}

}  // namespace

void dc_shift_forward(image& img)
{
    const std::int32_t offset = 1 << (img.bit_depth() - 1);
    for (int c = 0; c < img.components(); ++c)
        for (auto& v : img.comp(c).samples()) v -= offset;
}

void dc_shift_inverse(image& img)
{
    const std::int32_t offset = 1 << (img.bit_depth() - 1);
    const std::int32_t maxv = (1 << img.bit_depth()) - 1;
    for (int c = 0; c < img.components(); ++c)
        for (auto& v : img.comp(c).samples())
            v = std::clamp(v + offset, std::int32_t{0}, maxv);
}

void rct_forward(image& img)
{
    require_rgb(img, "rct_forward");
    auto& r = img.comp(0).samples();
    auto& g = img.comp(1).samples();
    auto& b = img.comp(2).samples();
    for (std::size_t i = 0; i < r.size(); ++i) {
        const std::int32_t R = r[i], G = g[i], B = b[i];
        const std::int32_t Y = (R + 2 * G + B) >> 2;  // floor division
        const std::int32_t U = B - G;
        const std::int32_t V = R - G;
        r[i] = Y;
        g[i] = U;
        b[i] = V;
    }
}

void rct_inverse(image& img)
{
    require_rgb(img, "rct_inverse");
    auto& y = img.comp(0).samples();
    auto& u = img.comp(1).samples();
    auto& v = img.comp(2).samples();
    for (std::size_t i = 0; i < y.size(); ++i) {
        const std::int32_t Y = y[i], U = u[i], V = v[i];
        const std::int32_t G = Y - ((U + V) >> 2);
        const std::int32_t R = V + G;
        const std::int32_t B = U + G;
        y[i] = R;
        u[i] = G;
        v[i] = B;
    }
}

void ict_forward(image& img)
{
    require_rgb(img, "ict_forward");
    auto& r = img.comp(0).samples();
    auto& g = img.comp(1).samples();
    auto& b = img.comp(2).samples();
    for (std::size_t i = 0; i < r.size(); ++i) {
        const double R = r[i], G = g[i], B = b[i];
        const double Y = 0.299 * R + 0.587 * G + 0.114 * B;
        const double Cb = -0.168736 * R - 0.331264 * G + 0.5 * B;
        const double Cr = 0.5 * R - 0.418688 * G - 0.081312 * B;
        r[i] = static_cast<std::int32_t>(std::lround(Y));
        g[i] = static_cast<std::int32_t>(std::lround(Cb));
        b[i] = static_cast<std::int32_t>(std::lround(Cr));
    }
}

void ict_inverse(image& img)
{
    require_rgb(img, "ict_inverse");
    auto& y = img.comp(0).samples();
    auto& cb = img.comp(1).samples();
    auto& cr = img.comp(2).samples();
    for (std::size_t i = 0; i < y.size(); ++i) {
        const double Y = y[i], Cb = cb[i], Cr = cr[i];
        const double R = Y + 1.402 * Cr;
        const double G = Y - 0.344136 * Cb - 0.714136 * Cr;
        const double B = Y + 1.772 * Cb;
        y[i] = static_cast<std::int32_t>(std::lround(R));
        cb[i] = static_cast<std::int32_t>(std::lround(G));
        cr[i] = static_cast<std::int32_t>(std::lround(B));
    }
}

}  // namespace j2k
