#include "color.hpp"

#include "kernels.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace j2k {

namespace {

void require_rgb(const image& img, const char* who)
{
    if (img.components() != 3)
        throw std::invalid_argument{std::string{who} + ": needs exactly 3 components"};
}

}  // namespace

void dc_shift_forward(image& img)
{
    const std::int32_t offset = 1 << (img.bit_depth() - 1);
    for (int c = 0; c < img.components(); ++c)
        for (auto& v : img.comp(c).samples()) v -= offset;
}

void dc_shift_inverse(image& img)
{
    const std::int32_t offset = 1 << (img.bit_depth() - 1);
    const std::int32_t maxv = (1 << img.bit_depth()) - 1;
    for (int c = 0; c < img.components(); ++c)
        for (auto& v : img.comp(c).samples())
            v = std::clamp(v + offset, std::int32_t{0}, maxv);
}

void rct_forward(image& img)
{
    require_rgb(img, "rct_forward");
    auto& r = img.comp(0).samples();
    auto& g = img.comp(1).samples();
    auto& b = img.comp(2).samples();
    for (std::size_t i = 0; i < r.size(); ++i) {
        const std::int32_t R = r[i], G = g[i], B = b[i];
        const std::int32_t Y = (R + 2 * G + B) >> 2;  // floor division
        const std::int32_t U = B - G;
        const std::int32_t V = R - G;
        r[i] = Y;
        g[i] = U;
        b[i] = V;
    }
}

void rct_inverse(image& img)
{
    require_rgb(img, "rct_inverse");
    auto& y = img.comp(0).samples();
    auto& u = img.comp(1).samples();
    auto& v = img.comp(2).samples();
    kernels().rct_inverse(y.data(), u.data(), v.data(), y.size());
}

void ict_forward(image& img)
{
    require_rgb(img, "ict_forward");
    auto& r = img.comp(0).samples();
    auto& g = img.comp(1).samples();
    auto& b = img.comp(2).samples();
    for (std::size_t i = 0; i < r.size(); ++i) {
        const double R = r[i], G = g[i], B = b[i];
        const double Y = 0.299 * R + 0.587 * G + 0.114 * B;
        const double Cb = -0.168736 * R - 0.331264 * G + 0.5 * B;
        const double Cr = 0.5 * R - 0.418688 * G - 0.081312 * B;
        r[i] = static_cast<std::int32_t>(std::lround(Y));
        g[i] = static_cast<std::int32_t>(std::lround(Cb));
        b[i] = static_cast<std::int32_t>(std::lround(Cr));
    }
}

void ict_inverse(image& img)
{
    require_rgb(img, "ict_inverse");
    auto& y = img.comp(0).samples();
    auto& cb = img.comp(1).samples();
    auto& cr = img.comp(2).samples();
    // Rounding is kernel_round_away (same round-half-away-from-zero as the
    // previous lround, in the branch-free form both dispatch paths share).
    kernels().ict_inverse(y.data(), cb.data(), cr.data(), y.size());
}

}  // namespace j2k
