// j2k/tier1.hpp — EBCOT tier-1 code-block coder (ISO/IEC 15444-1 Annex D).
//
// Quantised wavelet coefficients are coded code-block by code-block, bit
// plane by bit plane, MSB first, with three passes per plane:
//
//   1. significance propagation — samples with a significant neighbour,
//   2. magnitude refinement     — samples already significant,
//   3. cleanup                  — everything else, with run-length coding of
//                                 all-zero stripe columns.
//
// All decisions go through the adaptive MQ coder with the standard 19-context
// model (9 zero-coding, 5 sign-coding, 3 magnitude-refinement, run-length,
// uniform).  One MQ codeword spans the whole code block (default mode: no
// per-pass termination, no bypass).
//
// This stage is the "arithmetic decoder" of the paper's Figure 1 — the block
// that consumes ~88.8% (lossless) / 78.6% (lossy) of software decode time.
#pragma once

#include "dwt.hpp"
#include "mq_coder.hpp"

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace j2k {

/// Result of encoding one code block.
struct codeblock {
    int width = 0;
    int height = 0;
    int num_planes = 0;                ///< magnitude bit planes actually coded
    std::vector<std::uint8_t> data;    ///< one MQ codeword segment

    /// Coding passes in this block: 3p-2 for p planes (0 for an empty block).
    [[nodiscard]] int pass_count() const noexcept
    {
        return num_planes == 0 ? 0 : 3 * num_planes - 2;
    }
};

/// Statistics reported by the decoder (drives the paper's timing model).
struct tier1_stats {
    std::uint64_t mq_decisions = 0;  ///< binary decisions decoded
    std::uint64_t passes = 0;        ///< coding passes executed
    std::uint64_t samples = 0;       ///< samples visited across all passes
};

/// Nominal code-block size used throughout this codec.
inline constexpr int k_codeblock_size = 32;

/// Encode `w`×`h` signed quantised coefficients (row-major) of a subband with
/// orientation `orient`.
[[nodiscard]] codeblock tier1_encode(const std::int32_t* coeffs, int w, int h,
                                     band orient);

/// A code block coded as layered segments: the pass sequence is cut at layer
/// boundaries and the MQ codeword is terminated at each cut (contexts carry
/// over), so any prefix of whole segments decodes exactly.
struct layered_codeblock {
    struct segment {
        int passes = 0;                  ///< coding passes in this segment
        std::vector<std::uint8_t> data;  ///< terminated MQ codeword piece
    };
    int width = 0;
    int height = 0;
    int num_planes = 0;
    std::vector<segment> segments;       ///< one per quality layer

    [[nodiscard]] int total_passes() const noexcept
    {
        int n = 0;
        for (const auto& s : segments) n += s.passes;
        return n;
    }
};

/// Encode with quality layers: `passes_per_layer[l]` passes end up in
/// segment l (the last layer absorbs any remainder; leading layers may be
/// empty for blocks with few planes).
[[nodiscard]] layered_codeblock tier1_encode_layered(
    const std::int32_t* coeffs, int w, int h, band orient,
    const std::vector<int>& passes_per_layer);

/// Decode the first `layers` segments (0 = all); exact for full decodes,
/// progressively coarser for prefixes.  `mr`, when non-null, supplies the
/// decoder's per-block scratch (significance maps, magnitudes, contexts) —
/// pass a per-job arena to keep the hot path allocation-free.
void tier1_decode_layered(const layered_codeblock& cb, std::int32_t* out,
                          band orient, int layers = 0,
                          tier1_stats* stats = nullptr,
                          std::pmr::memory_resource* mr = nullptr);

/// Resumable layer-by-layer decoder for one code block.  The coder state
/// (accumulated magnitudes, signs, significance map, MQ contexts, position in
/// the pass sequence) persists across calls, which is legal because the MQ
/// codeword is terminated at every layer boundary: feeding segment l to a
/// decoder that has consumed segments 0..l-1 reproduces the batch decode
/// bit for bit, while costing only segment l's passes.  This is what turns an
/// L-layer progressive session from O(L²) tier-1 work into O(L).
class tier1_block_decoder {
public:
    /// `num_planes` is stream data: implausible values throw codestream_error
    /// (empty geometry stays std::invalid_argument, as for tier1_decode).
    /// `mr` backs the per-block coder state; leave it null (heap) for
    /// decoders that outlive a decode job — session slots deposited into the
    /// result cache must never reference a job-scoped arena.
    tier1_block_decoder(int width, int height, int num_planes, band orient,
                        std::pmr::memory_resource* mr = nullptr);
    ~tier1_block_decoder();

    tier1_block_decoder(tier1_block_decoder&&) noexcept;
    tier1_block_decoder& operator=(tier1_block_decoder&&) noexcept;
    tier1_block_decoder(const tier1_block_decoder&) = delete;
    tier1_block_decoder& operator=(const tier1_block_decoder&) = delete;

    /// Consume the next layer's segment: `passes` coding passes out of `data`
    /// (one terminated MQ codeword piece).  Passes beyond the block's pass
    /// sequence are ignored, matching tier1_decode_layered.
    void advance(int passes, std::span<const std::uint8_t> data,
                 tier1_stats* stats = nullptr);

    /// Copy the current reconstruction (exact after all segments, coarser
    /// after a prefix) into `out` (width*height samples, row-major).
    void read(std::int32_t* out) const;

    [[nodiscard]] int width() const noexcept;
    [[nodiscard]] int height() const noexcept;
    [[nodiscard]] int segments_consumed() const noexcept;

private:
    struct state;
    std::unique_ptr<state> st_;
};

/// Decode a code block back into signed coefficients; exact inverse of
/// tier1_encode.  `stats`, when non-null, is accumulated into.
///
/// `max_passes` > 0 truncates decoding after that many coding passes — the
/// SNR-scalability mechanism of EBCOT: fewer passes yield a coarser (but
/// valid) reconstruction from a prefix of the codeword.  0 decodes all.
void tier1_decode(const codeblock& cb, std::int32_t* out, band orient,
                  tier1_stats* stats = nullptr, int max_passes = 0,
                  std::pmr::memory_resource* mr = nullptr);

}  // namespace j2k
