// Scalar reference kernels + the runtime dispatch state.
//
// This TU is compiled with -ffp-contract=off so the compiler cannot contract
// the mul/add pairs below into FMAs: the AVX2 side uses explicit mul+add
// intrinsics, and bit-exact scalar/vector equivalence requires both sides to
// round after the multiply.

#include "kernels.hpp"

#include <atomic>
#include <cmath>
#include <cstdlib>

namespace j2k {

std::int32_t kernel_round_away(double v) noexcept
{
    // floor(|v| + 0.5) with the sign restored — the branch-free vector form
    // of round-half-away-from-zero (abs, +0.5, floor, copysign).
    const double r = v < 0.0 ? -std::floor(-v + 0.5) : std::floor(v + 0.5);
    return static_cast<std::int32_t>(r);
}

namespace {

void s_lift53_sub_avg(std::int32_t* d, const std::int32_t* a,
                      const std::int32_t* b, int n)
{
    for (int i = 0; i < n; ++i) d[i] -= (a[i] + b[i]) >> 1;
}

void s_lift53_add_avg(std::int32_t* d, const std::int32_t* a,
                      const std::int32_t* b, int n)
{
    for (int i = 0; i < n; ++i) d[i] += (a[i] + b[i]) >> 1;
}

void s_lift53_add_round(std::int32_t* d, const std::int32_t* a,
                        const std::int32_t* b, int n)
{
    for (int i = 0; i < n; ++i) d[i] += (a[i] + b[i] + 2) >> 2;
}

void s_lift53_sub_round(std::int32_t* d, const std::int32_t* a,
                        const std::int32_t* b, int n)
{
    for (int i = 0; i < n; ++i) d[i] -= (a[i] + b[i] + 2) >> 2;
}

void s_lift97(double* d, const double* a, const double* b, double k, int n)
{
    for (int i = 0; i < n; ++i) d[i] += k * (a[i] + b[i]);
}

void s_scale97(double* d, double k, int n)
{
    for (int i = 0; i < n; ++i) d[i] *= k;
}

void s_ict_inverse(std::int32_t* y, std::int32_t* cb, std::int32_t* cr,
                   std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const double Y = y[i], Cb = cb[i], Cr = cr[i];
        const double R = Y + 1.402 * Cr;
        const double G = Y - 0.344136 * Cb - 0.714136 * Cr;
        const double B = Y + 1.772 * Cb;
        y[i] = kernel_round_away(R);
        cb[i] = kernel_round_away(G);
        cr[i] = kernel_round_away(B);
    }
}

void s_rct_inverse(std::int32_t* y, std::int32_t* u, std::int32_t* v,
                   std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const std::int32_t Y = y[i], U = u[i], V = v[i];
        const std::int32_t G = Y - ((U + V) >> 2);
        y[i] = V + G;
        u[i] = G;
        v[i] = U + G;
    }
}

void s_dequant(const std::int32_t* q, double* out, double step, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const std::int32_t v = q[i];
        if (v == 0) {
            out[i] = 0.0;
            continue;
        }
        const double m = (std::abs(static_cast<double>(v)) + 0.5) * step;
        out[i] = v < 0 ? -m : m;
    }
}

constexpr kernel_table k_scalar_table{
    kernel_isa::scalar,
    s_lift53_sub_avg,
    s_lift53_add_avg,
    s_lift53_add_round,
    s_lift53_sub_round,
    s_lift97,
    s_scale97,
    s_ict_inverse,
    s_rct_inverse,
    s_dequant,
    /*mq_fast=*/false,
};

/// Automatic pick: env override first, then the best table the CPU supports.
const kernel_table* resolve_auto() noexcept
{
    if (const char* env = std::getenv("J2K_FORCE_SCALAR");
        env && env[0] != '\0' && env[0] != '0')
        return &k_scalar_table;
    if (const kernel_table* t = detail::avx2_kernels()) return t;
    return &k_scalar_table;
}

/// Active table pointer.  Starts unresolved; kernels() resolves lazily so the
/// env var and CPUID are consulted exactly once unless a test re-pins.
std::atomic<const kernel_table*> g_active{nullptr};

}  // namespace

const kernel_table& detail::scalar_kernels() noexcept
{
    return k_scalar_table;
}

const kernel_table& kernels() noexcept
{
    const kernel_table* t = g_active.load(std::memory_order_acquire);
    if (t) return *t;
    t = resolve_auto();
    // Benign race: every resolver computes the same pointer.
    g_active.store(t, std::memory_order_release);
    return *t;
}

kernel_isa active_kernel_isa() noexcept
{
    return kernels().isa;
}

bool cpu_has_avx2() noexcept
{
    return detail::avx2_kernels() != nullptr;
}

bool force_kernel_isa(kernel_isa isa) noexcept
{
    const kernel_table* t = nullptr;
    switch (isa) {
        case kernel_isa::scalar: t = &k_scalar_table; break;
        case kernel_isa::avx2: t = detail::avx2_kernels(); break;
    }
    if (!t) return false;
    g_active.store(t, std::memory_order_release);
    return true;
}

void reset_kernel_isa() noexcept
{
    g_active.store(resolve_auto(), std::memory_order_release);
}

}  // namespace j2k
