// j2k/codestream.hpp — simplified codestream container.
//
// A compact substitute for the JPEG 2000 tier-2 / JPC marker syntax: a fixed
// header (geometry, mode, levels, quantiser), then one length-prefixed
// payload per tile containing, for every component × subband × code block,
// the tier-1 codeword segment.  Big-endian throughout.  The simplification
// (no progression orders / packet headers) is documented in DESIGN.md; the
// decoder work distribution — what the paper measures — is unaffected.
#pragma once

#include "quant.hpp"

#include <codec/error.hpp>

#include <bit>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace j2k {

/// Thrown on malformed codestreams.  The codec-neutral base type (shared by
/// every registered backend) lives in codec/error.hpp; the alias keeps every
/// existing j2k throw/catch site source-identical while letting the serving
/// layers handle all codecs with one catch clause.
using codestream_error = codec::codestream_error;

/// Big-endian byte sink.
class byte_writer {
public:
    void u8(std::uint8_t v) { buf_.push_back(v); }
    void u16(std::uint16_t v)
    {
        u8(static_cast<std::uint8_t>(v >> 8));
        u8(static_cast<std::uint8_t>(v));
    }
    void u32(std::uint32_t v)
    {
        u16(static_cast<std::uint16_t>(v >> 16));
        u16(static_cast<std::uint16_t>(v));
    }
    void u64(std::uint64_t v)
    {
        u32(static_cast<std::uint32_t>(v >> 32));
        u32(static_cast<std::uint32_t>(v));
    }
    void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
    void bytes(std::span<const std::uint8_t> b) { buf_.insert(buf_.end(), b.begin(), b.end()); }

    /// Overwrite a previously written u32 at byte offset `pos` (for lengths).
    void patch_u32(std::size_t pos, std::uint32_t v);

    [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
    [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

private:
    std::vector<std::uint8_t> buf_;
};

/// Big-endian byte source with bounds checking.
class byte_reader {
public:
    explicit byte_reader(std::span<const std::uint8_t> data) : data_{data} {}

    [[nodiscard]] std::uint8_t u8();
    [[nodiscard]] std::uint16_t u16();
    [[nodiscard]] std::uint32_t u32();
    [[nodiscard]] std::uint64_t u64();
    [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }
    [[nodiscard]] std::span<const std::uint8_t> bytes(std::size_t n);

    void seek(std::size_t pos);
    [[nodiscard]] std::size_t pos() const noexcept { return pos_; }
    [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }

private:
    std::span<const std::uint8_t> data_;
    std::size_t pos_ = 0;
};

/// Everything the decoder needs from the main header.
struct stream_info {
    int width = 0;
    int height = 0;
    int components = 0;
    int bit_depth = 8;
    int tile_width = 0;
    int tile_height = 0;
    wavelet mode = wavelet::w5_3;
    int levels = 0;
    int quality_layers = 1;  ///< 1 = plain stream; >1 = layer-major packets
    quant_params quant;

    // Plain streams: one payload per tile, in tile order.
    std::vector<std::size_t> tile_offsets;  ///< byte offset of each tile payload
    std::vector<std::size_t> tile_lengths;

    // Layered streams: one chunk per (layer, tile), layer-major — a byte
    // prefix of the stream holds whole early layers (quality progression).
    std::vector<std::size_t> chunk_offsets;  ///< [layer * tiles + tile]
    std::vector<std::size_t> chunk_lengths;

    [[nodiscard]] int tile_count() const noexcept
    {
        return quality_layers > 1
                   ? static_cast<int>(chunk_offsets.size()) / quality_layers
                   : static_cast<int>(tile_offsets.size());
    }

    /// Layered streams: how many complete quality layers a byte prefix of
    /// the codestream contains.
    [[nodiscard]] int layers_in_prefix(std::size_t bytes) const noexcept
    {
        if (quality_layers <= 1) return 1;
        const int tiles = tile_count();
        int complete = 0;
        for (int l = 0; l < quality_layers; ++l) {
            const std::size_t last = static_cast<std::size_t>(l) * tiles + (tiles - 1);
            if (chunk_offsets[last] + chunk_lengths[last] <= bytes)
                complete = l + 1;
            else
                break;
        }
        return complete;
    }
};

inline constexpr std::uint32_t k_magic = 0x4F4A324Bu;  // "OJ2K"
inline constexpr std::uint8_t k_version = 1;

// Decode-side resource limits.  A header that passes structural validation
// can still describe absurd allocations (4G×4G pixels, millions of tiles);
// read_header rejects those with codestream_error before anything is sized
// from the hostile values.
inline constexpr int k_max_dimension = 1 << 20;
inline constexpr std::uint64_t k_max_total_samples = std::uint64_t{1} << 28;
inline constexpr std::uint64_t k_max_tiles = std::uint64_t{1} << 20;

/// Serialise the main header.
void write_header(byte_writer& w, const stream_info& info);

/// Parse the main header and the tile directory.  Throws codestream_error.
[[nodiscard]] stream_info read_header(std::span<const std::uint8_t> cs);

}  // namespace j2k
