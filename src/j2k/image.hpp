// j2k/image.hpp — image and tile containers for the JPEG 2000 codec.
//
// Components are stored as planar 32-bit signed samples so that intermediate
// wavelet/quantiser values fit without clipping.  Tiles are rectangular views
// copied out of (and back into) the full image, matching the tile-based
// processing pipeline the paper's decoder uses.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace j2k {

/// One rectangular plane of 32-bit samples.
class plane {
public:
    plane() = default;
    plane(int width, int height, std::int32_t fill = 0)
        : w_{width}, h_{height}, data_(static_cast<std::size_t>(width) * height, fill)
    {
        if (width < 0 || height < 0) throw std::invalid_argument{"plane: negative size"};
    }

    [[nodiscard]] int width() const noexcept { return w_; }
    [[nodiscard]] int height() const noexcept { return h_; }
    [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

    [[nodiscard]] std::int32_t& at(int x, int y)
    {
        return data_[static_cast<std::size_t>(y) * w_ + x];
    }
    [[nodiscard]] std::int32_t at(int x, int y) const
    {
        return data_[static_cast<std::size_t>(y) * w_ + x];
    }

    [[nodiscard]] std::int32_t* row(int y) { return data_.data() + static_cast<std::size_t>(y) * w_; }
    [[nodiscard]] const std::int32_t* row(int y) const
    {
        return data_.data() + static_cast<std::size_t>(y) * w_;
    }

    [[nodiscard]] std::vector<std::int32_t>& samples() noexcept { return data_; }
    [[nodiscard]] const std::vector<std::int32_t>& samples() const noexcept { return data_; }

    [[nodiscard]] bool operator==(const plane&) const = default;

private:
    int w_ = 0;
    int h_ = 0;
    std::vector<std::int32_t> data_;
};

/// A multi-component image (1 = greyscale, 3 = RGB).
class image {
public:
    image() = default;
    image(int width, int height, int components, int bit_depth = 8)
        : w_{width}, h_{height}, depth_{bit_depth}
    {
        if (components < 1 || components > 4)
            throw std::invalid_argument{"image: 1..4 components supported"};
        if (bit_depth < 1 || bit_depth > 16)
            throw std::invalid_argument{"image: 1..16 bit depth supported"};
        comps_.assign(static_cast<std::size_t>(components), plane{width, height});
    }

    [[nodiscard]] int width() const noexcept { return w_; }
    [[nodiscard]] int height() const noexcept { return h_; }
    [[nodiscard]] int components() const noexcept { return static_cast<int>(comps_.size()); }
    [[nodiscard]] int bit_depth() const noexcept { return depth_; }

    [[nodiscard]] plane& comp(int c) { return comps_.at(static_cast<std::size_t>(c)); }
    [[nodiscard]] const plane& comp(int c) const { return comps_.at(static_cast<std::size_t>(c)); }

    [[nodiscard]] bool operator==(const image&) const = default;

private:
    int w_ = 0;
    int h_ = 0;
    int depth_ = 8;
    std::vector<plane> comps_;
};

/// Position + size of a tile within the image grid.
struct tile_rect {
    int index = 0;
    int x0 = 0;
    int y0 = 0;
    int width = 0;
    int height = 0;
};

/// Compute the tile grid for an image of w×h with nominal tile size tw×th.
/// Border tiles are clipped; every pixel belongs to exactly one tile.
[[nodiscard]] std::vector<tile_rect> tile_grid(int w, int h, int tw, int th);

/// Copy tile `r` of component plane `src` into a dense plane.
[[nodiscard]] plane extract_tile(const plane& src, const tile_rect& r);

/// Paste dense `tile` back into `dst` at the position described by `r`.
void insert_tile(plane& dst, const plane& tile, const tile_rect& r);

/// Deterministic synthetic test image (smooth gradients + texture + edges),
/// exercising both low- and high-frequency subbands.  `seed` varies content.
[[nodiscard]] image make_test_image(int width, int height, int components,
                                    int bit_depth = 8, std::uint32_t seed = 1);

/// Peak signal-to-noise ratio between two images (dB); +inf when identical.
[[nodiscard]] double psnr(const image& a, const image& b);

}  // namespace j2k
