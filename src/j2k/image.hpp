// j2k/image.hpp — tile containers for the JPEG 2000 codec, over the shared
// codec::image currency.
//
// The image/plane types themselves live in codec/image.hpp since the
// codec_backend refactor: they are the currency of the runtime service, the
// cache, and the wire protocol, shared by every codec.  The aliases below
// keep the whole j2k pipeline (and its callers) source-identical.  What stays
// here is the genuinely JPEG-2000-shaped part: the tile grid and the tile
// copy-in/copy-out the paper's tile-based processing pipeline uses.
//
// Note the component cap moved with the type: codec::image accepts up to
// codec::k_max_components planes (multispectral backends need dozens of
// bands), while the J2K codestream parser keeps enforcing its own 1..4
// component limit on stream data (codestream.cpp), so hostile J2K headers
// are rejected exactly as before.
#pragma once

#include <codec/image.hpp>

#include <cstdint>
#include <vector>

namespace j2k {

using codec::plane;
using codec::image;
using codec::make_test_image;
using codec::psnr;

/// Position + size of a tile within the image grid.
struct tile_rect {
    int index = 0;
    int x0 = 0;
    int y0 = 0;
    int width = 0;
    int height = 0;
};

/// Compute the tile grid for an image of w×h with nominal tile size tw×th.
/// Border tiles are clipped; every pixel belongs to exactly one tile.
[[nodiscard]] std::vector<tile_rect> tile_grid(int w, int h, int tw, int th);

/// Copy tile `r` of component plane `src` into a dense plane.
[[nodiscard]] plane extract_tile(const plane& src, const tile_rect& r);

/// Paste dense `tile` back into `dst` at the position described by `r`.
void insert_tile(plane& dst, const plane& tile, const tile_rect& r);

}  // namespace j2k
