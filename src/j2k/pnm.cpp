#include "pnm.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <stdexcept>

namespace j2k {

namespace {

/// Skip whitespace and '#' comment lines between header tokens.
void skip_separators(std::istream& in)
{
    for (;;) {
        const int c = in.peek();
        if (c == '#') {
            std::string line;
            std::getline(in, line);
        } else if (std::isspace(c)) {
            in.get();
        } else {
            return;
        }
    }
}

int read_header_int(std::istream& in)
{
    skip_separators(in);
    int v = 0;
    if (!(in >> v) || v < 0) throw std::runtime_error{"pnm: malformed header"};
    return v;
}

}  // namespace

std::vector<std::uint8_t> pnm_bytes(const image& img)
{
    if (img.components() != 1 && img.components() != 3)
        throw std::runtime_error{"pnm_bytes: only 1 or 3 components"};
    const int maxv = (1 << img.bit_depth()) - 1;
    const std::string header = std::string{img.components() == 1 ? "P5" : "P6"} +
                               '\n' + std::to_string(img.width()) + ' ' +
                               std::to_string(img.height()) + '\n' +
                               std::to_string(maxv) + '\n';
    const bool wide = maxv > 255;
    std::vector<std::uint8_t> out;
    out.reserve(header.size() + static_cast<std::size_t>(img.width()) * img.height() *
                                    img.components() * (wide ? 2 : 1));
    out.insert(out.end(), header.begin(), header.end());
    for (int y = 0; y < img.height(); ++y) {
        for (int x = 0; x < img.width(); ++x) {
            for (int c = 0; c < img.components(); ++c) {
                const int v = std::clamp(img.comp(c).at(x, y), 0, maxv);
                if (wide) out.push_back(static_cast<std::uint8_t>(v >> 8));
                out.push_back(static_cast<std::uint8_t>(v & 0xFF));
            }
        }
    }
    return out;
}

void save_pnm(const image& img, const std::string& path)
{
    const std::vector<std::uint8_t> bytes = pnm_bytes(img);
    std::ofstream out{path, std::ios::binary};
    if (!out) throw std::runtime_error{"save_pnm: cannot open " + path};
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) throw std::runtime_error{"save_pnm: write failed"};
}

image load_pnm(const std::string& path)
{
    std::ifstream in{path, std::ios::binary};
    if (!in) throw std::runtime_error{"load_pnm: cannot open " + path};
    std::string magic;
    in >> magic;
    int components = 0;
    if (magic == "P5")
        components = 1;
    else if (magic == "P6")
        components = 3;
    else
        throw std::runtime_error{"load_pnm: unsupported magic " + magic};

    const int w = read_header_int(in);
    const int h = read_header_int(in);
    const int maxv = read_header_int(in);
    if (w <= 0 || h <= 0 || maxv <= 0 || maxv > 65535)
        throw std::runtime_error{"load_pnm: bad geometry"};
    in.get();  // single whitespace before raster

    int depth = 1;
    while ((1 << depth) - 1 < maxv) ++depth;
    image img{w, h, components, depth};
    const bool wide = maxv > 255;
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            for (int c = 0; c < components; ++c) {
                int v = in.get();
                if (wide) v = (v << 8) | in.get();
                if (!in) throw std::runtime_error{"load_pnm: truncated raster"};
                img.comp(c).at(x, y) = v;
            }
        }
    }
    return img;
}

}  // namespace j2k
