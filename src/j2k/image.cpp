#include "image.hpp"

#include <algorithm>
#include <stdexcept>

namespace j2k {

std::vector<tile_rect> tile_grid(int w, int h, int tw, int th)
{
    if (w <= 0 || h <= 0 || tw <= 0 || th <= 0)
        throw std::invalid_argument{"tile_grid: sizes must be positive"};
    std::vector<tile_rect> tiles;
    int index = 0;
    for (int y = 0; y < h; y += th) {
        for (int x = 0; x < w; x += tw) {
            tiles.push_back({index++, x, y, std::min(tw, w - x), std::min(th, h - y)});
        }
    }
    return tiles;
}

plane extract_tile(const plane& src, const tile_rect& r)
{
    plane t{r.width, r.height};
    for (int y = 0; y < r.height; ++y) {
        const std::int32_t* s = src.row(r.y0 + y) + r.x0;
        std::int32_t* d = t.row(y);
        std::copy(s, s + r.width, d);
    }
    return t;
}

void insert_tile(plane& dst, const plane& tile, const tile_rect& r)
{
    if (tile.width() != r.width || tile.height() != r.height)
        throw std::invalid_argument{"insert_tile: size mismatch"};
    for (int y = 0; y < r.height; ++y) {
        const std::int32_t* s = tile.row(y);
        std::int32_t* d = dst.row(r.y0 + y) + r.x0;
        std::copy(s, s + r.width, d);
    }
}

}  // namespace j2k
