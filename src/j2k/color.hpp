// j2k/color.hpp — component transforms and DC level shift (Annex G).
//
// * RCT — reversible colour transform (integer), paired with the 5/3 path.
// * ICT — irreversible colour transform (YCbCr floats), paired with 9/7.
// * DC level shift — recentres unsigned samples around zero before the
//   wavelet stage and restores them (with clamping) on decode.
#pragma once

#include "image.hpp"

namespace j2k {

/// Forward DC level shift: x -= 2^(depth-1) on every sample of every plane.
void dc_shift_forward(image& img);
/// Inverse DC level shift with clamp to [0, 2^depth - 1].
void dc_shift_inverse(image& img);

/// Reversible colour transform (RGB → Y,U,V), in place; needs 3 components.
void rct_forward(image& img);
void rct_inverse(image& img);

/// Irreversible colour transform (RGB → YCbCr), in place; needs 3 components.
/// Values are rounded back to integers — paired with the lossy 9/7 path where
/// the quantiser dominates the error anyway.
void ict_forward(image& img);
void ict_inverse(image& img);

}  // namespace j2k
