#include "backend.hpp"

#include "codec.hpp"
#include "session.hpp"

#include <memory>
#include <mutex>

namespace j2k {

namespace {

/// codec::progressive_session over a resumable j2k::decode_session.  Owns a
/// copy of the codestream bytes: the session references them, and the generic
/// interface makes no lifetime promise beyond "bytes outlive the object".
class j2k_session final : public codec::progressive_session {
public:
    explicit j2k_session(std::span<const std::uint8_t> cs)
        : bytes_(cs.begin(), cs.end()), session_{bytes_}
    {
    }

    [[nodiscard]] int total_layers() const override { return session_.total_layers(); }

    [[nodiscard]] codec::image advance_to(int layer) override
    {
        return session_.advance_to(layer);
    }

private:
    std::vector<std::uint8_t> bytes_;
    decode_session session_;
};

class j2k_backend final : public codec::backend {
public:
    [[nodiscard]] std::string_view name() const noexcept override { return "j2k"; }
    [[nodiscard]] std::uint8_t wire_id() const noexcept override
    {
        return k_codec_wire_id;
    }

    [[nodiscard]] codec::capabilities caps() const noexcept override
    {
        codec::capabilities c;
        c.resolution_reduction = true;
        c.quality_layers = true;
        c.pass_cap = true;
        c.progressive = true;
        c.max_components = 4;  // the SIZ-equivalent header check in codestream.cpp
        return c;
    }

    [[nodiscard]] codec::image decode(std::span<const std::uint8_t> bytes,
                                      const codec::decode_request& req,
                                      std::pmr::memory_resource* mr) const override
    {
        decoder dec{bytes};
        dec.set_max_passes(req.max_passes);
        dec.set_max_quality_layers(req.max_quality_layers);
        if (req.discard_levels > 0) return dec.decode_reduced(req.discard_levels, nullptr, mr);
        decode_stats stats;
        const auto grid = dec.tiles();
        const auto& info = dec.info();
        image img{info.width, info.height, info.components, info.bit_depth};
        for (const tile_rect& r : grid) {
            const tile_coeffs tc = dec.entropy_decode(r.index, &stats.t1, mr);
            const tile_pixels tp = dec.idwt(dec.dequantize(tc), mr);
            for (int c = 0; c < info.components; ++c)
                insert_tile(img.comp(c), tp.comps[static_cast<std::size_t>(c)], r);
        }
        dec.finish(img);
        return img;
    }

    [[nodiscard]] std::unique_ptr<codec::progressive_session> open_session(
        std::span<const std::uint8_t> bytes) const override
    {
        return std::make_unique<j2k_session>(bytes);
    }
};

}  // namespace

const codec::backend& ensure_backend_registered()
{
    static const std::shared_ptr<const j2k_backend> instance = [] {
        auto b = std::make_shared<const j2k_backend>();
        codec::register_backend(b);
        return b;
    }();
    return *instance;
}

}  // namespace j2k
