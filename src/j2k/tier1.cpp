#include "tier1.hpp"

#include "codestream.hpp"

#include <array>
#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace j2k {

namespace {

// Context numbering (indices into the per-block context array).
constexpr int k_ctx_zc_base = 0;   // 0..8  zero coding
constexpr int k_ctx_sc_base = 9;   // 9..13 sign coding
constexpr int k_ctx_mr_base = 14;  // 14..16 magnitude refinement
constexpr int k_ctx_rl = 17;       // run-length
constexpr int k_ctx_uni = 18;      // uniform
constexpr int k_num_ctx = 19;

/// Zero-coding context from neighbour significance counts, per Table D.1.
/// h/v = number of significant horizontal/vertical neighbours (0..2),
/// d = significant diagonals (0..4).
int zc_context(int h, int v, int d, band orient) noexcept
{
    if (orient == band::hl) std::swap(h, v);  // HL: transpose the LL/LH table
    if (orient == band::hh) {
        const int hv = h + v;
        if (d >= 3) return 8;
        if (d == 2) return hv >= 1 ? 7 : 6;
        if (d == 1) return hv >= 2 ? 5 : (hv == 1 ? 4 : 3);
        return hv >= 2 ? 2 : (hv == 1 ? 1 : 0);
    }
    // LL / LH (and transposed HL)
    if (h == 2) return 8;
    if (h == 1) {
        if (v >= 1) return 7;
        return d >= 1 ? 6 : 5;
    }
    if (v == 2) return 4;
    if (v == 1) return 3;
    return d >= 2 ? 2 : (d == 1 ? 1 : 0);
}

/// Sign-coding context + XOR bit, per Table D.3.  hc/vc ∈ {-1,0,1} are the
/// clamped neighbour sign contributions.
struct sc_info {
    int ctx;
    int xor_bit;
};
sc_info sc_context(int hc, int vc) noexcept
{
    if (hc == 1) {
        if (vc == 1) return {13, 0};
        if (vc == 0) return {12, 0};
        return {11, 0};
    }
    if (hc == 0) {
        if (vc == 1) return {10, 0};
        if (vc == 0) return {9, 0};
        return {10, 1};
    }
    if (vc == 1) return {11, 1};
    if (vc == 0) return {12, 1};
    return {13, 1};
}

[[nodiscard]] std::pmr::memory_resource* mr_of(std::pmr::memory_resource* mr) noexcept
{
    return mr ? mr : std::pmr::get_default_resource();
}

/// Per-sample coder state shared by encoder and decoder.  The vectors come
/// from `mr` so a decode job can back them with its arena; defaulting to the
/// heap keeps encoder paths and persistent session decoders unchanged.
struct block_state {
    int w;
    int h;
    band orient;
    std::pmr::vector<std::uint32_t> mag;   // encoder: |coeff|; decoder: accumulated
    std::pmr::vector<std::uint8_t> sign;   // 1 = negative
    std::pmr::vector<std::uint8_t> sig;    // significant
    std::pmr::vector<std::uint8_t> became; // became significant in current plane
    std::pmr::vector<std::uint8_t> visited;// coded in SPP of current plane
    std::pmr::vector<std::uint8_t> refined;// has had ≥1 refinement pass
    std::array<mq_context, k_num_ctx> cx{};

    block_state(int width, int height, band o,
                std::pmr::memory_resource* mr = nullptr)
        : w{width}, h{height}, orient{o},
          mag{mr_of(mr)}, sign{mr_of(mr)}, sig{mr_of(mr)}, became{mr_of(mr)},
          visited{mr_of(mr)}, refined{mr_of(mr)}
    {
        const auto n = static_cast<std::size_t>(w) * static_cast<std::size_t>(h);
        mag.assign(n, 0);
        sign.assign(n, 0);
        sig.assign(n, 0);
        became.assign(n, 0);
        visited.assign(n, 0);
        refined.assign(n, 0);
        reset_contexts();
    }

    void reset_contexts()
    {
        for (auto& c : cx) c.reset();
        cx[k_ctx_zc_base + 0].reset(4, 0);  // ZC context 0 starts at state 4
        cx[k_ctx_rl].reset(3, 0);           // run-length starts at state 3
        cx[k_ctx_uni].reset(46, 0);         // uniform: non-adaptive state
    }

    [[nodiscard]] std::size_t idx(int x, int y) const noexcept
    {
        return static_cast<std::size_t>(y) * static_cast<std::size_t>(w) + x;
    }
    [[nodiscard]] int sig_at(int x, int y) const noexcept
    {
        if (x < 0 || y < 0 || x >= w || y >= h) return 0;
        return sig[idx(x, y)];
    }
    [[nodiscard]] int sign_contrib(int x, int y) const noexcept
    {
        if (!sig_at(x, y)) return 0;
        return sign[idx(x, y)] ? -1 : 1;
    }

    [[nodiscard]] int zc_ctx(int x, int y) const noexcept
    {
        const int hn = sig_at(x - 1, y) + sig_at(x + 1, y);
        const int vn = sig_at(x, y - 1) + sig_at(x, y + 1);
        const int dn = sig_at(x - 1, y - 1) + sig_at(x + 1, y - 1) +
                       sig_at(x - 1, y + 1) + sig_at(x + 1, y + 1);
        return k_ctx_zc_base + zc_context(hn, vn, dn, orient);
    }

    [[nodiscard]] sc_info sc_ctx(int x, int y) const noexcept
    {
        const int hc = std::clamp(sign_contrib(x - 1, y) + sign_contrib(x + 1, y), -1, 1);
        const int vc = std::clamp(sign_contrib(x, y - 1) + sign_contrib(x, y + 1), -1, 1);
        return sc_context(hc, vc);
    }

    [[nodiscard]] int mr_ctx(int x, int y) const noexcept
    {
        if (refined[idx(x, y)]) return k_ctx_mr_base + 2;
        const int any =
            sig_at(x - 1, y) + sig_at(x + 1, y) + sig_at(x, y - 1) + sig_at(x, y + 1) +
            sig_at(x - 1, y - 1) + sig_at(x + 1, y - 1) + sig_at(x - 1, y + 1) +
            sig_at(x + 1, y + 1);
        return k_ctx_mr_base + (any ? 1 : 0);
    }
};

/// Direction-independent pass logic.  `IO` supplies one primitive:
/// `int bit(mq_context&, int actual)` — the encoder codes `actual` and echoes
/// it; the decoder ignores `actual` and returns the decoded decision.  Both
/// sides therefore execute identical control flow over identical state.
template <typename IO>
class engine {
public:
    engine(block_state& st, IO io) : s_{st}, io_{io} {}

    std::uint64_t samples_visited = 0;

    void significance_pass(int plane)
    {
        for_each_stripe([&](int x, int y) {
            const auto i = s_.idx(x, y);
            if (s_.sig[i]) return;
            const int ctx = s_.zc_ctx(x, y);
            if (ctx == k_ctx_zc_base) return;  // no significant neighbours
            ++samples_visited;
            s_.visited[i] = 1;
            const int actual = static_cast<int>((s_.mag[i] >> plane) & 1u);
            if (io_.bit(s_.cx[ctx], actual)) code_becoming_significant(x, y, plane);
        });
    }

    void refinement_pass(int plane)
    {
        for_each_stripe([&](int x, int y) {
            const auto i = s_.idx(x, y);
            if (!s_.sig[i] || s_.became[i]) return;
            ++samples_visited;
            const int ctx = s_.mr_ctx(x, y);
            const int actual = static_cast<int>((s_.mag[i] >> plane) & 1u);
            const int bit = io_.bit(s_.cx[ctx], actual);
            if constexpr (IO::is_decoder) {
                s_.mag[i] |= static_cast<std::uint32_t>(bit) << plane;
            }
            s_.refined[i] = 1;
        });
    }

    void cleanup_pass(int plane)
    {
        for (int sy = 0; sy < s_.h; sy += 4) {
            const int rows = std::min(4, s_.h - sy);
            for (int x = 0; x < s_.w; ++x) {
                int start = 0;
                if (rows == 4 && column_is_quiet(x, sy)) {
                    // Run-length mode: one decision covers the whole column.
                    ++samples_visited;
                    const int any = column_any_bit(x, sy, plane);
                    if (io_.bit(s_.cx[k_ctx_rl], any) == 0) continue;
                    // Position of the first 1 bit: two uniform decisions.
                    const int actual_pos = first_one_in_column(x, sy, plane);
                    int pos = io_.bit(s_.cx[k_ctx_uni], (actual_pos >> 1) & 1) << 1;
                    pos |= io_.bit(s_.cx[k_ctx_uni], actual_pos & 1);
                    code_becoming_significant(x, sy + pos, plane);
                    start = pos + 1;
                }
                for (int dy = start; dy < rows; ++dy) {
                    const int y = sy + dy;
                    const auto i = s_.idx(x, y);
                    if (s_.sig[i] || s_.visited[i]) continue;
                    ++samples_visited;
                    const int ctx = s_.zc_ctx(x, y);
                    const int actual = static_cast<int>((s_.mag[i] >> plane) & 1u);
                    if (io_.bit(s_.cx[ctx], actual))
                        code_becoming_significant(x, y, plane);
                }
            }
        }
    }

    void begin_plane()
    {
        std::fill(s_.became.begin(), s_.became.end(), std::uint8_t{0});
        std::fill(s_.visited.begin(), s_.visited.end(), std::uint8_t{0});
    }

private:
    void code_becoming_significant(int x, int y, int plane)
    {
        const auto i = s_.idx(x, y);
        const auto [ctx, xor_bit] = s_.sc_ctx(x, y);
        const int actual_sign = s_.sign[i] ^ xor_bit;
        const int coded = io_.bit(s_.cx[ctx], actual_sign);
        if constexpr (IO::is_decoder) {
            s_.sign[i] = static_cast<std::uint8_t>(coded ^ xor_bit);
            s_.mag[i] |= 1u << plane;
        }
        s_.sig[i] = 1;
        s_.became[i] = 1;
    }

    [[nodiscard]] bool column_is_quiet(int x, int sy) const
    {
        for (int dy = 0; dy < 4; ++dy) {
            const int y = sy + dy;
            if (s_.sig[s_.idx(x, y)] || s_.visited[s_.idx(x, y)]) return false;
            if (s_.zc_ctx(x, y) != k_ctx_zc_base) return false;
        }
        return true;
    }

    [[nodiscard]] int column_any_bit(int x, int sy, int plane) const
    {
        return first_one_in_column(x, sy, plane) < 4 ? 1 : 0;
    }

    /// First row offset (0..3) whose bit at `plane` is 1, or 4 if none.
    /// Only meaningful on the encoder side; the decoder never consumes it.
    [[nodiscard]] int first_one_in_column(int x, int sy, int plane) const
    {
        for (int dy = 0; dy < 4; ++dy)
            if ((s_.mag[s_.idx(x, sy + dy)] >> plane) & 1u) return dy;
        return 4;
    }

    template <typename Fn>
    void for_each_stripe(Fn&& fn)
    {
        for (int sy = 0; sy < s_.h; sy += 4)
            for (int x = 0; x < s_.w; ++x)
                for (int dy = 0; dy < 4 && sy + dy < s_.h; ++dy) fn(x, sy + dy);
    }

    block_state& s_;
    IO io_;
};

struct encode_io {
    static constexpr bool is_decoder = false;
    mq_encoder* enc;
    int bit(mq_context& cx, int actual)
    {
        enc->encode(cx, actual);
        return actual;
    }
};

struct decode_io {
    static constexpr bool is_decoder = true;
    mq_decoder* dec;
    int bit(mq_context& cx, int /*actual*/) { return dec->decode(cx); }
};

}  // namespace

codeblock tier1_encode(const std::int32_t* coeffs, int w, int h, band orient)
{
    if (w <= 0 || h <= 0) throw std::invalid_argument{"tier1_encode: empty block"};
    block_state st{w, h, orient};
    std::uint32_t maxmag = 0;
    for (int i = 0; i < w * h; ++i) {
        const std::int32_t v = coeffs[i];
        st.mag[static_cast<std::size_t>(i)] = static_cast<std::uint32_t>(std::abs(v));
        st.sign[static_cast<std::size_t>(i)] = v < 0 ? 1 : 0;
        maxmag = std::max(maxmag, st.mag[static_cast<std::size_t>(i)]);
    }
    codeblock cb;
    cb.width = w;
    cb.height = h;
    if (maxmag == 0) return cb;  // nothing to code

    int planes = 0;
    while (maxmag >> planes) ++planes;
    cb.num_planes = planes;

    mq_encoder enc;
    engine<encode_io> eng{st, encode_io{&enc}};
    for (int p = planes - 1; p >= 0; --p) {
        eng.begin_plane();
        if (p != planes - 1) {
            eng.significance_pass(p);
            eng.refinement_pass(p);
        }
        eng.cleanup_pass(p);
    }
    cb.data = enc.flush();
    return cb;
}

namespace {

/// The canonical pass sequence for p magnitude planes: MSB plane gets only a
/// cleanup pass; every other plane gets SPP, MRP, CUP.
struct pass_ref {
    int plane;
    int kind;  // 0 = significance, 1 = refinement, 2 = cleanup
};

std::vector<pass_ref> pass_sequence(int num_planes)
{
    std::vector<pass_ref> seq;
    for (int p = num_planes - 1; p >= 0; --p) {
        if (p != num_planes - 1) {
            seq.push_back({p, 0});
            seq.push_back({p, 1});
        }
        seq.push_back({p, 2});
    }
    return seq;
}

template <typename IO>
void run_pass(engine<IO>& eng, const pass_ref& pr)
{
    switch (pr.kind) {
        case 0: eng.significance_pass(pr.plane); break;
        case 1: eng.refinement_pass(pr.plane); break;
        default: eng.cleanup_pass(pr.plane); break;
    }
}

}  // namespace

layered_codeblock tier1_encode_layered(const std::int32_t* coeffs, int w, int h,
                                       band orient,
                                       const std::vector<int>& passes_per_layer)
{
    if (w <= 0 || h <= 0)
        throw std::invalid_argument{"tier1_encode_layered: empty block"};
    if (passes_per_layer.empty())
        throw std::invalid_argument{"tier1_encode_layered: no layers"};
    block_state st{w, h, orient};
    std::uint32_t maxmag = 0;
    for (int i = 0; i < w * h; ++i) {
        const std::int32_t v = coeffs[i];
        st.mag[static_cast<std::size_t>(i)] = static_cast<std::uint32_t>(std::abs(v));
        st.sign[static_cast<std::size_t>(i)] = v < 0 ? 1 : 0;
        maxmag = std::max(maxmag, st.mag[static_cast<std::size_t>(i)]);
    }
    layered_codeblock out;
    out.width = w;
    out.height = h;
    out.segments.resize(passes_per_layer.size());
    if (maxmag == 0) return out;
    int planes = 0;
    while (maxmag >> planes) ++planes;
    out.num_planes = planes;

    const auto seq = pass_sequence(planes);
    mq_encoder enc;
    engine<encode_io> eng{st, encode_io{&enc}};
    std::size_t pass_i = 0;
    int last_plane = -1;
    for (std::size_t layer = 0; layer < passes_per_layer.size(); ++layer) {
        // The last layer absorbs all remaining passes.
        const std::size_t want = layer + 1 == passes_per_layer.size()
                                     ? seq.size() - pass_i
                                     : static_cast<std::size_t>(
                                           std::max(0, passes_per_layer[layer]));
        std::size_t done = 0;
        while (done < want && pass_i < seq.size()) {
            const pass_ref& pr = seq[pass_i];
            if (pr.plane != last_plane && (pr.kind == 0 || pr.kind == 2)) {
                // Entering a new plane (SPP, or CUP on the MSB plane).
                if (pr.kind == 2 && pr.plane == planes - 1) eng.begin_plane();
                if (pr.kind == 0) eng.begin_plane();
                last_plane = pr.plane;
            }
            run_pass(eng, pr);
            ++pass_i;
            ++done;
        }
        out.segments[layer].passes = static_cast<int>(done);
        // Terminate the codeword at the layer boundary; contexts persist.
        out.segments[layer].data = enc.flush();
        enc.init();
    }
    return out;
}

/// Persistent state of a resumable block decoder: the shared coder state plus
/// the cursor into the canonical pass sequence.
struct tier1_block_decoder::state {
    block_state bs;
    std::vector<pass_ref> seq;
    std::size_t pass_i = 0;
    int last_plane = -1;
    int num_planes = 0;
    int segments = 0;

    state(int w, int h, int planes, band orient, std::pmr::memory_resource* mr)
        : bs{w, h, orient, mr}, seq{pass_sequence(planes)}, num_planes{planes}
    {
    }
};

tier1_block_decoder::tier1_block_decoder(int width, int height, int num_planes,
                                         band orient,
                                         std::pmr::memory_resource* mr)
{
    if (width <= 0 || height <= 0)
        throw std::invalid_argument{"tier1_block_decoder: empty block"};
    // num_planes is stream data, not an API argument — malformed values are a
    // codestream error so hostile inputs stay inside the decode error contract.
    if (num_planes < 0 || num_planes > 31)
        throw codestream_error{"tier1_block_decoder: implausible plane count"};
    st_ = std::make_unique<state>(width, height, num_planes, orient, mr);
}

tier1_block_decoder::~tier1_block_decoder() = default;
tier1_block_decoder::tier1_block_decoder(tier1_block_decoder&&) noexcept = default;
tier1_block_decoder& tier1_block_decoder::operator=(tier1_block_decoder&&) noexcept =
    default;

int tier1_block_decoder::width() const noexcept { return st_->bs.w; }
int tier1_block_decoder::height() const noexcept { return st_->bs.h; }
int tier1_block_decoder::segments_consumed() const noexcept { return st_->segments; }

void tier1_block_decoder::advance(int passes, std::span<const std::uint8_t> data,
                                  tier1_stats* stats)
{
    ++st_->segments;
    if (st_->num_planes == 0 || passes <= 0) return;
    mq_decoder dec{data};
    engine<decode_io> eng{st_->bs, decode_io{&dec}};
    std::uint64_t executed = 0;
    for (int k = 0; k < passes && st_->pass_i < st_->seq.size(); ++k, ++st_->pass_i) {
        const pass_ref& pr = st_->seq[st_->pass_i];
        if (pr.plane != st_->last_plane && (pr.kind == 0 || pr.kind == 2)) {
            if (pr.kind == 2 && pr.plane == st_->num_planes - 1) eng.begin_plane();
            if (pr.kind == 0) eng.begin_plane();
            st_->last_plane = pr.plane;
        }
        run_pass(eng, pr);
        ++executed;
    }
    if (stats) {
        stats->mq_decisions += dec.decisions();
        stats->passes += executed;
        stats->samples += eng.samples_visited;
    }
}

void tier1_block_decoder::read(std::int32_t* out) const
{
    const block_state& bs = st_->bs;
    const auto n = static_cast<std::size_t>(bs.w) * static_cast<std::size_t>(bs.h);
    for (std::size_t i = 0; i < n; ++i) {
        const auto m = static_cast<std::int32_t>(bs.mag[i]);
        out[i] = bs.sign[i] ? -m : m;
    }
}

void tier1_decode_layered(const layered_codeblock& cb, std::int32_t* out,
                          band orient, int layers, tier1_stats* stats,
                          std::pmr::memory_resource* mr)
{
    if (cb.width <= 0 || cb.height <= 0)
        throw std::invalid_argument{"tier1_decode_layered: empty block"};
    const auto n = static_cast<std::size_t>(cb.width) * static_cast<std::size_t>(cb.height);
    // One batch decode is the resumable decoder fed every segment in turn —
    // a single code path keeps the incremental session bit-exact by
    // construction (num_planes validation happens in the constructor).
    tier1_block_decoder dec{cb.width, cb.height, cb.num_planes, orient, mr};
    if (cb.num_planes == 0) {
        std::fill(out, out + n, 0);
        return;
    }
    const std::size_t use_layers =
        layers <= 0 ? cb.segments.size()
                    : std::min<std::size_t>(static_cast<std::size_t>(layers),
                                            cb.segments.size());
    for (std::size_t layer = 0; layer < use_layers; ++layer) {
        const auto& seg = cb.segments[layer];
        dec.advance(seg.passes, seg.data, stats);
    }
    dec.read(out);
}

void tier1_decode(const codeblock& cb, std::int32_t* out, band orient,
                  tier1_stats* stats, int max_passes,
                  std::pmr::memory_resource* mr)
{
    if (cb.width <= 0 || cb.height <= 0)
        throw std::invalid_argument{"tier1_decode: empty block"};
    // Stream data, same contract as tier1_decode_layered above.
    if (cb.num_planes < 0 || cb.num_planes > 31)
        throw codestream_error{"tier1_decode: implausible bit-plane count"};
    const auto n = static_cast<std::size_t>(cb.width) * static_cast<std::size_t>(cb.height);
    if (cb.num_planes == 0) {
        std::fill(out, out + n, 0);
        return;
    }
    block_state st{cb.width, cb.height, orient, mr};
    mq_decoder dec{std::span<const std::uint8_t>{cb.data}};
    engine<decode_io> eng{st, decode_io{&dec}};
    std::uint64_t passes = 0;
    const auto limit = [&] {
        return max_passes > 0 && passes >= static_cast<std::uint64_t>(max_passes);
    };
    for (int p = cb.num_planes - 1; p >= 0 && !limit(); --p) {
        eng.begin_plane();
        if (p != cb.num_planes - 1) {
            eng.significance_pass(p);
            ++passes;
            if (limit()) break;
            eng.refinement_pass(p);
            ++passes;
            if (limit()) break;
        }
        eng.cleanup_pass(p);
        ++passes;
    }
    for (std::size_t i = 0; i < n; ++i) {
        const auto m = static_cast<std::int32_t>(st.mag[i]);
        out[i] = st.sign[i] ? -m : m;
    }
    if (stats) {
        stats->mq_decisions += dec.decisions();
        stats->passes += passes;
        stats->samples += eng.samples_visited;
    }
}

}  // namespace j2k
