#include "codec.hpp"

#include "kernels.hpp"
#include "session.hpp"

#include <obs/trace.hpp>

#include <cmath>
#include <stdexcept>
#include <thread>

namespace j2k {

namespace {

using detail::for_each_codeblock;

void gather_block(const plane& p, int x0, int y0, int w, int h, std::vector<std::int32_t>& out)
{
    out.resize(static_cast<std::size_t>(w) * h);
    for (int y = 0; y < h; ++y) {
        const std::int32_t* s = p.row(y0 + y) + x0;
        std::copy(s, s + w, out.begin() + static_cast<std::ptrdiff_t>(y) * w);
    }
}

void scatter_block(plane& p, int x0, int y0, int w, int h, const std::int32_t* in)
{
    for (int y = 0; y < h; ++y) {
        const std::int32_t* s = in + static_cast<std::ptrdiff_t>(y) * w;
        std::copy(s, s + w, p.row(y0 + y) + x0);
    }
}

/// Quantise a 9/7 coefficient buffer (doubles) into an integer plane, band by
/// band, using per-band step sizes.
plane quantize_tile(const std::vector<double>& buf, int w, int h,
                    const quant_params& q, int levels, int bit_depth)
{
    plane out{w, h};
    for (const auto& br : subband_layout(w, h, levels)) {
        const double step = quant_step(q, br.b, br.level == 0 ? levels : br.level,
                                       wavelet::w9_7, bit_depth);
        for (int y = 0; y < br.height; ++y) {
            for (int x = 0; x < br.width; ++x) {
                const auto i = static_cast<std::size_t>(br.y0 + y) * w + (br.x0 + x);
                out.at(br.x0 + x, br.y0 + y) = quantize_value(buf[i], step);
            }
        }
    }
    return out;
}

}  // namespace

std::vector<std::uint8_t> encode(const image& img, const codec_params& p)
{
    if (p.levels < 0 || p.levels > 12)
        throw std::invalid_argument{"encode: levels out of range"};
    if (p.tile_width <= 0 || p.tile_height <= 0)
        throw std::invalid_argument{"encode: bad tile size"};

    image work = img;
    dc_shift_forward(work);
    if (work.components() == 3) {
        if (p.mode == wavelet::w5_3)
            rct_forward(work);
        else
            ict_forward(work);
    }

    stream_info info;
    info.width = img.width();
    info.height = img.height();
    info.components = img.components();
    info.bit_depth = img.bit_depth();
    info.tile_width = p.tile_width;
    info.tile_height = p.tile_height;
    info.mode = p.mode;
    info.levels = p.levels;
    info.quality_layers = std::max(1, p.quality_layers);
    info.quant = p.quant;

    byte_writer w;
    write_header(w, info);

    if (info.quality_layers > 1) {
        // Quality-progressive stream: per tile, encode every code block into
        // layered segments; serialise layer-major with a chunk directory.
        const int layers = info.quality_layers;
        const auto grid = tile_grid(info.width, info.height, p.tile_width, p.tile_height);
        std::vector<std::vector<std::vector<std::uint8_t>>> chunks(
            static_cast<std::size_t>(layers));  // [layer][tile]
        for (auto& lc : chunks) lc.resize(grid.size());

        std::vector<std::int32_t> blk;
        for (const auto& tr : grid) {
            std::vector<byte_writer> layer_w(static_cast<std::size_t>(layers));
            for (int c = 0; c < work.components(); ++c) {
                plane tp = extract_tile(work.comp(c), tr);
                plane coeffs{tr.width, tr.height};
                if (p.mode == wavelet::w5_3) {
                    dwt53_forward(tp, p.levels);
                    coeffs = std::move(tp);
                } else {
                    std::vector<double> buf(tp.samples().begin(), tp.samples().end());
                    dwt97_forward(buf, tr.width, tr.height, p.levels);
                    coeffs = quantize_tile(buf, tr.width, tr.height, p.quant, p.levels,
                                           info.bit_depth);
                }
                for (const auto& br : subband_layout(tr.width, tr.height, p.levels)) {
                    if (br.width == 0 || br.height == 0) continue;
                    for_each_codeblock(br, [&](int x0, int y0, int bw, int bh) {
                        gather_block(coeffs, x0, y0, bw, bh, blk);
                        // Proportional pass allocation over the layers.
                        const codeblock probe = tier1_encode(blk.data(), bw, bh, br.b);
                        const int total = probe.pass_count();
                        std::vector<int> per_layer(static_cast<std::size_t>(layers), 0);
                        int prev = 0;
                        for (int l = 0; l < layers; ++l) {
                            const int cum = total * (l + 1) / layers;
                            per_layer[static_cast<std::size_t>(l)] = cum - prev;
                            prev = cum;
                        }
                        const layered_codeblock lcb =
                            tier1_encode_layered(blk.data(), bw, bh, br.b, per_layer);
                        for (int l = 0; l < layers; ++l) {
                            auto& lw = layer_w[static_cast<std::size_t>(l)];
                            if (l == 0)
                                lw.u8(static_cast<std::uint8_t>(lcb.num_planes));
                            const auto& seg = lcb.num_planes == 0
                                                  ? layered_codeblock::segment{}
                                                  : lcb.segments[static_cast<std::size_t>(l)];
                            lw.u8(static_cast<std::uint8_t>(seg.passes));
                            lw.u32(static_cast<std::uint32_t>(seg.data.size()));
                            lw.bytes(seg.data);
                        }
                    });
                }
            }
            for (int l = 0; l < layers; ++l)
                chunks[static_cast<std::size_t>(l)][static_cast<std::size_t>(tr.index)] =
                    layer_w[static_cast<std::size_t>(l)].take();
        }
        // Directory, then the chunks in layer-major order.
        for (int l = 0; l < layers; ++l)
            for (const auto& ch : chunks[static_cast<std::size_t>(l)])
                w.u32(static_cast<std::uint32_t>(ch.size()));
        for (int l = 0; l < layers; ++l)
            for (const auto& ch : chunks[static_cast<std::size_t>(l)])
                w.bytes(ch);
        return w.take();
    }

    std::vector<std::int32_t> block;
    for (const auto& tr : tile_grid(info.width, info.height, p.tile_width, p.tile_height)) {
        const std::size_t len_pos = w.size();
        w.u32(0);  // patched below
        const std::size_t payload_start = w.size();

        for (int c = 0; c < work.components(); ++c) {
            plane tp = extract_tile(work.comp(c), tr);
            plane coeffs{tr.width, tr.height};
            if (p.mode == wavelet::w5_3) {
                dwt53_forward(tp, p.levels);
                coeffs = std::move(tp);
            } else {
                std::vector<double> buf(tp.samples().begin(), tp.samples().end());
                dwt97_forward(buf, tr.width, tr.height, p.levels);
                coeffs = quantize_tile(buf, tr.width, tr.height, p.quant, p.levels,
                                       info.bit_depth);
            }
            for (const auto& br : subband_layout(tr.width, tr.height, p.levels)) {
                if (br.width == 0 || br.height == 0) continue;
                for_each_codeblock(br, [&](int x0, int y0, int bw, int bh) {
                    gather_block(coeffs, x0, y0, bw, bh, block);
                    const codeblock cb = tier1_encode(block.data(), bw, bh, br.b);
                    w.u8(static_cast<std::uint8_t>(cb.num_planes));
                    w.u32(static_cast<std::uint32_t>(cb.data.size()));
                    w.bytes(cb.data);
                });
            }
        }
        w.patch_u32(len_pos, static_cast<std::uint32_t>(w.size() - payload_start));
    }
    return w.take();
}

decoder::decoder(std::span<const std::uint8_t> cs) : cs_{cs}, info_{read_header(cs)} {}

std::vector<tile_rect> decoder::tiles() const
{
    return tile_grid(info_.width, info_.height, info_.tile_width, info_.tile_height);
}

tile_coeffs decoder::entropy_decode(int tile_index, tier1_stats* stats,
                                    std::pmr::memory_resource* mr) const
{
    OBS_TRACE_SCOPE("j2k", "tier1");
    const auto grid = tiles();
    if (tile_index < 0 || tile_index >= static_cast<int>(grid.size()))
        throw std::out_of_range{"entropy_decode: tile index"};
    const tile_rect tr = grid[static_cast<std::size_t>(tile_index)];

    if (info_.quality_layers > 1)
        return entropy_decode_layered(tile_index, stats, mr);

    byte_reader r{cs_};
    r.seek(info_.tile_offsets[static_cast<std::size_t>(tile_index)]);

    tile_coeffs tc;
    tc.rect = tr;
    std::pmr::vector<std::int32_t> block{
        mr ? mr : std::pmr::get_default_resource()};
    for (int c = 0; c < info_.components; ++c) {
        plane coeffs{tr.width, tr.height};
        for (const auto& br : subband_layout(tr.width, tr.height, info_.levels)) {
            if (br.width == 0 || br.height == 0) continue;
            for_each_codeblock(br, [&](int x0, int y0, int bw, int bh) {
                codeblock cb;
                cb.width = bw;
                cb.height = bh;
                cb.num_planes = r.u8();
                const std::uint32_t len = r.u32();
                const auto seg = r.bytes(len);
                cb.data.assign(seg.begin(), seg.end());
                block.resize(static_cast<std::size_t>(bw) * bh);
                tier1_decode(cb, block.data(), br.b, stats, max_passes_, mr);
                scatter_block(coeffs, x0, y0, bw, bh, block.data());
            });
        }
        tc.comps.push_back(std::move(coeffs));
    }
    return tc;
}

tile_coeffs decoder::entropy_decode_layered(int tile_index, tier1_stats* stats,
                                            std::pmr::memory_resource* mr) const
{
    const auto grid = tiles();
    const tile_rect tr = grid[static_cast<std::size_t>(tile_index)];
    const int layers = info_.quality_layers;
    const int use = max_layers_ <= 0 ? layers : std::min(max_layers_, layers);

    // Gather each block's segments from the layer-major chunks, in the same
    // canonical block order the encoder used.
    std::vector<layered_codeblock> blocks;
    for (int l = 0; l < use; ++l) {
        const std::size_t idx =
            static_cast<std::size_t>(l) * static_cast<std::size_t>(grid.size()) +
            static_cast<std::size_t>(tile_index);
        byte_reader r{cs_};
        r.seek(info_.chunk_offsets[idx]);
        std::size_t bi = 0;
        for (int c = 0; c < info_.components; ++c) {
            for (const auto& br : subband_layout(tr.width, tr.height, info_.levels)) {
                if (br.width == 0 || br.height == 0) continue;
                for_each_codeblock(br, [&](int, int, int bw, int bh) {
                    if (l == 0) {
                        layered_codeblock lcb;
                        lcb.width = bw;
                        lcb.height = bh;
                        lcb.num_planes = r.u8();
                        lcb.segments.resize(static_cast<std::size_t>(layers));
                        blocks.push_back(std::move(lcb));
                    }
                    auto& seg = blocks.at(bi).segments[static_cast<std::size_t>(l)];
                    seg.passes = r.u8();
                    const std::uint32_t len = r.u32();
                    const auto bytes = r.bytes(len);
                    seg.data.assign(bytes.begin(), bytes.end());
                    ++bi;
                });
            }
        }
    }

    tile_coeffs tc;
    tc.rect = tr;
    std::pmr::vector<std::int32_t> blk{mr ? mr : std::pmr::get_default_resource()};
    std::size_t bi = 0;
    for (int c = 0; c < info_.components; ++c) {
        plane coeffs{tr.width, tr.height};
        for (const auto& br : subband_layout(tr.width, tr.height, info_.levels)) {
            if (br.width == 0 || br.height == 0) continue;
            for_each_codeblock(br, [&](int x0, int y0, int bw, int bh) {
                blk.resize(static_cast<std::size_t>(bw) * bh);
                tier1_decode_layered(blocks.at(bi), blk.data(), br.b, use, stats, mr);
                scatter_block(coeffs, x0, y0, bw, bh, blk.data());
                ++bi;
            });
        }
        tc.comps.push_back(std::move(coeffs));
    }
    return tc;
}

tile_wavelet decoder::dequantize(const tile_coeffs& tc) const
{
    OBS_TRACE_SCOPE("j2k", "iq");
    tile_wavelet tw;
    tw.rect = tc.rect;
    tw.lossy = info_.mode == wavelet::w9_7;
    if (!tw.lossy) {
        tw.iplanes = tc.comps;  // reversible path: IQ is the identity
        return tw;
    }
    const kernel_table& K = kernels();
    for (const auto& cp : tc.comps) {
        std::vector<double> buf(static_cast<std::size_t>(cp.width()) * cp.height(), 0.0);
        for (const auto& br : subband_layout(cp.width(), cp.height(), info_.levels)) {
            const double step = quant_step(info_.quant, br.b, br.level == 0 ? info_.levels : br.level,
                                           wavelet::w9_7, info_.bit_depth);
            // Band rows are contiguous within the plane — dequantise a whole
            // row per kernel call.
            for (int y = 0; y < br.height; ++y) {
                const std::int32_t* src = cp.row(br.y0 + y) + br.x0;
                double* dst =
                    buf.data() + static_cast<std::size_t>(br.y0 + y) * cp.width() + br.x0;
                K.dequant(src, dst, step, static_cast<std::size_t>(br.width));
            }
        }
        tw.dplanes.push_back(std::move(buf));
    }
    return tw;
}

tile_pixels decoder::idwt(const tile_wavelet& tw, std::pmr::memory_resource* mr) const
{
    OBS_TRACE_SCOPE("j2k", "idwt");
    tile_pixels tp;
    tp.rect = tw.rect;
    if (!tw.lossy) {
        for (plane p : tw.iplanes) {
            dwt53_inverse(p, info_.levels, mr);
            tp.comps.push_back(std::move(p));
        }
        return tp;
    }
    for (const auto& dbuf : tw.dplanes) {
        std::vector<double> buf = dbuf;
        dwt97_inverse(buf, tw.rect.width, tw.rect.height, info_.levels, mr);
        plane p{tw.rect.width, tw.rect.height};
        for (std::size_t i = 0; i < buf.size(); ++i)
            p.samples()[i] = static_cast<std::int32_t>(std::lround(buf[i]));
        tp.comps.push_back(std::move(p));
    }
    return tp;
}

void decoder::finish(image& img) const
{
    if (img.components() == 3) {
        OBS_TRACE_SCOPE("j2k", "ict");
        if (info_.mode == wavelet::w5_3)
            rct_inverse(img);
        else
            ict_inverse(img);
    }
    OBS_TRACE_SCOPE("j2k", "dc_shift");
    dc_shift_inverse(img);
}

image decoder::decode_all(decode_stats* stats) const
{
    // Thin wrapper over a full-depth decode session: one advance_to at the
    // configured layer cap is exactly the classic one-shot decode.
    decode_session s{*this};
    return s.advance_to(max_layers_, stats);
}

image decoder::decode_all_parallel(int threads) const
{
    if (threads <= 0)
        threads = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
    decode_session s{*this};
    s.set_threads(threads);
    return s.advance_to(max_layers_);
}

image decoder::decode_reduced(int discard, decode_stats* stats,
                              std::pmr::memory_resource* mr) const
{
    if (discard < 0 || discard > info_.levels)
        throw std::invalid_argument{"decode_reduced: discard out of range"};
    if (discard == 0) return decode_all(stats);

    const int rw = reduced_extent(info_.width, discard);
    const int rh = reduced_extent(info_.height, discard);
    image img{rw, rh, info_.components, info_.bit_depth};
    const auto grid = tiles();
    for (int t = 0; t < static_cast<int>(grid.size()); ++t) {
        const tile_rect& tr = grid[static_cast<std::size_t>(t)];
        const tile_coeffs tc = entropy_decode(t, stats ? &stats->t1 : nullptr, mr);
        const tile_wavelet tw = dequantize(tc);
        // Partial synthesis, then crop the reduced-resolution LL region.
        const int tw_r = reduced_extent(tr.width, discard);
        const int th_r = reduced_extent(tr.height, discard);
        // Tile origins are multiples of the tile size; their reduced
        // positions follow the same ceil-division.
        tile_rect rr{tr.index, reduced_extent(tr.x0, discard),
                     reduced_extent(tr.y0, discard), tw_r, th_r};
        for (int comp = 0; comp < info_.components; ++comp) {
            plane full{tr.width, tr.height};
            if (!tw.lossy) {
                full = tw.iplanes[static_cast<std::size_t>(comp)];
                dwt53_inverse_partial(full, info_.levels, discard, mr);
            } else {
                std::vector<double> buf = tw.dplanes[static_cast<std::size_t>(comp)];
                dwt97_inverse_partial(buf, tr.width, tr.height, info_.levels, discard, mr);
                for (std::size_t i = 0; i < buf.size(); ++i)
                    full.samples()[i] = static_cast<std::int32_t>(std::lround(buf[i]));
            }
            const tile_rect crop{0, 0, 0, tw_r, th_r};
            insert_tile(img.comp(comp), extract_tile(full, crop), rr);
        }
        if (stats) {
            const auto n = static_cast<std::uint64_t>(tw_r) * th_r *
                           static_cast<std::uint64_t>(info_.components);
            stats->iq_samples += static_cast<std::uint64_t>(tr.width) * tr.height *
                                 static_cast<std::uint64_t>(info_.components);
            stats->idwt_samples += n;
        }
    }
    finish(img);
    return img;
}

image decode(std::span<const std::uint8_t> cs, decode_stats* stats)
{
    return decoder{cs}.decode_all(stats);
}

}  // namespace j2k
