// j2k/mq_coder.hpp — the MQ binary arithmetic coder of ISO/IEC 15444-1.
//
// This is the entropy-coding engine of JPEG 2000 (identical to the JBIG2 MQ
// coder): an adaptive, multiplication-free binary arithmetic coder driven by
// a 47-entry probability state machine.  Contexts carry an (index, MPS) pair
// and adapt independently.  The encoder/decoder pair implements the flow
// charts of ISO/IEC 15444-1 Annex C (ENCODE / CODEMPS / CODELPS / BYTEOUT /
// FLUSH and INITDEC / DECODE / MPS_EXCHANGE / LPS_EXCHANGE / BYTEIN) with
// 0xFF byte-stuffing.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace j2k {

/// Adaptive probability state of one coding context.
struct mq_context {
    std::uint8_t index = 0;  ///< state index into the Qe table (0..46)
    std::uint8_t mps = 0;    ///< current most-probable symbol (0 or 1)

    void reset(std::uint8_t idx = 0, std::uint8_t m = 0) noexcept
    {
        index = idx;
        mps = m;
    }
};

/// One row of the ISO/IEC 15444-1 Table C.2 probability state machine.
struct mq_state {
    std::uint16_t qe;      ///< LPS probability estimate
    std::uint8_t nmps;     ///< next state after an MPS
    std::uint8_t nlps;     ///< next state after an LPS
    std::uint8_t sw;       ///< 1 ⇒ exchange MPS sense on LPS
};

/// The 47-state table (shared by encoder and decoder).
[[nodiscard]] const mq_state& mq_table(std::uint8_t index) noexcept;

/// Decoder renormalisation strategy.
enum class mq_mode : std::uint8_t {
    reference,  ///< Annex C flow chart: one shift per loop iteration
    fast,       ///< batch renormalisation: leading-zero LUT, chunked shifts
};

/// What a freshly constructed decoder uses: `fast` when the active kernel
/// table opts in (see kernel_table::mq_fast), else `reference`.
[[nodiscard]] mq_mode default_mq_mode() noexcept;

/// Number of left shifts that bring bit 15 of the 16-bit interval register
/// up, i.e. the total shift one RENORMD performs for this `a`.  LUT-based;
/// requires 1 <= a <= 0x7FFF (always true at renorm entry).  Exposed so tests
/// can sweep it exhaustively against the iterative definition.
[[nodiscard]] int mq_renorm_shift(std::uint32_t a) noexcept;

/// MQ encoder producing a byte vector.
class mq_encoder {
public:
    mq_encoder() { init(); }

    /// Reset all coder state and discard buffered output.
    void init();

    /// Encode one binary decision `d` in context `cx`.
    void encode(mq_context& cx, int d);

    /// Terminate the codeword (FLUSH) and return the bytes.  The encoder must
    /// be re-`init`ed before reuse.
    [[nodiscard]] std::vector<std::uint8_t> flush();

    /// Bytes emitted so far (grows during encoding).
    [[nodiscard]] std::size_t bytes_emitted() const noexcept { return out_.size(); }

private:
    void code_mps(mq_context& cx);
    void code_lps(mq_context& cx);
    void renorm();
    void byte_out();

    std::uint32_t c_ = 0;
    std::uint32_t a_ = 0;
    int ct_ = 0;
    bool have_b_ = false;     ///< a pending byte exists in b_
    std::uint8_t b_ = 0;      ///< pending (not yet committed) byte
    std::vector<std::uint8_t> out_;
};

/// MQ decoder reading from a byte span (not owned; must outlive the decoder).
class mq_decoder {
public:
    explicit mq_decoder(std::span<const std::uint8_t> data,
                        mq_mode mode = default_mq_mode())
        : mode_{mode}
    {
        init(data);
    }

    /// (Re)start decoding from `data` (keeps the current mode).
    void init(std::span<const std::uint8_t> data);

    /// Decode one binary decision in context `cx`.
    [[nodiscard]] int decode(mq_context& cx);

    /// Number of decisions decoded since init (profiling hook: the paper's
    /// execution-time model charges per-decision work to the arith stage).
    [[nodiscard]] std::uint64_t decisions() const noexcept { return decisions_; }

    /// Renormalisation strategy.  Both modes are bit-exact by construction
    /// (the fast path performs the same shifts with the same BYTEIN
    /// boundaries, just in chunks); the setter exists so tests and the fuzzer
    /// can pin either side regardless of the kernel dispatch.
    void set_mode(mq_mode m) noexcept { mode_ = m; }
    [[nodiscard]] mq_mode mode() const noexcept { return mode_; }

private:
    void byte_in();
    void renorm();
    void renorm_fast();
    [[nodiscard]] int mps_exchange(mq_context& cx);
    [[nodiscard]] int lps_exchange(mq_context& cx);

    std::span<const std::uint8_t> in_{};
    std::size_t bp_ = 0;
    std::uint32_t c_ = 0;
    std::uint32_t a_ = 0;
    int ct_ = 0;
    std::uint64_t decisions_ = 0;
    mq_mode mode_ = mq_mode::reference;
};

}  // namespace j2k
