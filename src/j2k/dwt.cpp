#include "dwt.hpp"

#include "kernels.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace j2k {

namespace {

// 9/7 lifting constants (ISO/IEC 15444-1 F.4.8.2).
constexpr double k_alpha = -1.586134342059924;
constexpr double k_beta = -0.052980118572961;
constexpr double k_gamma = 0.882911075530934;
constexpr double k_delta = 0.443506852043971;
constexpr double k_K = 1.230174104914001;

/// Mirror index for whole-sample symmetric extension on [0, n).
[[nodiscard]] constexpr int mirror(int i, int n) noexcept
{
    if (n == 1) return 0;
    const int period = 2 * (n - 1);
    int j = i % period;
    if (j < 0) j += period;
    return j < n ? j : period - j;
}

[[nodiscard]] int level_extent(int full, int level) noexcept
{
    // ceil(full / 2^level)
    int e = full;
    for (int i = 0; i < level; ++i) e = (e + 1) / 2;
    return e;
}

[[nodiscard]] std::pmr::memory_resource* mr_of(std::pmr::memory_resource* mr) noexcept
{
    return mr ? mr : std::pmr::get_default_resource();
}

/// Deinterleave x (even→low half, odd→high half) using scratch.
template <typename T>
void deinterleave(T* x, int n, std::pmr::vector<T>& scratch)
{
    scratch.assign(x, x + n);
    const int nl = (n + 1) / 2;
    for (int i = 0; i < n; ++i) {
        if (i % 2 == 0)
            x[i / 2] = scratch[static_cast<std::size_t>(i)];
        else
            x[nl + i / 2] = scratch[static_cast<std::size_t>(i)];
    }
}

/// Interleave (inverse of deinterleave).
template <typename T>
void interleave(T* x, int n, std::pmr::vector<T>& scratch)
{
    scratch.assign(x, x + n);
    const int nl = (n + 1) / 2;
    for (int i = 0; i < n; ++i) {
        if (i % 2 == 0)
            x[i] = scratch[static_cast<std::size_t>(i / 2)];
        else
            x[i] = scratch[static_cast<std::size_t>(nl + i / 2)];
    }
}

}  // namespace

void dwt53_analyze_1d(std::int32_t* x, int n)
{
    if (n < 2) return;
    auto at = [x, n](int i) -> std::int32_t { return x[mirror(i, n)]; };
    // Predict: odd (high) samples.
    for (int i = 1; i < n; i += 2) x[i] -= (at(i - 1) + at(i + 1)) >> 1;
    // Update: even (low) samples.
    for (int i = 0; i < n; i += 2) x[i] += (at(i - 1) + at(i + 1) + 2) >> 2;
}

void dwt53_synthesize_1d(std::int32_t* x, int n)
{
    if (n < 2) return;
    auto at = [x, n](int i) -> std::int32_t { return x[mirror(i, n)]; };
    for (int i = 0; i < n; i += 2) x[i] -= (at(i - 1) + at(i + 1) + 2) >> 2;
    for (int i = 1; i < n; i += 2) x[i] += (at(i - 1) + at(i + 1)) >> 1;
}

void dwt97_analyze_1d(double* x, int n)
{
    if (n < 2) {
        return;  // single sample: pure LL, no scaling
    }
    auto at = [x, n](int i) -> double { return x[mirror(i, n)]; };
    for (int i = 1; i < n; i += 2) x[i] += k_alpha * (at(i - 1) + at(i + 1));
    for (int i = 0; i < n; i += 2) x[i] += k_beta * (at(i - 1) + at(i + 1));
    for (int i = 1; i < n; i += 2) x[i] += k_gamma * (at(i - 1) + at(i + 1));
    for (int i = 0; i < n; i += 2) x[i] += k_delta * (at(i - 1) + at(i + 1));
    for (int i = 0; i < n; i += 2) x[i] *= 1.0 / k_K;  // low-pass: DC gain 1
    for (int i = 1; i < n; i += 2) x[i] *= k_K;        // high-pass
}

void dwt97_synthesize_1d(double* x, int n)
{
    if (n < 2) return;
    auto at = [x, n](int i) -> double { return x[mirror(i, n)]; };
    for (int i = 0; i < n; i += 2) x[i] *= k_K;
    for (int i = 1; i < n; i += 2) x[i] *= 1.0 / k_K;
    for (int i = 0; i < n; i += 2) x[i] -= k_delta * (at(i - 1) + at(i + 1));
    for (int i = 1; i < n; i += 2) x[i] -= k_gamma * (at(i - 1) + at(i + 1));
    for (int i = 0; i < n; i += 2) x[i] -= k_beta * (at(i - 1) + at(i + 1));
    for (int i = 1; i < n; i += 2) x[i] -= k_alpha * (at(i - 1) + at(i + 1));
}

namespace {

// ---------------------------------------------------------------------------
// Vertical (column-direction) passes, restructured for SIMD.
//
// The old implementation gathered every column into a strided temp and ran
// the 1-D filter on it — h loads + h stores per column, unvectorisable.  The
// lifting steps are elementwise across a row once the data is viewed in
// interleaved row order, so instead we copy the region's rows into a
// contiguous grid in interleaved order, apply each lifting step as a
// whole-row kernel (dispatched: scalar or AVX2), and copy back.  The
// per-element arithmetic is identical to running dwt*_1d down each column,
// so results are bit-exact with the previous layout.
//
// Row y's lifting neighbours are rows mirror(y±1, h) — passing the mirrored
// row twice at the boundary reproduces the 1-D at() extension exactly.
// ---------------------------------------------------------------------------

void vertical53_forward(std::int32_t* data, int stride, int w, int h,
                        std::int32_t* g, const kernel_table& K)
{
    for (int y = 0; y < h; ++y)
        std::copy_n(data + static_cast<std::ptrdiff_t>(y) * stride, w,
                    g + static_cast<std::size_t>(y) * w);
    auto row = [g, w, h](int y) {
        return g + static_cast<std::size_t>(mirror(y, h)) * w;
    };
    for (int y = 1; y < h; y += 2)
        K.lift53_sub_avg(g + static_cast<std::size_t>(y) * w, row(y - 1), row(y + 1), w);
    for (int y = 0; y < h; y += 2)
        K.lift53_add_round(g + static_cast<std::size_t>(y) * w, row(y - 1), row(y + 1), w);
    const int nl = (h + 1) / 2;
    for (int y = 0; y < h; ++y) {
        const int dst = y % 2 == 0 ? y / 2 : nl + y / 2;
        std::copy_n(g + static_cast<std::size_t>(y) * w, w,
                    data + static_cast<std::ptrdiff_t>(dst) * stride);
    }
}

void vertical53_inverse(std::int32_t* data, int stride, int w, int h,
                        std::int32_t* g, const kernel_table& K)
{
    const int nl = (h + 1) / 2;
    for (int y = 0; y < h; ++y) {
        const int src = y % 2 == 0 ? y / 2 : nl + y / 2;
        std::copy_n(data + static_cast<std::ptrdiff_t>(src) * stride, w,
                    g + static_cast<std::size_t>(y) * w);
    }
    auto row = [g, w, h](int y) {
        return g + static_cast<std::size_t>(mirror(y, h)) * w;
    };
    for (int y = 0; y < h; y += 2)
        K.lift53_sub_round(g + static_cast<std::size_t>(y) * w, row(y - 1), row(y + 1), w);
    for (int y = 1; y < h; y += 2)
        K.lift53_add_avg(g + static_cast<std::size_t>(y) * w, row(y - 1), row(y + 1), w);
    for (int y = 0; y < h; ++y)
        std::copy_n(g + static_cast<std::size_t>(y) * w, w,
                    data + static_cast<std::ptrdiff_t>(y) * stride);
}

void vertical97_forward(double* data, int stride, int w, int h, double* g,
                        const kernel_table& K)
{
    for (int y = 0; y < h; ++y)
        std::copy_n(data + static_cast<std::ptrdiff_t>(y) * stride, w,
                    g + static_cast<std::size_t>(y) * w);
    auto row = [g, w, h](int y) {
        return g + static_cast<std::size_t>(mirror(y, h)) * w;
    };
    auto lift = [&](int first, double k) {
        for (int y = first; y < h; y += 2)
            K.lift97(g + static_cast<std::size_t>(y) * w, row(y - 1), row(y + 1), k, w);
    };
    lift(1, k_alpha);
    lift(0, k_beta);
    lift(1, k_gamma);
    lift(0, k_delta);
    for (int y = 0; y < h; y += 2)
        K.scale97(g + static_cast<std::size_t>(y) * w, 1.0 / k_K, w);
    for (int y = 1; y < h; y += 2)
        K.scale97(g + static_cast<std::size_t>(y) * w, k_K, w);
    const int nl = (h + 1) / 2;
    for (int y = 0; y < h; ++y) {
        const int dst = y % 2 == 0 ? y / 2 : nl + y / 2;
        std::copy_n(g + static_cast<std::size_t>(y) * w, w,
                    data + static_cast<std::ptrdiff_t>(dst) * stride);
    }
}

void vertical97_inverse(double* data, int stride, int w, int h, double* g,
                        const kernel_table& K)
{
    const int nl = (h + 1) / 2;
    for (int y = 0; y < h; ++y) {
        const int src = y % 2 == 0 ? y / 2 : nl + y / 2;
        std::copy_n(data + static_cast<std::ptrdiff_t>(src) * stride, w,
                    g + static_cast<std::size_t>(y) * w);
    }
    auto row = [g, w, h](int y) {
        return g + static_cast<std::size_t>(mirror(y, h)) * w;
    };
    for (int y = 0; y < h; y += 2)
        K.scale97(g + static_cast<std::size_t>(y) * w, k_K, w);
    for (int y = 1; y < h; y += 2)
        K.scale97(g + static_cast<std::size_t>(y) * w, 1.0 / k_K, w);
    // x -= k*(a+b) is x += (-k)*(a+b) bit for bit (IEEE negation is exact),
    // which lets synthesis share the single additive lift kernel.
    auto lift = [&](int first, double k) {
        for (int y = first; y < h; y += 2)
            K.lift97(g + static_cast<std::size_t>(y) * w, row(y - 1), row(y + 1), -k, w);
    };
    lift(0, k_delta);
    lift(1, k_gamma);
    lift(0, k_beta);
    lift(1, k_alpha);
    for (int y = 0; y < h; ++y)
        std::copy_n(g + static_cast<std::size_t>(y) * w, w,
                    data + static_cast<std::ptrdiff_t>(y) * stride);
}

// ---------------------------------------------------------------------------
// Level drivers: rows then columns (forward), columns then rows (inverse).
// `grid` is one w×h scratch reused across levels; `scratch` is 1-D row
// scratch for the de/interleave of the horizontal pass.
// ---------------------------------------------------------------------------

template <typename T, typename Fwd1D, typename Vert>
void forward_level(T* data, int stride, int w, int h, Fwd1D analyze, Vert vertical,
                   std::pmr::vector<T>& grid, std::pmr::vector<T>& scratch,
                   const kernel_table& K)
{
    if (w >= 2) {
        for (int y = 0; y < h; ++y) {
            T* row = data + static_cast<std::ptrdiff_t>(y) * stride;
            analyze(row, w);
            deinterleave(row, w, scratch);
        }
    }
    if (h >= 2) {
        if (grid.size() < static_cast<std::size_t>(w) * static_cast<std::size_t>(h))
            grid.resize(static_cast<std::size_t>(w) * static_cast<std::size_t>(h));
        vertical(data, stride, w, h, grid.data(), K);
    }
}

template <typename T, typename Inv1D, typename Vert>
void inverse_level(T* data, int stride, int w, int h, Inv1D synthesize, Vert vertical,
                   std::pmr::vector<T>& grid, std::pmr::vector<T>& scratch,
                   const kernel_table& K)
{
    if (h >= 2) {
        if (grid.size() < static_cast<std::size_t>(w) * static_cast<std::size_t>(h))
            grid.resize(static_cast<std::size_t>(w) * static_cast<std::size_t>(h));
        vertical(data, stride, w, h, grid.data(), K);
    }
    if (w >= 2) {
        for (int y = 0; y < h; ++y) {
            T* row = data + static_cast<std::ptrdiff_t>(y) * stride;
            interleave(row, w, scratch);
            synthesize(row, w);
        }
    }
}

template <typename T, typename Fwd1D, typename Vert>
void forward_multi(T* data, int stride, int w, int h, int levels, Fwd1D f,
                   Vert vertical, std::pmr::memory_resource* mr)
{
    if (levels < 0) throw std::invalid_argument{"dwt: negative level count"};
    const kernel_table& K = kernels();  // one table for the whole transform
    std::pmr::vector<T> grid{mr_of(mr)};
    std::pmr::vector<T> scratch{mr_of(mr)};
    for (int l = 0; l < levels; ++l) {
        const int lw = level_extent(w, l);
        const int lh = level_extent(h, l);
        if (lw < 2 && lh < 2) break;
        forward_level(data, stride, lw, lh, f, vertical, grid, scratch, K);
    }
}

template <typename T, typename Inv1D, typename Vert>
void inverse_multi(T* data, int stride, int w, int h, int levels, Inv1D f,
                   Vert vertical, std::pmr::memory_resource* mr, int stop_level = 0)
{
    if (levels < 0) throw std::invalid_argument{"dwt: negative level count"};
    if (stop_level < 0 || stop_level > levels)
        throw std::invalid_argument{"dwt: bad discard level"};
    const kernel_table& K = kernels();
    std::pmr::vector<T> grid{mr_of(mr)};
    std::pmr::vector<T> scratch{mr_of(mr)};
    for (int l = levels - 1; l >= stop_level; --l) {
        const int lw = level_extent(w, l);
        const int lh = level_extent(h, l);
        if (lw < 2 && lh < 2) continue;
        inverse_level(data, stride, lw, lh, f, vertical, grid, scratch, K);
    }
}

}  // namespace

void dwt53_forward(plane& p, int levels, std::pmr::memory_resource* mr)
{
    forward_multi(p.samples().data(), p.width(), p.width(), p.height(), levels,
                  [](std::int32_t* x, int n) { dwt53_analyze_1d(x, n); },
                  vertical53_forward, mr);
}

void dwt53_inverse(plane& p, int levels, std::pmr::memory_resource* mr)
{
    inverse_multi(p.samples().data(), p.width(), p.width(), p.height(), levels,
                  [](std::int32_t* x, int n) { dwt53_synthesize_1d(x, n); },
                  vertical53_inverse, mr);
}

void dwt97_forward(std::vector<double>& buf, int w, int h, int levels,
                   std::pmr::memory_resource* mr)
{
    if (static_cast<std::size_t>(w) * static_cast<std::size_t>(h) != buf.size())
        throw std::invalid_argument{"dwt97_forward: buffer size mismatch"};
    forward_multi(buf.data(), w, w, h, levels,
                  [](double* x, int n) { dwt97_analyze_1d(x, n); },
                  vertical97_forward, mr);
}

void dwt97_inverse(std::vector<double>& buf, int w, int h, int levels,
                   std::pmr::memory_resource* mr)
{
    if (static_cast<std::size_t>(w) * static_cast<std::size_t>(h) != buf.size())
        throw std::invalid_argument{"dwt97_inverse: buffer size mismatch"};
    inverse_multi(buf.data(), w, w, h, levels,
                  [](double* x, int n) { dwt97_synthesize_1d(x, n); },
                  vertical97_inverse, mr);
}

void dwt53_inverse_partial(plane& p, int levels, int discard,
                           std::pmr::memory_resource* mr)
{
    inverse_multi(p.samples().data(), p.width(), p.width(), p.height(), levels,
                  [](std::int32_t* x, int n) { dwt53_synthesize_1d(x, n); },
                  vertical53_inverse, mr, discard);
}

void dwt97_inverse_partial(std::vector<double>& buf, int w, int h, int levels,
                           int discard, std::pmr::memory_resource* mr)
{
    if (static_cast<std::size_t>(w) * static_cast<std::size_t>(h) != buf.size())
        throw std::invalid_argument{"dwt97_inverse_partial: buffer size mismatch"};
    inverse_multi(buf.data(), w, w, h, levels,
                  [](double* x, int n) { dwt97_synthesize_1d(x, n); },
                  vertical97_inverse, mr, discard);
}

int reduced_extent(int full, int level) noexcept
{
    return level_extent(full, level);
}

std::vector<band_rect> subband_layout(int w, int h, int levels)
{
    if (w <= 0 || h <= 0 || levels < 0)
        throw std::invalid_argument{"subband_layout: bad geometry"};
    std::vector<band_rect> out;
    // Deepest LL first.
    out.push_back({band::ll, levels, 0, 0, level_extent(w, levels), level_extent(h, levels)});
    for (int l = levels; l >= 1; --l) {
        const int pw = level_extent(w, l - 1);
        const int ph = level_extent(h, l - 1);
        const int lw = (pw + 1) / 2;  // LL/LH width at this level
        const int lh = (ph + 1) / 2;  // LL/HL height
        out.push_back({band::hl, l, lw, 0, pw - lw, lh});
        out.push_back({band::lh, l, 0, lh, lw, ph - lh});
        out.push_back({band::hh, l, lw, lh, pw - lw, ph - lh});
    }
    return out;
}

double band_gain(band b, int level, wavelet w) noexcept
{
    if (w == wavelet::w5_3) return 1.0;  // reversible path is not quantised
    // L2 gains of the 9/7 synthesis basis, approximated per level: the low
    // branch gain is ~1 per level (DC-normalised), the high branch ~2.
    double g = 1.0;
    switch (b) {
        case band::ll: g = 1.0; break;
        case band::hl:
        case band::lh: g = 2.0; break;
        case band::hh: g = 4.0; break;
    }
    // Deeper levels spread energy over wider basis functions.
    return g / std::pow(2.0, level - 1);
}

}  // namespace j2k
