#include "mq_coder.hpp"

#include "kernels.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace j2k {

namespace {

// ISO/IEC 15444-1 Table C.2 — Qe values and probability estimation state
// transitions.  {Qe, NMPS, NLPS, SWITCH}
constexpr std::array<mq_state, 47> k_states{{
    {0x5601, 1, 1, 1},   {0x3401, 2, 6, 0},   {0x1801, 3, 9, 0},
    {0x0AC1, 4, 12, 0},  {0x0521, 5, 29, 0},  {0x0221, 38, 33, 0},
    {0x5601, 7, 6, 1},   {0x5401, 8, 14, 0},  {0x4801, 9, 14, 0},
    {0x3801, 10, 14, 0}, {0x3001, 11, 17, 0}, {0x2401, 12, 18, 0},
    {0x1C01, 13, 20, 0}, {0x1601, 29, 21, 0}, {0x5601, 15, 14, 1},
    {0x5401, 16, 14, 0}, {0x5101, 17, 15, 0}, {0x4801, 18, 16, 0},
    {0x3801, 19, 17, 0}, {0x3401, 20, 18, 0}, {0x3001, 21, 19, 0},
    {0x2801, 22, 19, 0}, {0x2401, 23, 20, 0}, {0x2201, 24, 21, 0},
    {0x1C01, 25, 22, 0}, {0x1801, 26, 23, 0}, {0x1601, 27, 24, 0},
    {0x1401, 28, 25, 0}, {0x1201, 29, 26, 0}, {0x1101, 30, 27, 0},
    {0x0AC1, 31, 28, 0}, {0x09C1, 32, 29, 0}, {0x08A1, 33, 30, 0},
    {0x0521, 34, 31, 0}, {0x0441, 35, 32, 0}, {0x02A1, 36, 33, 0},
    {0x0221, 37, 34, 0}, {0x0141, 38, 35, 0}, {0x0111, 39, 36, 0},
    {0x0085, 40, 37, 0}, {0x0049, 41, 38, 0}, {0x0025, 42, 39, 0},
    {0x0015, 43, 40, 0}, {0x0009, 44, 41, 0}, {0x0005, 45, 42, 0},
    {0x0001, 45, 43, 0}, {0x5601, 46, 46, 0},
}};

/// Leading zeros within 8 bits (8 for 0) — the two halves of a 16-bit
/// leading-zero count without a hardware LZCNT dependency.
constexpr std::array<std::uint8_t, 256> make_lz8()
{
    std::array<std::uint8_t, 256> t{};
    t[0] = 8;
    for (int i = 1; i < 256; ++i) {
        int lz = 0;
        for (int b = 7; b >= 0 && (i & (1 << b)) == 0; --b) ++lz;
        t[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(lz);
    }
    return t;
}

constexpr auto k_lz8 = make_lz8();

}  // namespace

const mq_state& mq_table(std::uint8_t index) noexcept
{
    return k_states[index];
}

mq_mode default_mq_mode() noexcept
{
    return kernels().mq_fast ? mq_mode::fast : mq_mode::reference;
}

int mq_renorm_shift(std::uint32_t a) noexcept
{
    const std::uint32_t hi = (a >> 8) & 0xFF;
    return hi ? k_lz8[hi] : 8 + k_lz8[a & 0xFF];
}

// ---------------------------------------------------------------------------
// Encoder (ISO/IEC 15444-1 C.2).  C is a 28-bit register; the byte about to
// be committed lives in b_ so a carry out of C can still propagate into it.
// A zero "sentinel" pending byte stands in for the spec's BPST-1 position.
// ---------------------------------------------------------------------------

void mq_encoder::init()
{
    a_ = 0x8000;
    c_ = 0;
    ct_ = 12;
    b_ = 0;
    have_b_ = false;
    out_.clear();
}

void mq_encoder::encode(mq_context& cx, int d)
{
    if ((d != 0) == (cx.mps != 0))
        code_mps(cx);
    else
        code_lps(cx);
}

void mq_encoder::code_mps(mq_context& cx)
{
    const mq_state& s = k_states[cx.index];
    a_ -= s.qe;
    if ((a_ & 0x8000) == 0) {
        if (a_ < s.qe)
            a_ = s.qe;  // conditional exchange: MPS gets the lower subinterval
        else
            c_ += s.qe;
        cx.index = s.nmps;
        renorm();
    } else {
        c_ += s.qe;
    }
}

void mq_encoder::code_lps(mq_context& cx)
{
    const mq_state& s = k_states[cx.index];
    a_ -= s.qe;
    if (a_ < s.qe)
        c_ += s.qe;  // conditional exchange
    else
        a_ = s.qe;
    if (s.sw) cx.mps = static_cast<std::uint8_t>(1 - cx.mps);
    cx.index = s.nlps;
    renorm();
}

void mq_encoder::renorm()
{
    do {
        a_ <<= 1;
        c_ <<= 1;
        if (--ct_ == 0) byte_out();
    } while ((a_ & 0x8000) == 0);
}

void mq_encoder::byte_out()
{
    auto commit_pending = [this] {
        if (have_b_) out_.push_back(b_);
    };
    if (have_b_ && b_ == 0xFF) {
        // Stuffing: after an 0xFF only 7 bits go into the next byte so a
        // carry can never turn data into a marker.
        commit_pending();
        b_ = static_cast<std::uint8_t>(c_ >> 20);
        c_ &= 0xFFFFF;
        ct_ = 7;
    } else {
        if (c_ < 0x8000000) {
            commit_pending();
            b_ = static_cast<std::uint8_t>(c_ >> 19);
            c_ &= 0x7FFFF;
            ct_ = 8;
        } else {
            // Carry out of the C register propagates into the pending byte.
            // MQ invariants guarantee a pending byte exists here (the very
            // first BYTEOUT cannot carry).
            if (!have_b_) throw std::logic_error{"mq_encoder: carry with no pending byte"};
            ++b_;
            if (b_ == 0xFF) {
                c_ &= 0x7FFFFFF;
                commit_pending();
                b_ = static_cast<std::uint8_t>(c_ >> 20);
                c_ &= 0xFFFFF;
                ct_ = 7;
            } else {
                commit_pending();
                b_ = static_cast<std::uint8_t>(c_ >> 19);
                c_ &= 0x7FFFF;
                ct_ = 8;
            }
        }
    }
    have_b_ = true;
}

std::vector<std::uint8_t> mq_encoder::flush()
{
    // SETBITS: maximise the number of trailing 1 bits in C while keeping it
    // inside the final interval.
    const std::uint32_t tempc = c_ + a_;
    c_ |= 0xFFFF;
    if (c_ >= tempc) c_ -= 0x8000;

    c_ <<= ct_;
    byte_out();
    c_ <<= ct_;
    byte_out();
    if (have_b_ && b_ != 0xFF) out_.push_back(b_);  // trailing 0xFF is dropped
    have_b_ = false;

    std::vector<std::uint8_t> result;
    result.swap(out_);
    return result;
}

// ---------------------------------------------------------------------------
// Decoder (ISO/IEC 15444-1 C.3).  Reading past the end of the codeword
// segment feeds 1-bits, as the spec prescribes when a marker is found.
// ---------------------------------------------------------------------------

void mq_decoder::init(std::span<const std::uint8_t> data)
{
    in_ = data;
    bp_ = 0;
    decisions_ = 0;
    const std::uint32_t b0 = bp_ < in_.size() ? in_[bp_] : 0xFF;
    c_ = b0 << 16;
    byte_in();
    c_ <<= 7;
    ct_ -= 7;
    a_ = 0x8000;
}

void mq_decoder::byte_in()
{
    auto at = [this](std::size_t i) -> std::uint32_t {
        return i < in_.size() ? in_[i] : 0xFF;
    };
    if (at(bp_) == 0xFF) {
        if (at(bp_ + 1) > 0x8F) {
            // Marker (or end of segment): feed 1-bits from now on.
            c_ += 0xFF00;
            ct_ = 8;
        } else {
            ++bp_;
            c_ += at(bp_) << 9;
            ct_ = 7;
        }
    } else {
        ++bp_;
        c_ += at(bp_) << 8;
        ct_ = 8;
    }
}

void mq_decoder::renorm()
{
    do {
        if (ct_ == 0) byte_in();
        a_ <<= 1;
        c_ <<= 1;
        --ct_;
    } while ((a_ & 0x8000) == 0);
}

/// Batch renormalisation.  RENORMD shifts A and C left until bit 15 of A is
/// set, calling BYTEIN whenever CT hits zero.  The total shift depends only
/// on A at entry (a LUT lookup), and BYTEIN only adds bits *below* the
/// positions already being shifted out, so performing the shifts in chunks of
/// min(remaining, CT) visits exactly the same BYTEIN boundaries with exactly
/// the same register contents as the one-bit-at-a-time reference loop.
/// A is nonzero here: the LPS path sets a_ = qe >= 1, and on the MPS path
/// a_ - qe >= 0x8000 - 0x5601 after the subtraction in decode().
void mq_decoder::renorm_fast()
{
    int s = mq_renorm_shift(a_);
    while (s > 0) {
        if (ct_ == 0) byte_in();
        const int k = std::min(s, ct_);
        a_ <<= k;
        c_ <<= k;
        ct_ -= k;
        s -= k;
    }
}

int mq_decoder::mps_exchange(mq_context& cx)
{
    const mq_state& s = k_states[cx.index];
    int d;
    if (a_ < s.qe) {
        d = 1 - cx.mps;
        if (s.sw) cx.mps = static_cast<std::uint8_t>(1 - cx.mps);
        cx.index = s.nlps;
    } else {
        d = cx.mps;
        cx.index = s.nmps;
    }
    return d;
}

int mq_decoder::lps_exchange(mq_context& cx)
{
    const mq_state& s = k_states[cx.index];
    int d;
    if (a_ < s.qe) {
        a_ = s.qe;
        d = cx.mps;
        cx.index = s.nmps;
    } else {
        a_ = s.qe;
        d = 1 - cx.mps;
        if (s.sw) cx.mps = static_cast<std::uint8_t>(1 - cx.mps);
        cx.index = s.nlps;
    }
    return d;
}

int mq_decoder::decode(mq_context& cx)
{
    ++decisions_;
    const mq_state& s = k_states[cx.index];
    a_ -= s.qe;
    int d;
    if (((c_ >> 16) & 0xFFFF) < s.qe) {
        d = lps_exchange(cx);
        if (mode_ == mq_mode::fast)
            renorm_fast();
        else
            renorm();
    } else {
        c_ -= static_cast<std::uint32_t>(s.qe) << 16;
        if ((a_ & 0x8000) == 0) {
            d = mps_exchange(cx);
            if (mode_ == mq_mode::fast)
                renorm_fast();
            else
                renorm();
        } else {
            d = cx.mps;
        }
    }
    return d;
}

}  // namespace j2k
