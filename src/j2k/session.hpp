// j2k/session.hpp — resumable progressive-decode sessions.
//
// A decode_session turns the one-shot decoder into an incremental channel:
// where `set_max_quality_layers(l); decode_all()` per refinement re-runs every
// tier-1 pass from scratch (O(L²) arithmetic-decoding work over an L-layer
// session), the session keeps per-codeblock coder state alive between calls —
// legal because the MQ codeword terminates at every layer boundary — so
// `advance_to(l)` decodes only the segments of the *new* layers and re-runs
// just the cheap downstream stages (IQ, IDWT, ICT, DC shift).  Total tier-1
// segment bytes consumed over a session are therefore O(L): each byte of the
// codestream is arithmetic-decoded exactly once, however many refinements the
// session emits.
//
//   advance_to(1) ──► tier-1 [layer 1]      ─► IQ ─► IDWT ─► finish ─► image₁
//   advance_to(2) ──► tier-1 [layer 2 only] ─► IQ ─► IDWT ─► finish ─► image₂
//   ...                       (state: coefficients + contexts persist)
//
// Every reconstruction is bit-exact with the one-shot path at the same layer
// count (asserted in tests/j2k/test_session.cpp); `decoder::decode_all` and
// `decode_all_parallel` are thin wrappers over a full-depth session.
//
// Plain (single-layer) streams degrade gracefully: the session has exactly one
// layer and `advance_to` is the classic full decode.
#pragma once

#include "codec.hpp"

#include <memory>

namespace j2k {

/// Incremental quality-progressive decoder.  The codestream bytes must
/// outlive the session (they are referenced, not copied).
class decode_session {
public:
    explicit decode_session(std::span<const std::uint8_t> cs);
    /// Build from an already-parsed decoder (shares its codestream span and
    /// per-call knobs: max_passes applies to plain streams at first advance).
    explicit decode_session(const decoder& dec);
    ~decode_session();

    decode_session(decode_session&&) noexcept;
    decode_session& operator=(decode_session&&) noexcept;
    decode_session(const decode_session&) = delete;
    decode_session& operator=(const decode_session&) = delete;

    [[nodiscard]] const stream_info& info() const noexcept;

    /// Quality layers in the stream (1 for plain streams).
    [[nodiscard]] int total_layers() const noexcept;
    /// Layers consumed so far (0 before the first advance).
    [[nodiscard]] int layers_decoded() const noexcept;
    [[nodiscard]] bool complete() const noexcept;

    /// Tile fan-out for tier-1 + synthesis: <= 1 decodes inline, > 1 runs
    /// tiles on the shared thread pool (results are identical — tiles are
    /// independent).
    void set_threads(int threads) noexcept;

    /// Back per-advance transient scratch (tier-1 block state of plain
    /// streams, IDWT interleave buffers, gather blocks) with `mr` — typically
    /// a per-job arena.  Only transients touch it: the persistent layer state
    /// that survives between advances always lives on the heap, so a session
    /// may safely outlive the resource once the arena is detached again with
    /// set_scratch_arena(nullptr).  Callers that deposit sessions into a
    /// cache MUST detach first.
    void set_scratch_arena(std::pmr::memory_resource* mr) noexcept;

    /// Decode forward to `layers` quality layers (<= 0 or past the end clamp
    /// to full depth) and return the reconstruction at that depth.  Only the
    /// segments of layers not yet consumed are tier-1 decoded; calling with
    /// `layers` at or below layers_decoded() re-runs synthesis only.
    /// `stats`, when non-null, accumulates the work of *this call* — the
    /// incremental cost, not the cumulative session cost.
    [[nodiscard]] image advance_to(int layers, decode_stats* stats = nullptr);

    /// advance_to(layers_decoded() + 1): the next refinement.
    [[nodiscard]] image advance(decode_stats* stats = nullptr);

    /// Cumulative tier-1 segment bytes arithmetic-decoded by this session —
    /// the O(L) evidence: over a full session this approaches the stream's
    /// total segment payload, never L times it.
    [[nodiscard]] std::uint64_t tier1_segment_bytes() const noexcept;

    /// Approximate bytes of persistent decoder state this session retains
    /// (per-block magnitudes, flag planes, MQ contexts; the codestream span
    /// is the caller's and not included).  Drives the byte budget of the
    /// runtime's decoded-result cache, which holds sessions as resumable
    /// prefixes.  Plain (single-layer) streams retain no block state: 0.
    [[nodiscard]] std::size_t resident_bytes() const noexcept;

private:
    struct impl;
    std::unique_ptr<impl> impl_;
};

}  // namespace j2k
