// j2k/quant.hpp — dead-zone scalar quantisation (ISO/IEC 15444-1 Annex E).
//
// Lossy (9/7) path only: wavelet coefficients are quantised with a dead-zone
// uniform quantiser whose step size is derived from a base step scaled by the
// subband's synthesis gain.  The reversible (5/3) path bypasses quantisation.
// Dequantisation reconstructs at the midpoint of the quantisation interval
// (r = 0.5), the common decoder choice.
#pragma once

#include "dwt.hpp"

#include <cstdint>
#include <vector>

namespace j2k {

/// Quantisation parameters for one tile-component.
struct quant_params {
    double base_step = 1.0 / 32.0;  ///< base step relative to unit dynamic range
    int guard_bits = 2;
};

/// Effective step size for subband `b` at `level` under wavelet `w`.
/// `bit_depth` scales the step to the component's dynamic range.
[[nodiscard]] double quant_step(const quant_params& q, band b, int level, wavelet w,
                                int bit_depth) noexcept;

/// Dead-zone quantise one value: sign(v) * floor(|v| / step).
[[nodiscard]] std::int32_t quantize_value(double v, double step) noexcept;

/// Midpoint dequantise: sign(q) * (|q| + 0.5) * step, 0 stays 0.
[[nodiscard]] double dequantize_value(std::int32_t q, double step) noexcept;

/// Quantise a whole buffer (used on 9/7 coefficient planes).
void quantize_buffer(const std::vector<double>& in, std::vector<std::int32_t>& out,
                     double step);
void dequantize_buffer(const std::vector<std::int32_t>& in, std::vector<double>& out,
                       double step);

}  // namespace j2k
