#include "codestream.hpp"

namespace j2k {

void byte_writer::patch_u32(std::size_t pos, std::uint32_t v)
{
    // Subtraction form: `pos + 4` wraps for hostile positions near SIZE_MAX.
    if (buf_.size() < 4 || pos > buf_.size() - 4)
        throw std::out_of_range{"byte_writer::patch_u32"};
    buf_[pos] = static_cast<std::uint8_t>(v >> 24);
    buf_[pos + 1] = static_cast<std::uint8_t>(v >> 16);
    buf_[pos + 2] = static_cast<std::uint8_t>(v >> 8);
    buf_[pos + 3] = static_cast<std::uint8_t>(v);
}

std::uint8_t byte_reader::u8()
{
    if (pos_ >= data_.size()) throw codestream_error{"codestream truncated"};
    return data_[pos_++];
}

std::uint16_t byte_reader::u16()
{
    const auto hi = u8();
    return static_cast<std::uint16_t>((hi << 8) | u8());
}

std::uint32_t byte_reader::u32()
{
    const std::uint32_t hi = u16();
    return (hi << 16) | u16();
}

std::uint64_t byte_reader::u64()
{
    const std::uint64_t hi = u32();
    return (hi << 32) | u32();
}

std::span<const std::uint8_t> byte_reader::bytes(std::size_t n)
{
    // Subtraction form: `pos_ + n` wraps for hostile lengths near SIZE_MAX
    // (pos_ <= size is an invariant, so the subtraction cannot underflow).
    if (n > data_.size() - pos_) throw codestream_error{"codestream truncated"};
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
}

void byte_reader::seek(std::size_t pos)
{
    if (pos > data_.size()) throw codestream_error{"seek out of range"};
    pos_ = pos;
}

void write_header(byte_writer& w, const stream_info& info)
{
    w.u32(k_magic);
    w.u8(k_version);
    w.u32(static_cast<std::uint32_t>(info.width));
    w.u32(static_cast<std::uint32_t>(info.height));
    w.u8(static_cast<std::uint8_t>(info.components));
    w.u8(static_cast<std::uint8_t>(info.bit_depth));
    w.u32(static_cast<std::uint32_t>(info.tile_width));
    w.u32(static_cast<std::uint32_t>(info.tile_height));
    w.u8(info.mode == wavelet::w9_7 ? 1 : 0);
    w.u8(static_cast<std::uint8_t>(info.levels));
    w.u8(static_cast<std::uint8_t>(info.quality_layers));
    w.f64(info.quant.base_step);
    w.u8(static_cast<std::uint8_t>(info.quant.guard_bits));
}

stream_info read_header(std::span<const std::uint8_t> cs)
{
    byte_reader r{cs};
    if (r.u32() != k_magic) throw codestream_error{"bad magic"};
    if (r.u8() != k_version) throw codestream_error{"unsupported version"};
    stream_info info;
    info.width = static_cast<int>(r.u32());
    info.height = static_cast<int>(r.u32());
    info.components = r.u8();
    info.bit_depth = r.u8();
    info.tile_width = static_cast<int>(r.u32());
    info.tile_height = static_cast<int>(r.u32());
    info.mode = r.u8() ? wavelet::w9_7 : wavelet::w5_3;
    info.levels = r.u8();
    info.quality_layers = r.u8();
    info.quant.base_step = r.f64();
    info.quant.guard_bits = r.u8();
    if (info.width <= 0 || info.height <= 0)
        throw codestream_error{"bad image geometry"};
    if (info.components < 1 || info.components > 4)
        throw codestream_error{"bad component count"};
    if (info.bit_depth < 1 || info.bit_depth > 16)
        throw codestream_error{"bad bit depth"};
    if (info.tile_width <= 0 || info.tile_height <= 0)
        throw codestream_error{"bad tile geometry"};
    if (info.levels < 0 || info.levels > 12)
        throw codestream_error{"bad level count"};
    if (!(info.quant.base_step > 0.0) || info.quant.base_step > 1.0)
        throw codestream_error{"bad quantiser step"};
    if (info.quality_layers < 1) throw codestream_error{"bad layer count"};

    // Resource limits: hostile headers must fail cleanly *before* any decode
    // allocation is sized from them.
    if (info.width > k_max_dimension || info.height > k_max_dimension)
        throw codestream_error{"image dimensions above decode limit"};
    if (static_cast<std::uint64_t>(info.width) * info.height * info.components >
        k_max_total_samples)
        throw codestream_error{"image sample count above decode limit"};
    const std::uint64_t tiles_x =
        (static_cast<std::uint64_t>(info.width) + info.tile_width - 1) /
        info.tile_width;
    const std::uint64_t tiles_y =
        (static_cast<std::uint64_t>(info.height) + info.tile_height - 1) /
        info.tile_height;
    if (tiles_x * tiles_y > k_max_tiles)
        throw codestream_error{"tile count above decode limit"};

    const auto tiles = tile_grid(info.width, info.height, info.tile_width, info.tile_height);
    if (info.quality_layers == 1) {
        // Plain stream: each tile payload is prefixed by its u32 byte length.
        for (std::size_t t = 0; t < tiles.size(); ++t) {
            const std::uint32_t len = r.u32();
            if (len > r.remaining()) throw codestream_error{"tile payload truncated"};
            info.tile_offsets.push_back(r.pos());
            info.tile_lengths.push_back(len);
            r.seek(r.pos() + len);
        }
    } else {
        // Layered stream: a directory of L×T chunk lengths, then the chunks
        // in layer-major order (quality-progressive).
        const std::size_t n =
            static_cast<std::size_t>(info.quality_layers) * tiles.size();
        // Directory must physically fit in the remaining bytes before the
        // entry vector is allocated (n can be ~256M on hostile headers).
        if (n > r.remaining() / 4)
            throw codestream_error{"layer directory truncated"};
        std::vector<std::uint32_t> lens(n);
        for (auto& l : lens) l = r.u32();
        // Validate each chunk against the bytes left *before* accumulating:
        // summing first and comparing after can wrap `off` past the stream
        // end on hostile (e.g. UINT32_MAX) directory entries.
        const std::size_t end = r.pos() + r.remaining();  // == stream size
        std::size_t off = r.pos();
        for (std::uint32_t len : lens) {
            if (len > end - off) throw codestream_error{"layered payload truncated"};
            info.chunk_offsets.push_back(off);
            info.chunk_lengths.push_back(len);
            off += len;
        }
    }
    return info;
}

}  // namespace j2k
