#include "quant.hpp"

#include "kernels.hpp"

#include <cmath>
#include <stdexcept>

namespace j2k {

double quant_step(const quant_params& q, band b, int level, wavelet w,
                  int bit_depth) noexcept
{
    if (w == wavelet::w5_3) return 1.0;  // reversible: no quantisation
    const double range = static_cast<double>(1u << bit_depth);
    // Larger synthesis gain ⇒ finer step so reconstruction error stays even.
    return q.base_step * range / band_gain(b, level, w);
}

std::int32_t quantize_value(double v, double step) noexcept
{
    const double a = std::abs(v) / step;
    const auto q = static_cast<std::int32_t>(a);  // floor for non-negative
    return v < 0 ? -q : q;
}

double dequantize_value(std::int32_t q, double step) noexcept
{
    if (q == 0) return 0.0;
    const double m = (std::abs(static_cast<double>(q)) + 0.5) * step;
    return q < 0 ? -m : m;
}

void quantize_buffer(const std::vector<double>& in, std::vector<std::int32_t>& out,
                     double step)
{
    if (step <= 0.0) throw std::invalid_argument{"quantize_buffer: step must be > 0"};
    out.resize(in.size());
    for (std::size_t i = 0; i < in.size(); ++i) out[i] = quantize_value(in[i], step);
}

void dequantize_buffer(const std::vector<std::int32_t>& in, std::vector<double>& out,
                       double step)
{
    if (step <= 0.0) throw std::invalid_argument{"dequantize_buffer: step must be > 0"};
    out.resize(in.size());
    kernels().dequant(in.data(), out.data(), step, in.size());
}

}  // namespace j2k
