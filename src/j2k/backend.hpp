// j2k/backend.hpp — JPEG 2000 as a registered codec::backend.
//
// The adapter over codec.hpp/session.hpp that plugs the paper's decoder into
// the codec registry: wire id 0, the founding codec of the J2NE protocol.
// The runtime service keeps its specialised j2k fast paths (per-tile pool
// fan-out, resumable session cache) — this backend is the generic face the
// registry, capability checks, and codec-agnostic callers see, and its
// decode() is bit-identical to those paths by construction (both run the
// same staged pipeline).
#pragma once

#include <codec/backend.hpp>

namespace j2k {

/// The J2NE codec byte for JPEG 2000 (and the decode_options default).
inline constexpr std::uint8_t k_codec_wire_id = 0;

/// Register the JPEG 2000 backend with the codec registry.  Idempotent and
/// thread-safe; called by the serving layer at construction.  Returns the
/// backend for convenience.
const codec::backend& ensure_backend_registered();

}  // namespace j2k
