#include "session.hpp"

#include <obs/trace.hpp>
#include <runtime/thread_pool.hpp>

#include <stdexcept>

namespace j2k {

namespace {

void scatter_block(plane& p, int x0, int y0, int w, int h, const std::int32_t* in)
{
    for (int y = 0; y < h; ++y) {
        const std::int32_t* s = in + static_cast<std::ptrdiff_t>(y) * w;
        std::copy(s, s + w, p.row(y0 + y) + x0);
    }
}

void add_stats(decode_stats& into, const decode_stats& s)
{
    into.t1.mq_decisions += s.t1.mq_decisions;
    into.t1.passes += s.t1.passes;
    into.t1.samples += s.t1.samples;
    into.iq_samples += s.iq_samples;
    into.idwt_samples += s.idwt_samples;
    into.ict_samples += s.ict_samples;
    into.dc_samples += s.dc_samples;
}

}  // namespace

struct decode_session::impl {
    decoder dec;
    std::vector<tile_rect> grid;
    int threads = 1;
    int current = 0;     ///< layers consumed so far
    bool poisoned = false;
    /// Backs per-advance transients only (see session.hpp) — never the
    /// persistent block slots, which may outlive any job-scoped arena.
    std::pmr::memory_resource* scratch = nullptr;
    /// Segment payload bytes handed to the MQ decoders so far.  Plain streams
    /// decode through decoder::entropy_decode and are not tracked here (a
    /// plain stream has no layer segments — the counter stays 0).
    std::uint64_t seg_bytes = 0;

    /// Persistent tier-1 state of one code block (layered streams only).
    struct block_slot {
        int comp;
        int x0, y0, w, h;
        tier1_block_decoder t1;
    };
    std::vector<std::vector<block_slot>> slots;  ///< [tile] in canonical order

    explicit impl(const decoder& d) : dec{d}, grid{d.tiles()}
    {
        if (dec.info().quality_layers > 1) slots.resize(grid.size());
    }

    [[nodiscard]] bool layered() const noexcept { return dec.info().quality_layers > 1; }

    /// Arithmetic-decode the segments of layers [from, to) for one tile into
    /// the tile's persistent block decoders.  Layer 0 also builds the slots
    /// (block geometry and plane counts live in the layer-0 chunk).
    void feed_tile(int t, int from, int to, tier1_stats* ts, std::uint64_t* bytes)
    {
        OBS_TRACE_SCOPE("j2k", "tier1");
        const stream_info& info = dec.info();
        const tile_rect tr = grid[static_cast<std::size_t>(t)];
        auto& tb = slots[static_cast<std::size_t>(t)];
        for (int l = from; l < to; ++l) {
            byte_reader r{dec.codestream()};
            r.seek(info.chunk_offsets[static_cast<std::size_t>(l) * grid.size() +
                                      static_cast<std::size_t>(t)]);
            std::size_t bi = 0;
            for (int c = 0; c < info.components; ++c) {
                for (const auto& br : subband_layout(tr.width, tr.height, info.levels)) {
                    if (br.width == 0 || br.height == 0) continue;
                    detail::for_each_codeblock(br, [&](int x0, int y0, int bw, int bh) {
                        if (l == 0) {
                            const int planes = r.u8();
                            tb.push_back(block_slot{c, x0, y0, bw, bh,
                                                    tier1_block_decoder{bw, bh, planes, br.b}});
                        }
                        block_slot& s = tb.at(bi);
                        const int passes = r.u8();
                        const std::uint32_t len = r.u32();
                        const auto data = r.bytes(len);
                        s.t1.advance(passes, data, ts);
                        *bytes += len;
                        ++bi;
                    });
                }
            }
        }
    }

    /// Downstream stages for one tile: materialise coefficients (from the
    /// persistent slots, or transiently via entropy_decode for plain
    /// streams), then IQ → IDWT → place into the shared image.
    void synth_tile(int t, image& img, decode_stats* stats)
    {
        const stream_info& info = dec.info();
        const tile_rect tr = grid[static_cast<std::size_t>(t)];
        tile_coeffs tc;
        if (layered()) {
            tc.rect = tr;
            for (int c = 0; c < info.components; ++c)
                tc.comps.emplace_back(tr.width, tr.height);
            std::pmr::vector<std::int32_t> blk{
                scratch ? scratch : std::pmr::get_default_resource()};
            for (const auto& s : slots[static_cast<std::size_t>(t)]) {
                blk.resize(static_cast<std::size_t>(s.w) * s.h);
                s.t1.read(blk.data());
                scatter_block(tc.comps[static_cast<std::size_t>(s.comp)], s.x0, s.y0,
                              s.w, s.h, blk.data());
            }
        } else {
            tc = dec.entropy_decode(t, stats ? &stats->t1 : nullptr, scratch);
        }
        const tile_wavelet tw = dec.dequantize(tc);
        const tile_pixels tp = dec.idwt(tw, scratch);
        for (int c = 0; c < info.components; ++c)
            insert_tile(img.comp(c), tp.comps[static_cast<std::size_t>(c)], tr);
        if (stats) {
            const auto n = static_cast<std::uint64_t>(tr.width) *
                           static_cast<std::uint64_t>(tr.height) *
                           static_cast<std::uint64_t>(info.components);
            stats->iq_samples += n;
            stats->idwt_samples += n;
        }
    }
};

decode_session::decode_session(std::span<const std::uint8_t> cs)
    : impl_{std::make_unique<impl>(decoder{cs})}
{
}

decode_session::decode_session(const decoder& dec) : impl_{std::make_unique<impl>(dec)} {}

decode_session::~decode_session() = default;
decode_session::decode_session(decode_session&&) noexcept = default;
decode_session& decode_session::operator=(decode_session&&) noexcept = default;

const stream_info& decode_session::info() const noexcept
{
    return impl_->dec.info();
}

int decode_session::total_layers() const noexcept
{
    return impl_->dec.info().quality_layers;
}

int decode_session::layers_decoded() const noexcept
{
    return impl_->current;
}

bool decode_session::complete() const noexcept
{
    return impl_->current >= total_layers();
}

void decode_session::set_threads(int threads) noexcept
{
    impl_->threads = threads < 1 ? 1 : threads;
}

void decode_session::set_scratch_arena(std::pmr::memory_resource* mr) noexcept
{
    impl_->scratch = mr;
}

std::uint64_t decode_session::tier1_segment_bytes() const noexcept
{
    return impl_->seg_bytes;
}

std::size_t decode_session::resident_bytes() const noexcept
{
    // Dominant terms of tier1_block_decoder's state: the per-sample arrays
    // (u32 magnitude + five flag planes = 9 B/sample) plus a small per-block
    // constant for MQ contexts and the pass table.
    std::size_t total = 0;
    for (const auto& tb : impl_->slots)
        for (const auto& s : tb)
            total += static_cast<std::size_t>(s.w) * static_cast<std::size_t>(s.h) * 9 +
                     160;
    return total;
}

image decode_session::advance_to(int layers, decode_stats* stats)
{
    impl& im = *impl_;
    if (im.poisoned)
        throw std::logic_error{"decode_session: unusable after an earlier decode error"};
    OBS_TRACE_SCOPE("j2k", "session_advance");

    const stream_info& info = im.dec.info();
    const int total = total_layers();
    const int target = (layers <= 0 || layers > total) ? total : layers;
    const bool feed = im.layered() && target > im.current;

    image img{info.width, info.height, info.components, info.bit_depth};
    const int ntiles = static_cast<int>(im.grid.size());
    const int workers = std::min(im.threads, ntiles);

    auto do_tile = [&](int t, decode_stats* st, std::uint64_t* bytes) {
        if (feed) im.feed_tile(t, im.current, target, st ? &st->t1 : nullptr, bytes);
        im.synth_tile(t, img, st);
    };

    try {
        if (workers > 1) {
            // Tiles are independent; per-tile stats/byte accumulators avoid
            // any shared mutable state inside the loop (tiles write disjoint
            // regions of `img`).  The first tile's exception is rethrown here
            // by parallel_for once the loop has quiesced.
            std::vector<decode_stats> per(static_cast<std::size_t>(ntiles));
            std::vector<std::uint64_t> bytes(static_cast<std::size_t>(ntiles), 0);
            runtime::thread_pool::shared().parallel_for(
                ntiles,
                [&](int t) {
                    OBS_TRACE_SCOPE("j2k", "tile");
                    do_tile(t, stats ? &per[static_cast<std::size_t>(t)] : nullptr,
                            &bytes[static_cast<std::size_t>(t)]);
                },
                workers);
            for (int t = 0; t < ntiles; ++t) {
                if (stats) add_stats(*stats, per[static_cast<std::size_t>(t)]);
                im.seg_bytes += bytes[static_cast<std::size_t>(t)];
            }
        } else {
            std::uint64_t bytes = 0;
            for (int t = 0; t < ntiles; ++t) do_tile(t, stats, &bytes);
            im.seg_bytes += bytes;
        }
    } catch (...) {
        // Partially-fed block state is unrecoverable; refuse further use
        // rather than silently decoding garbage.
        im.poisoned = true;
        throw;
    }

    im.current = im.layered() ? std::max(im.current, target) : 1;
    im.dec.finish(img);
    if (stats) {
        const auto n = static_cast<std::uint64_t>(info.width) *
                       static_cast<std::uint64_t>(info.height) *
                       static_cast<std::uint64_t>(info.components);
        stats->ict_samples += n;
        stats->dc_samples += n;
    }
    return img;
}

image decode_session::advance(decode_stats* stats)
{
    const int next = std::min(layers_decoded() + 1, total_layers());
    return advance_to(next, stats);
}

}  // namespace j2k
