// j2k/j2k.hpp — umbrella header for the JPEG 2000 codec library.
#pragma once

#include "codec.hpp"       // IWYU pragma: export
#include "codestream.hpp"  // IWYU pragma: export
#include "color.hpp"       // IWYU pragma: export
#include "dwt.hpp"         // IWYU pragma: export
#include "image.hpp"       // IWYU pragma: export
#include "mq_coder.hpp"    // IWYU pragma: export
#include "pnm.hpp"         // IWYU pragma: export
#include "quant.hpp"       // IWYU pragma: export
#include "session.hpp"     // IWYU pragma: export
#include "tier1.hpp"       // IWYU pragma: export
