// j2k/codec.hpp — the JPEG 2000 encoder and the staged decoder.
//
// The decoder exposes the exact stage split of the paper's Figure 1 so the
// OSSS models can map each stage onto hardware or software independently:
//
//   codestream → [entropy_decode] → [dequantize (IQ)] → [idwt] → tile pixels
//   assembled image → [inverse colour transform (ICT/RCT)] → [DC shift]
//
// Each stage is a pure function over value types, which is what makes the
// application-layer restructurings of Section 3 (pipelining, parallel tiles,
// four parallel arithmetic decoders) possible without touching stage code.
#pragma once

#include "codestream.hpp"
#include "color.hpp"
#include "tier1.hpp"

#include <algorithm>
#include <optional>

namespace j2k {

/// Encoder configuration.
struct codec_params {
    int tile_width = 64;
    int tile_height = 64;
    wavelet mode = wavelet::w5_3;
    int levels = 3;
    /// >1 produces a quality-progressive (layer-major) stream: each code
    /// block's coding passes are split over this many layers with the MQ
    /// codeword terminated at layer boundaries, so byte prefixes of the
    /// stream decode to progressively better images.
    int quality_layers = 1;
    quant_params quant;
};

/// Quantised coefficients of one tile (quadrant subband layout, per component).
struct tile_coeffs {
    tile_rect rect;
    std::vector<plane> comps;
};

/// Dequantised wavelet coefficients of one tile.
struct tile_wavelet {
    tile_rect rect;
    bool lossy = false;
    std::vector<plane> iplanes;                 ///< 5/3 path (ints)
    std::vector<std::vector<double>> dplanes;   ///< 9/7 path (doubles)
};

/// Spatial samples of one tile (still colour-transformed and DC-shifted).
struct tile_pixels {
    tile_rect rect;
    std::vector<plane> comps;
};

/// Work counters accumulated during decoding; these drive the execution-time
/// model used by the OSSS case-study (Section "timing back-annotation").
struct decode_stats {
    tier1_stats t1;
    std::uint64_t iq_samples = 0;
    std::uint64_t idwt_samples = 0;
    std::uint64_t ict_samples = 0;
    std::uint64_t dc_samples = 0;
};

/// Encode `img` into a codestream.
[[nodiscard]] std::vector<std::uint8_t> encode(const image& img, const codec_params& p);

/// Staged decoder over a parsed codestream.  The codestream bytes must
/// outlive the decoder (they are referenced, not copied).
class decoder {
public:
    explicit decoder(std::span<const std::uint8_t> cs);

    [[nodiscard]] const stream_info& info() const noexcept { return info_; }
    /// The referenced codestream bytes (what the constructor was given).
    [[nodiscard]] std::span<const std::uint8_t> codestream() const noexcept
    {
        return cs_;
    }
    [[nodiscard]] int tile_count() const noexcept { return info_.tile_count(); }
    [[nodiscard]] std::vector<tile_rect> tiles() const;

    /// Stage 1 — arithmetic (tier-1) decoding of one tile.  The hot stage.
    /// `mr`, when non-null, backs the per-code-block decoder scratch (see
    /// tier1_decode) — pass a per-job arena for malloc-free steady state.
    [[nodiscard]] tile_coeffs entropy_decode(
        int tile_index, tier1_stats* stats = nullptr,
        std::pmr::memory_resource* mr = nullptr) const;

    /// SNR scalability: cap the tier-1 coding passes decoded per code block
    /// (0 = all).  Fewer passes trade quality for arithmetic-decoding work —
    /// the EBCOT rate/quality knob.
    void set_max_passes(int max_passes) noexcept { max_passes_ = max_passes; }
    [[nodiscard]] int max_passes() const noexcept { return max_passes_; }

    /// Layered streams: decode only the first `layers` quality layers
    /// (0 = all).  Combine with info().layers_in_prefix(bytes) to decode a
    /// truncated download.
    void set_max_quality_layers(int layers) noexcept { max_layers_ = layers; }
    [[nodiscard]] int max_quality_layers() const noexcept { return max_layers_; }

    /// Stage 2 — inverse quantisation.
    [[nodiscard]] tile_wavelet dequantize(const tile_coeffs& tc) const;

    /// Stage 3 — inverse DWT (5/3 or 9/7 as per stream mode).  `mr` backs the
    /// transform's interleave scratch.
    [[nodiscard]] tile_pixels idwt(const tile_wavelet& tw,
                                   std::pmr::memory_resource* mr = nullptr) const;

    /// Stages 4+5 over an assembled image — inverse colour transform and
    /// inverse DC shift.
    void finish(image& img) const;

    /// All stages over all tiles; fills `stats` when non-null.
    [[nodiscard]] image decode_all(decode_stats* stats = nullptr) const;

    /// decode_all with tiles distributed over `threads` host threads (tiles
    /// are fully independent, so the result is identical).  `threads` <= 0
    /// uses the hardware concurrency.
    [[nodiscard]] image decode_all_parallel(int threads) const;

    /// Resolution scalability: decode at 1/2^discard of the full resolution
    /// by synthesising `discard` fewer wavelet levels.  Tier-1 work is
    /// unchanged but the IDWT and downstream stages shrink by ~4^discard.
    [[nodiscard]] image decode_reduced(int discard, decode_stats* stats = nullptr,
                                       std::pmr::memory_resource* mr = nullptr) const;

private:
    [[nodiscard]] tile_coeffs entropy_decode_layered(
        int tile_index, tier1_stats* stats, std::pmr::memory_resource* mr) const;

    std::span<const std::uint8_t> cs_;
    stream_info info_;
    int max_passes_ = 0;
    int max_layers_ = 0;
};

/// One-shot convenience wrapper.
[[nodiscard]] image decode(std::span<const std::uint8_t> cs,
                           decode_stats* stats = nullptr);

namespace detail {

/// Iterate the code blocks of a subband rectangle in raster order — the
/// canonical block order every codestream reader/writer must agree on
/// (encoder, one-shot decoder, and the resumable decode_session).
template <typename Fn>
void for_each_codeblock(const band_rect& br, Fn&& fn)
{
    for (int y = 0; y < br.height; y += k_codeblock_size) {
        for (int x = 0; x < br.width; x += k_codeblock_size) {
            const int w = std::min(k_codeblock_size, br.width - x);
            const int h = std::min(k_codeblock_size, br.height - y);
            fn(br.x0 + x, br.y0 + y, w, h);
        }
    }
}

}  // namespace detail

}  // namespace j2k
