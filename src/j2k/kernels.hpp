// j2k/kernels.hpp — runtime-dispatched SIMD kernels for the decode hot path.
//
// The inner loops of the IDWT lifting steps, the inverse colour transforms,
// and dequantisation are elementwise over rows, which makes them ideal SIMD
// targets.  This table is the single dispatch point: a scalar reference
// implementation (always available, the semantic ground truth) and an AVX2
// implementation selected at startup by CPUID.  Both produce bit-identical
// results by construction — integer kernels trivially, floating-point kernels
// because both sides use the same per-element mul/add dataflow with
// contraction disabled (see kernels.cpp / kernels_avx2.cpp build flags) and a
// shared round-away-from-zero definition.
//
// Tests force either side via force_kernel_isa() and diff whole decodes
// (tests/j2k/test_kernel_differential.cpp); operators force the scalar path
// with J2K_FORCE_SCALAR=1 when bisecting a suspected kernel bug.
#pragma once

#include <cstddef>
#include <cstdint>

namespace j2k {

enum class kernel_isa : std::uint8_t {
    scalar = 0,  ///< portable reference kernels
    avx2 = 1,    ///< AVX2 256-bit kernels (x86-64 only)
};

[[nodiscard]] constexpr const char* kernel_isa_name(kernel_isa isa) noexcept
{
    return isa == kernel_isa::avx2 ? "avx2" : "scalar";
}

/// One set of hot-loop kernels.  All row kernels are elementwise: dst[i] is a
/// pure function of dst[i], a[i], b[i] — callers handle boundary mirroring by
/// choosing which rows to pass (a and b may alias each other and dst).
struct kernel_table {
    kernel_isa isa = kernel_isa::scalar;

    // 5/3 integer lifting over a row of n samples.
    void (*lift53_sub_avg)(std::int32_t* d, const std::int32_t* a,
                           const std::int32_t* b, int n);    ///< d -= (a+b)>>1
    void (*lift53_add_avg)(std::int32_t* d, const std::int32_t* a,
                           const std::int32_t* b, int n);    ///< d += (a+b)>>1
    void (*lift53_add_round)(std::int32_t* d, const std::int32_t* a,
                             const std::int32_t* b, int n);  ///< d += (a+b+2)>>2
    void (*lift53_sub_round)(std::int32_t* d, const std::int32_t* a,
                             const std::int32_t* b, int n);  ///< d -= (a+b+2)>>2

    // 9/7 double-precision lifting / scaling over a row of n samples.
    void (*lift97)(double* d, const double* a, const double* b, double k,
                   int n);                       ///< d += k*(a+b)
    void (*scale97)(double* d, double k, int n);  ///< d *= k

    // Inverse colour transforms over n interleaved-plane samples, in place.
    void (*ict_inverse)(std::int32_t* y, std::int32_t* cb, std::int32_t* cr,
                        std::size_t n);
    void (*rct_inverse)(std::int32_t* y, std::int32_t* u, std::int32_t* v,
                        std::size_t n);

    // Midpoint-reconstruction dequantiser:
    // out[i] = q[i] == 0 ? 0 : sign(q[i]) * (|q[i]| + 0.5) * step.
    void (*dequant)(const std::int32_t* q, double* out, double step,
                    std::size_t n);

    /// Whether the MQ decoder should take its batch-renormalisation fast path
    /// by default (see mq_coder.hpp; overridable per decoder and globally).
    bool mq_fast = false;
};

/// The active table.  Resolution order: an explicit force_kernel_isa() wins;
/// otherwise J2K_FORCE_SCALAR=1 in the environment pins scalar; otherwise the
/// best ISA the CPU supports.
[[nodiscard]] const kernel_table& kernels() noexcept;

[[nodiscard]] kernel_isa active_kernel_isa() noexcept;
[[nodiscard]] bool cpu_has_avx2() noexcept;

/// Pin the dispatch (tests, debugging).  Returns false — and leaves the
/// dispatch unchanged — when the CPU cannot run `isa`.
bool force_kernel_isa(kernel_isa isa) noexcept;
/// Back to automatic resolution (CPUID + J2K_FORCE_SCALAR).
void reset_kernel_isa() noexcept;

/// Reference (scalar) rounding shared by every float→int kernel on both
/// sides of the dispatch: round half away from zero, expressed in the
/// floor form the vector kernels implement exactly.
[[nodiscard]] std::int32_t kernel_round_away(double v) noexcept;

namespace detail {
/// The two concrete tables (kernels.cpp / kernels_avx2.cpp).
[[nodiscard]] const kernel_table& scalar_kernels() noexcept;
/// Null when the build target or the CPU cannot run AVX2.
[[nodiscard]] const kernel_table* avx2_kernels() noexcept;
}  // namespace detail

}  // namespace j2k
