// j2k/pnm.hpp — PGM/PPM image file I/O.
//
// Binary NetPBM formats (P5 greyscale, P6 colour), the lingua franca of
// codec tooling: lets the examples and any downstream user feed real images
// through the codec and inspect decoder output with standard viewers.
// Samples above 8 bits use the big-endian 16-bit NetPBM convention.
#pragma once

#include "image.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace j2k {

/// Encode `img` as an in-memory PGM (1 component) / PPM (3 components) file.
/// Throws std::runtime_error on unsupported component counts.  This is the
/// same byte stream save_pnm writes; network front-ends send it as a framed
/// response payload.
[[nodiscard]] std::vector<std::uint8_t> pnm_bytes(const image& img);

/// Write `img` as PGM (1 component) or PPM (3 components).
/// Throws std::runtime_error on I/O failure or unsupported component count.
void save_pnm(const image& img, const std::string& path);

/// Load a binary PGM/PPM file.  Throws std::runtime_error on parse errors.
[[nodiscard]] image load_pnm(const std::string& path);

}  // namespace j2k
