// AVX2 kernel table.  This is the only TU compiled with -mavx2 (plus
// -ffp-contract=off, same as the scalar TU): the rest of the codec stays at
// the baseline ISA and reaches these kernels only through the dispatch table,
// after the runtime CPUID check below has confirmed the host can execute
// them.
//
// Bit-exactness contract with kernels.cpp:
//   * integer kernels — identical add/shift dataflow, trivially exact;
//   * double kernels — the same per-element multiply/add sequence with no
//     contraction (explicit mul/add intrinsics; the scalar TU disables FMA
//     contraction), so IEEE 754 gives identical results lane for lane;
//   * rounding — floor(|x| + 0.5) with the sign restored, matching
//     kernel_round_away() exactly (vector floor and abs are exact).
// Loop tails run the same scalar expressions as the reference kernels.

#include "kernels.hpp"

#if defined(__AVX2__) && defined(__x86_64__)

#include <immintrin.h>

#include <cmath>

namespace j2k {
namespace {

void x_lift53_sub_avg(std::int32_t* d, const std::int32_t* a,
                      const std::int32_t* b, int n)
{
    int i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
        const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
        const __m256i vd = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + i));
        const __m256i s = _mm256_srai_epi32(_mm256_add_epi32(va, vb), 1);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + i),
                            _mm256_sub_epi32(vd, s));
    }
    for (; i < n; ++i) d[i] -= (a[i] + b[i]) >> 1;
}

void x_lift53_add_avg(std::int32_t* d, const std::int32_t* a,
                      const std::int32_t* b, int n)
{
    int i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
        const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
        const __m256i vd = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + i));
        const __m256i s = _mm256_srai_epi32(_mm256_add_epi32(va, vb), 1);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + i),
                            _mm256_add_epi32(vd, s));
    }
    for (; i < n; ++i) d[i] += (a[i] + b[i]) >> 1;
}

void x_lift53_add_round(std::int32_t* d, const std::int32_t* a,
                        const std::int32_t* b, int n)
{
    const __m256i two = _mm256_set1_epi32(2);
    int i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
        const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
        const __m256i vd = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + i));
        const __m256i s = _mm256_srai_epi32(
            _mm256_add_epi32(_mm256_add_epi32(va, vb), two), 2);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + i),
                            _mm256_add_epi32(vd, s));
    }
    for (; i < n; ++i) d[i] += (a[i] + b[i] + 2) >> 2;
}

void x_lift53_sub_round(std::int32_t* d, const std::int32_t* a,
                        const std::int32_t* b, int n)
{
    const __m256i two = _mm256_set1_epi32(2);
    int i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
        const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
        const __m256i vd = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + i));
        const __m256i s = _mm256_srai_epi32(
            _mm256_add_epi32(_mm256_add_epi32(va, vb), two), 2);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + i),
                            _mm256_sub_epi32(vd, s));
    }
    for (; i < n; ++i) d[i] -= (a[i] + b[i] + 2) >> 2;
}

void x_lift97(double* d, const double* a, const double* b, double k, int n)
{
    const __m256d vk = _mm256_set1_pd(k);
    int i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d va = _mm256_loadu_pd(a + i);
        const __m256d vb = _mm256_loadu_pd(b + i);
        const __m256d vd = _mm256_loadu_pd(d + i);
        // mul then add — never fmadd — to match the uncontracted scalar side.
        const __m256d s = _mm256_mul_pd(vk, _mm256_add_pd(va, vb));
        _mm256_storeu_pd(d + i, _mm256_add_pd(vd, s));
    }
    for (; i < n; ++i) d[i] += k * (a[i] + b[i]);
}

void x_scale97(double* d, double k, int n)
{
    const __m256d vk = _mm256_set1_pd(k);
    int i = 0;
    for (; i + 4 <= n; i += 4)
        _mm256_storeu_pd(d + i, _mm256_mul_pd(_mm256_loadu_pd(d + i), vk));
    for (; i < n; ++i) d[i] *= k;
}

/// Vector kernel_round_away: floor(|x| + 0.5) with the sign bit restored,
/// then truncate (exact — the value is integral) to int32.
[[nodiscard]] __m128i round_away_pd(__m256d x)
{
    const __m256d sign_mask = _mm256_set1_pd(-0.0);
    const __m256d half = _mm256_set1_pd(0.5);
    const __m256d mag = _mm256_andnot_pd(sign_mask, x);
    const __m256d r = _mm256_floor_pd(_mm256_add_pd(mag, half));
    const __m256d signed_r = _mm256_or_pd(r, _mm256_and_pd(x, sign_mask));
    return _mm256_cvttpd_epi32(signed_r);
}

void x_ict_inverse(std::int32_t* y, std::int32_t* cb, std::int32_t* cr,
                   std::size_t n)
{
    const __m256d c1402 = _mm256_set1_pd(1.402);
    const __m256d c0344 = _mm256_set1_pd(0.344136);
    const __m256d c0714 = _mm256_set1_pd(0.714136);
    const __m256d c1772 = _mm256_set1_pd(1.772);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d vy = _mm256_cvtepi32_pd(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(y + i)));
        const __m256d vcb = _mm256_cvtepi32_pd(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(cb + i)));
        const __m256d vcr = _mm256_cvtepi32_pd(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(cr + i)));
        // Same association as the scalar kernel: (Y - a*Cb) - b*Cr.
        const __m256d r = _mm256_add_pd(vy, _mm256_mul_pd(c1402, vcr));
        const __m256d g = _mm256_sub_pd(
            _mm256_sub_pd(vy, _mm256_mul_pd(c0344, vcb)),
            _mm256_mul_pd(c0714, vcr));
        const __m256d b = _mm256_add_pd(vy, _mm256_mul_pd(c1772, vcb));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(y + i), round_away_pd(r));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(cb + i), round_away_pd(g));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(cr + i), round_away_pd(b));
    }
    for (; i < n; ++i) {
        const double Y = y[i], Cb = cb[i], Cr = cr[i];
        const double R = Y + 1.402 * Cr;
        const double G = Y - 0.344136 * Cb - 0.714136 * Cr;
        const double B = Y + 1.772 * Cb;
        y[i] = kernel_round_away(R);
        cb[i] = kernel_round_away(G);
        cr[i] = kernel_round_away(B);
    }
}

void x_rct_inverse(std::int32_t* y, std::int32_t* u, std::int32_t* v,
                   std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256i vy = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + i));
        const __m256i vu = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(u + i));
        const __m256i vv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
        const __m256i g = _mm256_sub_epi32(
            vy, _mm256_srai_epi32(_mm256_add_epi32(vu, vv), 2));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(y + i),
                            _mm256_add_epi32(vv, g));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(u + i), g);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(v + i),
                            _mm256_add_epi32(vu, g));
    }
    for (; i < n; ++i) {
        const std::int32_t Y = y[i], U = u[i], V = v[i];
        const std::int32_t G = Y - ((U + V) >> 2);
        y[i] = V + G;
        u[i] = G;
        v[i] = U + G;
    }
}

void x_dequant(const std::int32_t* q, double* out, double step, std::size_t n)
{
    const __m256d sign_mask = _mm256_set1_pd(-0.0);
    const __m256d half = _mm256_set1_pd(0.5);
    const __m256d vstep = _mm256_set1_pd(step);
    const __m256d zero = _mm256_setzero_pd();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d qd = _mm256_cvtepi32_pd(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + i)));
        const __m256d mag = _mm256_andnot_pd(sign_mask, qd);
        __m256d m = _mm256_mul_pd(_mm256_add_pd(mag, half), vstep);
        m = _mm256_or_pd(m, _mm256_and_pd(qd, sign_mask));  // restore sign
        const __m256d is_zero = _mm256_cmp_pd(qd, zero, _CMP_EQ_OQ);
        _mm256_storeu_pd(out + i, _mm256_andnot_pd(is_zero, m));
    }
    for (; i < n; ++i) {
        const std::int32_t v = q[i];
        if (v == 0) {
            out[i] = 0.0;
            continue;
        }
        const double m = (std::abs(static_cast<double>(v)) + 0.5) * step;
        out[i] = v < 0 ? -m : m;
    }
}

constexpr kernel_table k_avx2_table{
    kernel_isa::avx2,
    x_lift53_sub_avg,
    x_lift53_add_avg,
    x_lift53_add_round,
    x_lift53_sub_round,
    x_lift97,
    x_scale97,
    x_ict_inverse,
    x_rct_inverse,
    x_dequant,
    /*mq_fast=*/true,
};

}  // namespace

const kernel_table* detail::avx2_kernels() noexcept
{
    return __builtin_cpu_supports("avx2") ? &k_avx2_table : nullptr;
}

}  // namespace j2k

#else  // baseline build without AVX2 codegen support

namespace j2k {

const kernel_table* detail::avx2_kernels() noexcept
{
    return nullptr;
}

}  // namespace j2k

#endif
