// j2k/dwt.hpp — discrete wavelet transforms of JPEG 2000 (Annex F).
//
// Two filter banks, both implemented by lifting with whole-sample symmetric
// boundary extension:
//   * 5/3 (Le Gall) — reversible integer transform, used in lossless mode.
//   * 9/7 (Daubechies) — irreversible floating-point transform (lossy mode).
//
// The 2-D transform is separable (rows then columns) and dyadic (Mallat):
// each level re-transforms the LL band of the previous one.  Subbands are
// stored in the canonical quadrant layout (LL top-left, HL top-right, LH
// bottom-left, HH bottom-right).
#pragma once

#include "image.hpp"

#include <memory_resource>
#include <vector>

namespace j2k {

enum class wavelet {
    w5_3,  ///< reversible integer 5/3 (lossless path)
    w9_7,  ///< irreversible 9/7 (lossy path)
};

enum class band { ll, hl, lh, hh };

[[nodiscard]] constexpr const char* band_name(band b) noexcept
{
    switch (b) {
        case band::ll: return "LL";
        case band::hl: return "HL";
        case band::lh: return "LH";
        case band::hh: return "HH";
    }
    return "?";
}

/// Geometry of one subband within the quadrant layout.
struct band_rect {
    band b = band::ll;
    int level = 0;  ///< decomposition level this band belongs to (1..L)
    int x0 = 0;
    int y0 = 0;
    int width = 0;
    int height = 0;
};

/// All subbands of an L-level decomposition of a w×h tile, ordered from the
/// deepest LL outwards (the order tier-2 packs them in).  3L+1 entries.
[[nodiscard]] std::vector<band_rect> subband_layout(int w, int h, int levels);

/// Per-band weight of the synthesis basis vectors (L2 gain) — used by the
/// quantiser to scale step sizes per subband.
[[nodiscard]] double band_gain(band b, int level, wavelet w) noexcept;

// -- 5/3 reversible (integer, in-place on a plane) ---------------------------
//
// All 2-D transforms take an optional memory resource for their internal
// scratch (the interleave grid and row buffer).  Pass a per-job arena
// (runtime/arena.hpp) to keep the hot path allocation-free; nullptr falls
// back to the default heap resource.

/// Forward L-level 5/3 transform of `p` in place.
void dwt53_forward(plane& p, int levels, std::pmr::memory_resource* mr = nullptr);
/// Inverse L-level 5/3 transform of `p` in place (exact inverse).
void dwt53_inverse(plane& p, int levels, std::pmr::memory_resource* mr = nullptr);

// -- 9/7 irreversible (double buffer, row-major w×h) --------------------------

void dwt97_forward(std::vector<double>& buf, int w, int h, int levels,
                   std::pmr::memory_resource* mr = nullptr);
void dwt97_inverse(std::vector<double>& buf, int w, int h, int levels,
                   std::pmr::memory_resource* mr = nullptr);

// -- resolution scalability ---------------------------------------------------

/// Inverse transform stopping `discard` levels early: only levels
/// L-1 … discard are synthesised, leaving a 1/2^discard-resolution image in
/// the top-left extent(w,discard) × extent(h,discard) region.  discard = 0 is
/// the full inverse.
void dwt53_inverse_partial(plane& p, int levels, int discard,
                           std::pmr::memory_resource* mr = nullptr);
void dwt97_inverse_partial(std::vector<double>& buf, int w, int h, int levels,
                           int discard, std::pmr::memory_resource* mr = nullptr);

/// ceil(extent / 2^level) — the size of the reduced-resolution image.
[[nodiscard]] int reduced_extent(int full, int level) noexcept;

// -- 1-D primitives (exposed for tests and for the FOSSY RTL models) ----------

/// One 5/3 analysis pass over `n` interleaved samples with stride 1.
void dwt53_analyze_1d(std::int32_t* x, int n);
void dwt53_synthesize_1d(std::int32_t* x, int n);
void dwt97_analyze_1d(double* x, int n);
void dwt97_synthesize_1d(double* x, int n);

}  // namespace j2k
