// decoder/serial.hpp — OSSS serialisation of the JPEG 2000 tile types.
//
// ADL hooks that let j2k planes and tile containers travel through
// `osss::object_socket::call` with real payloads: the RMI layer then charges
// the channel for the exact wire size of the data being moved — the
// "serialisation cuts large user-defined data structures" step of the paper,
// applied to the actual case-study types.
#pragma once

#include <j2k/codec.hpp>
#include <osss/serialization.hpp>

// The plane overloads live in namespace codec (where the type moved when the
// image currency became codec-neutral) so ADL from osss::serialize finds them.
namespace codec {

inline void serialize(osss::archive& a, const plane& p)
{
    a.put(static_cast<std::int32_t>(p.width()));
    a.put(static_cast<std::int32_t>(p.height()));
    osss::serialize(a, p.samples());
}

inline void deserialize(osss::archive_reader& r, plane& p)
{
    std::int32_t w = 0;
    std::int32_t h = 0;
    r.get(w);
    r.get(h);
    p = plane{w, h};
    osss::deserialize(r, p.samples());
}

}  // namespace codec

namespace j2k {

inline void serialize(osss::archive& a, const tile_rect& t)
{
    a.put(t.index);
    a.put(t.x0);
    a.put(t.y0);
    a.put(t.width);
    a.put(t.height);
}

inline void deserialize(osss::archive_reader& r, tile_rect& t)
{
    r.get(t.index);
    r.get(t.x0);
    r.get(t.y0);
    r.get(t.width);
    r.get(t.height);
}

inline void serialize(osss::archive& a, const tile_coeffs& tc)
{
    serialize(a, tc.rect);
    osss::serialize(a, tc.comps);
}

inline void deserialize(osss::archive_reader& r, tile_coeffs& tc)
{
    deserialize(r, tc.rect);
    osss::deserialize(r, tc.comps);
}

inline void serialize(osss::archive& a, const tile_pixels& tp)
{
    serialize(a, tp.rect);
    osss::serialize(a, tp.comps);
}

inline void deserialize(osss::archive_reader& r, tile_pixels& tp)
{
    deserialize(r, tp.rect);
    osss::deserialize(r, tp.comps);
}

}  // namespace j2k
