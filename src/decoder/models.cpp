#include "models.hpp"

#include <deque>
#include <map>
#include <memory>
#include <optional>

namespace decoder {

namespace {

using cfg_t = model_config;

std::vector<std::int32_t> flatten(const j2k::tile_coeffs& tc)
{
    std::vector<std::int32_t> out;
    for (const auto& p : tc.comps)
        out.insert(out.end(), p.samples().begin(), p.samples().end());
    return out;
}

j2k::image tile_image(const j2k::tile_pixels& tp, int bit_depth)
{
    j2k::image img{tp.rect.width, tp.rect.height, static_cast<int>(tp.comps.size()),
                   bit_depth};
    for (std::size_t c = 0; c < tp.comps.size(); ++c) img.comp(static_cast<int>(c)) = tp.comps[c];
    return img;
}

/// State of the HW/SW Shared Object: tile store, IQ, job queue, results.
struct hw_so_data {
    struct job {
        int tile = 0;
        j2k::tile_wavelet tw;
    };
    std::deque<job> jobs;
    std::map<int, j2k::tile_pixels> results;
    osss::xilinx_block_ram<std::int32_t>* ram = nullptr;  ///< VTA tile store
};

/// State of the IDWT-params Shared Object: parameter exchange and the
/// arbitration point between IDWT2D and the two filter blocks.
struct params_so_data {
    struct filter_job {
        int tile = 0;
        bool lossy = false;
        const j2k::tile_wavelet* tw = nullptr;  // data stays in the HW domain
    };
    std::optional<filter_job> job;
    std::map<int, j2k::tile_pixels> done;
    std::uint64_t param_words = 0;
};

class pipeline_model {
public:
    pipeline_model(const workload& wl, bool lossy, model_version ver)
        : pipeline_model{wl, lossy, ver, config_for(ver)}
    {
    }

    pipeline_model(const workload& wl, bool lossy, model_version ver, const cfg_t& cfg)
        : wl_{wl},
          lossy_{lossy},
          ver_{ver},
          cfg_{cfg},
          md_{wl.mode(lossy)},
          dec_{md_.codestream},
          T_{sw_timing::calibrate(md_, lossy)},
          hw_so_{"hw_sw_so", osss::scheduling_policy::priority},
          params_so_{"idwt_params_so", osss::scheduling_policy::fifo},
          out_{dec_.info().width, dec_.info().height, dec_.info().components,
               dec_.info().bit_depth},
          grid_{dec_.tiles()}
    {
        const std::uint64_t tile_samples = md_.per_tile.front().samples;
        if (cfg_.vta) {
            if (cfg_.use_plb) {
                osss::plb_bus::config pcfg;
                pcfg.max_burst_bytes = cfg_.bus_burst_bytes;
                pcfg.policy = cfg_.bus_policy;
                bus_ = std::make_unique<osss::plb_bus>("plb", clk_, pcfg);
            } else {
                osss::opb_bus::config bcfg;
                bcfg.width_bits = cfg_.bus_width_bits;
                bcfg.max_burst_bytes = cfg_.bus_burst_bytes;
                bcfg.policy = cfg_.bus_policy;
                bus_ = std::make_unique<osss::opb_bus>("opb", clk_, bcfg);
            }
            for (int i = 0; i < cfg_.sw_tasks; ++i) {
                cpus_.push_back(std::make_unique<osss::processor>(
                    "microblaze_" + std::to_string(i), clk_));
                // Instruction/data traffic of each MicroBlaze shares the OPB.
                cpus_.back()->attach_bus(*bus_, 100 + i, cfg_.cpu_mem_fraction,
                                         sim::time::us(100));
            }
            tile_ram_ = std::make_unique<osss::xilinx_block_ram<std::int32_t>>(
                "tile_store", clk_, tile_samples,
                osss::xilinx_block_ram<std::int32_t>::config{cfg_.bram_ports, 1});
            hw_so_.object().ram = tile_ram_.get();
            hw_sock_ = std::make_unique<osss::object_socket<hw_so_data>>(hw_so_);
            params_sock_ = std::make_unique<osss::object_socket<params_so_data>>(params_so_);

            for (int i = 0; i < cfg_.sw_tasks; ++i)
                sw_ports_.push_back(osss::service_port<hw_so_data>::rmi(
                    *hw_sock_, "sw_task_" + std::to_string(i), *bus_, i));
            if (cfg_.idwt_p2p) {
                p2p_fetch_ = std::make_unique<osss::p2p_channel>("p2p_idwt_fetch", clk_);
                p2p_wb_ = std::make_unique<osss::p2p_channel>("p2p_idwt_wb", clk_);
                hw_fetch_port_ = osss::service_port<hw_so_data>::rmi(
                    *hw_sock_, "idwt2d_fetch", *p2p_fetch_, 10, 1);
                hw_wb_port_ = osss::service_port<hw_so_data>::rmi(
                    *hw_sock_, "idwt2d_wb", *p2p_wb_, 11, 1);
            } else {
                hw_fetch_port_ = osss::service_port<hw_so_data>::rmi(
                    *hw_sock_, "idwt2d_fetch", *bus_, 10, 1);
                hw_wb_port_ = osss::service_port<hw_so_data>::rmi(
                    *hw_sock_, "idwt2d_wb", *bus_, 11, 1);
            }
            // Parameter links are always dedicated point-to-point channels.
            for (int i = 0; i < 3; ++i)
                p2p_params_.push_back(
                    std::make_unique<osss::p2p_channel>("p2p_params_" + std::to_string(i), clk_));
            p2d_port_ = osss::service_port<params_so_data>::rmi(*params_sock_, "idwt2d",
                                                                *p2p_params_[0], 20);
            p53_port_ = osss::service_port<params_so_data>::rmi(*params_sock_, "idwt53",
                                                                *p2p_params_[1], 21);
            p97_port_ = osss::service_port<params_so_data>::rmi(*params_sock_, "idwt97",
                                                                *p2p_params_[2], 22);
        } else {
            for (int i = 0; i < cfg_.sw_tasks; ++i)
                sw_ports_.push_back(osss::service_port<hw_so_data>::direct(
                    hw_so_, "sw_task_" + std::to_string(i)));
            hw_fetch_port_ = osss::service_port<hw_so_data>::direct(hw_so_, "idwt2d_fetch", 1);
            hw_wb_port_ = osss::service_port<hw_so_data>::direct(hw_so_, "idwt2d_wb", 1);
            p2d_port_ = osss::service_port<params_so_data>::direct(params_so_, "idwt2d");
            p53_port_ = osss::service_port<params_so_data>::direct(params_so_, "idwt53");
            p97_port_ = osss::service_port<params_so_data>::direct(params_so_, "idwt97");
        }
    }

    [[nodiscard]] model_result run()
    {
        for (int i = 0; i < cfg_.sw_tasks; ++i) k_.spawn(sw_proc(i), "sw_task");
        if (cfg_.hw_modules) {
            k_.spawn(idwt2d_proc(), "idwt2d");
            k_.spawn(filter_proc(false), "idwt53");
            k_.spawn(filter_proc(true), "idwt97");
        }
        const sim::time end = k_.run();

        model_result r;
        r.version = ver_;
        r.lossy = lossy_;
        r.decode_time = end;
        r.idwt_time = idwt_time_;
        r.image_ok = out_ == md_.expected;
        if (bus_) {
            r.bus_transactions = bus_->stats().transactions;
            r.bus_wait = bus_->stats().wait_time;
        }
        r.so_calls = so_calls_;
        return r;
    }

private:
    // ---- software side -----------------------------------------------------

    template <typename Fn>
    [[nodiscard]] auto sw_exec(int id, sim::time t, Fn fn)
        -> sim::task<std::invoke_result_t<Fn>>
    {
        using R = std::invoke_result_t<Fn>;
        if (cfg_.vta) {
            if constexpr (std::is_void_v<R>) {
                co_await cpus_[static_cast<std::size_t>(id)]->execute(t, fn);
            } else {
                co_return co_await cpus_[static_cast<std::size_t>(id)]->execute(t, fn);
            }
        } else {
            if constexpr (std::is_void_v<R>) {
                co_await osss::eet(t, fn);
            } else {
                co_return co_await osss::eet(t, fn);
            }
        }
    }

    [[nodiscard]] sim::process sw_proc(int id)
    {
        co_await sw_body(id);
    }

    [[nodiscard]] sim::task<void> sw_body(int id)
    {
        int prev = -1;
        for (int t = id; t < wl_.tile_count(); t += cfg_.sw_tasks) {
            const tile_work& w = md_.per_tile[static_cast<std::size_t>(t)];
            // Arithmetic decoding (the 180 ms/tile EET block of the paper).
            auto arith_fn = [this, t] { return dec_.entropy_decode(t); };
            j2k::tile_coeffs tc = co_await sw_exec(id, T_.arith(w), arith_fn);
            co_await submit_tile(id, t, std::move(tc));
            if (!cfg_.pipelined) {
                co_await collect_tile(id, t);
            } else {
                if (prev >= 0) co_await collect_tile(id, prev);
                prev = t;
            }
        }
        if (cfg_.pipelined && prev >= 0) co_await collect_tile(id, prev);
    }

    /// Transfer the entropy-decoded tile into the Shared Object; the object
    /// stores it (block RAM at VTA), performs the IQ, and either queues an
    /// IDWT job (module structure) or runs the IDWT itself (co-processor).
    [[nodiscard]] sim::task<void> submit_tile(int id, int t, j2k::tile_coeffs tc)
    {
        const tile_work& w = md_.per_tile[static_cast<std::size_t>(t)];
        const std::size_t wire_bytes = w.samples * 2;  // 16-bit coefficients
        auto flat = std::make_shared<std::vector<std::int32_t>>(flatten(tc));
        ++so_calls_;
        // NOTE: lambdas passed to coroutine call chains are bound to locals
        // first — GCC 12 double-destroys temporary closures inside co_await
        // full-expressions (fixed in GCC 13).
        auto submit_fn =
            [this, t, w, tc = std::move(tc), flat](hw_so_data& s) -> sim::task<void> {
                if (s.ram) co_await s.ram->write_block(0, *flat);
                // Shared-Object housekeeping (the "data structure to transfer
                // large objects" management — only the tile-store variant)
                // plus the per-client scheduler cost.
                if (cfg_.hw_modules) co_await sim::delay(so_handling(w));
                co_await sim::delay(so_scheduler_overhead());
                // IQ — computed by the Shared Object.
                const double cps =
                    cfg_.vta ? H_.vta_iq_cycles_per_sample : H_.app_iq_cycles_per_sample;
                co_await sim::delay(H_.cycles(cps, w.samples, clk_));
                j2k::tile_wavelet tw = dec_.dequantize(tc);
                if (cfg_.hw_modules) {
                    s.jobs.push_back({t, std::move(tw)});
                } else {
                    // v2/v4: the SO is the whole co-processor (IQ + IDWT).
                    const sim::time ts = H_.cycles(idwt_cps(), w.samples, clk_);
                    co_await sim::delay(ts);
                    idwt_time_ += ts;
                    s.results.emplace(t, dec_.idwt(tw));
                }
            };
        co_await sw_ports_[static_cast<std::size_t>(id)].call(wire_bytes, 8, submit_fn);
    }

    /// Fetch the finished tile from the Shared Object and run ICT + DC shift
    /// on the software side.
    [[nodiscard]] sim::task<void> collect_tile(int id, int t)
    {
        const tile_work& w = md_.per_tile[static_cast<std::size_t>(t)];
        const std::size_t wire_bytes = w.samples * 2;
        ++so_calls_;
        auto ready = [t](const hw_so_data& s) { return s.results.count(t) > 0; };
        auto fetch_fn = [this, t, w](hw_so_data& s) -> sim::task<j2k::tile_pixels> {
            if (s.ram) {
                std::vector<std::int32_t> scratch(w.samples);
                co_await s.ram->read_block(0, scratch);
            }
            if (cfg_.hw_modules) co_await sim::delay(so_handling(w));
            co_await sim::delay(so_scheduler_overhead());
            auto node = s.results.extract(t);
            co_return std::move(node.mapped());
        };
        j2k::tile_pixels tp = co_await sw_ports_[static_cast<std::size_t>(id)].call_when(
            16, wire_bytes, ready, fetch_fn);
        auto finish_fn = [this, t, tp = std::move(tp)] {
            j2k::image timg = tile_image(tp, out_.bit_depth());
            dec_.finish(timg);
            for (int c = 0; c < out_.components(); ++c)
                j2k::insert_tile(out_.comp(c), timg.comp(c),
                                 grid_[static_cast<std::size_t>(t)]);
        };
        co_await sw_exec(id, T_.ict(w) + T_.dc(w), finish_fn);
    }

    // ---- hardware side -----------------------------------------------------

    /// Tile-management time of the HW/SW Shared Object ("store and transfer
    /// large objects within the object") — charged on every tile movement.
    [[nodiscard]] sim::time so_handling(const tile_work& w) const
    {
        return sim::time::ns_f(H_.so_handling_ns_per_sample * static_cast<double>(w.samples));
    }

    /// Scheduler/guard-evaluation overhead of the HW/SW Shared Object: its
    /// arbiter grows with the number of connected clients, which is what
    /// makes model 5 (seven clients) slightly slower than model 4.
    [[nodiscard]] sim::time so_scheduler_overhead() const
    {
        // Guard evaluation is pairwise (every waiter re-checks on every state
        // change), so the cost grows superlinearly with the client count.
        const int clients = cfg_.sw_tasks + (cfg_.hw_modules ? 3 : 0);
        return sim::time::ns(1500) * (clients * clients);
    }

    [[nodiscard]] double idwt_cps() const noexcept
    {
        if (cfg_.vta)
            return lossy_ ? H_.vta_idwt97_cycles_per_sample : H_.vta_idwt53_cycles_per_sample;
        return lossy_ ? H_.app_idwt97_cycles_per_sample : H_.app_idwt53_cycles_per_sample;
    }

    /// IDWT2D control block: pulls jobs from the HW/SW SO, exchanges
    /// parameter sequences with the filter blocks via the params SO, writes
    /// results back.  Its service time per tile is the Table 1 "IDWT time".
    [[nodiscard]] sim::process idwt2d_proc()
    {
        const std::size_t tile_bytes = md_.per_tile.front().samples * 2;
        for (int count = 0; count < wl_.tile_count(); ++count) {
            // Synchronise on job availability (not part of the service time).
            auto has_job = [](const hw_so_data& s) { return !s.jobs.empty(); };
            auto noop = [](hw_so_data&) {};
            co_await hw_fetch_port_.call_when(8, 8, has_job, noop);
            const sim::time t0 = k_.now();

            auto fetch_fn = [this](hw_so_data& s) -> sim::task<hw_so_data::job> {
                if (s.ram) {
                    std::vector<std::int32_t> scratch(s.ram->size());
                    co_await s.ram->read_block(0, scratch);
                }
                co_await sim::delay(so_handling(md_.per_tile.front()) + so_scheduler_overhead());
                auto j = std::move(s.jobs.front());
                s.jobs.pop_front();
                co_return j;
            };
            hw_so_data::job job = co_await hw_fetch_port_.call(16, tile_bytes, fetch_fn);
            const tile_work& w = md_.per_tile[static_cast<std::size_t>(job.tile)];

            // Parameter sequences per component and decomposition level.
            auto param_fn = [](params_so_data& p) { p.param_words += 16; };
            for (int c = 0; c < dec_.info().components; ++c)
                for (int l = 0; l < dec_.info().levels; ++l)
                    co_await p2d_port_.call(64, 16, param_fn);
            // Dispatch to the filter block matching the stream mode.
            auto dispatch_fn = [this, &job](params_so_data& p) {
                p.job = params_so_data::filter_job{job.tile, lossy_, &job.tw};
            };
            co_await p2d_port_.call(64, 8, dispatch_fn);
            // Wait for the filter's completion notification.
            auto is_done = [t = job.tile](const params_so_data& p) {
                return p.done.count(t) > 0;
            };
            auto take_fn = [t = job.tile](params_so_data& p) {
                auto node = p.done.extract(t);
                return std::move(node.mapped());
            };
            j2k::tile_pixels tp = co_await p2d_port_.call_when(8, 16, is_done, take_fn);
            // Write the spatial tile back into the Shared Object.
            auto wb_fn = [this, t = job.tile, w, tp = std::move(tp)](hw_so_data& s) mutable
                -> sim::task<void> {
                if (s.ram) {
                    std::vector<std::int32_t> scratch(w.samples, 0);
                    co_await s.ram->write_block(0, scratch);
                }
                co_await sim::delay(so_handling(w) + so_scheduler_overhead());
                s.results.emplace(t, std::move(tp));
            };
            co_await hw_wb_port_.call(tile_bytes, 8, wb_fn);
            idwt_time_ += k_.now() - t0;
        }
    }

    /// Filter block (IDWT53 or IDWT97): takes jobs of its mode from the
    /// params SO, performs the (charged and real) inverse transform.
    [[nodiscard]] sim::process filter_proc(bool is97)
    {
        auto& port = is97 ? p97_port_ : p53_port_;
        for (;;) {
            auto my_job = [is97](const params_so_data& p) {
                return p.job && p.job->lossy == is97;
            };
            auto take_fn = [](params_so_data& p) {
                auto j = *p.job;
                p.job.reset();
                return j;
            };
            params_so_data::filter_job fj = co_await port.call_when(8, 64, my_job, take_fn);
            const tile_work& w = md_.per_tile[static_cast<std::size_t>(fj.tile)];
            co_await sim::delay(H_.cycles(idwt_cps(), w.samples, clk_));
            j2k::tile_pixels tp = dec_.idwt(*fj.tw);
            auto done_fn = [fj, tp = std::move(tp)](params_so_data& p) mutable {
                p.done.emplace(fj.tile, std::move(tp));
            };
            co_await port.call(16, 8, done_fn);
        }
    }

    // ---- members ------------------------------------------------------------

    const workload& wl_;
    bool lossy_;
    model_version ver_;
    cfg_t cfg_;
    const mode_data& md_;
    sim::kernel k_;
    sim::time clk_ = sim::time::ns(10);  // 100 MHz system clock
    j2k::decoder dec_;
    sw_timing T_;
    hw_timing H_;

    std::vector<std::unique_ptr<osss::processor>> cpus_;
    std::unique_ptr<osss::rmi_channel> bus_;
    std::unique_ptr<osss::p2p_channel> p2p_fetch_;
    std::unique_ptr<osss::p2p_channel> p2p_wb_;
    std::vector<std::unique_ptr<osss::p2p_channel>> p2p_params_;
    std::unique_ptr<osss::xilinx_block_ram<std::int32_t>> tile_ram_;

    osss::shared_object<hw_so_data> hw_so_;
    osss::shared_object<params_so_data> params_so_;
    std::unique_ptr<osss::object_socket<hw_so_data>> hw_sock_;
    std::unique_ptr<osss::object_socket<params_so_data>> params_sock_;

    std::vector<osss::service_port<hw_so_data>> sw_ports_;
    osss::service_port<hw_so_data> hw_fetch_port_;
    osss::service_port<hw_so_data> hw_wb_port_;
    osss::service_port<params_so_data> p2d_port_;
    osss::service_port<params_so_data> p53_port_;
    osss::service_port<params_so_data> p97_port_;

    j2k::image out_;
    sim::time idwt_time_{};
    std::uint64_t so_calls_ = 0;
    std::vector<j2k::tile_rect> grid_;
};

/// Version 1 — the software-only reference structure.
model_result run_v1(const workload& wl, bool lossy)
{
    const mode_data& md = wl.mode(lossy);
    const sw_timing T = sw_timing::calibrate(md, lossy);
    sim::kernel k;
    j2k::decoder dec{md.codestream};
    j2k::image out{dec.info().width, dec.info().height, dec.info().components,
                   dec.info().bit_depth};
    sim::time idwt_time{};
    const auto grid = dec.tiles();

    k.spawn(
        [](sim::kernel&, const workload& w, bool ly, const sw_timing& t, j2k::decoder& d,
           j2k::image& o, sim::time& it,
           const std::vector<j2k::tile_rect>& g) -> sim::process {
            const mode_data& m = w.mode(ly);
            for (int i = 0; i < w.tile_count(); ++i) {
                const tile_work& tw = m.per_tile[static_cast<std::size_t>(i)];
                auto arith_fn = [&] { return d.entropy_decode(i); };
                auto tc = co_await osss::eet(t.arith(tw), arith_fn);
                auto iq_fn = [&] { return d.dequantize(tc); };
                auto twav = co_await osss::eet(t.iq(tw), iq_fn);
                it += t.idwt(tw);
                auto idwt_fn = [&] { return d.idwt(twav); };
                auto tp = co_await osss::eet(t.idwt(tw), idwt_fn);
                auto finish_fn = [&] {
                    j2k::image timg = tile_image(tp, o.bit_depth());
                    d.finish(timg);
                    for (int c = 0; c < o.components(); ++c)
                        j2k::insert_tile(o.comp(c), timg.comp(c),
                                         g[static_cast<std::size_t>(i)]);
                };
                co_await osss::eet(t.ict(tw) + t.dc(tw), finish_fn);
            }
        }(k, wl, lossy, T, dec, out, idwt_time, grid),
        "sw_only");

    const sim::time end = k.run();
    model_result r;
    r.version = model_version::v1;
    r.lossy = lossy;
    r.decode_time = end;
    r.idwt_time = idwt_time;
    r.image_ok = out == md.expected;
    return r;
}

}  // namespace

model_config config_for(model_version v) noexcept
{
    model_config c;
    switch (v) {
        case model_version::v1: break;
        case model_version::v2: break;  // defaults: 1 task, blocking co-processor
        case model_version::v3: c.pipelined = c.hw_modules = true; break;
        case model_version::v4: c.sw_tasks = 4; break;
        case model_version::v5: c.sw_tasks = 4; c.pipelined = c.hw_modules = true; break;
        case model_version::v6a: c.vta = c.pipelined = c.hw_modules = true; break;
        case model_version::v6b: c.vta = c.pipelined = c.hw_modules = c.idwt_p2p = true; break;
        case model_version::v7a:
            c.vta = c.pipelined = c.hw_modules = true;
            c.sw_tasks = 4;
            break;
        case model_version::v7b:
            c.vta = c.pipelined = c.hw_modules = c.idwt_p2p = true;
            c.sw_tasks = 4;
            break;
    }
    return c;
}

model_result run_custom_model(const workload& wl, bool lossy, const model_config& cfg)
{
    pipeline_model m{wl, lossy, model_version::v3, cfg};
    return m.run();
}

model_result run_model(const workload& wl, model_version v, bool lossy)
{
    if (v == model_version::v1) return run_v1(wl, lossy);
    pipeline_model m{wl, lossy, v};
    return m.run();
}

std::vector<model_result> run_all_models(const workload& wl, bool lossy)
{
    std::vector<model_result> out;
    for (auto v : {model_version::v1, model_version::v2, model_version::v3,
                   model_version::v4, model_version::v5, model_version::v6a,
                   model_version::v6b, model_version::v7a, model_version::v7b})
        out.push_back(run_model(wl, v, lossy));
    return out;
}

osss::design describe_model(model_version v)
{
    using osss::component_kind;
    const model_config c = config_for(v);
    osss::design d{std::string{"jpeg2000_v"} + version_name(v)};
    for (int i = 0; i < c.sw_tasks; ++i) {
        const std::string cpu = "microblaze_" + std::to_string(i);
        if (c.vta) d.add(component_kind::processor, cpu, "microblaze");
        d.add(component_kind::sw_task, "arith_dec_" + std::to_string(i), "sw_task",
              c.vta ? cpu : "");
    }
    d.add(component_kind::shared_object, "hw_sw_so", "shared_object<iq_tile_store>",
          c.vta ? "opb_v20_0" : "");
    if (c.hw_modules) {
        d.add(component_kind::shared_object, "idwt_params_so",
              "shared_object<idwt_params>");
        d.add(component_kind::module, "idwt2d", "idwt2d_osss",
              c.vta ? (c.idwt_p2p ? "p2p" : "opb_v20_0") : "");
        d.add(component_kind::module, "idwt53", "idwt53_osss", "");
        d.add(component_kind::module, "idwt97", "idwt97_osss", "");
    }
    if (c.vta) {
        d.add(component_kind::channel, "opb_v20_0", "opb_bus");
        if (c.idwt_p2p) {
            d.add(component_kind::channel, "p2p_idwt_fetch", "p2p_channel");
            d.add(component_kind::channel, "p2p_idwt_wb", "p2p_channel");
        }
        for (int i = 0; i < 3; ++i)
            d.add(component_kind::channel, "p2p_params_" + std::to_string(i), "p2p_channel");
        d.add(component_kind::memory, "tile_store", "bram_block");
        d.add(component_kind::memory, "ddr_ram", "mch_opb_ddr");
    }
    for (int i = 0; i < c.sw_tasks; ++i)
        d.add_link("arith_dec_" + std::to_string(i), "hw_sw_so", c.vta ? "opb_v20_0" : "");
    if (c.hw_modules) {
        d.add_link("idwt2d", "hw_sw_so",
                   c.vta ? (c.idwt_p2p ? "p2p_idwt_fetch" : "opb_v20_0") : "");
        d.add_link("idwt2d", "idwt_params_so", c.vta ? "p2p_params_0" : "");
        d.add_link("idwt53", "idwt_params_so", c.vta ? "p2p_params_1" : "");
        d.add_link("idwt97", "idwt_params_so", c.vta ? "p2p_params_2" : "");
    }
    return d;
}

}  // namespace decoder
