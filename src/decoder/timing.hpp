// decoder/timing.hpp — execution-time back-annotation for the case study.
//
// The paper profiles its reference decoder on the target processor and
// back-annotates the measured times into the OSSS models via EET blocks
// (≈180 ms per tile for the arithmetic decoder; per-stage shares per
// Figure 1).  We do the same, but anchored to *work units* measured from the
// real codec (MQ decisions, samples) so that tiles of different complexity
// get proportional times:
//
//   stage_time(tile) = work(tile) × ns_per_unit
//
// with ns_per_unit calibrated so the mean tile matches the paper's profile.
//
// Hardware costs are cycle-per-sample budgets at the 100 MHz system clock;
// Application-Layer values are idealised datapath costs, VTA values include
// the block-RAM accesses the explicit-memory refinement introduces.
#pragma once

#include "workload.hpp"

#include <sim/time.hpp>

namespace decoder {

/// Figure 1 stage shares (fractions of total SW decode time per mode).
struct stage_profile {
    double arith;
    double iq;
    double idwt;
    double ict;
    double dc;
};

/// Paper Figure 1, lossless: 88.8 / 3.2 / 5.5 / 0.7 / 1.8 %.
inline constexpr stage_profile k_profile_lossless{0.888, 0.032, 0.055, 0.007, 0.018};
/// Paper Figure 1, lossy: 78.6 / 4.2 / 12.4 / 1.2 / 3.6 %.
inline constexpr stage_profile k_profile_lossy{0.786, 0.042, 0.124, 0.012, 0.036};

/// Paper Section 3.2: the arithmetic decoder takes ≈180 ms per tile on the
/// target processor.
inline constexpr double k_arith_ms_per_tile = 180.0;

/// Software timing model: nanoseconds per unit of work, per stage.
struct sw_timing {
    double ns_per_mq_decision = 0;
    double ns_per_iq_sample = 0;
    double ns_per_idwt_sample = 0;
    double ns_per_ict_sample = 0;
    double ns_per_dc_sample = 0;

    /// Calibrate against a profiled workload mode.
    [[nodiscard]] static sw_timing calibrate(const mode_data& m, bool lossy);

    [[nodiscard]] sim::time arith(const tile_work& w) const
    {
        return sim::time::ns_f(ns_per_mq_decision * static_cast<double>(w.mq_decisions));
    }
    [[nodiscard]] sim::time iq(const tile_work& w) const
    {
        return sim::time::ns_f(ns_per_iq_sample * static_cast<double>(w.samples));
    }
    [[nodiscard]] sim::time idwt(const tile_work& w) const
    {
        return sim::time::ns_f(ns_per_idwt_sample * static_cast<double>(w.samples));
    }
    [[nodiscard]] sim::time ict(const tile_work& w) const
    {
        return sim::time::ns_f(ns_per_ict_sample * static_cast<double>(w.samples));
    }
    [[nodiscard]] sim::time dc(const tile_work& w) const
    {
        return sim::time::ns_f(ns_per_dc_sample * static_cast<double>(w.samples));
    }
};

/// Hardware cost budgets (cycles per sample at the 100 MHz HW clock).
struct hw_timing {
    // Application Layer: idealised datapath, no memory model.
    double app_iq_cycles_per_sample = 1.0;
    double app_idwt53_cycles_per_sample = 1.25;
    double app_idwt97_cycles_per_sample = 2.5;
    // VTA: datapath cost once the explicit line-buffer memory is inserted
    // (block-RAM accesses are charged separately by the memory model).
    double vta_iq_cycles_per_sample = 2.0;
    double vta_idwt53_cycles_per_sample = 4.0;
    double vta_idwt97_cycles_per_sample = 10.0;
    // Shared-object housekeeping per stored/fetched sample (tile management
    // inside the HW/SW Shared Object — the arbitration workload of model 5).
    double so_handling_ns_per_sample = 4.0;

    [[nodiscard]] sim::time cycles(double per_sample, std::uint64_t samples,
                                   sim::time clk) const
    {
        return sim::time::ps(static_cast<std::int64_t>(
            per_sample * static_cast<double>(samples) * static_cast<double>(clk.to_ps()) + 0.5));
    }
};

}  // namespace decoder
