// decoder/decoder.hpp — umbrella header for the JPEG 2000 case-study models.
#pragma once

#include "models.hpp"    // IWYU pragma: export
#include "timing.hpp"    // IWYU pragma: export
#include "workload.hpp"  // IWYU pragma: export
