// decoder/models.hpp — the nine model versions of the paper's case study.
//
// Application Layer (Figure 3, Table 1 top half):
//   v1  — SW only: the whole decoder as one software task.
//   v2  — HW/SW, not parallel: SW task + one Shared Object implementing
//         IQ + IDWT as a blocking co-processor.
//   v3  — HW/SW parallel: tile pipeline; the Shared Object stores/transfers
//         tiles and performs IQ; three HW blocks (IDWT2D control, IDWT53,
//         IDWT97) exchange parameters through a second Shared Object.
//   v4  — SW parallel: four software tasks arithmetic-decode disjoint tiles
//         (structure of v2 otherwise).
//   v5  — SW & HW/SW parallel: v3 with four software tasks (the HW/SW Shared
//         Object then serves seven clients).
//
// Virtual Target Architecture (Table 1 bottom half):
//   v6a — v3 mapped: SW on one processor, all HW/SW-SO links on an OPB bus,
//         explicit block-RAM tile store, serialised transfers.
//   v6b — v6a, but the IDWT hardware reaches the Shared Object through
//         dedicated point-to-point channels.
//   v7a — v5 mapped (four processors), HW/SW SO on the bus only.
//   v7b — v7a with the IDWT P2P channels of v6b.
//
// Every model performs the *real* decode (the output image is checked
// against the reference decode), while simulated time comes from the
// back-annotated EET blocks, channel models and memory models.
#pragma once

#include "timing.hpp"
#include "workload.hpp"

#include <osss/osss.hpp>

#include <string>
#include <vector>

namespace decoder {

enum class model_version { v1, v2, v3, v4, v5, v6a, v6b, v7a, v7b };

[[nodiscard]] constexpr const char* version_name(model_version v) noexcept
{
    switch (v) {
        case model_version::v1: return "1";
        case model_version::v2: return "2";
        case model_version::v3: return "3";
        case model_version::v4: return "4";
        case model_version::v5: return "5";
        case model_version::v6a: return "6a";
        case model_version::v6b: return "6b";
        case model_version::v7a: return "7a";
        case model_version::v7b: return "7b";
    }
    return "?";
}

[[nodiscard]] constexpr bool is_vta(model_version v) noexcept
{
    return v == model_version::v6a || v == model_version::v6b ||
           v == model_version::v7a || v == model_version::v7b;
}

/// One Table 1 cell pair plus validation and channel diagnostics.
struct model_result {
    model_version version{};
    bool lossy = false;
    sim::time decode_time{};  ///< total time to decode all tiles
    sim::time idwt_time{};    ///< summed IDWT service time over all tiles
    bool image_ok = false;    ///< decoded output equals the reference decode

    // Diagnostics (VTA models; zero on the application layer).
    std::uint64_t bus_transactions = 0;
    sim::time bus_wait{};
    std::uint64_t so_calls = 0;
};

/// Free-form model configuration (the knobs behind the named versions) —
/// exposed for the ablation benches.
struct model_config {
    bool vta = false;         ///< cycle-accurate channels/memories/processors
    int sw_tasks = 1;         ///< parallel arithmetic-decoder tasks
    bool pipelined = false;   ///< tile pipeline vs blocking co-processor
    bool hw_modules = false;  ///< IDWT2D/IDWT53/IDWT97 blocks + params SO
    bool idwt_p2p = false;    ///< IDWT↔SO links on P2P channels (else bus)
    bool use_plb = false;     ///< shared bus is a 64-bit pipelined PLB, not OPB
    int bus_width_bits = 32;
    std::size_t bus_burst_bytes = 256;   ///< RMI serialisation chunk size
    int bram_ports = 1;                  ///< tile-store block-RAM ports (1 or 2)
    double cpu_mem_fraction = 0.12;      ///< CPU bus load while executing
    osss::scheduling_policy bus_policy = osss::scheduling_policy::priority;
};

/// The configuration behind a named model version.
[[nodiscard]] model_config config_for(model_version v) noexcept;

/// Simulate an arbitrary configuration (ablation entry point).
[[nodiscard]] model_result run_custom_model(const workload& wl, bool lossy,
                                            const model_config& cfg);

/// Simulate one model version on `wl`.
[[nodiscard]] model_result run_model(const workload& wl, model_version v, bool lossy);

/// All nine versions in paper order.
[[nodiscard]] std::vector<model_result> run_all_models(const workload& wl, bool lossy);

/// Structural inventory of a model version (input to the FOSSY platform
/// generation of Figure 4).
[[nodiscard]] osss::design describe_model(model_version v);

}  // namespace decoder
