#include "timing.hpp"

namespace decoder {

sw_timing sw_timing::calibrate(const mode_data& m, bool lossy)
{
    const stage_profile& p = lossy ? k_profile_lossy : k_profile_lossless;
    // Mean work of one tile.
    double mean_samples = 0;
    for (const auto& w : m.per_tile) mean_samples += static_cast<double>(w.samples);
    mean_samples /= static_cast<double>(m.per_tile.size());
    const double mean_decisions = static_cast<double>(m.mean_decisions_per_tile);

    // Anchor: arithmetic decoding of the mean tile takes 180 ms; the other
    // stages follow from the Figure 1 shares.
    const double total_ns_per_tile = k_arith_ms_per_tile * 1e6 / p.arith;
    sw_timing t;
    t.ns_per_mq_decision = k_arith_ms_per_tile * 1e6 / mean_decisions;
    t.ns_per_iq_sample = total_ns_per_tile * p.iq / mean_samples;
    t.ns_per_idwt_sample = total_ns_per_tile * p.idwt / mean_samples;
    t.ns_per_ict_sample = total_ns_per_tile * p.ict / mean_samples;
    t.ns_per_dc_sample = total_ns_per_tile * p.dc / mean_samples;
    return t;
}

}  // namespace decoder
