#include "workload.hpp"

namespace decoder {

namespace {

mode_data build_mode(const j2k::image& img, const j2k::codec_params& p)
{
    mode_data m;
    m.codestream = j2k::encode(img, p);
    const j2k::decoder dec{m.codestream};
    // Profiling decode: count MQ decisions per tile.
    std::uint64_t total = 0;
    for (int t = 0; t < dec.tile_count(); ++t) {
        j2k::tier1_stats st;
        (void)dec.entropy_decode(t, &st);
        tile_work w;
        w.mq_decisions = st.mq_decisions;
        const auto grid = dec.tiles();
        w.samples = static_cast<std::uint64_t>(grid[static_cast<std::size_t>(t)].width) *
                    static_cast<std::uint64_t>(grid[static_cast<std::size_t>(t)].height) *
                    static_cast<std::uint64_t>(dec.info().components);
        m.per_tile.push_back(w);
        total += st.mq_decisions;
    }
    m.mean_decisions_per_tile = total / static_cast<std::uint64_t>(dec.tile_count());
    m.expected = dec.decode_all();
    return m;
}

}  // namespace

workload workload::standard(int tiles_per_side, int tile_size, std::uint32_t seed)
{
    workload w;
    const int dim = tiles_per_side * tile_size;
    w.original_ = j2k::make_test_image(dim, dim, 3, 8, seed);

    j2k::codec_params pl;
    pl.tile_width = tile_size;
    pl.tile_height = tile_size;
    pl.mode = j2k::wavelet::w5_3;
    pl.levels = 3;
    w.lossless_ = build_mode(w.original_, pl);

    j2k::codec_params py = pl;
    py.mode = j2k::wavelet::w9_7;
    py.quant.base_step = 1.0 / 64.0;
    w.lossy_ = build_mode(w.original_, py);
    return w;
}

}  // namespace decoder
