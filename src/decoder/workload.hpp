// decoder/workload.hpp — the case-study workload of the paper's Table 1:
// an image decoded as 16 tiles with 3 components, in lossless (IDWT 5/3) and
// lossy (IDWT 9/7) mode.
//
// The workload owns the encoded codestreams, the expected decoder outputs
// (for validating that every model version actually decodes the image), and
// per-tile work counts measured from a profiling decode — the numbers the
// execution-time model is back-annotated from.
#pragma once

#include <j2k/j2k.hpp>

#include <cstdint>
#include <vector>

namespace decoder {

/// Work performed decoding one tile (drives the timing back-annotation).
struct tile_work {
    std::uint64_t mq_decisions = 0;
    std::uint64_t samples = 0;  ///< tile width × height × components
};

struct mode_data {
    std::vector<std::uint8_t> codestream;
    j2k::image expected;                 ///< reference decode of the codestream
    std::vector<tile_work> per_tile;     ///< profiling counts, one per tile
    std::uint64_t mean_decisions_per_tile = 0;
};

class workload {
public:
    /// The paper's configuration: 16 tiles (4×4 of 64×64), 3 components.
    [[nodiscard]] static workload standard(int tiles_per_side = 4, int tile_size = 64,
                                           std::uint32_t seed = 2008);

    [[nodiscard]] const j2k::image& original() const noexcept { return original_; }
    [[nodiscard]] const mode_data& lossless() const noexcept { return lossless_; }
    [[nodiscard]] const mode_data& lossy() const noexcept { return lossy_; }
    [[nodiscard]] const mode_data& mode(bool lossy_mode) const noexcept
    {
        return lossy_mode ? lossy_ : lossless_;
    }
    [[nodiscard]] int tile_count() const noexcept
    {
        return static_cast<int>(lossless_.per_tile.size());
    }

private:
    j2k::image original_;
    mode_data lossless_;
    mode_data lossy_;
};

}  // namespace decoder
