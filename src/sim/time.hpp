// sim/time.hpp — simulated-time type for the discrete-event kernel.
//
// Plays the role of SystemC's sc_time: an absolute point (or duration) on the
// simulated time axis with picosecond resolution stored in a 64-bit signed
// integer.  At 1 ps resolution this covers ~106 days of simulated time, far
// beyond any model in this repository.
#pragma once

#include <compare>
#include <cstdint>
#include <ostream>
#include <string>

namespace sim {

/// A duration / point on the simulated time axis.  Resolution: 1 picosecond.
class time {
public:
    /// Zero time (also the default).
    constexpr time() noexcept = default;

    // -- named constructors ------------------------------------------------
    [[nodiscard]] static constexpr time ps(std::int64_t v) noexcept { return time{v}; }
    [[nodiscard]] static constexpr time ns(std::int64_t v) noexcept { return time{v * 1'000}; }
    [[nodiscard]] static constexpr time us(std::int64_t v) noexcept { return time{v * 1'000'000}; }
    [[nodiscard]] static constexpr time ms(std::int64_t v) noexcept { return time{v * 1'000'000'000}; }
    [[nodiscard]] static constexpr time sec(std::int64_t v) noexcept { return time{v * 1'000'000'000'000}; }

    /// Fractional helpers (useful for clock periods, e.g. 10.5 ns).
    [[nodiscard]] static constexpr time ns_f(double v) noexcept
    {
        return time{static_cast<std::int64_t>(v * 1'000.0 + (v >= 0 ? 0.5 : -0.5))};
    }

    /// Largest representable time; used as "run forever" bound.
    [[nodiscard]] static constexpr time max() noexcept { return time{INT64_MAX}; }
    [[nodiscard]] static constexpr time zero() noexcept { return time{0}; }

    // -- observers ----------------------------------------------------------
    [[nodiscard]] constexpr std::int64_t to_ps() const noexcept { return ps_; }
    [[nodiscard]] constexpr double to_ns() const noexcept { return static_cast<double>(ps_) / 1e3; }
    [[nodiscard]] constexpr double to_us() const noexcept { return static_cast<double>(ps_) / 1e6; }
    [[nodiscard]] constexpr double to_ms() const noexcept { return static_cast<double>(ps_) / 1e9; }
    [[nodiscard]] constexpr double to_sec() const noexcept { return static_cast<double>(ps_) / 1e12; }
    [[nodiscard]] constexpr bool is_zero() const noexcept { return ps_ == 0; }

    /// Render with an auto-selected unit, e.g. "180 ms" or "12.5 ns".
    [[nodiscard]] std::string str() const;

    // -- arithmetic ----------------------------------------------------------
    friend constexpr time operator+(time a, time b) noexcept { return time{a.ps_ + b.ps_}; }
    friend constexpr time operator-(time a, time b) noexcept { return time{a.ps_ - b.ps_}; }
    friend constexpr time operator*(time a, std::int64_t k) noexcept { return time{a.ps_ * k}; }
    friend constexpr time operator*(std::int64_t k, time a) noexcept { return time{a.ps_ * k}; }
    friend constexpr time operator/(time a, std::int64_t k) noexcept { return time{a.ps_ / k}; }
    /// Ratio of two durations (e.g. cycle count = span / period).
    friend constexpr std::int64_t operator/(time a, time b) noexcept { return a.ps_ / b.ps_; }

    constexpr time& operator+=(time o) noexcept { ps_ += o.ps_; return *this; }
    constexpr time& operator-=(time o) noexcept { ps_ -= o.ps_; return *this; }

    friend constexpr auto operator<=>(time, time) noexcept = default;

    friend std::ostream& operator<<(std::ostream& os, time t) { return os << t.str(); }

private:
    explicit constexpr time(std::int64_t p) noexcept : ps_{p} {}
    std::int64_t ps_ = 0;
};

}  // namespace sim
