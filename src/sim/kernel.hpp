// sim/kernel.hpp — discrete-event simulation kernel.
//
// This is the SystemC-kernel substitute the whole repository runs on.  It
// implements the classic evaluate / update / delta-notification cycle:
//
//   1. Evaluate: resume every runnable process coroutine.
//   2. Update:   commit pending signal writes (update requests).
//   3. Delta:    processes woken by notifications/value-changes form the next
//                delta cycle at the same simulated time.
//   4. Advance:  when no delta work remains, jump to the earliest timed event.
//
// Processes are top-level coroutines (`sim::process`); all blocking
// primitives (`delay`, `event::wait`, fifo/mutex operations, OSSS calls) are
// awaitables that park the current coroutine inside kernel queues.
#pragma once

#include "task.hpp"
#include "time.hpp"

#include <obs/trace.hpp>

#include <coroutine>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

namespace sim {

class kernel;
class event;

namespace detail {

/// Promise for top-level processes.  A process is eagerly suspended at its
/// initial suspend point; kernel::spawn schedules its first resume.
struct process_promise;

}  // namespace detail

/// Handle type returned by process coroutines.  The kernel takes ownership of
/// the coroutine frame when the process is spawned.
class process {
public:
    using promise_type = detail::process_promise;

    process() noexcept = default;
    explicit process(std::coroutine_handle<promise_type> h) noexcept : h_{h} {}

    [[nodiscard]] std::coroutine_handle<promise_type> handle() const noexcept { return h_; }

private:
    std::coroutine_handle<promise_type> h_{};
};

/// Interface implemented by primitives (signals) that need an update phase.
class update_listener {
public:
    virtual ~update_listener() = default;
    /// Commit the pending value; called by the kernel in the update phase.
    virtual void update() = 0;
};

/// The simulation kernel / scheduler.  Not thread-safe: one kernel per thread.
class kernel {
public:
    kernel() = default;
    kernel(const kernel&) = delete;
    kernel& operator=(const kernel&) = delete;
    ~kernel();

    /// Register and start a process coroutine.  The process becomes runnable
    /// in the first delta cycle at the current simulation time.
    void spawn(process p, std::string name = "process");

    /// Run until no events remain or simulated time would exceed `until`.
    /// Returns the time at which the simulation stopped.
    time run(time until = time::max());

    /// Current simulated time.
    [[nodiscard]] time now() const noexcept { return now_; }
    /// Delta-cycle counter at the current time (diagnostics).
    [[nodiscard]] std::uint64_t delta_count() const noexcept { return delta_; }
    /// Total number of coroutine resumptions performed (diagnostics).
    [[nodiscard]] std::uint64_t activations() const noexcept { return activations_; }

    /// Kernel owning the coroutine currently being resumed; null outside run().
    /// Defined out of line: inlining the thread_local read into a coroutine
    /// body lets GCC fold the TLS address computation into the coroutine
    /// frame, which UBSan rejects as a null load.
    [[nodiscard]] static kernel* current() noexcept;

    /// Request termination at the end of the current delta cycle.
    void stop() noexcept { stop_requested_ = true; }
    [[nodiscard]] bool stop_requested() const noexcept { return stop_requested_; }

    /// Awaitable: suspend the current coroutine for duration `d`.
    [[nodiscard]] auto wait_for(time d) noexcept
    {
        struct awaiter {
            kernel* k;
            time at;
            [[nodiscard]] bool await_ready() const noexcept { return false; }
            void await_suspend(std::coroutine_handle<> h) { k->schedule_at(at, h); }
            void await_resume() const noexcept {}
        };
        return awaiter{this, now_ + d};
    }

    /// Awaitable: yield to the next delta cycle at the same time.
    [[nodiscard]] auto next_delta() noexcept
    {
        struct awaiter {
            kernel* k;
            [[nodiscard]] bool await_ready() const noexcept { return false; }
            void await_suspend(std::coroutine_handle<> h) { k->schedule_delta(h); }
            void await_resume() const noexcept {}
        };
        return awaiter{this};
    }

    // -- scheduling interface used by events / signals -----------------------
    void schedule_at(time t, std::coroutine_handle<> h);
    void schedule_delta(std::coroutine_handle<> h);
    void request_update(update_listener& l);

private:
    friend struct detail::process_promise;

    struct timed_item {
        time t;
        std::uint64_t seq;  // FIFO order among equal times
        std::coroutine_handle<> h;
        [[nodiscard]] bool operator>(const timed_item& o) const noexcept
        {
            return t > o.t || (t == o.t && seq > o.seq);
        }
    };

    void resume(std::coroutine_handle<> h);
    void reap_finished();
    /// Interned process name for a handle; "coroutine" for unnamed ones.
    [[nodiscard]] const char* trace_name_of(std::coroutine_handle<> h) const noexcept;

    time now_{};
    std::uint64_t delta_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t activations_ = 0;
    bool stop_requested_ = false;

    std::deque<std::coroutine_handle<>> runnable_;
    std::priority_queue<timed_item, std::vector<timed_item>, std::greater<>> timed_;
    std::vector<update_listener*> updates_;

    struct process_record {
        std::coroutine_handle<> h;
        std::string name;
        bool finished = false;
    };
    std::deque<process_record> processes_;  // deque: stable addresses for finished_flag
    /// Interned span names per process handle (filled at spawn); lets the
    /// tracer label each activation without touching the std::string name.
    std::unordered_map<void*, const char*> trace_names_;

    static thread_local kernel* current_;
};

namespace detail {

struct process_promise {
    kernel* owner = nullptr;  // set by kernel::spawn
    bool* finished_flag = nullptr;
    std::exception_ptr exception{};

    [[nodiscard]] process get_return_object() noexcept
    {
        return process{std::coroutine_handle<process_promise>::from_promise(*this)};
    }
    [[nodiscard]] std::suspend_always initial_suspend() noexcept { return {}; }

    struct final_awaiter {
        [[nodiscard]] bool await_ready() const noexcept { return false; }
        void await_suspend(std::coroutine_handle<process_promise> h) noexcept
        {
            if (h.promise().finished_flag) *h.promise().finished_flag = true;
        }
        void await_resume() const noexcept {}
    };
    [[nodiscard]] final_awaiter final_suspend() noexcept { return {}; }

    void return_void() noexcept {}
    void unhandled_exception() noexcept { exception = std::current_exception(); }
};

}  // namespace detail

/// Convenience: awaitable that suspends the current process for `d`.
/// Must be used from a coroutine resumed by a kernel.
[[nodiscard]] inline auto delay(time d)
{
    return kernel::current()->wait_for(d);
}

/// One-slot notification primitive, analogous to sc_event.
///
/// `notify()` wakes all current waiters in the *next delta cycle*;
/// `notify(d)` wakes them at now+d.  Waiters re-arm by awaiting again.
class event {
public:
    explicit event(std::string name = "event") : name_{std::move(name)} {}
    event(const event&) = delete;
    event& operator=(const event&) = delete;

    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    /// Awaitable: park the current coroutine until the next notification.
    [[nodiscard]] auto wait() noexcept
    {
        struct awaiter {
            event* e;
            [[nodiscard]] bool await_ready() const noexcept { return false; }
            void await_suspend(std::coroutine_handle<> h) { e->waiters_.push_back(h); }
            void await_resume() const noexcept {}
        };
        return awaiter{this};
    }

    /// Wake all waiters in the next delta cycle.
    void notify()
    {
        trace_notify();
        auto* k = kernel::current();
        for (auto h : waiters_) k->schedule_delta(h);
        waiters_.clear();
    }

    /// Wake all waiters at now + d.
    void notify(time d)
    {
        trace_notify();
        auto* k = kernel::current();
        for (auto h : waiters_) k->schedule_at(k->now() + d, h);
        waiters_.clear();
    }

    [[nodiscard]] std::size_t waiter_count() const noexcept { return waiters_.size(); }

private:
    /// Instant trace event per notification, labelled with the event's name
    /// (interned once, on the first traced notify).
    void trace_notify()
    {
#if OBS_TRACING_ENABLED
        if (obs::tracing_enabled()) {
            if (!trace_name_) trace_name_ = obs::tracer::instance().intern(name_);
            obs::tracer::instance().instant("sim.event", trace_name_);
        }
#endif
    }

    std::string name_;
    const char* trace_name_ = nullptr;
    std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace sim
