#include "kernel.hpp"

#include <stdexcept>

namespace sim {

thread_local kernel* kernel::current_ = nullptr;

kernel* kernel::current() noexcept { return current_; }

kernel::~kernel()
{
    // Destroy all coroutine frames still owned by the kernel.  Finished
    // coroutines are suspended at their final suspend point; unfinished ones
    // are parked in a queue — destroying the handle unwinds the frame.
    for (auto& rec : processes_) {
        if (rec.h) rec.h.destroy();
    }
}

void kernel::spawn(process p, std::string name)
{
    auto h = p.handle();
    if (!h) throw std::invalid_argument{"kernel::spawn: empty process"};
    processes_.push_back({h, std::move(name), false});
    auto& rec = processes_.back();
    h.promise().owner = this;
    h.promise().finished_flag = &rec.finished;  // deque ⇒ address stays valid
#if OBS_TRACING_ENABLED
    // Spawn is cold: intern eagerly so later activations can label their
    // spans even when tracing is armed mid-run.
    trace_names_[h.address()] = obs::tracer::instance().intern(rec.name);
#endif
    schedule_delta(rec.h);
}

const char* kernel::trace_name_of(std::coroutine_handle<> h) const noexcept
{
    const auto it = trace_names_.find(h.address());
    return it != trace_names_.end() ? it->second : "coroutine";
}

void kernel::schedule_at(time t, std::coroutine_handle<> h)
{
    timed_.push(timed_item{t, seq_++, h});
}

void kernel::schedule_delta(std::coroutine_handle<> h)
{
    runnable_.push_back(h);
}

void kernel::request_update(update_listener& l)
{
    updates_.push_back(&l);
}

void kernel::resume(std::coroutine_handle<> h)
{
    if (!h || h.done()) return;  // process may have been destroyed/finished
    ++activations_;
#if OBS_TRACING_ENABLED
    // One span per process activation: wall-clock time spent inside this
    // resume, labelled with the process name.  This is the host-profiling
    // view — where a VTA simulation actually burns CPU.
    const char* span_name = nullptr;
    if (obs::tracing_enabled()) {
        span_name = trace_name_of(h);
        obs::tracer::instance().begin("sim", span_name);
    }
#endif
    kernel* prev = current_;
    current_ = this;
    h.resume();
    current_ = prev;
#if OBS_TRACING_ENABLED
    if (span_name) obs::tracer::instance().end("sim", span_name);
#endif
}

void kernel::reap_finished()
{
    for (auto& rec : processes_) {
        if (rec.finished && rec.h) {
            auto ph = std::coroutine_handle<detail::process_promise>::from_address(rec.h.address());
            if (ph.promise().exception) {
                auto ex = ph.promise().exception;
                rec.h.destroy();
                rec.h = nullptr;
                std::rethrow_exception(ex);
            }
            rec.h.destroy();
            rec.h = nullptr;
        }
    }
}

time kernel::run(time until)
{
    // Make this kernel "current" for the whole run so that primitives invoked
    // outside a coroutine resume (e.g. event::notify from the update phase)
    // can still reach the scheduler.
    kernel* prev = current_;
    current_ = this;
    struct restore {
        kernel** slot;
        kernel* prev;
        ~restore() { *slot = prev; }
    } r{&current_, prev};

    while (!stop_requested_) {
        // Delta loop at the current time point.
        while (!runnable_.empty() && !stop_requested_) {
            std::deque<std::coroutine_handle<>> batch;
            batch.swap(runnable_);
            for (auto h : batch) resume(h);

            // Update phase: commit signal writes; value changes notify events
            // whose waiters land in runnable_ (the next delta cycle).
            std::vector<update_listener*> ups;
            ups.swap(updates_);
            for (auto* u : ups) u->update();

            reap_finished();
            ++delta_;
        }
        if (stop_requested_ || timed_.empty()) break;

        const time next = timed_.top().t;
        if (next > until) break;
#if OBS_TRACING_ENABLED
        // Counter tracks at each time advance: how many delta cycles the
        // finished time point took, and simulated time itself — plotting
        // sim-time against the wall-clock x-axis shows simulation speed.
        if (obs::tracing_enabled()) {
            auto& tr = obs::tracer::instance();
            tr.counter("sim", "sim_delta_cycles", static_cast<std::int64_t>(delta_));
            tr.counter("sim", "sim_time_ps", next.to_ps());
        }
#endif
        now_ = next;
        delta_ = 0;
        while (!timed_.empty() && timed_.top().t == now_) {
            runnable_.push_back(timed_.top().h);
            timed_.pop();
        }
    }
    return now_;
}

}  // namespace sim
