// sim/signal.hpp — delta-cycle signal, analogous to sc_signal<T>.
//
// Writes are deferred: the new value becomes visible only in the update phase
// at the end of the current delta cycle, and waiters on `value_changed()` run
// in the following delta.  This gives the usual SystemC race-free semantics
// for communicating between concurrently evaluated processes.
#pragma once

#include "kernel.hpp"

#include <string>
#include <utility>

namespace sim {

template <typename T>
class signal final : public update_listener {
public:
    explicit signal(std::string name = "signal", T initial = T{})
        : name_{std::move(name)},
          cur_{initial},
          next_{initial},
          changed_{name_ + ".changed"}
    {
    }

    [[nodiscard]] const T& read() const noexcept { return cur_; }

    /// Schedule `v` to become the visible value in the update phase.
    void write(const T& v)
    {
        next_ = v;
        if (!update_pending_) {
            update_pending_ = true;
            kernel::current()->request_update(*this);
        }
    }

    /// Event fired (next delta) whenever a committed write changed the value.
    [[nodiscard]] event& value_changed() noexcept { return changed_; }

    /// Awaitable: suspend until the value changes.
    [[nodiscard]] auto wait_change() noexcept { return changed_.wait(); }

    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    void update() override
    {
        update_pending_ = false;
        if (!(next_ == cur_)) {
            cur_ = next_;
            changed_.notify();
        }
    }

private:
    std::string name_;
    T cur_;
    T next_;
    bool update_pending_ = false;
    event changed_;
};

}  // namespace sim
