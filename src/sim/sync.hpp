// sim/sync.hpp — blocking synchronisation primitives for simulated processes.
//
// `mutex` and `semaphore` park waiting coroutines in FIFO order; `fifo<T>` is
// the bounded channel analogous to sc_fifo<T>.  All blocking operations are
// `sim::task`s so they compose with the rest of the coroutine call chain.
#pragma once

#include "kernel.hpp"
#include "task.hpp"

#include <cstddef>
#include <deque>
#include <string>
#include <utility>

namespace sim {

/// FIFO-fair mutex.  Hold time is simulated time; no host threads involved.
class mutex {
public:
    explicit mutex(std::string name = "mutex") : free_{name + ".free"} {}

    [[nodiscard]] task<void> lock()
    {
        while (locked_) co_await free_.wait();
        locked_ = true;
    }

    void unlock()
    {
        locked_ = false;
        free_.notify();
    }

    [[nodiscard]] bool locked() const noexcept { return locked_; }

private:
    bool locked_ = false;
    event free_;
};

/// Counting semaphore with FIFO wakeup.
class semaphore {
public:
    explicit semaphore(int initial, std::string name = "semaphore")
        : count_{initial}, posted_{name + ".posted"}
    {
    }

    [[nodiscard]] task<void> acquire()
    {
        while (count_ == 0) co_await posted_.wait();
        --count_;
    }

    void release()
    {
        ++count_;
        posted_.notify();
    }

    [[nodiscard]] int value() const noexcept { return count_; }

private:
    int count_;
    event posted_;
};

/// Bounded blocking FIFO channel (sc_fifo analogue).
template <typename T>
class fifo {
public:
    explicit fifo(std::size_t capacity = 16, std::string name = "fifo")
        : capacity_{capacity},
          written_{name + ".written"},
          read_{name + ".read"}
    {
    }

    [[nodiscard]] task<void> write(T v)
    {
        while (buf_.size() >= capacity_) co_await read_.wait();
        buf_.push_back(std::move(v));
        written_.notify();
    }

    [[nodiscard]] task<T> read()
    {
        while (buf_.empty()) co_await written_.wait();
        T v = std::move(buf_.front());
        buf_.pop_front();
        read_.notify();
        co_return v;
    }

    /// Non-blocking variants.
    [[nodiscard]] bool try_write(T v)
    {
        if (buf_.size() >= capacity_) return false;
        buf_.push_back(std::move(v));
        written_.notify();
        return true;
    }

    [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
    [[nodiscard]] bool empty() const noexcept { return buf_.empty(); }

private:
    std::size_t capacity_;
    std::deque<T> buf_;
    event written_;
    event read_;
};

}  // namespace sim
