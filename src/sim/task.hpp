// sim/task.hpp — composable coroutine type for simulated processes.
//
// `sim::task<T>` is the unit of blocking behaviour inside the kernel: every
// operation that can consume simulated time (a wait, a shared-object call, a
// bus transaction) is a task that the caller `co_await`s.  Tasks use symmetric
// transfer so arbitrarily deep call chains suspend and resume as a single
// logical process, mirroring the blocking method-call semantics of OSSS.
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <utility>

namespace sim {

template <typename T = void>
class [[nodiscard]] task;

namespace detail {

struct task_promise_base {
    std::coroutine_handle<> continuation{};  // resumed when the task finishes
    std::exception_ptr exception{};

    struct final_awaiter {
        [[nodiscard]] bool await_ready() const noexcept { return false; }
        template <typename Promise>
        [[nodiscard]] std::coroutine_handle<>
        await_suspend(std::coroutine_handle<Promise> h) noexcept
        {
            auto cont = h.promise().continuation;
            return cont ? cont : std::noop_coroutine();
        }
        void await_resume() const noexcept {}
    };

    [[nodiscard]] std::suspend_always initial_suspend() noexcept { return {}; }
    [[nodiscard]] final_awaiter final_suspend() noexcept { return {}; }
    void unhandled_exception() noexcept { exception = std::current_exception(); }
};

template <typename T>
struct task_promise final : task_promise_base {
    // Deferred-constructed result; alignas/union kept simple via optional-like
    // manual storage would be overkill here: require default-constructible or
    // store via union.  We store in a union to support non-default-constructible T.
    union {
        T value;
    };
    bool has_value = false;

    task_promise() noexcept {}
    ~task_promise()
    {
        if (has_value) value.~T();
    }

    [[nodiscard]] task<T> get_return_object() noexcept;

    template <typename U>
    void return_value(U&& v)
    {
        ::new (static_cast<void*>(&value)) T(std::forward<U>(v));
        has_value = true;
    }

    [[nodiscard]] T consume()
    {
        if (exception) std::rethrow_exception(exception);
        assert(has_value && "task finished without a value");
        return std::move(value);
    }
};

template <>
struct task_promise<void> final : task_promise_base {
    [[nodiscard]] task<void> get_return_object() noexcept;
    void return_void() noexcept {}
    void consume() const
    {
        if (exception) std::rethrow_exception(exception);
    }
};

}  // namespace detail

/// A lazily-started coroutine producing a `T`.  Must be `co_await`ed exactly
/// once (by a process or another task); ownership of the frame lives in the
/// task object and is released on destruction.
template <typename T>
class [[nodiscard]] task {
public:
    using promise_type = detail::task_promise<T>;

    task() noexcept = default;
    explicit task(std::coroutine_handle<promise_type> h) noexcept : h_{h} {}
    task(task&& o) noexcept : h_{std::exchange(o.h_, nullptr)} {}
    task& operator=(task&& o) noexcept
    {
        if (this != &o) {
            destroy();
            h_ = std::exchange(o.h_, nullptr);
        }
        return *this;
    }
    task(const task&) = delete;
    task& operator=(const task&) = delete;
    ~task() { destroy(); }

    [[nodiscard]] bool valid() const noexcept { return h_ != nullptr; }
    [[nodiscard]] bool done() const noexcept { return !h_ || h_.done(); }

    /// Awaiting a task starts it (symmetric transfer) and resumes the awaiter
    /// once the task completes.
    [[nodiscard]] auto operator co_await() && noexcept
    {
        struct awaiter {
            std::coroutine_handle<promise_type> h;
            [[nodiscard]] bool await_ready() const noexcept { return !h || h.done(); }
            [[nodiscard]] std::coroutine_handle<>
            await_suspend(std::coroutine_handle<> awaiting) noexcept
            {
                h.promise().continuation = awaiting;
                return h;
            }
            T await_resume() { return h.promise().consume(); }
        };
        return awaiter{h_};
    }

private:
    void destroy() noexcept
    {
        if (h_) {
            h_.destroy();
            h_ = nullptr;
        }
    }
    std::coroutine_handle<promise_type> h_{};
};

namespace detail {

template <typename T>
task<T> task_promise<T>::get_return_object() noexcept
{
    return task<T>{std::coroutine_handle<task_promise<T>>::from_promise(*this)};
}

inline task<void> task_promise<void>::get_return_object() noexcept
{
    return task<void>{std::coroutine_handle<task_promise<void>>::from_promise(*this)};
}

}  // namespace detail

}  // namespace sim
