// sim/clock.hpp — free-running clock source.
//
// Models a clock as a lightweight period + phase bookkeeping object rather
// than a toggling process: cycle-accurate models await `rising_edge()` or
// advance whole cycles with `cycles(n)`.  This keeps kernel load proportional
// to *interesting* activity, not to raw clock ticks, while preserving
// cycle-exact timestamps (edges always land on multiples of the period).
#pragma once

#include "kernel.hpp"
#include "time.hpp"

#include <string>
#include <utility>

namespace sim {

class clock {
public:
    clock(std::string name, time period) : name_{std::move(name)}, period_{period} {}

    [[nodiscard]] time period() const noexcept { return period_; }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] double frequency_mhz() const noexcept { return 1e6 / period_.to_ps(); }

    /// Cycle index of the most recent edge at or before `t`.
    [[nodiscard]] std::int64_t cycle_at(time t) const noexcept { return t / period_; }

    /// Time of the next rising edge strictly after `t`.
    [[nodiscard]] time next_edge_after(time t) const noexcept
    {
        return period_ * (t / period_ + 1);
    }

    /// Awaitable: suspend until the next rising edge.
    [[nodiscard]] auto rising_edge() const
    {
        auto* k = kernel::current();
        return k->wait_for(next_edge_after(k->now()) - k->now());
    }

    /// Awaitable: advance exactly n clock periods (n may be 0).
    [[nodiscard]] auto cycles(std::int64_t n) const
    {
        return kernel::current()->wait_for(period_ * n);
    }

private:
    std::string name_;
    time period_;
};

}  // namespace sim
