// sim/sim.hpp — umbrella header for the discrete-event simulation kernel.
#pragma once

#include "clock.hpp"    // IWYU pragma: export
#include "kernel.hpp"   // IWYU pragma: export
#include "signal.hpp"   // IWYU pragma: export
#include "sync.hpp"     // IWYU pragma: export
#include "task.hpp"     // IWYU pragma: export
#include "time.hpp"     // IWYU pragma: export
#include "trace.hpp"    // IWYU pragma: export
