#include "trace.hpp"

#include <cstdio>
#include <stdexcept>

namespace sim {

namespace {

/// VCD identifier codes: printable ASCII 33..126, shortest-first.
std::string id_for(int index)
{
    std::string id;
    int n = index;
    do {
        id.push_back(static_cast<char>(33 + n % 94));
        n = n / 94 - 1;
    } while (n >= 0);
    return id;
}

std::string to_binary(std::uint64_t v, int width)
{
    std::string s(static_cast<std::size_t>(width), '0');
    for (int i = 0; i < width; ++i)
        if (v & (1ull << i)) s[static_cast<std::size_t>(width - 1 - i)] = '1';
    return s;
}

}  // namespace

vcd_writer::vcd_writer(const std::string& path, const std::string& top)
    : out_{path}, path_{path}, top_{top}
{
    if (!out_) throw std::runtime_error{"vcd_writer: cannot open " + path};
    // Surface I/O errors (disk full, closed pipe) at the write that hit them
    // rather than silently truncating the dump.
    out_.exceptions(std::ios::badbit);
}

vcd_writer::~vcd_writer()
{
    // A destructor must not throw: disarm the stream exceptions, then flush
    // and at least report a truncated dump where flush() would have thrown.
    out_.exceptions(std::ios::goodbit);
    out_.flush();
    if (!out_)
        std::fprintf(stderr, "vcd_writer: WARNING: %s is truncated (write failure)\n",
                     path_.c_str());
}

void vcd_writer::flush()
{
    try {
        out_.flush();
    } catch (const std::ios_base::failure&) {
        throw std::runtime_error{"vcd_writer: write failure flushing " + path_};
    }
    if (!out_) throw std::runtime_error{"vcd_writer: write failure flushing " + path_};
}

int vcd_writer::add_variable(const std::string& name, int width)
{
    if (started_) throw std::logic_error{"vcd_writer: add_variable after start"};
    const int handle = static_cast<int>(vars_.size());
    vars_.push_back({name, id_for(handle), width});
    return handle;
}

void vcd_writer::start()
{
    if (started_) return;
    out_ << "$timescale 1ps $end\n$scope module " << top_ << " $end\n";
    for (const auto& v : vars_)
        out_ << "$var wire " << v.width << ' ' << v.id << ' ' << v.name << " $end\n";
    out_ << "$upscope $end\n$enddefinitions $end\n";
    started_ = true;
}

void vcd_writer::emit_timestamp(time t)
{
    if (t.to_ps() != last_ps_) {
        out_ << '#' << t.to_ps() << '\n';
        last_ps_ = t.to_ps();
    }
}

void vcd_writer::record(int var, std::uint64_t value, time t)
{
    if (!started_) throw std::logic_error{"vcd_writer: record before start"};
    // Checked before the unchanged-value early-return below: a time rollback
    // is a caller bug even when it would not emit anything, and letting it
    // through would silently misorder the dump for the next change.
    if (t.to_ps() < last_ps_)
        throw std::logic_error{"vcd_writer: record at t=" + std::to_string(t.to_ps()) +
                               "ps before already-emitted t=" + std::to_string(last_ps_) +
                               "ps (timestamps must be non-decreasing)"};
    auto& v = vars_.at(static_cast<std::size_t>(var));
    if (v.has_last && v.last == value) return;
    emit_timestamp(t);
    if (v.width == 1)
        out_ << (value ? '1' : '0') << v.id << '\n';
    else
        out_ << 'b' << to_binary(value, v.width) << ' ' << v.id << '\n';
    v.last = value;
    v.has_last = true;
}

}  // namespace sim
