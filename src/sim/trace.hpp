// sim/trace.hpp — minimal VCD (value change dump) trace writer.
//
// Allows inspecting simulated activity (bus grants, FIFO levels, pipeline
// occupancy) in any VCD viewer.  Values are sampled explicitly by the model
// via `record`; the writer handles identifier allocation, the VCD header and
// timestamp ordering.
#pragma once

#include "time.hpp"

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

namespace sim {

class vcd_writer {
public:
    /// Opens `path` for writing; throws std::runtime_error on failure.
    /// Stream errors are armed as exceptions: a write failure (disk full,
    /// closed pipe, ...) surfaces as std::ios_base::failure from the record()
    /// / start() / flush() call that hit it, instead of silently truncating
    /// the trace.
    explicit vcd_writer(const std::string& path, const std::string& top = "top");
    /// Flushes; if the dump could not be fully written, warns on stderr
    /// (destructors must not throw — call flush() to get the exception).
    ~vcd_writer();

    vcd_writer(const vcd_writer&) = delete;
    vcd_writer& operator=(const vcd_writer&) = delete;

    /// Declare an integer variable of `width` bits; returns its handle.
    [[nodiscard]] int add_variable(const std::string& name, int width = 32);

    /// Finish the header.  Must be called once before the first record().
    void start();

    /// Record variable `var` holding `value` at time `t`.  Times must be
    /// non-decreasing across calls; a `t` earlier than an already-emitted
    /// timestamp throws std::logic_error (a misordered VCD renders garbage).
    void record(int var, std::uint64_t value, time t);

    [[nodiscard]] bool started() const noexcept { return started_; }

    /// Push everything to disk and verify the stream; throws
    /// std::runtime_error if any write failed.
    void flush();

private:
    void emit_timestamp(time t);

    struct var_info {
        std::string name;
        std::string id;
        int width;
        std::uint64_t last = ~0ull;
        bool has_last = false;
    };

    std::ofstream out_;
    std::string path_;
    std::string top_;
    std::vector<var_info> vars_;
    bool started_ = false;
    std::int64_t last_ps_ = -1;
};

}  // namespace sim
