#include "time.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace sim {

std::string time::str() const
{
    struct unit {
        std::int64_t div;
        const char* suffix;
    };
    static constexpr std::array<unit, 5> units{{
        {1'000'000'000'000, "s"},
        {1'000'000'000, "ms"},
        {1'000'000, "us"},
        {1'000, "ns"},
        {1, "ps"},
    }};
    if (ps_ == 0) return "0 s";
    for (const auto& u : units) {
        if (std::llabs(ps_) >= u.div) {
            const double v = static_cast<double>(ps_) / static_cast<double>(u.div);
            char buf[48];
            if (ps_ % u.div == 0)
                std::snprintf(buf, sizeof buf, "%lld %s",
                              static_cast<long long>(ps_ / u.div), u.suffix);
            else
                std::snprintf(buf, sizeof buf, "%.3f %s", v, u.suffix);
            return buf;
        }
    }
    return "0 s";
}

}  // namespace sim
