#include "service.hpp"

#include "cache/decoded_cache.hpp"
#include "hash.hpp"

#include <ccsds/ccsds123.hpp>
#include <codec/backend.hpp>
#include <j2k/backend.hpp>
#include <j2k/image.hpp>
#include <j2k/kernels.hpp>
#include <j2k/session.hpp>
#include <obs/obs.hpp>

#include <algorithm>
#include <string>
#include <utility>

namespace runtime {

namespace {

std::uint64_t ns_between(std::chrono::steady_clock::time_point a,
                         std::chrono::steady_clock::time_point b) noexcept
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

}  // namespace

decode_service::decode_service(service_config cfg)
    : cfg_{cfg},
      queue_{cfg.queue_capacity,
             cfg.policy,
             cfg.promote_after,
             level_capacities{cfg.interactive_capacity, cfg.batch_capacity}},
      cache_{cfg.cache_bytes > 0 ? std::make_unique<decoded_cache>(cfg.cache_bytes)
                                 : nullptr},
      pool_{std::make_unique<thread_pool>(cfg.workers)}
{
    // The serving layer guarantees the built-in codecs are registered before
    // any job can name them (idempotent; static-init order plays no part).
    j2k::ensure_backend_registered();
    ccsds::ensure_backend_registered();
    // One arena per worker: jobs in flight never exceed the worker count, so
    // with the pool sized this way acquire() never runs dry in steady state.
    if (cfg_.arena_bytes > 0)
        arenas_ = std::make_unique<arena_pool>(
            static_cast<std::size_t>(pool_->size()), cfg_.arena_bytes);
}

decode_service::~decode_service()
{
    shutdown();
}

void decode_service::settle(job& j, j2k::image&& img)
{
    if (j.settled.exchange(true, std::memory_order_acq_rel)) return;
    if (j.done)
        j.done(std::move(img), nullptr);
    else
        j.promise.set_value(std::move(img));
}

void decode_service::settle(job& j, std::exception_ptr err)
{
    if (j.settled.exchange(true, std::memory_order_acq_rel)) return;
    if (j.on_layer)
        j.on_layer(layer_event{}, std::move(err));
    else if (j.done)
        j.done(j2k::image{}, std::move(err));
    else
        j.promise.set_exception(std::move(err));
}

void decode_service::record_priority_depths()
{
    const std::size_t di = queue_.size(priority::interactive);
    const std::size_t db = queue_.size(priority::batch);
    metrics_.record_queue_depth(priority::interactive, di);
    metrics_.record_queue_depth(priority::batch, db);
    OBS_TRACE_COUNTER("runtime", "queue_depth_interactive", di);
    OBS_TRACE_COUNTER("runtime", "queue_depth_batch", db);
}

std::future<j2k::image> decode_service::submit(std::span<const std::uint8_t> cs,
                                               const decode_options& opt)
{
    OBS_TRACE_SCOPE("runtime", "submit");
    auto j = std::make_unique<job>();
    j->opt = opt;
    j->submitted_at = std::chrono::steady_clock::now();
    if (cfg_.copy_input) {
        j->owned.assign(cs.begin(), cs.end());
        j->bytes = j->owned;
    } else {
        j->bytes = cs;
    }
    auto fut = j->promise.get_future();
    if (admit(std::move(j))) pump(1);
    return fut;
}

std::future<j2k::image> decode_service::submit(std::vector<std::uint8_t>&& bytes,
                                               const decode_options& opt)
{
    OBS_TRACE_SCOPE("runtime", "submit");
    auto j = make_job(std::move(bytes), opt);
    auto fut = j->promise.get_future();
    if (admit(std::move(j))) pump(1);
    return fut;
}

void decode_service::submit_async(std::vector<std::uint8_t>&& bytes,
                                  const decode_options& opt, completion done)
{
    OBS_TRACE_SCOPE("runtime", "submit");
    auto j = make_job(std::move(bytes), opt);
    j->done = std::move(done);
    if (admit(std::move(j))) pump(1);
}

void decode_service::submit_progressive(std::vector<std::uint8_t>&& bytes,
                                        const decode_options& opt,
                                        progressive_completion on_layer)
{
    OBS_TRACE_SCOPE("runtime", "submit");
    auto j = make_job(std::move(bytes), opt);
    j->on_layer = std::move(on_layer);
    if (admit(std::move(j))) pump(1);
}

std::size_t decode_service::submit_batch(std::vector<batch_item> items)
{
    OBS_TRACE_SCOPE("runtime", "submit_batch");
    std::size_t admitted = 0;
    for (auto& it : items) {
        auto j = make_job(std::move(it.bytes), it.opt);
        j->done = std::move(it.done);
        metrics_.on_batched();
        if (admit(std::move(j))) ++admitted;
    }
    if (admitted > 0) pump(admitted);
    return admitted;
}

decode_service::job_ptr decode_service::make_job(std::vector<std::uint8_t>&& bytes,
                                                 const decode_options& opt)
{
    auto j = std::make_unique<job>();
    j->opt = opt;
    j->submitted_at = std::chrono::steady_clock::now();
    j->owned = std::move(bytes);  // ownership transfer: no copy either way
    j->bytes = j->owned;
    return j;
}

bool decode_service::admit(job_ptr j)
{
    metrics_.on_submitted();
    const decode_options opt = j->opt;

    {
        std::lock_guard lk{drain_m_};
        if (stopped_) {
            metrics_.on_rejected(opt.prio);
            settle(*j, std::make_exception_ptr(service_stopped{}));
            return false;
        }
        ++in_flight_;  // admitted (tentatively); undone on rejection
    }

    // The job span tree: an async "job" span over the whole lifetime
    // (admission → future ready) with a nested async "queue_wait" span, both
    // correlated by trace_id so they survive the submit→worker thread hop.
    j->trace_id = obs::tracer::instance().next_id();
    OBS_TRACE_ASYNC_BEGIN("job", "job", j->trace_id);
    OBS_TRACE_ASYNC_BEGIN("job", "queue_wait", j->trace_id);
    [[maybe_unused]] const std::uint64_t id = j->trace_id;

    job_ptr evicted;
    priority evicted_prio = opt.prio;
    const push_result r = queue_.push(std::move(j), opt.prio, &evicted, &evicted_prio);
    metrics_.record_queue_depth(queue_.size());
    OBS_TRACE_COUNTER("runtime", "queue_depth", queue_.size());
    record_priority_depths();
    switch (r) {
    case push_result::dropped:
        // Charge the drop to the priority actually evicted — with per-level
        // capacities the victim's class can differ from the pusher's.
        metrics_.on_dropped(evicted_prio);
        OBS_TRACE_INSTANT("runtime", "job_dropped");
        OBS_TRACE_ASYNC_END("job", "queue_wait", evicted->trace_id);
        OBS_TRACE_ASYNC_END("job", "job", evicted->trace_id);
        settle(*evicted, std::make_exception_ptr(job_dropped{}));
        finish_one();  // the evicted job leaves the in-flight set
        return true;
    case push_result::ok:
        return true;
    case push_result::rejected:
        metrics_.on_rejected(opt.prio);
        OBS_TRACE_INSTANT("runtime", "job_rejected");
        OBS_TRACE_ASYNC_END("job", "queue_wait", id);
        OBS_TRACE_ASYNC_END("job", "job", id);
        settle(*j, std::make_exception_ptr(admission_rejected{}));
        finish_one();
        return false;
    case push_result::closed:
        metrics_.on_rejected(opt.prio);
        OBS_TRACE_ASYNC_END("job", "queue_wait", id);
        OBS_TRACE_ASYNC_END("job", "job", id);
        settle(*j, std::make_exception_ptr(service_stopped{}));
        finish_one();
        return false;
    }
    return false;  // unreachable
}

void decode_service::pump(std::size_t n)
{
    // One pump may pop-and-run up to `n` jobs; a plain submit passes n = 1, a
    // coalesced batch passes its size, so a burst of small jobs costs one pool
    // submission.  Extra pump capacity left behind by evictions finds an empty
    // queue and returns — the invariant is pump capacity >= queued jobs.
    //
    // Pumps are *root* tasks: a popped job can park on a single-flight cache
    // entry, so one must never start from a parallel_for helping loop — the
    // flight's leader is below that loop on the same stack, and a nested
    // waiter there deadlocks the pool.
    metrics_.on_pool_submission();
    pool_->submit_root([this, n] {
        for (std::size_t i = 0; i < n; ++i) {
            auto popped = queue_.try_pop();
            if (!popped) break;
            job_ptr& p = popped->item;
            if (popped->promoted) {
                metrics_.on_promoted();
                OBS_TRACE_INSTANT("runtime", "job_promoted");
            }
            OBS_TRACE_ASYNC_END("job", "queue_wait", p->trace_id);
            OBS_TRACE_COUNTER("runtime", "queue_depth", queue_.size());
            record_priority_depths();
            run_job(*p);
            finish_one();
        }
    });
}

void decode_service::finish_one()
{
    {
        std::lock_guard lk{drain_m_};
        --in_flight_;
    }
    drained_cv_.notify_all();
}

void decode_service::run_job(job& j)
{
    // Non-j2k codecs take the generic backend path (progressive included:
    // the backend either opens a session or the request fails typed).  j2k
    // stays on its specialised fast paths, bit-identical to before the codec
    // registry existed.
    if (j.opt.codec != j2k::k_codec_wire_id) {
        const codec::backend* be = codec::find_backend(j.opt.codec);
        if (be == nullptr) {
            metrics_.on_failed();
            metrics_.on_codec_unsupported(j.opt.codec);
            OBS_TRACE_INSTANT("runtime", "job_unsupported_codec");
            settle(j, std::make_exception_ptr(unsupported_codec{j.opt.codec}));
            OBS_TRACE_ASYNC_END("job", "job", j.trace_id);
            return;
        }
        run_backend_job(j, *be);
        return;
    }
    if (j.on_layer) {
        run_progressive_job(j);
        return;
    }
    if (cache_ && j.opt.cache != cache_policy::bypass) {
        run_cached_job(j);
        return;
    }
    OBS_TRACE_SCOPE("runtime", "decode_job");
    j2k::image img;
    try {
        const arena_pool::lease scratch = acquire_arena();
        j2k::decoder dec{j.bytes};
        dec.set_max_passes(j.opt.max_passes);
        dec.set_max_quality_layers(j.opt.max_quality_layers);
        img = j.opt.discard_levels > 0
                  ? dec.decode_reduced(j.opt.discard_levels, nullptr,
                                       scratch.resource())
                  : decode_tiled(dec, scratch.resource());
    } catch (...) {
        metrics_.on_failed();
        metrics_.on_codec_failed(j.opt.codec);
        OBS_TRACE_INSTANT("runtime", "job_failed");
        settle(j, std::current_exception());
        OBS_TRACE_ASYNC_END("job", "job", j.trace_id);
        return;
    }
    metrics_.record_latency_us(
        j.opt.prio, ns_between(j.submitted_at, std::chrono::steady_clock::now()) / 1000);
    metrics_.on_completed();
    metrics_.on_codec_completed(j.opt.codec);
    settle(j, std::move(img));
    OBS_TRACE_ASYNC_END("job", "job", j.trace_id);
}

void decode_service::run_cached_job(job& j)
{
    OBS_TRACE_SCOPE("runtime", "decode_job");
    decoded_cache::image_ptr shared;
    try {
        const arena_pool::lease scratch = acquire_arena();
        j2k::decoder dec{j.bytes};
        dec.set_max_passes(j.opt.max_passes);
        dec.set_max_quality_layers(j.opt.max_quality_layers);

        // Normalised key: "all layers" requests (0 or >= stream depth) share
        // one entry with explicit full-depth requests.
        cache_key key;
        key.content_hash = fnv1a_bytes(j.bytes);
        key.codec = j2k::k_codec_wire_id;
        const int total = dec.info().quality_layers;
        const int cap = j.opt.max_quality_layers;
        key.layers = (cap <= 0 || cap >= total) ? total : cap;
        key.discard_levels = j.opt.discard_levels;
        key.max_passes = j.opt.max_passes;

        if (auto r = cache_->begin_flight(key)) {
            if (r->error) std::rethrow_exception(r->error);
            shared = std::move(r->image);
        } else {
            // This worker leads the flight: decode inline (never waiting on
            // another job, so a leader always makes progress) and publish.
            try {
                auto img = std::make_shared<const j2k::image>(
                    decode_leader(j, dec, key, scratch.resource()));
                cache_->complete_flight(key, img, j.opt.cache == cache_policy::pin);
                shared = std::move(img);
            } catch (...) {
                cache_->abort_flight(key, std::current_exception());
                throw;
            }
        }
    } catch (...) {
        metrics_.on_failed();
        metrics_.on_codec_failed(j.opt.codec);
        OBS_TRACE_INSTANT("runtime", "job_failed");
        settle(j, std::current_exception());
        OBS_TRACE_ASYNC_END("job", "job", j.trace_id);
        return;
    }
    metrics_.record_latency_us(
        j.opt.prio, ns_between(j.submitted_at, std::chrono::steady_clock::now()) / 1000);
    metrics_.on_completed();
    metrics_.on_codec_completed(j.opt.codec);
    settle(j, j2k::image{*shared});  // each caller gets its own copy
    OBS_TRACE_ASYNC_END("job", "job", j.trace_id);
}

void decode_service::run_backend_job(job& j, const codec::backend& be)
{
    OBS_TRACE_SCOPE("runtime", "decode_job");
    const std::uint8_t id = j.opt.codec;
    const codec::capabilities caps = be.caps();
    decoded_cache::image_ptr shared;
    try {
        // Capability gate: flags the codec cannot honour are a typed
        // rejection (same status as an unknown id on the wire), not a
        // silently ignored knob and not a generic decode failure.
        if (j.on_layer && !caps.progressive)
            throw unsupported_codec{id, "does not support progressive refinement"};
        if (j.opt.discard_levels > 0 && !caps.resolution_reduction)
            throw unsupported_codec{id, "does not support resolution reduction"};
        if (j.opt.max_quality_layers > 0 && !caps.quality_layers)
            throw unsupported_codec{id, "does not support quality-layer caps"};
        if (j.opt.max_passes > 0 && !caps.pass_cap)
            throw unsupported_codec{id, "does not support pass caps"};

        const arena_pool::lease scratch = acquire_arena();

        if (j.on_layer) {
            // Generic progressive: the backend's session, no prefix cache
            // (resumable-prefix caching is a j2k specialisation for now).
            metrics_.on_progressive_started();
            auto finished = [&] { metrics_.on_progressive_finished(); };
            try {
                auto sess = be.open_session(j.bytes);
                const int stream_layers = sess->total_layers();
                const int cap = j.opt.max_quality_layers;
                const int total =
                    cap > 0 && cap < stream_layers ? cap : stream_layers;
                for (int l = 1; l <= total; ++l) {
                    codec::image img = sess->advance_to(l);
                    metrics_.on_layer_emitted();
                    const bool more = j.on_layer(
                        layer_event{l, total, l == total, std::move(img)}, nullptr);
                    if (!more && l < total) {
                        metrics_.on_progressive_cancelled();
                        break;
                    }
                }
            } catch (...) {
                finished();
                throw;
            }
            finished();
            metrics_.record_latency_us(
                j.opt.prio,
                ns_between(j.submitted_at, std::chrono::steady_clock::now()) / 1000);
            metrics_.on_completed();
            metrics_.on_codec_completed(id);
            j.settled.store(true, std::memory_order_release);
            OBS_TRACE_ASYNC_END("job", "job", j.trace_id);
            return;
        }

        const codec::decode_request req{j.opt.discard_levels,
                                        j.opt.max_quality_layers, j.opt.max_passes};
        if (cache_ && j.opt.cache != cache_policy::bypass) {
            cache_key key;
            key.content_hash = fnv1a_bytes(j.bytes);
            key.codec = id;  // namespaced: byte-identical input under another
                             // codec id is a different key
            key.layers = j.opt.max_quality_layers;
            key.discard_levels = j.opt.discard_levels;
            key.max_passes = j.opt.max_passes;
            if (auto r = cache_->begin_flight(key)) {
                if (r->error) std::rethrow_exception(r->error);
                shared = std::move(r->image);
            } else {
                try {
                    auto img = std::make_shared<const codec::image>(
                        be.decode(j.bytes, req, scratch.resource()));
                    cache_->complete_flight(key, img,
                                            j.opt.cache == cache_policy::pin);
                    shared = std::move(img);
                } catch (...) {
                    cache_->abort_flight(key, std::current_exception());
                    throw;
                }
            }
        } else {
            shared = std::make_shared<const codec::image>(
                be.decode(j.bytes, req, scratch.resource()));
        }
    } catch (const unsupported_codec&) {
        metrics_.on_failed();
        metrics_.on_codec_unsupported(id);
        OBS_TRACE_INSTANT("runtime", "job_unsupported_codec");
        settle(j, std::current_exception());
        OBS_TRACE_ASYNC_END("job", "job", j.trace_id);
        return;
    } catch (...) {
        metrics_.on_failed();
        metrics_.on_codec_failed(id);
        OBS_TRACE_INSTANT("runtime", "job_failed");
        settle(j, std::current_exception());
        OBS_TRACE_ASYNC_END("job", "job", j.trace_id);
        return;
    }
    metrics_.record_latency_us(
        j.opt.prio, ns_between(j.submitted_at, std::chrono::steady_clock::now()) / 1000);
    metrics_.on_completed();
    metrics_.on_codec_completed(id);
    settle(j, codec::image{*shared});
    OBS_TRACE_ASYNC_END("job", "job", j.trace_id);
}

j2k::image decode_service::decode_leader(job& j, j2k::decoder& dec, const cache_key& key,
                                         std::pmr::memory_resource* mr)
{
    // Layered full-quality requests go through a resumable session so the
    // tier-1 prefix can be cached and extended; everything else (plain
    // streams, reduced resolution, SNR-capped) uses the classic paths.
    if (j.opt.discard_levels > 0)
        return dec.decode_reduced(j.opt.discard_levels, nullptr, mr);
    const bool layered = dec.info().quality_layers > 1;
    if (!layered || j.opt.max_passes != 0) return decode_tiled(dec, mr);

    if (auto lease = cache_->checkout_session(key.content_hash, j.bytes, key.layers)) {
        try {
            const std::uint64_t before = lease->session.tier1_segment_bytes();
            lease->session.set_threads(pool_->size());
            lease->session.set_scratch_arena(mr);
            j2k::image img = lease->session.advance_to(key.layers);
            metrics_.add_t1_segment_bytes(lease->session.tier1_segment_bytes() - before);
            // The session outlives this job in the cache; it must not keep a
            // pointer to the job-scoped arena (reset at lease return).
            lease->session.set_scratch_arena(nullptr);
            cache_->deposit_session(key.content_hash, std::move(lease->bytes),
                                    std::move(lease->session));
            return img;
        } catch (...) {
            cache_->discard_session(key.content_hash);  // poisoned: never return it
            throw;
        }
    }

    j2k::decode_session s{j.bytes};
    s.set_threads(pool_->size());
    s.set_scratch_arena(mr);
    j2k::image img = s.advance_to(key.layers);
    metrics_.add_t1_segment_bytes(s.tier1_segment_bytes());
    // Deposit the cold prefix only when the job owns its bytes: the session
    // references the codestream storage, and a borrowed span (copy_input =
    // false) would leave it pointing into caller memory.  The vector move
    // keeps the heap buffer — and the session's references into it — stable.
    // Detach the scratch arena first: the cached session outlives this job's
    // lease.
    if (!j.owned.empty() && j.owned.data() == j.bytes.data()) {
        s.set_scratch_arena(nullptr);
        std::vector<std::uint8_t> bytes = std::move(j.owned);
        j.bytes = {};
        cache_->deposit_session(key.content_hash, std::move(bytes), std::move(s));
    }
    return img;
}

void decode_service::run_progressive_job(job& j)
{
    OBS_TRACE_SCOPE("runtime", "progressive_job");
    metrics_.on_progressive_started();
    OBS_TRACE_COUNTER("runtime", "progressive_active",
                      metrics_.instruments().get_gauge("progressive_active").value());
    try {
        const arena_pool::lease scratch = acquire_arena();
        j2k::decode_session s{j.bytes};
        s.set_scratch_arena(scratch.resource());
        const int stream_layers = s.total_layers();
        const int cap = j.opt.max_quality_layers;
        const int total = cap > 0 && cap < stream_layers ? cap : stream_layers;
        std::uint64_t prev_bytes = s.tier1_segment_bytes();
        for (int l = 1; l <= total; ++l) {
            // Per-refinement async span under the job's span tree; the j2k
            // stage spans (tier-1 / IQ / IDWT) nest inside it.
            OBS_TRACE_ASYNC_BEGIN("job", "layer", j.trace_id);
            j2k::image img = s.advance_to(l);
            OBS_TRACE_ASYNC_END("job", "layer", j.trace_id);
            metrics_.add_t1_segment_bytes(s.tier1_segment_bytes() - prev_bytes);
            prev_bytes = s.tier1_segment_bytes();
            metrics_.on_layer_emitted();
            const bool more =
                j.on_layer(layer_event{l, total, l == total, std::move(img)}, nullptr);
            if (!more && l < total) {
                metrics_.on_progressive_cancelled();
                OBS_TRACE_INSTANT("runtime", "progressive_cancelled");
                break;
            }
        }
        // Even a cancelled stream leaves a valid layer-l prefix; deposit it so
        // later full-quality submits resume instead of decoding cold.  Same
        // ownership gate as the leader path: the session references the
        // codestream storage, so only owned bytes may move into the cache.
        if (cache_ && j.opt.cache != cache_policy::bypass && stream_layers > 1 &&
            !j.owned.empty() && j.owned.data() == j.bytes.data()) {
            s.set_scratch_arena(nullptr);  // cached session outlives the lease
            const std::uint64_t chash = fnv1a_bytes(j.bytes);
            std::vector<std::uint8_t> bytes = std::move(j.owned);
            j.bytes = {};
            cache_->deposit_session(chash, std::move(bytes), std::move(s));
        }
    } catch (...) {
        metrics_.on_failed();
        metrics_.on_codec_failed(j.opt.codec);
        metrics_.on_progressive_finished();
        OBS_TRACE_INSTANT("runtime", "job_failed");
        settle(j, std::current_exception());  // routed through on_layer
        OBS_TRACE_ASYNC_END("job", "job", j.trace_id);
        return;
    }
    metrics_.record_latency_us(
        j.opt.prio, ns_between(j.submitted_at, std::chrono::steady_clock::now()) / 1000);
    metrics_.on_completed();
    metrics_.on_codec_completed(j.opt.codec);
    metrics_.on_progressive_finished();
    j.settled.store(true, std::memory_order_release);  // all layers delivered
    OBS_TRACE_ASYNC_END("job", "job", j.trace_id);
}

j2k::image decode_service::decode_tiled(const j2k::decoder& dec,
                                        std::pmr::memory_resource* mr)
{
    const auto& info = dec.info();
    const auto grid = dec.tiles();
    j2k::image img{info.width, info.height, info.components, info.bit_depth};
    // Per-tile fan-out: subtasks land on the submitting worker's deque and
    // are stolen by idle workers, so a single big job still uses the whole
    // pool.  Tiles are disjoint, so insert_tile writes never overlap.
    //
    // Stage wall time flows into the metrics through obs::stage_timer; the
    // spans for the individual stages (tier-1 / IQ / IDWT) are emitted one
    // layer down, inside the j2k decoder itself, and nest under "tile".
    pool_->parallel_for(static_cast<int>(grid.size()), [&](int t) {
        OBS_TRACE_SCOPE("runtime", "tile");
        j2k::tile_coeffs tc;
        {
            obs::stage_timer st{nullptr, nullptr, metrics_.stage_entropy_ns()};
            tc = dec.entropy_decode(t, nullptr, mr);
        }
        j2k::tile_wavelet tw;
        {
            obs::stage_timer st{nullptr, nullptr, metrics_.stage_iq_ns()};
            tw = dec.dequantize(tc);
        }
        j2k::tile_pixels tp;
        {
            obs::stage_timer st{nullptr, nullptr, metrics_.stage_idwt_ns()};
            tp = dec.idwt(tw, mr);
        }
        for (int c = 0; c < info.components; ++c)
            j2k::insert_tile(img.comp(c), tp.comps[static_cast<std::size_t>(c)],
                             grid[static_cast<std::size_t>(t)]);
        metrics_.on_tile_decoded();
    });
    {
        obs::stage_timer st{nullptr, nullptr, metrics_.stage_finish_ns()};
        dec.finish(img);
    }
    return img;
}

void decode_service::shutdown()
{
    {
        std::lock_guard lk{drain_m_};
        stopped_ = true;
    }
    queue_.close();  // wakes blocked submitters; queued jobs remain poppable
    std::unique_lock lk{drain_m_};
    drained_cv_.wait(lk, [&] { return in_flight_ == 0; });
}

metrics_snapshot decode_service::metrics() const
{
    metrics_snapshot s = metrics_.snapshot();
    s.uptime_s = process_uptime_s();
    s.pool_threads = pool_->size();
    s.kernel_isa = j2k::kernel_isa_name(j2k::active_kernel_isa());
    s.mq_fast = j2k::kernels().mq_fast;
    if (arenas_) {
        s.arena_capacity_bytes = arenas_->bytes_each();
        s.arena_leases = arenas_->leases();
        s.arena_dry_acquires = arenas_->dry_acquires();
        s.arena_fallback_allocs = arenas_->fallback_allocs();
        s.arena_high_water_bytes = arenas_->high_water();
    }
    s.tracing_armed = obs::tracing_enabled();
    s.build = build_type();
    s.compiler = compiler_version();
    s.queue_depth_high_water =
        std::max<std::uint64_t>(s.queue_depth_high_water, queue_.high_water());
    s.jobs_promoted = std::max(s.jobs_promoted, queue_.promoted());
    s.tasks_stolen = pool_->tasks_stolen();
    if (cache_) {
        const cache_stats cs = cache_->stats();
        s.cache_hits = cs.hits;
        s.cache_misses = cs.misses;
        s.cache_collapses = cs.collapses;
        s.cache_evictions = cs.evictions;
        s.cache_session_resumes = cs.session_resumes;
        s.cache_bytes = cs.bytes;
        s.cache_pinned_bytes = cs.pinned_bytes;
        s.cache_entries = cs.entries;
        s.cache_session_entries = cs.session_entries;
        // Merge the cache's per-codec split into the job split, resolving
        // wire ids to the same exposition names service_metrics uses.
        for (const auto& bc : cs.by_codec) {
            const codec::backend* be = codec::find_backend(bc.codec);
            const std::string name =
                be ? std::string{be->name()} : std::to_string(int{bc.codec});
            auto it = std::find_if(s.by_codec.begin(), s.by_codec.end(),
                                   [&](const auto& e) { return e.name == name; });
            if (it == s.by_codec.end()) {
                metrics_snapshot::codec_entry e;
                e.name = name;
                it = s.by_codec.insert(s.by_codec.end(), std::move(e));
            }
            it->cache_hits = bc.hits;
            it->cache_misses = bc.misses;
        }
    }
    return s;
}

}  // namespace runtime
