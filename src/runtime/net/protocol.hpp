// runtime/net/protocol.hpp — the minimal length-prefixed framing protocol the
// decode server speaks.
//
// This is the software realisation of the paper's VTA boundary: requests are
// serialised across a byte channel, unpacked by a transactor (the server's
// event loop) and handed to the guarded shared resource (decode_service)
// exactly as the OSSS RMI channel marshals method calls onto the shared
// object.  All integers are big-endian, mirroring the codestream container.
//
// Request frame (20-byte header + payload, protocol version 2 — version 2
// widened both headers from 16 bytes to carry the codec id):
//
//   u32 magic      'J2NE'
//   u8  version    2
//   u8  priority   0 = interactive, 1 = batch
//   u8  format     0 = raw planar samples, 1 = PNM (PGM/PPM)
//   u8  flags      bit 0 = progressive (stream one response per quality
//                  layer); bit 1 = cache bypass; bit 2 = cache pin
//                  (bits 1+2 together, or any other bit, reject the frame)
//   u8  codec      codec wire id (0 = j2k, 1 = ccsds123, ...).  Any value is
//                  structurally valid; ids absent from the server's codec
//                  registry elicit a typed `unsupported_codec` response, not
//                  a connection close — the frame itself is well-formed.
//   u8  reserved   ×3, must be zero (rejected otherwise)
//   u32 request_id echoed verbatim in the response (pipelining correlation)
//   u32 payload_len
//   ... payload_len bytes of codestream for the named codec
//
// Response frame (20-byte header + payload):
//
//   u32 magic      'J2NE'
//   u8  version    2
//   u8  status     see `status` below
//   u8  codec      echo of the request's codec byte
//   u8  reserved   0
//   u32 reserved   0
//   u32 request_id
//   u32 payload_len
//   ... decoded image (ok) or an ASCII diagnostic message (errors)
//
// request_id and payload_len sit at offsets 12/16 in both directions.
//
// A progressive request elicits a *sequence* of `streaming` responses with
// the same request_id — one per completed quality layer, in layer order.
// Each streaming payload starts with a 4-byte layer sub-header:
//
//   u8 layer   1-based refinement index
//   u8 total   layers this stream will emit
//   u8 last    1 on the final refinement, else 0
//   u8 0       reserved
//
// followed by the image in the requested result encoding.  The frame with
// `last = 1` ends the sequence; a terminal error status (same request_id) can
// replace any remaining refinements.
//
// Responses are emitted in *completion* order, not request order — pipelined
// clients must correlate by request_id.
#pragma once

#include <j2k/image.hpp>

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace runtime::net {

inline constexpr std::uint32_t k_magic = 0x4A324E45u;  // "J2NE"
inline constexpr std::uint8_t k_version = 2;
inline constexpr std::size_t k_header_size = 20;

/// Requested result encoding.
enum class result_format : std::uint8_t {
    raw = 0,  ///< u32 w | u32 h | u8 comps | u8 depth | u16 0 | planar samples
    pnm = 1,  ///< the exact bytes j2k::pnm_bytes would write (P5/P6)
};

/// Response status byte.
enum class status : std::uint8_t {
    ok = 0,
    malformed_codestream = 1,  ///< decode threw codec::codestream_error
    shed = 2,                  ///< admission rejected or job evicted (overload)
    too_large = 3,             ///< payload_len above the server's limit
    bad_frame = 4,             ///< bad magic / version / priority / format
    stopped = 5,               ///< server shutting down
    internal_error = 6,        ///< anything else (message in payload)
    streaming = 7,             ///< one refinement of a progressive request
    unsupported_codec = 8,     ///< codec id not in the registry, or the codec
                               ///< cannot honour the requested flags
};

[[nodiscard]] constexpr const char* status_name(status s) noexcept
{
    switch (s) {
    case status::ok: return "ok";
    case status::malformed_codestream: return "malformed_codestream";
    case status::shed: return "shed";
    case status::too_large: return "too_large";
    case status::bad_frame: return "bad_frame";
    case status::stopped: return "stopped";
    case status::internal_error: return "internal_error";
    case status::streaming: return "streaming";
    case status::unsupported_codec: return "unsupported_codec";
    }
    return "?";
}

/// Request flag bits (request header byte 7).  `cache_bypass` decodes without
/// reading or populating the server's decoded-result cache; `cache_pin`
/// exempts the inserted entry from eviction.  Setting both is contradictory
/// and rejected as a bad frame.  Both are no-ops on a server running without
/// a cache.
inline constexpr std::uint8_t k_flag_progressive = 0x01;
inline constexpr std::uint8_t k_flag_cache_bypass = 0x02;
inline constexpr std::uint8_t k_flag_cache_pin = 0x04;
inline constexpr std::uint8_t k_flag_known_mask =
    k_flag_progressive | k_flag_cache_bypass | k_flag_cache_pin;

struct request_header {
    std::uint8_t priority_raw = 1;  ///< runtime::priority as a byte
    std::uint8_t format_raw = 0;    ///< result_format as a byte
    std::uint8_t flags = 0;         ///< k_flag_* bits; unknown bits rejected
    std::uint8_t codec = 0;         ///< codec wire id (0 = j2k); any value parses
    std::uint32_t request_id = 0;
    std::uint32_t payload_len = 0;

    [[nodiscard]] bool progressive() const noexcept
    {
        return (flags & k_flag_progressive) != 0;
    }
    [[nodiscard]] bool cache_bypass() const noexcept
    {
        return (flags & k_flag_cache_bypass) != 0;
    }
    [[nodiscard]] bool cache_pin() const noexcept
    {
        return (flags & k_flag_cache_pin) != 0;
    }
};

struct response_header {
    status st = status::ok;
    std::uint8_t codec = 0;  ///< echo of the request's codec byte
    std::uint32_t request_id = 0;
    std::uint32_t payload_len = 0;
};

/// Serialise a request header into exactly k_header_size bytes.
void encode_request_header(const request_header& h, std::uint8_t out[k_header_size]);

/// Parse a request header.  Returns nullopt (and sets *why) when the frame is
/// structurally invalid — bad magic, version, priority or format byte.
[[nodiscard]] std::optional<request_header> decode_request_header(
    std::span<const std::uint8_t> in, const char** why = nullptr);

void encode_response_header(const response_header& h, std::uint8_t out[k_header_size]);

[[nodiscard]] std::optional<response_header> decode_response_header(
    std::span<const std::uint8_t> in);

/// Sub-header prefixed to every `streaming` response payload.
struct layer_header {
    std::uint8_t layer = 0;  ///< 1-based refinement index
    std::uint8_t total = 0;  ///< refinements the stream will emit
    std::uint8_t last = 0;   ///< 1 on the final refinement
};

inline constexpr std::size_t k_layer_header_size = 4;

void encode_layer_header(const layer_header& h, std::uint8_t out[k_layer_header_size]);

/// Parse (and validate) a layer sub-header from the front of a streaming
/// payload.  Returns nullopt on short input, a nonzero reserved byte, or an
/// inconsistent layer/total/last combination.
[[nodiscard]] std::optional<layer_header> decode_layer_header(
    std::span<const std::uint8_t> in);

/// Encode a decoded image as the `raw` result payload.
[[nodiscard]] std::vector<std::uint8_t> encode_image_raw(const j2k::image& img);

/// Parse a `raw` result payload (client side).  Throws std::runtime_error on
/// malformed payloads.
[[nodiscard]] j2k::image decode_image_raw(std::span<const std::uint8_t> in);

}  // namespace runtime::net
