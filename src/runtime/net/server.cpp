#include "server.hpp"

#include "poller.hpp"

#include <j2k/codestream.hpp>
#include <j2k/pnm.hpp>
#include <obs/obs.hpp>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <mutex>
#include <system_error>
#include <thread>
#include <unordered_map>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace runtime::net {

namespace {

// poller / ready_event / set_nonblocking / throw_errno moved to poller.hpp —
// the HTTP ops plane (ops/ops_server.cpp) drives the same backends.

constexpr std::uint64_t k_listener_id = 0;
constexpr std::uint64_t k_wake_id = 1;
constexpr std::uint64_t k_first_conn_id = 2;

}  // namespace

struct server::impl {
    explicit impl(server_config cfg)
        : cfg_{std::move(cfg)},
          service_{[&] {
              service_config sc = cfg_.service;
              // `block` at admission would stall the event loop; shed instead.
              if (sc.policy == backpressure::block) sc.policy = backpressure::reject;
              return sc;
          }()}
    {
    }

    ~impl() { stop(); }

    // ---- connection state ------------------------------------------------

    struct connection {
        int fd = -1;
        std::uint64_t id = 0;
        // Frame parser state.
        enum class reading { header, payload };
        reading state = reading::header;
        std::uint8_t hdr_buf[k_header_size] = {};
        std::size_t hdr_filled = 0;
        request_header hdr;
        /// Arena buffer: recv() lands payload bytes directly here, and the
        /// whole vector moves into the decode job on dispatch — the socket
        /// path adds no intermediate copy.
        std::vector<std::uint8_t> payload;
        std::size_t payload_filled = 0;
        // Outbound frames (fully framed responses), possibly partially sent.
        std::deque<std::vector<std::uint8_t>> out;
        std::size_t out_off = 0;
        bool want_write = false;
        bool closing = false;  ///< close once `out` drains (protocol error)
        /// Liveness flag shared with in-flight progressive jobs: cleared on
        /// close, read by the per-layer completion on the worker so a
        /// departed client cancels its stream instead of decoding layers
        /// nobody will read.
        std::shared_ptr<std::atomic<bool>> alive =
            std::make_shared<std::atomic<bool>>(true);
    };

    struct completion_record {
        std::uint64_t conn_id = 0;
        std::vector<std::uint8_t> frame;
        std::uint64_t trace_id = 0;
        /// False for intermediate streaming frames: the async "frame" span
        /// ends once per request, on the final (or error) frame.
        bool end_span = true;
    };

    struct small_job {
        std::uint64_t conn_id = 0;
        std::vector<std::uint8_t> bytes;
        decode_options opt;
        decode_service::completion done;
    };

    // ---- lifecycle -------------------------------------------------------

    void start()
    {
        if (running_) return;
        listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listen_fd_ < 0) throw_errno("socket");
        const int one = 1;
        ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(cfg_.port);
        if (::inet_pton(AF_INET, cfg_.bind_address.c_str(), &addr.sin_addr) != 1) {
            ::close(listen_fd_);
            listen_fd_ = -1;
            throw std::system_error{EINVAL, std::generic_category(),
                                    "bad bind address (numeric IPv4 expected)"};
        }
        if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
            ::listen(listen_fd_, cfg_.listen_backlog) < 0) {
            const int err = errno;
            ::close(listen_fd_);
            listen_fd_ = -1;
            throw std::system_error{err, std::generic_category(), "bind/listen"};
        }
        set_nonblocking(listen_fd_);
        socklen_t alen = sizeof addr;
        ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen);
        port_ = ntohs(addr.sin_port);

        int pipefd[2];
        if (::pipe(pipefd) < 0) throw_errno("pipe");
        wake_rd_ = pipefd[0];
        wake_wr_ = pipefd[1];
        set_nonblocking(wake_rd_);
        set_nonblocking(wake_wr_);  // a full pipe must never block a worker

        poller_ = make_poller(cfg_.use_poll);
        poller_->add(listen_fd_, k_listener_id, false);
        poller_->add(wake_rd_, k_wake_id, false);

        stop_requested_.store(false, std::memory_order_relaxed);
        running_ = true;
        loop_thread_ = std::thread{[this] { run_loop(); }};
    }

    void stop()
    {
        if (!running_) return;
        stop_requested_.store(true, std::memory_order_release);
        wake();
        loop_thread_.join();
        // Close the wake pipe only after the join: every writer — this
        // thread above, and worker completions (all finished before the
        // loop's service_.shutdown() returned) — now happens-before the
        // close, so no write() can race it or hit a recycled fd.
        ::close(wake_rd_);
        ::close(wake_wr_);
        wake_rd_ = wake_wr_ = -1;
        running_ = false;
    }

    // ---- event loop ------------------------------------------------------

    void run_loop()
    {
        obs::tracer::instance().set_thread_name("net-loop");
        std::vector<ready_event> events;
        std::vector<small_job> batch;
        while (!stop_requested_.load(std::memory_order_acquire)) {
            events.clear();
            poller_->wait(events, -1);
            for (const ready_event& ev : events) {
                if (ev.id == k_listener_id) {
                    accept_ready();
                } else if (ev.id == k_wake_id) {
                    drain_wake_pipe();
                    deliver_completions();
                } else {
                    auto it = conns_.find(ev.id);
                    if (it == conns_.end()) continue;
                    connection& c = *it->second;
                    if (ev.hangup && !ev.readable) {
                        close_conn(c);
                        continue;
                    }
                    if (ev.writable) on_writable(c);
                    // on_writable may have closed the connection.
                    if (conns_.count(ev.id) && ev.readable) on_readable(c, batch);
                }
            }
            flush_small_jobs(batch);
            OBS_TRACE_COUNTER("net", "net_bytes_in",
                              bytes_in_.load(std::memory_order_relaxed));
            OBS_TRACE_COUNTER("net", "net_bytes_out",
                              bytes_out_.load(std::memory_order_relaxed));
        }

        // Shutdown: no new frames will be parsed (loop exited).  Drain every
        // admitted decode job, hand the resulting frames to their
        // connections, flush best-effort, then tear down.
        if (listen_fd_ >= 0) {
            poller_->remove(listen_fd_);
            ::close(listen_fd_);
            listen_fd_ = -1;
        }
        service_.shutdown();
        deliver_completions();
        for (auto& [id, c] : conns_) flush_blocking(*c);
        for (auto& [id, c] : conns_) {
            c->alive->store(false, std::memory_order_release);
            poller_->remove(c->fd);
            ::close(c->fd);
            OBS_TRACE_ASYNC_END("net", "connection", c->id);
        }
        conns_.clear();
        connections_open_.store(0, std::memory_order_relaxed);
        // The wake pipe stays open: stop() closes it after joining this
        // thread, so a concurrent stop()'s wake() never writes to a dead fd.
    }

    void accept_ready()
    {
        for (;;) {
            const int fd = ::accept(listen_fd_, nullptr, nullptr);
            if (fd < 0) {
                if (errno == EAGAIN || errno == EWOULDBLOCK) return;
                if (errno == EINTR) continue;
                return;  // transient accept failure; keep serving
            }
            set_nonblocking(fd);
            const int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
            auto c = std::make_unique<connection>();
            c->fd = fd;
            c->id = next_conn_id_++;
            poller_->add(fd, c->id, false);
            OBS_TRACE_ASYNC_BEGIN("net", "connection", c->id);
            conns_.emplace(c->id, std::move(c));
            connections_accepted_.fetch_add(1, std::memory_order_relaxed);
            connections_open_.fetch_add(1, std::memory_order_relaxed);
            OBS_TRACE_COUNTER("net", "net_connections", conns_.size());
        }
    }

    void on_readable(connection& c, std::vector<small_job>& batch)
    {
        if (c.closing) return;  // refuse further input after a protocol error
        for (;;) {
            if (c.state == connection::reading::header) {
                const ssize_t n = ::recv(c.fd, c.hdr_buf + c.hdr_filled,
                                         k_header_size - c.hdr_filled, 0);
                if (!advance(c, n)) return;
                c.hdr_filled += static_cast<std::size_t>(n);
                if (c.hdr_filled < k_header_size) continue;
                const char* why = nullptr;
                const auto hdr = decode_request_header(c.hdr_buf, &why);
                if (!hdr) {
                    refuse_frame(c, status::bad_frame, 0, why);
                    return;
                }
                if (hdr->payload_len > cfg_.max_payload) {
                    refuse_frame(c, status::too_large, hdr->request_id,
                                 "payload_len above server limit");
                    return;
                }
                c.hdr = *hdr;
                c.hdr_filled = 0;
                if (hdr->payload_len == 0) {
                    dispatch_frame(c, {}, batch);  // decode of 0 bytes → malformed
                    continue;
                }
                c.state = connection::reading::payload;
                c.payload.resize(hdr->payload_len);
                c.payload_filled = 0;
            } else {
                const ssize_t n =
                    ::recv(c.fd, c.payload.data() + c.payload_filled,
                           c.payload.size() - c.payload_filled, 0);
                if (!advance(c, n)) return;
                c.payload_filled += static_cast<std::size_t>(n);
                if (c.payload_filled < c.payload.size()) continue;
                c.state = connection::reading::header;
                dispatch_frame(c, std::move(c.payload), batch);
                c.payload = {};
                c.payload_filled = 0;
            }
        }
    }

    /// Common recv() outcome handling; returns false when reading must stop
    /// (EAGAIN, disconnect, error).  Closes the connection on EOF/error.
    bool advance(connection& c, ssize_t n)
    {
        if (n > 0) {
            bytes_in_.fetch_add(static_cast<std::uint64_t>(n),
                                std::memory_order_relaxed);
            return true;
        }
        if (n < 0) {
            // EINTR: readability persists, the level-triggered poller re-fires.
            if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
                return false;
        }
        // EOF (possibly mid-frame) or hard error: tear the connection down.
        // In-flight decode jobs for it settle into a vanished conn id and are
        // discarded at completion delivery.
        close_conn(c);
        return false;
    }

    void dispatch_frame(connection& c, std::vector<std::uint8_t>&& payload,
                        std::vector<small_job>& batch)
    {
        frames_in_.fetch_add(1, std::memory_order_relaxed);
        const std::uint64_t trace_id = obs::tracer::instance().next_id();
        OBS_TRACE_ASYNC_BEGIN("net", "frame", trace_id);
        decode_options opt;
        opt.prio = c.hdr.priority_raw == 0 ? priority::interactive : priority::batch;
        opt.cache = c.hdr.cache_bypass()  ? cache_policy::bypass
                    : c.hdr.cache_pin()   ? cache_policy::pin
                                          : cache_policy::use;
        if (c.hdr.progressive()) {
            // Streaming requests are never coalesced: each one produces a
            // whole response sequence and holds a worker for its duration.
            progressive_streams_.fetch_add(1, std::memory_order_relaxed);
            service_.submit_progressive(
                std::move(payload), opt,
                make_layer_completion(c.id, c.hdr.request_id,
                                      static_cast<result_format>(c.hdr.format_raw),
                                      trace_id, c.alive));
            return;
        }
        auto done = make_completion(c.id, c.hdr.request_id,
                                    static_cast<result_format>(c.hdr.format_raw),
                                    trace_id);
        if (payload.size() < cfg_.small_job_threshold) {
            batch.push_back({c.id, std::move(payload), opt, std::move(done)});
        } else {
            service_.submit_async(std::move(payload), opt, std::move(done));
        }
    }

    /// Coalesce the small jobs gathered this poll iteration into one
    /// submit_batch (single pool pump) — a lone small job takes the plain
    /// path, which is the same cost.
    void flush_small_jobs(std::vector<small_job>& batch)
    {
        if (batch.empty()) return;
        if (batch.size() == 1) {
            service_.submit_async(std::move(batch[0].bytes), batch[0].opt,
                                  std::move(batch[0].done));
        } else {
            std::vector<decode_service::batch_item> items;
            items.reserve(batch.size());
            for (small_job& sj : batch)
                items.push_back({std::move(sj.bytes), sj.opt, std::move(sj.done)});
            batches_.fetch_add(1, std::memory_order_relaxed);
            batched_jobs_.fetch_add(items.size(), std::memory_order_relaxed);
            service_.submit_batch(std::move(items));
        }
        batch.clear();
    }

    /// Build the completion that runs on the decoding worker: serialise the
    /// result (or map the error to a status), frame it, and hand it to the
    /// loop via the completion queue + wake pipe.
    decode_service::completion make_completion(std::uint64_t conn_id,
                                               std::uint32_t request_id,
                                               result_format fmt,
                                               std::uint64_t trace_id)
    {
        return [this, conn_id, request_id, fmt, trace_id](j2k::image&& img,
                                                          std::exception_ptr err) {
            response_header rh;
            rh.request_id = request_id;
            std::vector<std::uint8_t> body;
            if (!err) {
                rh.st = status::ok;
                try {
                    body = fmt == result_format::raw ? encode_image_raw(img)
                                                     : j2k::pnm_bytes(img);
                } catch (const std::exception& e) {
                    rh.st = status::internal_error;
                    body.assign(e.what(), e.what() + std::strlen(e.what()));
                }
            } else {
                rh.st = map_error(std::move(err), body);
            }
            enqueue_frame(conn_id, rh, body, trace_id, true);
        };
    }

    /// Map a decode/admission exception onto a response status (diagnostic
    /// text, when any, lands in `body`).
    static status map_error(std::exception_ptr err, std::vector<std::uint8_t>& body)
    {
        try {
            std::rethrow_exception(std::move(err));
        } catch (const j2k::codestream_error& e) {
            body.assign(e.what(), e.what() + std::strlen(e.what()));
            return status::malformed_codestream;
        } catch (const admission_rejected&) {
            return status::shed;
        } catch (const job_dropped&) {
            return status::shed;
        } catch (const service_stopped&) {
            return status::stopped;
        } catch (const std::exception& e) {
            body.assign(e.what(), e.what() + std::strlen(e.what()));
            return status::internal_error;
        }
    }

    /// Frame a response and hand it to the loop (worker side).
    void enqueue_frame(std::uint64_t conn_id, response_header rh,
                       const std::vector<std::uint8_t>& body, std::uint64_t trace_id,
                       bool end_span)
    {
        rh.payload_len = static_cast<std::uint32_t>(body.size());
        std::vector<std::uint8_t> frame(k_header_size + body.size());
        encode_response_header(rh, frame.data());
        std::copy(body.begin(), body.end(), frame.begin() + k_header_size);
        {
            std::lock_guard lk{completions_m_};
            completions_.push_back({conn_id, std::move(frame), trace_id, end_span});
        }
        wake();
    }

    /// Per-layer completion for progressive requests: each refinement becomes
    /// one `streaming` frame (layer sub-header + encoded image); a terminal
    /// error becomes a plain error frame; a vanished client cancels the rest
    /// of the session by returning false.
    decode_service::progressive_completion make_layer_completion(
        std::uint64_t conn_id, std::uint32_t request_id, result_format fmt,
        std::uint64_t trace_id, std::shared_ptr<std::atomic<bool>> alive)
    {
        return [this, conn_id, request_id, fmt, trace_id, alive = std::move(alive)](
                   decode_service::layer_event&& ev, std::exception_ptr err) -> bool {
            if (!alive->load(std::memory_order_acquire)) {
                streams_cancelled_.fetch_add(1, std::memory_order_relaxed);
                OBS_TRACE_INSTANT("net", "stream_cancelled");
                OBS_TRACE_ASYNC_END("net", "frame", trace_id);
                return false;
            }
            response_header rh;
            rh.request_id = request_id;
            std::vector<std::uint8_t> body;
            bool last = true;
            if (!err) {
                rh.st = status::streaming;
                last = ev.last;
                body.resize(k_layer_header_size);
                encode_layer_header({static_cast<std::uint8_t>(ev.layer),
                                     static_cast<std::uint8_t>(ev.total),
                                     static_cast<std::uint8_t>(ev.last ? 1 : 0)},
                                    body.data());
                try {
                    const std::vector<std::uint8_t> px =
                        fmt == result_format::raw ? encode_image_raw(ev.img)
                                                  : j2k::pnm_bytes(ev.img);
                    body.insert(body.end(), px.begin(), px.end());
                } catch (const std::exception& e) {
                    rh.st = status::internal_error;
                    body.assign(e.what(), e.what() + std::strlen(e.what()));
                    last = true;
                }
            } else {
                rh.st = map_error(std::move(err), body);
            }
            if (rh.st == status::streaming)
                layer_frames_out_.fetch_add(1, std::memory_order_relaxed);
            enqueue_frame(conn_id, rh, body, trace_id, last);
            return rh.st == status::streaming;
        };
    }

    /// Loop thread: move completed frames onto their connections and flush.
    void deliver_completions()
    {
        std::vector<completion_record> ready;
        {
            std::lock_guard lk{completions_m_};
            ready.swap(completions_);
        }
        for (completion_record& r : ready) {
            if (r.end_span) OBS_TRACE_ASYNC_END("net", "frame", r.trace_id);
            auto it = conns_.find(r.conn_id);
            if (it == conns_.end()) continue;  // client went away mid-decode
            connection& c = *it->second;
            c.out.push_back(std::move(r.frame));
            on_writable(c);
        }
    }

    /// Refuse the in-progress frame: queue an error response, stop reading
    /// from this connection, and close once the response drains.  (After a
    /// framing error the byte stream cannot be resynchronised.)
    void refuse_frame(connection& c, status st, std::uint32_t request_id,
                      const char* message)
    {
        bad_frames_.fetch_add(1, std::memory_order_relaxed);
        response_header rh;
        rh.st = st;
        rh.request_id = request_id;
        const std::size_t len = message ? std::strlen(message) : 0;
        rh.payload_len = static_cast<std::uint32_t>(len);
        std::vector<std::uint8_t> frame(k_header_size + len);
        encode_response_header(rh, frame.data());
        if (len) std::memcpy(frame.data() + k_header_size, message, len);
        c.out.push_back(std::move(frame));
        c.closing = true;
        OBS_TRACE_INSTANT("net", "frame_refused");
        on_writable(c);
    }

    void on_writable(connection& c)
    {
        while (!c.out.empty()) {
            const std::vector<std::uint8_t>& front = c.out.front();
            const ssize_t n = ::send(c.fd, front.data() + c.out_off,
                                     front.size() - c.out_off, MSG_NOSIGNAL);
            if (n < 0) {
                if (errno == EAGAIN || errno == EWOULDBLOCK) break;
                if (errno == EINTR) continue;
                close_conn(c);
                return;
            }
            bytes_out_.fetch_add(static_cast<std::uint64_t>(n),
                                 std::memory_order_relaxed);
            c.out_off += static_cast<std::size_t>(n);
            if (c.out_off == front.size()) {
                c.out.pop_front();
                c.out_off = 0;
                responses_out_.fetch_add(1, std::memory_order_relaxed);
            }
        }
        if (c.out.empty() && c.closing) {
            close_conn(c);
            return;
        }
        const bool want_write = !c.out.empty();
        if (want_write != c.want_write) {
            c.want_write = want_write;
            poller_->update(c.fd, c.id, want_write);
        }
    }

    /// Best-effort synchronous flush during shutdown (sockets switched back
    /// to blocking with a short send timeout; errors are ignored).
    void flush_blocking(connection& c)
    {
        if (c.out.empty()) return;
        const int flags = ::fcntl(c.fd, F_GETFL, 0);
        if (flags >= 0) ::fcntl(c.fd, F_SETFL, flags & ~O_NONBLOCK);
        timeval tv{1, 0};
        ::setsockopt(c.fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
        while (!c.out.empty()) {
            const std::vector<std::uint8_t>& front = c.out.front();
            const ssize_t n = ::send(c.fd, front.data() + c.out_off,
                                     front.size() - c.out_off, MSG_NOSIGNAL);
            if (n <= 0) return;
            bytes_out_.fetch_add(static_cast<std::uint64_t>(n),
                                 std::memory_order_relaxed);
            c.out_off += static_cast<std::size_t>(n);
            if (c.out_off == front.size()) {
                c.out.pop_front();
                c.out_off = 0;
                responses_out_.fetch_add(1, std::memory_order_relaxed);
            }
        }
    }

    void close_conn(connection& c)
    {
        c.alive->store(false, std::memory_order_release);
        poller_->remove(c.fd);
        ::close(c.fd);
        OBS_TRACE_ASYNC_END("net", "connection", c.id);
        conns_.erase(c.id);  // destroys c — must be the last use
        connections_open_.fetch_sub(1, std::memory_order_relaxed);
        OBS_TRACE_COUNTER("net", "net_connections", conns_.size());
    }

    void wake()
    {
        const std::uint8_t b = 1;
        // Non-blocking: a full pipe already guarantees a pending wakeup.
        [[maybe_unused]] const ssize_t n = ::write(wake_wr_, &b, 1);
    }

    void drain_wake_pipe()
    {
        std::uint8_t buf[256];
        while (::read(wake_rd_, buf, sizeof buf) > 0) {
        }
    }

    // ---- state -----------------------------------------------------------

    server_config cfg_;
    decode_service service_;

    int listen_fd_ = -1;
    int wake_rd_ = -1;
    int wake_wr_ = -1;
    std::uint16_t port_ = 0;
    std::unique_ptr<poller> poller_;
    std::unordered_map<std::uint64_t, std::unique_ptr<connection>> conns_;
    std::uint64_t next_conn_id_ = k_first_conn_id;

    std::mutex completions_m_;
    std::vector<completion_record> completions_;

    std::thread loop_thread_;
    std::atomic<bool> stop_requested_{false};
    bool running_ = false;

    std::atomic<std::uint64_t> connections_accepted_{0};
    std::atomic<std::uint64_t> connections_open_{0};
    std::atomic<std::uint64_t> frames_in_{0};
    std::atomic<std::uint64_t> responses_out_{0};
    std::atomic<std::uint64_t> bytes_in_{0};
    std::atomic<std::uint64_t> bytes_out_{0};
    std::atomic<std::uint64_t> batches_{0};
    std::atomic<std::uint64_t> batched_jobs_{0};
    std::atomic<std::uint64_t> bad_frames_{0};
    std::atomic<std::uint64_t> progressive_streams_{0};
    std::atomic<std::uint64_t> layer_frames_out_{0};
    std::atomic<std::uint64_t> streams_cancelled_{0};
};

server::server(server_config cfg) : impl_{std::make_unique<impl>(std::move(cfg))} {}

server::~server() = default;  // impl dtor stops the loop

void server::start() { impl_->start(); }

void server::stop() { impl_->stop(); }

std::uint16_t server::port() const noexcept { return impl_->port_; }

decode_service& server::service() noexcept { return impl_->service_; }

const decode_service& server::service() const noexcept { return impl_->service_; }

server::stats_snapshot server::stats() const noexcept
{
    stats_snapshot s;
    s.connections_accepted =
        impl_->connections_accepted_.load(std::memory_order_relaxed);
    s.connections_open =
        impl_->connections_open_.load(std::memory_order_relaxed);
    s.frames_in = impl_->frames_in_.load(std::memory_order_relaxed);
    s.responses_out = impl_->responses_out_.load(std::memory_order_relaxed);
    s.bytes_in = impl_->bytes_in_.load(std::memory_order_relaxed);
    s.bytes_out = impl_->bytes_out_.load(std::memory_order_relaxed);
    s.batches = impl_->batches_.load(std::memory_order_relaxed);
    s.batched_jobs = impl_->batched_jobs_.load(std::memory_order_relaxed);
    s.bad_frames = impl_->bad_frames_.load(std::memory_order_relaxed);
    s.progressive_streams = impl_->progressive_streams_.load(std::memory_order_relaxed);
    s.layer_frames_out = impl_->layer_frames_out_.load(std::memory_order_relaxed);
    s.streams_cancelled = impl_->streams_cancelled_.load(std::memory_order_relaxed);
    return s;
}

}  // namespace runtime::net
