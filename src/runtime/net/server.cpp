#include "server.hpp"

#include "poller.hpp"

#include <codec/error.hpp>
#include <j2k/codestream.hpp>
#include <j2k/pnm.hpp>
#include <obs/obs.hpp>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <system_error>
#include <thread>
#include <unordered_map>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace runtime::net {

namespace {

// poller / ready_event / set_nonblocking / throw_errno moved to poller.hpp —
// the HTTP ops plane (ops/ops_server.cpp) drives the same backends.

constexpr std::uint64_t k_listener_id = 0;
constexpr std::uint64_t k_wake_id = 1;
constexpr std::uint64_t k_first_conn_id = 2;

/// 0 = auto: one shard per hardware thread, clamped — beyond ~16 loops the
/// listeners outnumber any plausible NIC queue count.
std::size_t resolve_shards(std::size_t cfg_shards)
{
    if (cfg_shards) return std::min<std::size_t>(cfg_shards, 64);
    const unsigned hc = std::thread::hardware_concurrency();
    return std::min<std::size_t>(hc ? hc : 1, 16);
}

void log_sockopt_failure(const char* what)
{
    std::fprintf(stderr, "runtime::net: setsockopt(%s) failed: %s\n", what,
                 std::strerror(errno));
}

/// Bind + listen one front-end listener.  With `reuseport` every shard binds
/// the same port and the kernel hashes connections across them — that is the
/// whole sharding mechanism, so a missing SO_REUSEPORT is a hard error there,
/// while the best-effort SO_REUSEADDR only logs.
int make_listener(const std::string& bind_address, std::uint16_t port,
                  int backlog, bool reuseport, std::uint16_t* bound_port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket");
    const int one = 1;
    if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one) < 0)
        log_sockopt_failure("SO_REUSEADDR");
    if (reuseport) {
#ifdef SO_REUSEPORT
        if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) < 0) {
            const int err = errno;
            ::close(fd);
            throw std::system_error{err, std::generic_category(),
                                    "setsockopt(SO_REUSEPORT)"};
        }
#else
        ::close(fd);
        throw std::system_error{ENOTSUP, std::generic_category(),
                                "multi-shard server needs SO_REUSEPORT"};
#endif
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, bind_address.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        throw std::system_error{EINVAL, std::generic_category(),
                                "bad bind address (numeric IPv4 expected)"};
    }
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
        ::listen(fd, backlog) < 0) {
        const int err = errno;
        ::close(fd);
        throw std::system_error{err, std::generic_category(), "bind/listen"};
    }
    set_nonblocking(fd);
    socklen_t alen = sizeof addr;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &alen) < 0) {
        // Without the bound address, port() would report garbage.
        const int err = errno;
        ::close(fd);
        throw std::system_error{err, std::generic_category(), "getsockname"};
    }
    *bound_port = ntohs(addr.sin_port);
    return fd;
}

}  // namespace

struct server::impl {
    explicit impl(server_config cfg)
        : cfg_{std::move(cfg)},
          service_{[&] {
              service_config sc = cfg_.service;
              // `block` at admission would stall the event loops; shed instead.
              if (sc.policy == backpressure::block) sc.policy = backpressure::reject;
              return sc;
          }()}
    {
    }

    ~impl() { stop(); }

    // ---- one event-loop shard --------------------------------------------
    //
    // Everything a single-loop server owned is per-shard now: the listener,
    // the poller, the wake pipe, the connection map, the completion queue,
    // the batcher, the counters.  Shards share only the decode service (and
    // the immutable config) through `owner_` — no lock is ever taken across
    // shards on the hot path.

    struct shard {
        shard(impl& owner, std::size_t index, std::size_t nshards)
            : owner_{owner}, index_{index}, stride_{nshards},
              next_conn_id_{k_first_conn_id + index}
        {
            if (nshards > 1) {
                char buf[48];
                auto& tr = obs::tracer::instance();
                std::snprintf(buf, sizeof buf, "net-loop-%zu", index);
                thread_name_ = tr.intern(buf);
                std::snprintf(buf, sizeof buf, "net_bytes_in.s%zu", index);
                track_bytes_in_ = tr.intern(buf);
                std::snprintf(buf, sizeof buf, "net_bytes_out.s%zu", index);
                track_bytes_out_ = tr.intern(buf);
                std::snprintf(buf, sizeof buf, "net_connections.s%zu", index);
                track_connections_ = tr.intern(buf);
            }
        }

        const server_config& cfg() const noexcept { return owner_.cfg_; }
        decode_service& service() noexcept { return owner_.service_; }

        // ---- connection state --------------------------------------------

        struct connection {
            int fd = -1;
            std::uint64_t id = 0;
            // Frame parser state.
            enum class reading { header, payload };
            reading state = reading::header;
            std::uint8_t hdr_buf[k_header_size] = {};
            std::size_t hdr_filled = 0;
            request_header hdr;
            /// Arena buffer: recv() lands payload bytes directly here, and the
            /// whole vector moves into the decode job on dispatch — the socket
            /// path adds no intermediate copy.
            std::vector<std::uint8_t> payload;
            std::size_t payload_filled = 0;
            // Outbound frames (fully framed responses), possibly partially sent.
            std::deque<std::vector<std::uint8_t>> out;
            std::size_t out_off = 0;
            std::size_t out_bytes = 0;  ///< unsent bytes across `out`
            bool want_write = false;
            bool closing = false;  ///< close once `out` drains (protocol error)
            /// Liveness flag shared with in-flight progressive jobs: cleared on
            /// close, read by the per-layer completion on the worker so a
            /// departed client cancels its stream instead of decoding layers
            /// nobody will read.
            std::shared_ptr<std::atomic<bool>> alive =
                std::make_shared<std::atomic<bool>>(true);
        };

        struct completion_record {
            std::uint64_t conn_id = 0;
            std::vector<std::uint8_t> frame;
            std::uint64_t trace_id = 0;
            /// False for intermediate streaming frames: the async "frame" span
            /// ends once per request, on the final (or error) frame.
            bool end_span = true;
        };

        struct small_job {
            std::uint64_t conn_id = 0;
            std::vector<std::uint8_t> bytes;
            decode_options opt;
            decode_service::completion done;
        };

        // ---- lifecycle ---------------------------------------------------

        /// Bind the listener, the wake pipe, and the emergency reserve fd.
        /// No thread yet — start() launches loops only once every shard
        /// bound, so a failure tears down cleanly with close_fds() alone.
        void open(std::uint16_t port, bool reuseport, std::uint16_t* bound_port)
        {
            listen_fd_ = make_listener(cfg().bind_address, port,
                                       cfg().listen_backlog, reuseport, bound_port);
            int pipefd[2];
            if (::pipe(pipefd) < 0) {
                const int err = errno;
                ::close(listen_fd_);
                listen_fd_ = -1;
                throw std::system_error{err, std::generic_category(), "pipe"};
            }
            wake_rd_ = pipefd[0];
            wake_wr_ = pipefd[1];
            set_nonblocking(wake_rd_);
            set_nonblocking(wake_wr_);  // a full pipe must never block a worker

            // Emergency reserve: one fd kept idle so that, at EMFILE, the
            // queued connection can still be accepted and shed (see
            // accept_ready).  Best-effort — a failed open just means the shed
            // path degrades to backoff.
            reserve_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);

            poller_ = make_poller(cfg().use_poll);
            poller_->add(listen_fd_, k_listener_id, false);
            poller_->add(wake_rd_, k_wake_id, false);
        }

        void launch() { loop_thread_ = std::thread{[this] { run_loop(); }}; }

        void close_fds()
        {
            if (listen_fd_ >= 0) ::close(listen_fd_);
            if (wake_rd_ >= 0) ::close(wake_rd_);
            if (wake_wr_ >= 0) ::close(wake_wr_);
            if (reserve_fd_ >= 0) ::close(reserve_fd_);
            listen_fd_ = wake_rd_ = wake_wr_ = reserve_fd_ = -1;
        }

        /// After the loop thread exits: close the wake pipe.  Every writer —
        /// stop()'s wakes and worker completions (all finished before the
        /// service drain returned) — happens-before this, so no write() can
        /// race it or hit a recycled fd.
        void join_and_teardown()
        {
            if (loop_thread_.joinable()) loop_thread_.join();
            close_fds();
        }

        // ---- event loop --------------------------------------------------

        void run_loop()
        {
            obs::tracer::instance().set_thread_name(thread_name_);
            std::vector<ready_event> events;
            std::vector<small_job> batch;
            while (!stop_requested_.load(std::memory_order_acquire)) {
                // Drain phase 1: the listener goes first, while established
                // connections keep flowing (responses for jobs the shared
                // service is still finishing).
                if (drain_requested_.load(std::memory_order_acquire) &&
                    listen_fd_ >= 0)
                    close_listener();
                events.clear();
                poller_->wait(events, -1);
                for (const ready_event& ev : events) {
                    if (ev.id == k_listener_id) {
                        accept_ready();
                    } else if (ev.id == k_wake_id) {
                        drain_wake_pipe();
                        deliver_completions();
                    } else {
                        auto it = conns_.find(ev.id);
                        if (it == conns_.end()) continue;
                        connection& c = *it->second;
                        if (ev.hangup && !ev.readable) {
                            close_conn(c);
                            continue;
                        }
                        if (ev.writable) on_writable(c);
                        // on_writable may have closed the connection.
                        if (conns_.count(ev.id) && ev.readable) on_readable(c, batch);
                    }
                }
                flush_small_jobs(batch);
                OBS_TRACE_COUNTER("net", track_bytes_in_,
                                  bytes_in_.load(std::memory_order_relaxed));
                OBS_TRACE_COUNTER("net", track_bytes_out_,
                                  bytes_out_.load(std::memory_order_relaxed));
            }

            // Drain phase 2 (the service finished every admitted job between
            // the phases): hand the final frames to their connections, flush
            // best-effort, then tear down.
            close_listener();
            deliver_completions();
            for (auto& [id, c] : conns_) flush_blocking(*c);
            for (auto& [id, c] : conns_) {
                c->alive->store(false, std::memory_order_release);
                poller_->remove(c->fd);
                ::close(c->fd);
                OBS_TRACE_ASYNC_END("net", "connection", c->id);
            }
            conns_.clear();
            connections_open_.store(0, std::memory_order_relaxed);
            // The wake pipe stays open: stop() closes it after joining this
            // thread, so a concurrent completion's wake() never writes to a
            // dead fd.
        }

        void close_listener()
        {
            if (listen_fd_ >= 0) {
                poller_->remove(listen_fd_);
                ::close(listen_fd_);
                listen_fd_ = -1;
            }
            listener_closed_.store(true, std::memory_order_release);
        }

        void accept_ready()
        {
            if (listen_fd_ < 0) return;  // raced with drain
            for (;;) {
                const int fd = ::accept(listen_fd_, nullptr, nullptr);
                if (fd < 0) {
                    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
                    if (errno == EINTR) continue;
                    accepts_failed_.fetch_add(1, std::memory_order_relaxed);
                    if (errno == EMFILE || errno == ENFILE) {
                        // Out of fds with a connection still queued: a silent
                        // return would leave the level-triggered poller
                        // re-firing in a hot loop.  Shed the connection
                        // through the emergency reserve instead.
                        OBS_TRACE_INSTANT("net", "accept_fd_exhausted");
                        if (!shed_pending_connection()) {
                            // Could not even shed (system-wide exhaustion,
                            // reserve already gone): bounded backoff beats a
                            // hot spin.
                            std::this_thread::sleep_for(
                                std::chrono::milliseconds(5));
                            return;
                        }
                        continue;  // reserve re-armed; drain any more queued
                    }
                    // ECONNABORTED and friends: that one connection is gone
                    // but the listener is healthy — keep draining the queue.
                    continue;
                }
                set_nonblocking(fd);
                const int one = 1;
                if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one) < 0)
                    log_sockopt_failure("TCP_NODELAY");
                if (cfg().sndbuf_bytes > 0 &&
                    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &cfg().sndbuf_bytes,
                                 sizeof cfg().sndbuf_bytes) < 0)
                    log_sockopt_failure("SO_SNDBUF");
                auto c = std::make_unique<connection>();
                c->fd = fd;
                c->id = next_conn_id_;
                next_conn_id_ += stride_;  // ids stay unique across shards
                poller_->add(fd, c->id, false);
                OBS_TRACE_ASYNC_BEGIN("net", "connection", c->id);
                conns_.emplace(c->id, std::move(c));
                connections_accepted_.fetch_add(1, std::memory_order_relaxed);
                connections_open_.fetch_add(1, std::memory_order_relaxed);
                OBS_TRACE_COUNTER("net", track_connections_, conns_.size());
            }
        }

        /// Free the emergency reserve fd so one accept() can succeed, take
        /// the queued connection, close it immediately (the client sees a
        /// clean close instead of hanging in the backlog), and re-arm the
        /// reserve.  Returns false when not even that accept succeeded.
        bool shed_pending_connection()
        {
            if (reserve_fd_ >= 0) {
                ::close(reserve_fd_);
                reserve_fd_ = -1;
            }
            const int fd = ::accept(listen_fd_, nullptr, nullptr);
            if (fd >= 0) ::close(fd);
            reserve_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
            return fd >= 0;
        }

        void on_readable(connection& c, std::vector<small_job>& batch)
        {
            if (c.closing) return;  // refuse further input after a protocol error
            for (;;) {
                if (c.state == connection::reading::header) {
                    const ssize_t n = ::recv(c.fd, c.hdr_buf + c.hdr_filled,
                                             k_header_size - c.hdr_filled, 0);
                    if (!advance(c, n)) return;
                    c.hdr_filled += static_cast<std::size_t>(n);
                    if (c.hdr_filled < k_header_size) continue;
                    const char* why = nullptr;
                    const auto hdr = decode_request_header(c.hdr_buf, &why);
                    if (!hdr) {
                        refuse_frame(c, status::bad_frame, 0, why);
                        return;
                    }
                    if (hdr->payload_len > cfg().max_payload) {
                        refuse_frame(c, status::too_large, hdr->request_id,
                                     "payload_len above server limit");
                        return;
                    }
                    c.hdr = *hdr;
                    c.hdr_filled = 0;
                    if (hdr->payload_len == 0) {
                        dispatch_frame(c, {}, batch);  // decode of 0 bytes → malformed
                        continue;
                    }
                    c.state = connection::reading::payload;
                    c.payload.resize(hdr->payload_len);
                    c.payload_filled = 0;
                } else {
                    const ssize_t n =
                        ::recv(c.fd, c.payload.data() + c.payload_filled,
                               c.payload.size() - c.payload_filled, 0);
                    if (!advance(c, n)) return;
                    c.payload_filled += static_cast<std::size_t>(n);
                    if (c.payload_filled < c.payload.size()) continue;
                    c.state = connection::reading::header;
                    dispatch_frame(c, std::move(c.payload), batch);
                    c.payload = {};
                    c.payload_filled = 0;
                }
            }
        }

        /// Common recv() outcome handling; returns false when reading must stop
        /// (EAGAIN, disconnect, error).  Closes the connection on EOF/error.
        bool advance(connection& c, ssize_t n)
        {
            if (n > 0) {
                bytes_in_.fetch_add(static_cast<std::uint64_t>(n),
                                    std::memory_order_relaxed);
                return true;
            }
            if (n < 0) {
                // EINTR: readability persists, the level-triggered poller re-fires.
                if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
                    return false;
            }
            // EOF (possibly mid-frame) or hard error: tear the connection down.
            // In-flight decode jobs for it settle into a vanished conn id and are
            // discarded at completion delivery.
            close_conn(c);
            return false;
        }

        void dispatch_frame(connection& c, std::vector<std::uint8_t>&& payload,
                            std::vector<small_job>& batch)
        {
            frames_in_.fetch_add(1, std::memory_order_relaxed);
            const std::uint64_t trace_id = obs::tracer::instance().next_id();
            OBS_TRACE_ASYNC_BEGIN("net", "frame", trace_id);
            decode_options opt;
            opt.prio = c.hdr.priority_raw == 0 ? priority::interactive : priority::batch;
            opt.cache = c.hdr.cache_bypass()  ? cache_policy::bypass
                        : c.hdr.cache_pin()   ? cache_policy::pin
                                              : cache_policy::use;
            // The codec byte routes the job; ids the registry doesn't know
            // (and codec/flag mismatches) come back as typed
            // unsupported_codec errors through the normal completion, so the
            // connection stays open — the frame itself was well-formed.
            opt.codec = c.hdr.codec;
            if (c.hdr.progressive()) {
                // Streaming requests are never coalesced: each one produces a
                // whole response sequence and holds a worker for its duration.
                progressive_streams_.fetch_add(1, std::memory_order_relaxed);
                service().submit_progressive(
                    std::move(payload), opt,
                    make_layer_completion(c.id, c.hdr.request_id, c.hdr.codec,
                                          static_cast<result_format>(c.hdr.format_raw),
                                          trace_id, c.alive));
                return;
            }
            auto done = make_completion(c.id, c.hdr.request_id, c.hdr.codec,
                                        static_cast<result_format>(c.hdr.format_raw),
                                        trace_id);
            if (payload.size() < cfg().small_job_threshold) {
                batch.push_back({c.id, std::move(payload), opt, std::move(done)});
            } else {
                service().submit_async(std::move(payload), opt, std::move(done));
            }
        }

        /// Coalesce the small jobs gathered this poll iteration into one
        /// submit_batch (single pool pump) — a lone small job takes the plain
        /// path, which is the same cost.
        void flush_small_jobs(std::vector<small_job>& batch)
        {
            if (batch.empty()) return;
            if (batch.size() == 1) {
                service().submit_async(std::move(batch[0].bytes), batch[0].opt,
                                       std::move(batch[0].done));
            } else {
                std::vector<decode_service::batch_item> items;
                items.reserve(batch.size());
                for (small_job& sj : batch)
                    items.push_back({std::move(sj.bytes), sj.opt, std::move(sj.done)});
                batches_.fetch_add(1, std::memory_order_relaxed);
                batched_jobs_.fetch_add(items.size(), std::memory_order_relaxed);
                service().submit_batch(std::move(items));
            }
            batch.clear();
        }

        /// Build the completion that runs on the decoding worker: serialise the
        /// result (or map the error to a status), frame it, and hand it to the
        /// owning shard via its completion queue + wake pipe.
        decode_service::completion make_completion(std::uint64_t conn_id,
                                                   std::uint32_t request_id,
                                                   std::uint8_t codec,
                                                   result_format fmt,
                                                   std::uint64_t trace_id)
        {
            return [this, conn_id, request_id, codec, fmt,
                    trace_id](j2k::image&& img, std::exception_ptr err) {
                response_header rh;
                rh.request_id = request_id;
                rh.codec = codec;
                std::vector<std::uint8_t> body;
                if (!err) {
                    rh.st = status::ok;
                    try {
                        body = fmt == result_format::raw ? encode_image_raw(img)
                                                         : j2k::pnm_bytes(img);
                    } catch (const std::exception& e) {
                        rh.st = status::internal_error;
                        body.assign(e.what(), e.what() + std::strlen(e.what()));
                    }
                } else {
                    rh.st = map_error(std::move(err), body);
                }
                enqueue_frame(conn_id, rh, body, trace_id, true);
            };
        }

        /// Map a decode/admission exception onto a response status (diagnostic
        /// text, when any, lands in `body`).
        static status map_error(std::exception_ptr err,
                                std::vector<std::uint8_t>& body)
        {
            try {
                std::rethrow_exception(std::move(err));
            } catch (const codec::codestream_error& e) {
                // One catch covers every codec: j2k::codestream_error is an
                // alias of the codec-neutral base.
                body.assign(e.what(), e.what() + std::strlen(e.what()));
                return status::malformed_codestream;
            } catch (const unsupported_codec& e) {
                body.assign(e.what(), e.what() + std::strlen(e.what()));
                return status::unsupported_codec;
            } catch (const admission_rejected&) {
                return status::shed;
            } catch (const job_dropped&) {
                return status::shed;
            } catch (const service_stopped&) {
                return status::stopped;
            } catch (const std::exception& e) {
                body.assign(e.what(), e.what() + std::strlen(e.what()));
                return status::internal_error;
            }
        }

        /// Frame a response and hand it to the shard's loop (worker side).
        void enqueue_frame(std::uint64_t conn_id, response_header rh,
                           const std::vector<std::uint8_t>& body,
                           std::uint64_t trace_id, bool end_span)
        {
            rh.payload_len = static_cast<std::uint32_t>(body.size());
            std::vector<std::uint8_t> frame(k_header_size + body.size());
            encode_response_header(rh, frame.data());
            std::copy(body.begin(), body.end(), frame.begin() + k_header_size);
            {
                std::lock_guard lk{completions_m_};
                completions_.push_back({conn_id, std::move(frame), trace_id, end_span});
            }
            wake();
        }

        /// Per-layer completion for progressive requests: each refinement becomes
        /// one `streaming` frame (layer sub-header + encoded image); a terminal
        /// error becomes a plain error frame; a vanished client cancels the rest
        /// of the session by returning false.
        decode_service::progressive_completion make_layer_completion(
            std::uint64_t conn_id, std::uint32_t request_id, std::uint8_t codec,
            result_format fmt, std::uint64_t trace_id,
            std::shared_ptr<std::atomic<bool>> alive)
        {
            return [this, conn_id, request_id, codec, fmt, trace_id,
                    alive = std::move(alive)](decode_service::layer_event&& ev,
                                              std::exception_ptr err) -> bool {
                if (!alive->load(std::memory_order_acquire)) {
                    streams_cancelled_.fetch_add(1, std::memory_order_relaxed);
                    OBS_TRACE_INSTANT("net", "stream_cancelled");
                    OBS_TRACE_ASYNC_END("net", "frame", trace_id);
                    return false;
                }
                response_header rh;
                rh.request_id = request_id;
                rh.codec = codec;
                std::vector<std::uint8_t> body;
                bool last = true;
                if (!err) {
                    rh.st = status::streaming;
                    last = ev.last;
                    body.resize(k_layer_header_size);
                    encode_layer_header({static_cast<std::uint8_t>(ev.layer),
                                         static_cast<std::uint8_t>(ev.total),
                                         static_cast<std::uint8_t>(ev.last ? 1 : 0)},
                                        body.data());
                    try {
                        const std::vector<std::uint8_t> px =
                            fmt == result_format::raw ? encode_image_raw(ev.img)
                                                      : j2k::pnm_bytes(ev.img);
                        body.insert(body.end(), px.begin(), px.end());
                    } catch (const std::exception& e) {
                        rh.st = status::internal_error;
                        body.assign(e.what(), e.what() + std::strlen(e.what()));
                        last = true;
                    }
                } else {
                    rh.st = map_error(std::move(err), body);
                }
                if (rh.st == status::streaming)
                    layer_frames_out_.fetch_add(1, std::memory_order_relaxed);
                enqueue_frame(conn_id, rh, body, trace_id, last);
                return rh.st == status::streaming;
            };
        }

        /// Loop thread: move completed frames onto their connections and
        /// flush.  A connection whose unsent backlog exceeds the outbound cap
        /// after the flush is a stalled reader: close it (which also cancels
        /// its progressive session via the alive flag) rather than queueing
        /// frames without bound.
        void deliver_completions()
        {
            std::vector<completion_record> ready;
            {
                std::lock_guard lk{completions_m_};
                ready.swap(completions_);
            }
            for (completion_record& r : ready) {
                if (r.end_span) OBS_TRACE_ASYNC_END("net", "frame", r.trace_id);
                auto it = conns_.find(r.conn_id);
                if (it == conns_.end()) continue;  // client went away mid-decode
                connection& c = *it->second;
                c.out_bytes += r.frame.size();
                c.out.push_back(std::move(r.frame));
                on_writable(c);
                // on_writable may have closed (and erased) the connection.
                auto again = conns_.find(r.conn_id);
                if (again != conns_.end() &&
                    again->second->out_bytes > cfg().max_outbound_bytes) {
                    slow_reader_closed_.fetch_add(1, std::memory_order_relaxed);
                    OBS_TRACE_INSTANT("net", "slow_reader_closed");
                    close_conn(*again->second);
                }
            }
        }

        /// Refuse the in-progress frame: queue an error response, stop reading
        /// from this connection, and close once the response drains.  (After a
        /// framing error the byte stream cannot be resynchronised.)
        void refuse_frame(connection& c, status st, std::uint32_t request_id,
                          const char* message)
        {
            bad_frames_.fetch_add(1, std::memory_order_relaxed);
            response_header rh;
            rh.st = st;
            rh.request_id = request_id;
            const std::size_t len = message ? std::strlen(message) : 0;
            rh.payload_len = static_cast<std::uint32_t>(len);
            std::vector<std::uint8_t> frame(k_header_size + len);
            encode_response_header(rh, frame.data());
            if (len) std::memcpy(frame.data() + k_header_size, message, len);
            c.out_bytes += frame.size();
            c.out.push_back(std::move(frame));
            c.closing = true;
            OBS_TRACE_INSTANT("net", "frame_refused");
            on_writable(c);
        }

        void on_writable(connection& c)
        {
            while (!c.out.empty()) {
                const std::vector<std::uint8_t>& front = c.out.front();
                const ssize_t n = ::send(c.fd, front.data() + c.out_off,
                                         front.size() - c.out_off, MSG_NOSIGNAL);
                if (n < 0) {
                    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
                    if (errno == EINTR) continue;
                    close_conn(c);
                    return;
                }
                bytes_out_.fetch_add(static_cast<std::uint64_t>(n),
                                     std::memory_order_relaxed);
                c.out_off += static_cast<std::size_t>(n);
                c.out_bytes -= static_cast<std::size_t>(n);
                if (c.out_off == front.size()) {
                    c.out.pop_front();
                    c.out_off = 0;
                    responses_out_.fetch_add(1, std::memory_order_relaxed);
                }
            }
            if (c.out.empty() && c.closing) {
                close_conn(c);
                return;
            }
            const bool want_write = !c.out.empty();
            if (want_write != c.want_write) {
                c.want_write = want_write;
                poller_->update(c.fd, c.id, want_write);
            }
        }

        /// Best-effort synchronous flush during shutdown (sockets switched back
        /// to blocking with a short send timeout; errors are ignored).
        void flush_blocking(connection& c)
        {
            if (c.out.empty()) return;
            const int flags = ::fcntl(c.fd, F_GETFL, 0);
            if (flags >= 0) ::fcntl(c.fd, F_SETFL, flags & ~O_NONBLOCK);
            timeval tv{1, 0};
            if (::setsockopt(c.fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv) < 0)
                log_sockopt_failure("SO_SNDTIMEO");
            while (!c.out.empty()) {
                const std::vector<std::uint8_t>& front = c.out.front();
                const ssize_t n = ::send(c.fd, front.data() + c.out_off,
                                         front.size() - c.out_off, MSG_NOSIGNAL);
                if (n <= 0) return;
                bytes_out_.fetch_add(static_cast<std::uint64_t>(n),
                                     std::memory_order_relaxed);
                c.out_off += static_cast<std::size_t>(n);
                c.out_bytes -= static_cast<std::size_t>(n);
                if (c.out_off == front.size()) {
                    c.out.pop_front();
                    c.out_off = 0;
                    responses_out_.fetch_add(1, std::memory_order_relaxed);
                }
            }
        }

        void close_conn(connection& c)
        {
            c.alive->store(false, std::memory_order_release);
            poller_->remove(c.fd);
            ::close(c.fd);
            OBS_TRACE_ASYNC_END("net", "connection", c.id);
            conns_.erase(c.id);  // destroys c — must be the last use
            connections_open_.fetch_sub(1, std::memory_order_relaxed);
            OBS_TRACE_COUNTER("net", track_connections_, conns_.size());
        }

        void wake()
        {
            const std::uint8_t b = 1;
            // Non-blocking: a full pipe already guarantees a pending wakeup.
            [[maybe_unused]] const ssize_t n = ::write(wake_wr_, &b, 1);
        }

        void drain_wake_pipe()
        {
            std::uint8_t buf[256];
            while (::read(wake_rd_, buf, sizeof buf) > 0) {
            }
        }

        // ---- state -------------------------------------------------------

        impl& owner_;
        const std::size_t index_;
        const std::size_t stride_;  ///< conn-id stride = shard count

        int listen_fd_ = -1;
        int wake_rd_ = -1;
        int wake_wr_ = -1;
        int reserve_fd_ = -1;  ///< emergency fd released to shed at EMFILE
        std::unique_ptr<poller> poller_;
        std::unordered_map<std::uint64_t, std::unique_ptr<connection>> conns_;
        std::uint64_t next_conn_id_;

        std::mutex completions_m_;
        std::vector<completion_record> completions_;

        std::thread loop_thread_;
        std::atomic<bool> drain_requested_{false};
        std::atomic<bool> listener_closed_{false};
        std::atomic<bool> stop_requested_{false};

        // Per-shard trace identity (shared single-loop names when shards == 1,
        // so existing trace consumers see the classic tracks).
        const char* thread_name_ = "net-loop";
        const char* track_bytes_in_ = "net_bytes_in";
        const char* track_bytes_out_ = "net_bytes_out";
        const char* track_connections_ = "net_connections";

        std::atomic<std::uint64_t> connections_accepted_{0};
        std::atomic<std::uint64_t> connections_open_{0};
        std::atomic<std::uint64_t> accepts_failed_{0};
        std::atomic<std::uint64_t> frames_in_{0};
        std::atomic<std::uint64_t> responses_out_{0};
        std::atomic<std::uint64_t> bytes_in_{0};
        std::atomic<std::uint64_t> bytes_out_{0};
        std::atomic<std::uint64_t> batches_{0};
        std::atomic<std::uint64_t> batched_jobs_{0};
        std::atomic<std::uint64_t> bad_frames_{0};
        std::atomic<std::uint64_t> slow_reader_closed_{0};
        std::atomic<std::uint64_t> progressive_streams_{0};
        std::atomic<std::uint64_t> layer_frames_out_{0};
        std::atomic<std::uint64_t> streams_cancelled_{0};

        [[nodiscard]] stats_snapshot stats() const noexcept
        {
            stats_snapshot s;
            s.connections_accepted =
                connections_accepted_.load(std::memory_order_relaxed);
            s.connections_open = connections_open_.load(std::memory_order_relaxed);
            s.accepts_failed = accepts_failed_.load(std::memory_order_relaxed);
            s.frames_in = frames_in_.load(std::memory_order_relaxed);
            s.responses_out = responses_out_.load(std::memory_order_relaxed);
            s.bytes_in = bytes_in_.load(std::memory_order_relaxed);
            s.bytes_out = bytes_out_.load(std::memory_order_relaxed);
            s.batches = batches_.load(std::memory_order_relaxed);
            s.batched_jobs = batched_jobs_.load(std::memory_order_relaxed);
            s.bad_frames = bad_frames_.load(std::memory_order_relaxed);
            s.slow_reader_closed =
                slow_reader_closed_.load(std::memory_order_relaxed);
            s.progressive_streams =
                progressive_streams_.load(std::memory_order_relaxed);
            s.layer_frames_out = layer_frames_out_.load(std::memory_order_relaxed);
            s.streams_cancelled =
                streams_cancelled_.load(std::memory_order_relaxed);
            return s;
        }
    };

    // ---- whole-server lifecycle ------------------------------------------

    void start()
    {
        if (running_) return;
        const std::size_t n = resolve_shards(cfg_.shards);
        shards_.clear();
        shards_.reserve(n);
        try {
            // Shard 0 resolves the port (cfg_.port may be 0 = ephemeral);
            // every further shard binds the same concrete port through
            // SO_REUSEPORT.  All listeners carry the option whenever there is
            // more than one, shard 0 included — it must be set before bind.
            for (std::size_t i = 0; i < n; ++i) {
                auto s = std::make_unique<shard>(*this, i, n);
                std::uint16_t bound = 0;
                s->open(i == 0 ? cfg_.port : port_, n > 1, &bound);
                if (i == 0) port_ = bound;
                shards_.push_back(std::move(s));
            }
        } catch (...) {
            for (auto& s : shards_) s->close_fds();  // no threads running yet
            shards_.clear();
            throw;
        }
        for (auto& s : shards_) s->launch();
        running_ = true;
    }

    void stop()
    {
        if (!running_) return;
        // Phase 1: stop every listener first — no shard admits new
        // connections while any other is still draining.
        for (auto& s : shards_) {
            s->drain_requested_.store(true, std::memory_order_release);
            s->wake();
        }
        for (auto& s : shards_)
            while (!s->listener_closed_.load(std::memory_order_acquire))
                std::this_thread::sleep_for(std::chrono::microseconds(100));
        // Phase 2: drain the shared service (this flips draining() — a
        // /readyz probe goes 503 here) while the loops keep delivering
        // completions and flushing responses to live clients.
        service_.shutdown();
        // Phase 3: all jobs settled, all frames queued on their shards; let
        // the loops run their final delivery + blocking flush and exit.
        for (auto& s : shards_) {
            s->stop_requested_.store(true, std::memory_order_release);
            s->wake();
        }
        for (auto& s : shards_) s->join_and_teardown();
        running_ = false;
    }

    // ---- state -----------------------------------------------------------

    server_config cfg_;
    decode_service service_;
    std::vector<std::unique_ptr<shard>> shards_;
    std::uint16_t port_ = 0;
    bool running_ = false;
};

server::server(server_config cfg) : impl_{std::make_unique<impl>(std::move(cfg))} {}

server::~server() = default;  // impl dtor stops the loops

void server::start() { impl_->start(); }

void server::stop() { impl_->stop(); }

std::uint16_t server::port() const noexcept { return impl_->port_; }

std::size_t server::shards() const noexcept { return impl_->shards_.size(); }

decode_service& server::service() noexcept { return impl_->service_; }

const decode_service& server::service() const noexcept { return impl_->service_; }

server::stats_snapshot server::stats() const noexcept
{
    stats_snapshot total;
    for (const auto& sh : impl_->shards_) {
        const stats_snapshot s = sh->stats();
        total.connections_accepted += s.connections_accepted;
        total.connections_open += s.connections_open;
        total.accepts_failed += s.accepts_failed;
        total.frames_in += s.frames_in;
        total.responses_out += s.responses_out;
        total.bytes_in += s.bytes_in;
        total.bytes_out += s.bytes_out;
        total.batches += s.batches;
        total.batched_jobs += s.batched_jobs;
        total.bad_frames += s.bad_frames;
        total.slow_reader_closed += s.slow_reader_closed;
        total.progressive_streams += s.progressive_streams;
        total.layer_frames_out += s.layer_frames_out;
        total.streams_cancelled += s.streams_cancelled;
    }
    return total;
}

server::stats_snapshot server::stats(std::size_t shard) const noexcept
{
    if (shard >= impl_->shards_.size()) return {};
    return impl_->shards_[shard]->stats();
}

}  // namespace runtime::net
