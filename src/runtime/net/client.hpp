// runtime/net/client.hpp — minimal blocking client for the decode server.
//
// Covers the two usage shapes the tests and examples need: the one-shot
// convenience (`decode()` = send + wait for the matching response) and
// explicit pipelining (`send()` / `send_burst()` N frames, then `recv()` N
// responses, correlating by request_id — the server answers in completion
// order).
#pragma once

#include "protocol.hpp"

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace runtime::net {

/// One request to put on the wire.
struct request {
    std::span<const std::uint8_t> codestream;
    std::uint8_t priority = 1;  ///< 0 interactive, 1 batch
    result_format format = result_format::raw;
    std::uint32_t request_id = 0;
    bool progressive = false;   ///< stream one response per quality layer
    bool cache_bypass = false;  ///< decode without the server's result cache
    bool cache_pin = false;     ///< pin the cached entry (exclusive with bypass)
    std::uint8_t codec = 0;     ///< codec wire id (0 = j2k, 1 = ccsds123)
};

/// One response off the wire.
struct response {
    status st = status::ok;
    std::uint8_t codec = 0;  ///< echo of the request's codec byte
    std::uint32_t request_id = 0;
    std::vector<std::uint8_t> payload;  ///< image bytes (ok) or diagnostic text

    [[nodiscard]] bool ok() const noexcept { return st == status::ok; }
    /// Diagnostic payload as text (error responses).
    [[nodiscard]] std::string message() const
    {
        return {payload.begin(), payload.end()};
    }
};

/// One refinement split out of a `status::streaming` response.
struct layer_frame {
    int layer = 0;  ///< 1-based refinement index
    int total = 0;  ///< refinements the stream will emit
    bool last = false;
    std::span<const std::uint8_t> image;  ///< encoded image, sub-header stripped
};

/// Split a streaming response into its layer sub-header and image bytes.
/// Returns nullopt when the response is not `status::streaming` or its
/// sub-header fails validation.  The span aliases `r.payload` — it dies with
/// the response.
[[nodiscard]] std::optional<layer_frame> split_layer_frame(const response& r);

class client {
public:
    /// Connect (blocking) to a decode server.  Numeric IPv4 host only.
    client(const std::string& host, std::uint16_t port);
    ~client();

    client(const client&) = delete;
    client& operator=(const client&) = delete;
    client(client&& other) noexcept;
    client& operator=(client&& other) noexcept;

    /// Frame and send one request (blocking until fully written).
    void send(const request& r);

    /// Frame all requests into one buffer and write it with a single send
    /// loop — lands as one readable burst at the server, which is what lets
    /// its per-iteration batcher coalesce the jobs.
    void send_burst(const std::vector<request>& rs);

    /// Read one complete response frame (blocking).  Throws std::runtime_error
    /// on EOF mid-frame or a malformed response header.
    [[nodiscard]] response recv();

    /// send() + recv() one frame.  Only valid when no responses are pending.
    [[nodiscard]] response decode(const request& r);

    /// Send a progressive request and block through the whole stream, invoking
    /// `on_layer` for each refinement in layer order.  Returns the terminal
    /// response: the `last = 1` streaming frame, or the error frame that cut
    /// the stream short.  Only valid when no responses are pending.  Forces
    /// `r.progressive` on regardless of the caller's flag.
    [[nodiscard]] response decode_progressive(
        const request& r, const std::function<void(const layer_frame&)>& on_layer);

    /// Half-close the write side (server sees EOF after pending frames).
    void shutdown_write() noexcept;

    /// Raw socket fd — tests use it to inject torn/garbage bytes.
    [[nodiscard]] int fd() const noexcept { return fd_; }

private:
    int fd_ = -1;
};

}  // namespace runtime::net
