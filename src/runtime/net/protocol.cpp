#include "protocol.hpp"

#include <stdexcept>

namespace runtime::net {

namespace {

void put_u32(std::uint8_t* p, std::uint32_t v) noexcept
{
    p[0] = static_cast<std::uint8_t>(v >> 24);
    p[1] = static_cast<std::uint8_t>(v >> 16);
    p[2] = static_cast<std::uint8_t>(v >> 8);
    p[3] = static_cast<std::uint8_t>(v);
}

[[nodiscard]] std::uint32_t get_u32(const std::uint8_t* p) noexcept
{
    return (static_cast<std::uint32_t>(p[0]) << 24) |
           (static_cast<std::uint32_t>(p[1]) << 16) |
           (static_cast<std::uint32_t>(p[2]) << 8) | static_cast<std::uint32_t>(p[3]);
}

}  // namespace

void encode_request_header(const request_header& h, std::uint8_t out[k_header_size])
{
    put_u32(out, k_magic);
    out[4] = k_version;
    out[5] = h.priority_raw;
    out[6] = h.format_raw;
    out[7] = h.flags;
    out[8] = h.codec;
    out[9] = 0;
    out[10] = 0;
    out[11] = 0;
    put_u32(out + 12, h.request_id);
    put_u32(out + 16, h.payload_len);
}

std::optional<request_header> decode_request_header(std::span<const std::uint8_t> in,
                                                    const char** why)
{
    const auto fail = [&](const char* reason) -> std::optional<request_header> {
        if (why) *why = reason;
        return std::nullopt;
    };
    if (in.size() < k_header_size) return fail("short header");
    if (get_u32(in.data()) != k_magic) return fail("bad magic");
    if (in[4] != k_version) return fail("unsupported version");
    request_header h;
    h.priority_raw = in[5];
    h.format_raw = in[6];
    if (h.priority_raw > 1) return fail("bad priority byte");
    if (h.format_raw > 1) return fail("bad format byte");
    h.flags = in[7];
    if ((h.flags & ~k_flag_known_mask) != 0) return fail("unknown flag bits");
    if (h.cache_bypass() && h.cache_pin()) return fail("bypass+pin flags conflict");
    h.codec = in[8];  // any id is structurally valid; the server answers
                      // unknown ones with status::unsupported_codec
    if (in[9] != 0 || in[10] != 0 || in[11] != 0) return fail("nonzero reserved bytes");
    h.request_id = get_u32(in.data() + 12);
    h.payload_len = get_u32(in.data() + 16);
    return h;
}

void encode_response_header(const response_header& h, std::uint8_t out[k_header_size])
{
    put_u32(out, k_magic);
    out[4] = k_version;
    out[5] = static_cast<std::uint8_t>(h.st);
    out[6] = h.codec;
    out[7] = 0;
    put_u32(out + 8, 0);
    put_u32(out + 12, h.request_id);
    put_u32(out + 16, h.payload_len);
}

std::optional<response_header> decode_response_header(std::span<const std::uint8_t> in)
{
    if (in.size() < k_header_size) return std::nullopt;
    if (get_u32(in.data()) != k_magic) return std::nullopt;
    if (in[4] != k_version) return std::nullopt;
    if (in[5] > static_cast<std::uint8_t>(status::unsupported_codec))
        return std::nullopt;
    response_header h;
    h.st = static_cast<status>(in[5]);
    h.codec = in[6];
    h.request_id = get_u32(in.data() + 12);
    h.payload_len = get_u32(in.data() + 16);
    return h;
}

void encode_layer_header(const layer_header& h, std::uint8_t out[k_layer_header_size])
{
    out[0] = h.layer;
    out[1] = h.total;
    out[2] = h.last;
    out[3] = 0;
}

std::optional<layer_header> decode_layer_header(std::span<const std::uint8_t> in)
{
    if (in.size() < k_layer_header_size) return std::nullopt;
    layer_header h;
    h.layer = in[0];
    h.total = in[1];
    h.last = in[2];
    if (in[3] != 0) return std::nullopt;
    if (h.layer < 1 || h.total < 1 || h.layer > h.total) return std::nullopt;
    if (h.last > 1) return std::nullopt;
    if ((h.last == 1) != (h.layer == h.total)) return std::nullopt;
    return h;
}

std::vector<std::uint8_t> encode_image_raw(const j2k::image& img)
{
    const int maxv = (1 << img.bit_depth()) - 1;
    const bool wide = img.bit_depth() > 8;
    const std::size_t samples = static_cast<std::size_t>(img.width()) * img.height() *
                                img.components();
    std::vector<std::uint8_t> out;
    out.reserve(12 + samples * (wide ? 2 : 1));
    out.resize(12);
    put_u32(out.data(), static_cast<std::uint32_t>(img.width()));
    put_u32(out.data() + 4, static_cast<std::uint32_t>(img.height()));
    out[8] = static_cast<std::uint8_t>(img.components());
    out[9] = static_cast<std::uint8_t>(img.bit_depth());
    out[10] = 0;
    out[11] = 0;
    for (int c = 0; c < img.components(); ++c) {
        const j2k::plane& pl = img.comp(c);
        for (int y = 0; y < pl.height(); ++y) {
            const std::int32_t* row = pl.row(y);
            for (int x = 0; x < pl.width(); ++x) {
                int v = row[x];
                v = v < 0 ? 0 : (v > maxv ? maxv : v);
                if (wide) out.push_back(static_cast<std::uint8_t>(v >> 8));
                out.push_back(static_cast<std::uint8_t>(v & 0xFF));
            }
        }
    }
    return out;
}

j2k::image decode_image_raw(std::span<const std::uint8_t> in)
{
    if (in.size() < 12) throw std::runtime_error{"raw image: short header"};
    const int w = static_cast<int>(get_u32(in.data()));
    const int h = static_cast<int>(get_u32(in.data() + 4));
    const int comps = in[8];
    const int depth = in[9];
    // comps is a u8, so the structural ceiling is codec::k_max_components
    // (255) — multispectral payloads carry every band the container allows.
    if (w <= 0 || h <= 0 || comps < 1 || depth < 1 || depth > 16)
        throw std::runtime_error{"raw image: bad geometry"};
    const bool wide = depth > 8;
    const std::size_t samples =
        static_cast<std::size_t>(w) * static_cast<std::size_t>(h) * comps;
    if (in.size() != 12 + samples * (wide ? 2 : 1))
        throw std::runtime_error{"raw image: size mismatch"};
    j2k::image img{w, h, comps, depth};
    const std::uint8_t* p = in.data() + 12;
    for (int c = 0; c < comps; ++c) {
        j2k::plane& pl = img.comp(c);
        for (int y = 0; y < h; ++y) {
            std::int32_t* row = pl.row(y);
            for (int x = 0; x < w; ++x) {
                int v = *p++;
                if (wide) v = (v << 8) | *p++;
                row[x] = v;
            }
        }
    }
    return img;
}

}  // namespace runtime::net
