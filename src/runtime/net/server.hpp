// runtime/net/server.hpp — sharded async socket admission front-end for the
// decode service.
//
// The front-end runs `shards` independent event-loop shards.  Each shard owns
// its own `SO_REUSEPORT` listener on the same port, its own poller (epoll on
// Linux, poll(2) fallback), wake pipe, completion queue, small-job batcher,
// and stats block; the kernel hashes incoming connections across the
// listeners, so there is no shared accept lock and no cross-shard handoff — a
// connection lives its whole life on the shard that accepted it.  All shards
// feed the one shared `decode_service` pool; completions wake only the owning
// shard's self-pipe.  `shards = 1` (the default) is byte-for-byte the classic
// single-loop server; `shards = 0` sizes from hardware concurrency.
//
//   socket ──► [shard 0: listener+poller+batcher] ──┐
//   socket ──► [shard 1: listener+poller+batcher] ──┼─► decode_service (pool)
//   socket ──► [shard N: listener+poller+batcher] ──┘        │ worker:
//      ▲                                                     │ serialise
//      └── framed response ◄── owning shard's queue + wake ◄─┘
//
// The data path is zero intermediate copy: payload bytes are recv()'d
// directly into the arena buffer that becomes the job's owned storage
// (`decode_service::submit_async` moves it, no memcpy), and result
// serialisation happens on the pool worker that decoded the job, off the
// loop.
//
// Small-job batching: requests whose payload is below
// `small_job_threshold` are coalesced per poll iteration *per shard* and
// admitted through `submit_batch` — one pool pump for the whole burst instead
// of one per request.
//
// Overload never blocks a loop: configure the service with `reject` or
// `drop_oldest` (the default here is reject) and shed requests come back as
// framed `status::shed` responses.  Two further shedding valves protect the
// loops themselves:
//   * fd exhaustion — each shard holds an emergency reserve fd; on
//     EMFILE/ENFILE it releases the reserve, accepts the pending connection,
//     closes it immediately, and re-arms (counted in `accepts_failed`).
//     Without the shed, a level-triggered poller re-fires on the undrained
//     listener in a hot loop.
//   * slow readers — a connection whose unsent outbound queue exceeds
//     `max_outbound_bytes` (streamed progressive frames against a stalled
//     reader) is closed and its session cancelled (`slow_reader_closed`).
//
// Graceful drain (`stop()`): every shard's listener closes first, then the
// shared service drains — `decode_service::draining()` flips a /readyz probe
// at that moment — while the loops keep flushing in-flight responses; only
// then do the loops exit and the remaining connections flush synchronously.
//
// Progressive requests (k_flag_progressive) dispatch through
// `submit_progressive`: the worker streams one `status::streaming` frame per
// quality layer back through the owning shard's completion queue, and a
// per-connection liveness flag cancels the remaining layers the moment the
// client goes away.
#pragma once

#include "protocol.hpp"

#include <runtime/service.hpp>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

namespace runtime::net {

struct server_config {
    std::string bind_address = "127.0.0.1";
    std::uint16_t port = 0;  ///< 0 = ephemeral (read the bound port via port())
    /// Decode service behind the loops.  `block` at admission would stall an
    /// event loop, so the server overrides it to `reject` unless the policy
    /// is already a non-blocking one.
    service_config service{.queue_capacity = 64, .policy = backpressure::reject};
    /// Event-loop shards, each with its own SO_REUSEPORT listener.  1 (the
    /// default) preserves the classic single-loop behaviour; 0 sizes from
    /// hardware concurrency (clamped to 16).
    std::size_t shards = 1;
    std::size_t max_payload = 64u << 20;       ///< frames above this are refused
    /// Per-connection unsent outbound byte cap: a reader stalled below the
    /// rate the server streams at is disconnected (and its progressive
    /// session cancelled) once this much response data is queued.
    std::size_t max_outbound_bytes = 64u << 20;
    std::size_t small_job_threshold = 4096;    ///< coalesce payloads below this
    /// Fixed SO_SNDBUF for accepted sockets (0 = kernel default with
    /// autotuning).  Setting it bounds kernel-side buffering per connection,
    /// which makes `max_outbound_bytes` the real backlog ceiling instead of
    /// "cap plus whatever the kernel autotunes to".
    int sndbuf_bytes = 0;
    bool use_poll = false;                     ///< force the poll(2) fallback
    int listen_backlog = 64;
};

class server {
public:
    explicit server(server_config cfg = {});
    ~server();  ///< implies stop()

    server(const server&) = delete;
    server& operator=(const server&) = delete;

    /// Bind every shard's listener, and start the event loop threads.  Throws
    /// std::system_error on socket failures.
    void start();

    /// Graceful drain: stop accepting on every shard, drain every admitted
    /// decode job, flush pending responses, close all connections, join the
    /// loop threads.  Idempotent.
    void stop();

    /// Actual bound port (after start(); useful with port = 0).  All shards
    /// listen on this one port.
    [[nodiscard]] std::uint16_t port() const noexcept;

    /// Event-loop shards actually running (resolved from config at start()).
    [[nodiscard]] std::size_t shards() const noexcept;

    /// The decode service behind the loops (metrics, queue depths).
    [[nodiscard]] decode_service& service() noexcept;
    [[nodiscard]] const decode_service& service() const noexcept;

    /// Loop-side counters (all monotonic except connections_open).
    struct stats_snapshot {
        std::uint64_t connections_accepted = 0;
        std::uint64_t connections_open = 0;
        std::uint64_t accepts_failed = 0;   ///< accept() errors incl. fd exhaustion
        std::uint64_t frames_in = 0;      ///< complete request frames parsed
        std::uint64_t responses_out = 0;  ///< response frames fully written
        std::uint64_t bytes_in = 0;
        std::uint64_t bytes_out = 0;
        std::uint64_t batches = 0;        ///< submit_batch calls (>= 2 jobs)
        std::uint64_t batched_jobs = 0;   ///< jobs admitted through those
        std::uint64_t bad_frames = 0;     ///< protocol errors (frame refused)
        std::uint64_t slow_reader_closed = 0;  ///< outbound-cap disconnects
        std::uint64_t progressive_streams = 0;  ///< progressive requests accepted
        std::uint64_t layer_frames_out = 0;     ///< streaming frames enqueued
        std::uint64_t streams_cancelled = 0;    ///< streams cut by client departure
    };
    /// Aggregate across every shard.
    [[nodiscard]] stats_snapshot stats() const noexcept;
    /// One shard's counters (shard < shards()).
    [[nodiscard]] stats_snapshot stats(std::size_t shard) const noexcept;

private:
    struct impl;
    std::unique_ptr<impl> impl_;
};

}  // namespace runtime::net
