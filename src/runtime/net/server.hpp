// runtime/net/server.hpp — async socket admission front-end for the decode
// service.
//
// A single-threaded non-blocking event loop (epoll on Linux, poll(2)
// fallback) owns every connection; decode work never runs on the loop thread.
// The data path is zero intermediate copy: payload bytes are recv()'d
// directly into the arena buffer that becomes the job's owned storage
// (`decode_service::submit_async` moves it, no memcpy), and result
// serialisation happens on the pool worker that decoded the job, off the
// loop.  Completions cross back via a mutex-guarded queue plus a self-pipe
// wakeup, so responses interleave fairly with new reads.
//
//   socket ─► [event loop: frame parser, arena reads] ─► decode_service
//      ▲                                                     │ worker:
//      └── framed response ◄─ completion queue + wake ◄──────┘ serialise
//
// Small-job batching: requests whose payload is below
// `small_job_threshold` are coalesced per poll iteration and admitted
// through `submit_batch` — one pool pump for the whole burst instead of one
// per request (visible as pool_submissions < jobs_submitted in the service
// metrics).
//
// Overload never blocks the loop: configure the service with `reject` or
// `drop_oldest` (the default here is reject) and shed requests come back as
// framed `status::shed` responses; per-priority queue capacities reserve
// headroom for interactive traffic while batch floods shed early.
//
// Progressive requests (k_flag_progressive) dispatch through
// `submit_progressive`: the worker streams one `status::streaming` frame per
// quality layer back through the completion queue, and a per-connection
// liveness flag cancels the remaining layers the moment the client goes away
// (mid-stream disconnects do not hold a worker hostage).
#pragma once

#include "protocol.hpp"

#include <runtime/service.hpp>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

namespace runtime::net {

struct server_config {
    std::string bind_address = "127.0.0.1";
    std::uint16_t port = 0;  ///< 0 = ephemeral (read the bound port via port())
    /// Decode service behind the loop.  `block` would stall the event loop at
    /// admission, so the server overrides it to `reject` unless the policy is
    /// already a non-blocking one.
    service_config service{.queue_capacity = 64, .policy = backpressure::reject};
    std::size_t max_payload = 64u << 20;       ///< frames above this are refused
    std::size_t small_job_threshold = 4096;    ///< coalesce payloads below this
    bool use_poll = false;                     ///< force the poll(2) fallback
    int listen_backlog = 64;
};

class server {
public:
    explicit server(server_config cfg = {});
    ~server();  ///< implies stop()

    server(const server&) = delete;
    server& operator=(const server&) = delete;

    /// Bind, listen, and start the event loop thread.  Throws
    /// std::system_error on socket failures.
    void start();

    /// Stop accepting, drain every admitted decode job, flush pending
    /// responses best-effort, close all connections, join the loop thread.
    /// Idempotent.
    void stop();

    /// Actual bound port (after start(); useful with port = 0).
    [[nodiscard]] std::uint16_t port() const noexcept;

    /// The decode service behind the loop (metrics, queue depths).
    [[nodiscard]] decode_service& service() noexcept;
    [[nodiscard]] const decode_service& service() const noexcept;

    /// Loop-side counters (all monotonic except connections_open).
    struct stats_snapshot {
        std::uint64_t connections_accepted = 0;
        std::uint64_t connections_open = 0;
        std::uint64_t frames_in = 0;      ///< complete request frames parsed
        std::uint64_t responses_out = 0;  ///< response frames fully written
        std::uint64_t bytes_in = 0;
        std::uint64_t bytes_out = 0;
        std::uint64_t batches = 0;        ///< submit_batch calls (>= 2 jobs)
        std::uint64_t batched_jobs = 0;   ///< jobs admitted through those
        std::uint64_t bad_frames = 0;     ///< protocol errors (frame refused)
        std::uint64_t progressive_streams = 0;  ///< progressive requests accepted
        std::uint64_t layer_frames_out = 0;     ///< streaming frames enqueued
        std::uint64_t streams_cancelled = 0;    ///< streams cut by client departure
    };
    [[nodiscard]] stats_snapshot stats() const noexcept;

private:
    struct impl;
    std::unique_ptr<impl> impl_;
};

}  // namespace runtime::net
