// runtime/net/poller.hpp — readiness-notification backend shared by every
// socket-driven loop in the runtime (the J2NE admission front-end in
// net/server.cpp, the HTTP ops plane in ops/ops_server.cpp).
//
// epoll where available, poll(2) otherwise; level-triggered in both cases, so
// a partially drained socket re-fires.  Each registered fd carries a caller
// id that comes back in the ready_event — loops key their connection maps on
// it instead of the fd, which sidesteps fd-recycling races on close paths.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace runtime::net {

/// Throws std::system_error carrying the current errno.
[[noreturn]] void throw_errno(const char* what);

/// O_NONBLOCK on an open fd; throws std::system_error on failure.
void set_nonblocking(int fd);

/// One readiness event delivered by a poller.
struct ready_event {
    std::uint64_t id = 0;
    bool readable = false;
    bool writable = false;
    bool hangup = false;
};

/// Readiness-notification backend: epoll where available, poll(2) otherwise.
class poller {
public:
    virtual ~poller() = default;
    virtual void add(int fd, std::uint64_t id, bool want_write) = 0;
    virtual void update(int fd, std::uint64_t id, bool want_write) = 0;
    virtual void remove(int fd) = 0;
    /// Append ready events to `out`; timeout_ms < 0 blocks indefinitely.
    virtual void wait(std::vector<ready_event>& out, int timeout_ms) = 0;
};

/// Best backend for this platform; `force_poll` selects the poll(2) fallback
/// even where epoll exists (exercised by tests and the `use_poll` configs).
std::unique_ptr<poller> make_poller(bool force_poll);

}  // namespace runtime::net
