#include "client.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace runtime::net {

namespace {

void send_all(int fd, const std::uint8_t* data, std::size_t len)
{
    std::size_t off = 0;
    while (off < len) {
        const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            throw std::system_error{errno, std::generic_category(), "send"};
        }
        off += static_cast<std::size_t>(n);
    }
}

void recv_all(int fd, std::uint8_t* data, std::size_t len)
{
    std::size_t off = 0;
    while (off < len) {
        const ssize_t n = ::recv(fd, data + off, len - off, 0);
        if (n < 0) {
            if (errno == EINTR) continue;
            throw std::system_error{errno, std::generic_category(), "recv"};
        }
        if (n == 0) throw std::runtime_error{"connection closed mid-frame"};
        off += static_cast<std::size_t>(n);
    }
}

void append_frame(std::vector<std::uint8_t>& out, const request& r)
{
    request_header h;
    h.priority_raw = r.priority;
    h.format_raw = static_cast<std::uint8_t>(r.format);
    h.flags = static_cast<std::uint8_t>((r.progressive ? k_flag_progressive : 0) |
                                        (r.cache_bypass ? k_flag_cache_bypass : 0) |
                                        (r.cache_pin ? k_flag_cache_pin : 0));
    h.codec = r.codec;
    h.request_id = r.request_id;
    h.payload_len = static_cast<std::uint32_t>(r.codestream.size());
    const std::size_t base = out.size();
    out.resize(base + k_header_size);
    encode_request_header(h, out.data() + base);
    out.insert(out.end(), r.codestream.begin(), r.codestream.end());
}

}  // namespace

client::client(const std::string& host, std::uint16_t port)
{
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw std::system_error{errno, std::generic_category(), "socket"};
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd_);
        fd_ = -1;
        throw std::runtime_error{"client: numeric IPv4 host expected: " + host};
    }
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
        const int err = errno;
        ::close(fd_);
        fd_ = -1;
        throw std::system_error{err, std::generic_category(), "connect"};
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

client::~client()
{
    if (fd_ >= 0) ::close(fd_);
}

client::client(client&& other) noexcept : fd_{std::exchange(other.fd_, -1)} {}

client& client::operator=(client&& other) noexcept
{
    if (this != &other) {
        if (fd_ >= 0) ::close(fd_);
        fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
}

void client::send(const request& r)
{
    std::vector<std::uint8_t> frame;
    frame.reserve(k_header_size + r.codestream.size());
    append_frame(frame, r);
    send_all(fd_, frame.data(), frame.size());
}

void client::send_burst(const std::vector<request>& rs)
{
    std::vector<std::uint8_t> buf;
    std::size_t total = 0;
    for (const request& r : rs) total += k_header_size + r.codestream.size();
    buf.reserve(total);
    for (const request& r : rs) append_frame(buf, r);
    send_all(fd_, buf.data(), buf.size());
}

response client::recv()
{
    std::uint8_t hdr[k_header_size];
    recv_all(fd_, hdr, k_header_size);
    const auto h = decode_response_header(hdr);
    if (!h) throw std::runtime_error{"malformed response header"};
    response r;
    r.st = h->st;
    r.codec = h->codec;
    r.request_id = h->request_id;
    r.payload.resize(h->payload_len);
    if (h->payload_len) recv_all(fd_, r.payload.data(), r.payload.size());
    return r;
}

response client::decode(const request& r)
{
    send(r);
    return recv();
}

response client::decode_progressive(
    const request& r, const std::function<void(const layer_frame&)>& on_layer)
{
    request pr = r;
    pr.progressive = true;
    send(pr);
    for (;;) {
        response resp = recv();
        if (resp.st != status::streaming) return resp;  // error cut the stream
        const auto lf = split_layer_frame(resp);
        if (!lf) throw std::runtime_error{"malformed streaming payload"};
        if (on_layer) on_layer(*lf);
        if (lf->last) return resp;
    }
}

std::optional<layer_frame> split_layer_frame(const response& r)
{
    if (r.st != status::streaming) return std::nullopt;
    const auto lh = decode_layer_header(r.payload);
    if (!lh) return std::nullopt;
    layer_frame lf;
    lf.layer = lh->layer;
    lf.total = lh->total;
    lf.last = lh->last != 0;
    lf.image = std::span<const std::uint8_t>{r.payload}.subspan(k_layer_header_size);
    return lf;
}

void client::shutdown_write() noexcept
{
    if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

}  // namespace runtime::net
