#include "poller.hpp"

#include <cerrno>
#include <system_error>
#include <unordered_map>

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/epoll.h>
#define RUNTIME_NET_HAVE_EPOLL 1
#else
#define RUNTIME_NET_HAVE_EPOLL 0
#endif

namespace runtime::net {

void throw_errno(const char* what)
{
    throw std::system_error{errno, std::generic_category(), what};
}

void set_nonblocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
        throw_errno("fcntl(O_NONBLOCK)");
}

namespace {

#if RUNTIME_NET_HAVE_EPOLL
class epoll_poller final : public poller {
public:
    epoll_poller()
    {
        fd_ = ::epoll_create1(0);
        if (fd_ < 0) throw_errno("epoll_create1");
    }
    ~epoll_poller() override { ::close(fd_); }

    void add(int fd, std::uint64_t id, bool want_write) override
    {
        epoll_event ev{};
        ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
        ev.data.u64 = id;
        if (::epoll_ctl(fd_, EPOLL_CTL_ADD, fd, &ev) < 0) throw_errno("epoll_ctl(ADD)");
    }
    void update(int fd, std::uint64_t id, bool want_write) override
    {
        epoll_event ev{};
        ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
        ev.data.u64 = id;
        if (::epoll_ctl(fd_, EPOLL_CTL_MOD, fd, &ev) < 0) throw_errno("epoll_ctl(MOD)");
    }
    void remove(int fd) override { ::epoll_ctl(fd_, EPOLL_CTL_DEL, fd, nullptr); }

    void wait(std::vector<ready_event>& out, int timeout_ms) override
    {
        epoll_event evs[64];
        const int n = ::epoll_wait(fd_, evs, 64, timeout_ms);
        for (int i = 0; i < n; ++i) {
            ready_event e;
            e.id = evs[i].data.u64;
            e.readable = (evs[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0;
            e.writable = (evs[i].events & EPOLLOUT) != 0;
            e.hangup = (evs[i].events & (EPOLLERR | EPOLLHUP)) != 0;
            out.push_back(e);
        }
    }

private:
    int fd_ = -1;
};
#endif

/// Portable fallback: rebuilds the pollfd set per wait.  O(connections) per
/// iteration, fine at the scales the fallback serves.
class poll_poller final : public poller {
public:
    void add(int fd, std::uint64_t id, bool want_write) override
    {
        fds_[fd] = entry{id, want_write};
    }
    void update(int fd, std::uint64_t id, bool want_write) override
    {
        fds_[fd] = entry{id, want_write};
    }
    void remove(int fd) override { fds_.erase(fd); }

    void wait(std::vector<ready_event>& out, int timeout_ms) override
    {
        std::vector<pollfd> pfds;
        pfds.reserve(fds_.size());
        for (const auto& [fd, e] : fds_)
            pfds.push_back({fd, static_cast<short>(POLLIN | (e.want_write ? POLLOUT : 0)),
                            0});
        const int n = ::poll(pfds.data(), pfds.size(), timeout_ms);
        if (n <= 0) return;
        for (const pollfd& p : pfds) {
            if (p.revents == 0) continue;
            ready_event e;
            e.id = fds_[p.fd].id;
            e.readable = (p.revents & (POLLIN | POLLERR | POLLHUP)) != 0;
            e.writable = (p.revents & POLLOUT) != 0;
            e.hangup = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
            out.push_back(e);
        }
    }

private:
    struct entry {
        std::uint64_t id = 0;
        bool want_write = false;
    };
    std::unordered_map<int, entry> fds_;
};

}  // namespace

std::unique_ptr<poller> make_poller(bool force_poll)
{
#if RUNTIME_NET_HAVE_EPOLL
    if (!force_poll) return std::make_unique<epoll_poller>();
#else
    (void)force_poll;
#endif
    return std::make_unique<poll_poller>();
}

}  // namespace runtime::net
