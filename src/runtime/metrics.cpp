#include "metrics.hpp"

#include <bit>
#include <cstdio>

namespace runtime {

namespace {

int bucket_of(std::uint64_t us) noexcept
{
    const int b = static_cast<int>(std::bit_width(us));  // 0 for us == 0
    return b >= latency_histogram::k_buckets ? latency_histogram::k_buckets - 1 : b;
}

void fetch_max(std::atomic<std::uint64_t>& slot, std::uint64_t v) noexcept
{
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (cur < v &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
    }
}

}  // namespace

void latency_histogram::observe(std::uint64_t us) noexcept
{
    buckets_[static_cast<std::size_t>(bucket_of(us))].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_us_.fetch_add(us, std::memory_order_relaxed);
    fetch_max(max_us_, us);
}

latency_histogram::data latency_histogram::snapshot() const noexcept
{
    data d;
    for (int b = 0; b < k_buckets; ++b)
        d.buckets[static_cast<std::size_t>(b)] =
            buckets_[static_cast<std::size_t>(b)].load(std::memory_order_relaxed);
    d.count = count_.load(std::memory_order_relaxed);
    d.sum_us = sum_us_.load(std::memory_order_relaxed);
    d.max_us = max_us_.load(std::memory_order_relaxed);
    return d;
}

double latency_histogram::data::quantile(double q) const noexcept
{
    if (count == 0) return 0.0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    const double target = q * static_cast<double>(count);
    std::uint64_t cum = 0;
    for (int b = 0; b < k_buckets; ++b) {
        const std::uint64_t n = buckets[static_cast<std::size_t>(b)];
        if (n == 0) continue;
        if (static_cast<double>(cum + n) >= target) {
            // Bucket b holds values in [lo, hi); interpolate linearly.
            const double lo = b == 0 ? 0.0 : static_cast<double>(1ull << (b - 1));
            const double hi = static_cast<double>(1ull << b);
            const double frac = (target - static_cast<double>(cum)) / static_cast<double>(n);
            return lo + (hi - lo) * frac;
        }
        cum += n;
    }
    return static_cast<double>(max_us);
}

void service_metrics::record_queue_depth(std::size_t depth) noexcept
{
    fetch_max(queue_high_water_, static_cast<std::uint64_t>(depth));
}

metrics_snapshot service_metrics::snapshot() const
{
    metrics_snapshot s;
    s.jobs_submitted = submitted_.load(std::memory_order_relaxed);
    s.jobs_completed = completed_.load(std::memory_order_relaxed);
    s.jobs_failed = failed_.load(std::memory_order_relaxed);
    s.jobs_rejected = rejected_.load(std::memory_order_relaxed);
    s.jobs_dropped = dropped_.load(std::memory_order_relaxed);
    s.queue_depth_high_water = queue_high_water_.load(std::memory_order_relaxed);
    s.tiles_decoded = tiles_.load(std::memory_order_relaxed);
    s.entropy_ms = static_cast<double>(entropy_ns_.load(std::memory_order_relaxed)) / 1e6;
    s.iq_ms = static_cast<double>(iq_ns_.load(std::memory_order_relaxed)) / 1e6;
    s.idwt_ms = static_cast<double>(idwt_ns_.load(std::memory_order_relaxed)) / 1e6;
    s.finish_ms = static_cast<double>(finish_ns_.load(std::memory_order_relaxed)) / 1e6;
    const auto lat = latency_.snapshot();
    s.latency_count = lat.count;
    s.latency_mean_us = lat.mean_us();
    s.latency_max_us = lat.max_us;
    s.latency_p50_us = lat.quantile(0.50);
    s.latency_p95_us = lat.quantile(0.95);
    s.latency_p99_us = lat.quantile(0.99);
    return s;
}

std::string metrics_snapshot::dump() const
{
    char buf[1024];
    std::snprintf(
        buf, sizeof buf,
        "jobs: submitted=%llu completed=%llu failed=%llu rejected=%llu dropped=%llu\n"
        "queue: high_water=%llu\n"
        "work: tiles_decoded=%llu\n"
        "stage wall time [ms]: entropy=%.2f iq=%.2f idwt=%.2f finish=%.2f\n"
        "latency [us]: n=%llu mean=%.0f p50=%.0f p95=%.0f p99=%.0f max=%llu\n",
        static_cast<unsigned long long>(jobs_submitted),
        static_cast<unsigned long long>(jobs_completed),
        static_cast<unsigned long long>(jobs_failed),
        static_cast<unsigned long long>(jobs_rejected),
        static_cast<unsigned long long>(jobs_dropped),
        static_cast<unsigned long long>(queue_depth_high_water),
        static_cast<unsigned long long>(tiles_decoded), entropy_ms, iq_ms, idwt_ms,
        finish_ms, static_cast<unsigned long long>(latency_count), latency_mean_us,
        latency_p50_us, latency_p95_us, latency_p99_us,
        static_cast<unsigned long long>(latency_max_us));
    return buf;
}

std::string metrics_snapshot::to_json() const
{
    char buf[1024];
    std::snprintf(
        buf, sizeof buf,
        "{\"jobs_submitted\":%llu,\"jobs_completed\":%llu,\"jobs_failed\":%llu,"
        "\"jobs_rejected\":%llu,\"jobs_dropped\":%llu,\"queue_depth_high_water\":%llu,"
        "\"tiles_decoded\":%llu,\"entropy_ms\":%.3f,\"iq_ms\":%.3f,\"idwt_ms\":%.3f,"
        "\"finish_ms\":%.3f,\"latency_count\":%llu,\"latency_mean_us\":%.1f,"
        "\"latency_p50_us\":%.1f,\"latency_p95_us\":%.1f,\"latency_p99_us\":%.1f,"
        "\"latency_max_us\":%llu}",
        static_cast<unsigned long long>(jobs_submitted),
        static_cast<unsigned long long>(jobs_completed),
        static_cast<unsigned long long>(jobs_failed),
        static_cast<unsigned long long>(jobs_rejected),
        static_cast<unsigned long long>(jobs_dropped),
        static_cast<unsigned long long>(queue_depth_high_water),
        static_cast<unsigned long long>(tiles_decoded), entropy_ms, iq_ms, idwt_ms,
        finish_ms, static_cast<unsigned long long>(latency_count), latency_mean_us,
        latency_p50_us, latency_p95_us, latency_p99_us,
        static_cast<unsigned long long>(latency_max_us));
    return buf;
}

}  // namespace runtime
