#include "metrics.hpp"

#include <codec/backend.hpp>

#include <chrono>
#include <cstdio>

namespace runtime {

namespace {

/// Exposition name for a codec wire id: the registry name when the id is
/// registered, the decimal id otherwise (unsupported-codec traffic has no
/// backend to ask).
std::string codec_metric_name(std::uint8_t id)
{
    if (const codec::backend* b = codec::find_backend(id)) return std::string{b->name()};
    return std::to_string(static_cast<int>(id));
}

// Captured at static initialisation — close enough to process start for an
// uptime metric, and free of any clock syscall on the read path's hot side.
const std::chrono::steady_clock::time_point g_process_start =
    std::chrono::steady_clock::now();

}  // namespace

double process_uptime_s() noexcept
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         g_process_start)
        .count();
}

const char* build_type() noexcept
{
#ifdef RUNTIME_BUILD_TYPE
    return RUNTIME_BUILD_TYPE;
#else
    return "unknown";
#endif
}

const char* compiler_version() noexcept
{
#if defined(__clang_version__)
    return "clang " __clang_version__;
#elif defined(__VERSION__)
    return "gcc " __VERSION__;
#else
    return "unknown";
#endif
}

service_metrics::service_metrics()
    : submitted_{reg_.get_counter("jobs_submitted")},
      completed_{reg_.get_counter("jobs_completed")},
      failed_{reg_.get_counter("jobs_failed")},
      rejected_{reg_.get_counter("jobs_rejected")},
      dropped_{reg_.get_counter("jobs_dropped")},
      promoted_{reg_.get_counter("jobs_promoted")},
      batched_{reg_.get_counter("jobs_batched")},
      progressive_{reg_.get_counter("jobs_progressive")},
      layers_{reg_.get_counter("layers_emitted")},
      progressive_cancelled_{reg_.get_counter("progressive_cancelled")},
      t1_bytes_{reg_.get_counter("t1_segment_bytes")},
      progressive_active_{reg_.get_gauge("progressive_active")},
      pool_submissions_{reg_.get_counter("pool_submissions")},
      tiles_{reg_.get_counter("tiles_decoded")},
      entropy_ns_{reg_.get_counter("stage_entropy_ns")},
      iq_ns_{reg_.get_counter("stage_iq_ns")},
      idwt_ns_{reg_.get_counter("stage_idwt_ns")},
      finish_ns_{reg_.get_counter("stage_finish_ns")},
      queue_depth_{reg_.get_gauge("queue_depth")},
      latency_{reg_.get_histogram("latency_us")}
{
    for (std::size_t p = 0; p < priority_count; ++p) {
        const auto* name = priority_name(static_cast<priority>(p));
        prio_depth_[p] = &reg_.get_gauge(std::string{"queue_depth_"} + name);
        prio_latency_[p] = &reg_.get_histogram(std::string{"latency_"} + name + "_us");
        prio_rejected_[p] = &reg_.get_counter(std::string{"jobs_rejected_"} + name);
        prio_dropped_[p] = &reg_.get_counter(std::string{"jobs_dropped_"} + name);
    }
}

service_metrics::codec_counters& service_metrics::codec_slot(std::uint8_t codec) noexcept
{
    // Caller holds codec_m_.  Counters register against reg_ with a
    // Prometheus label block in the name, which the generic expositions pass
    // through verbatim (see ops_server's extra-counter handling).
    const std::string name = codec_metric_name(codec);
    auto it = codec_.find(name);
    if (it == codec_.end()) {
        codec_counters c;
        c.completed = &reg_.get_counter("codec_jobs_completed{codec=\"" + name + "\"}");
        c.failed = &reg_.get_counter("codec_jobs_failed{codec=\"" + name + "\"}");
        c.unsupported =
            &reg_.get_counter("codec_jobs_unsupported{codec=\"" + name + "\"}");
        it = codec_.emplace(name, c).first;
    }
    return it->second;
}

void service_metrics::on_codec_completed(std::uint8_t codec) noexcept
{
    std::lock_guard lk{codec_m_};
    codec_slot(codec).completed->add();
}

void service_metrics::on_codec_failed(std::uint8_t codec) noexcept
{
    std::lock_guard lk{codec_m_};
    codec_slot(codec).failed->add();
}

void service_metrics::on_codec_unsupported(std::uint8_t codec) noexcept
{
    std::lock_guard lk{codec_m_};
    codec_slot(codec).unsupported->add();
}

metrics_snapshot service_metrics::snapshot() const
{
    metrics_snapshot s;
    {
        std::lock_guard lk{codec_m_};
        s.by_codec.reserve(codec_.size());
        for (const auto& [name, c] : codec_) {
            metrics_snapshot::codec_entry e;
            e.name = name;
            e.completed = c.completed->value();
            e.failed = c.failed->value();
            e.unsupported = c.unsupported->value();
            s.by_codec.push_back(std::move(e));
        }
    }
    s.jobs_submitted = submitted_.value();
    s.jobs_completed = completed_.value();
    s.jobs_failed = failed_.value();
    s.jobs_rejected = rejected_.value();
    s.jobs_dropped = dropped_.value();
    s.jobs_promoted = promoted_.value();
    s.jobs_batched = batched_.value();
    s.queue_depth_high_water = static_cast<std::uint64_t>(queue_depth_.max());
    s.jobs_progressive = progressive_.value();
    s.layers_emitted = layers_.value();
    s.progressive_cancelled = progressive_cancelled_.value();
    s.t1_segment_bytes = t1_bytes_.value();
    s.progressive_active_high_water = static_cast<std::uint64_t>(progressive_active_.max());
    s.tiles_decoded = tiles_.value();
    s.pool_submissions = pool_submissions_.value();
    for (std::size_t p = 0; p < priority_count; ++p) {
        s.shed_by_priority[p].rejected = prio_rejected_[p]->value();
        s.shed_by_priority[p].dropped = prio_dropped_[p]->value();
    }
    s.entropy_ms = static_cast<double>(entropy_ns_.value()) / 1e6;
    s.iq_ms = static_cast<double>(iq_ns_.value()) / 1e6;
    s.idwt_ms = static_cast<double>(idwt_ns_.value()) / 1e6;
    s.finish_ms = static_cast<double>(finish_ns_.value()) / 1e6;
    const auto lat = latency_.snapshot();
    s.latency_count = lat.count;
    s.latency_mean_us = lat.mean();
    s.latency_max_us = lat.max;
    s.latency_p50_us = lat.quantile(0.50);
    s.latency_p95_us = lat.quantile(0.95);
    s.latency_p99_us = lat.quantile(0.99);
    for (std::size_t p = 0; p < priority_count; ++p) {
        const auto pl = prio_latency_[p]->snapshot();
        s.latency_by_priority[p].count = pl.count;
        s.latency_by_priority[p].p50_us = pl.quantile(0.50);
        s.latency_by_priority[p].p99_us = pl.quantile(0.99);
    }
    return s;
}

std::string metrics_snapshot::dump() const
{
    char buf[4096];
    std::snprintf(
        buf, sizeof buf,
        "process: uptime=%.1fs pool_threads=%d tracing_armed=%d build=%s "
        "compiler=\"%s\"\n"
        "jobs: submitted=%llu completed=%llu failed=%llu rejected=%llu dropped=%llu "
        "promoted=%llu batched=%llu\n"
        "shed by priority: interactive rejected=%llu dropped=%llu | "
        "batch rejected=%llu dropped=%llu\n"
        "queue: high_water=%llu\n"
        "progressive: jobs=%llu layers=%llu cancelled=%llu t1_bytes=%llu "
        "active_high_water=%llu\n"
        "cache: hits=%llu misses=%llu collapses=%llu evictions=%llu "
        "session_resumes=%llu bytes=%llu pinned=%llu entries=%llu sessions=%llu\n"
        "kernels: isa=%s mq_fast=%d\n"
        "arena: capacity=%llu leases=%llu dry=%llu fallback_allocs=%llu "
        "high_water=%llu\n"
        "work: tiles_decoded=%llu tasks_stolen=%llu pool_submissions=%llu\n"
        "stage wall time [ms]: entropy=%.2f iq=%.2f idwt=%.2f finish=%.2f\n"
        "latency [us]: n=%llu mean=%.0f p50=%.0f p95=%.0f p99=%.0f max=%llu\n"
        "latency interactive [us]: n=%llu p50=%.0f p99=%.0f\n"
        "latency batch [us]: n=%llu p50=%.0f p99=%.0f\n",
        uptime_s, pool_threads, tracing_armed ? 1 : 0, build, compiler,
        static_cast<unsigned long long>(jobs_submitted),
        static_cast<unsigned long long>(jobs_completed),
        static_cast<unsigned long long>(jobs_failed),
        static_cast<unsigned long long>(jobs_rejected),
        static_cast<unsigned long long>(jobs_dropped),
        static_cast<unsigned long long>(jobs_promoted),
        static_cast<unsigned long long>(jobs_batched),
        static_cast<unsigned long long>(shed_by_priority[0].rejected),
        static_cast<unsigned long long>(shed_by_priority[0].dropped),
        static_cast<unsigned long long>(shed_by_priority[1].rejected),
        static_cast<unsigned long long>(shed_by_priority[1].dropped),
        static_cast<unsigned long long>(queue_depth_high_water),
        static_cast<unsigned long long>(jobs_progressive),
        static_cast<unsigned long long>(layers_emitted),
        static_cast<unsigned long long>(progressive_cancelled),
        static_cast<unsigned long long>(t1_segment_bytes),
        static_cast<unsigned long long>(progressive_active_high_water),
        static_cast<unsigned long long>(cache_hits),
        static_cast<unsigned long long>(cache_misses),
        static_cast<unsigned long long>(cache_collapses),
        static_cast<unsigned long long>(cache_evictions),
        static_cast<unsigned long long>(cache_session_resumes),
        static_cast<unsigned long long>(cache_bytes),
        static_cast<unsigned long long>(cache_pinned_bytes),
        static_cast<unsigned long long>(cache_entries),
        static_cast<unsigned long long>(cache_session_entries), kernel_isa,
        mq_fast ? 1 : 0, static_cast<unsigned long long>(arena_capacity_bytes),
        static_cast<unsigned long long>(arena_leases),
        static_cast<unsigned long long>(arena_dry_acquires),
        static_cast<unsigned long long>(arena_fallback_allocs),
        static_cast<unsigned long long>(arena_high_water_bytes),
        static_cast<unsigned long long>(tiles_decoded),
        static_cast<unsigned long long>(tasks_stolen),
        static_cast<unsigned long long>(pool_submissions), entropy_ms, iq_ms, idwt_ms,
        finish_ms, static_cast<unsigned long long>(latency_count), latency_mean_us,
        latency_p50_us, latency_p95_us, latency_p99_us,
        static_cast<unsigned long long>(latency_max_us),
        static_cast<unsigned long long>(latency_by_priority[0].count),
        latency_by_priority[0].p50_us, latency_by_priority[0].p99_us,
        static_cast<unsigned long long>(latency_by_priority[1].count),
        latency_by_priority[1].p50_us, latency_by_priority[1].p99_us);
    return buf;
}

std::string metrics_snapshot::to_json() const
{
    // Build/compiler strings come from macros and can in principle hold any
    // characters, so they go through the shared JSON escaper.
    char proc[512];
    std::snprintf(proc, sizeof proc,
                  "{\"process\":{\"uptime_s\":%.3f,\"pool_threads\":%d,"
                  "\"tracing_armed\":%s,\"build_type\":%s,\"compiler\":%s},",
                  uptime_s, pool_threads, tracing_armed ? "true" : "false",
                  obs::json_quote(build).c_str(), obs::json_quote(compiler).c_str());
    char buf[4096];
    std::snprintf(
        buf, sizeof buf,
        "\"jobs_submitted\":%llu,\"jobs_completed\":%llu,\"jobs_failed\":%llu,"
        "\"jobs_rejected\":%llu,\"jobs_dropped\":%llu,\"jobs_promoted\":%llu,"
        "\"jobs_batched\":%llu,"
        "\"shed_interactive\":{\"rejected\":%llu,\"dropped\":%llu},"
        "\"shed_batch\":{\"rejected\":%llu,\"dropped\":%llu},"
        "\"queue_depth_high_water\":%llu,"
        "\"jobs_progressive\":%llu,\"layers_emitted\":%llu,"
        "\"progressive_cancelled\":%llu,\"t1_segment_bytes\":%llu,"
        "\"progressive_active_high_water\":%llu,"
        "\"cache\":{\"hits\":%llu,\"misses\":%llu,\"collapses\":%llu,"
        "\"evictions\":%llu,\"session_resumes\":%llu,\"bytes\":%llu,"
        "\"pinned_bytes\":%llu,\"entries\":%llu,\"session_entries\":%llu},"
        "\"kernel_isa\":%s,\"mq_fast\":%s,"
        "\"arena\":{\"capacity_bytes\":%llu,\"leases\":%llu,\"dry_acquires\":%llu,"
        "\"fallback_allocs\":%llu,\"high_water_bytes\":%llu},"
        "\"tiles_decoded\":%llu,\"tasks_stolen\":%llu,\"pool_submissions\":%llu,"
        "\"entropy_ms\":%.3f,\"iq_ms\":%.3f,\"idwt_ms\":%.3f,"
        "\"finish_ms\":%.3f,\"latency_count\":%llu,\"latency_mean_us\":%.1f,"
        "\"latency_p50_us\":%.1f,\"latency_p95_us\":%.1f,\"latency_p99_us\":%.1f,"
        "\"latency_max_us\":%llu,"
        "\"latency_interactive\":{\"count\":%llu,\"p50_us\":%.1f,\"p99_us\":%.1f},"
        "\"latency_batch\":{\"count\":%llu,\"p50_us\":%.1f,\"p99_us\":%.1f}",
        static_cast<unsigned long long>(jobs_submitted),
        static_cast<unsigned long long>(jobs_completed),
        static_cast<unsigned long long>(jobs_failed),
        static_cast<unsigned long long>(jobs_rejected),
        static_cast<unsigned long long>(jobs_dropped),
        static_cast<unsigned long long>(jobs_promoted),
        static_cast<unsigned long long>(jobs_batched),
        static_cast<unsigned long long>(shed_by_priority[0].rejected),
        static_cast<unsigned long long>(shed_by_priority[0].dropped),
        static_cast<unsigned long long>(shed_by_priority[1].rejected),
        static_cast<unsigned long long>(shed_by_priority[1].dropped),
        static_cast<unsigned long long>(queue_depth_high_water),
        static_cast<unsigned long long>(jobs_progressive),
        static_cast<unsigned long long>(layers_emitted),
        static_cast<unsigned long long>(progressive_cancelled),
        static_cast<unsigned long long>(t1_segment_bytes),
        static_cast<unsigned long long>(progressive_active_high_water),
        static_cast<unsigned long long>(cache_hits),
        static_cast<unsigned long long>(cache_misses),
        static_cast<unsigned long long>(cache_collapses),
        static_cast<unsigned long long>(cache_evictions),
        static_cast<unsigned long long>(cache_session_resumes),
        static_cast<unsigned long long>(cache_bytes),
        static_cast<unsigned long long>(cache_pinned_bytes),
        static_cast<unsigned long long>(cache_entries),
        static_cast<unsigned long long>(cache_session_entries),
        obs::json_quote(kernel_isa).c_str(), mq_fast ? "true" : "false",
        static_cast<unsigned long long>(arena_capacity_bytes),
        static_cast<unsigned long long>(arena_leases),
        static_cast<unsigned long long>(arena_dry_acquires),
        static_cast<unsigned long long>(arena_fallback_allocs),
        static_cast<unsigned long long>(arena_high_water_bytes),
        static_cast<unsigned long long>(tiles_decoded),
        static_cast<unsigned long long>(tasks_stolen),
        static_cast<unsigned long long>(pool_submissions), entropy_ms, iq_ms, idwt_ms,
        finish_ms, static_cast<unsigned long long>(latency_count), latency_mean_us,
        latency_p50_us, latency_p95_us, latency_p99_us,
        static_cast<unsigned long long>(latency_max_us),
        static_cast<unsigned long long>(latency_by_priority[0].count),
        latency_by_priority[0].p50_us, latency_by_priority[0].p99_us,
        static_cast<unsigned long long>(latency_by_priority[1].count),
        latency_by_priority[1].p50_us, latency_by_priority[1].p99_us);

    std::string codecs = ",\"by_codec\":{";
    bool first = true;
    for (const auto& c : by_codec) {
        if (!first) codecs += ',';
        first = false;
        char cb[256];
        std::snprintf(cb, sizeof cb,
                      "%s:{\"completed\":%llu,\"failed\":%llu,"
                      "\"unsupported\":%llu,\"cache_hits\":%llu,"
                      "\"cache_misses\":%llu}",
                      obs::json_quote(c.name).c_str(),
                      static_cast<unsigned long long>(c.completed),
                      static_cast<unsigned long long>(c.failed),
                      static_cast<unsigned long long>(c.unsupported),
                      static_cast<unsigned long long>(c.cache_hits),
                      static_cast<unsigned long long>(c.cache_misses));
        codecs += cb;
    }
    codecs += "}}";
    return std::string{proc} + buf + codecs;
}

}  // namespace runtime
