// runtime/service.hpp — a persistent, concurrent batch-decode service.
//
// The host-side production shape of the paper's architecture: where the OSSS
// model maps decode stages onto hardware resources behind queued channels,
// this service maps many whole decode jobs onto a fixed worker pool behind a
// bounded admission queue.
//
//   submit(bytes[, priority]) ─► [two_level_queue, backpressure] ─► thread_pool
//        │                                                             │
//        └── std::future<j2k::image> ◄── promise fulfilled ◄───────────┘
//
// Admission is a two-level strict-priority queue: `interactive` jobs jump the
// `batch` backlog, with a starvation escape valve that promotes a batch job
// after `promote_after` consecutive bypassing interactive pops.  Each job
// fans out per tile on the pool (tiles are independent, so the result is
// byte-identical to a serial decode); idle workers steal tile subtasks from
// busy ones via lock-free Chase–Lev deques, so one large image parallelises
// even when it is the only job in flight.  `shutdown()` drains: queued and
// running jobs complete, new submissions fail fast.
#pragma once

#include "arena.hpp"
#include "metrics.hpp"
#include "queue.hpp"
#include "thread_pool.hpp"

#include <j2k/codec.hpp>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <vector>

namespace codec {
class backend;  // codec/backend.hpp
}

namespace runtime {

class decoded_cache;  // cache/decoded_cache.hpp
struct cache_key;

/// Base class of every service-raised error (delivered through futures).
class service_error : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// The admission queue was full and the policy is `reject`.
class admission_rejected : public service_error {
public:
    admission_rejected() : service_error{"decode_service: admission queue full"} {}
};

/// The job was evicted from the queue by a newer one (`drop_oldest`).
class job_dropped : public service_error {
public:
    job_dropped() : service_error{"decode_service: job dropped by newer submission"} {}
};

/// submit() after shutdown().
class service_stopped : public service_error {
public:
    service_stopped() : service_error{"decode_service: service is shut down"} {}
};

/// The request named a codec wire id absent from the registry, or asked a
/// registered codec for a capability it does not have (e.g. progressive
/// refinement from a lossless codec).  Typed so front-ends can answer with a
/// protocol-level rejection instead of a generic internal error.
class unsupported_codec : public service_error {
public:
    explicit unsupported_codec(std::uint8_t id, const char* why = "not registered")
        : service_error{"decode_service: codec " + std::to_string(int{id}) + " " + why},
          id_{id}
    {
    }
    [[nodiscard]] std::uint8_t id() const noexcept { return id_; }

private:
    std::uint8_t id_;
};

/// Per-request policy toward the decoded-result cache (no-op when the
/// service runs without one).
enum class cache_policy : std::uint8_t {
    use = 0,     ///< serve hits, join single-flight, insert on miss (default)
    bypass = 1,  ///< always decode; neither read nor populate the cache
    pin = 2,     ///< like `use`, but the inserted entry is exempt from eviction
};

/// Per-job decode knobs (mirror the j2k::decoder scalability controls).
struct decode_options {
    int discard_levels = 0;      ///< resolution: decode at 1/2^n size
    int max_quality_layers = 0;  ///< layered streams: first n layers (0 = all)
    int max_passes = 0;          ///< SNR: cap tier-1 passes per block (0 = all)
    /// Admission class: `interactive` jumps the batch backlog at the queue.
    priority prio = priority::batch;
    /// Decoded-result cache policy for this job.
    cache_policy cache = cache_policy::use;
    /// Codec wire id the payload is encoded with (0 = j2k, the founding
    /// codec).  Ids absent from the codec registry fail the job with a typed
    /// unsupported_codec error at execution time.
    std::uint8_t codec = 0;
};

struct service_config {
    int workers = 0;                  ///< pool size; <= 0 = hardware concurrency
    std::size_t queue_capacity = 64;  ///< pending-job bound (both priorities)
    /// Optional independent per-priority bounds (0 = shared bound only).
    /// Lets admission reserve headroom for interactive work while batch
    /// traffic is shed early — sheds are charged to the evicted priority.
    std::size_t interactive_capacity = 0;
    std::size_t batch_capacity = 0;
    backpressure policy = backpressure::block;
    /// Starvation escape valve: after this many consecutive interactive pops
    /// that bypassed waiting batch work, one batch job is promoted.
    std::size_t promote_after = 8;
    /// Copy the codestream into the job (safe default).  With false the
    /// caller guarantees the bytes outlive the returned future.
    bool copy_input = true;
    /// Byte budget of the decoded-result cache (0 = no cache).  Hot
    /// codestreams are served from cached images / resumed from cached
    /// session prefixes, and concurrent identical misses collapse to one
    /// decode (see cache/decoded_cache.hpp).
    std::size_t cache_bytes = 0;
    /// Per-job scratch arena size (0 = no arenas; jobs allocate from the
    /// heap).  The service owns one arena per worker; each job leases one for
    /// its lifetime and every decode transient (tier-1 block state, DWT
    /// interleave buffers, gather blocks) bump-allocates from it, so steady
    /// state does zero malloc on the hot path.  A job whose scratch outgrows
    /// the arena degrades to heap fallback (counted, never fatal); see
    /// runtime/arena.hpp.
    std::size_t arena_bytes = 8u << 20;
};

class decode_service {
public:
    explicit decode_service(service_config cfg = {});
    ~decode_service();  ///< implies shutdown()

    decode_service(const decode_service&) = delete;
    decode_service& operator=(const decode_service&) = delete;

    /// Submit one codestream; the future yields the decoded image or throws
    /// (service_error subtypes for admission failures, codec exceptions for
    /// malformed streams).  With the `block` policy this call itself blocks
    /// while the queue is full — that is the backpressure.
    std::future<j2k::image> submit(std::span<const std::uint8_t> cs)
    {
        return submit(cs, decode_options{});
    }
    /// Submit at an explicit admission class with default decode knobs.
    std::future<j2k::image> submit(std::span<const std::uint8_t> cs, priority p)
    {
        return submit(cs, decode_options{.prio = p});
    }
    std::future<j2k::image> submit(std::span<const std::uint8_t> cs,
                                   const decode_options& opt);

    /// Ownership-transfer submit: `bytes` moves into the job, so an admission
    /// front-end that already owns a buffer (e.g. a socket read) pays no copy
    /// regardless of `copy_input`.
    std::future<j2k::image> submit(std::vector<std::uint8_t>&& bytes,
                                   const decode_options& opt = {});

    /// Completion callback for the future-less submission paths.  Exactly one
    /// of the two arguments is meaningful: `err` is null on success.  Runs on
    /// a pool worker (or inline on the submitting thread for admission
    /// failures) — it must not block on the service.
    using completion = std::function<void(j2k::image&&, std::exception_ptr err)>;

    /// Future-less submit for async front-ends: the outcome (including typed
    /// admission failures) is delivered through `done` instead of a future.
    void submit_async(std::vector<std::uint8_t>&& bytes, const decode_options& opt,
                      completion done);

    /// One refinement of a progressive job: the reconstruction after `layer`
    /// quality layers (1-based), out of the `total` the job will emit.
    struct layer_event {
        int layer = 0;
        int total = 0;
        bool last = false;
        j2k::image img;
    };

    /// Per-layer delivery for progressive jobs.  Called once per refinement on
    /// the decoding worker, in layer order; a non-null `err` is terminal (no
    /// further calls, `ev` is empty) and also covers admission failures.
    /// Return false to cancel the remaining layers — the job ends quietly and
    /// the cancellation is counted in the metrics.  Must not block on the
    /// service.
    using progressive_completion =
        std::function<bool(layer_event&& ev, std::exception_ptr err)>;

    /// Streamed decode: one layer_event per quality layer (a plain stream
    /// emits exactly one).  `opt.max_quality_layers` caps the depth;
    /// `opt.discard_levels` is not supported on this path and is ignored.
    /// Tier-1 state persists across refinements, so the arithmetic-decoding
    /// work over the whole job is O(L), not O(L²) (see j2k/session.hpp).
    void submit_progressive(std::vector<std::uint8_t>&& bytes, const decode_options& opt,
                            progressive_completion on_layer);

    /// One element of a coalesced small-job batch.
    struct batch_item {
        std::vector<std::uint8_t> bytes;
        decode_options opt;
        completion done;  ///< may be empty (fire-and-forget)
    };

    /// Admit several (small) jobs with a *single* pool pump: the pump pops and
    /// runs every admitted job sequentially, so a burst of tiny requests costs
    /// one pool submission instead of one each.  Per-item admission failures
    /// still settle individually through each item's `done`.  Returns the
    /// number of jobs actually enqueued.
    std::size_t submit_batch(std::vector<batch_item> items);

    /// Stop admitting and wait for every queued + running job to finish.
    /// Idempotent; also called by the destructor.
    void shutdown();

    /// True once shutdown() has begun (admission is closed).  A readiness
    /// probe keyed on this flips *before* in-flight jobs finish, so load
    /// balancers stop routing while the drain is still graceful.
    [[nodiscard]] bool draining() const
    {
        std::lock_guard lk{drain_m_};
        return stopped_;
    }

    [[nodiscard]] int workers() const noexcept { return pool_->size(); }
    [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
    [[nodiscard]] std::size_t queue_depth(priority p) const { return queue_.size(p); }

    /// The decoded-result cache, or null when cache_bytes == 0.
    [[nodiscard]] decoded_cache* cache() noexcept { return cache_.get(); }
    [[nodiscard]] const decoded_cache* cache() const noexcept { return cache_.get(); }

    /// Point-in-time metrics (queue high-water and cache stats merged in).
    [[nodiscard]] metrics_snapshot metrics() const;

private:
    struct job {
        std::promise<j2k::image> promise;
        completion done;  ///< when set, outcome goes here instead of promise
        /// Progressive jobs: per-layer delivery channel (errors included).
        progressive_completion on_layer;
        /// Exactly-once guard for the settle: the settle paths (worker
        /// success/failure, eviction, rejection, close during admission) can
        /// race, and std::promise throws on a second set.
        std::atomic<bool> settled{false};
        std::vector<std::uint8_t> owned;      ///< storage when copy_input
        std::span<const std::uint8_t> bytes;  ///< what the decoder reads
        decode_options opt;
        std::chrono::steady_clock::time_point submitted_at;
        std::uint64_t trace_id = 0;  ///< correlates the async job span tree
    };
    using job_ptr = std::unique_ptr<job>;

    static void settle(job& j, j2k::image&& img);
    static void settle(job& j, std::exception_ptr err);
    job_ptr make_job(std::vector<std::uint8_t>&& bytes, const decode_options& opt);
    /// Admission core shared by every submit flavour: queue push, eviction /
    /// rejection settling, metrics and spans.  Returns true when the job was
    /// enqueued and therefore needs pump capacity.
    bool admit(job_ptr j);
    /// Hand the pool one pump able to pop-and-run up to `n` queued jobs.
    void pump(std::size_t n);
    void run_job(job& j);
    void run_cached_job(job& j);
    void run_progressive_job(job& j);
    /// Generic codec path: every non-j2k codec decodes through its registered
    /// backend — same pool, same cache (keys namespaced by codec id, same
    /// single-flight collapsing), same metrics.  j2k keeps its specialised
    /// fast paths above (per-tile fan-out, resumable session cache).
    void run_backend_job(job& j, const codec::backend& be);
    /// The single-flight leader's decode: through a resumable session for
    /// layered streams (depositing the prefix for later requests), through
    /// the classic tiled path otherwise.
    j2k::image decode_leader(job& j, j2k::decoder& dec, const cache_key& key,
                             std::pmr::memory_resource* mr);
    void finish_one();
    void record_priority_depths();
    j2k::image decode_tiled(const j2k::decoder& dec, std::pmr::memory_resource* mr);
    /// One lease per job; empty (→ heap scratch) when pooling is disabled or
    /// the pool is momentarily dry.
    [[nodiscard]] arena_pool::lease acquire_arena() noexcept
    {
        return arenas_ ? arenas_->acquire() : arena_pool::lease{};
    }

    service_config cfg_;
    service_metrics metrics_;

    mutable std::mutex drain_m_;
    std::condition_variable drained_cv_;
    std::size_t in_flight_ = 0;  ///< admitted but not yet completed/failed
    bool stopped_ = false;

    two_level_queue<job_ptr> queue_;
    std::unique_ptr<decoded_cache> cache_;  ///< null when cache_bytes == 0
    /// Declared before pool_ so workers (which hold leases mid-job) are
    /// joined before the arenas they allocate from are torn down.
    std::unique_ptr<arena_pool> arenas_;  ///< null when arena_bytes == 0
    std::unique_ptr<thread_pool> pool_;  ///< last member: destroyed (joined) first
};

}  // namespace runtime
