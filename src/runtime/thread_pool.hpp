// runtime/thread_pool.hpp — fixed worker pool with per-worker lock-free
// work-stealing deques.
//
// Workers own a Chase–Lev deque each (see work_deque.hpp): the owner pushes
// and pops at the bottom with plain atomics (LIFO, good locality for subtasks
// it just spawned), idle workers steal from the top with a single CAS (FIFO,
// takes the oldest — typically largest — piece of a competing job).  The
// per-task hot path (a worker fanning tiles out to its siblings) therefore
// crosses no mutex at all.
//
// Tasks submitted from *outside* the pool cannot use an owner end, so they
// land on a shared mutex-guarded injection queue instead; workers drain it
// FIFO between their own deque and stealing.  That queue sees one push per
// externally submitted job (the admission path), not per subtask, so the
// mutex is off the hot path by construction.
//
// `parallel_for` is the fork/join primitive the decode service fans tiles out
// with.  The calling thread *helps* — it executes pending tasks while it
// waits — so calling it from inside a pool task (nested fan-out) cannot
// deadlock, and a pool of one worker degrades to clean inline execution.
//
// Helping has one carve-out: *root* tasks (`submit_root`) — whole jobs that
// may themselves block on another job's result, like a decode parked on a
// single-flight cache entry.  A helper that picked one up mid-job could end
// up waiting, on its own stack, for the very fan-out it was helping to
// finish.  Root tasks therefore start only from a worker's top-level loop.
#pragma once

#include "work_deque.hpp"

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace runtime {

class thread_pool {
public:
    using task = std::function<void()>;

    /// Start `workers` threads; <= 0 selects the hardware concurrency.
    explicit thread_pool(int workers = 0);

    /// Joins all workers; pending tasks are still executed (drain on exit).
    ~thread_pool();

    thread_pool(const thread_pool&) = delete;
    thread_pool& operator=(const thread_pool&) = delete;

    [[nodiscard]] int size() const noexcept { return static_cast<int>(workers_.size()); }

    /// Enqueue a task.  From a worker thread the task lands on that worker's
    /// own deque (stealable by the others); from outside, on the shared
    /// injection queue.
    void submit(task t);

    /// Enqueue a *root* task: one that may block waiting on the result of
    /// another pool task (e.g. a whole decode job parked on a single-flight
    /// cache entry).  Root tasks only ever start from a worker's top-level
    /// loop — never from inside a `parallel_for` helping loop — so a task
    /// that is itself mid-job can never nest a second job on its stack and
    /// then block on work buried beneath its own frames.  They always go to
    /// the shared injection queue, even when submitted from a worker.
    void submit_root(task t);

    /// Run `fn(0) .. fn(n-1)`, returning when all have finished.  Subtasks
    /// are claimed dynamically, so uneven iterations balance across workers.
    /// `max_concurrency` > 0 additionally caps how many threads (including
    /// the caller) work on this loop — the host-thread analogue of the
    /// paper's "number of parallel arithmetic decoder tasks" knob.
    /// The first exception thrown by any iteration is rethrown in the caller
    /// after the loop has quiesced.
    void parallel_for(int n, const std::function<void(int)>& fn, int max_concurrency = 0);

    /// Execute one pending task if any is available.  Returns false when
    /// every deque was empty.  Exposed so blocked threads can help.  Helpers
    /// skip root tasks (see `submit_root`): running a blocking job from a
    /// helping loop would stack it on top of the very work it waits for.
    bool try_run_one();

    /// Tasks executed since construction (all workers + helpers).
    [[nodiscard]] std::uint64_t tasks_executed() const noexcept
    {
        return executed_.load(std::memory_order_relaxed);
    }

    /// Steals observed since construction (tasks run by a non-owning worker).
    [[nodiscard]] std::uint64_t tasks_stolen() const noexcept
    {
        return stolen_.load(std::memory_order_relaxed);
    }

    /// Process-wide pool sized to the hardware concurrency, created on first
    /// use and alive for the rest of the process.  `j2k::decoder::
    /// decode_all_parallel` runs on this instead of spawning threads per call.
    [[nodiscard]] static thread_pool& shared();

private:
    void worker_loop(int index);
    bool pop_or_steal(int self, task& out, bool allow_root);

    struct injected_task {
        task fn;
        bool root = false;  ///< only a worker's top-level loop may run it
    };

    std::vector<std::unique_ptr<work_deque<task>>> deques_;
    std::vector<std::thread> workers_;

    std::mutex inject_m_;
    std::deque<injected_task> injected_;  ///< external submissions (admission path)

    std::mutex wake_m_;
    std::condition_variable wake_cv_;
    std::atomic<int> pending_{0};
    std::atomic<bool> stop_{false};
    std::atomic<std::size_t> steal_seed_{0};
    std::atomic<std::uint64_t> executed_{0};
    std::atomic<std::uint64_t> stolen_{0};
};

}  // namespace runtime
