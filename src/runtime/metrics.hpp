// runtime/metrics.hpp — counters and latency histograms for the decode
// service.
//
// Everything on the update path is a relaxed atomic: recording a sample is a
// handful of uncontended RMWs, cheap enough to leave enabled in production.
// `snapshot()` copies the live values into a plain struct; percentiles are
// derived from a log2-bucketed histogram (exact bucket, linear interpolation
// within it), which bounds the error at ~½ bucket width — plenty for p50/p95/
// p99 dashboards.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace runtime {

/// Log2-bucketed histogram of microsecond latencies.
class latency_histogram {
public:
    static constexpr int k_buckets = 40;  ///< bucket b counts values with bit_width b

    void observe(std::uint64_t us) noexcept;

    struct data {
        std::array<std::uint64_t, k_buckets> buckets{};
        std::uint64_t count = 0;
        std::uint64_t sum_us = 0;
        std::uint64_t max_us = 0;

        /// Approximate quantile in microseconds, q in [0, 1].
        [[nodiscard]] double quantile(double q) const noexcept;
        [[nodiscard]] double mean_us() const noexcept
        {
            return count == 0 ? 0.0 : static_cast<double>(sum_us) / static_cast<double>(count);
        }
    };

    [[nodiscard]] data snapshot() const noexcept;

private:
    std::array<std::atomic<std::uint64_t>, k_buckets> buckets_{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_us_{0};
    std::atomic<std::uint64_t> max_us_{0};
};

/// Point-in-time copy of every service metric.
struct metrics_snapshot {
    // Admission.
    std::uint64_t jobs_submitted = 0;
    std::uint64_t jobs_completed = 0;
    std::uint64_t jobs_failed = 0;    ///< decode threw (malformed stream, ...)
    std::uint64_t jobs_rejected = 0;  ///< refused at admission (reject policy)
    std::uint64_t jobs_dropped = 0;   ///< evicted while queued (drop_oldest)
    std::uint64_t queue_depth_high_water = 0;

    // Work.
    std::uint64_t tiles_decoded = 0;

    // Cumulative per-stage wall time across all workers (Figure 1's stage
    // split, measured on the host).
    double entropy_ms = 0.0;
    double iq_ms = 0.0;
    double idwt_ms = 0.0;
    double finish_ms = 0.0;

    // End-to-end job latency (submit → future ready), queue wait included.
    std::uint64_t latency_count = 0;
    double latency_mean_us = 0.0;
    std::uint64_t latency_max_us = 0;
    double latency_p50_us = 0.0;
    double latency_p95_us = 0.0;
    double latency_p99_us = 0.0;

    /// Multi-line human-readable dump.
    [[nodiscard]] std::string dump() const;
    /// Single JSON object (stable keys, machine-readable).
    [[nodiscard]] std::string to_json() const;
};

/// Live metric registers, shared by every worker of one decode_service.
class service_metrics {
public:
    void on_submitted() noexcept { submitted_.fetch_add(1, std::memory_order_relaxed); }
    void on_completed() noexcept { completed_.fetch_add(1, std::memory_order_relaxed); }
    void on_failed() noexcept { failed_.fetch_add(1, std::memory_order_relaxed); }
    void on_rejected() noexcept { rejected_.fetch_add(1, std::memory_order_relaxed); }
    void on_dropped() noexcept { dropped_.fetch_add(1, std::memory_order_relaxed); }
    void on_tile_decoded() noexcept { tiles_.fetch_add(1, std::memory_order_relaxed); }

    void record_queue_depth(std::size_t depth) noexcept;
    void record_latency_us(std::uint64_t us) noexcept { latency_.observe(us); }

    void add_stage_ns(std::uint64_t entropy, std::uint64_t iq, std::uint64_t idwt,
                      std::uint64_t finish) noexcept
    {
        entropy_ns_.fetch_add(entropy, std::memory_order_relaxed);
        iq_ns_.fetch_add(iq, std::memory_order_relaxed);
        idwt_ns_.fetch_add(idwt, std::memory_order_relaxed);
        finish_ns_.fetch_add(finish, std::memory_order_relaxed);
    }

    [[nodiscard]] metrics_snapshot snapshot() const;

private:
    std::atomic<std::uint64_t> submitted_{0};
    std::atomic<std::uint64_t> completed_{0};
    std::atomic<std::uint64_t> failed_{0};
    std::atomic<std::uint64_t> rejected_{0};
    std::atomic<std::uint64_t> dropped_{0};
    std::atomic<std::uint64_t> tiles_{0};
    std::atomic<std::uint64_t> queue_high_water_{0};
    std::atomic<std::uint64_t> entropy_ns_{0};
    std::atomic<std::uint64_t> iq_ns_{0};
    std::atomic<std::uint64_t> idwt_ns_{0};
    std::atomic<std::uint64_t> finish_ns_{0};
    latency_histogram latency_;
};

}  // namespace runtime
