// runtime/metrics.hpp — decode-service metrics, as a thin client of the
// generic obs:: layer (see src/obs/metrics.hpp and docs/OBSERVABILITY.md).
//
// Each decode_service owns one obs::registry; the named instruments below are
// references bound once at construction, so the hot path is exactly what it
// was when these were hand-rolled atomics: a handful of relaxed RMWs.
// `snapshot()` keeps the historical flat struct (and its dump()/to_json())
// for benches and dashboards; `instruments()` exposes the registry itself for
// generic text/JSON exposition.
#pragma once

#include "queue.hpp"

#include <obs/obs.hpp>

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace runtime {

/// Log2-bucketed histogram (promoted to obs::; alias kept for existing users).
using latency_histogram = obs::log2_histogram;

/// Seconds since the process (strictly: this translation unit's static
/// initialisation) started — the uptime every exposition surface reports.
[[nodiscard]] double process_uptime_s() noexcept;

/// Compile-time build description ("RelWithDebInfo" etc.; "unknown" when the
/// build system did not say) and the compiler version string.
[[nodiscard]] const char* build_type() noexcept;
[[nodiscard]] const char* compiler_version() noexcept;

/// Point-in-time copy of every service metric.
struct metrics_snapshot {
    // Process metadata (filled by decode_service::metrics(); zero/empty in a
    // bare service_metrics::snapshot()).
    double uptime_s = 0.0;
    int pool_threads = 0;
    bool tracing_armed = false;      ///< obs tracer armed at snapshot time
    const char* build = "";          ///< build type (static string)
    const char* compiler = "";       ///< compiler version (static string)

    // Kernel dispatch + per-job arena pool (filled by decode_service::
    // metrics(); empty/zero in a bare service_metrics::snapshot()).
    const char* kernel_isa = "";     ///< resolved SIMD tier: "scalar" / "avx2"
    bool mq_fast = false;            ///< MQ batch-renorm fast path engaged
    std::uint64_t arena_capacity_bytes = 0;  ///< per-arena size (0 = pooling off)
    std::uint64_t arena_leases = 0;          ///< jobs that requested an arena
    std::uint64_t arena_dry_acquires = 0;    ///< acquire() found the pool empty
    std::uint64_t arena_fallback_allocs = 0; ///< scratch spills to the heap
    std::uint64_t arena_high_water_bytes = 0;

    // Admission.
    std::uint64_t jobs_submitted = 0;
    std::uint64_t jobs_completed = 0;
    std::uint64_t jobs_failed = 0;    ///< decode threw (malformed stream, ...)
    std::uint64_t jobs_rejected = 0;  ///< refused at admission (reject policy)
    std::uint64_t jobs_dropped = 0;   ///< evicted while queued (drop_oldest)
    std::uint64_t jobs_promoted = 0;  ///< batch jobs popped past waiting interactive
    std::uint64_t jobs_batched = 0;   ///< jobs admitted through submit_batch
    std::uint64_t queue_depth_high_water = 0;

    /// Shed accounting split by admission class (indexed by runtime::priority).
    /// `dropped` is charged to the priority of the *evicted* job, which with
    /// per-priority capacities is not always the priority being pushed.
    struct priority_shed {
        std::uint64_t rejected = 0;
        std::uint64_t dropped = 0;
    };
    priority_shed shed_by_priority[priority_count];

    // Progressive (layer-streaming) jobs.
    std::uint64_t jobs_progressive = 0;        ///< jobs via submit_progressive
    std::uint64_t layers_emitted = 0;          ///< refinement images delivered
    std::uint64_t progressive_cancelled = 0;   ///< sessions ended early by callback
    /// Tier-1 segment bytes arithmetic-decoded by progressive sessions — the
    /// O(L) evidence: approaches the streams' total payload, never L× it.
    std::uint64_t t1_segment_bytes = 0;
    std::uint64_t progressive_active_high_water = 0;

    // Decoded-result cache (all zero when the service runs without one; the
    // live counters are owned by the cache itself and merged at snapshot
    // time by decode_service::metrics()).
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;     ///< flights led == decodes actually run
    std::uint64_t cache_collapses = 0;  ///< requests folded into a leader's flight
    std::uint64_t cache_evictions = 0;
    std::uint64_t cache_session_resumes = 0;
    std::uint64_t cache_bytes = 0;
    std::uint64_t cache_pinned_bytes = 0;
    std::uint64_t cache_entries = 0;
    std::uint64_t cache_session_entries = 0;

    // Work.
    std::uint64_t tiles_decoded = 0;
    std::uint64_t tasks_stolen = 0;  ///< pool subtasks run by a non-owning worker
    /// Pump tasks handed to the pool; with small-job batching this is below
    /// jobs_submitted (one pump drains a whole batch).
    std::uint64_t pool_submissions = 0;

    // Cumulative per-stage wall time across all workers (Figure 1's stage
    // split, measured on the host).
    double entropy_ms = 0.0;
    double iq_ms = 0.0;
    double idwt_ms = 0.0;
    double finish_ms = 0.0;

    // End-to-end job latency (submit → future ready), queue wait included.
    std::uint64_t latency_count = 0;
    double latency_mean_us = 0.0;
    std::uint64_t latency_max_us = 0;
    double latency_p50_us = 0.0;
    double latency_p95_us = 0.0;
    double latency_p99_us = 0.0;

    // Per-priority split of the same latency (indexed by runtime::priority).
    struct priority_latency {
        std::uint64_t count = 0;
        double p50_us = 0.0;
        double p99_us = 0.0;
    };
    priority_latency latency_by_priority[priority_count];

    /// Per-codec job and cache split (sorted by codec name; only codecs that
    /// have seen traffic appear).  `name` is the registry name for known wire
    /// ids, the decimal id otherwise (`unsupported` traffic has no backend).
    struct codec_entry {
        std::string name;
        std::uint64_t completed = 0;
        std::uint64_t failed = 0;
        std::uint64_t unsupported = 0;  ///< jobs refused: id not registered
        std::uint64_t cache_hits = 0;   ///< merged by decode_service::metrics()
        std::uint64_t cache_misses = 0;
    };
    std::vector<codec_entry> by_codec;

    /// Multi-line human-readable dump.
    [[nodiscard]] std::string dump() const;
    /// Single JSON object (stable keys, machine-readable).
    [[nodiscard]] std::string to_json() const;
};

/// Live metric registers, shared by every worker of one decode_service.
class service_metrics {
public:
    service_metrics();

    void on_submitted() noexcept { submitted_.add(); }
    void on_completed() noexcept { completed_.add(); }
    void on_failed() noexcept { failed_.add(); }
    void on_rejected(priority p) noexcept
    {
        rejected_.add();
        prio_rejected_[static_cast<std::size_t>(p)]->add();
    }
    void on_dropped(priority p) noexcept
    {
        dropped_.add();
        prio_dropped_[static_cast<std::size_t>(p)]->add();
    }
    void on_promoted() noexcept { promoted_.add(); }
    void on_batched() noexcept { batched_.add(); }
    void on_progressive_started() noexcept
    {
        progressive_.add();
        progressive_active_.add(1);
    }
    void on_progressive_finished() noexcept { progressive_active_.add(-1); }
    void on_layer_emitted() noexcept { layers_.add(); }
    void on_progressive_cancelled() noexcept { progressive_cancelled_.add(); }
    void add_t1_segment_bytes(std::uint64_t n) noexcept { t1_bytes_.add(n); }
    void on_pool_submission() noexcept { pool_submissions_.add(); }
    void on_tile_decoded() noexcept { tiles_.add(); }

    // Per-codec outcome counters, keyed by codec wire id and resolved to the
    // registry name once at first sight (see metrics.cpp).  Registered lazily
    // so only codecs that actually see traffic appear in expositions.
    void on_codec_completed(std::uint8_t codec) noexcept;
    void on_codec_failed(std::uint8_t codec) noexcept;
    void on_codec_unsupported(std::uint8_t codec) noexcept;

    void record_queue_depth(std::size_t depth) noexcept
    {
        queue_depth_.set(static_cast<std::int64_t>(depth));
    }
    void record_queue_depth(priority p, std::size_t depth) noexcept
    {
        prio_depth_[static_cast<std::size_t>(p)]->set(static_cast<std::int64_t>(depth));
    }
    void record_latency_us(priority p, std::uint64_t us) noexcept
    {
        latency_.observe(us);
        prio_latency_[static_cast<std::size_t>(p)]->observe(us);
    }

    // Per-stage wall-time accumulators; pair with obs::stage_timer on the
    // decode path (replaces the old add_stage_ns plumbing).
    [[nodiscard]] obs::counter& stage_entropy_ns() noexcept { return entropy_ns_; }
    [[nodiscard]] obs::counter& stage_iq_ns() noexcept { return iq_ns_; }
    [[nodiscard]] obs::counter& stage_idwt_ns() noexcept { return idwt_ns_; }
    [[nodiscard]] obs::counter& stage_finish_ns() noexcept { return finish_ns_; }

    [[nodiscard]] metrics_snapshot snapshot() const;

    /// The underlying registry (generic exposition, tests).
    [[nodiscard]] obs::registry& instruments() noexcept { return reg_; }
    [[nodiscard]] const obs::registry& instruments() const noexcept { return reg_; }

private:
    obs::registry reg_;
    obs::counter& submitted_;
    obs::counter& completed_;
    obs::counter& failed_;
    obs::counter& rejected_;
    obs::counter& dropped_;
    obs::counter& promoted_;
    obs::counter& batched_;
    obs::counter& progressive_;
    obs::counter& layers_;
    obs::counter& progressive_cancelled_;
    obs::counter& t1_bytes_;
    obs::gauge& progressive_active_;
    obs::counter& pool_submissions_;
    obs::counter& tiles_;
    obs::counter& entropy_ns_;
    obs::counter& iq_ns_;
    obs::counter& idwt_ns_;
    obs::counter& finish_ns_;
    obs::gauge& queue_depth_;
    obs::gauge* prio_depth_[priority_count];
    obs::counter* prio_rejected_[priority_count];
    obs::counter* prio_dropped_[priority_count];
    obs::log2_histogram& latency_;
    obs::log2_histogram* prio_latency_[priority_count];

    /// Lazily-bound per-codec counters (completed / failed / unsupported),
    /// keyed by the codec's exposition name.  The mutex guards map shape
    /// only; the counters themselves are the usual relaxed atomics.
    struct codec_counters {
        obs::counter* completed = nullptr;
        obs::counter* failed = nullptr;
        obs::counter* unsupported = nullptr;
    };
    codec_counters& codec_slot(std::uint8_t codec) noexcept;
    mutable std::mutex codec_m_;
    std::map<std::string, codec_counters> codec_;
};

}  // namespace runtime
