// runtime/arena.hpp — per-job bump allocator + bounded arena pool.
//
// Steady-state serving should do zero malloc on the decode hot path: every
// transient buffer a job needs (tier-1 block state, DWT scratch, gather
// buffers) comes from one pre-sized arena leased for the job's lifetime and
// reset on return.  The shape follows the tjdec idiom (SNIPPETS.md §3): one
// caller-supplied pool, a monotonic cursor, no per-allocation bookkeeping.
//
//   decode_service ──owns──► arena_pool (one arena per worker)
//        │ per job                 │ acquire()/RAII release
//        ▼                         ▼
//   arena_pool::lease ──► runtime::arena : std::pmr::memory_resource
//        │ resource()                       │ bump-pointer do_allocate
//        ▼                                  ▼ exhaustion → upstream heap
//   j2k decode stages (std::pmr::vector scratch, dwt/tier-1 buffers)
//
// Design points:
//   * The arena is a std::pmr::memory_resource, so the codec never sees the
//     runtime type — it just threads a memory_resource* through its scratch.
//   * The bump cursor is an atomic fetch-CAS, because one job fans its tiles
//     out across the pool and tiles allocate concurrently from the same
//     per-job arena.  Disjoint chunks, no locks.
//   * Exhaustion NEVER throws mid-decode: try_alloc() reports a typed error
//     (arena_errc) and do_allocate() falls back to the upstream heap resource,
//     counting the fallback so benches/metrics can assert it stayed at zero.
//   * reset() is cheap (cursor to zero) and, when poisoning is on (default
//     under !NDEBUG, switchable for tests), fills the used prefix with 0xA5 so
//     stale-byte reuse across jobs is loud instead of silent.
//   * deallocate is a no-op for arena-owned chunks (monotonic), and routes
//     non-owned pointers back upstream, so pmr containers that outlive a
//     fallback allocation still destroy cleanly.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <memory_resource>
#include <mutex>
#include <vector>

namespace runtime {

/// Typed allocation failure (the "no throw mid-decode" contract).
enum class arena_errc : std::uint8_t {
    none = 0,
    exhausted,      ///< capacity would be exceeded
    bad_alignment,  ///< alignment not a power of two
};

/// Monotonic bump allocator over one pre-sized block.  Thread-safe for
/// concurrent allocation; reset() requires external quiescence (the pool's
/// lease discipline provides it).
class arena final : public std::pmr::memory_resource {
public:
    static constexpr std::byte k_poison{0xA5};

    explicit arena(std::size_t capacity)
        : block_{capacity ? std::make_unique<std::byte[]>(capacity) : nullptr},
          cap_{capacity}
    {
    }

    arena(const arena&) = delete;
    arena& operator=(const arena&) = delete;

    /// Allocate or report a typed error; never throws, never falls back.
    [[nodiscard]] void* try_alloc(std::size_t bytes, std::size_t align,
                                  arena_errc* err = nullptr) noexcept
    {
        if (align == 0 || (align & (align - 1)) != 0) {
            if (err) *err = arena_errc::bad_alignment;
            return nullptr;
        }
        const auto base = reinterpret_cast<std::uintptr_t>(block_.get());
        std::size_t cur = off_.load(std::memory_order_relaxed);
        for (;;) {
            const std::size_t aligned =
                static_cast<std::size_t>(((base + cur + align - 1) & ~(align - 1)) -
                                         base);
            const std::size_t end = aligned + bytes;
            if (end < aligned || end > cap_) {  // overflow or out of room
                if (err) *err = arena_errc::exhausted;
                return nullptr;
            }
            if (off_.compare_exchange_weak(cur, end, std::memory_order_relaxed)) {
                bump_max(high_water_, end);
                allocs_.fetch_add(1, std::memory_order_relaxed);
                if (err) *err = arena_errc::none;
                return block_.get() + aligned;
            }
        }
    }

    /// Drop every allocation.  Callers must guarantee no live users (the pool
    /// resets only between leases).  With poisoning on, the used prefix is
    /// overwritten so stale bytes from the previous job cannot leak through.
    void reset() noexcept
    {
        const std::size_t used_now = off_.load(std::memory_order_relaxed);
        if (poison_.load(std::memory_order_relaxed) && used_now > 0)
            std::memset(block_.get(), static_cast<int>(k_poison),
                        used_now < cap_ ? used_now : cap_);
        off_.store(0, std::memory_order_relaxed);
    }

    [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }
    [[nodiscard]] std::size_t used() const noexcept
    {
        return off_.load(std::memory_order_relaxed);
    }
    /// Lifetime maximum of used() — sizes the pool from real traffic.
    [[nodiscard]] std::size_t high_water() const noexcept
    {
        return high_water_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t allocs() const noexcept
    {
        return allocs_.load(std::memory_order_relaxed);
    }
    /// Allocations that overflowed to the upstream heap via do_allocate().
    [[nodiscard]] std::uint64_t fallback_allocs() const noexcept
    {
        return fallbacks_.load(std::memory_order_relaxed);
    }

    [[nodiscard]] bool owns(const void* p) const noexcept
    {
        const auto* b = static_cast<const std::byte*>(p);
        return block_ && b >= block_.get() && b < block_.get() + cap_;
    }

    /// Poison-fill on reset: defaults to on in !NDEBUG builds; tests may force
    /// it on to verify the stale-byte property in release builds too.
    void set_poison(bool on) noexcept { poison_.store(on, std::memory_order_relaxed); }
    [[nodiscard]] bool poison_enabled() const noexcept
    {
        return poison_.load(std::memory_order_relaxed);
    }

protected:
    void* do_allocate(std::size_t bytes, std::size_t align) override
    {
        if (void* p = try_alloc(bytes, align)) return p;
        // pmr containers cannot take a typed error — degrade to the heap and
        // count it, so steady state stays observable (and assertable) instead
        // of failing the decode.
        fallbacks_.fetch_add(1, std::memory_order_relaxed);
        return upstream_->allocate(bytes, align);
    }

    void do_deallocate(void* p, std::size_t bytes, std::size_t align) override
    {
        if (owns(p)) return;  // monotonic: reclaimed wholesale by reset()
        upstream_->deallocate(p, bytes, align);
    }

    bool do_is_equal(const std::pmr::memory_resource& other) const noexcept override
    {
        return this == &other;
    }

private:
    static void bump_max(std::atomic<std::size_t>& m, std::size_t v) noexcept
    {
        std::size_t cur = m.load(std::memory_order_relaxed);
        while (v > cur &&
               !m.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
        }
    }

#ifdef NDEBUG
    static constexpr bool k_default_poison = false;
#else
    static constexpr bool k_default_poison = true;
#endif

    std::unique_ptr<std::byte[]> block_;
    std::size_t cap_ = 0;
    std::atomic<std::size_t> off_{0};
    std::atomic<std::size_t> high_water_{0};
    std::atomic<std::uint64_t> allocs_{0};
    std::atomic<std::uint64_t> fallbacks_{0};
    std::atomic<bool> poison_{k_default_poison};
    std::pmr::memory_resource* upstream_ = std::pmr::new_delete_resource();
};

/// Fixed set of arenas, one leased per in-flight job.  Sized to the worker
/// count, so with jobs ≤ workers a lease is always available; an empty lease
/// (pool dry, or pooling disabled) degrades the job to plain heap allocation.
class arena_pool {
public:
    arena_pool(std::size_t count, std::size_t bytes_each) : bytes_each_{bytes_each}
    {
        arenas_.reserve(count);
        free_.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
            arenas_.push_back(std::make_unique<arena>(bytes_each));
            free_.push_back(arenas_.back().get());
        }
    }

    /// RAII lease: resource() feeds the job's scratch; the destructor resets
    /// the arena (poisoning per its flag) and returns it to the pool.
    class lease {
    public:
        lease() = default;
        lease(arena_pool* pool, arena* a) noexcept : pool_{pool}, a_{a} {}
        lease(lease&& o) noexcept : pool_{o.pool_}, a_{o.a_}
        {
            o.pool_ = nullptr;
            o.a_ = nullptr;
        }
        lease& operator=(lease&& o) noexcept
        {
            if (this != &o) {
                release();
                pool_ = o.pool_;
                a_ = o.a_;
                o.pool_ = nullptr;
                o.a_ = nullptr;
            }
            return *this;
        }
        lease(const lease&) = delete;
        lease& operator=(const lease&) = delete;
        ~lease() { release(); }

        [[nodiscard]] explicit operator bool() const noexcept { return a_ != nullptr; }
        [[nodiscard]] arena* get() const noexcept { return a_; }
        /// Null when the lease is empty — callers pass this straight through
        /// as the optional scratch resource (null = heap).
        [[nodiscard]] std::pmr::memory_resource* resource() const noexcept
        {
            return a_;
        }

    private:
        void release() noexcept
        {
            if (pool_ && a_) pool_->give_back(a_);
            pool_ = nullptr;
            a_ = nullptr;
        }
        arena_pool* pool_ = nullptr;
        arena* a_ = nullptr;
    };

    /// Never blocks: an exhausted pool yields an empty lease (counted), and
    /// the job simply runs on the heap.
    [[nodiscard]] lease acquire() noexcept
    {
        std::lock_guard lk{m_};
        ++leases_;
        if (free_.empty()) {
            ++dry_;
            return {};
        }
        arena* a = free_.back();
        free_.pop_back();
        return {this, a};
    }

    [[nodiscard]] std::size_t size() const noexcept { return arenas_.size(); }
    [[nodiscard]] std::size_t bytes_each() const noexcept { return bytes_each_; }
    [[nodiscard]] std::uint64_t leases() const noexcept
    {
        std::lock_guard lk{m_};
        return leases_;
    }
    /// acquire() calls that found the pool empty.
    [[nodiscard]] std::uint64_t dry_acquires() const noexcept
    {
        std::lock_guard lk{m_};
        return dry_;
    }
    [[nodiscard]] std::uint64_t fallback_allocs() const noexcept
    {
        std::uint64_t n = 0;
        for (const auto& a : arenas_) n += a->fallback_allocs();
        return n;
    }
    [[nodiscard]] std::size_t high_water() const noexcept
    {
        std::size_t n = 0;
        for (const auto& a : arenas_)
            n = a->high_water() > n ? a->high_water() : n;
        return n;
    }

private:
    void give_back(arena* a) noexcept
    {
        a->reset();
        std::lock_guard lk{m_};
        free_.push_back(a);
    }

    std::size_t bytes_each_ = 0;
    std::vector<std::unique_ptr<arena>> arenas_;
    mutable std::mutex m_;
    std::vector<arena*> free_;
    std::uint64_t leases_ = 0;
    std::uint64_t dry_ = 0;
};

}  // namespace runtime
