// runtime/queue.hpp — bounded MPMC admission queue with backpressure.
//
// The host-side analogue of the explicit queued communication the OSSS models
// use between concurrent units: producers (request handlers) and consumers
// (pool workers) meet at a fixed-capacity queue, and what happens when the
// queue is full is a declared policy instead of an accident:
//
//   block       — producers wait for space (lossless, propagates pressure)
//   reject      — push fails immediately (shed load at admission)
//   drop_oldest — the oldest queued item is evicted to make room (bounded
//                 staleness, e.g. live preview frames)
//
// All operations are linearisable under one internal mutex; this queue sits
// on the admission path (one push per decode job), not on the per-tile hot
// path, so contention is negligible compared to the decode work behind it.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace runtime {

/// What a producer wants done when the queue is full.
enum class backpressure {
    block,        ///< wait until space is available
    reject,       ///< fail the push immediately
    drop_oldest,  ///< evict the oldest queued item, then push
};

/// Outcome of a push attempt.
enum class push_result {
    ok,       ///< item enqueued
    dropped,  ///< item enqueued, but an older item was evicted (drop_oldest)
    rejected, ///< queue full and policy is reject
    closed,   ///< queue closed; item not enqueued
};

/// Fixed-capacity multi-producer / multi-consumer FIFO.
template <typename T>
class bounded_queue {
public:
    explicit bounded_queue(std::size_t capacity, backpressure policy = backpressure::block)
        : cap_{capacity == 0 ? 1 : capacity}, policy_{policy}
    {
    }

    bounded_queue(const bounded_queue&) = delete;
    bounded_queue& operator=(const bounded_queue&) = delete;

    /// Enqueue `v` according to the backpressure policy.  `v` is consumed
    /// only when the item is actually enqueued (`ok`/`dropped`): on
    /// `rejected`/`closed` the caller keeps it — important when the item
    /// carries a promise that must be failed.  On `dropped`, the evicted item
    /// is moved into `*evicted` when non-null (so the caller can fail it) and
    /// destroyed otherwise.
    push_result push(T&& v, T* evicted = nullptr)
    {
        std::unique_lock lk{m_};
        if (closed_) return push_result::closed;
        if (q_.size() >= cap_) {
            switch (policy_) {
            case backpressure::reject:
                return push_result::rejected;
            case backpressure::drop_oldest: {
                if (evicted) *evicted = std::move(q_.front());
                q_.pop_front();
                q_.push_back(std::move(v));
                high_water_ = std::max(high_water_, q_.size());
                lk.unlock();
                not_empty_.notify_one();
                return push_result::dropped;
            }
            case backpressure::block:
                not_full_.wait(lk, [&] { return closed_ || q_.size() < cap_; });
                if (closed_) return push_result::closed;
                break;
            }
        }
        q_.push_back(std::move(v));
        high_water_ = std::max(high_water_, q_.size());
        lk.unlock();
        not_empty_.notify_one();
        return push_result::ok;
    }

    /// Dequeue, blocking until an item arrives or the queue is closed *and*
    /// drained.  Returns nullopt only on closed-and-empty.
    std::optional<T> pop()
    {
        std::unique_lock lk{m_};
        not_empty_.wait(lk, [&] { return closed_ || !q_.empty(); });
        if (q_.empty()) return std::nullopt;
        T v = std::move(q_.front());
        q_.pop_front();
        lk.unlock();
        not_full_.notify_one();
        return v;
    }

    /// Non-blocking dequeue.
    std::optional<T> try_pop()
    {
        std::unique_lock lk{m_};
        if (q_.empty()) return std::nullopt;
        T v = std::move(q_.front());
        q_.pop_front();
        lk.unlock();
        not_full_.notify_one();
        return v;
    }

    /// Stop accepting pushes and wake every waiter.  Items already queued
    /// remain poppable (drain semantics).
    void close()
    {
        {
            std::lock_guard lk{m_};
            closed_ = true;
        }
        not_empty_.notify_all();
        not_full_.notify_all();
    }

    [[nodiscard]] bool closed() const
    {
        std::lock_guard lk{m_};
        return closed_;
    }

    [[nodiscard]] std::size_t size() const
    {
        std::lock_guard lk{m_};
        return q_.size();
    }

    [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }
    [[nodiscard]] backpressure policy() const noexcept { return policy_; }

    /// Highest occupancy ever observed (for sizing the capacity).
    [[nodiscard]] std::size_t high_water() const
    {
        std::lock_guard lk{m_};
        return high_water_;
    }

private:
    const std::size_t cap_;
    const backpressure policy_;
    mutable std::mutex m_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::deque<T> q_;
    std::size_t high_water_ = 0;
    bool closed_ = false;
};

/// Admission class of a request.  `interactive` jumps ahead of `batch` at the
/// queue (strict priority with a starvation escape valve); within a class the
/// order stays FIFO.
enum class priority : int {
    interactive = 0,  ///< latency-sensitive (previews, on-screen decodes)
    batch = 1,        ///< throughput work (bulk transcodes, prefetch)
};

inline constexpr std::size_t priority_count = 2;

[[nodiscard]] constexpr const char* priority_name(priority p) noexcept
{
    return p == priority::interactive ? "interactive" : "batch";
}

/// Optional per-level bounds for `two_level_queue` (0 = no per-level bound;
/// the shared capacity still applies).  Independent bounds let an admission
/// front-end shed batch work aggressively while keeping headroom reserved for
/// interactive traffic (and vice versa).
struct level_capacities {
    std::size_t interactive = 0;
    std::size_t batch = 0;

    [[nodiscard]] constexpr std::size_t of(priority p) const noexcept
    {
        return p == priority::interactive ? interactive : batch;
    }
};

/// Two-level strict-priority bounded MPMC queue.
///
/// Same backpressure contract as `bounded_queue` (one shared capacity across
/// both levels, plus optional independent per-level bounds), and an admission
/// class per item:
///
///   pop      — interactive first; after `promote_after` *consecutive*
///              interactive pops with batch work waiting, one batch item is
///              promoted past the interactive backlog (starvation escape
///              valve), and the counter resets.
///   drop_oldest — when the *pushing level* is at its own bound, the victim
///              must come from that level (evicting elsewhere frees no room),
///              and the eviction is charged to that level via *evicted_prio.
///              When only the shared bound is hit, the victim is the oldest
///              *batch* item when one exists; interactive items are only
///              evicted when no batch work is queued (shed throughput work
///              before latency work).
template <typename T>
class two_level_queue {
public:
    /// What a consumer receives: the item, its class, and whether strict
    /// priority was overridden to deliver it (batch promoted past waiting
    /// interactive work).
    struct popped {
        T item;
        priority prio = priority::batch;
        bool promoted = false;
    };

    explicit two_level_queue(std::size_t capacity,
                             backpressure policy = backpressure::block,
                             std::size_t promote_after = 8,
                             level_capacities level_caps = {})
        : cap_{capacity == 0 ? 1 : capacity},
          level_caps_{level_caps},
          policy_{policy},
          promote_after_{promote_after == 0 ? 1 : promote_after}
    {
    }

    two_level_queue(const two_level_queue&) = delete;
    two_level_queue& operator=(const two_level_queue&) = delete;

    /// Enqueue `v` at level `p`; same consumption contract as
    /// `bounded_queue::push` (the caller keeps `v` on `rejected`/`closed`).
    /// On `dropped` the victim's class is written to `*evicted_prio`.
    push_result push(T&& v, priority p, T* evicted = nullptr,
                     priority* evicted_prio = nullptr)
    {
        std::unique_lock lk{m_};
        if (closed_) return push_result::closed;
        if (full_for_locked(p)) {
            switch (policy_) {
            case backpressure::reject:
                return push_result::rejected;
            case backpressure::drop_oldest: {
                // When the pushing level itself is at its bound, only an
                // eviction from that level makes room — and the drop must be
                // charged to that level, not to whoever happens to be oldest
                // overall.  Only a purely shared-capacity overflow sheds the
                // oldest batch item first (a fully interactive queue then
                // sacrifices interactive work).
                const priority victim_level =
                    level_full_locked(p) ? p
                    : !level(priority::batch).empty() ? priority::batch
                                                      : priority::interactive;
                auto& vq = level(victim_level);
                if (evicted) *evicted = std::move(vq.front());
                if (evicted_prio) *evicted_prio = victim_level;
                vq.pop_front();
                level(p).push_back(std::move(v));
                high_water_ = std::max(high_water_, total_locked());
                lk.unlock();
                not_empty_.notify_one();
                return push_result::dropped;
            }
            case backpressure::block:
                not_full_.wait(lk, [&] { return closed_ || !full_for_locked(p); });
                if (closed_) return push_result::closed;
                break;
            }
        }
        level(p).push_back(std::move(v));
        high_water_ = std::max(high_water_, total_locked());
        lk.unlock();
        not_empty_.notify_one();
        return push_result::ok;
    }

    /// Dequeue, blocking until an item arrives or the queue is closed *and*
    /// drained.  Returns nullopt only on closed-and-empty.
    std::optional<popped> pop()
    {
        std::unique_lock lk{m_};
        not_empty_.wait(lk, [&] { return closed_ || total_locked() > 0; });
        if (total_locked() == 0) return std::nullopt;
        return take_locked(lk);
    }

    /// Non-blocking dequeue.
    std::optional<popped> try_pop()
    {
        std::unique_lock lk{m_};
        if (total_locked() == 0) return std::nullopt;
        return take_locked(lk);
    }

    /// Stop accepting pushes and wake every waiter.  Items already queued
    /// remain poppable (drain semantics).
    void close()
    {
        {
            std::lock_guard lk{m_};
            closed_ = true;
        }
        not_empty_.notify_all();
        not_full_.notify_all();
    }

    [[nodiscard]] bool closed() const
    {
        std::lock_guard lk{m_};
        return closed_;
    }

    [[nodiscard]] std::size_t size() const
    {
        std::lock_guard lk{m_};
        return total_locked();
    }

    [[nodiscard]] std::size_t size(priority p) const
    {
        std::lock_guard lk{m_};
        return levels_[static_cast<std::size_t>(p)].size();
    }

    [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }
    /// Per-level bound (0 = bounded only by the shared capacity).
    [[nodiscard]] std::size_t capacity(priority p) const noexcept
    {
        return level_caps_.of(p);
    }
    [[nodiscard]] backpressure policy() const noexcept { return policy_; }
    [[nodiscard]] std::size_t promote_after() const noexcept { return promote_after_; }

    /// Highest total occupancy ever observed.
    [[nodiscard]] std::size_t high_water() const
    {
        std::lock_guard lk{m_};
        return high_water_;
    }

    /// Batch items delivered past waiting interactive work (escape valve).
    [[nodiscard]] std::uint64_t promoted() const
    {
        std::lock_guard lk{m_};
        return promoted_;
    }

private:
    std::deque<T>& level(priority p) { return levels_[static_cast<std::size_t>(p)]; }

    [[nodiscard]] std::size_t total_locked() const
    {
        return levels_[0].size() + levels_[1].size();
    }

    /// Is level `p` at its own (optional) bound?
    [[nodiscard]] bool level_full_locked(priority p) const
    {
        const std::size_t lcap = level_caps_.of(p);
        return lcap != 0 && levels_[static_cast<std::size_t>(p)].size() >= lcap;
    }

    /// Can a push at level `p` not proceed right now?
    [[nodiscard]] bool full_for_locked(priority p) const
    {
        return total_locked() >= cap_ || level_full_locked(p);
    }

    popped take_locked(std::unique_lock<std::mutex>& lk)
    {
        const bool has_interactive = !level(priority::interactive).empty();
        const bool has_batch = !level(priority::batch).empty();
        popped out;
        if (has_batch &&
            (!has_interactive || consecutive_interactive_ >= promote_after_)) {
            out.prio = priority::batch;
            out.promoted = has_interactive;  // jumped the interactive backlog
            if (out.promoted) ++promoted_;
            consecutive_interactive_ = 0;
        } else {
            out.prio = priority::interactive;
            // Count only pops that actually bypass waiting batch work; an
            // empty batch level accrues no starvation grievance.
            if (has_batch) ++consecutive_interactive_;
        }
        auto& q = level(out.prio);
        out.item = std::move(q.front());
        q.pop_front();
        lk.unlock();
        not_full_.notify_one();
        return out;
    }

    const std::size_t cap_;
    const level_capacities level_caps_;
    const backpressure policy_;
    const std::size_t promote_after_;
    mutable std::mutex m_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::deque<T> levels_[priority_count];
    std::size_t high_water_ = 0;
    /// Consecutive interactive pops that bypassed waiting batch work; resets
    /// on every batch pop.
    std::size_t consecutive_interactive_ = 0;
    std::uint64_t promoted_ = 0;
    bool closed_ = false;
};

}  // namespace runtime
