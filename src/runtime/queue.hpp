// runtime/queue.hpp — bounded MPMC admission queue with backpressure.
//
// The host-side analogue of the explicit queued communication the OSSS models
// use between concurrent units: producers (request handlers) and consumers
// (pool workers) meet at a fixed-capacity queue, and what happens when the
// queue is full is a declared policy instead of an accident:
//
//   block       — producers wait for space (lossless, propagates pressure)
//   reject      — push fails immediately (shed load at admission)
//   drop_oldest — the oldest queued item is evicted to make room (bounded
//                 staleness, e.g. live preview frames)
//
// All operations are linearisable under one internal mutex; this queue sits
// on the admission path (one push per decode job), not on the per-tile hot
// path, so contention is negligible compared to the decode work behind it.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace runtime {

/// What a producer wants done when the queue is full.
enum class backpressure {
    block,        ///< wait until space is available
    reject,       ///< fail the push immediately
    drop_oldest,  ///< evict the oldest queued item, then push
};

/// Outcome of a push attempt.
enum class push_result {
    ok,       ///< item enqueued
    dropped,  ///< item enqueued, but an older item was evicted (drop_oldest)
    rejected, ///< queue full and policy is reject
    closed,   ///< queue closed; item not enqueued
};

/// Fixed-capacity multi-producer / multi-consumer FIFO.
template <typename T>
class bounded_queue {
public:
    explicit bounded_queue(std::size_t capacity, backpressure policy = backpressure::block)
        : cap_{capacity == 0 ? 1 : capacity}, policy_{policy}
    {
    }

    bounded_queue(const bounded_queue&) = delete;
    bounded_queue& operator=(const bounded_queue&) = delete;

    /// Enqueue `v` according to the backpressure policy.  `v` is consumed
    /// only when the item is actually enqueued (`ok`/`dropped`): on
    /// `rejected`/`closed` the caller keeps it — important when the item
    /// carries a promise that must be failed.  On `dropped`, the evicted item
    /// is moved into `*evicted` when non-null (so the caller can fail it) and
    /// destroyed otherwise.
    push_result push(T&& v, T* evicted = nullptr)
    {
        std::unique_lock lk{m_};
        if (closed_) return push_result::closed;
        if (q_.size() >= cap_) {
            switch (policy_) {
            case backpressure::reject:
                return push_result::rejected;
            case backpressure::drop_oldest: {
                if (evicted) *evicted = std::move(q_.front());
                q_.pop_front();
                q_.push_back(std::move(v));
                high_water_ = std::max(high_water_, q_.size());
                lk.unlock();
                not_empty_.notify_one();
                return push_result::dropped;
            }
            case backpressure::block:
                not_full_.wait(lk, [&] { return closed_ || q_.size() < cap_; });
                if (closed_) return push_result::closed;
                break;
            }
        }
        q_.push_back(std::move(v));
        high_water_ = std::max(high_water_, q_.size());
        lk.unlock();
        not_empty_.notify_one();
        return push_result::ok;
    }

    /// Dequeue, blocking until an item arrives or the queue is closed *and*
    /// drained.  Returns nullopt only on closed-and-empty.
    std::optional<T> pop()
    {
        std::unique_lock lk{m_};
        not_empty_.wait(lk, [&] { return closed_ || !q_.empty(); });
        if (q_.empty()) return std::nullopt;
        T v = std::move(q_.front());
        q_.pop_front();
        lk.unlock();
        not_full_.notify_one();
        return v;
    }

    /// Non-blocking dequeue.
    std::optional<T> try_pop()
    {
        std::unique_lock lk{m_};
        if (q_.empty()) return std::nullopt;
        T v = std::move(q_.front());
        q_.pop_front();
        lk.unlock();
        not_full_.notify_one();
        return v;
    }

    /// Stop accepting pushes and wake every waiter.  Items already queued
    /// remain poppable (drain semantics).
    void close()
    {
        {
            std::lock_guard lk{m_};
            closed_ = true;
        }
        not_empty_.notify_all();
        not_full_.notify_all();
    }

    [[nodiscard]] bool closed() const
    {
        std::lock_guard lk{m_};
        return closed_;
    }

    [[nodiscard]] std::size_t size() const
    {
        std::lock_guard lk{m_};
        return q_.size();
    }

    [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }
    [[nodiscard]] backpressure policy() const noexcept { return policy_; }

    /// Highest occupancy ever observed (for sizing the capacity).
    [[nodiscard]] std::size_t high_water() const
    {
        std::lock_guard lk{m_};
        return high_water_;
    }

private:
    const std::size_t cap_;
    const backpressure policy_;
    mutable std::mutex m_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::deque<T> q_;
    std::size_t high_water_ = 0;
    bool closed_ = false;
};

}  // namespace runtime
