// runtime/hash.hpp — the repo's one FNV-1a implementation.
//
// Used as the content address of the decoded-result cache (hash of the raw
// codestream bytes) and as the pixel digest of the golden corpus
// (tests/j2k/test_golden.cpp, make_corpus.cpp), which previously each carried
// their own copy.  64-bit FNV-1a: not cryptographic — collision resistance is
// probabilistic (~2^-64 per pair), which is the documented trust model of the
// cache key (see docs/RUNTIME.md).
//
// Header-only and j2k-free on purpose: `fnv1a_image` is a template over any
// image-shaped type (width/height/components/bit_depth/comp(c).samples()), so
// runtime_core keeps its no-j2k-dependency invariant while j2k-side tests and
// the cache share the exact same byte-for-byte mixing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace runtime {

inline constexpr std::uint64_t k_fnv1a_offset = 0xCBF29CE484222325ull;
inline constexpr std::uint64_t k_fnv1a_prime = 0x100000001B3ull;

/// Incremental FNV-1a accumulator.
class fnv1a {
public:
    /// Mix one byte.
    constexpr void byte(std::uint8_t b) noexcept
    {
        h_ = (h_ ^ b) * k_fnv1a_prime;
    }

    /// Mix a byte range.
    constexpr void bytes(std::span<const std::uint8_t> data) noexcept
    {
        for (const std::uint8_t b : data) byte(b);
    }

    /// Mix a 64-bit value as 8 little-endian bytes (the corpus convention).
    constexpr void u64(std::uint64_t v) noexcept
    {
        for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(v >> (i * 8)));
    }

    [[nodiscard]] constexpr std::uint64_t value() const noexcept { return h_; }

private:
    std::uint64_t h_ = k_fnv1a_offset;
};

/// FNV-1a of a byte range — the cache's content address for a codestream.
[[nodiscard]] constexpr std::uint64_t fnv1a_bytes(
    std::span<const std::uint8_t> data) noexcept
{
    fnv1a h;
    h.bytes(data);
    return h.value();
}

/// FNV-1a over an image's geometry and every sample, in the golden-corpus
/// order: width, height, components, bit depth, then each component's samples
/// row-major, every value mixed as 8 little-endian bytes.  Templated so this
/// header needs no j2k dependency; instantiate with j2k::image (or anything
/// with the same accessors).
template <typename Image>
[[nodiscard]] std::uint64_t fnv1a_image(const Image& img) noexcept
{
    fnv1a h;
    h.u64(static_cast<std::uint64_t>(img.width()));
    h.u64(static_cast<std::uint64_t>(img.height()));
    h.u64(static_cast<std::uint64_t>(img.components()));
    h.u64(static_cast<std::uint64_t>(img.bit_depth()));
    for (int c = 0; c < img.components(); ++c)
        for (const std::int32_t v : img.comp(c).samples())
            h.u64(static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)));
    return h.value();
}

}  // namespace runtime
