#include "decoded_cache.hpp"

#include <runtime/hash.hpp>

#include <obs/obs.hpp>

#include <algorithm>
#include <utility>

namespace runtime {

std::size_t cache_key_hash::operator()(const cache_key& k) const noexcept
{
    fnv1a h;
    h.u64(k.content_hash);
    h.u64(k.codec);
    h.u64(static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.layers)) |
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.discard_levels))
           << 32));
    h.u64(static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.max_passes)));
    h.u64(static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.roi_x)) |
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.roi_y)) << 32));
    h.u64(static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.roi_w)) |
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.roi_h)) << 32));
    return static_cast<std::size_t>(h.value());
}

std::size_t image_bytes(const j2k::image& img) noexcept
{
    return static_cast<std::size_t>(img.width()) * static_cast<std::size_t>(img.height()) *
           static_cast<std::size_t>(img.components()) * sizeof(std::int32_t);
}

/// One resident decoded image.
struct decoded_cache::image_entry {
    image_ptr img;
    std::size_t bytes = 0;
    bool pinned = false;
    lru_list::iterator lru_it;  ///< position in lru_ (pinned entries included,
                                ///< skipped at eviction time)
};

/// One resident resumable prefix.  `session` is empty while checked out.
struct decoded_cache::session_entry {
    std::vector<std::uint8_t> bytes;
    std::optional<j2k::decode_session> session;
    std::size_t resident = 0;  ///< accounted bytes (codestream + decoder state)
    bool leased = false;
};

/// Single-flight rendezvous: the leader publishes exactly once, waiters block
/// on the flight's own cv (not the cache mutex) so a long decode never holds
/// the cache lock.
struct decoded_cache::flight {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    image_ptr img;
    std::exception_ptr err;
};

decoded_cache::decoded_cache(std::size_t byte_budget) : budget_{byte_budget} {}

decoded_cache::~decoded_cache() = default;

void decoded_cache::account_insert_locked(std::size_t bytes, bool pinned)
{
    bytes_ += bytes;
    if (pinned) pinned_bytes_ += bytes;
}

void decoded_cache::account_erase_locked(std::size_t bytes, bool pinned)
{
    bytes_ -= bytes;
    if (pinned) pinned_bytes_ -= bytes;
}

void decoded_cache::evict_to_budget_locked()
{
    // Unpinned images go first, coldest first; session prefixes only after
    // every unpinned image is gone (a prefix took O(layers) tier-1 work to
    // build, an image only synthesis).  Leased sessions and pinned images are
    // untouchable, so a fully pinned cache may sit above budget — bounded,
    // because inserts refuse the pin bit once pins alone would exceed the
    // budget (see complete_flight/insert).
    auto it = lru_.end();
    while (bytes_ > budget_ && it != lru_.begin()) {
        --it;
        auto found = images_.find(*it);
        if (found == images_.end() || found->second.pinned) continue;
        account_erase_locked(found->second.bytes, false);
        it = lru_.erase(it);
        images_.erase(found);
        ++evictions_;
        OBS_TRACE_INSTANT("cache", "evict");
    }
    for (auto sit = sessions_.begin(); bytes_ > budget_ && sit != sessions_.end();) {
        if (sit->second.leased) {
            ++sit;
            continue;
        }
        account_erase_locked(sit->second.resident, false);
        sit = sessions_.erase(sit);
        ++evictions_;
        OBS_TRACE_INSTANT("cache", "evict");
    }
}

std::optional<decoded_cache::flight_result> decoded_cache::begin_flight(
    const cache_key& k)
{
    std::shared_ptr<flight> f;
    {
        std::lock_guard lk{m_};
        auto it = images_.find(k);
        if (it != images_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second.lru_it);
            ++hits_;
            ++by_codec_[k.codec].hits;
            OBS_TRACE_INSTANT("cache", "hit");
            return flight_result{it->second.img, nullptr, false};
        }
        auto fit = flights_.find(k);
        if (fit == flights_.end()) {
            ++misses_;
            ++by_codec_[k.codec].misses;
            OBS_TRACE_INSTANT("cache", "miss");
            flights_.emplace(k, std::make_shared<flight>());
            return std::nullopt;  // caller leads
        }
        ++collapses_;
        OBS_TRACE_INSTANT("cache", "collapse");
        f = fit->second;
    }
    std::unique_lock fl{f->m};
    f->cv.wait(fl, [&] { return f->done; });
    return flight_result{f->img, f->err, true};
}

void decoded_cache::complete_flight(const cache_key& k, image_ptr img, bool pin)
{
    std::shared_ptr<flight> f;
    {
        std::lock_guard lk{m_};
        auto fit = flights_.find(k);
        if (fit != flights_.end()) {
            f = std::move(fit->second);
            flights_.erase(fit);
        }
        if (img && !images_.count(k)) {
            const std::size_t sz = image_bytes(*img);
            // Refuse the pin (not the entry) once pinned bytes alone would
            // blow the budget: a pin-flood degrades to an ordinary full
            // cache instead of unbounded growth.
            const bool pinned = pin && pinned_bytes_ + sz <= budget_;
            lru_.push_front(k);
            images_.emplace(k, image_entry{img, sz, pinned, lru_.begin()});
            account_insert_locked(sz, pinned);
            ++inserts_;
            evict_to_budget_locked();
            OBS_TRACE_COUNTER("cache", "cache_bytes", bytes_);
        }
    }
    if (f) {
        std::lock_guard fl{f->m};
        f->img = std::move(img);
        f->done = true;
        f->cv.notify_all();
    }
}

void decoded_cache::abort_flight(const cache_key& k, std::exception_ptr err) noexcept
{
    std::shared_ptr<flight> f;
    {
        std::lock_guard lk{m_};
        auto fit = flights_.find(k);
        if (fit == flights_.end()) return;
        f = std::move(fit->second);
        flights_.erase(fit);
    }
    std::lock_guard fl{f->m};
    f->err = std::move(err);
    f->done = true;
    f->cv.notify_all();
}

decoded_cache::image_ptr decoded_cache::peek(const cache_key& k)
{
    std::lock_guard lk{m_};
    auto it = images_.find(k);
    if (it == images_.end()) return nullptr;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    ++hits_;
    ++by_codec_[k.codec].hits;
    return it->second.img;
}

void decoded_cache::insert(const cache_key& k, image_ptr img, bool pin)
{
    if (!img) return;
    std::lock_guard lk{m_};
    if (images_.count(k)) return;
    const std::size_t sz = image_bytes(*img);
    const bool pinned = pin && pinned_bytes_ + sz <= budget_;
    lru_.push_front(k);
    images_.emplace(k, image_entry{std::move(img), sz, pinned, lru_.begin()});
    account_insert_locked(sz, pinned);
    ++inserts_;
    evict_to_budget_locked();
    OBS_TRACE_COUNTER("cache", "cache_bytes", bytes_);
}

bool decoded_cache::set_pinned(const cache_key& k, bool pinned)
{
    std::lock_guard lk{m_};
    auto it = images_.find(k);
    if (it == images_.end()) return false;
    image_entry& e = it->second;
    if (e.pinned == pinned) return true;
    if (pinned && pinned_bytes_ + e.bytes > budget_) return false;
    e.pinned = pinned;
    pinned ? pinned_bytes_ += e.bytes : pinned_bytes_ -= e.bytes;
    if (!pinned) evict_to_budget_locked();
    return true;
}

std::optional<decoded_cache::session_lease> decoded_cache::checkout_session(
    std::uint64_t content_hash, std::span<const std::uint8_t> expect, int max_layers)
{
    std::lock_guard lk{m_};
    auto it = sessions_.find(content_hash);
    if (it == sessions_.end() || it->second.leased || !it->second.session) return std::nullopt;
    session_entry& e = it->second;
    if (e.session->layers_decoded() > max_layers)
        return std::nullopt;  // deeper than the request: not bit-exact to resume
    if (e.bytes.size() != expect.size() ||
        !std::equal(e.bytes.begin(), e.bytes.end(), expect.begin()))
        return std::nullopt;  // 64-bit collision or stale entry: never resume
    e.leased = true;
    ++session_resumes_;
    OBS_TRACE_INSTANT("cache", "session_resume");
    // The vector move keeps the heap buffer (and the session's references
    // into it) stable; the entry keeps its byte accounting until return.
    session_lease lease{std::move(e.bytes), std::move(*e.session)};
    e.session.reset();
    return lease;
}

void decoded_cache::deposit_session(std::uint64_t content_hash,
                                    std::vector<std::uint8_t> bytes,
                                    j2k::decode_session session)
{
    const std::size_t resident = bytes.size() + session.resident_bytes();
    std::lock_guard lk{m_};
    ++session_deposits_;
    auto it = sessions_.find(content_hash);
    if (it != sessions_.end()) {
        session_entry& e = it->second;
        if (e.leased) {
            // Lease return (or a cold deposit racing one — same handling:
            // the returning/incoming state replaces the checked-out slot).
            account_erase_locked(e.resident, false);
            e.bytes = std::move(bytes);
            e.session.emplace(std::move(session));
            e.resident = resident;
            e.leased = false;
            account_insert_locked(resident, false);
        } else if (e.session &&
                   session.layers_decoded() > e.session->layers_decoded()) {
            account_erase_locked(e.resident, false);
            e.bytes = std::move(bytes);
            e.session.emplace(std::move(session));
            e.resident = resident;
            account_insert_locked(resident, false);
        }
        // else: resident prefix is at least as deep — drop the deposit.
    } else {
        session_entry e;
        e.bytes = std::move(bytes);
        e.session.emplace(std::move(session));
        e.resident = resident;
        account_insert_locked(resident, false);
        sessions_.emplace(content_hash, std::move(e));
    }
    evict_to_budget_locked();
    OBS_TRACE_COUNTER("cache", "cache_bytes", bytes_);
}

void decoded_cache::discard_session(std::uint64_t content_hash) noexcept
{
    std::lock_guard lk{m_};
    auto it = sessions_.find(content_hash);
    if (it == sessions_.end() || !it->second.leased) return;
    account_erase_locked(it->second.resident, false);
    sessions_.erase(it);
}

cache_stats decoded_cache::stats() const
{
    std::lock_guard lk{m_};
    cache_stats s;
    s.hits = hits_;
    s.misses = misses_;
    s.collapses = collapses_;
    s.inserts = inserts_;
    s.evictions = evictions_;
    s.session_resumes = session_resumes_;
    s.session_deposits = session_deposits_;
    s.bytes = bytes_;
    s.pinned_bytes = pinned_bytes_;
    s.entries = images_.size();
    s.session_entries = sessions_.size();
    s.by_codec.reserve(by_codec_.size());
    for (const auto& [id, c] : by_codec_)
        s.by_codec.push_back({id, c.hits, c.misses});
    std::sort(s.by_codec.begin(), s.by_codec.end(),
              [](const auto& a, const auto& b) { return a.codec < b.codec; });
    return s;
}

void decoded_cache::clear()
{
    std::lock_guard lk{m_};
    for (auto& [k, e] : images_) account_erase_locked(e.bytes, e.pinned);
    images_.clear();
    lru_.clear();
    for (auto it = sessions_.begin(); it != sessions_.end();) {
        if (it->second.leased) {
            ++it;  // dropped on return via deposit_session + eviction
            continue;
        }
        account_erase_locked(it->second.resident, false);
        it = sessions_.erase(it);
    }
}

}  // namespace runtime
