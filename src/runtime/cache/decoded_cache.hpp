// runtime/cache/decoded_cache.hpp — process-wide content-addressed cache of
// decoded results, with single-flight collapsing of concurrent identical
// misses.
//
// Serving traffic is zipf-distributed: the same hot codestreams are decoded
// over and over.  This cache sits between admission and the decode kernels as
// its own byte-budgeted subsystem (the TLM discipline: a storage service
// behind a clean transaction interface, not state smeared through the codec)
// and holds two value kinds:
//
//   1. fully decoded images, keyed by (codestream FNV-1a hash, quality
//      layers, discard levels, max passes[, ROI window — reserved]) — a hit
//      answers a decode_all-shaped request with zero tier-1 work;
//   2. resumable decode_session prefixes, keyed by content hash alone — a
//      cached layer-k prefix serves a layer-(k+n) request at O(new layers)
//      tier-1 cost, and an equal-depth prefix at synthesis-only cost.  A
//      prefix *deeper* than the request is never resumed: tier-1 block state
//      is cumulative and cannot be rolled back, so only an equal-or-shallower
//      prefix reproduces the request bit-exactly.
//
// Concurrent identical misses collapse single-flight: the first requester
// becomes the leader and decodes; the others block on the flight and share
// the leader's published image (or its exception).  The leader never waits on
// anyone, so a pool worker leading a flight always makes progress — waiters
// can only queue behind a leader that is actively decoding, which is strictly
// cheaper than the N redundant decodes they replace.
//
//   begin_flight(k) ──hit──────────────► shared image        (fast path)
//        │ miss, flight open ──block──► leader's outcome     (collapsed)
//        │ miss, no flight ───────────► nullopt: caller is leader, must
//        ▼                               complete_flight / abort_flight
//   [decode] ── complete_flight(k,img) ► waiters wake, entry inserted (LRU)
//
// Eviction is LRU over a byte budget.  Entries pinned by policy
// (cache_policy::pin, the J2NE pin flag) and session entries currently
// checked out are never evicted; pinned bytes still count against the budget
// so a pin-flood degrades to "cache full", not OOM.
//
// Collision trust model: the content address is 64-bit FNV-1a of the whole
// codestream.  Image hits trust the hash (~2^-64 accidental collision);
// session checkouts additionally compare the stored bytes against the
// request's before resuming, because resuming a wrong-content session would
// silently produce plausible-looking garbage.
#pragma once

#include <j2k/image.hpp>
#include <j2k/session.hpp>

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <limits>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

namespace runtime {

/// Cache key of one fully decoded image.  Extensible by design: the ROI
/// window fields are reserved for region-of-interest serving (all-zero =
/// full frame) so ROADMAP item 3 widens the key without a format break.
///
/// Keys are namespaced by codec wire id: two codecs handed byte-identical
/// input produce different decoded results, so the codec id participates in
/// both equality and the hash — a j2k entry can never serve a ccsds123
/// request (or vice versa) no matter what the content hash says.
struct cache_key {
    std::uint64_t content_hash = 0;  ///< FNV-1a of the codestream bytes
    std::uint8_t codec = 0;          ///< codec wire id (0 = j2k)
    std::int32_t layers = 0;         ///< normalised quality-layer depth (>= 1)
    std::int32_t discard_levels = 0;
    std::int32_t max_passes = 0;
    std::int32_t roi_x = 0, roi_y = 0, roi_w = 0, roi_h = 0;  ///< reserved

    [[nodiscard]] bool operator==(const cache_key&) const = default;
};

struct cache_key_hash {
    [[nodiscard]] std::size_t operator()(const cache_key& k) const noexcept;
};

/// Point-in-time cache counters (all monotonic except the byte/entry gauges).
struct cache_stats {
    std::uint64_t hits = 0;       ///< served from a completed entry
    std::uint64_t misses = 0;     ///< flights led (== decodes actually run)
    std::uint64_t collapses = 0;  ///< requests that waited on a leader instead
    std::uint64_t inserts = 0;
    std::uint64_t evictions = 0;
    std::uint64_t session_resumes = 0;   ///< prefix checkouts that saved tier-1 work
    std::uint64_t session_deposits = 0;
    std::uint64_t bytes = 0;          ///< resident payload bytes (images + sessions)
    std::uint64_t pinned_bytes = 0;   ///< subset of `bytes` exempt from eviction
    std::uint64_t entries = 0;        ///< image entries resident
    std::uint64_t session_entries = 0;

    /// Hit/miss split per codec wire id (sorted by id; only ids that have
    /// seen traffic appear).  Sums to `hits`/`misses`.
    struct codec_split {
        std::uint8_t codec = 0;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
    };
    std::vector<codec_split> by_codec;
};

class decoded_cache {
public:
    using image_ptr = std::shared_ptr<const j2k::image>;

    /// `byte_budget` bounds resident payload bytes (images by exact sample
    /// storage, sessions by decode_session::resident_bytes()).  A single
    /// entry larger than the whole budget is still admitted and evicted the
    /// moment anything else arrives — refusing it would make the hottest
    /// large image permanently uncacheable.
    explicit decoded_cache(std::size_t byte_budget);
    ~decoded_cache();

    decoded_cache(const decoded_cache&) = delete;
    decoded_cache& operator=(const decoded_cache&) = delete;

    // ---- image entries + single-flight -----------------------------------

    /// Outcome of begin_flight when the caller is *not* the leader.
    struct flight_result {
        image_ptr image;            ///< non-null unless the leader failed
        std::exception_ptr error;   ///< the leader's exception, when it failed
        bool collapsed = false;     ///< true: waited behind an in-flight leader
    };

    /// The single-flight entry point.  Returns a value when the request is
    /// served from the cache (hit) or by an in-flight leader (collapsed wait,
    /// possibly with the leader's error); returns nullopt when the caller has
    /// become the leader and MUST follow up with exactly one complete_flight
    /// or abort_flight for this key.
    [[nodiscard]] std::optional<flight_result> begin_flight(const cache_key& k);

    /// Leader success: publish to every waiter and insert the entry (subject
    /// to the byte budget; `pin` exempts it from eviction).
    void complete_flight(const cache_key& k, image_ptr img, bool pin = false);

    /// Leader failure: every waiter receives `err`; nothing is cached, so the
    /// next request for the key retries the decode.
    void abort_flight(const cache_key& k, std::exception_ptr err) noexcept;

    /// Plain lookup without flight membership (stats endpoints, tests).
    /// Touches LRU recency and counts a hit; returns null on miss (which is
    /// NOT counted — only flights count misses, keeping `misses` == decodes).
    [[nodiscard]] image_ptr peek(const cache_key& k);

    /// Insert without a flight (warm-up paths, tests).
    void insert(const cache_key& k, image_ptr img, bool pin = false);

    /// Flip an entry's pin.  Returns false when the key is not resident.
    bool set_pinned(const cache_key& k, bool pinned);

    // ---- resumable session prefixes --------------------------------------

    /// An exclusive lease on a cached session prefix: the codestream bytes
    /// the session references plus the session itself.  While leased, the
    /// entry stays resident (and unevictable) but cannot be leased again —
    /// a concurrent request for the same content decodes cold instead.
    struct session_lease {
        std::vector<std::uint8_t> bytes;  ///< stable storage `session` points into
        j2k::decode_session session;
    };

    /// Check out the session prefix for `content_hash`, verifying the stored
    /// bytes equal `expect` (collision paranoia: never resume a session over
    /// different content).  Returns nullopt when absent, already leased,
    /// mismatched, or deeper than `max_layers` (resuming a deeper prefix
    /// cannot reproduce a shallower reconstruction bit-exactly).
    [[nodiscard]] std::optional<session_lease> checkout_session(
        std::uint64_t content_hash, std::span<const std::uint8_t> expect,
        int max_layers = std::numeric_limits<int>::max());

    /// Deposit (or return) a session prefix.  Keeps the deeper of the
    /// deposited and any resident prefix for the hash.  The session must
    /// reference `bytes`'s heap storage (vector moves keep it stable).
    void deposit_session(std::uint64_t content_hash, std::vector<std::uint8_t> bytes,
                         j2k::decode_session session);

    /// Drop a leased prefix without returning it — the lease holder's
    /// advance threw and the session is poisoned.  No-op for unleased hashes.
    void discard_session(std::uint64_t content_hash) noexcept;

    // ---- introspection ---------------------------------------------------

    [[nodiscard]] cache_stats stats() const;
    [[nodiscard]] std::size_t byte_budget() const noexcept { return budget_; }
    /// Drop every unleased entry (leased sessions are dropped on return).
    void clear();

private:
    struct image_entry;
    struct session_entry;
    struct flight;
    using lru_list = std::list<cache_key>;

    /// Evict unpinned image entries LRU-first until bytes_ <= budget_.
    /// Session prefixes are evicted only after every unpinned image is gone:
    /// a prefix regenerates O(L) tier-1 work, an image only O(synthesis).
    void evict_to_budget_locked();
    void account_insert_locked(std::size_t bytes, bool pinned);
    void account_erase_locked(std::size_t bytes, bool pinned);

    const std::size_t budget_;

    mutable std::mutex m_;
    std::unordered_map<cache_key, image_entry, cache_key_hash> images_;
    std::unordered_map<cache_key, std::shared_ptr<flight>, cache_key_hash> flights_;
    std::unordered_map<std::uint64_t, session_entry> sessions_;
    lru_list lru_;  ///< front = most recent; back = eviction candidate

    std::uint64_t bytes_ = 0;
    std::uint64_t pinned_bytes_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t collapses_ = 0;
    std::uint64_t inserts_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t session_resumes_ = 0;
    std::uint64_t session_deposits_ = 0;
    /// Per-codec hit/miss split, keyed by cache_key::codec.
    struct codec_counters {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
    };
    std::unordered_map<std::uint8_t, codec_counters> by_codec_;
};

/// Exact resident payload bytes of one cached image (sample storage).
[[nodiscard]] std::size_t image_bytes(const j2k::image& img) noexcept;

}  // namespace runtime
