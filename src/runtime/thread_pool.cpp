#include "thread_pool.hpp"

#include <obs/trace.hpp>

#include <chrono>
#include <exception>
#include <stdexcept>
#include <string>

namespace runtime {

namespace {

/// Which pool (and worker slot) the current thread belongs to, so submit()
/// can route spawned subtasks onto the spawning worker's own deque.
thread_local thread_pool* tl_pool = nullptr;
thread_local int tl_worker = -1;

}  // namespace

thread_pool::thread_pool(int workers)
{
    if (workers <= 0)
        workers = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
    deques_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i)
        deques_.push_back(std::make_unique<work_deque<task>>());
    workers_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i)
        workers_.emplace_back([this, i] { worker_loop(i); });
}

thread_pool::~thread_pool()
{
    stop_.store(true, std::memory_order_release);
    {
        std::lock_guard lk{wake_m_};
    }
    wake_cv_.notify_all();
    for (auto& t : workers_) t.join();
}

void thread_pool::submit(task t)
{
    if (tl_pool == this && tl_worker >= 0) {
        // Worker-local: owner push onto the Chase–Lev deque, no lock.
        deques_[static_cast<std::size_t>(tl_worker)]->push(new task{std::move(t)});
    } else {
        std::lock_guard lk{inject_m_};
        injected_.push_back({std::move(t), /*root=*/false});
    }
    pending_.fetch_add(1, std::memory_order_release);
    {
        // Taking the wake mutex (even empty) orders this notify after any
        // worker's predicate check, so the wakeup cannot be lost.
        std::lock_guard lk{wake_m_};
    }
    wake_cv_.notify_one();
}

void thread_pool::submit_root(task t)
{
    // Always the injection queue, even from a worker: anything on a worker's
    // own deque is fair game for a helping loop, and a root task must never
    // start inside one (it may block on another job — see the header).
    {
        std::lock_guard lk{inject_m_};
        injected_.push_back({std::move(t), /*root=*/true});
    }
    pending_.fetch_add(1, std::memory_order_release);
    {
        std::lock_guard lk{wake_m_};
    }
    wake_cv_.notify_one();
}

bool thread_pool::pop_or_steal(int self, task& out, bool allow_root)
{
    // Own deque first, from the bottom: the most recently spawned subtask has
    // the hottest working set.
    if (self >= 0) {
        if (task* p = deques_[static_cast<std::size_t>(self)]->pop()) {
            out = std::move(*p);
            delete p;
            pending_.fetch_sub(1, std::memory_order_relaxed);
            return true;
        }
    }
    // Then the injection queue: the oldest externally submitted job.  Helpers
    // (allow_root == false) take the oldest *non-root* entry and leave root
    // jobs for a worker's top-level loop.
    {
        std::lock_guard lk{inject_m_};
        if (allow_root) {
            if (!injected_.empty()) {
                out = std::move(injected_.front().fn);
                injected_.pop_front();
                pending_.fetch_sub(1, std::memory_order_relaxed);
                return true;
            }
        } else {
            for (auto it = injected_.begin(); it != injected_.end(); ++it) {
                if (it->root) continue;
                out = std::move(it->fn);
                injected_.erase(it);
                pending_.fetch_sub(1, std::memory_order_relaxed);
                return true;
            }
        }
    }
    // Steal from the top of a victim, scanning from a rotating start so
    // thieves spread over victims instead of all hammering worker 0.
    const std::size_t n = deques_.size();
    const std::size_t start = steal_seed_.fetch_add(1, std::memory_order_relaxed);
    for (std::size_t k = 0; k < n; ++k) {
        const std::size_t v = (start + k) % n;
        if (static_cast<int>(v) == self) continue;
        if (task* p = deques_[v]->steal()) {
            out = std::move(*p);
            delete p;
            pending_.fetch_sub(1, std::memory_order_relaxed);
            const auto steals = stolen_.fetch_add(1, std::memory_order_relaxed) + 1;
            OBS_TRACE_COUNTER("runtime", "steals", steals);
            return true;
        }
    }
    return false;
}

bool thread_pool::try_run_one()
{
    task t;
    const int self = (tl_pool == this) ? tl_worker : -1;
    if (!pop_or_steal(self, t, /*allow_root=*/false)) return false;
    executed_.fetch_add(1, std::memory_order_relaxed);
    t();
    return true;
}

void thread_pool::worker_loop(int index)
{
    tl_pool = this;
    tl_worker = index;
#if OBS_TRACING_ENABLED
    obs::tracer::instance().set_thread_name("pool-worker-" + std::to_string(index));
#endif
    task t;
    for (;;) {
        if (pop_or_steal(index, t, /*allow_root=*/true)) {
            executed_.fetch_add(1, std::memory_order_relaxed);
            t();
            t = nullptr;
            continue;
        }
        std::unique_lock lk{wake_m_};
        if (stop_.load(std::memory_order_acquire) &&
            pending_.load(std::memory_order_acquire) == 0)
            break;  // drain-on-exit: leave only once nothing is pending
        wake_cv_.wait_for(lk, std::chrono::milliseconds(50), [&] {
            return stop_.load(std::memory_order_acquire) ||
                   pending_.load(std::memory_order_acquire) > 0;
        });
    }
}

void thread_pool::parallel_for(int n, const std::function<void(int)>& fn, int max_concurrency)
{
    if (n <= 0) return;

    struct loop_state {
        std::atomic<int> next{0};
        std::mutex m;
        std::condition_variable cv;
        int tokens_live = 0;     ///< guarded by m
        std::exception_ptr err;  ///< guarded by m
        int n = 0;
        const std::function<void(int)>* fn = nullptr;
    };
    loop_state st;
    st.n = n;
    st.fn = &fn;

    auto body = [&st] {
        for (;;) {
            const int i = st.next.fetch_add(1, std::memory_order_relaxed);
            if (i >= st.n) break;
            try {
                (*st.fn)(i);
            } catch (...) {
                std::lock_guard lk{st.m};
                if (!st.err) st.err = std::current_exception();
            }
        }
    };

    // Tokens are claiming loops, caller included; each pulls indices until
    // the range is exhausted, so uneven iterations self-balance.
    int tokens = std::min(n, size() + 1);
    if (max_concurrency > 0) tokens = std::min(tokens, max_concurrency);
    st.tokens_live = tokens - 1;
    for (int t = 0; t < tokens - 1; ++t) {
        submit([&st, body] {
            body();
            // Decrement + notify both under the mutex: once the caller reads
            // tokens_live == 0 (also under the mutex) `st` may be destroyed,
            // so this token must be past every access to it by then.
            std::lock_guard lk{st.m};
            if (--st.tokens_live == 0) st.cv.notify_all();
        });
    }

    body();  // the caller is a full participant

    // Help until every worker token has exited (tokens reference `st` on our
    // stack).  Helping also makes nested parallel_for deadlock-free.
    for (;;) {
        {
            std::unique_lock lk{st.m};
            if (st.tokens_live == 0) break;
        }
        if (try_run_one()) continue;
        std::unique_lock lk{st.m};
        st.cv.wait_for(lk, std::chrono::milliseconds(1),
                       [&] { return st.tokens_live == 0; });
    }

    if (st.err) std::rethrow_exception(st.err);
}

thread_pool& thread_pool::shared()
{
    static thread_pool pool{0};
    return pool;
}

}  // namespace runtime
