// runtime/ops/ops_server.hpp — the live ops plane: a minimal HTTP/1.1 server
// on its own listener + thread exposing the process's observability surfaces
// while decode traffic runs.
//
//   GET /            tiny auto-refreshing HTML status page
//   GET /healthz     liveness: 200 as long as the loop thread serves
//   GET /readyz      readiness: 200, or 503 once the ready probe says no
//                    (default probe: the decode service is not draining)
//   GET /metrics     Prometheus text exposition (default) or the composite
//                    JSON document with ?format=json
//   GET /trace       complete Chrome trace-event JSON (strict, one document)
//   GET /trace?since_ns=N   incremental tail: events with ts >= N as
//                    concatenable array elements; the X-Trace-Next-Since-Ns
//                    response header carries the cursor for the next call
//
// The server owns an obs::rolling_stats and drains the span tracer through a
// private cursor every aggregate_interval_ms, so /metrics answers with *live*
// per-stage p50/p99 over trailing 1 s / 10 s / 60 s windows.  Draining the
// tracer is non-destructive, so this coexists with /trace tails and with the
// end-of-run write_json_file dump.
//
// It shares the poller backend with the decode front-end (net/poller.hpp)
// but runs a much simpler connection model: one request, one response,
// Connection: close.
#pragma once

#include "../service.hpp"

#include <obs/obs.hpp>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace runtime::ops {

struct ops_config {
    std::string bind_address = "127.0.0.1";  ///< ops plane defaults to loopback
    std::uint16_t port = 0;                  ///< 0 → ephemeral, see port()
    int listen_backlog = 16;
    bool use_poll = false;               ///< force the poll(2) poller backend
    std::size_t max_request_bytes = 8 * 1024;  ///< header cap → 431 beyond
    std::string metric_prefix = "j2k";   ///< prefix for every exposed family
    int aggregate_interval_ms = 250;     ///< span-drain cadence for rolling stats
};

class ops_server {
public:
    /// Readiness probe for /readyz; defaults to "service is not draining".
    using ready_probe = std::function<bool()>;
    /// Extra (name, value) counters merged into /metrics — the process wires
    /// front-end stats (e.g. net::server::stats()) in through this without
    /// the ops plane depending on the front-end type.  A name may carry a
    /// Prometheus label block (`net_frames_in_total{shard="0"}`): the family
    /// is sanitised and a well-formed block is exposed verbatim.
    using counter_fn =
        std::function<std::vector<std::pair<std::string, std::uint64_t>>()>;

    explicit ops_server(decode_service& svc, ops_config cfg = {});
    ~ops_server();  ///< implies stop()

    ops_server(const ops_server&) = delete;
    ops_server& operator=(const ops_server&) = delete;

    /// Both setters must run before start().
    void set_ready_probe(ready_probe p);
    void set_extra_counters(counter_fn f);

    void start();
    void stop();
    [[nodiscard]] std::uint16_t port() const noexcept;

    /// The rolling per-stage aggregator (tests inspect windows directly).
    [[nodiscard]] obs::rolling_stats& stages() noexcept;

    /// Render the exposition documents without going through a socket —
    /// exactly what /metrics serves (drains the tracer first, like a scrape).
    [[nodiscard]] std::string metrics_text();
    [[nodiscard]] std::string metrics_json();

    struct stats_snapshot {
        std::uint64_t requests = 0;        ///< complete requests parsed
        std::uint64_t accepts_failed = 0;  ///< accept() errors incl. fd exhaustion
        std::uint64_t bad_requests = 0;    ///< 400/431 responses
        std::uint64_t not_found = 0;       ///< 404 responses
        std::uint64_t scrapes = 0;         ///< /metrics hits
        std::uint64_t trace_requests = 0;  ///< /trace hits
        std::uint64_t spans_consumed = 0;  ///< events fed to rolling stats
    };
    [[nodiscard]] stats_snapshot stats() const noexcept;

private:
    struct impl;
    std::unique_ptr<impl> impl_;
};

}  // namespace runtime::ops
