// runtime/ops/http.hpp — the minimum of HTTP/1.1 the ops plane needs: an
// incremental GET-request parser and a response serialiser.
//
// This is deliberately not a general HTTP implementation.  The ops server
// speaks to curl, Prometheus scrapers, and browsers on a loopback port; every
// request it cares about is a header-only GET, and every response closes the
// connection.  The parser therefore accumulates bytes until the header
// terminator (CRLF CRLF), parses the request line, splits path from query
// string, and stops — bodies, chunked encoding, and keep-alive are out of
// scope by design, and anything malformed maps to a 4xx status the caller
// turns into a response.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace runtime::ops {

/// One parsed request line (headers are skipped — nothing in the ops plane
/// keys off them).
struct http_request {
    std::string method;  ///< "GET", "HEAD", ... (verbatim, case-sensitive)
    std::string path;    ///< decoded-free path component ("/metrics")
    std::string query;   ///< raw query string without the '?' ("since_ns=5")
};

/// Incremental request parser.  Feed it whatever the socket produced — one
/// byte at a time or a whole request — and check state() after each feed.
class http_parser {
public:
    enum class state {
        partial,    ///< header terminator not seen yet; keep feeding
        complete,   ///< request() is valid
        bad,        ///< malformed request line → 400
        too_large,  ///< header block exceeded max_bytes → 431
    };

    explicit http_parser(std::size_t max_bytes = 8 * 1024) : max_bytes_{max_bytes} {}

    /// Consume a chunk.  Returns the (possibly newly advanced) state; once
    /// the parser leaves `partial` further feeds are no-ops.
    state feed(std::string_view chunk);

    [[nodiscard]] state current() const noexcept { return state_; }
    [[nodiscard]] const http_request& request() const noexcept { return req_; }

private:
    std::size_t max_bytes_;
    std::string buf_;
    http_request req_;
    state state_ = state::partial;
};

/// Parse just a request line ("GET /a/b?x=1 HTTP/1.1").  Exposed for tests;
/// http_parser uses it internally.  Returns false on malformation.
[[nodiscard]] bool parse_request_line(std::string_view line, http_request& out);

/// First value of `key` in a query string ("a=1&b=2"), or empty if absent.
/// No percent-decoding — ops query values are plain integers.
[[nodiscard]] std::string_view query_param(std::string_view query, std::string_view key);

/// Serialise a complete response.  Always emits Content-Length and
/// `Connection: close`; extra_headers entries are verbatim "Name: value"
/// lines (no CRLF).
[[nodiscard]] std::string make_response(int status, std::string_view content_type,
                                        std::string_view body,
                                        const std::vector<std::string>& extra_headers = {});

/// Canonical reason phrase for the handful of statuses the ops plane emits.
[[nodiscard]] const char* status_reason(int status) noexcept;

}  // namespace runtime::ops
