#include "http_client.hpp"

#include "../net/poller.hpp"  // throw_errno

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace runtime::ops {

namespace {

/// RAII socket so every throw path closes the fd.
struct fd_guard {
    int fd = -1;
    ~fd_guard()
    {
        if (fd >= 0) ::close(fd);
    }
};

}  // namespace

http_response http_get(const std::string& host, std::uint16_t port,
                       const std::string& target)
{
    fd_guard s;
    s.fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (s.fd < 0) net::throw_errno("socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        throw std::runtime_error{"http_get: numeric IPv4 host expected"};
    if (::connect(s.fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0)
        net::throw_errno("connect");
    const int one = 1;
    ::setsockopt(s.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    const std::string req = "GET " + target +
                            " HTTP/1.1\r\n"
                            "Host: " +
                            host + "\r\nConnection: close\r\n\r\n";
    std::size_t off = 0;
    while (off < req.size()) {
        const ssize_t n =
            ::send(s.fd, req.data() + off, req.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            net::throw_errno("send");
        }
        off += static_cast<std::size_t>(n);
    }

    std::string raw;
    char buf[8192];
    for (;;) {
        const ssize_t n = ::recv(s.fd, buf, sizeof buf, 0);
        if (n < 0) {
            if (errno == EINTR) continue;
            net::throw_errno("recv");
        }
        if (n == 0) break;  // server closed: response complete
        raw.append(buf, static_cast<std::size_t>(n));
    }

    const auto hdr_end = raw.find("\r\n\r\n");
    if (hdr_end == std::string::npos)
        throw std::runtime_error{"http_get: truncated response (no header block)"};
    http_response resp;
    resp.body = raw.substr(hdr_end + 4);

    // Status line: HTTP/1.1 NNN Reason
    const auto line_end = raw.find("\r\n");
    const std::string status_line = raw.substr(0, line_end);
    const auto sp = status_line.find(' ');
    if (sp == std::string::npos || status_line.compare(0, 5, "HTTP/") != 0)
        throw std::runtime_error{"http_get: malformed status line"};
    resp.status = std::atoi(status_line.c_str() + sp + 1);
    if (resp.status < 100 || resp.status > 599)
        throw std::runtime_error{"http_get: malformed status code"};

    // Headers: Name: value, names lowercased.
    std::size_t pos = line_end + 2;
    while (pos < hdr_end) {
        auto eol = raw.find("\r\n", pos);
        if (eol == std::string::npos || eol > hdr_end) eol = hdr_end;
        const std::string line = raw.substr(pos, eol - pos);
        const auto colon = line.find(':');
        if (colon != std::string::npos) {
            std::string name = line.substr(0, colon);
            std::transform(name.begin(), name.end(), name.begin(), [](unsigned char c) {
                return static_cast<char>(std::tolower(c));
            });
            std::size_t v = colon + 1;
            while (v < line.size() && line[v] == ' ') ++v;
            resp.headers[name] = line.substr(v);
        }
        pos = eol + 2;
    }
    return resp;
}

}  // namespace runtime::ops
