// runtime/ops/http_client.hpp — a blocking one-shot HTTP GET, just enough to
// scrape the ops plane from tests and the bench harness without shelling out
// to curl.  Connects, sends the request, reads to EOF (the ops server always
// closes), splits status line / headers / body.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace runtime::ops {

struct http_response {
    int status = 0;
    /// Header names lowercased; last value wins on duplicates.
    std::map<std::string, std::string> headers;
    std::string body;
};

/// GET `target` (path + optional query, e.g. "/metrics?format=json") from
/// host:port.  Throws std::system_error on connect/send/recv failure and
/// std::runtime_error on a malformed response.
[[nodiscard]] http_response http_get(const std::string& host, std::uint16_t port,
                                     const std::string& target);

}  // namespace runtime::ops
