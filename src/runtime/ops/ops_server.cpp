#include "ops_server.hpp"

#include "../net/poller.hpp"
#include "http.hpp"

#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <system_error>
#include <thread>
#include <unordered_map>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace runtime::ops {

namespace {

constexpr std::uint64_t k_listener_id = 0;
constexpr std::uint64_t k_first_conn_id = 1;

/// Trailing windows every rolling-stage family is exposed over.
constexpr int k_windows_s[] = {1, 10, 60};

/// Prometheus label-value escaping: backslash, quote, newline.
std::string label_escape(std::string_view v)
{
    std::string out;
    out.reserve(v.size());
    for (const char c : v) {
        if (c == '\\' || c == '"') {
            out += '\\';
            out += c;
        } else if (c == '\n') {
            out += "\\n";
        } else {
            out += c;
        }
    }
    return out;
}

void log_sockopt_failure(const char* what)
{
    std::fprintf(stderr, "runtime::ops: setsockopt(%s) failed: %s\n", what,
                 std::strerror(errno));
}

/// True when `s` is a well-formed Prometheus label block — `{key="value",...}`
/// with keys matching [a-zA-Z_][a-zA-Z0-9_]* and values free of raw '"', '\'
/// and newlines.  Extras carrying one (e.g. `net_frames_in_total{shard="0"}`)
/// pass it through to exposition verbatim; anything else falls back to
/// whole-name sanitisation.
bool valid_label_block(std::string_view s)
{
    if (s.size() < 2 || s.front() != '{' || s.back() != '}') return false;
    std::size_t i = 1;
    const std::size_t end = s.size() - 1;
    while (i < end) {
        const std::size_t key_start = i;
        if (!(std::isalpha(static_cast<unsigned char>(s[i])) || s[i] == '_'))
            return false;
        while (i < end &&
               (std::isalnum(static_cast<unsigned char>(s[i])) || s[i] == '_'))
            ++i;
        if (i == key_start || i >= end || s[i] != '=') return false;
        if (++i >= end || s[i] != '"') return false;
        ++i;
        while (i < end && s[i] != '"') {
            if (s[i] == '\\' || s[i] == '\n') return false;
            ++i;
        }
        if (i >= end) return false;  // unterminated value
        ++i;                         // past closing quote
        if (i < end) {
            if (s[i] != ',') return false;
            ++i;
            if (i == end) return false;  // trailing comma
        }
    }
    return s.size() > 2;  // reject the empty block
}

bool parse_u64(std::string_view s, std::uint64_t& out)
{
    if (s.empty() || s.size() > 20) return false;
    std::uint64_t v = 0;
    for (const char c : s) {
        if (c < '0' || c > '9') return false;
        const std::uint64_t d = static_cast<std::uint64_t>(c - '0');
        if (v > (~std::uint64_t{0} - d) / 10) return false;  // overflow
        v = v * 10 + d;
    }
    out = v;
    return true;
}

constexpr const char k_index_html[] =
    "<!doctype html>\n"
    "<html><head><title>j2k ops</title>\n"
    "<style>body{font-family:monospace;margin:1.5em;max-width:72em}"
    "pre{background:#f4f4f4;padding:1em;overflow-x:auto}"
    "a{margin-right:.75em}</style></head><body>\n"
    "<h3>JPEG 2000 decode service &mdash; live ops plane</h3>\n"
    "<p><a href=\"/metrics\">/metrics</a>"
    "<a href=\"/metrics?format=json\">/metrics?format=json</a>"
    "<a href=\"/healthz\">/healthz</a>"
    "<a href=\"/readyz\">/readyz</a>"
    "<a href=\"/trace\">/trace</a></p>\n"
    "<pre id=\"m\">loading&hellip;</pre>\n"
    "<script>\n"
    "async function tick(){\n"
    "  try{const r=await fetch('/metrics');\n"
    "      document.getElementById('m').textContent=await r.text();}\n"
    "  catch(e){document.getElementById('m').textContent='scrape failed: '+e;}\n"
    "}\n"
    "tick();setInterval(tick,1000);\n"
    "</script></body></html>\n";

}  // namespace

struct ops_server::impl {
    impl(decode_service& svc, ops_config cfg)
        : cfg_{std::move(cfg)},
          svc_{svc},
          prefix_{obs::prometheus_name(cfg_.metric_prefix)}
    {
    }

    ~impl() { stop(); }

    // ---- lifecycle -------------------------------------------------------

    void start()
    {
        if (running_) return;
        listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listen_fd_ < 0) net::throw_errno("socket");
        const int one = 1;
        if (::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one) < 0)
            log_sockopt_failure("SO_REUSEADDR");
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(cfg_.port);
        if (::inet_pton(AF_INET, cfg_.bind_address.c_str(), &addr.sin_addr) != 1) {
            ::close(listen_fd_);
            listen_fd_ = -1;
            throw std::system_error{EINVAL, std::generic_category(),
                                    "bad bind address (numeric IPv4 expected)"};
        }
        if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
            ::listen(listen_fd_, cfg_.listen_backlog) < 0) {
            const int err = errno;
            ::close(listen_fd_);
            listen_fd_ = -1;
            throw std::system_error{err, std::generic_category(), "bind/listen"};
        }
        net::set_nonblocking(listen_fd_);
        socklen_t alen = sizeof addr;
        if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen) < 0) {
            // Without the bound address, port() would report garbage.
            const int err = errno;
            ::close(listen_fd_);
            listen_fd_ = -1;
            throw std::system_error{err, std::generic_category(), "getsockname"};
        }
        port_ = ntohs(addr.sin_port);

        // Emergency reserve fd, released to shed a pending connection when
        // accept() hits EMFILE/ENFILE (see accept_ready).
        reserve_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);

        poller_ = net::make_poller(cfg_.use_poll);
        poller_->add(listen_fd_, k_listener_id, false);

        stop_requested_.store(false, std::memory_order_relaxed);
        running_ = true;
        loop_thread_ = std::thread{[this] { run_loop(); }};
    }

    void stop()
    {
        if (!running_) return;
        // The loop polls with a bounded timeout (the aggregation cadence), so
        // a flag is enough — no wake pipe needed for a sub-interval exit.
        stop_requested_.store(true, std::memory_order_release);
        loop_thread_.join();
        running_ = false;
    }

    // ---- event loop ------------------------------------------------------

    struct connection {
        int fd = -1;
        std::uint64_t id = 0;
        http_parser parser;
        std::string out;          ///< complete response, possibly partially sent
        std::size_t out_off = 0;
        bool responding = false;  ///< request done; draining the response
        bool want_write = false;

        explicit connection(std::size_t max_bytes) : parser{max_bytes} {}
    };

    void run_loop()
    {
        obs::tracer::instance().set_thread_name("ops-loop");
        std::vector<net::ready_event> events;
        const int interval =
            cfg_.aggregate_interval_ms > 0 ? cfg_.aggregate_interval_ms : 250;
        while (!stop_requested_.load(std::memory_order_acquire)) {
            events.clear();
            poller_->wait(events, interval);
            for (const net::ready_event& ev : events) {
                if (ev.id == k_listener_id) {
                    accept_ready();
                    continue;
                }
                auto it = conns_.find(ev.id);
                if (it == conns_.end()) continue;
                connection& c = *it->second;
                if (ev.hangup && !ev.readable) {
                    close_conn(c);
                    continue;
                }
                if (ev.writable) on_writable(c);
                if (conns_.count(ev.id) && ev.readable) on_readable(c);
            }
            // Aggregation tick: keep the rolling windows warm even with no
            // scraper attached, so the first /metrics after a quiet spell
            // still answers from fresh slots.
            const std::uint64_t now = obs::tracer::instance().now_ns();
            if (now - last_drain_ns_ >= static_cast<std::uint64_t>(interval) * 1'000'000u) {
                last_drain_ns_ = now;
                drain_spans();
            }
        }

        if (listen_fd_ >= 0) {
            poller_->remove(listen_fd_);
            ::close(listen_fd_);
            listen_fd_ = -1;
        }
        for (auto& [id, c] : conns_) {
            poller_->remove(c->fd);
            ::close(c->fd);
        }
        conns_.clear();
        if (reserve_fd_ >= 0) {
            ::close(reserve_fd_);
            reserve_fd_ = -1;
        }
    }

    void accept_ready()
    {
        for (;;) {
            const int fd = ::accept(listen_fd_, nullptr, nullptr);
            if (fd < 0) {
                if (errno == EAGAIN || errno == EWOULDBLOCK) return;
                if (errno == EINTR) continue;
                accepts_failed_.fetch_add(1, std::memory_order_relaxed);
                if (errno == EMFILE || errno == ENFILE) {
                    // Out of fds with a connection still queued: returning
                    // would leave the level-triggered poller re-firing in a
                    // hot loop.  Release the reserve fd, accept + close the
                    // pending connection, re-arm.
                    if (reserve_fd_ >= 0) {
                        ::close(reserve_fd_);
                        reserve_fd_ = -1;
                    }
                    const int shed = ::accept(listen_fd_, nullptr, nullptr);
                    if (shed >= 0) ::close(shed);
                    reserve_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
                    if (shed < 0) {
                        // Could not even shed (system-wide exhaustion):
                        // bounded backoff beats a hot spin.
                        std::this_thread::sleep_for(std::chrono::milliseconds(5));
                        return;
                    }
                    continue;
                }
                // ECONNABORTED and friends: that one connection is gone but
                // the listener is healthy — keep draining the queue.
                continue;
            }
            net::set_nonblocking(fd);
            const int one = 1;
            if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one) < 0)
                log_sockopt_failure("TCP_NODELAY");
            auto c = std::make_unique<connection>(cfg_.max_request_bytes);
            c->fd = fd;
            c->id = next_conn_id_++;
            poller_->add(fd, c->id, false);
            conns_.emplace(c->id, std::move(c));
        }
    }

    void on_readable(connection& c)
    {
        if (c.responding) return;  // one request per connection; drop the rest
        char buf[4096];
        for (;;) {
            const ssize_t n = ::recv(c.fd, buf, sizeof buf, 0);
            if (n < 0) {
                if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
                close_conn(c);
                return;
            }
            if (n == 0) {  // EOF before a complete request
                close_conn(c);
                return;
            }
            const auto st = c.parser.feed({buf, static_cast<std::size_t>(n)});
            if (st == http_parser::state::partial) continue;
            begin_response(c, st);
            return;
        }
    }

    void begin_response(connection& c, http_parser::state st)
    {
        switch (st) {
            case http_parser::state::complete:
                requests_.fetch_add(1, std::memory_order_relaxed);
                c.out = respond(c.parser.request());
                break;
            case http_parser::state::bad:
                bad_requests_.fetch_add(1, std::memory_order_relaxed);
                c.out = make_response(400, "text/plain", "bad request\n");
                break;
            case http_parser::state::too_large:
                bad_requests_.fetch_add(1, std::memory_order_relaxed);
                c.out = make_response(431, "text/plain", "request too large\n");
                break;
            case http_parser::state::partial:
                return;  // unreachable: caller checked
        }
        c.responding = true;
        on_writable(c);
    }

    void on_writable(connection& c)
    {
        if (!c.responding) return;
        while (c.out_off < c.out.size()) {
            const ssize_t n = ::send(c.fd, c.out.data() + c.out_off,
                                     c.out.size() - c.out_off, MSG_NOSIGNAL);
            if (n < 0) {
                if (errno == EAGAIN || errno == EWOULDBLOCK) break;
                if (errno == EINTR) continue;
                close_conn(c);
                return;
            }
            c.out_off += static_cast<std::size_t>(n);
        }
        if (c.out_off == c.out.size()) {
            close_conn(c);  // Connection: close — every response ends the conn
            return;
        }
        if (!c.want_write) {
            c.want_write = true;
            poller_->update(c.fd, c.id, true);
        }
    }

    void close_conn(connection& c)
    {
        poller_->remove(c.fd);
        ::close(c.fd);
        conns_.erase(c.id);  // destroys c — must be the last use
    }

    // ---- request handling ------------------------------------------------

    std::string respond(const http_request& r)
    {
        if (r.method != "GET")
            return make_response(405, "text/plain", "method not allowed\n");
        if (r.path == "/healthz") return make_response(200, "text/plain", "ok\n");
        if (r.path == "/readyz") {
            const bool ready = ready_ ? ready_() : !svc_.draining();
            return ready ? make_response(200, "text/plain", "ready\n")
                         : make_response(503, "text/plain", "draining\n");
        }
        if (r.path == "/metrics") {
            scrapes_.fetch_add(1, std::memory_order_relaxed);
            if (query_param(r.query, "format") == "json")
                return make_response(200, "application/json", render_json());
            return make_response(200, "text/plain; version=0.0.4; charset=utf-8",
                                 render_prometheus());
        }
        if (r.path == "/trace") return respond_trace(r);
        if (r.path == "/") return make_response(200, "text/html; charset=utf-8",
                                                k_index_html);
        not_found_.fetch_add(1, std::memory_order_relaxed);
        return make_response(404, "text/plain", "not found\n");
    }

    std::string respond_trace(const http_request& r)
    {
        trace_requests_.fetch_add(1, std::memory_order_relaxed);
        const std::string_view since = query_param(r.query, "since_ns");
        if (since.empty() && r.query.find("since_ns") == std::string::npos) {
            // Complete document: strict JSON, loadable as-is.
            std::ostringstream os;
            obs::tracer::instance().write_json(os);
            return make_response(200, "application/json", os.str());
        }
        std::uint64_t cursor = 0;
        if (!parse_u64(since, cursor)) {
            bad_requests_.fetch_add(1, std::memory_order_relaxed);
            return make_response(400, "text/plain",
                                 "since_ns must be a decimal integer\n");
        }
        // Tail chunk: array elements only.  The first chunk (cursor 0) gets
        // the opening bracket so a client that just concatenates chunks holds
        // the Chrome JSON Array Format (trailing comma + missing "]" are
        // tolerated by Perfetto / chrome://tracing).
        std::ostringstream os;
        if (cursor == 0) os << "[\n";
        const auto tail = obs::tracer::instance().write_json_tail(os, cursor);
        std::vector<std::string> hdrs;
        hdrs.push_back("X-Trace-Next-Since-Ns: " + std::to_string(tail.next_since_ns));
        hdrs.push_back("X-Trace-Events: " + std::to_string(tail.events));
        return make_response(200, "application/json", os.str(), hdrs);
    }

    // ---- aggregation + exposition ----------------------------------------

    /// Advance the private tracer cursor and feed the rolling aggregator.
    /// Runs on the loop thread each tick and on any thread that renders
    /// /metrics; the mutex makes cursor advancement atomic with consumption
    /// so no batch is ever double-fed.
    void drain_spans()
    {
        std::lock_guard lk{drain_m_};
        const auto batch = obs::tracer::instance().collect_since(cursor_);
        cursor_ = obs::tracer::next_cursor(batch, cursor_);
        if (!batch.empty()) {
            rolling_.consume(batch);
            spans_consumed_.fetch_add(batch.size(), std::memory_order_relaxed);
        }
    }

    std::string render_prometheus()
    {
        drain_spans();
        const metrics_snapshot s = svc_.metrics();
        std::string out;
        out.reserve(8192);
        char b[512];
        const char* P = prefix_.c_str();
        auto emitf = [&](const char* fmt, auto... a) {
            std::snprintf(b, sizeof b, fmt, a...);
            out += b;
        };
        auto u = [](std::uint64_t v) { return static_cast<unsigned long long>(v); };

        // Process metadata.
        emitf("# TYPE %s_build_info gauge\n"
              "%s_build_info{type=\"%s\",compiler=\"%s\"} 1\n",
              P, P, label_escape(s.build).c_str(), label_escape(s.compiler).c_str());
        emitf("%s_uptime_seconds %.3f\n", P, s.uptime_s);
        emitf("%s_pool_threads %d\n", P, s.pool_threads);
        emitf("%s_tracing_armed %d\n", P, s.tracing_armed ? 1 : 0);

        // Admission counters.
        emitf("# TYPE %s_jobs_submitted_total counter\n%s_jobs_submitted_total %llu\n",
              P, P, u(s.jobs_submitted));
        emitf("%s_jobs_completed_total %llu\n", P, u(s.jobs_completed));
        emitf("%s_jobs_failed_total %llu\n", P, u(s.jobs_failed));
        emitf("%s_jobs_rejected_total %llu\n", P, u(s.jobs_rejected));
        emitf("%s_jobs_dropped_total %llu\n", P, u(s.jobs_dropped));
        emitf("%s_jobs_promoted_total %llu\n", P, u(s.jobs_promoted));
        emitf("%s_jobs_batched_total %llu\n", P, u(s.jobs_batched));
        for (std::size_t p = 0; p < priority_count; ++p) {
            const char* pn = priority_name(static_cast<priority>(p));
            emitf("%s_jobs_shed_total{priority=\"%s\",kind=\"rejected\"} %llu\n", P,
                  pn, u(s.shed_by_priority[p].rejected));
            emitf("%s_jobs_shed_total{priority=\"%s\",kind=\"dropped\"} %llu\n", P,
                  pn, u(s.shed_by_priority[p].dropped));
        }
        emitf("%s_queue_depth_high_water %llu\n", P, u(s.queue_depth_high_water));

        // Progressive streaming.
        emitf("%s_jobs_progressive_total %llu\n", P, u(s.jobs_progressive));
        emitf("%s_layers_emitted_total %llu\n", P, u(s.layers_emitted));
        emitf("%s_progressive_cancelled_total %llu\n", P, u(s.progressive_cancelled));
        emitf("%s_t1_segment_bytes_total %llu\n", P, u(s.t1_segment_bytes));
        emitf("%s_progressive_active_high_water %llu\n", P,
              u(s.progressive_active_high_water));

        // Decoded-result cache.
        emitf("# TYPE %s_cache_hits_total counter\n%s_cache_hits_total %llu\n", P, P,
              u(s.cache_hits));
        emitf("%s_cache_misses_total %llu\n", P, u(s.cache_misses));
        emitf("%s_cache_collapses_total %llu\n", P, u(s.cache_collapses));
        emitf("%s_cache_evictions_total %llu\n", P, u(s.cache_evictions));
        emitf("%s_cache_session_resumes_total %llu\n", P, u(s.cache_session_resumes));
        emitf("# TYPE %s_cache_bytes gauge\n%s_cache_bytes %llu\n", P, P,
              u(s.cache_bytes));
        emitf("%s_cache_pinned_bytes %llu\n", P, u(s.cache_pinned_bytes));
        emitf("%s_cache_entries %llu\n", P, u(s.cache_entries));
        emitf("%s_cache_session_entries %llu\n", P, u(s.cache_session_entries));

        // Per-codec split, labelled by registered backend name.  The cache
        // hit/miss breakdown rides along so a dashboard can tell a cold codec
        // from an unused one.
        if (!s.by_codec.empty()) {
            emitf("# TYPE %s_codec_jobs_completed_total counter\n", P);
            for (const auto& c : s.by_codec)
                emitf("%s_codec_jobs_completed_total{codec=\"%s\"} %llu\n", P,
                      label_escape(c.name).c_str(), u(c.completed));
            emitf("# TYPE %s_codec_jobs_failed_total counter\n", P);
            for (const auto& c : s.by_codec)
                emitf("%s_codec_jobs_failed_total{codec=\"%s\"} %llu\n", P,
                      label_escape(c.name).c_str(), u(c.failed));
            emitf("# TYPE %s_codec_jobs_unsupported_total counter\n", P);
            for (const auto& c : s.by_codec)
                emitf("%s_codec_jobs_unsupported_total{codec=\"%s\"} %llu\n", P,
                      label_escape(c.name).c_str(), u(c.unsupported));
            emitf("# TYPE %s_codec_cache_hits_total counter\n", P);
            for (const auto& c : s.by_codec)
                emitf("%s_codec_cache_hits_total{codec=\"%s\"} %llu\n", P,
                      label_escape(c.name).c_str(), u(c.cache_hits));
            emitf("# TYPE %s_codec_cache_misses_total counter\n", P);
            for (const auto& c : s.by_codec)
                emitf("%s_codec_cache_misses_total{codec=\"%s\"} %llu\n", P,
                      label_escape(c.name).c_str(), u(c.cache_misses));
        }

        // Kernel dispatch (an info-style gauge: the selected ISA as a label)
        // and the per-job arena pool.
        emitf("# TYPE %s_kernel_dispatch gauge\n%s_kernel_dispatch{isa=\"%s\"} 1\n",
              P, P, s.kernel_isa);
        emitf("# TYPE %s_mq_fast_path gauge\n%s_mq_fast_path %d\n", P, P,
              s.mq_fast ? 1 : 0);
        emitf("# TYPE %s_arena_leases_total counter\n%s_arena_leases_total %llu\n",
              P, P, u(s.arena_leases));
        emitf("%s_arena_dry_acquires_total %llu\n", P, u(s.arena_dry_acquires));
        emitf("%s_arena_fallback_allocs_total %llu\n", P, u(s.arena_fallback_allocs));
        emitf("# TYPE %s_arena_capacity_bytes gauge\n%s_arena_capacity_bytes %llu\n",
              P, P, u(s.arena_capacity_bytes));
        emitf("%s_arena_high_water_bytes %llu\n", P, u(s.arena_high_water_bytes));

        // Work + cumulative stage wall time.
        emitf("%s_tiles_decoded_total %llu\n", P, u(s.tiles_decoded));
        emitf("%s_tasks_stolen_total %llu\n", P, u(s.tasks_stolen));
        emitf("%s_pool_submissions_total %llu\n", P, u(s.pool_submissions));
        emitf("# TYPE %s_stage_wall_seconds_total counter\n", P);
        emitf("%s_stage_wall_seconds_total{stage=\"entropy\"} %.6f\n", P,
              s.entropy_ms / 1e3);
        emitf("%s_stage_wall_seconds_total{stage=\"iq\"} %.6f\n", P, s.iq_ms / 1e3);
        emitf("%s_stage_wall_seconds_total{stage=\"idwt\"} %.6f\n", P, s.idwt_ms / 1e3);
        emitf("%s_stage_wall_seconds_total{stage=\"finish\"} %.6f\n", P,
              s.finish_ms / 1e3);

        // End-to-end latency, summary-style.
        emitf("# TYPE %s_latency_us summary\n", P);
        emitf("%s_latency_us{quantile=\"0.5\"} %.1f\n", P, s.latency_p50_us);
        emitf("%s_latency_us{quantile=\"0.95\"} %.1f\n", P, s.latency_p95_us);
        emitf("%s_latency_us{quantile=\"0.99\"} %.1f\n", P, s.latency_p99_us);
        emitf("%s_latency_us_sum %.1f\n", P,
              s.latency_mean_us * static_cast<double>(s.latency_count));
        emitf("%s_latency_us_count %llu\n", P, u(s.latency_count));
        emitf("%s_latency_us_max %llu\n", P, u(s.latency_max_us));
        for (std::size_t p = 0; p < priority_count; ++p) {
            const char* pn = priority_name(static_cast<priority>(p));
            emitf("%s_priority_latency_us{priority=\"%s\",quantile=\"0.5\"} %.1f\n",
                  P, pn, s.latency_by_priority[p].p50_us);
            emitf("%s_priority_latency_us{priority=\"%s\",quantile=\"0.99\"} %.1f\n",
                  P, pn, s.latency_by_priority[p].p99_us);
            emitf("%s_priority_latency_us_count{priority=\"%s\"} %llu\n", P, pn,
                  u(s.latency_by_priority[p].count));
        }

        // Rolling per-stage windows (live p50/p99 from drained spans).
        const std::uint64_t now = obs::tracer::instance().now_ns();
        emitf("# TYPE %s_stage_latency_ns gauge\n", P);
        for (const std::string& st : rolling_.stages()) {
            const std::string esc = label_escape(st);
            for (const int w : k_windows_s) {
                const auto ws = rolling_.window(st, w, now);
                emitf("%s_stage_latency_ns{stage=\"%s\",window=\"%ds\","
                      "quantile=\"0.5\"} %.0f\n",
                      P, esc.c_str(), w, ws.p50_ns);
                emitf("%s_stage_latency_ns{stage=\"%s\",window=\"%ds\","
                      "quantile=\"0.99\"} %.0f\n",
                      P, esc.c_str(), w, ws.p99_ns);
                emitf("%s_stage_rate_per_second{stage=\"%s\",window=\"%ds\"} %.3f\n",
                      P, esc.c_str(), w, ws.rate_per_s);
                emitf("%s_stage_window_count{stage=\"%s\",window=\"%ds\"} %llu\n", P,
                      esc.c_str(), w, u(ws.count));
            }
        }
        const auto rt = rolling_.get_totals();
        emitf("%s_spans_recorded_total %llu\n", P, u(rt.spans));
        emitf("%s_spans_unmatched_ends_total %llu\n", P, u(rt.unmatched_ends));
        emitf("%s_spans_open %llu\n", P, u(rt.open_spans));

        // Tracer health.
        const auto ts = obs::tracer::instance().get_stats();
        emitf("%s_trace_threads %llu\n", P, u(ts.threads));
        emitf("%s_trace_events_pushed_total %llu\n", P, u(ts.pushed));
        emitf("%s_trace_events_overwritten_total %llu\n", P, u(ts.overwritten));

        // Front-end extras (names sanitised here, at the exposition boundary).
        // A name may carry a label block — `family{shard="0"}` — in which case
        // the family is sanitised as a metric name and a well-formed block
        // passes through verbatim; malformed blocks degrade to whole-name
        // sanitisation rather than emitting broken exposition.
        if (extra_) {
            for (const auto& [name, v] : extra_()) {
                const std::size_t brace = name.find('{');
                if (brace != std::string::npos &&
                    valid_label_block(std::string_view{name}.substr(brace))) {
                    emitf("%s_%s%s %llu\n", P,
                          obs::prometheus_name(name.substr(0, brace)).c_str(),
                          name.substr(brace).c_str(), u(v));
                } else {
                    emitf("%s_%s %llu\n", P, obs::prometheus_name(name).c_str(),
                          u(v));
                }
            }
        }

        // Ops plane self-observation.
        emitf("%s_ops_requests_total %llu\n", P,
              u(requests_.load(std::memory_order_relaxed)));
        emitf("%s_ops_accepts_failed_total %llu\n", P,
              u(accepts_failed_.load(std::memory_order_relaxed)));
        emitf("%s_ops_bad_requests_total %llu\n", P,
              u(bad_requests_.load(std::memory_order_relaxed)));
        emitf("%s_ops_not_found_total %llu\n", P,
              u(not_found_.load(std::memory_order_relaxed)));
        emitf("%s_ops_scrapes_total %llu\n", P,
              u(scrapes_.load(std::memory_order_relaxed)));
        emitf("%s_ops_trace_requests_total %llu\n", P,
              u(trace_requests_.load(std::memory_order_relaxed)));
        emitf("%s_ops_spans_consumed_total %llu\n", P,
              u(spans_consumed_.load(std::memory_order_relaxed)));
        return out;
    }

    std::string render_json()
    {
        drain_spans();
        std::string out;
        out.reserve(4096);
        char b[512];
        auto emitf = [&](const char* fmt, auto... a) {
            std::snprintf(b, sizeof b, fmt, a...);
            out += b;
        };
        out += "{\"service\":";
        out += svc_.metrics().to_json();
        out += ",\"stages\":{";
        const std::uint64_t now = obs::tracer::instance().now_ns();
        bool first_stage = true;
        for (const std::string& st : rolling_.stages()) {
            if (!first_stage) out += ',';
            first_stage = false;
            out += obs::json_quote(st);
            out += ":{";
            bool first_w = true;
            for (const int w : k_windows_s) {
                const auto ws = rolling_.window(st, w, now);
                if (!first_w) out += ',';
                first_w = false;
                emitf("\"%ds\":{\"count\":%llu,\"rate_per_s\":%.3f,\"mean_ns\":%.0f,"
                      "\"p50_ns\":%.0f,\"p99_ns\":%.0f,\"max_ns\":%llu}",
                      w, static_cast<unsigned long long>(ws.count), ws.rate_per_s,
                      ws.mean_ns, ws.p50_ns, ws.p99_ns,
                      static_cast<unsigned long long>(ws.max_ns));
            }
            out += '}';
        }
        const auto rt = rolling_.get_totals();
        const auto ts = obs::tracer::instance().get_stats();
        emitf("},\"spans\":{\"recorded\":%llu,\"unmatched_ends\":%llu,"
              "\"dropped_stages\":%llu,\"open\":%llu,\"consumed_events\":%llu}",
              static_cast<unsigned long long>(rt.spans),
              static_cast<unsigned long long>(rt.unmatched_ends),
              static_cast<unsigned long long>(rt.dropped_stages),
              static_cast<unsigned long long>(rt.open_spans),
              static_cast<unsigned long long>(
                  spans_consumed_.load(std::memory_order_relaxed)));
        emitf(",\"tracer\":{\"threads\":%llu,\"pushed\":%llu,\"overwritten\":%llu}",
              static_cast<unsigned long long>(ts.threads),
              static_cast<unsigned long long>(ts.pushed),
              static_cast<unsigned long long>(ts.overwritten));
        out += ",\"extra\":{";
        if (extra_) {
            bool first = true;
            for (const auto& [name, v] : extra_()) {
                if (!first) out += ',';
                first = false;
                out += obs::json_quote(name);
                emitf(":%llu", static_cast<unsigned long long>(v));
            }
        }
        emitf("},\"ops\":{\"requests\":%llu,\"bad_requests\":%llu,"
              "\"not_found\":%llu,\"scrapes\":%llu,\"trace_requests\":%llu}}",
              static_cast<unsigned long long>(requests_.load(std::memory_order_relaxed)),
              static_cast<unsigned long long>(
                  bad_requests_.load(std::memory_order_relaxed)),
              static_cast<unsigned long long>(not_found_.load(std::memory_order_relaxed)),
              static_cast<unsigned long long>(scrapes_.load(std::memory_order_relaxed)),
              static_cast<unsigned long long>(
                  trace_requests_.load(std::memory_order_relaxed)));
        return out;
    }

    // ---- state -----------------------------------------------------------

    ops_config cfg_;
    decode_service& svc_;
    const std::string prefix_;
    ready_probe ready_;
    counter_fn extra_;

    obs::rolling_stats rolling_;
    std::mutex drain_m_;
    std::uint64_t cursor_ = 0;  ///< private tracer cursor (guarded by drain_m_)
    std::uint64_t last_drain_ns_ = 0;

    int listen_fd_ = -1;
    int reserve_fd_ = -1;  ///< emergency fd released to shed at EMFILE
    std::uint16_t port_ = 0;
    std::unique_ptr<net::poller> poller_;
    std::unordered_map<std::uint64_t, std::unique_ptr<connection>> conns_;
    std::uint64_t next_conn_id_ = k_first_conn_id;

    std::thread loop_thread_;
    std::atomic<bool> stop_requested_{false};
    bool running_ = false;

    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> accepts_failed_{0};
    std::atomic<std::uint64_t> bad_requests_{0};
    std::atomic<std::uint64_t> not_found_{0};
    std::atomic<std::uint64_t> scrapes_{0};
    std::atomic<std::uint64_t> trace_requests_{0};
    std::atomic<std::uint64_t> spans_consumed_{0};
};

ops_server::ops_server(decode_service& svc, ops_config cfg)
    : impl_{std::make_unique<impl>(svc, std::move(cfg))}
{
}

ops_server::~ops_server() = default;  // impl dtor stops the loop

void ops_server::set_ready_probe(ready_probe p) { impl_->ready_ = std::move(p); }

void ops_server::set_extra_counters(counter_fn f) { impl_->extra_ = std::move(f); }

void ops_server::start() { impl_->start(); }

void ops_server::stop() { impl_->stop(); }

std::uint16_t ops_server::port() const noexcept { return impl_->port_; }

obs::rolling_stats& ops_server::stages() noexcept { return impl_->rolling_; }

std::string ops_server::metrics_text() { return impl_->render_prometheus(); }

std::string ops_server::metrics_json() { return impl_->render_json(); }

ops_server::stats_snapshot ops_server::stats() const noexcept
{
    stats_snapshot s;
    s.requests = impl_->requests_.load(std::memory_order_relaxed);
    s.accepts_failed = impl_->accepts_failed_.load(std::memory_order_relaxed);
    s.bad_requests = impl_->bad_requests_.load(std::memory_order_relaxed);
    s.not_found = impl_->not_found_.load(std::memory_order_relaxed);
    s.scrapes = impl_->scrapes_.load(std::memory_order_relaxed);
    s.trace_requests = impl_->trace_requests_.load(std::memory_order_relaxed);
    s.spans_consumed = impl_->spans_consumed_.load(std::memory_order_relaxed);
    return s;
}

}  // namespace runtime::ops
