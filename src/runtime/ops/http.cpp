#include "http.hpp"

#include <cstdio>

namespace runtime::ops {

http_parser::state http_parser::feed(std::string_view chunk)
{
    if (state_ != state::partial) return state_;
    buf_.append(chunk.data(), chunk.size());
    if (buf_.size() > max_bytes_) {
        state_ = state::too_large;
        return state_;
    }
    const auto end = buf_.find("\r\n\r\n");
    if (end == std::string::npos) return state_;
    const auto line_end = buf_.find("\r\n");  // first line of the header block
    state_ = parse_request_line(std::string_view{buf_}.substr(0, line_end), req_)
                 ? state::complete
                 : state::bad;
    return state_;
}

bool parse_request_line(std::string_view line, http_request& out)
{
    // METHOD SP request-target SP HTTP-version — exactly two spaces.
    const auto sp1 = line.find(' ');
    if (sp1 == std::string_view::npos || sp1 == 0) return false;
    const auto sp2 = line.find(' ', sp1 + 1);
    if (sp2 == std::string_view::npos || sp2 == sp1 + 1) return false;
    if (line.find(' ', sp2 + 1) != std::string_view::npos) return false;
    const std::string_view version = line.substr(sp2 + 1);
    if (version.substr(0, 5) != "HTTP/") return false;
    const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    if (target.empty() || target.front() != '/') return false;
    out.method.assign(line.substr(0, sp1));
    const auto q = target.find('?');
    if (q == std::string_view::npos) {
        out.path.assign(target);
        out.query.clear();
    } else {
        out.path.assign(target.substr(0, q));
        out.query.assign(target.substr(q + 1));
    }
    return true;
}

std::string_view query_param(std::string_view query, std::string_view key)
{
    std::size_t pos = 0;
    while (pos <= query.size()) {
        auto amp = query.find('&', pos);
        if (amp == std::string_view::npos) amp = query.size();
        const std::string_view pair = query.substr(pos, amp - pos);
        const auto eq = pair.find('=');
        const std::string_view k = eq == std::string_view::npos ? pair : pair.substr(0, eq);
        if (k == key)
            return eq == std::string_view::npos ? std::string_view{}
                                                : pair.substr(eq + 1);
        pos = amp + 1;
    }
    return {};
}

const char* status_reason(int status) noexcept
{
    switch (status) {
        case 200: return "OK";
        case 400: return "Bad Request";
        case 404: return "Not Found";
        case 405: return "Method Not Allowed";
        case 431: return "Request Header Fields Too Large";
        case 503: return "Service Unavailable";
        default: return "Unknown";
    }
}

std::string make_response(int status, std::string_view content_type,
                          std::string_view body,
                          const std::vector<std::string>& extra_headers)
{
    char head[256];
    const int n = std::snprintf(head, sizeof head,
                                "HTTP/1.1 %d %s\r\n"
                                "Content-Type: %.*s\r\n"
                                "Content-Length: %zu\r\n"
                                "Connection: close\r\n",
                                status, status_reason(status),
                                static_cast<int>(content_type.size()),
                                content_type.data(), body.size());
    std::string out;
    out.reserve(static_cast<std::size_t>(n) + body.size() + 64);
    out.assign(head, static_cast<std::size_t>(n));
    for (const auto& h : extra_headers) {
        out += h;
        out += "\r\n";
    }
    out += "\r\n";
    out.append(body.data(), body.size());
    return out;
}

}  // namespace runtime::ops
