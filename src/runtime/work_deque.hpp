// runtime/work_deque.hpp — Chase–Lev lock-free work-stealing deque.
//
// The classic single-owner / multi-thief deque (Chase & Lev, SPAA '05) with
// the C11 memory-order recipe of Lê, Pop, Cohen & Zappa Nardelli (PPoPP '13):
//
//   owner:   push() / pop() at the *bottom* — plain loads/stores plus one
//            seq_cst fence in pop(), and a seq_cst CAS only for the
//            last-element race against thieves;
//   thieves: steal() from the *top* — an acquire read of bottom after a
//            seq_cst fence, then a seq_cst CAS on top to claim the element.
//
// Elements are raw pointers: cells are read speculatively (a thief may load a
// cell and then lose the CAS), so the stored value must be trivially
// copyable — the pool stores heap-allocated task objects and frees them after
// execution.  Cell stores are release / cell loads acquire, one notch
// stronger than the paper's relaxed accesses: the fence-based proof still
// holds, and the pairing gives ThreadSanitizer (which does not model
// standalone fences) a visible happens-before edge from the owner's write of
// *p to the thief's read through p.
//
// The ring grows when full; retired rings are kept alive until destruction
// because a straggling thief may still be reading through an old ring
// pointer.  For a fixed-size pool this bounds garbage at O(largest burst).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace runtime {

template <typename T>
class work_deque {
public:
    explicit work_deque(std::size_t capacity = 64)
    {
        std::size_t cap = 1;
        while (cap < capacity) cap <<= 1;
        buf_.store(new ring{cap}, std::memory_order_relaxed);
    }

    ~work_deque()
    {
        // The pool drains every deque before tearing workers down, so any
        // elements still here are leaked deliberately by the caller's choice.
        ring* a = buf_.load(std::memory_order_relaxed);
        delete a;
        for (ring* r : retired_) delete r;
    }

    work_deque(const work_deque&) = delete;
    work_deque& operator=(const work_deque&) = delete;

    /// Owner only: push at the bottom.
    void push(T* x)
    {
        const std::int64_t b = bottom_.load(std::memory_order_relaxed);
        const std::int64_t t = top_.load(std::memory_order_acquire);
        ring* a = buf_.load(std::memory_order_relaxed);
        if (b - t > static_cast<std::int64_t>(a->capacity) - 1) a = grow(a, t, b);
        a->at(b).store(x, std::memory_order_release);
        std::atomic_thread_fence(std::memory_order_release);
        bottom_.store(b + 1, std::memory_order_relaxed);
    }

    /// Owner only: pop at the bottom (LIFO).  nullptr when empty.
    T* pop()
    {
        const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
        ring* a = buf_.load(std::memory_order_relaxed);
        bottom_.store(b, std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        std::int64_t t = top_.load(std::memory_order_relaxed);
        T* x = nullptr;
        if (t <= b) {
            x = a->at(b).load(std::memory_order_relaxed);
            if (t == b) {
                // Last element: race the thieves for it via top.
                if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                                  std::memory_order_relaxed))
                    x = nullptr;  // a thief won
                bottom_.store(b + 1, std::memory_order_relaxed);
            }
        } else {
            bottom_.store(b + 1, std::memory_order_relaxed);  // was empty
        }
        return x;
    }

    /// Any thread: steal from the top (FIFO — the oldest, typically largest,
    /// piece of work).  nullptr when empty or when the claiming CAS is lost.
    T* steal()
    {
        std::int64_t t = top_.load(std::memory_order_acquire);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        const std::int64_t b = bottom_.load(std::memory_order_acquire);
        if (t >= b) return nullptr;
        ring* a = buf_.load(std::memory_order_acquire);
        T* x = a->at(t).load(std::memory_order_acquire);
        if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                          std::memory_order_relaxed))
            return nullptr;  // lost the race to another thief (or the owner)
        return x;
    }

    /// Racy size estimate (monitoring only).
    [[nodiscard]] std::size_t size_approx() const
    {
        const std::int64_t b = bottom_.load(std::memory_order_relaxed);
        const std::int64_t t = top_.load(std::memory_order_relaxed);
        return b > t ? static_cast<std::size_t>(b - t) : 0;
    }

private:
    struct ring {
        explicit ring(std::size_t cap)
            : capacity{cap}, mask{cap - 1},
              cells{std::make_unique<std::atomic<T*>[]>(cap)}
        {
        }
        std::atomic<T*>& at(std::int64_t i) const
        {
            return cells[static_cast<std::size_t>(i) & mask];
        }
        const std::size_t capacity;
        const std::size_t mask;
        std::unique_ptr<std::atomic<T*>[]> cells;
    };

    /// Owner only (from push): double the ring, copying the live [t, b) span.
    ring* grow(ring* old, std::int64_t t, std::int64_t b)
    {
        ring* bigger = new ring{old->capacity * 2};
        for (std::int64_t i = t; i < b; ++i)
            bigger->at(i).store(old->at(i).load(std::memory_order_relaxed),
                                std::memory_order_relaxed);
        buf_.store(bigger, std::memory_order_release);
        retired_.push_back(old);  // thieves may still hold the old pointer
        return bigger;
    }

    alignas(64) std::atomic<std::int64_t> top_{0};
    alignas(64) std::atomic<std::int64_t> bottom_{0};
    alignas(64) std::atomic<ring*> buf_{nullptr};
    std::vector<ring*> retired_;  ///< owner-only (push/grow); freed in dtor
};

}  // namespace runtime
