#include "ccsds123.hpp"

#include <codec/backend.hpp>

#include <algorithm>
#include <array>
#include <cstring>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace ccsds {

namespace {

// Predictor constants.  Ω is the weight resolution (weights are fixed-point
// with Ω fractional bits); the update step is a sign-LMS ±1 per sample with
// weights clamped to ±2^(Ω+2) so the high-resolution sum stays well inside
// int64.  Γ renormalises at 64 samples, the classic Rice-coder half-life.
constexpr int k_omega = 6;
constexpr std::int64_t k_weight_clamp = std::int64_t{1} << (k_omega + 2);
constexpr std::uint32_t k_gamma_limit = 64;
constexpr int k_unary_limit = 16;  ///< GPO2 escape threshold (zeros before raw)

[[noreturn]] void bad_stream(const char* what)
{
    throw codec::codestream_error{std::string{"ccsds123: "} + what};
}

// ---------------------------------------------------------------------------
// Bit I/O, MSB-first.

class bit_writer {
public:
    explicit bit_writer(std::vector<std::uint8_t>& out) : out_(out) {}

    void put(std::uint32_t bit)
    {
        acc_ = (acc_ << 1) | (bit & 1u);
        if (++nbits_ == 8) {
            out_.push_back(static_cast<std::uint8_t>(acc_));
            acc_ = 0;
            nbits_ = 0;
        }
    }

    void put_bits(std::uint32_t v, int n)
    {
        for (int i = n - 1; i >= 0; --i) put((v >> i) & 1u);
    }

    void put_zeros(int n)
    {
        for (int i = 0; i < n; ++i) put(0);
    }

    /// Pad the final partial byte with zero bits.
    void flush()
    {
        while (nbits_ != 0) put(0);
    }

private:
    std::vector<std::uint8_t>& out_;
    std::uint32_t acc_ = 0;
    int nbits_ = 0;
};

class bit_reader {
public:
    explicit bit_reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

    std::uint32_t get()
    {
        if (nbits_ == 0) {
            if (pos_ >= bytes_.size()) bad_stream("truncated codestream");
            acc_ = bytes_[pos_++];
            nbits_ = 8;
        }
        --nbits_;
        return (acc_ >> nbits_) & 1u;
    }

    std::uint32_t get_bits(int n)
    {
        std::uint32_t v = 0;
        for (int i = 0; i < n; ++i) v = (v << 1) | get();
        return v;
    }

private:
    std::span<const std::uint8_t> bytes_;
    std::size_t pos_ = 0;
    std::uint32_t acc_ = 0;
    int nbits_ = 0;
};

// ---------------------------------------------------------------------------
// Shared predictor state.  Encoder and decoder run the identical recurrence
// over the identical (reconstructed == original) samples, so every quantity
// below evolves in lockstep on both sides.

/// Local sum σ(z,y,x) over already-coded neighbours of the current band,
/// scaled by 4 (range [0, 4*maxval]).  The first sample of a band has no
/// causal neighbour; it is seeded with the band midpoint.
std::int64_t local_sum(const std::int32_t* s, int w, int x, int y,
                       neighbor_mode mode, std::int32_t mid)
{
    if (y == 0) {
        if (x == 0) return std::int64_t{4} * mid;
        return std::int64_t{4} * s[x - 1];  // 4*W
    }
    const std::int32_t n = s[(y - 1) * w + x];
    if (mode == neighbor_mode::narrow) return std::int64_t{4} * n;
    const std::int32_t wv = x > 0 ? s[y * w + x - 1] : n;
    const std::int32_t nw = x > 0 ? s[(y - 1) * w + x - 1] : n;
    const std::int32_t ne = x < w - 1 ? s[(y - 1) * w + x + 1] : n;
    return std::int64_t{wv} + nw + n + ne;
}

/// Per-band adaptive state: prediction weights plus the Rice-coder counters.
struct band_state {
    std::vector<std::int64_t> weights;  ///< fixed-point, Ω fractional bits
    std::uint32_t gamma = 1;            ///< sample counter
    std::uint64_t accum = 4;            ///< residual magnitude accumulator

    explicit band_state(int pred_bands)
    {
        weights.resize(static_cast<std::size_t>(pred_bands));
        // 0.875, then geometrically decaying — the CCSDS-123 default init.
        std::int64_t w = 7ll << (k_omega - 3);
        for (auto& wi : weights) {
            wi = w;
            w >>= 3;
        }
    }

    /// Golomb parameter: largest k with Γ·2^(k+1) ≤ A, i.e. k ≈ log2(mean m).
    [[nodiscard]] int k_for() const
    {
        int k = 0;
        while (k < 16 && (std::uint64_t{gamma} << (k + 1)) <= accum) ++k;
        return k;
    }

    void update_coder(std::uint32_t mapped)
    {
        accum += mapped;
        if (++gamma == k_gamma_limit) {
            gamma >>= 1;
            accum = (accum + 1) >> 1;
        }
    }

    /// Sign-LMS step: nudge each weight by ±1 toward reducing the error,
    /// directionally scaled by the sign of that band's local difference.
    void update_weights(std::int64_t err,
                        const std::int32_t* const* cd_planes, int pb,
                        std::size_t idx)
    {
        if (err == 0) return;
        const std::int64_t step = err > 0 ? 1 : -1;
        for (int i = 0; i < pb; ++i) {
            const std::int64_t d = cd_planes[i][idx];
            std::int64_t wi = weights[static_cast<std::size_t>(i)] +
                              (d >= 0 ? step : -step);
            wi = std::clamp(wi, -k_weight_clamp, k_weight_clamp);
            weights[static_cast<std::size_t>(i)] = wi;
        }
    }
};

/// Predicted sample value from the local sum and the weighted previous-band
/// central local differences.  Pure integer, clamped to the sample range.
std::int32_t predict(std::int64_t sigma, const band_state& st,
                     const std::int32_t* const* cd_planes, int pb,
                     std::size_t idx, std::int32_t maxval)
{
    std::int64_t acc = 0;
    for (int i = 0; i < pb; ++i)
        acc += st.weights[static_cast<std::size_t>(i)] * cd_planes[i][idx];
    // acc has Ω fractional bits; >> on a negative int64 is arithmetic
    // (floor), which both sides compute identically.
    const std::int64_t t = (acc >> k_omega) + sigma;
    return static_cast<std::int32_t>(std::clamp<std::int64_t>(t >> 2, 0, maxval));
}

// ---------------------------------------------------------------------------
// Residual mapping: bijection between e = s - ŝ (range [-ŝ, maxval-ŝ]) and
// m ∈ [0, maxval].  θ = min(ŝ, maxval-ŝ) bounds the two-sided zone; beyond
// it only one sign is possible, so the sign bit is dropped — closed form,
// O(1), no data-dependent loops for hostile inputs to inflate.

std::uint32_t map_residual(std::int32_t s, std::int32_t shat, std::int32_t maxval)
{
    const std::int32_t theta = std::min(shat, maxval - shat);
    const std::int32_t e = s - shat;
    const std::int32_t mag = e < 0 ? -e : e;
    if (mag <= theta)
        return e >= 0 ? static_cast<std::uint32_t>(2 * e)
                      : static_cast<std::uint32_t>(-2 * e - 1);
    return static_cast<std::uint32_t>(theta + mag);
}

std::int32_t unmap_residual(std::uint32_t m, std::int32_t shat, std::int32_t maxval)
{
    const std::int32_t theta = std::min(shat, maxval - shat);
    const auto mi = static_cast<std::int32_t>(m);
    std::int32_t e;
    if (mi <= 2 * theta) {
        e = (mi % 2 == 0) ? mi / 2 : -(mi + 1) / 2;
    } else {
        const std::int32_t mag = mi - theta;
        e = shat <= maxval - shat ? mag : -mag;
    }
    return shat + e;
}

// ---------------------------------------------------------------------------
// Entropy layer: unary-limited Golomb-power-of-2.

void gpo2_encode(bit_writer& bw, std::uint32_t m, int k, int depth)
{
    const std::uint32_t q = m >> k;
    if (q < static_cast<std::uint32_t>(k_unary_limit)) {
        bw.put_zeros(static_cast<int>(q));
        bw.put(1);
        if (k > 0) bw.put_bits(m & ((1u << k) - 1u), k);
    } else {
        bw.put_zeros(k_unary_limit);
        bw.put_bits(m, depth);
    }
}

std::uint32_t gpo2_decode(bit_reader& br, int k, int depth)
{
    int q = 0;
    while (q < k_unary_limit && br.get() == 0) ++q;
    if (q == k_unary_limit) return br.get_bits(depth);
    std::uint32_t m = static_cast<std::uint32_t>(q) << k;
    if (k > 0) m |= br.get_bits(k);
    return m;
}

// ---------------------------------------------------------------------------
// Header.

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v)
{
    out.push_back(static_cast<std::uint8_t>(v >> 24));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v));
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v)
{
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v));
}

std::uint32_t get_u32(const std::uint8_t* p)
{
    return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
           (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

std::uint16_t get_u16(const std::uint8_t* p)
{
    return static_cast<std::uint16_t>((std::uint32_t{p[0]} << 8) | p[1]);
}

/// The rolling window of previous-band central local differences.  Backed by
/// the caller's arena when one is provided (this is the codec's only decode
/// scratch beyond the output image itself).
struct cd_window {
    explicit cd_window(std::pmr::memory_resource* mr)
        : planes(mr != nullptr ? mr : std::pmr::get_default_resource())
    {
    }

    std::pmr::vector<std::pmr::vector<std::int32_t>> planes;
    std::vector<std::int32_t*> order;  ///< order[0] = band z-1, [1] = z-2, ...

    void init(int window, std::size_t plane_samples)
    {
        planes.reserve(static_cast<std::size_t>(window));
        for (int i = 0; i < window; ++i) {
            planes.emplace_back(plane_samples, std::int32_t{0});
        }
        order.resize(static_cast<std::size_t>(window));
        for (int i = 0; i < window; ++i) order[static_cast<std::size_t>(i)] = planes[static_cast<std::size_t>(i)].data();
    }

    /// After finishing a band, its cd plane (order.back(), just filled as the
    /// "current" scratch) becomes band z-1 for the next band.
    void rotate()
    {
        if (order.empty()) return;
        std::int32_t* newest = order.back();
        for (std::size_t i = order.size() - 1; i > 0; --i) order[i] = order[i - 1];
        order[0] = newest;
    }

    /// Plane to record the current band's local differences into.
    [[nodiscard]] std::int32_t* current() { return order.empty() ? nullptr : order.back(); }
};

struct geometry {
    int width, height, bands, depth, pred_bands;
    neighbor_mode mode;
};

/// Core codec loop, shared verbatim between encode and decode: one template
/// over the per-sample action so the prediction recurrence cannot diverge
/// between the two sides.  `sample_op(shat, k, st) -> s` must return the
/// (original == reconstructed) sample and advance the entropy state.
template <typename SampleOp>
void run_prediction(const geometry& g, codec::image& img, cd_window& cdw,
                    SampleOp&& sample_op)
{
    const int w = g.width;
    const int h = g.height;
    const auto maxval =
        static_cast<std::int32_t>((std::uint32_t{1} << g.depth) - 1);
    const std::int32_t mid = (maxval + 1) / 2;
    const int window = std::min(g.pred_bands, g.bands - 1);

    for (int z = 0; z < g.bands; ++z) {
        band_state st{g.pred_bands};
        const int pb = std::min({g.pred_bands, z, window});
        std::int32_t* s = img.comp(z).samples().data();
        std::int32_t* cd_cur = cdw.current();
        const std::int32_t* const* prev = cdw.order.data();
        for (int y = 0; y < h; ++y) {
            for (int x = 0; x < w; ++x) {
                const std::size_t idx = static_cast<std::size_t>(y) *
                                            static_cast<std::size_t>(w) +
                                        static_cast<std::size_t>(x);
                const std::int64_t sigma = local_sum(s, w, x, y, g.mode, mid);
                const std::int32_t shat =
                    pb > 0 ? predict(sigma, st, prev, pb, idx, maxval)
                           : static_cast<std::int32_t>(std::clamp<std::int64_t>(
                                 sigma >> 2, 0, maxval));
                const int k = st.k_for();
                const std::int32_t sv = sample_op(shat, k, st, maxval);
                s[idx] = sv;
                if (cd_cur != nullptr)
                    cd_cur[idx] = static_cast<std::int32_t>(4 * std::int64_t{sv} - sigma);
                if (pb > 0) st.update_weights(sv - shat, prev, pb, idx);
            }
        }
        cdw.rotate();
    }
}

geometry validate_geometry(int w, int h, int bands, int depth, int pred_bands,
                           int mode_raw, bool decoding)
{
    const auto fail = [&](const char* what) {
        if (decoding) bad_stream(what);
        throw std::invalid_argument{std::string{"ccsds123: "} + what};
    };
    if (w < 1 || w > k_max_dimension || h < 1 || h > k_max_dimension)
        fail("dimensions out of range");
    if (bands < 1 || bands > k_max_bands) fail("band count out of range");
    if (depth < 2 || depth > 16) fail("bit depth out of range (2..16)");
    if (pred_bands < 0 || pred_bands > k_max_pred_bands)
        fail("prediction band count out of range");
    if (mode_raw != 0 && mode_raw != 1) fail("unknown neighbor mode");
    const std::uint64_t total = std::uint64_t{static_cast<std::uint32_t>(w)} *
                                static_cast<std::uint32_t>(h) *
                                static_cast<std::uint32_t>(bands);
    if (total > k_max_total_samples) fail("image exceeds total sample cap");
    return geometry{w, h, bands, depth, pred_bands,
                    static_cast<neighbor_mode>(mode_raw)};
}

}  // namespace

stream_info read_header(std::span<const std::uint8_t> cs)
{
    if (cs.size() < k_header_size) bad_stream("stream shorter than header");
    const std::uint8_t* p = cs.data();
    if (get_u32(p) != k_magic) bad_stream("bad magic");
    if (p[4] != k_version) bad_stream("unsupported version");
    const int mode_raw = p[5];
    const int bands = get_u16(p + 6);
    const auto w64 = get_u32(p + 8);
    const auto h64 = get_u32(p + 12);
    if (w64 > static_cast<std::uint32_t>(k_max_dimension) ||
        h64 > static_cast<std::uint32_t>(k_max_dimension))
        bad_stream("dimensions out of range");
    const int depth = p[16];
    const int pred_bands = p[17];
    if (get_u16(p + 18) != 0) bad_stream("reserved header bytes nonzero");
    const geometry g =
        validate_geometry(static_cast<int>(w64), static_cast<int>(h64), bands,
                          depth, pred_bands, mode_raw, /*decoding=*/true);
    return stream_info{g.width, g.height, g.bands, g.depth, g.pred_bands, g.mode};
}

std::vector<std::uint8_t> encode(const codec::image& img, const params& p)
{
    const geometry g = validate_geometry(
        img.width(), img.height(), img.components(), img.bit_depth(),
        p.pred_bands, static_cast<int>(p.mode), /*decoding=*/false);
    const auto maxval =
        static_cast<std::int32_t>((std::uint32_t{1} << g.depth) - 1);

    // The predictor must see the values the decoder will reconstruct, so
    // clamp out-of-range samples up front on a working copy.
    codec::image work{g.width, g.height, g.bands, g.depth};
    for (int c = 0; c < g.bands; ++c) {
        const auto& src = img.comp(c).samples();
        auto& dst = work.comp(c).samples();
        for (std::size_t i = 0; i < src.size(); ++i)
            dst[i] = std::clamp(src[i], std::int32_t{0}, maxval);
    }

    std::vector<std::uint8_t> out;
    out.reserve(k_header_size +
                static_cast<std::size_t>(g.width) * static_cast<std::size_t>(g.height) *
                    static_cast<std::size_t>(g.bands) / 2);
    put_u32(out, k_magic);
    out.push_back(k_version);
    out.push_back(static_cast<std::uint8_t>(g.mode));
    put_u16(out, static_cast<std::uint16_t>(g.bands));
    put_u32(out, static_cast<std::uint32_t>(g.width));
    put_u32(out, static_cast<std::uint32_t>(g.height));
    out.push_back(static_cast<std::uint8_t>(g.depth));
    out.push_back(static_cast<std::uint8_t>(g.pred_bands));
    put_u16(out, 0);

    bit_writer bw{out};
    cd_window cdw{nullptr};
    const int window = std::min(g.pred_bands, g.bands - 1);
    if (window > 0)
        cdw.init(window + 1, static_cast<std::size_t>(g.width) *
                                 static_cast<std::size_t>(g.height));

    // run_prediction writes samples back into the image it is handed; feed it
    // the clamped copy and have the op return the true (clamped) sample after
    // emitting its mapped residual.
    int z = 0, done_in_band = 0;
    const int per_band = g.width * g.height;
    run_prediction(g, work, cdw,
                   [&](std::int32_t shat, int k, band_state& st,
                       std::int32_t /*maxval*/) -> std::int32_t {
                       const std::int32_t sv =
                           work.comp(z).samples()[static_cast<std::size_t>(done_in_band)];
                       const std::uint32_t m = map_residual(sv, shat, maxval);
                       gpo2_encode(bw, m, k, g.depth);
                       st.update_coder(m);
                       if (++done_in_band == per_band) {
                           done_in_band = 0;
                           ++z;
                       }
                       return sv;
                   });
    bw.flush();
    return out;
}

codec::image decode(std::span<const std::uint8_t> cs, std::pmr::memory_resource* mr)
{
    const stream_info si = read_header(cs);
    const geometry g{si.width, si.height, si.bands, si.bit_depth,
                     si.pred_bands, si.mode};

    codec::image img{g.width, g.height, g.bands, g.depth};
    bit_reader br{cs.subspan(k_header_size)};
    cd_window cdw{mr};
    const int window = std::min(g.pred_bands, g.bands - 1);
    if (window > 0)
        cdw.init(window + 1, static_cast<std::size_t>(g.width) *
                                 static_cast<std::size_t>(g.height));

    run_prediction(g, img, cdw,
                   [&](std::int32_t shat, int k, band_state& st,
                       std::int32_t maxval) -> std::int32_t {
                       const std::uint32_t m = gpo2_decode(br, k, g.depth);
                       if (m > static_cast<std::uint32_t>(maxval))
                           bad_stream("mapped residual exceeds sample range");
                       st.update_coder(m);
                       return unmap_residual(m, shat, maxval);
                   });
    return img;
}

namespace {

class ccsds_backend final : public codec::backend {
public:
    [[nodiscard]] std::string_view name() const noexcept override
    {
        return "ccsds123";
    }
    [[nodiscard]] std::uint8_t wire_id() const noexcept override
    {
        return k_codec_wire_id;
    }

    [[nodiscard]] codec::capabilities caps() const noexcept override
    {
        codec::capabilities c;  // lossless: no reduction/layers/progressive
        c.max_components = k_max_bands;
        return c;
    }

    [[nodiscard]] codec::image decode(std::span<const std::uint8_t> bytes,
                                      const codec::decode_request& req,
                                      std::pmr::memory_resource* mr) const override
    {
        if (req.discard_levels != 0 || req.max_quality_layers != 0 ||
            req.max_passes != 0)
            bad_stream("ccsds123 is lossless: reduction options unsupported");
        return ccsds::decode(bytes, mr);
    }
};

}  // namespace

const codec::backend& ensure_backend_registered()
{
    static const std::shared_ptr<const ccsds_backend> instance = [] {
        auto b = std::make_shared<const ccsds_backend>();
        codec::register_backend(b);
        return b;
    }();
    return *instance;
}

}  // namespace ccsds
