// ccsds/ccsds123.hpp — a CCSDS-123-style adaptive linear-predictor lossless
// codec for 16-bit multi-band (multispectral / hyperspectral) imagery.
//
// The satellite workload counterpart to the JPEG 2000 decoder: where j2k
// spends its work in wavelets and arithmetic coding, CCSDS-123 class codecs
// predict each sample from a causal neighbourhood — spatial neighbours in the
// current band plus the central local differences of up to P previous bands,
// combined through sign-adaptive integer weights — and entropy-code the
// mapped prediction residual with a sample-adaptive Golomb-power-of-2 coder.
// Everything is integer arithmetic over causally decoded samples, so the
// decoder reconstructs the encoder's prediction state exactly and the
// round-trip is bit-exact (lossless) for any input.
//
// This is a simplified but faithful-in-structure relative of the CCSDS 123.0
// Issue 1 predictor (full/narrow local sums, weight-resolution Ω, bounded
// residual mapping, unary-limited GPO2) — not a conformant implementation of
// the blue book.  The container is our own ("C123" magic), mirroring how the
// repo's J2K container simplifies tier-2 (DESIGN.md).
//
// Stream layout (big-endian, 20-byte header + bit-packed payload):
//
//   u32 magic       'C123'
//   u8  version     1
//   u8  mode        0 = full neighbour local sums, 1 = narrow (column only)
//   u16 bands       1..255  (codec::image components)
//   u32 width       1..k_max_dimension
//   u32 height      1..k_max_dimension
//   u8  bit_depth   2..16
//   u8  pred_bands  P, 0..15 previous bands used for prediction
//   u16 reserved    0 (nonzero rejected)
//   ... residual bitstream, band-major, raster scan per band
//
// Decode-side hardening contract (same as j2k): any malformed, truncated, or
// resource-bomb stream throws codec::codestream_error before hostile sizes
// reach an allocator; success is bit-exact or the throw — never a crash.
#pragma once

#include <codec/backend.hpp>
#include <codec/error.hpp>
#include <codec/image.hpp>

#include <cstdint>
#include <memory_resource>
#include <span>
#include <vector>

namespace ccsds {

/// The J2NE codec byte for CCSDS-123 streams.
inline constexpr std::uint8_t k_codec_wire_id = 1;

inline constexpr std::uint32_t k_magic = 0x43313233u;  // "C123"
inline constexpr std::uint8_t k_version = 1;
inline constexpr std::size_t k_header_size = 20;

// Decode-side resource limits: a structurally valid header can still describe
// absurd allocations.  Rejected before anything is sized from hostile values.
inline constexpr int k_max_dimension = 1 << 20;
inline constexpr std::uint64_t k_max_total_samples = std::uint64_t{1} << 26;
inline constexpr int k_max_bands = 255;       ///< codec::k_max_components
inline constexpr int k_max_pred_bands = 15;

/// Spatial local-sum neighbourhood.
enum class neighbor_mode : std::uint8_t {
    full = 0,    ///< W + NW + N + NE (wide, the default)
    narrow = 1,  ///< column-oriented: previous row only
};

/// Encoder knobs.
struct params {
    int pred_bands = 3;  ///< P: previous bands feeding the prediction (0..15)
    neighbor_mode mode = neighbor_mode::full;
};

/// Parsed header.
struct stream_info {
    int width = 0;
    int height = 0;
    int bands = 0;
    int bit_depth = 0;
    int pred_bands = 0;
    neighbor_mode mode = neighbor_mode::full;
};

/// Parse and validate the 20-byte header.  Throws codec::codestream_error.
[[nodiscard]] stream_info read_header(std::span<const std::uint8_t> cs);

/// Encode `img` (samples clamped to [0, 2^bit_depth - 1]).  Throws
/// std::invalid_argument for unencodable geometry (bit depth < 2, more than
/// k_max_bands components, dimension/sample caps).
[[nodiscard]] std::vector<std::uint8_t> encode(const codec::image& img,
                                               const params& p = {});

/// Decode a codestream.  `mr`, when non-null, backs the prediction scratch
/// (the rolling window of previous-band local differences).  Throws
/// codec::codestream_error on malformed input.
[[nodiscard]] codec::image decode(std::span<const std::uint8_t> cs,
                                  std::pmr::memory_resource* mr = nullptr);

/// Register the CCSDS-123 backend (wire id 1) with the codec registry.
/// Idempotent and thread-safe.
const codec::backend& ensure_backend_registered();

}  // namespace ccsds
