// osss/processor.hpp — software tasks, EET timing blocks, and the VTA
// Software Processor.
//
// On the Application Layer a software task is just a named process whose
// algorithmic sections are annotated with Estimated Execution Times:
//
//     co_await osss::eet(sim::time::ms(180), [&] { tile = decode_tile(...); });
//
// runs the C++ body in zero host-visible simulated time and then advances
// simulated time by the annotation — exactly the OSSS_EET block of the paper.
//
// On the VTA layer tasks are mapped N:1 onto a `processor` (the paper's
// `add_sw_task`).  The processor serialises the EET blocks of all its tasks
// (one hart, non-preemptive between blocks) and scales them by its speed
// factor, which is what makes multi-task-on-one-CPU contention visible.
#pragma once

#include "channel.hpp"
#include "scheduling.hpp"

#include <sim/sim.hpp>

#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace osss {

/// Application-Layer EET block: execute `fn`, then consume `t` of simulated
/// time.  Returns fn's result.
template <typename Fn>
[[nodiscard]] sim::task<std::invoke_result_t<Fn>> eet(sim::time t, Fn fn)
{
    using R = std::invoke_result_t<Fn>;
    if constexpr (std::is_void_v<R>) {
        fn();
        co_await sim::delay(t);
    } else {
        R r = fn();
        co_await sim::delay(t);
        co_return r;
    }
}

/// Pure time annotation (no body).
[[nodiscard]] inline sim::task<void> eet(sim::time t)
{
    co_await sim::delay(t);
}

/// A named software task: one process plus bookkeeping for mapping.
class sw_task {
public:
    using body_fn = std::function<sim::task<void>()>;

    sw_task(std::string name, body_fn body)
        : name_{std::move(name)}, body_{std::move(body)}
    {
    }

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] sim::task<void> run() const { return body_(); }

private:
    std::string name_;
    body_fn body_;
};

/// VTA Software Processor.  Tasks mapped onto it contend for the single
/// execution resource; EET blocks are scaled by 1/speed_factor.
class processor {
public:
    processor(std::string name, sim::time cycle, double speed_factor = 1.0)
        : name_{std::move(name)},
          cycle_{cycle},
          speed_{speed_factor},
          cpu_{name_ + ".cpu", scheduling_policy::fifo}
    {
    }

    processor(const processor&) = delete;
    processor& operator=(const processor&) = delete;

    /// Map a task onto this processor (N:1); mirrors OSSS `add_sw_task`.
    void add_sw_task(const sw_task& t) { tasks_.push_back(&t); }

    /// Attach the processor's instruction/data memory traffic to a bus: while
    /// executing, a `fraction` of each `slice` of CPU time is spent as bus
    /// transactions (cache refills / OPB instruction fetches).  This is what
    /// makes several processors on one shared bus slow each other — and
    /// stretch every other master's transfers — in the VTA models.
    void attach_bus(rmi_channel& bus, int initiator, double fraction = 0.1,
                    sim::time slice = sim::time::us(100))
    {
        bus_ = &bus;
        bus_initiator_ = initiator;
        mem_fraction_ = fraction;
        mem_slice_ = slice;
    }

    /// Spawn every mapped task on kernel `k`.
    void start(sim::kernel& k)
    {
        for (const sw_task* t : tasks_)
            k.spawn(run_task(*t), name_ + "." + t->name());
    }

    /// Timed execution block on this processor: acquires the CPU, runs `fn`,
    /// consumes `t` (scaled) of simulated time, releases.
    template <typename Fn>
    [[nodiscard]] sim::task<std::invoke_result_t<Fn>> execute(sim::time t, Fn fn)
    {
        using R = std::invoke_result_t<Fn>;
        co_await cpu_.acquire(0);
        const sim::time scaled = scale(t);
        if constexpr (std::is_void_v<R>) {
            fn();
            co_await consume(scaled);
            cpu_.release();
        } else {
            R r = fn();
            co_await consume(scaled);
            cpu_.release();
            co_return r;
        }
    }

    /// Pure timed block (no body).
    [[nodiscard]] sim::task<void> execute(sim::time t)
    {
        return execute(t, [] {});
    }

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] sim::time cycle() const noexcept { return cycle_; }
    [[nodiscard]] double speed_factor() const noexcept { return speed_; }
    [[nodiscard]] sim::time busy_time() const noexcept { return busy_; }
    [[nodiscard]] std::size_t task_count() const noexcept { return tasks_.size(); }

    [[nodiscard]] sim::time scale(sim::time t) const noexcept
    {
        return sim::time::ps(static_cast<std::int64_t>(
            static_cast<double>(t.to_ps()) / speed_ + 0.5));
    }

private:
    /// Consume `t` of CPU time, interleaving memory traffic on the attached
    /// bus.  With no bus (or under zero contention) exactly `t` elapses.
    [[nodiscard]] sim::task<void> consume(sim::time t)
    {
        if (!bus_ || mem_fraction_ <= 0.0) {
            co_await sim::delay(t);
            busy_ += t;
            co_return;
        }
        // Bytes whose uncontended transfer time equals fraction×slice.
        const sim::time mem_part = sim::time::ps(static_cast<std::int64_t>(
            static_cast<double>(mem_slice_.to_ps()) * mem_fraction_));
        const std::size_t burst_bytes = bytes_for(mem_part);
        sim::time remaining = t;
        while (remaining > sim::time::zero()) {
            const sim::time chunk = std::min(remaining, mem_slice_);
            const sim::time compute = chunk - sim::time::ps(static_cast<std::int64_t>(
                static_cast<double>(chunk.to_ps()) * mem_fraction_));
            co_await sim::delay(compute);
            const std::size_t b = chunk == mem_slice_
                                      ? burst_bytes
                                      : bytes_for(chunk - compute);
            if (b > 0) co_await bus_->transact(bus_initiator_, b);
            busy_ += chunk;
            remaining -= chunk;
        }
    }

    [[nodiscard]] std::size_t bytes_for(sim::time span) const
    {
        // Invert the channel's latency model numerically (channels are
        // near-linear in bytes; 64-byte steps are accurate enough).
        std::size_t bytes = 64;
        while (bus_->uncontended_latency(bytes + 64) <= span) bytes += 64;
        return bus_->uncontended_latency(bytes) <= span ? bytes : 0;
    }

    [[nodiscard]] sim::process run_task(const sw_task& t) { co_await t.run(); }

    std::string name_;
    sim::time cycle_;
    double speed_;
    arbiter cpu_;
    sim::time busy_{};
    std::vector<const sw_task*> tasks_;
    rmi_channel* bus_ = nullptr;
    int bus_initiator_ = 0;
    double mem_fraction_ = 0.0;
    sim::time mem_slice_{};
};

}  // namespace osss
