// osss/ret.hpp — Required Execution Time blocks.
//
// The counterpart of OSSS_EET: where an EET block *consumes* an estimated
// time, an RET block *supervises* one — it wraps a timed activity and checks
// that it completed within a deadline.  The paper's methodology uses RET to
// validate back-annotated models against real-time requirements (e.g. "one
// tile must be decoded within its frame budget").
//
//   co_await osss::ret(sim::time::ms(200), decode_one_tile());     // throws
//   co_await osss::ret(sim::time::ms(200), decode_one_tile(), &mon); // records
#pragma once

#include <sim/sim.hpp>

#include <stdexcept>
#include <string>
#include <utility>

namespace osss {

/// Thrown when a supervised block misses its deadline and no monitor was
/// attached.
class ret_violation : public std::runtime_error {
public:
    ret_violation(sim::time deadline, sim::time actual)
        : std::runtime_error{"RET violated: required " + deadline.str() + ", took " +
                             actual.str()},
          deadline_{deadline},
          actual_{actual}
    {
    }
    [[nodiscard]] sim::time deadline() const noexcept { return deadline_; }
    [[nodiscard]] sim::time actual() const noexcept { return actual_; }

private:
    sim::time deadline_;
    sim::time actual_;
};

/// Collects deadline-check outcomes instead of throwing.
class ret_monitor {
public:
    void record(sim::time deadline, sim::time actual)
    {
        ++checks_;
        if (actual > deadline) {
            ++violations_;
            worst_overrun_ = std::max(worst_overrun_, actual - deadline);
        }
        worst_actual_ = std::max(worst_actual_, actual);
    }

    [[nodiscard]] std::uint64_t checks() const noexcept { return checks_; }
    [[nodiscard]] std::uint64_t violations() const noexcept { return violations_; }
    [[nodiscard]] sim::time worst_overrun() const noexcept { return worst_overrun_; }
    [[nodiscard]] sim::time worst_actual() const noexcept { return worst_actual_; }
    [[nodiscard]] bool all_met() const noexcept { return violations_ == 0; }

private:
    std::uint64_t checks_ = 0;
    std::uint64_t violations_ = 0;
    sim::time worst_overrun_{};
    sim::time worst_actual_{};
};

/// Supervise `body`: await it, then verify it finished within `deadline`.
/// With a monitor the outcome is recorded; without one a miss throws
/// ret_violation.  Returns the body's result.
template <typename T>
[[nodiscard]] sim::task<T> ret(sim::time deadline, sim::task<T> body,
                               ret_monitor* monitor = nullptr)
{
    const sim::time start = sim::kernel::current()->now();
    auto check = [&](sim::time end) {
        const sim::time took = end - start;
        if (monitor)
            monitor->record(deadline, took);
        else if (took > deadline)
            throw ret_violation{deadline, took};
    };
    if constexpr (std::is_void_v<T>) {
        co_await std::move(body);
        check(sim::kernel::current()->now());
    } else {
        T r = co_await std::move(body);
        check(sim::kernel::current()->now());
        co_return r;
    }
}

}  // namespace osss
