// osss/scheduling.hpp — arbitration for shared resources.
//
// Shared Objects and OSSS-Channels both need an access arbiter: concurrent
// clients request exclusive use, one is granted at a time, the rest wait in
// simulated time.  The policy is a first-class parameter (the paper explores
// the "flexible scheduling and arbitration mechanisms" of Shared Objects),
// so the same arbiter serves objects, buses and memories.
#pragma once

#include <sim/sim.hpp>

#include <cstdint>
#include <deque>
#include <memory>
#include <string>

namespace osss {

enum class scheduling_policy {
    fifo,         ///< first-come first-served
    round_robin,  ///< cycle through client ids starting after the last grant
    priority,     ///< highest static priority first, FIFO among equals
};

[[nodiscard]] constexpr const char* policy_name(scheduling_policy p) noexcept
{
    switch (p) {
        case scheduling_policy::fifo: return "fifo";
        case scheduling_policy::round_robin: return "round_robin";
        case scheduling_policy::priority: return "priority";
    }
    return "?";
}

/// Usage statistics exposed by every arbiter (feeds the Table 1 analysis of
/// contention on shared resources).
struct arbiter_stats {
    std::uint64_t grants = 0;
    sim::time total_wait{};  ///< summed request→grant latency
    sim::time busy_time{};   ///< summed grant→release spans

    [[nodiscard]] double avg_wait_ns() const noexcept
    {
        return grants ? total_wait.to_ns() / static_cast<double>(grants) : 0.0;
    }
};

/// Exclusive-access arbiter with pluggable policy.
///
/// `acquire` suspends the calling coroutine until the resource is granted;
/// `release` hands the resource to the next pending request (per policy).
class arbiter {
public:
    arbiter(std::string name, scheduling_policy policy)
        : name_{std::move(name)}, policy_{policy}
    {
    }
    arbiter(const arbiter&) = delete;
    arbiter& operator=(const arbiter&) = delete;

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] scheduling_policy policy() const noexcept { return policy_; }
    [[nodiscard]] const arbiter_stats& stats() const noexcept { return stats_; }
    [[nodiscard]] bool busy() const noexcept { return busy_; }
    [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

    /// Request exclusive access as `client_id` with static `priority`
    /// (higher wins under scheduling_policy::priority).
    [[nodiscard]] sim::task<void> acquire(int client_id, int priority = 0)
    {
        auto* k = sim::kernel::current();
        const sim::time requested = k->now();
        if (!busy_ && queue_.empty()) {
            busy_ = true;
        } else {
            auto req = std::make_shared<request>();
            req->client_id = client_id;
            req->priority = priority;
            req->seq = seq_++;
            queue_.push_back(req);
            co_await req->granted.wait();
        }
        // Granted (either immediately or via release()).
        last_client_ = client_id;
        grant_time_ = k->now();
        ++stats_.grants;
        stats_.total_wait += k->now() - requested;
    }

    /// Release; must be called by the current holder.
    void release()
    {
        auto* k = sim::kernel::current();
        stats_.busy_time += k->now() - grant_time_;
        if (queue_.empty()) {
            busy_ = false;
            return;
        }
        const std::size_t next = pick_next();
        auto req = queue_[next];
        queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(next));
        req->granted.notify();  // ownership transfers; busy_ stays true
    }

private:
    struct request {
        int client_id = 0;
        int priority = 0;
        std::uint64_t seq = 0;
        sim::event granted{"arbiter.grant"};
    };

    [[nodiscard]] std::size_t pick_next() const
    {
        switch (policy_) {
            case scheduling_policy::fifo: {
                std::size_t best = 0;
                for (std::size_t i = 1; i < queue_.size(); ++i)
                    if (queue_[i]->seq < queue_[best]->seq) best = i;
                return best;
            }
            case scheduling_policy::priority: {
                std::size_t best = 0;
                for (std::size_t i = 1; i < queue_.size(); ++i) {
                    if (queue_[i]->priority > queue_[best]->priority ||
                        (queue_[i]->priority == queue_[best]->priority &&
                         queue_[i]->seq < queue_[best]->seq))
                        best = i;
                }
                return best;
            }
            case scheduling_policy::round_robin: {
                // Smallest client id strictly greater than the last grantee;
                // wrap to the overall smallest.  FIFO among equal ids.
                std::size_t best = queue_.size();
                std::size_t wrap = 0;
                for (std::size_t i = 0; i < queue_.size(); ++i) {
                    if (queue_[i]->client_id > last_client_ &&
                        (best == queue_.size() ||
                         queue_[i]->client_id < queue_[best]->client_id ||
                         (queue_[i]->client_id == queue_[best]->client_id &&
                          queue_[i]->seq < queue_[best]->seq)))
                        best = i;
                    if (queue_[i]->client_id < queue_[wrap]->client_id ||
                        (queue_[i]->client_id == queue_[wrap]->client_id &&
                         queue_[i]->seq < queue_[wrap]->seq))
                        wrap = i;
                }
                return best != queue_.size() ? best : wrap;
            }
        }
        return 0;
    }

    std::string name_;
    scheduling_policy policy_;
    bool busy_ = false;
    int last_client_ = -1;
    std::uint64_t seq_ = 0;
    sim::time grant_time_{};
    std::deque<std::shared_ptr<request>> queue_;
    arbiter_stats stats_;
};

}  // namespace osss
