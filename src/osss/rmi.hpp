// osss/rmi.hpp — Remote Method Invocation over OSSS-Channels.
//
// The Object Socket wraps a Shared Object for the VTA layer: every client is
// *bound* through a physical channel, and each method call becomes
//
//   request transfer (serialised args + RMI header)  →  arbitrated execution
//   on the object  →  response transfer (serialised result + RMI header)
//
// Because the socket only charges the channel for the *size* of the
// serialised payloads, the behavioural code (the method bodies) is untouched
// by the choice of medium — the "seamless refinement" property the paper
// claims.  Bindings to different channels can coexist on one socket, which is
// exactly how model 6b/7b mixes a shared bus with point-to-point links.
#pragma once

#include "channel.hpp"
#include "serialization.hpp"
#include "shared_object.hpp"

#include <string>

namespace osss {

/// Fixed protocol overhead of one RMI exchange.
struct rmi_config {
    std::size_t request_header_bytes = 8;   ///< method id + payload length
    std::size_t response_header_bytes = 8;  ///< status + payload length
};

template <typename T>
class object_socket {
public:
    explicit object_socket(shared_object<T>& so, rmi_config cfg = {})
        : so_{so}, cfg_{cfg}
    {
    }

    object_socket(const object_socket&) = delete;
    object_socket& operator=(const object_socket&) = delete;

    /// A client port bound through a channel.
    class binding {
    public:
        binding() = default;
        [[nodiscard]] const std::string& name() const noexcept { return cl_.name(); }
        [[nodiscard]] const client_stats& stats() const noexcept { return cl_.stats(); }

    private:
        friend class object_socket;
        typename shared_object<T>::client cl_;
        rmi_channel* ch_ = nullptr;
        int initiator_ = 0;
    };

    /// Bind a named client through `ch`.  `initiator` identifies the master
    /// on the channel (bus arbitration id); `priority` applies to the shared
    /// object's internal scheduler.
    [[nodiscard]] binding bind(std::string name, rmi_channel& ch, int initiator,
                               int priority = 0)
    {
        binding b;
        b.cl_ = so_.make_client(std::move(name), priority);
        b.ch_ = &ch;
        b.initiator_ = initiator;
        return b;
    }

    /// RMI call with explicit payload sizes (bytes on the wire, excluding the
    /// RMI headers).  `fn` is executed under the object's arbitration; it may
    /// be plain or a coroutine, as with shared_object::call.
    template <typename Fn>
    [[nodiscard]] auto call_sized(binding& b, std::size_t request_bytes,
                                  std::size_t response_bytes, Fn fn)
        -> sim::task<typename detail::task_result<std::invoke_result_t<Fn, T&>>::type>
    {
        using R = typename detail::task_result<std::invoke_result_t<Fn, T&>>::type;
        co_await b.ch_->transact(b.initiator_, request_bytes + cfg_.request_header_bytes);
        if constexpr (std::is_void_v<R>) {
            co_await so_.call(b.cl_, fn);
            co_await b.ch_->transact(b.initiator_, response_bytes + cfg_.response_header_bytes);
        } else {
            R r = co_await so_.call(b.cl_, fn);
            co_await b.ch_->transact(b.initiator_, response_bytes + cfg_.response_header_bytes);
            co_return r;
        }
    }

    /// Guarded RMI call: the request is transferred, then execution waits for
    /// `guard` to hold on the object (as shared_object::call_when), then the
    /// response is transferred.  Used for job-fetch style interfaces where a
    /// hardware block pulls work from the Shared Object.
    template <typename Guard, typename Fn>
    [[nodiscard]] auto call_when_sized(binding& b, std::size_t request_bytes,
                                       std::size_t response_bytes, Guard guard, Fn fn)
        -> sim::task<typename detail::task_result<std::invoke_result_t<Fn, T&>>::type>
    {
        using R = typename detail::task_result<std::invoke_result_t<Fn, T&>>::type;
        co_await b.ch_->transact(b.initiator_, request_bytes + cfg_.request_header_bytes);
        if constexpr (std::is_void_v<R>) {
            co_await so_.call_when(b.cl_, guard, fn);
            co_await b.ch_->transact(b.initiator_, response_bytes + cfg_.response_header_bytes);
        } else {
            R r = co_await so_.call_when(b.cl_, guard, fn);
            co_await b.ch_->transact(b.initiator_, response_bytes + cfg_.response_header_bytes);
            co_return r;
        }
    }

    /// RMI call whose request payload is a serialisable value and whose
    /// response size is measured from the (serialisable) result.
    template <typename Req, typename Fn>
    [[nodiscard]] auto call(binding& b, const Req& request, Fn fn)
        -> sim::task<typename detail::task_result<std::invoke_result_t<Fn, T&>>::type>
    {
        using R = typename detail::task_result<std::invoke_result_t<Fn, T&>>::type;
        const std::size_t req_bytes = serial_size(request);
        co_await b.ch_->transact(b.initiator_, req_bytes + cfg_.request_header_bytes);
        if constexpr (std::is_void_v<R>) {
            co_await so_.call(b.cl_, fn);
            co_await b.ch_->transact(b.initiator_, cfg_.response_header_bytes);
        } else {
            R r = co_await so_.call(b.cl_, fn);
            const std::size_t resp_bytes = serial_size(r);
            co_await b.ch_->transact(b.initiator_, resp_bytes + cfg_.response_header_bytes);
            co_return r;
        }
    }

    [[nodiscard]] shared_object<T>& object() noexcept { return so_; }
    [[nodiscard]] const rmi_config& cfg() const noexcept { return cfg_; }

private:
    shared_object<T>& so_;
    rmi_config cfg_;
};

}  // namespace osss
