// osss/polymorphic.hpp — polymorphic objects over OSSS communication.
//
// A hallmark of OSSS is synthesisable object-oriented *polymorphism*: a port
// can transport any subclass of a declared base, and the receiving side
// dispatches virtually.  Over a serialised channel this needs a type
// registry: each registered subclass gets a stable tag; serialisation writes
// the tag plus the subclass payload, deserialisation reconstructs the right
// dynamic type through a factory.
//
//   osss::poly_registry<shape> reg;
//   reg.register_type<circle>("circle");
//   reg.register_type<rect>("rect");
//   archive a;
//   reg.serialize(a, some_shape);                  // tag + payload
//   std::unique_ptr<shape> s = reg.deserialize(r); // correct dynamic type
//
// Subclasses participate via the usual ADL hooks (serialize/deserialize on
// the concrete type).
#pragma once

#include "serialization.hpp"

#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <typeindex>

namespace osss {

namespace detail {

// Dispatch through ADL without seeing class-scope member names.
template <typename T>
void adl_serialize(archive& a, const T& v)
{
    serialize(a, v);
}
template <typename T>
void adl_deserialize(archive_reader& r, T& v)
{
    deserialize(r, v);
}

}  // namespace detail

template <typename Base>
class poly_registry {
public:
    /// Register `Derived` under a stable wire `tag`.  Derived must be
    /// default-constructible and have serialize/deserialize overloads.
    template <typename Derived>
        requires std::derived_from<Derived, Base> && std::default_initializable<Derived>
    void register_type(std::string tag)
    {
        if (tags_.count(std::type_index{typeid(Derived)}))
            throw std::logic_error{"poly_registry: type registered twice"};
        if (factories_.count(tag))
            throw std::logic_error{"poly_registry: tag registered twice: " + tag};
        tags_[std::type_index{typeid(Derived)}] = tag;
        writers_[std::type_index{typeid(Derived)}] = [](archive& a, const Base& b) {
            detail::adl_serialize(a, static_cast<const Derived&>(b));
        };
        factories_[std::move(tag)] = [](archive_reader& r) -> std::unique_ptr<Base> {
            auto obj = std::make_unique<Derived>();
            detail::adl_deserialize(r, *obj);
            return obj;
        };
    }

    /// Serialise `obj` with its dynamic type tag.
    void serialize(archive& a, const Base& obj) const
    {
        const auto it = tags_.find(std::type_index{typeid(obj)});
        if (it == tags_.end())
            throw std::invalid_argument{"poly_registry: unregistered dynamic type"};
        osss::serialize(a, it->second);
        writers_.at(it->first)(a, obj);
    }

    /// Reconstruct the dynamic type recorded in the stream.
    [[nodiscard]] std::unique_ptr<Base> deserialize(archive_reader& r) const
    {
        std::string tag;
        osss::deserialize(r, tag);
        const auto it = factories_.find(tag);
        if (it == factories_.end())
            throw std::invalid_argument{"poly_registry: unknown tag " + tag};
        return it->second(r);
    }

    /// Wire size of `obj` including its tag.
    [[nodiscard]] std::size_t serial_size(const Base& obj) const
    {
        archive a;
        serialize(a, obj);
        return a.size();
    }

    [[nodiscard]] std::size_t registered_types() const noexcept { return factories_.size(); }

private:
    std::map<std::type_index, std::string> tags_;
    std::map<std::type_index, std::function<void(archive&, const Base&)>> writers_;
    std::map<std::string, std::function<std::unique_ptr<Base>(archive_reader&)>> factories_;
};

}  // namespace osss
