// osss/memory.hpp — explicit memory models for the VTA layer.
//
// On the Application Layer large data members live in `osss_array`, a plain
// zero-time container.  The VTA refinement replaces it by
// `xilinx_block_ram`, which charges clocked access time — the paper's
// "explicit memory insertion" step:
//
//     osss_array<short>                      m_array;   // Application Layer
//     xilinx_block_ram<short>                m_array;   // VTA Layer
//
// Both expose the same read/write interface, so the refinement is a type
// swap.  Without it the synthesis result would burn FPGA slices as registers;
// with it, timing shows the real block-RAM access cost.
#pragma once

#include <sim/sim.hpp>

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace osss {

struct memory_stats {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    sim::time access_time{};
};

/// Application-Layer array: same task-based interface as the block RAM, but
/// all accesses complete in zero simulated time.
template <typename T>
class osss_array {
public:
    explicit osss_array(std::size_t size, T fill = T{}) : data_(size, fill) {}

    [[nodiscard]] sim::task<T> read(std::size_t addr)
    {
        ++stats_.reads;
        co_return data_.at(addr);
    }
    [[nodiscard]] sim::task<void> write(std::size_t addr, T v)
    {
        ++stats_.writes;
        data_.at(addr) = v;
        co_return;
    }
    [[nodiscard]] sim::task<void> read_block(std::size_t addr, std::span<T> out)
    {
        bounds(addr, out.size());
        std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(addr), out.size(), out.begin());
        stats_.reads += out.size();
        co_return;
    }
    [[nodiscard]] sim::task<void> write_block(std::size_t addr, std::span<const T> in)
    {
        bounds(addr, in.size());
        std::copy(in.begin(), in.end(), data_.begin() + static_cast<std::ptrdiff_t>(addr));
        stats_.writes += in.size();
        co_return;
    }

    [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
    [[nodiscard]] const memory_stats& stats() const noexcept { return stats_; }
    /// Zero-time backdoor for initialisation and checking.
    [[nodiscard]] std::vector<T>& storage() noexcept { return data_; }

private:
    void bounds(std::size_t addr, std::size_t n) const
    {
        if (addr + n > data_.size()) throw std::out_of_range{"osss_array"};
    }
    std::vector<T> data_;
    memory_stats stats_;
};

/// VTA block RAM: every access (or block of accesses) consumes clock cycles.
/// Access exclusivity is provided by the owning Shared Object; the RAM itself
/// only models latency and throughput per port.
template <typename T>
class xilinx_block_ram {
public:
    struct config {
        int ports = 1;             ///< concurrent accesses per cycle (1 or 2)
        int cycles_per_access = 1; ///< synchronous BRAM: 1 cycle per access
    };

    xilinx_block_ram(std::string name, sim::time cycle, std::size_t words,
                     config cfg = {})
        : name_{std::move(name)}, cycle_{cycle}, cfg_{cfg}, data_(words, T{})
    {
        if (cfg.ports < 1 || cfg.ports > 2)
            throw std::invalid_argument{"xilinx_block_ram: 1 or 2 ports"};
    }

    [[nodiscard]] sim::task<T> read(std::size_t addr)
    {
        co_await charge(1);
        ++stats_.reads;
        co_return data_.at(addr);
    }

    [[nodiscard]] sim::task<void> write(std::size_t addr, T v)
    {
        co_await charge(1);
        ++stats_.writes;
        data_.at(addr) = v;
    }

    [[nodiscard]] sim::task<void> read_block(std::size_t addr, std::span<T> out)
    {
        bounds(addr, out.size());
        co_await charge(out.size());
        std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(addr), out.size(), out.begin());
        stats_.reads += out.size();
    }

    [[nodiscard]] sim::task<void> write_block(std::size_t addr, std::span<const T> in)
    {
        bounds(addr, in.size());
        co_await charge(in.size());
        std::copy(in.begin(), in.end(), data_.begin() + static_cast<std::ptrdiff_t>(addr));
        stats_.writes += in.size();
    }

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
    [[nodiscard]] const memory_stats& stats() const noexcept { return stats_; }
    [[nodiscard]] const config& cfg() const noexcept { return cfg_; }
    [[nodiscard]] std::vector<T>& storage() noexcept { return data_; }

private:
    [[nodiscard]] sim::task<void> charge(std::size_t accesses)
    {
        const std::int64_t cycles =
            static_cast<std::int64_t>((accesses + cfg_.ports - 1) / cfg_.ports) *
            cfg_.cycles_per_access;
        const sim::time t = cycle_ * cycles;
        stats_.access_time += t;
        co_await sim::delay(t);
    }
    void bounds(std::size_t addr, std::size_t n) const
    {
        if (addr + n > data_.size()) throw std::out_of_range{name_};
    }

    std::string name_;
    sim::time cycle_;
    config cfg_;
    std::vector<T> data_;
    memory_stats stats_;
};

/// Off-chip DDR behind a multi-channel memory controller: first-word latency
/// plus per-beat streaming, shared among requestors through an arbiter.
class ddr_memory {
public:
    struct config {
        int cas_cycles = 12;       ///< first-access latency
        int bytes_per_beat = 8;    ///< 64-bit DDR interface
        int cycles_per_beat = 1;
        scheduling_policy policy = scheduling_policy::fifo;
    };

    ddr_memory(std::string name, sim::time cycle) : ddr_memory{std::move(name), cycle, config{}} {}
    ddr_memory(std::string name, sim::time cycle, config cfg)
        : name_{std::move(name)},
          cycle_{cycle},
          cfg_{cfg},
          arb_{name_ + ".mch", cfg.policy}
    {
    }

    /// Stream `bytes` to/from DRAM on behalf of `requestor`.
    [[nodiscard]] sim::task<void> burst(int requestor, std::size_t bytes)
    {
        co_await arb_.acquire(requestor);
        const auto beats = static_cast<std::int64_t>(
            (bytes + cfg_.bytes_per_beat - 1) / cfg_.bytes_per_beat);
        const sim::time t = cycle_ * (cfg_.cas_cycles + beats * cfg_.cycles_per_beat);
        stats_.access_time += t;
        stats_.reads += bytes;
        co_await sim::delay(t);
        arb_.release();
    }

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] const memory_stats& stats() const noexcept { return stats_; }

private:
    std::string name_;
    sim::time cycle_;
    config cfg_;
    arbiter arb_;
    memory_stats stats_;
};

}  // namespace osss
