// osss/module.hpp — the OSSS (hardware) Module.
//
// The third structural block of the Application Layer besides Software Tasks
// and Shared Objects: "Modules can contain a fixed number of concurrent
// processes."  A module groups named processes; at the VTA layer its socket
// form binds the global clock and reset, so every contained process observes
// reset and runs on clock boundaries.
#pragma once

#include "scheduling.hpp"

#include <sim/sim.hpp>

#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace osss {

/// Application-Layer hardware module: a named bundle of concurrent processes.
class module {
public:
    using process_fn = std::function<sim::task<void>()>;

    explicit module(std::string name) : name_{std::move(name)} {}
    module(const module&) = delete;
    module& operator=(const module&) = delete;

    /// Declare one concurrent process (fixed at elaboration, like SC_CTHREAD).
    void add_process(std::string pname, process_fn body)
    {
        procs_.push_back({std::move(pname), std::move(body)});
    }

    /// Elaborate: spawn every declared process on `k`.
    void start(sim::kernel& k)
    {
        for (auto& p : procs_)
            k.spawn(run(p.body), name_ + "." + p.name);
    }

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] std::size_t process_count() const noexcept { return procs_.size(); }

private:
    [[nodiscard]] static sim::process run(process_fn& body) { co_await body(); }

    struct proc {
        std::string name;
        process_fn body;
    };
    std::string name_;
    std::vector<proc> procs_;
};

/// VTA Module Socket: the refinement wrapper that connects a module to the
/// global clock and reset ("All modules are replaced by sockets, which
/// enable the connection to the global clock and reset signals").  Processes
/// started through the socket are held in reset until `reset` deasserts and
/// begin on a clock edge.
class module_socket {
public:
    module_socket(module& m, const sim::clock& clk, sim::signal<bool>& reset)
        : m_{m}, clk_{clk}, reset_{reset}
    {
    }

    /// Elaborate with clock/reset discipline.
    void start(sim::kernel& k)
    {
        k.spawn(supervisor(), m_.name() + ".rst_sync");
    }

    [[nodiscard]] const sim::clock& clk() const noexcept { return clk_; }
    [[nodiscard]] bool released() const noexcept { return released_; }

private:
    [[nodiscard]] sim::process supervisor()
    {
        // Hold the module until reset deasserts, then align to a clock edge
        // and elaborate the contained processes.
        while (reset_.read()) co_await reset_.wait_change();
        co_await clk_.rising_edge();
        released_ = true;
        m_.start(*sim::kernel::current());
    }

    module& m_;
    const sim::clock& clk_;
    sim::signal<bool>& reset_;
    bool released_ = false;
};

}  // namespace osss
