// osss/serialization.hpp — data serialisation for OSSS-Channel transfers.
//
// The RMI layer moves method arguments and results across physical channels
// as byte streams cut into bus-word chunks.  `archive` is the byte-level
// codec; `serial_size` reports how many payload bytes a value occupies on
// the wire, which is what the channel timing model charges for.
//
// Built-in support covers arithmetic types, enums, std::string, std::vector
// and std::pair; user types hook in by providing
//     void serialize(osss::archive&, const T&);
//     void deserialize(osss::archive_reader&, T&);
// found via ADL (the decoder library does this for j2k planes/tiles).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace osss {

/// Byte sink for serialisation.
class archive {
public:
    template <typename T>
        requires std::is_arithmetic_v<T> || std::is_enum_v<T>
    void put(const T& v)
    {
        const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
        buf_.insert(buf_.end(), p, p + sizeof(T));
    }

    void put_bytes(std::span<const std::uint8_t> b)
    {
        buf_.insert(buf_.end(), b.begin(), b.end());
    }

    [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
    [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept { return buf_; }
    [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

private:
    std::vector<std::uint8_t> buf_;
};

/// Byte source for deserialisation.
class archive_reader {
public:
    explicit archive_reader(std::span<const std::uint8_t> data) : data_{data} {}

    template <typename T>
        requires std::is_arithmetic_v<T> || std::is_enum_v<T>
    void get(T& v)
    {
        if (pos_ + sizeof(T) > data_.size())
            throw std::out_of_range{"archive_reader: underflow"};
        std::memcpy(&v, data_.data() + pos_, sizeof(T));
        pos_ += sizeof(T);
    }

    [[nodiscard]] std::span<const std::uint8_t> get_bytes(std::size_t n)
    {
        if (pos_ + n > data_.size())
            throw std::out_of_range{"archive_reader: underflow"};
        auto s = data_.subspan(pos_, n);
        pos_ += n;
        return s;
    }

    [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }

private:
    std::span<const std::uint8_t> data_;
    std::size_t pos_ = 0;
};

// -- built-in serializers -----------------------------------------------------

template <typename T>
    requires std::is_arithmetic_v<T> || std::is_enum_v<T>
void serialize(archive& a, const T& v)
{
    a.put(v);
}

template <typename T>
    requires std::is_arithmetic_v<T> || std::is_enum_v<T>
void deserialize(archive_reader& r, T& v)
{
    r.get(v);
}

inline void serialize(archive& a, const std::string& s)
{
    a.put(static_cast<std::uint64_t>(s.size()));
    a.put_bytes({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
}

inline void deserialize(archive_reader& r, std::string& s)
{
    std::uint64_t n = 0;
    r.get(n);
    const auto b = r.get_bytes(n);
    s.assign(reinterpret_cast<const char*>(b.data()), b.size());
}

template <typename T>
void serialize(archive& a, const std::vector<T>& v)
{
    a.put(static_cast<std::uint64_t>(v.size()));
    if constexpr (std::is_arithmetic_v<T>) {
        a.put_bytes({reinterpret_cast<const std::uint8_t*>(v.data()),
                     v.size() * sizeof(T)});
    } else {
        for (const auto& e : v) serialize(a, e);
    }
}

template <typename T>
void deserialize(archive_reader& r, std::vector<T>& v)
{
    std::uint64_t n = 0;
    r.get(n);
    v.resize(n);
    if constexpr (std::is_arithmetic_v<T>) {
        const auto b = r.get_bytes(n * sizeof(T));
        std::memcpy(v.data(), b.data(), b.size());
    } else {
        for (auto& e : v) deserialize(r, e);
    }
}

template <typename A, typename B>
void serialize(archive& a, const std::pair<A, B>& p)
{
    serialize(a, p.first);
    serialize(a, p.second);
}

template <typename A, typename B>
void deserialize(archive_reader& r, std::pair<A, B>& p)
{
    deserialize(r, p.first);
    deserialize(r, p.second);
}

/// Wire size of a value, in bytes (serialises into a scratch archive).
template <typename T>
[[nodiscard]] std::size_t serial_size(const T& v)
{
    archive a;
    serialize(a, v);
    return a.size();
}

/// Round-trip helper used by the RMI layer and by tests.
template <typename T>
[[nodiscard]] T serial_roundtrip(const T& v)
{
    archive a;
    serialize(a, v);
    const auto bytes = a.take();
    archive_reader r{std::span<const std::uint8_t>{bytes}};
    T out{};
    deserialize(r, out);
    return out;
}

}  // namespace osss
