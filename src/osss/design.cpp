#include "design.hpp"

#include <sstream>

namespace osss {

std::string design::report() const
{
    std::ostringstream os;
    os << "design: " << name_ << '\n';
    os << "  components (" << components_.size() << "):\n";
    for (const auto& c : components_) {
        os << "    [" << kind_name(c.kind) << "] " << c.name << " : " << c.type;
        if (!c.mapped_to.empty()) os << "  ->  " << c.mapped_to;
        os << '\n';
    }
    os << "  links (" << links_.size() << "):\n";
    for (const auto& l : links_) {
        os << "    " << l.source << " -> " << l.target;
        if (!l.channel.empty()) os << "  via " << l.channel;
        os << '\n';
    }
    return os.str();
}

std::string design::to_dot() const
{
    std::ostringstream os;
    os << "digraph \"" << name_ << "\" {\n";
    os << "  rankdir=LR;\n  node [fontname=\"Helvetica\"];\n";
    auto shape = [](component_kind k) {
        switch (k) {
            case component_kind::module: return "box";
            case component_kind::sw_task: return "ellipse";
            case component_kind::shared_object: return "hexagon";
            case component_kind::processor: return "box3d";
            case component_kind::channel: return "cds";
            case component_kind::memory: return "cylinder";
        }
        return "plaintext";
    };
    for (const auto& comp : components_) {
        if (comp.kind == component_kind::channel) continue;  // drawn as edges
        os << "  \"" << comp.name << "\" [shape=" << shape(comp.kind) << ", label=\""
           << comp.name << "\\n(" << kind_name(comp.kind) << ")\"];\n";
    }
    for (const auto& l : links_) {
        os << "  \"" << l.source << "\" -> \"" << l.target << "\"";
        if (!l.channel.empty()) os << " [label=\"" << l.channel << "\"]";
        os << ";\n";
    }
    // Task→processor mappings as dashed containment edges.
    for (const auto& comp : components_) {
        if (comp.kind == component_kind::sw_task && !comp.mapped_to.empty())
            os << "  \"" << comp.name << "\" -> \"" << comp.mapped_to
               << "\" [style=dashed, label=\"mapped\"];\n";
    }
    os << "}\n";
    return os.str();
}

}  // namespace osss
