// osss/channel.hpp — OSSS-Channels: the physical communication layer of the
// Virtual Target Architecture.
//
// All channels speak the RMI transport interface: `transact(initiator,
// bytes)` consumes the simulated time a payload of that size needs on the
// physical medium, including arbitration.  The RMI layer on top serialises
// method calls into such payloads, which is what decouples behavioural code
// from the chosen medium — swapping a shared bus for a point-to-point link
// (models 6a→6b / 7a→7b of the paper) is a pure mapping change.
//
// Two media are provided:
//   * `opb_bus`     — an IBM OPB-style shared bus: one arbiter, per-transfer
//                     arbitration + address phase, non-pipelined data beats.
//   * `p2p_channel` — a dedicated point-to-point link: no cross-client
//                     contention, single-cycle beats.
#pragma once

#include "scheduling.hpp"

#include <sim/sim.hpp>

#include <cstdint>
#include <string>

namespace osss {

/// Aggregate traffic counters for a channel.
struct channel_stats {
    std::uint64_t transactions = 0;
    std::uint64_t payload_bytes = 0;
    std::uint64_t data_beats = 0;
    sim::time busy_time{};   ///< medium occupied
    sim::time wait_time{};   ///< arbitration wait, summed over initiators
};

/// RMI transport: anything that can move `bytes` for `initiator` and charge
/// the corresponding simulated time.
class rmi_channel {
public:
    virtual ~rmi_channel() = default;

    /// Move `bytes` of payload on behalf of `initiator` (blocking).
    [[nodiscard]] virtual sim::task<void> transact(int initiator, std::size_t bytes) = 0;

    [[nodiscard]] virtual const std::string& name() const noexcept = 0;
    [[nodiscard]] virtual const channel_stats& stats() const noexcept = 0;

    /// Wall-clock for one payload of `bytes` with zero contention.
    [[nodiscard]] virtual sim::time uncontended_latency(std::size_t bytes) const = 0;
};

/// Shared-bus channel in the style of the IBM On-chip Peripheral Bus.
class opb_bus final : public rmi_channel {
public:
    struct config {
        int width_bits = 32;        ///< data path width
        int arbitration_cycles = 1; ///< request→grant when idle
        int address_cycles = 1;     ///< address phase per transaction
        int cycles_per_beat = 2;    ///< OPB is not pipelined: 2 cycles/beat
        /// RMI serialisation cuts payloads into chunks of this size; the bus
        /// re-arbitrates per chunk, so long transfers interleave with other
        /// masters instead of blocking them (paper: "the serialisation cuts
        /// large user-defined data structures into manageable chunks").
        std::size_t max_burst_bytes = 256;
        scheduling_policy policy = scheduling_policy::priority;
    };

    opb_bus(std::string name, sim::time cycle) : opb_bus{std::move(name), cycle, config{}} {}
    opb_bus(std::string name, sim::time cycle, config cfg)
        : name_{std::move(name)},
          cycle_{cycle},
          cfg_{cfg},
          arb_{name_ + ".arbiter", cfg.policy}
    {
    }

    [[nodiscard]] sim::task<void> transact(int initiator, std::size_t bytes) override
    {
        auto* k = sim::kernel::current();
        std::size_t remaining = bytes;
        do {
            const std::size_t chunk = std::min(remaining, cfg_.max_burst_bytes);
            const sim::time t0 = k->now();
            co_await arb_.acquire(initiator);
            stats_.wait_time += k->now() - t0;
            const sim::time busy = transfer_time(chunk);
            co_await sim::delay(busy);
            stats_.busy_time += busy;
            stats_.data_beats += beats(chunk);
            arb_.release();
            remaining -= chunk;
        } while (remaining > 0);
        ++stats_.transactions;
        stats_.payload_bytes += bytes;
    }

    [[nodiscard]] sim::time uncontended_latency(std::size_t bytes) const override
    {
        sim::time t = cycle_ * cfg_.arbitration_cycles;
        std::size_t remaining = bytes;
        do {
            const std::size_t chunk = std::min(remaining, cfg_.max_burst_bytes);
            t += transfer_time(chunk);
            remaining -= chunk;
        } while (remaining > 0);
        return t;
    }

    [[nodiscard]] const std::string& name() const noexcept override { return name_; }
    [[nodiscard]] const channel_stats& stats() const noexcept override { return stats_; }
    [[nodiscard]] const config& cfg() const noexcept { return cfg_; }
    [[nodiscard]] const arbiter_stats& arbitration() const noexcept { return arb_.stats(); }
    /// Live observability (for tracing/monitor processes).
    [[nodiscard]] bool busy() const noexcept { return arb_.busy(); }
    [[nodiscard]] std::size_t pending_masters() const noexcept { return arb_.pending(); }

private:
    [[nodiscard]] std::uint64_t beats(std::size_t bytes) const noexcept
    {
        const std::size_t bytes_per_beat = static_cast<std::size_t>(cfg_.width_bits) / 8;
        return bytes == 0 ? 1 : (bytes + bytes_per_beat - 1) / bytes_per_beat;
    }
    [[nodiscard]] sim::time transfer_time(std::size_t bytes) const noexcept
    {
        const std::int64_t cycles =
            cfg_.arbitration_cycles + cfg_.address_cycles +
            static_cast<std::int64_t>(beats(bytes)) * cfg_.cycles_per_beat;
        return cycle_ * cycles;
    }

    std::string name_;
    sim::time cycle_;
    config cfg_;
    arbiter arb_;
    channel_stats stats_;
};

/// Dedicated point-to-point link: still serialises its two endpoints (a link
/// carries one transfer at a time) but never contends with other links.
class p2p_channel final : public rmi_channel {
public:
    struct config {
        int width_bits = 32;
        int setup_cycles = 1;     ///< handshake per transaction
        int cycles_per_beat = 1;  ///< streaming, one word per cycle
    };

    p2p_channel(std::string name, sim::time cycle) : p2p_channel{std::move(name), cycle, config{}} {}
    p2p_channel(std::string name, sim::time cycle, config cfg)
        : name_{std::move(name)},
          cycle_{cycle},
          cfg_{cfg},
          arb_{name_ + ".link", scheduling_policy::fifo}
    {
    }

    [[nodiscard]] sim::task<void> transact(int initiator, std::size_t bytes) override
    {
        auto* k = sim::kernel::current();
        const sim::time t0 = k->now();
        co_await arb_.acquire(initiator);
        stats_.wait_time += k->now() - t0;
        const sim::time busy = transfer_time(bytes);
        co_await sim::delay(busy);
        stats_.busy_time += busy;
        ++stats_.transactions;
        stats_.payload_bytes += bytes;
        stats_.data_beats += beats(bytes);
        arb_.release();
    }

    [[nodiscard]] sim::time uncontended_latency(std::size_t bytes) const override
    {
        return transfer_time(bytes);
    }

    [[nodiscard]] const std::string& name() const noexcept override { return name_; }
    [[nodiscard]] const channel_stats& stats() const noexcept override { return stats_; }
    [[nodiscard]] const config& cfg() const noexcept { return cfg_; }

private:
    [[nodiscard]] std::uint64_t beats(std::size_t bytes) const noexcept
    {
        const std::size_t bytes_per_beat = static_cast<std::size_t>(cfg_.width_bits) / 8;
        return bytes == 0 ? 1 : (bytes + bytes_per_beat - 1) / bytes_per_beat;
    }
    [[nodiscard]] sim::time transfer_time(std::size_t bytes) const noexcept
    {
        const std::int64_t cycles =
            cfg_.setup_cycles + static_cast<std::int64_t>(beats(bytes)) * cfg_.cycles_per_beat;
        return cycle_ * cycles;
    }

    std::string name_;
    sim::time cycle_;
    config cfg_;
    arbiter arb_;
    channel_stats stats_;
};

/// Processor-local-bus style channel (the PLB of the paper's platform):
/// wider, pipelined (1 cycle per beat, arbitration overlapped with the data
/// phase of the previous transfer), burst-oriented.  An exploration
/// alternative to the OPB for bandwidth-hungry links.
class plb_bus final : public rmi_channel {
public:
    struct config {
        int width_bits = 64;
        int address_cycles = 1;       ///< address phase, overlapped when busy
        std::size_t max_burst_bytes = 512;
        scheduling_policy policy = scheduling_policy::priority;
    };

    plb_bus(std::string name, sim::time cycle) : plb_bus{std::move(name), cycle, config{}} {}
    plb_bus(std::string name, sim::time cycle, config cfg)
        : name_{std::move(name)},
          cycle_{cycle},
          cfg_{cfg},
          arb_{name_ + ".arbiter", cfg.policy}
    {
    }

    [[nodiscard]] sim::task<void> transact(int initiator, std::size_t bytes) override
    {
        auto* k = sim::kernel::current();
        std::size_t remaining = bytes;
        do {
            const std::size_t chunk = std::min(remaining, cfg_.max_burst_bytes);
            const sim::time t0 = k->now();
            co_await arb_.acquire(initiator);
            const sim::time waited = k->now() - t0;
            stats_.wait_time += waited;
            // Pipelining: the address phase is hidden whenever the requester
            // had to wait (it overlapped the previous data phase).
            const bool overlapped = waited > sim::time::zero();
            const sim::time busy = transfer_time(chunk, overlapped);
            co_await sim::delay(busy);
            stats_.busy_time += busy;
            stats_.data_beats += beats(chunk);
            arb_.release();
            remaining -= chunk;
        } while (remaining > 0);
        ++stats_.transactions;
        stats_.payload_bytes += bytes;
    }

    [[nodiscard]] sim::time uncontended_latency(std::size_t bytes) const override
    {
        sim::time t{};
        std::size_t remaining = bytes;
        do {
            const std::size_t chunk = std::min(remaining, cfg_.max_burst_bytes);
            t += transfer_time(chunk, false);
            remaining -= chunk;
        } while (remaining > 0);
        return t;
    }

    [[nodiscard]] const std::string& name() const noexcept override { return name_; }
    [[nodiscard]] const channel_stats& stats() const noexcept override { return stats_; }
    [[nodiscard]] const config& cfg() const noexcept { return cfg_; }
    [[nodiscard]] bool busy() const noexcept { return arb_.busy(); }

private:
    [[nodiscard]] std::uint64_t beats(std::size_t bytes) const noexcept
    {
        const std::size_t bytes_per_beat = static_cast<std::size_t>(cfg_.width_bits) / 8;
        return bytes == 0 ? 1 : (bytes + bytes_per_beat - 1) / bytes_per_beat;
    }
    [[nodiscard]] sim::time transfer_time(std::size_t bytes, bool overlapped) const noexcept
    {
        const std::int64_t cycles =
            (overlapped ? 0 : cfg_.address_cycles) + static_cast<std::int64_t>(beats(bytes));
        return cycle_ * cycles;
    }

    std::string name_;
    sim::time cycle_;
    config cfg_;
    arbiter arb_;
    channel_stats stats_;
};

}  // namespace osss
