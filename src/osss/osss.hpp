// osss/osss.hpp — umbrella header for the OSSS methodology library.
//
// Application Layer:  shared_object, sw_task, eet, scheduling policies.
// VTA Layer:          processor, object_socket (RMI), opb_bus, p2p_channel,
//                     osss_array / xilinx_block_ram / ddr_memory.
// Structure:          design (inventory for reporting and FOSSY synthesis).
#pragma once

#include "channel.hpp"        // IWYU pragma: export
#include "design.hpp"         // IWYU pragma: export
#include "memory.hpp"         // IWYU pragma: export
#include "module.hpp"         // IWYU pragma: export
#include "processor.hpp"      // IWYU pragma: export
#include "polymorphic.hpp"    // IWYU pragma: export
#include "port.hpp"           // IWYU pragma: export
#include "ret.hpp"            // IWYU pragma: export
#include "rmi.hpp"            // IWYU pragma: export
#include "scheduling.hpp"     // IWYU pragma: export
#include "serialization.hpp"  // IWYU pragma: export
#include "shared_object.hpp"  // IWYU pragma: export
