// osss/shared_object.hpp — the OSSS Shared Object.
//
// A Shared Object wraps a user C++ class behind a guarded, arbitrated,
// method-based interface: the central OSSS concept for communication and
// synchronisation between modules and software tasks.  Calls are
//
//   * directed  — clients hold a `client` handle (the port); the object is
//                 the interface provider,
//   * blocking  — `co_await so.call(...)` returns only after the method has
//                 executed under exclusive access,
//   * guarded   — `call_when` defers execution until a predicate over the
//                 object's state holds (re-evaluated after every release).
//
// Methods may be plain callables (zero simulated time) or coroutines that
// consume time while holding the object (modelling a co-processor, as the
// paper's IQ+IDWT Shared Object does).
#pragma once

#include "scheduling.hpp"

#include <sim/sim.hpp>

#include <concepts>
#include <functional>
#include <string>
#include <type_traits>
#include <utility>

namespace osss {

namespace detail {

template <typename X>
struct is_task : std::false_type {};
template <typename R>
struct is_task<sim::task<R>> : std::true_type {};

template <typename R>
struct task_result {
    using type = R;
};
template <typename R>
struct task_result<sim::task<R>> {
    using type = R;
};

}  // namespace detail

/// Per-client call statistics.
struct client_stats {
    std::uint64_t calls = 0;
    sim::time wait_time{};   ///< arbitration wait, summed
    sim::time held_time{};   ///< time the object was held, summed
};

template <typename T>
class shared_object {
public:
    /// Construct the wrapped object in place.
    template <typename... Args>
    explicit shared_object(std::string name, scheduling_policy policy, Args&&... args)
        : name_{std::move(name)},
          arb_{name_ + ".arbiter", policy},
          state_changed_{name_ + ".state_changed"},
          obj_(std::forward<Args>(args)...)
    {
    }

    shared_object(const shared_object&) = delete;
    shared_object& operator=(const shared_object&) = delete;

    /// A client handle — the Application-Layer "port" bound to this object.
    class client {
    public:
        client() = default;
        [[nodiscard]] const std::string& name() const noexcept { return name_; }
        [[nodiscard]] int id() const noexcept { return id_; }
        [[nodiscard]] int priority() const noexcept { return priority_; }
        [[nodiscard]] const client_stats& stats() const noexcept { return stats_; }

    private:
        friend class shared_object;
        std::string name_;
        int id_ = -1;
        int priority_ = 0;
        client_stats stats_;
    };

    /// Register a client; `priority` matters under scheduling_policy::priority.
    [[nodiscard]] client make_client(std::string name, int priority = 0)
    {
        client c;
        c.name_ = std::move(name);
        c.id_ = next_client_id_++;
        c.priority_ = priority;
        return c;
    }

    /// Blocking method call.  `fn` receives `T&`; it may return a value
    /// (zero-time execution) or a `sim::task<R>` (timed execution while the
    /// object is held).
    template <typename Fn>
    [[nodiscard]] auto call(client& c, Fn fn)
        -> sim::task<typename detail::task_result<std::invoke_result_t<Fn, T&>>::type>
    {
        auto* k = sim::kernel::current();
        const sim::time t0 = k->now();
        co_await arb_.acquire(c.id_, c.priority_);
        const sim::time granted = k->now();
        c.stats_.wait_time += granted - t0;
        ++c.stats_.calls;
        ++total_calls_;

        using direct = std::invoke_result_t<Fn, T&>;
        if constexpr (detail::is_task<direct>::value) {
            using R = typename detail::task_result<direct>::type;
            if constexpr (std::is_void_v<R>) {
                co_await fn(obj_);
                finish_call(c, granted);
            } else {
                R r = co_await fn(obj_);
                finish_call(c, granted);
                co_return r;
            }
        } else if constexpr (std::is_void_v<direct>) {
            fn(obj_);
            finish_call(c, granted);
        } else {
            direct r = fn(obj_);
            finish_call(c, granted);
            co_return r;
        }
    }

    /// Guarded blocking call: waits (releasing the object between attempts)
    /// until `guard(const T&)` holds, then executes `fn` as in call().
    template <typename Guard, typename Fn>
    [[nodiscard]] auto call_when(client& c, Guard guard, Fn fn)
        -> sim::task<typename detail::task_result<std::invoke_result_t<Fn, T&>>::type>
    {
        auto* k = sim::kernel::current();
        const sim::time t0 = k->now();
        for (;;) {
            co_await arb_.acquire(c.id_, c.priority_);
            if (guard(static_cast<const T&>(obj_))) break;
            arb_.release();  // let state-changing calls through, then retry
            co_await state_changed_.wait();
        }
        const sim::time granted = k->now();
        c.stats_.wait_time += granted - t0;
        ++c.stats_.calls;
        ++total_calls_;

        using direct = std::invoke_result_t<Fn, T&>;
        if constexpr (detail::is_task<direct>::value) {
            using R = typename detail::task_result<direct>::type;
            if constexpr (std::is_void_v<R>) {
                co_await fn(obj_);
                finish_call(c, granted);
            } else {
                R r = co_await fn(obj_);
                finish_call(c, granted);
                co_return r;
            }
        } else if constexpr (std::is_void_v<direct>) {
            fn(obj_);
            finish_call(c, granted);
        } else {
            direct r = fn(obj_);
            finish_call(c, granted);
            co_return r;
        }
    }

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] const arbiter_stats& stats() const noexcept { return arb_.stats(); }
    [[nodiscard]] std::uint64_t total_calls() const noexcept { return total_calls_; }

    /// Direct access for tests and for the synthesis front end.  Not legal
    /// from concurrently running processes.
    [[nodiscard]] T& object() noexcept { return obj_; }
    [[nodiscard]] const T& object() const noexcept { return obj_; }

private:
    void finish_call(client& c, sim::time granted)
    {
        auto* k = sim::kernel::current();
        c.stats_.held_time += k->now() - granted;
        arb_.release();
        state_changed_.notify();
    }

    std::string name_;
    arbiter arb_;
    sim::event state_changed_;
    int next_client_id_ = 0;
    std::uint64_t total_calls_ = 0;
    T obj_;
};

}  // namespace osss
