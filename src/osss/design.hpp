// osss/design.hpp — design inventory used for reporting and synthesis.
//
// The OSSS flow needs a structural view of the system: which modules, tasks,
// shared objects, processors, channels and memories exist, and how the
// application layer is mapped onto the VTA.  The FOSSY back end consumes
// this registry to emit the platform files (MHS/MSS) and the per-component
// synthesis jobs.
#pragma once

#include <string>
#include <vector>

namespace osss {

enum class component_kind {
    module,         ///< hardware module (1:1 onto a HW block)
    sw_task,        ///< software task (N:1 onto a processor)
    shared_object,  ///< OSSS Shared Object
    processor,      ///< VTA software processor
    channel,        ///< OSSS channel (bus or point-to-point)
    memory,         ///< explicit memory (block RAM / DDR)
};

[[nodiscard]] constexpr const char* kind_name(component_kind k) noexcept
{
    switch (k) {
        case component_kind::module: return "module";
        case component_kind::sw_task: return "sw_task";
        case component_kind::shared_object: return "shared_object";
        case component_kind::processor: return "processor";
        case component_kind::channel: return "channel";
        case component_kind::memory: return "memory";
    }
    return "?";
}

/// One entry of the design inventory.
struct component_info {
    component_kind kind{};
    std::string name;
    std::string type;       ///< C++ type or IP core name
    std::string mapped_to;  ///< VTA resource this component is mapped onto
};

/// A communication link of the application layer and its VTA mapping.
struct link_info {
    std::string source;   ///< method caller (port side)
    std::string target;   ///< method provider (interface side)
    std::string channel;  ///< VTA channel the link is mapped onto ("" = unmapped)
};

/// The structural model of one design (one per model version under test).
class design {
public:
    explicit design(std::string name) : name_{std::move(name)} {}

    void add(component_kind kind, std::string name, std::string type,
             std::string mapped_to = {})
    {
        components_.push_back({kind, std::move(name), std::move(type), std::move(mapped_to)});
    }

    void add_link(std::string source, std::string target, std::string channel = {})
    {
        links_.push_back({std::move(source), std::move(target), std::move(channel)});
    }

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] const std::vector<component_info>& components() const noexcept
    {
        return components_;
    }
    [[nodiscard]] const std::vector<link_info>& links() const noexcept { return links_; }

    [[nodiscard]] std::vector<component_info> of_kind(component_kind k) const
    {
        std::vector<component_info> out;
        for (const auto& c : components_)
            if (c.kind == k) out.push_back(c);
        return out;
    }

    /// Human-readable inventory (used by examples and the DSE report).
    [[nodiscard]] std::string report() const;

    /// GraphViz dot rendering of the structure: components as nodes (shaped
    /// by kind), communication links as edges labelled with their channel.
    [[nodiscard]] std::string to_dot() const;

private:
    std::string name_;
    std::vector<component_info> components_;
    std::vector<link_info> links_;
};

}  // namespace osss
