// osss/port.hpp — the OSSS service port.
//
// On the Application Layer a port binds directly to a Shared Object; after
// the VTA refinement it binds to an Object Socket through a physical
// channel.  Behavioural code calls through the port either way — the
// "port-to-interface binding" that makes the refinement seamless: mapping a
// link onto a bus or P2P channel never touches the method calls.
#pragma once

#include "rmi.hpp"

namespace osss {

template <typename T>
class service_port {
public:
    service_port() = default;

    /// Application-Layer binding: direct, zero-cost communication.
    [[nodiscard]] static service_port direct(shared_object<T>& so, std::string name,
                                             int priority = 0)
    {
        service_port p;
        p.so_ = &so;
        p.cl_ = so.make_client(std::move(name), priority);
        return p;
    }

    /// VTA binding: through an Object Socket and a physical channel.
    [[nodiscard]] static service_port rmi(object_socket<T>& sock, std::string name,
                                          rmi_channel& ch, int initiator,
                                          int priority = 0)
    {
        service_port p;
        p.sock_ = &sock;
        p.bd_ = sock.bind(std::move(name), ch, initiator, priority);
        return p;
    }

    [[nodiscard]] bool bound() const noexcept { return so_ || sock_; }

    /// Blocking method call.  The byte counts are the serialised payload
    /// sizes; they are ignored (zero-cost) on a direct binding.
    template <typename Fn>
    [[nodiscard]] auto call(std::size_t request_bytes, std::size_t response_bytes, Fn fn)
        -> sim::task<typename detail::task_result<std::invoke_result_t<Fn, T&>>::type>
    {
        using R = typename detail::task_result<std::invoke_result_t<Fn, T&>>::type;
        if (sock_) {
            if constexpr (std::is_void_v<R>) {
                co_await sock_->call_sized(bd_, request_bytes, response_bytes, fn);
            } else {
                co_return co_await sock_->call_sized(bd_, request_bytes, response_bytes, fn);
            }
        } else {
            if constexpr (std::is_void_v<R>) {
                co_await so_->call(cl_, fn);
            } else {
                co_return co_await so_->call(cl_, fn);
            }
        }
    }

    /// Guarded blocking method call (see shared_object::call_when).
    template <typename Guard, typename Fn>
    [[nodiscard]] auto call_when(std::size_t request_bytes, std::size_t response_bytes,
                                 Guard guard, Fn fn)
        -> sim::task<typename detail::task_result<std::invoke_result_t<Fn, T&>>::type>
    {
        using R = typename detail::task_result<std::invoke_result_t<Fn, T&>>::type;
        if (sock_) {
            if constexpr (std::is_void_v<R>) {
                co_await sock_->call_when_sized(bd_, request_bytes, response_bytes, guard, fn);
            } else {
                co_return co_await sock_->call_when_sized(bd_, request_bytes, response_bytes,
                                                          guard, fn);
            }
        } else {
            if constexpr (std::is_void_v<R>) {
                co_await so_->call_when(cl_, guard, fn);
            } else {
                co_return co_await so_->call_when(cl_, guard, fn);
            }
        }
    }

private:
    shared_object<T>* so_ = nullptr;
    typename shared_object<T>::client cl_;
    object_socket<T>* sock_ = nullptr;
    typename object_socket<T>::binding bd_;
};

}  // namespace osss
