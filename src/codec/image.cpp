#include "image.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace codec {

image make_test_image(int width, int height, int components, int bit_depth,
                      std::uint32_t seed)
{
    image img{width, height, components, bit_depth};
    const std::int32_t maxv = (1 << bit_depth) - 1;
    // xorshift32 for deterministic texture
    std::uint32_t st = seed ? seed : 1u;
    auto rnd = [&st]() {
        st ^= st << 13;
        st ^= st >> 17;
        st ^= st << 5;
        return st;
    };
    for (int c = 0; c < components; ++c) {
        plane& p = img.comp(c);
        for (int y = 0; y < height; ++y) {
            for (int x = 0; x < width; ++x) {
                // gradient + sinusoid + block edge + light noise
                double v = 0.5 * maxv * (static_cast<double>(x) / std::max(1, width - 1));
                v += 0.25 * maxv *
                     std::sin(2.0 * 3.14159265358979 * (x + 2 * y + 13 * c) / 23.0);
                if (((x / 16) + (y / 16)) % 2 == 0) v += 0.15 * maxv;
                v += static_cast<double>(rnd() % 16) - 8.0;
                const auto q = static_cast<std::int32_t>(std::lround(v));
                p.at(x, y) = std::clamp(q, std::int32_t{0}, maxv);
            }
        }
    }
    return img;
}

double psnr(const image& a, const image& b)
{
    if (a.width() != b.width() || a.height() != b.height() ||
        a.components() != b.components())
        throw std::invalid_argument{"psnr: image geometry mismatch"};
    double sse = 0.0;
    std::size_t n = 0;
    for (int c = 0; c < a.components(); ++c) {
        const auto& pa = a.comp(c).samples();
        const auto& pb = b.comp(c).samples();
        for (std::size_t i = 0; i < pa.size(); ++i) {
            const double d = static_cast<double>(pa[i]) - static_cast<double>(pb[i]);
            sse += d * d;
        }
        n += pa.size();
    }
    if (sse == 0.0) return std::numeric_limits<double>::infinity();
    const double maxv = (1 << a.bit_depth()) - 1;
    const double mse = sse / static_cast<double>(n);
    return 10.0 * std::log10(maxv * maxv / mse);
}

}  // namespace codec
