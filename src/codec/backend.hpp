// codec/backend.hpp — the codec_backend interface and the process-wide
// registry.
//
// The paper's discipline is seamless refinement: one behaviour carried across
// abstraction layers behind stable interfaces.  The runtime, cache, and net
// layers are codec-shaped, not JPEG-2000-shaped — they admit bytes, decode
// them into a codec::image, cache the result, and frame it onto a socket.
// This interface is that boundary made explicit:
//
//     wire codec byte ──► registry ──► backend ──► decode()/open_session()
//                                        │
//                                        └─ capabilities: what request knobs
//                                           (reduction, layers, pass caps,
//                                           progressive streaming) the codec
//                                           honours — the server rejects a
//                                           codec/flag mismatch *typed*, at
//                                           admission, instead of deep in a
//                                           decode worker.
//
// Contract for every backend:
//   - decode() returns the image or throws codec::codestream_error for any
//     malformed/hostile input (see codec/error.hpp); no other failure mode.
//   - decode() is const and thread-safe: one backend instance serves every
//     pool worker concurrently.
//   - wire_id() is the J2NE codec byte and is stable forever (cache keys and
//     clients depend on it); name() is the human/config spelling.
//
// Registration is explicit and append-only: each codec library exposes an
// idempotent ensure_*_registered() the serving layer calls at construction.
// Nothing is ever unregistered, so `const backend*` results stay valid for
// the process lifetime.
#pragma once

#include "error.hpp"
#include "image.hpp"

#include <cstdint>
#include <memory>
#include <memory_resource>
#include <span>
#include <string_view>
#include <vector>

namespace codec {

/// What a backend can do with the per-request decode knobs.  The serving
/// layer rejects requests that set a knob the codec does not honour.
struct capabilities {
    bool resolution_reduction = false;  ///< honours decode_request::discard_levels
    bool quality_layers = false;        ///< honours max_quality_layers
    bool pass_cap = false;              ///< honours max_passes (SNR scalability)
    bool progressive = false;           ///< open_session() yields a real session
    bool roi = false;                   ///< reserved (ROADMAP item 3)
    int max_components = 1;             ///< band limit this codec can emit
};

/// Per-request decode knobs, codec-neutral (a codec ignores — after the
/// serving layer's capability check — what it does not implement).
struct decode_request {
    int discard_levels = 0;      ///< resolution: decode at 1/2^n size
    int max_quality_layers = 0;  ///< layered streams: first n layers (0 = all)
    int max_passes = 0;          ///< SNR: cap entropy passes (0 = all)
};

/// A resumable progressive-decode session: one reconstruction per quality
/// layer, entropy state persisting across refinements.  Only codecs with
/// capabilities::progressive return one.
class progressive_session {
public:
    virtual ~progressive_session() = default;
    [[nodiscard]] virtual int total_layers() const = 0;
    /// Reconstruction after `layer` quality layers (1-based, non-decreasing
    /// across calls).  Throws codestream_error on malformed input.
    [[nodiscard]] virtual image advance_to(int layer) = 0;
};

class backend {
public:
    virtual ~backend() = default;

    /// Stable human/config name ("j2k", "ccsds123").
    [[nodiscard]] virtual std::string_view name() const noexcept = 0;
    /// The J2NE request-frame codec byte; stable forever.
    [[nodiscard]] virtual std::uint8_t wire_id() const noexcept = 0;
    [[nodiscard]] virtual capabilities caps() const noexcept = 0;

    /// Decode a whole codestream.  `mr`, when non-null, backs decode-transient
    /// scratch (per-job arenas); the returned image always owns heap storage.
    /// Throws codec::codestream_error on malformed input — nothing else.
    [[nodiscard]] virtual image decode(std::span<const std::uint8_t> bytes,
                                       const decode_request& req,
                                       std::pmr::memory_resource* mr = nullptr) const = 0;

    /// Open a progressive session over `bytes` (which must outlive it).
    /// Default: throws std::logic_error — only capabilities::progressive
    /// codecs override.
    [[nodiscard]] virtual std::unique_ptr<progressive_session> open_session(
        std::span<const std::uint8_t> bytes) const;
};

// ---- process-wide registry -------------------------------------------------

/// Register a backend.  Idempotent for the same object; throws
/// std::invalid_argument when a *different* backend already claims the same
/// wire id or name (ids are forever — colliding ones are a build error, not
/// a runtime preference).
void register_backend(std::shared_ptr<const backend> b);

/// Look up by wire id / name.  Null when unknown.  Returned pointers live for
/// the process lifetime.
[[nodiscard]] const backend* find_backend(std::uint8_t wire_id) noexcept;
[[nodiscard]] const backend* find_backend(std::string_view name) noexcept;

/// Snapshot of every registered backend, in registration order (metrics
/// exposition, --help text).
[[nodiscard]] std::vector<const backend*> backends();

}  // namespace codec
