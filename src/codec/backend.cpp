#include "backend.hpp"

#include <mutex>
#include <stdexcept>
#include <string>

namespace codec {

std::unique_ptr<progressive_session> backend::open_session(
    std::span<const std::uint8_t>) const
{
    throw std::logic_error{std::string{name()} +
                           ": codec does not support progressive sessions"};
}

namespace {

struct registry_state {
    std::mutex m;
    std::vector<std::shared_ptr<const backend>> entries;
};

registry_state& reg()
{
    static registry_state r;  // never destroyed order problems: trivially leaked refs
    return r;
}

}  // namespace

void register_backend(std::shared_ptr<const backend> b)
{
    if (!b) throw std::invalid_argument{"register_backend: null backend"};
    registry_state& r = reg();
    std::lock_guard lk{r.m};
    for (const auto& e : r.entries) {
        if (e.get() == b.get()) return;  // idempotent re-registration
        if (e->wire_id() == b->wire_id())
            throw std::invalid_argument{"register_backend: wire id " +
                                        std::to_string(b->wire_id()) +
                                        " already registered to " +
                                        std::string{e->name()}};
        if (e->name() == b->name())
            throw std::invalid_argument{"register_backend: name '" +
                                        std::string{b->name()} +
                                        "' already registered"};
    }
    r.entries.push_back(std::move(b));
}

const backend* find_backend(std::uint8_t wire_id) noexcept
{
    registry_state& r = reg();
    std::lock_guard lk{r.m};
    for (const auto& e : r.entries)
        if (e->wire_id() == wire_id) return e.get();
    return nullptr;
}

const backend* find_backend(std::string_view name) noexcept
{
    registry_state& r = reg();
    std::lock_guard lk{r.m};
    for (const auto& e : r.entries)
        if (e->name() == name) return e.get();
    return nullptr;
}

std::vector<const backend*> backends()
{
    registry_state& r = reg();
    std::lock_guard lk{r.m};
    std::vector<const backend*> out;
    out.reserve(r.entries.size());
    for (const auto& e : r.entries) out.push_back(e.get());
    return out;
}

}  // namespace codec
