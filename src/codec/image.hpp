// codec/image.hpp — the codec-neutral image currency shared by every layer.
//
// Components are stored as planar 32-bit signed samples so that intermediate
// transform/quantiser values fit without clipping.  This type used to live in
// j2k/ with a hard 1..4 component cap; it is the shared currency of the
// runtime service, the decoded-result cache, and the wire protocol, so it
// moved down a layer when the second codec arrived: multispectral backends
// (CCSDS-123-style) emit dozens of bands, and the structural cap is now
// k_max_components with each backend declaring (and enforcing) its own band
// limit in its capability flags (see codec/backend.hpp).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace codec {

/// Structural component bound of the container itself.  Chosen to match the
/// one-byte component count of the raw wire encoding (net/protocol.hpp);
/// individual codecs declare tighter limits (J2K: 4, CCSDS-123: bands field).
inline constexpr int k_max_components = 255;

/// One rectangular plane of 32-bit samples.
class plane {
public:
    plane() = default;
    plane(int width, int height, std::int32_t fill = 0)
        : w_{width}, h_{height}, data_(static_cast<std::size_t>(width) * height, fill)
    {
        if (width < 0 || height < 0) throw std::invalid_argument{"plane: negative size"};
    }

    [[nodiscard]] int width() const noexcept { return w_; }
    [[nodiscard]] int height() const noexcept { return h_; }
    [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

    [[nodiscard]] std::int32_t& at(int x, int y)
    {
        return data_[static_cast<std::size_t>(y) * w_ + x];
    }
    [[nodiscard]] std::int32_t at(int x, int y) const
    {
        return data_[static_cast<std::size_t>(y) * w_ + x];
    }

    [[nodiscard]] std::int32_t* row(int y) { return data_.data() + static_cast<std::size_t>(y) * w_; }
    [[nodiscard]] const std::int32_t* row(int y) const
    {
        return data_.data() + static_cast<std::size_t>(y) * w_;
    }

    [[nodiscard]] std::vector<std::int32_t>& samples() noexcept { return data_; }
    [[nodiscard]] const std::vector<std::int32_t>& samples() const noexcept { return data_; }

    [[nodiscard]] bool operator==(const plane&) const = default;

private:
    int w_ = 0;
    int h_ = 0;
    std::vector<std::int32_t> data_;
};

/// A multi-component image (1 = greyscale, 3 = RGB, N = multispectral bands).
class image {
public:
    image() = default;
    image(int width, int height, int components, int bit_depth = 8)
        : w_{width}, h_{height}, depth_{bit_depth}
    {
        if (components < 1 || components > k_max_components)
            throw std::invalid_argument{"image: 1..255 components supported"};
        if (bit_depth < 1 || bit_depth > 16)
            throw std::invalid_argument{"image: 1..16 bit depth supported"};
        comps_.assign(static_cast<std::size_t>(components), plane{width, height});
    }

    [[nodiscard]] int width() const noexcept { return w_; }
    [[nodiscard]] int height() const noexcept { return h_; }
    [[nodiscard]] int components() const noexcept { return static_cast<int>(comps_.size()); }
    [[nodiscard]] int bit_depth() const noexcept { return depth_; }

    [[nodiscard]] plane& comp(int c) { return comps_.at(static_cast<std::size_t>(c)); }
    [[nodiscard]] const plane& comp(int c) const { return comps_.at(static_cast<std::size_t>(c)); }

    [[nodiscard]] bool operator==(const image&) const = default;

private:
    int w_ = 0;
    int h_ = 0;
    int depth_ = 8;
    std::vector<plane> comps_;
};

/// Deterministic synthetic test image (smooth gradients + texture + edges),
/// exercising both low- and high-frequency content.  `seed` varies content.
[[nodiscard]] image make_test_image(int width, int height, int components,
                                    int bit_depth = 8, std::uint32_t seed = 1);

/// Peak signal-to-noise ratio between two images (dB); +inf when identical.
[[nodiscard]] double psnr(const image& a, const image& b);

}  // namespace codec
