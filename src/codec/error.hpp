// codec/error.hpp — the shared decode-failure contract.
//
// Every registered backend promises success-or-codestream_error on hostile
// input: a malformed, truncated, or resource-bomb stream throws exactly this
// type (j2k::codestream_error is an alias), never crashes, never allocates
// from attacker-controlled sizes first.  The net layer maps it to
// status::malformed_codestream; anything else a decode throws is an internal
// error.  Keeping the type here — below every codec — is what lets the
// service and server handle N codecs with one catch clause.
#pragma once

#include <stdexcept>

namespace codec {

/// Thrown on malformed codestreams, by every backend.
class codestream_error : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

}  // namespace codec
