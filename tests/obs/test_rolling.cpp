// obs::rolling_stats: pairing drained trace events into per-stage windowed
// distributions — sync innermost-first pairing, async pairing by (name, id),
// pairing state across batch boundaries, window expiry, and the stage cap.
#include <obs/rolling.hpp>

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace {

constexpr std::uint64_t k_s = 1'000'000'000ull;  // ns per second

obs::trace_event ev(std::uint64_t ts, const char* name, obs::event_type t,
                    std::uint32_t tid = 0, std::int64_t value = 0)
{
    obs::trace_event e;
    e.ts_ns = ts;
    e.name = name;
    e.category = "test";
    e.type = t;
    e.tid = tid;
    e.value = value;
    return e;
}

TEST(RollingStats, SingleSpanShowsUpInEveryCoveringWindow)
{
    obs::rolling_stats rs;
    const std::uint64_t t0 = 100 * k_s;
    rs.consume({ev(t0, "tier1", obs::event_type::begin),
                ev(t0 + 5'000'000, "tier1", obs::event_type::end)});

    const auto w1 = rs.window("tier1", 1, t0 + 5'000'000);
    EXPECT_EQ(w1.count, 1u);
    EXPECT_DOUBLE_EQ(w1.rate_per_s, 1.0);
    EXPECT_DOUBLE_EQ(w1.mean_ns, 5'000'000.0);
    EXPECT_EQ(w1.max_ns, 5'000'000u);
    EXPECT_GT(w1.p50_ns, 0.0);
    EXPECT_LE(w1.p50_ns, 5'000'000.0);  // quantile never exceeds the max sample
    EXPECT_LE(w1.p99_ns, 5'000'000.0);

    const auto w10 = rs.window("tier1", 10, t0 + 5'000'000);
    EXPECT_EQ(w10.count, 1u);
    EXPECT_DOUBLE_EQ(w10.rate_per_s, 0.1);

    // Unknown stage: all-zero stats, no throw.
    const auto none = rs.window("no_such_stage", 10);
    EXPECT_EQ(none.count, 0u);
    EXPECT_EQ(none.p99_ns, 0.0);
}

TEST(RollingStats, NestedSyncSpansPairInnermostFirst)
{
    obs::rolling_stats rs;
    const std::uint64_t t0 = 7 * k_s;
    rs.consume({
        ev(t0, "outer", obs::event_type::begin),
        ev(t0 + 100, "inner", obs::event_type::begin),
        ev(t0 + 300, "inner", obs::event_type::end),   // closes inner: 200 ns
        ev(t0 + 1000, "outer", obs::event_type::end),  // closes outer: 1000 ns
    });
    EXPECT_EQ(rs.window("inner", 1, t0 + 1000).max_ns, 200u);
    EXPECT_EQ(rs.window("outer", 1, t0 + 1000).max_ns, 1000u);
    EXPECT_EQ(rs.get_totals().spans, 2u);
    EXPECT_EQ(rs.get_totals().open_spans, 0u);
}

TEST(RollingStats, PairingSurvivesBatchBoundaries)
{
    obs::rolling_stats rs;
    const std::uint64_t t0 = 42 * k_s;
    // The B arrives in one drained batch, its E in the next (the cursor
    // advanced between aggregation ticks mid-span).
    rs.consume({ev(t0, "split_span", obs::event_type::begin)});
    EXPECT_EQ(rs.get_totals().open_spans, 1u);
    EXPECT_EQ(rs.window("split_span", 1, t0).count, 0u);  // not complete yet
    rs.consume({ev(t0 + 500, "split_span", obs::event_type::end)});
    EXPECT_EQ(rs.get_totals().open_spans, 0u);
    EXPECT_EQ(rs.window("split_span", 1, t0 + 500).count, 1u);
    EXPECT_EQ(rs.window("split_span", 1, t0 + 500).max_ns, 500u);
}

TEST(RollingStats, UnmatchedEndIsCountedNotCredited)
{
    obs::rolling_stats rs;
    rs.consume({ev(9 * k_s, "orphan", obs::event_type::end)});
    EXPECT_EQ(rs.get_totals().unmatched_ends, 1u);
    EXPECT_EQ(rs.get_totals().spans, 0u);
    EXPECT_TRUE(rs.stages().empty());  // no stage ring allocated for it
}

TEST(RollingStats, AsyncSpansPairByNameAndIdAcrossThreads)
{
    obs::rolling_stats rs;
    const std::uint64_t t0 = 11 * k_s;
    rs.consume({
        ev(t0, "job", obs::event_type::async_begin, /*tid=*/1, /*value=*/77),
        ev(t0, "job", obs::event_type::async_begin, /*tid=*/1, /*value=*/78),
        // Ends land on a different thread; id correlates them, not the tid.
        ev(t0 + 400, "job", obs::event_type::async_end, /*tid=*/2, /*value=*/77),
    });
    EXPECT_EQ(rs.window("job", 1, t0 + 400).count, 1u);
    EXPECT_EQ(rs.window("job", 1, t0 + 400).max_ns, 400u);
    EXPECT_EQ(rs.get_totals().open_spans, 1u);  // id 78 still open

    // An async end with an unknown id is an unmatched end.
    rs.consume({ev(t0 + 500, "job", obs::event_type::async_end, 2, 999)});
    EXPECT_EQ(rs.get_totals().unmatched_ends, 1u);
}

TEST(RollingStats, WindowsForgetOldTraffic)
{
    obs::rolling_stats rs;
    const std::uint64_t t0 = 200 * k_s;
    for (int i = 0; i < 10; ++i) {
        rs.consume({ev(t0 + i * 1000, "burst", obs::event_type::begin),
                    ev(t0 + i * 1000 + 100, "burst", obs::event_type::end)});
    }
    EXPECT_EQ(rs.window("burst", 1, t0 + 10'000).count, 10u);
    // Five seconds later the 1 s window is empty while 10 s still covers it.
    EXPECT_EQ(rs.window("burst", 1, t0 + 5 * k_s).count, 0u);
    EXPECT_DOUBLE_EQ(rs.window("burst", 1, t0 + 5 * k_s).rate_per_s, 0.0);
    EXPECT_EQ(rs.window("burst", 10, t0 + 5 * k_s).count, 10u);
    // Beyond the ring (64 one-second slots), even the widest window is empty.
    EXPECT_EQ(rs.window("burst", 60, t0 + 200 * k_s).count, 0u);
}

TEST(RollingStats, SlotRingLapsOverwriteStaleSeconds)
{
    obs::rolling_stats rs;
    const std::uint64_t t0 = 300 * k_s;
    rs.consume({ev(t0, "lap", obs::event_type::begin),
                ev(t0 + 10, "lap", obs::event_type::end)});
    // Exactly one ring lap later the same slot index holds a different
    // second; the old sample must not leak into the new second's window.
    const std::uint64_t t1 = t0 + 64 * k_s;
    rs.consume({ev(t1, "lap", obs::event_type::begin),
                ev(t1 + 20, "lap", obs::event_type::end)});
    EXPECT_EQ(rs.window("lap", 1, t1 + 20).count, 1u);
    EXPECT_EQ(rs.window("lap", 1, t1 + 20).max_ns, 20u);
}

TEST(RollingStats, StageCapCountsDroppedSpans)
{
    obs::rolling_stats rs{2};
    const std::uint64_t t0 = 5 * k_s;
    const char* names[] = {"s1", "s2", "s3"};
    for (const char* n : names)
        rs.consume({ev(t0, n, obs::event_type::begin),
                    ev(t0 + 10, n, obs::event_type::end)});
    EXPECT_EQ(rs.stages().size(), 2u);
    EXPECT_EQ(rs.get_totals().dropped_stages, 1u);
    EXPECT_EQ(rs.window("s3", 1, t0 + 10).count, 0u);
}

TEST(RollingStats, WindowSecondsAreClamped)
{
    obs::rolling_stats rs;
    const std::uint64_t t0 = 20 * k_s;
    rs.consume({ev(t0, "clamp", obs::event_type::begin),
                ev(t0 + 10, "clamp", obs::event_type::end)});
    // 0 and negative behave as 1 s; oversized behaves as the max window.
    EXPECT_EQ(rs.window("clamp", 0, t0 + 10).count, 1u);
    EXPECT_DOUBLE_EQ(rs.window("clamp", -5, t0 + 10).rate_per_s, 1.0);
    EXPECT_EQ(rs.window("clamp", 10'000, t0 + 10).count, 1u);
}

TEST(RollingStats, ZeroNowUsesNewestConsumedTimestamp)
{
    obs::rolling_stats rs;
    const std::uint64_t t0 = 77 * k_s;
    rs.consume({ev(t0, "implicit", obs::event_type::begin),
                ev(t0 + 10, "implicit", obs::event_type::end)});
    EXPECT_EQ(rs.window("implicit", 1).count, 1u);  // now_ns defaulted
}

TEST(RollingStats, EndToEndWithLiveTracer)
{
    if (!obs::tracing_compiled()) GTEST_SKIP() << "built with OBS_TRACING=OFF";
    auto& tr = obs::tracer::instance();
    tr.set_enabled(true);
    obs::rolling_stats rs;
    std::uint64_t cursor = tr.now_ns();  // only this test's events
    {
        OBS_TRACE_SCOPE("test", "rolling_live");
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    tr.set_enabled(false);
    const auto batch = tr.collect_since(cursor);
    cursor = obs::tracer::next_cursor(batch, cursor);
    rs.consume(batch);
    const auto w = rs.window("rolling_live", obs::rolling_stats::k_max_window_s);
    ASSERT_EQ(w.count, 1u);
    EXPECT_GE(w.max_ns, 1'000'000u);  // the 2 ms sleep is visible
}

TEST(RollingStats, ConcurrentConsumeAndQuery)
{
    obs::rolling_stats rs;
    std::thread producer{[&rs] {
        for (int i = 0; i < 2000; ++i) {
            const std::uint64_t t = 50 * k_s + static_cast<std::uint64_t>(i) * 100;
            rs.consume({ev(t, "conc", obs::event_type::begin),
                        ev(t + 50, "conc", obs::event_type::end)});
        }
    }};
    std::thread reader{[&rs] {
        for (int i = 0; i < 500; ++i) {
            const auto w = rs.window("conc", 10);
            (void)w;
            (void)rs.stages();
            (void)rs.get_totals();
        }
    }};
    producer.join();
    reader.join();
    EXPECT_EQ(rs.get_totals().spans, 2000u);
}

}  // namespace
