// obs metrics: counters, gauges, the registry, and the log2 histogram —
// including the quantile edge cases (empty, q=0/1, single sample, in-bucket
// interpolation) that the service latency percentiles depend on.
#include <obs/metrics.hpp>

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace {

TEST(Counter, AddAndRead)
{
    obs::counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, TracksValueAndHighWater)
{
    obs::gauge g;
    g.set(5);
    g.set(2);
    EXPECT_EQ(g.value(), 2);
    EXPECT_EQ(g.max(), 5);
    g.add(10);
    EXPECT_EQ(g.value(), 12);
    EXPECT_EQ(g.max(), 12);
    g.add(-12);
    EXPECT_EQ(g.value(), 0);
    EXPECT_EQ(g.max(), 12);
}

TEST(Registry, HandsOutStableReferences)
{
    obs::registry r;
    obs::counter& a = r.get_counter("jobs");
    obs::counter& b = r.get_counter("jobs");
    EXPECT_EQ(&a, &b);
    a.add(7);
    EXPECT_EQ(r.get_counter("jobs").value(), 7u);
    EXPECT_NE(&r.get_counter("jobs"), &r.get_counter("tiles"));
}

TEST(Registry, TextExposition)
{
    obs::registry r;
    r.get_counter("requests").add(3);
    r.get_gauge("depth").set(9);
    r.get_histogram("lat").observe(100);
    const std::string text = r.expose_text();
    EXPECT_NE(text.find("requests 3\n"), std::string::npos);
    EXPECT_NE(text.find("depth 9\n"), std::string::npos);
    EXPECT_NE(text.find("depth_max 9\n"), std::string::npos);
    EXPECT_NE(text.find("lat_count 1\n"), std::string::npos);
    EXPECT_NE(text.find("lat_max 100\n"), std::string::npos);
}

TEST(Registry, JsonExposition)
{
    obs::registry r;
    r.get_counter("requests").add(3);
    r.get_gauge("depth").set(9);
    r.get_histogram("lat").observe(100);
    const std::string json = r.expose_json();
    EXPECT_NE(json.find("\"requests\":3"), std::string::npos);
    EXPECT_NE(json.find("\"depth\":{\"value\":9,\"max\":9}"), std::string::npos);
    EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Name hygiene at the exposition boundary (registry names are free-form).

TEST(NameHygiene, PrometheusNameSanitisesOnce)
{
    EXPECT_EQ(obs::prometheus_name("jobs_submitted"), "jobs_submitted");
    EXPECT_EQ(obs::prometheus_name("ns:sub_system"), "ns:sub_system");
    EXPECT_EQ(obs::prometheus_name("latency.p99-us"), "latency_p99_us");
    EXPECT_EQ(obs::prometheus_name("queue depth"), "queue_depth");
    EXPECT_EQ(obs::prometheus_name("naïve"), "na__ve");  // multibyte → per byte
    // A leading digit may not start a Prometheus identifier.
    EXPECT_EQ(obs::prometheus_name("2xx_responses"), "_2xx_responses");
    EXPECT_EQ(obs::prometheus_name(""), "_");
    EXPECT_EQ(obs::prometheus_name("\"evil\nname\\"), "_evil_name_");
}

TEST(NameHygiene, JsonQuoteEscapesHostileStrings)
{
    EXPECT_EQ(obs::json_quote("plain"), "\"plain\"");
    EXPECT_EQ(obs::json_quote("with \"quotes\""), "\"with \\\"quotes\\\"\"");
    EXPECT_EQ(obs::json_quote("back\\slash"), "\"back\\\\slash\"");
    EXPECT_EQ(obs::json_quote(std::string_view{"tab\tnl\n", 7}), "\"tab\\u0009nl\\u000a\"");
}

TEST(NameHygiene, HostileRegistryNamesCannotBreakJsonExposition)
{
    obs::registry r;
    r.get_counter("ok_name").add(1);
    r.get_counter("quote\"inject\":9999,\"x").add(2);
    r.get_gauge("line\nbreak").set(3);
    r.get_histogram("back\\slash").observe(4);
    const std::string json = r.expose_json();
    // The quote is escaped, so the injected ":9999" stays inside the string.
    EXPECT_NE(json.find("quote\\\"inject\\\":9999,\\\"x"), std::string::npos);
    EXPECT_NE(json.find("line\\u000abreak"), std::string::npos);
    EXPECT_NE(json.find("back\\\\slash"), std::string::npos);
    // No raw control characters survive into the document.
    for (const char c : json) EXPECT_GE(static_cast<unsigned char>(c), 0x20);
}

TEST(Histogram, EmptyQuantileIsZero)
{
    const obs::log2_histogram h;
    const auto d = h.snapshot();
    EXPECT_EQ(d.count, 0u);
    EXPECT_EQ(d.quantile(0.0), 0.0);
    EXPECT_EQ(d.quantile(0.5), 0.0);
    EXPECT_EQ(d.quantile(1.0), 0.0);
    EXPECT_EQ(d.mean(), 0.0);
}

TEST(Histogram, QuantileIsClampedToValidRange)
{
    obs::log2_histogram h;
    h.observe(100);
    const auto d = h.snapshot();
    EXPECT_EQ(d.quantile(-3.0), d.quantile(0.0));
    EXPECT_EQ(d.quantile(42.0), d.quantile(1.0));
}

TEST(Histogram, SingleSampleNeverExceedsObservedMax)
{
    obs::log2_histogram h;
    h.observe(5);  // bucket [4, 8)
    const auto d = h.snapshot();
    EXPECT_EQ(d.count, 1u);
    EXPECT_EQ(d.max, 5u);
    // q=1 would interpolate to the bucket's open upper bound (8) without the
    // clamp; the estimate must never exceed the largest real sample.
    EXPECT_DOUBLE_EQ(d.quantile(1.0), 5.0);
    EXPECT_LE(d.quantile(0.5), 5.0);
    EXPECT_GE(d.quantile(0.0), 4.0);  // bucket lower bound
}

TEST(Histogram, ZeroValuedSamples)
{
    obs::log2_histogram h;
    for (int i = 0; i < 10; ++i) h.observe(0);
    const auto d = h.snapshot();
    EXPECT_EQ(d.max, 0u);
    EXPECT_EQ(d.quantile(1.0), 0.0);
    EXPECT_EQ(d.quantile(0.5), 0.0);
}

TEST(Histogram, InterpolatesLinearlyWithinABucket)
{
    obs::log2_histogram h;
    for (int i = 0; i < 10; ++i) h.observe(2);     // bucket [2, 4)
    for (int i = 0; i < 10; ++i) h.observe(1000);  // bucket [512, 1024)
    const auto d = h.snapshot();
    // p25 → 5th of 20 samples → halfway through the first bucket.
    EXPECT_DOUBLE_EQ(d.quantile(0.25), 3.0);
    // p75 → 15th → halfway through the second bucket.
    EXPECT_DOUBLE_EQ(d.quantile(0.75), 768.0);
    // q=0 lands at the first occupied bucket's lower bound.
    EXPECT_DOUBLE_EQ(d.quantile(0.0), 2.0);
    // q=1 clamps to the real maximum, not the bucket bound.
    EXPECT_DOUBLE_EQ(d.quantile(1.0), 1000.0);
}

TEST(Histogram, MeanAndMaxAreExact)
{
    obs::log2_histogram h;
    h.observe(10);
    h.observe(20);
    h.observe(60);
    const auto d = h.snapshot();
    EXPECT_DOUBLE_EQ(d.mean(), 30.0);
    EXPECT_EQ(d.max, 60u);
    EXPECT_EQ(d.sum, 90u);
}

TEST(Histogram, ConcurrentObserversStayConsistent)
{
    obs::log2_histogram h;
    constexpr int k_threads = 4;
    constexpr int k_per_thread = 10000;
    std::vector<std::thread> ts;
    for (int t = 0; t < k_threads; ++t)
        ts.emplace_back([&h] {
            for (int i = 0; i < k_per_thread; ++i)
                h.observe(static_cast<std::uint64_t>(i % 1000));
        });
    for (auto& t : ts) t.join();
    const auto d = h.snapshot();
    EXPECT_EQ(d.count, static_cast<std::uint64_t>(k_threads) * k_per_thread);
    EXPECT_EQ(d.max, 999u);
    std::uint64_t total = 0;
    for (const auto b : d.buckets) total += b;
    EXPECT_EQ(total, d.count);
}

}  // namespace
