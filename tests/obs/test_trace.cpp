// obs tracer: ring-buffer wraparound, cross-thread drain, concurrent span
// emission (the TSan target), and validity of the emitted Chrome trace-event
// JSON (parsed by a small standalone JSON parser below — if Perfetto can't
// load the file, these tests should already have failed).
#include <obs/obs.hpp>

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON validator (value grammar only, no semantics).

class json_parser {
public:
    explicit json_parser(std::string_view s) : s_{s} {}

    bool valid()
    {
        skip_ws();
        if (!value()) return false;
        skip_ws();
        return pos_ == s_.size();
    }

private:
    bool value()
    {
        if (pos_ >= s_.size()) return false;
        switch (s_[pos_]) {
        case '{': return object();
        case '[': return array();
        case '"': return string();
        case 't': return literal("true");
        case 'f': return literal("false");
        case 'n': return literal("null");
        default: return number();
        }
    }
    bool object()
    {
        ++pos_;  // '{'
        skip_ws();
        if (peek() == '}') { ++pos_; return true; }
        for (;;) {
            skip_ws();
            if (!string()) return false;
            skip_ws();
            if (peek() != ':') return false;
            ++pos_;
            skip_ws();
            if (!value()) return false;
            skip_ws();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == '}') { ++pos_; return true; }
            return false;
        }
    }
    bool array()
    {
        ++pos_;  // '['
        skip_ws();
        if (peek() == ']') { ++pos_; return true; }
        for (;;) {
            skip_ws();
            if (!value()) return false;
            skip_ws();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == ']') { ++pos_; return true; }
            return false;
        }
    }
    bool string()
    {
        if (peek() != '"') return false;
        ++pos_;
        while (pos_ < s_.size()) {
            const char c = s_[pos_];
            if (c == '\\') {
                if (pos_ + 1 >= s_.size()) return false;
                const char e = s_[pos_ + 1];
                if (e == 'u') {
                    if (pos_ + 5 >= s_.size()) return false;
                    for (int i = 2; i <= 5; ++i)
                        if (!std::isxdigit(static_cast<unsigned char>(s_[pos_ + i])))
                            return false;
                    pos_ += 6;
                    continue;
                }
                if (std::string_view{"\"\\/bfnrt"}.find(e) == std::string_view::npos)
                    return false;
                pos_ += 2;
                continue;
            }
            if (c == '"') { ++pos_; return true; }
            if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
            ++pos_;
        }
        return false;
    }
    bool number()
    {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
        if (peek() == '.') {
            ++pos_;
            while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-') ++pos_;
            while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
        }
        return pos_ > start && std::isdigit(static_cast<unsigned char>(s_[pos_ - 1]));
    }
    bool literal(std::string_view lit)
    {
        if (s_.substr(pos_, lit.size()) != lit) return false;
        pos_ += lit.size();
        return true;
    }
    void skip_ws()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' || s_[pos_] == '\r'))
            ++pos_;
    }
    [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

    std::string_view s_;
    std::size_t pos_ = 0;
};

// The tracer is a process-global singleton whose rings persist across test
// cases, so every test filters by names unique to it.

std::size_t count_events(const char* name)
{
    const auto evs = obs::tracer::instance().collect();
    return static_cast<std::size_t>(
        std::count_if(evs.begin(), evs.end(),
                      [&](const obs::trace_event& e) {
                          return e.name && std::string_view{e.name} == name;
                      }));
}

TEST(Tracer, DirectEmissionRoundTrips)
{
    auto& tr = obs::tracer::instance();
    tr.begin("test", "rt_span");
    tr.end("test", "rt_span");
    tr.instant("test", "rt_instant");
    tr.counter("test", "rt_counter", 42);
    const auto evs = tr.collect();
    bool found_b = false, found_e = false, found_c = false;
    std::uint64_t ts_b = 0;
    for (const auto& e : evs) {
        if (!e.name) continue;
        const std::string_view n{e.name};
        if (n == "rt_span" && e.type == obs::event_type::begin) {
            found_b = true;
            ts_b = e.ts_ns;
        }
        if (n == "rt_span" && e.type == obs::event_type::end) {
            found_e = true;
            EXPECT_GE(e.ts_ns, ts_b);  // collect() sorts by timestamp
        }
        if (n == "rt_counter") {
            found_c = true;
            EXPECT_EQ(e.value, 42);
        }
    }
    EXPECT_TRUE(found_b);
    EXPECT_TRUE(found_e);
    EXPECT_TRUE(found_c);
}

TEST(Tracer, MacrosAreGatedByRuntimeEnable)
{
    auto& tr = obs::tracer::instance();
    tr.set_enabled(false);
    OBS_TRACE_INSTANT("test", "gated_off");
    EXPECT_EQ(count_events("gated_off"), 0u);

    tr.set_enabled(true);
    OBS_TRACE_INSTANT("test", "gated_on");
    tr.set_enabled(false);
    if (obs::tracing_compiled())
        EXPECT_EQ(count_events("gated_on"), 1u);
    else
        EXPECT_EQ(count_events("gated_on"), 0u);  // OBS_TRACING=OFF build
}

TEST(Tracer, ScopedSpanBalancesBeginEnd)
{
    if (!obs::tracing_compiled()) GTEST_SKIP() << "built with OBS_TRACING=OFF";
    auto& tr = obs::tracer::instance();
    tr.set_enabled(true);
    {
        OBS_TRACE_SCOPE("test", "scoped_piece");
        OBS_TRACE_SCOPE("test", "scoped_piece");  // nests
    }
    tr.set_enabled(false);
    const auto evs = tr.collect();
    int balance = 0, seen = 0;
    for (const auto& e : evs) {
        if (!e.name || std::string_view{e.name} != "scoped_piece") continue;
        ++seen;
        balance += e.type == obs::event_type::begin ? 1 : -1;
    }
    EXPECT_EQ(seen, 4);
    EXPECT_EQ(balance, 0);
}

TEST(Tracer, StageTimerAccumulatesIntoCounter)
{
    obs::counter ns;
    {
        obs::stage_timer t{nullptr, nullptr, ns};
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_GE(ns.value(), 1'000'000u);  // at least 1 ms measured
}

TEST(Tracer, RingWrapsKeepingTheNewestEvents)
{
    auto& tr = obs::tracer::instance();
    constexpr std::uint64_t k_extra = 500;
    constexpr std::uint64_t n = obs::detail::event_ring::k_capacity + k_extra;
    for (std::uint64_t i = 0; i < n; ++i)
        tr.counter("test", "wrap_seq", static_cast<std::int64_t>(i));
    const auto evs = tr.collect();
    std::vector<std::int64_t> vals;
    for (const auto& e : evs)
        if (e.name && std::string_view{e.name} == "wrap_seq") vals.push_back(e.value);
    ASSERT_FALSE(vals.empty());
    EXPECT_LE(vals.size(), obs::detail::event_ring::k_capacity);
    // The newest event always survives; everything retained is from the tail.
    EXPECT_EQ(vals.back(), static_cast<std::int64_t>(n - 1));
    EXPECT_GE(vals.front(), static_cast<std::int64_t>(k_extra));
    EXPECT_TRUE(std::is_sorted(vals.begin(), vals.end()));
    EXPECT_GT(tr.get_stats().overwritten, 0u);
}

TEST(Tracer, CrossThreadDrainSeesOtherThreadsEvents)
{
    auto& tr = obs::tracer::instance();
    std::uint32_t main_tid = 0xffffffff;
    tr.instant("test", "xt_main");
    std::thread t{[&tr] {
        tr.set_thread_name("xt-worker");
        for (int i = 0; i < 100; ++i) tr.instant("test", "xt_worker");
    }};
    t.join();
    const auto evs = tr.collect();
    std::size_t worker_events = 0;
    std::uint32_t worker_tid = 0xffffffff;
    for (const auto& e : evs) {
        if (!e.name) continue;
        if (std::string_view{e.name} == "xt_main") main_tid = e.tid;
        if (std::string_view{e.name} == "xt_worker") {
            ++worker_events;
            worker_tid = e.tid;
        }
    }
    EXPECT_EQ(worker_events, 100u);
    EXPECT_NE(worker_tid, main_tid);  // each thread gets its own track

    // The worker's ring outlives the thread and carries its name.
    std::stringstream ss;
    tr.write_json(ss);
    EXPECT_NE(ss.str().find("xt-worker"), std::string::npos);
}

// The TSan target: several threads hammer spans while another thread drains
// concurrently.  Correctness of what the drain sees is covered elsewhere;
// here the property is "no race, no crash, no torn event".
TEST(Tracer, ConcurrentEmissionAndDrainIsClean)
{
    auto& tr = obs::tracer::instance();
    constexpr int k_threads = 4;
    constexpr int k_events = 20000;
    std::atomic<bool> stop{false};
    std::thread drainer{[&] {
        while (!stop.load(std::memory_order_acquire)) {
            const auto evs = tr.collect();
            for (const auto& e : evs) {
                // A torn slot would show a bogus type; valid events only.
                EXPECT_LE(static_cast<int>(e.type),
                          static_cast<int>(obs::event_type::async_end));
            }
            std::this_thread::yield();
        }
    }};
    std::vector<std::thread> emitters;
    for (int t = 0; t < k_threads; ++t)
        emitters.emplace_back([&tr, t] {
            for (int i = 0; i < k_events; ++i) {
                tr.begin("test", "conc_span");
                tr.counter("test", "conc_counter", t * k_events + i);
                tr.end("test", "conc_span");
            }
        });
    for (auto& t : emitters) t.join();
    stop.store(true, std::memory_order_release);
    drainer.join();
}

TEST(TraceJson, OutputParsesAndDropsUnmatchedEnds)
{
    auto& tr = obs::tracer::instance();
    tr.set_thread_name("json \"quoted\\name");  // exercise escaping
    tr.begin("test", "json_span");
    tr.instant("test", "json_instant");
    tr.counter("test", "json_counter", -7);
    tr.async_begin("test", "json_async", 99);
    tr.async_end("test", "json_async", 99);
    tr.end("test", "json_span");

    std::stringstream ss;
    const std::size_t written = tr.write_json(ss);
    const std::string json = ss.str();
    EXPECT_GT(written, 0u);
    EXPECT_TRUE(json_parser{json}.valid()) << json.substr(0, 400);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // metadata present
    EXPECT_NE(json.find("json_span"), std::string::npos);
}

TEST(TraceJson, WriteJsonFileRoundTrips)
{
    auto& tr = obs::tracer::instance();
    tr.instant("test", "file_instant");
    const std::string path = testing::TempDir() + "obs_trace_test.trace.json";
    const std::size_t written = tr.write_json_file(path);
    EXPECT_GT(written, 0u);
    std::ifstream in{path};
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_TRUE(json_parser{ss.str()}.valid());

    EXPECT_THROW(tr.write_json_file("/nonexistent-dir/x.trace.json"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Cursor drains (the ops plane's /trace tail and rolling aggregation feed).

TEST(TraceCursor, SuccessiveBatchesAreDisjoint)
{
    auto& tr = obs::tracer::instance();
    tr.instant("test", "cursor_a");
    tr.instant("test", "cursor_a");
    const auto batch1 = tr.collect_since(0);
    const std::uint64_t cursor = obs::tracer::next_cursor(batch1, 0);
    ASSERT_FALSE(batch1.empty());
    EXPECT_EQ(cursor, batch1.back().ts_ns + 1);

    // Separate the phases by more than the clock granularity so the second
    // batch's events cannot share a timestamp with the first batch's newest.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    tr.instant("test", "cursor_b");
    const auto batch2 = tr.collect_since(cursor);
    for (const auto& e : batch2) EXPECT_GE(e.ts_ns, cursor);
    const auto in_batch = [](const std::vector<obs::trace_event>& b, const char* name) {
        return std::count_if(b.begin(), b.end(), [&](const obs::trace_event& e) {
            return e.name && std::string_view{e.name} == name;
        });
    };
    EXPECT_EQ(in_batch(batch1, "cursor_a"), 2);
    EXPECT_EQ(in_batch(batch2, "cursor_a"), 0);  // disjoint: not re-delivered
    EXPECT_EQ(in_batch(batch2, "cursor_b"), 1);

    // Empty follow-up leaves the cursor unchanged.
    const auto batch3 = tr.collect_since(obs::tracer::next_cursor(batch2, cursor));
    const std::uint64_t c3 = obs::tracer::next_cursor(batch3, 12345);
    if (batch3.empty()) {
        EXPECT_EQ(c3, 12345u);
    }
}

// Satellite of the ops plane: drains never consume.  A cursor tail and the
// end-of-run full dump must each see every event, with no cross-stealing.
TEST(TraceCursor, DrainsAreNonDestructiveAcrossConsumers)
{
    auto& tr = obs::tracer::instance();
    tr.instant("test", "coexist_ev");
    // Consumer 1: cursor tail reads it.
    const auto tail1 = tr.collect_since(0);
    const auto seen = std::count_if(
        tail1.begin(), tail1.end(), [](const obs::trace_event& e) {
            return e.name && std::string_view{e.name} == "coexist_ev";
        });
    EXPECT_EQ(seen, 1);
    // Consumer 2: the full JSON dump still contains it afterwards.
    std::stringstream ss;
    tr.write_json(ss);
    EXPECT_NE(ss.str().find("coexist_ev"), std::string::npos);
    // Consumer 3: a second cursor pass from zero sees it again too.
    const auto tail2 = tr.collect_since(0);
    const auto seen2 = std::count_if(
        tail2.begin(), tail2.end(), [](const obs::trace_event& e) {
            return e.name && std::string_view{e.name} == "coexist_ev";
        });
    EXPECT_EQ(seen2, 1);
}

TEST(TraceCursor, TailChunksConcatenateIntoLoadableJson)
{
    auto& tr = obs::tracer::instance();
    tr.instant("test", "tail_c1");
    std::stringstream chunk1;
    const auto r1 = tr.write_json_tail(chunk1, 0);
    EXPECT_GT(r1.events, 0u);
    EXPECT_GT(r1.next_since_ns, 0u);

    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    tr.instant("test", "tail_c2");
    std::stringstream chunk2;
    const auto r2 = tr.write_json_tail(chunk2, r1.next_since_ns);
    EXPECT_GT(r2.events, 0u);
    EXPECT_GT(r2.next_since_ns, r1.next_since_ns);

    // The second chunk must not repeat the first chunk's events (metadata
    // records are re-emitted by design).
    EXPECT_EQ(chunk2.str().find("tail_c1"), std::string::npos);
    EXPECT_NE(chunk2.str().find("tail_c2"), std::string::npos);

    // Chrome JSON Array Format: "[" + chunks tolerates the trailing comma and
    // missing "]"; closing it by hand must yield strictly valid JSON.
    std::string concat = "[\n" + chunk1.str() + chunk2.str();
    const auto comma = concat.find_last_of(',');
    ASSERT_NE(comma, std::string::npos);
    concat = concat.substr(0, comma) + "\n]";
    EXPECT_TRUE(json_parser{concat}.valid()) << concat.substr(0, 400);
}

TEST(Tracer, InternReturnsStablePointers)
{
    auto& tr = obs::tracer::instance();
    const char* a = tr.intern("some dynamic name");
    const char* b = tr.intern(std::string{"some dynamic name"});
    EXPECT_EQ(a, b);
    EXPECT_STREQ(a, "some dynamic name");
}

TEST(Tracer, NextIdIsMonotonic)
{
    auto& tr = obs::tracer::instance();
    const auto a = tr.next_id();
    const auto b = tr.next_id();
    EXPECT_GT(b, a);
}

}  // namespace
