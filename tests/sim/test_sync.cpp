// mutex / semaphore / fifo blocking semantics under simulated concurrency.
#include <sim/sim.hpp>

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace {

using sim::time;

TEST(Mutex, MutualExclusionSerialisesCriticalSections)
{
    sim::kernel k;
    sim::mutex m;
    std::vector<std::string> log;
    auto worker = [](sim::mutex& mx, std::vector<std::string>& lg,
                     std::string id) -> sim::process {
        for (int i = 0; i < 2; ++i) {
            co_await mx.lock();
            lg.push_back(id + ":in");
            co_await sim::delay(time::ns(10));
            lg.push_back(id + ":out");
            mx.unlock();
        }
    };
    k.spawn(worker(m, log, "a"));
    k.spawn(worker(m, log, "b"));
    k.run();
    ASSERT_EQ(log.size(), 8u);
    for (std::size_t i = 0; i < log.size(); i += 2) {
        // every "X:in" is immediately followed by "X:out" — no interleaving
        EXPECT_EQ(log[i].substr(0, 1), log[i + 1].substr(0, 1));
        EXPECT_EQ(log[i].substr(2), "in");
        EXPECT_EQ(log[i + 1].substr(2), "out");
    }
}

TEST(Semaphore, LimitsConcurrency)
{
    sim::kernel k;
    sim::semaphore sem{2};
    int inside = 0;
    int max_inside = 0;
    auto worker = [](sim::semaphore& s, int& in, int& mx) -> sim::process {
        co_await s.acquire();
        ++in;
        mx = std::max(mx, in);
        co_await sim::delay(time::ns(10));
        --in;
        s.release();
    };
    for (int i = 0; i < 6; ++i) k.spawn(worker(sem, inside, max_inside));
    k.run();
    EXPECT_EQ(inside, 0);
    EXPECT_EQ(max_inside, 2);
    EXPECT_EQ(sem.value(), 2);
}

TEST(Fifo, TransfersInOrder)
{
    sim::kernel k;
    sim::fifo<int> f{4};
    std::vector<int> got;
    k.spawn([](sim::fifo<int>& q) -> sim::process {
        for (int i = 0; i < 20; ++i) {
            co_await q.write(i);
            if (i % 3 == 0) co_await sim::delay(time::ns(5));
        }
    }(f));
    k.spawn([](sim::fifo<int>& q, std::vector<int>& out) -> sim::process {
        for (int i = 0; i < 20; ++i) {
            out.push_back(co_await q.read());
            if (i % 4 == 0) co_await sim::delay(time::ns(7));
        }
    }(f, got));
    k.run();
    ASSERT_EQ(got.size(), 20u);
    for (int i = 0; i < 20; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
}

TEST(Fifo, WriterBlocksWhenFull)
{
    sim::kernel k;
    sim::fifo<int> f{2};
    time writer_done{};
    k.spawn([](sim::fifo<int>& q, time& done) -> sim::process {
        for (int i = 0; i < 4; ++i) co_await q.write(i);
        done = sim::kernel::current()->now();
    }(f, writer_done));
    k.spawn([](sim::fifo<int>& q) -> sim::process {
        co_await sim::delay(time::ns(100));
        (void)co_await q.read();  // frees one slot at t=100
        co_await sim::delay(time::ns(100));
        (void)co_await q.read();  // frees another at t=200
    }(f));
    k.run();
    // Writer needs two frees before its 4th write can complete.
    EXPECT_EQ(writer_done, time::ns(200));
}

TEST(Fifo, TryWriteRespectsCapacity)
{
    sim::kernel k;
    sim::fifo<int> f{1};
    k.spawn([](sim::fifo<int>& q) -> sim::process {
        EXPECT_TRUE(q.try_write(1));
        EXPECT_FALSE(q.try_write(2));
        EXPECT_EQ(q.size(), 1u);
        co_return;
    }(f));
    k.run();
}

TEST(Vcd, WritesWellFormedDump)
{
    const std::string path = testing::TempDir() + "/sim_trace_test.vcd";
    {
        sim::vcd_writer vcd{path, "dut"};
        const int a = vcd.add_variable("grant", 1);
        const int b = vcd.add_variable("addr", 16);
        vcd.start();
        vcd.record(a, 1, time::ns(10));
        vcd.record(b, 0xBEEF, time::ns(10));
        vcd.record(a, 0, time::ns(20));
        vcd.record(a, 0, time::ns(30));  // unchanged: suppressed
    }
    std::ifstream in{path};
    ASSERT_TRUE(in.good());
    std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("$timescale 1ps $end"), std::string::npos);
    EXPECT_NE(text.find("$var wire 16"), std::string::npos);
    EXPECT_NE(text.find("#10000"), std::string::npos);
    EXPECT_NE(text.find("#20000"), std::string::npos);
    EXPECT_EQ(text.find("#30000"), std::string::npos);  // suppressed record
    EXPECT_NE(text.find("b1011111011101111"), std::string::npos);
}

}  // namespace
