// Kernel semantics: process scheduling, delays, events, delta cycles,
// nested task composition, exception propagation.
#include <sim/sim.hpp>

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace {

using sim::time;

TEST(Kernel, StartsAtTimeZero)
{
    sim::kernel k;
    EXPECT_EQ(k.now(), time::zero());
    EXPECT_EQ(k.run(), time::zero());
}

TEST(Kernel, DelayAdvancesTime)
{
    sim::kernel k;
    time observed{};
    k.spawn([](sim::kernel& kr, time& obs) -> sim::process {
        co_await sim::delay(time::ns(42));
        obs = kr.now();
    }(k, observed));
    k.run();
    EXPECT_EQ(observed, time::ns(42));
    EXPECT_EQ(k.now(), time::ns(42));
}

TEST(Kernel, SequentialDelaysAccumulate)
{
    sim::kernel k;
    std::vector<std::int64_t> stamps;
    k.spawn([](sim::kernel& kr, std::vector<std::int64_t>& s) -> sim::process {
        for (int i = 0; i < 5; ++i) {
            co_await sim::delay(time::us(10));
            s.push_back(kr.now().to_ps());
        }
    }(k, stamps));
    k.run();
    ASSERT_EQ(stamps.size(), 5u);
    for (int i = 0; i < 5; ++i) EXPECT_EQ(stamps[static_cast<std::size_t>(i)], time::us(10 * (i + 1)).to_ps());
}

TEST(Kernel, TwoProcessesInterleaveByTimestamp)
{
    sim::kernel k;
    std::vector<std::string> order;
    k.spawn([](std::vector<std::string>& o) -> sim::process {
        co_await sim::delay(time::ns(10));
        o.push_back("a@10");
        co_await sim::delay(time::ns(20));
        o.push_back("a@30");
    }(order));
    k.spawn([](std::vector<std::string>& o) -> sim::process {
        co_await sim::delay(time::ns(5));
        o.push_back("b@5");
        co_await sim::delay(time::ns(20));
        o.push_back("b@25");
    }(order));
    k.run();
    const std::vector<std::string> expect{"b@5", "a@10", "b@25", "a@30"};
    EXPECT_EQ(order, expect);
}

TEST(Kernel, EventNotifyWakesWaiterNextDelta)
{
    sim::kernel k;
    sim::event ev{"ev"};
    bool woke = false;
    k.spawn([](sim::event& e, bool& w) -> sim::process {
        co_await e.wait();
        w = true;
    }(ev, woke));
    k.spawn([](sim::event& e) -> sim::process {
        co_await sim::delay(time::ns(7));
        e.notify();
    }(ev));
    k.run();
    EXPECT_TRUE(woke);
    EXPECT_EQ(k.now(), time::ns(7));
}

TEST(Kernel, TimedNotifyDelaysWakeup)
{
    sim::kernel k;
    sim::event ev{"ev"};
    time woke_at{};
    k.spawn([](sim::kernel& kr, sim::event& e, time& w) -> sim::process {
        co_await e.wait();
        w = kr.now();
    }(k, ev, woke_at));
    k.spawn([](sim::event& e) -> sim::process {
        co_await sim::delay(time::ns(3));
        e.notify(time::ns(9));
        co_return;
    }(ev));
    k.run();
    EXPECT_EQ(woke_at, time::ns(12));
}

TEST(Kernel, NotifyWakesAllWaiters)
{
    sim::kernel k;
    sim::event ev{"ev"};
    int woken = 0;
    for (int i = 0; i < 4; ++i) {
        k.spawn([](sim::event& e, int& w) -> sim::process {
            co_await e.wait();
            ++w;
        }(ev, woken));
    }
    k.spawn([](sim::event& e) -> sim::process {
        co_await sim::delay(time::ns(1));
        e.notify();
    }(ev));
    k.run();
    EXPECT_EQ(woken, 4);
}

// A nested task chain: process -> task<int> -> task<int> with delays inside.
sim::task<int> leaf_wait()
{
    co_await sim::delay(time::ns(100));
    co_return 21;
}

sim::task<int> mid_wait()
{
    const int v = co_await leaf_wait();
    co_await sim::delay(time::ns(100));
    co_return v * 2;
}

TEST(Kernel, NestedTasksSuspendWholeChain)
{
    sim::kernel k;
    int result = 0;
    k.spawn([](sim::kernel& kr, int& r) -> sim::process {
        r = co_await mid_wait();
        EXPECT_EQ(kr.now(), time::ns(200));
    }(k, result));
    k.run();
    EXPECT_EQ(result, 42);
    EXPECT_EQ(k.now(), time::ns(200));
}

TEST(Kernel, RunUntilBoundStopsEarly)
{
    sim::kernel k;
    int steps = 0;
    k.spawn([](int& s) -> sim::process {
        for (;;) {
            co_await sim::delay(time::ms(1));
            ++s;
        }
    }(steps));
    k.run(time::ms(10));
    EXPECT_EQ(steps, 10);
    EXPECT_EQ(k.now(), time::ms(10));
}

TEST(Kernel, StopRequestTerminatesRun)
{
    sim::kernel k;
    k.spawn([](sim::kernel& kr) -> sim::process {
        co_await sim::delay(time::ns(5));
        kr.stop();
        co_await sim::delay(time::ns(5));  // never reached
        ADD_FAILURE() << "ran past stop()";
    }(k));
    k.run();
    EXPECT_EQ(k.now(), time::ns(5));
}

TEST(Kernel, ProcessExceptionPropagatesFromRun)
{
    sim::kernel k;
    k.spawn([]() -> sim::process {
        co_await sim::delay(time::ns(1));
        throw std::runtime_error{"boom"};
    }());
    EXPECT_THROW(k.run(), std::runtime_error);
}

TEST(Kernel, TaskExceptionPropagatesToAwaiter)
{
    sim::kernel k;
    bool caught = false;
    k.spawn([](bool& c) -> sim::process {
        auto throwing = []() -> sim::task<void> {
            co_await sim::delay(time::ns(1));
            throw std::logic_error{"inner"};
        };
        try {
            co_await throwing();
        } catch (const std::logic_error&) {
            c = true;
        }
    }(caught));
    k.run();
    EXPECT_TRUE(caught);
}

TEST(Kernel, SignalCommitsInUpdatePhase)
{
    sim::kernel k;
    sim::signal<int> s{"s", 0};
    std::vector<int> seen;
    k.spawn([](sim::signal<int>& sg, std::vector<int>& out) -> sim::process {
        co_await sg.wait_change();
        out.push_back(sg.read());
        co_await sg.wait_change();
        out.push_back(sg.read());
    }(s, seen));
    k.spawn([](sim::signal<int>& sg) -> sim::process {
        sg.write(1);
        sg.write(2);  // same delta: last write wins
        co_await sim::delay(time::ns(1));
        sg.write(3);
    }(s));
    k.run();
    const std::vector<int> expect{2, 3};
    EXPECT_EQ(seen, expect);
}

TEST(Kernel, DeltaCyclesDoNotAdvanceTime)
{
    sim::kernel k;
    int bounces = 0;
    k.spawn([](sim::kernel& kr, int& b) -> sim::process {
        for (int i = 0; i < 100; ++i) {
            co_await kr.next_delta();
            ++b;
        }
        EXPECT_EQ(kr.now(), time::zero());
    }(k, bounces));
    k.run();
    EXPECT_EQ(bounces, 100);
}

TEST(Clock, EdgesLandOnPeriodMultiples)
{
    sim::kernel k;
    sim::clock clk{"clk", time::ns(10)};  // 100 MHz
    std::vector<std::int64_t> edges;
    k.spawn([](sim::clock& c, std::vector<std::int64_t>& e) -> sim::process {
        co_await sim::delay(time::ns(3));
        for (int i = 0; i < 3; ++i) {
            co_await c.rising_edge();
            e.push_back(sim::kernel::current()->now().to_ps());
        }
        co_await c.cycles(5);
        e.push_back(sim::kernel::current()->now().to_ps());
    }(clk, edges));
    k.run();
    const std::vector<std::int64_t> expect{10'000, 20'000, 30'000, 80'000};
    EXPECT_EQ(edges, expect);
    EXPECT_NEAR(clk.frequency_mhz(), 100.0, 1e-9);
}

}  // namespace
