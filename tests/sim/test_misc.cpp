// Additional kernel semantics: dynamic process creation, notify corner
// cases, diagnostics counters, stress interleavings.
#include <sim/sim.hpp>

#include <gtest/gtest.h>

#include <fstream>
#include <vector>

namespace {

using sim::time;

TEST(KernelMisc, ProcessCanSpawnProcessesDuringRun)
{
    sim::kernel k;
    int leaves = 0;
    k.spawn([](sim::kernel& kr, int& count) -> sim::process {
        co_await sim::delay(time::ns(1));
        for (int i = 0; i < 5; ++i) {
            kr.spawn([](int& c, int delay_ns) -> sim::process {
                co_await sim::delay(time::ns(delay_ns));
                ++c;
            }(count, i + 1), "leaf");
        }
    }(k, leaves));
    k.run();
    EXPECT_EQ(leaves, 5);
    EXPECT_EQ(k.now(), time::ns(6));  // 1 + max leaf delay
}

TEST(KernelMisc, NotifyWithoutWaitersIsHarmless)
{
    sim::kernel k;
    sim::event ev{"lonely"};
    k.spawn([](sim::event& e) -> sim::process {
        e.notify();
        e.notify(time::ns(5));
        co_await sim::delay(time::ns(1));
    }(ev));
    k.run();
    EXPECT_EQ(ev.waiter_count(), 0u);
}

TEST(KernelMisc, WaiterCountTracksParkedProcesses)
{
    sim::kernel k;
    sim::event ev{"gate"};
    k.spawn([](sim::event& e) -> sim::process { co_await e.wait(); }(ev));
    k.spawn([](sim::event& e) -> sim::process { co_await e.wait(); }(ev));
    k.spawn([](sim::event& e) -> sim::process {
        co_await sim::delay(time::ns(2));
        EXPECT_EQ(e.waiter_count(), 2u);
        e.notify();
    }(ev));
    k.run();
    EXPECT_EQ(ev.waiter_count(), 0u);
}

TEST(KernelMisc, ActivationsCountResumes)
{
    sim::kernel k;
    k.spawn([]() -> sim::process {
        for (int i = 0; i < 9; ++i) co_await sim::delay(time::ns(1));
    }());
    k.run();
    // 1 initial resume + 9 delay wakeups.
    EXPECT_EQ(k.activations(), 10u);
}

TEST(KernelMisc, DeltaCountResetsAtEachTimestep)
{
    sim::kernel k;
    k.spawn([](sim::kernel& kr) -> sim::process {
        for (int i = 0; i < 3; ++i) co_await kr.next_delta();
        EXPECT_GE(kr.delta_count(), 3u);
        co_await sim::delay(time::ns(1));
        EXPECT_LE(kr.delta_count(), 1u);
    }(k));
    k.run();
}

TEST(KernelMisc, MutexLockedAccessor)
{
    sim::kernel k;
    sim::mutex m;
    k.spawn([](sim::mutex& mx) -> sim::process {
        EXPECT_FALSE(mx.locked());
        co_await mx.lock();
        EXPECT_TRUE(mx.locked());
        co_await sim::delay(time::ns(1));
        mx.unlock();
        EXPECT_FALSE(mx.locked());
    }(m));
    k.run();
}

TEST(KernelMisc, ManyProcessesHeavyInterleaving)
{
    // Stress: 200 processes ping-ponging through one FIFO must conserve all
    // items in order per producer.
    sim::kernel k;
    sim::fifo<std::pair<int, int>> q{8};
    std::vector<int> next_expected(100, 0);
    bool order_ok = true;
    for (int p = 0; p < 100; ++p) {
        k.spawn([](sim::fifo<std::pair<int, int>>& f, int id) -> sim::process {
            for (int i = 0; i < 10; ++i) {
                co_await f.write({id, i});
                if (id % 7 == 0) co_await sim::delay(time::ns(id + 1));
            }
        }(q, p));
    }
    k.spawn([](sim::fifo<std::pair<int, int>>& f, std::vector<int>& next,
               bool& ok) -> sim::process {
        for (int n = 0; n < 1000; ++n) {
            const auto [id, seq] = co_await f.read();
            ok &= next[static_cast<std::size_t>(id)] == seq;
            ++next[static_cast<std::size_t>(id)];
        }
    }(q, next_expected, order_ok));
    k.run();
    EXPECT_TRUE(order_ok);
    for (int v : next_expected) EXPECT_EQ(v, 10);
}

TEST(KernelMisc, TwoKernelsAreIndependent)
{
    sim::kernel a;
    sim::kernel b;
    a.spawn([]() -> sim::process { co_await sim::delay(time::ns(5)); }());
    b.spawn([]() -> sim::process { co_await sim::delay(time::ns(9)); }());
    EXPECT_EQ(a.run(), time::ns(5));
    EXPECT_EQ(b.run(), time::ns(9));
}

TEST(VcdWriter, RejectsDecreasingTimestamps)
{
    const std::string path = testing::TempDir() + "vcd_monotonic_test.vcd";
    sim::vcd_writer w{path};
    const int v = w.add_variable("level", 8);
    w.start();
    w.record(v, 1, time::ns(10));
    w.record(v, 2, time::ns(10));  // same time: fine (delta changes)
    w.record(v, 3, time::ns(12));
    EXPECT_THROW(w.record(v, 4, time::ns(5)), std::logic_error);
    // A rollback with an unchanged value must also throw — the old code's
    // value-dedup would have silently accepted it.
    EXPECT_THROW(w.record(v, 3, time::ns(5)), std::logic_error);
    w.record(v, 5, time::ns(12));  // non-decreasing again: recovers
}

TEST(VcdWriter, FlushSucceedsOnHealthyStream)
{
    const std::string path = testing::TempDir() + "vcd_flush_test.vcd";
    sim::vcd_writer w{path};
    const int v = w.add_variable("level", 8);
    w.start();
    w.record(v, 1, time::ns(10));
    EXPECT_NO_THROW(w.flush());
}

TEST(VcdWriter, SurfacesWriteFailuresInsteadOfTruncating)
{
    // /dev/full accepts the open but fails every flushed write with ENOSPC —
    // exactly the silent-truncation scenario the writer must now report.
    if (!std::ofstream{"/dev/full"}.is_open())
        GTEST_SKIP() << "/dev/full not available";
    sim::vcd_writer w{"/dev/full"};
    const int v = w.add_variable("level", 32);
    w.start();
    // Enough records to overflow the stream buffer so the ENOSPC surfaces
    // either from a record() (badbit exception) or, at the latest, flush().
    try {
        for (int i = 0; i < 100000; ++i)
            w.record(v, static_cast<std::uint64_t>(i), time::ns(10 + i));
        w.flush();
        FAIL() << "expected a write-failure exception";
    } catch (const std::exception&) {
        SUCCEED();
    }
}

TEST(KernelMisc, SignalOfStructType)
{
    struct pt {
        int x = 0;
        int y = 0;
        bool operator==(const pt&) const = default;
    };
    sim::kernel k;
    sim::signal<pt> s{"pos"};
    pt seen{};
    k.spawn([](sim::signal<pt>& sg, pt& out) -> sim::process {
        co_await sg.wait_change();
        out = sg.read();
    }(s, seen));
    k.spawn([](sim::signal<pt>& sg) -> sim::process {
        sg.write({3, 4});
        co_return;
    }(s));
    k.run();
    EXPECT_EQ(seen, (pt{3, 4}));
}

}  // namespace
