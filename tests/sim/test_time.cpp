// sim::time arithmetic, comparisons and formatting.
#include <sim/time.hpp>

#include <gtest/gtest.h>

namespace {

using sim::time;

TEST(Time, DefaultIsZero)
{
    EXPECT_TRUE(time{}.is_zero());
    EXPECT_EQ(time{}, time::zero());
}

TEST(Time, UnitConstructorsAgree)
{
    EXPECT_EQ(time::ns(1), time::ps(1'000));
    EXPECT_EQ(time::us(1), time::ns(1'000));
    EXPECT_EQ(time::ms(1), time::us(1'000));
    EXPECT_EQ(time::sec(1), time::ms(1'000));
}

TEST(Time, Arithmetic)
{
    EXPECT_EQ(time::ns(10) + time::ns(5), time::ns(15));
    EXPECT_EQ(time::ns(10) - time::ns(5), time::ns(5));
    EXPECT_EQ(time::ns(10) * 3, time::ns(30));
    EXPECT_EQ(4 * time::ns(10), time::ns(40));
    EXPECT_EQ(time::ns(10) / 2, time::ns(5));
}

TEST(Time, DurationRatioGivesCycleCounts)
{
    // 125 ns of activity on a 10 ns clock = 12 complete cycles.
    EXPECT_EQ(time::ns(125) / time::ns(10), 12);
    EXPECT_EQ(time::ns(120) / time::ns(10), 12);
    EXPECT_EQ(time::ns(9) / time::ns(10), 0);
}

TEST(Time, Comparisons)
{
    EXPECT_LT(time::ns(1), time::ns(2));
    EXPECT_GT(time::ms(1), time::us(999));
    EXPECT_LE(time::ns(5), time::ns(5));
}

TEST(Time, CompoundAssignment)
{
    time t = time::ns(10);
    t += time::ns(5);
    EXPECT_EQ(t, time::ns(15));
    t -= time::ns(10);
    EXPECT_EQ(t, time::ns(5));
}

TEST(Time, ConversionsToFloating)
{
    EXPECT_DOUBLE_EQ(time::ms(180).to_ms(), 180.0);
    EXPECT_DOUBLE_EQ(time::ns(2500).to_us(), 2.5);
    EXPECT_DOUBLE_EQ(time::us(1).to_ns(), 1000.0);
}

TEST(Time, FractionalNanoseconds)
{
    EXPECT_EQ(time::ns_f(10.5), time::ps(10'500));
    EXPECT_EQ(time::ns_f(0.001), time::ps(1));
}

TEST(Time, FormattingPicksReadableUnit)
{
    EXPECT_EQ(time::ms(180).str(), "180 ms");
    EXPECT_EQ(time::ns(42).str(), "42 ns");
    EXPECT_EQ(time::zero().str(), "0 s");
    EXPECT_EQ(time::ps(10'500).str(), "10.500 ns");
    EXPECT_EQ(time::sec(2).str(), "2 s");
}

TEST(Time, MaxActsAsInfinity)
{
    EXPECT_GT(time::max(), time::sec(1'000'000));
}

}  // namespace
