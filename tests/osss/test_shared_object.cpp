// Shared Objects: blocking method calls, mutual exclusion, timed methods,
// guarded calls, statistics.
#include <osss/processor.hpp>
#include <osss/shared_object.hpp>

#include <gtest/gtest.h>

#include <vector>

namespace {

using osss::scheduling_policy;
using osss::shared_object;
using sim::time;

struct counter {
    int value = 0;
    int max_concurrent = 0;
    int inside = 0;
};

TEST(SharedObject, CallReturnsMethodResult)
{
    sim::kernel k;
    shared_object<counter> so{"cnt", scheduling_policy::fifo};
    auto cl = so.make_client("c0");
    int got = -1;
    k.spawn([](shared_object<counter>& s, shared_object<counter>::client& c,
               int& out) -> sim::process {
        out = co_await s.call(c, [](counter& x) { return ++x.value; });
    }(so, cl, got));
    k.run();
    EXPECT_EQ(got, 1);
    EXPECT_EQ(so.object().value, 1);
    EXPECT_EQ(so.total_calls(), 1u);
}

TEST(SharedObject, BlockingCallsAreMutuallyExclusive)
{
    sim::kernel k;
    shared_object<counter> so{"cnt", scheduling_policy::fifo};
    std::vector<shared_object<counter>::client> cls;
    for (int i = 0; i < 4; ++i) cls.push_back(so.make_client("c" + std::to_string(i)));
    for (auto& cl : cls) {
        k.spawn([](shared_object<counter>& s,
                   shared_object<counter>::client& c) -> sim::process {
            for (int i = 0; i < 5; ++i) {
                co_await s.call(c, [](counter& x) -> sim::task<void> {
                    ++x.inside;
                    x.max_concurrent = std::max(x.max_concurrent, x.inside);
                    co_await sim::delay(time::ns(10));  // timed method body
                    --x.inside;
                    ++x.value;
                });
            }
        }(so, cl));
    }
    k.run();
    EXPECT_EQ(so.object().value, 20);
    EXPECT_EQ(so.object().max_concurrent, 1);  // never concurrent
    // 20 calls × 10 ns exclusive: total 200 ns of busy time.
    EXPECT_EQ(so.stats().busy_time, time::ns(200));
    EXPECT_EQ(k.now(), time::ns(200));
}

TEST(SharedObject, MethodCallBlocksCallerUntilComplete)
{
    // The paper: "A method call on a port will not return until its
    // execution has been completed."
    sim::kernel k;
    shared_object<counter> so{"cnt", scheduling_policy::fifo};
    auto cl = so.make_client("c");
    time returned_at{};
    k.spawn([](shared_object<counter>& s, shared_object<counter>::client& c,
               time& ret) -> sim::process {
        co_await s.call(c, [](counter&) -> sim::task<void> {
            co_await sim::delay(time::ms(3));
        });
        ret = sim::kernel::current()->now();
    }(so, cl, returned_at));
    k.run();
    EXPECT_EQ(returned_at, time::ms(3));
}

struct mailbox {
    std::vector<int> slots;
    [[nodiscard]] bool has_data() const noexcept { return !slots.empty(); }
};

TEST(SharedObject, GuardedCallWaitsForPredicate)
{
    sim::kernel k;
    shared_object<mailbox> so{"mbox", scheduling_policy::fifo};
    auto producer = so.make_client("producer");
    auto consumer = so.make_client("consumer");
    int received = 0;
    time received_at{};
    k.spawn([](shared_object<mailbox>& s, shared_object<mailbox>::client& c,
               int& out, time& at) -> sim::process {
        out = co_await s.call_when(
            c, [](const mailbox& m) { return m.has_data(); },
            [](mailbox& m) {
                const int v = m.slots.back();
                m.slots.pop_back();
                return v;
            });
        at = sim::kernel::current()->now();
    }(so, consumer, received, received_at));
    k.spawn([](shared_object<mailbox>& s,
               shared_object<mailbox>::client& c) -> sim::process {
        co_await sim::delay(time::us(7));
        co_await s.call(c, [](mailbox& m) { m.slots.push_back(42); });
    }(so, producer));
    k.run();
    EXPECT_EQ(received, 42);
    EXPECT_EQ(received_at, time::us(7));
}

TEST(SharedObject, GuardedCallDoesNotDeadlockOtherClients)
{
    // A waiting guard must release the object so producers can get in.
    sim::kernel k;
    shared_object<mailbox> so{"mbox", scheduling_policy::fifo};
    auto c1 = so.make_client("g1");
    auto c2 = so.make_client("g2");
    auto prod = so.make_client("p");
    int sum = 0;
    auto consume = [](shared_object<mailbox>& s, shared_object<mailbox>::client& c,
                      int& acc) -> sim::process {
        const int v = co_await s.call_when(
            c, [](const mailbox& m) { return m.has_data(); },
            [](mailbox& m) {
                const int x = m.slots.back();
                m.slots.pop_back();
                return x;
            });
        acc += v;
    };
    k.spawn(consume(so, c1, sum));
    k.spawn(consume(so, c2, sum));
    k.spawn([](shared_object<mailbox>& s,
               shared_object<mailbox>::client& c) -> sim::process {
        for (int i = 1; i <= 2; ++i) {
            co_await sim::delay(time::us(1));
            co_await s.call(c, [i](mailbox& m) { m.slots.push_back(i); });
        }
    }(so, prod));
    k.run();
    EXPECT_EQ(sum, 3);
}

TEST(SharedObject, PriorityPolicyOrdersCompetingClients)
{
    sim::kernel k;
    shared_object<counter> so{"cnt", scheduling_policy::priority};
    auto low = so.make_client("low", 1);
    auto high = so.make_client("high", 9);
    auto holder = so.make_client("holder");
    std::vector<std::string> order;
    k.spawn([](shared_object<counter>& s, shared_object<counter>::client& c) -> sim::process {
        co_await s.call(c, [](counter&) -> sim::task<void> {
            co_await sim::delay(time::ns(100));
        });
    }(so, holder));
    auto contender = [](shared_object<counter>& s, shared_object<counter>::client& c,
                        std::vector<std::string>& ord, time start) -> sim::process {
        co_await sim::delay(start);
        co_await s.call(c, [&ord, &c](counter&) { ord.push_back(c.name()); });
    };
    k.spawn(contender(so, low, order, time::ns(1)));   // low asks first
    k.spawn(contender(so, high, order, time::ns(2)));  // high asks second
    k.run();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], "high");
    EXPECT_EQ(order[1], "low");
}

TEST(SharedObject, ClientStatsTrackWaitAndCalls)
{
    sim::kernel k;
    shared_object<counter> so{"cnt", scheduling_policy::fifo};
    auto a = so.make_client("a");
    auto b = so.make_client("b");
    k.spawn([](shared_object<counter>& s, shared_object<counter>::client& c) -> sim::process {
        co_await s.call(c, [](counter&) -> sim::task<void> {
            co_await sim::delay(time::us(5));
        });
    }(so, a));
    k.spawn([](shared_object<counter>& s, shared_object<counter>::client& c) -> sim::process {
        co_await sim::delay(time::us(1));
        co_await s.call(c, [](counter&) {});
    }(so, b));
    k.run();
    EXPECT_EQ(a.stats().calls, 1u);
    EXPECT_EQ(a.stats().wait_time, time::zero());
    EXPECT_EQ(a.stats().held_time, time::us(5));
    EXPECT_EQ(b.stats().calls, 1u);
    EXPECT_EQ(b.stats().wait_time, time::us(4));
}

// ---- EET / processor ----

TEST(Eet, AnnotatedBlockAdvancesTimeAndRunsBody)
{
    sim::kernel k;
    int computed = 0;
    k.spawn([](int& out) -> sim::process {
        out = co_await osss::eet(time::ms(180), [] { return 6 * 7; });
        EXPECT_EQ(sim::kernel::current()->now(), time::ms(180));
    }(computed));
    k.run();
    EXPECT_EQ(computed, 42);
}

TEST(Processor, SerialisesTasksMappedOntoIt)
{
    sim::kernel k;
    osss::processor cpu{"ppc405", time::ns(10)};  // 100 MHz
    // Two EET blocks of 1 ms each from two tasks on one CPU: 2 ms total.
    osss::sw_task t1{"t1", [&cpu]() -> sim::task<void> {
        co_await cpu.execute(time::ms(1));
    }};
    osss::sw_task t2{"t2", [&cpu]() -> sim::task<void> {
        co_await cpu.execute(time::ms(1));
    }};
    cpu.add_sw_task(t1);
    cpu.add_sw_task(t2);
    cpu.start(k);
    k.run();
    EXPECT_EQ(k.now(), time::ms(2));
    EXPECT_EQ(cpu.busy_time(), time::ms(2));
    EXPECT_EQ(cpu.task_count(), 2u);
}

TEST(Processor, SpeedFactorScalesExecution)
{
    sim::kernel k;
    osss::processor fast{"fast", time::ns(5), 2.0};
    osss::sw_task t{"t", [&fast]() -> sim::task<void> {
        co_await fast.execute(time::ms(4));
    }};
    fast.add_sw_task(t);
    fast.start(k);
    k.run();
    EXPECT_EQ(k.now(), time::ms(2));  // 2× faster
}

TEST(Processor, TwoProcessorsRunInParallel)
{
    sim::kernel k;
    osss::processor a{"cpu0", time::ns(10)};
    osss::processor b{"cpu1", time::ns(10)};
    osss::sw_task ta{"ta", [&a]() -> sim::task<void> { co_await a.execute(time::ms(3)); }};
    osss::sw_task tb{"tb", [&b]() -> sim::task<void> { co_await b.execute(time::ms(3)); }};
    a.add_sw_task(ta);
    b.add_sw_task(tb);
    a.start(k);
    b.start(k);
    k.run();
    EXPECT_EQ(k.now(), time::ms(3));  // true parallelism across processors
}

}  // namespace
