// Parameterised invariants of the arbitration/channel layer: conservation
// (no work lost), exclusivity, and fairness bounds must hold under every
// policy and load shape.
#include <osss/osss.hpp>

#include <gtest/gtest.h>

#include <map>

namespace {

using osss::scheduling_policy;
using sim::time;

constexpr time clk = time::ns(10);

// ---- arbiter properties over policy × client count ----

struct arb_case {
    scheduling_policy policy;
    int clients;
    int rounds;
};

class ArbiterProperty : public testing::TestWithParam<arb_case> {};

TEST_P(ArbiterProperty, EveryRequestGrantedExactlyOnceAndExclusive)
{
    const auto& c = GetParam();
    sim::kernel k;
    osss::arbiter arb{"a", c.policy};
    int inside = 0;
    int max_inside = 0;
    std::map<int, int> grants;
    for (int id = 0; id < c.clients; ++id) {
        k.spawn([](osss::arbiter& a, int my, int rounds, int& in, int& mx,
                   std::map<int, int>& g) -> sim::process {
            for (int r = 0; r < rounds; ++r) {
                co_await a.acquire(my, my % 3);
                ++in;
                mx = std::max(mx, in);
                ++g[my];
                co_await sim::delay(time::ns(7 + my));
                --in;
                a.release();
            }
        }(arb, id, c.rounds, inside, max_inside, grants));
    }
    k.run();
    EXPECT_EQ(max_inside, 1);  // mutual exclusion under every policy
    EXPECT_EQ(arb.stats().grants,
              static_cast<std::uint64_t>(c.clients) * static_cast<std::uint64_t>(c.rounds));
    for (int id = 0; id < c.clients; ++id) EXPECT_EQ(grants[id], c.rounds) << id;
    EXPECT_FALSE(arb.busy());
    EXPECT_EQ(arb.pending(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    PolicyGrid, ArbiterProperty,
    testing::Values(arb_case{scheduling_policy::fifo, 1, 10},
                    arb_case{scheduling_policy::fifo, 4, 10},
                    arb_case{scheduling_policy::fifo, 13, 5},
                    arb_case{scheduling_policy::round_robin, 2, 10},
                    arb_case{scheduling_policy::round_robin, 7, 8},
                    arb_case{scheduling_policy::priority, 3, 10},
                    arb_case{scheduling_policy::priority, 9, 6}),
    [](const testing::TestParamInfo<arb_case>& info) {
        return std::string{osss::policy_name(info.param.policy)} + "_c" +
               std::to_string(info.param.clients) + "_r" +
               std::to_string(info.param.rounds);
    });

// ---- channel properties over width × chunking ----

struct chan_case {
    int width_bits;
    std::size_t burst;
    std::size_t payload;
};

class ChannelProperty : public testing::TestWithParam<chan_case> {};

TEST_P(ChannelProperty, BusyTimeEqualsBeatAccounting)
{
    const auto& c = GetParam();
    sim::kernel k;
    osss::opb_bus::config cfg;
    cfg.width_bits = c.width_bits;
    cfg.max_burst_bytes = c.burst;
    osss::opb_bus bus{"opb", clk, cfg};
    k.spawn([](osss::opb_bus& b, std::size_t n) -> sim::process {
        co_await b.transact(0, n);
    }(bus, c.payload));
    k.run();
    // Conservation: recorded beats must cover exactly the payload.
    const std::size_t bpb = static_cast<std::size_t>(c.width_bits) / 8;
    std::uint64_t expect_beats = 0;
    std::size_t rem = c.payload;
    do {
        const std::size_t chunk = std::min(rem, c.burst);
        expect_beats += chunk == 0 ? 1 : (chunk + bpb - 1) / bpb;
        rem -= chunk;
    } while (rem > 0);
    EXPECT_EQ(bus.stats().data_beats, expect_beats);
    EXPECT_EQ(bus.stats().payload_bytes, c.payload);
    EXPECT_EQ(bus.stats().transactions, 1u);
    // With one master, total elapsed == uncontended latency (no wait).
    EXPECT_EQ(bus.stats().wait_time, time::zero());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ChannelProperty,
    testing::Values(chan_case{32, 256, 0}, chan_case{32, 256, 1},
                    chan_case{32, 256, 256}, chan_case{32, 256, 257},
                    chan_case{32, 64, 24576}, chan_case{64, 512, 24576},
                    chan_case{8, 16, 100}, chan_case{16, 4096, 4096}),
    [](const testing::TestParamInfo<chan_case>& info) {
        return "w" + std::to_string(info.param.width_bits) + "_b" +
               std::to_string(info.param.burst) + "_p" +
               std::to_string(info.param.payload);
    });

TEST(ChannelFairness, RoundRobinBoundsWorstCaseWait)
{
    // Under round-robin, no master waits longer than (n-1) × longest chunk
    // between its grants once the system saturates.
    sim::kernel k;
    osss::opb_bus::config cfg;
    cfg.policy = scheduling_policy::round_robin;
    cfg.max_burst_bytes = 64;
    osss::opb_bus bus{"opb", clk, cfg};
    constexpr int n = 5;
    std::map<int, time> worst_gap;
    for (int m = 0; m < n; ++m) {
        k.spawn([](osss::opb_bus& b, int id, std::map<int, time>& gap) -> sim::process {
            time last = sim::kernel::current()->now();
            for (int i = 0; i < 20; ++i) {
                co_await b.transact(id, 64);
                const time now = sim::kernel::current()->now();
                gap[id] = std::max(gap[id], now - last);
                last = now;
            }
        }(bus, m, worst_gap));
    }
    k.run();
    // One 64-byte chunk on a 32-bit OPB = 1+1+16*2 = 34 cycles; n masters.
    const time bound = clk * 34 * (n + 1);
    for (const auto& [id, gap] : worst_gap) EXPECT_LE(gap, bound) << "master " << id;
}

}  // namespace
