// Polymorphic serialisation over OSSS communication.
#include <osss/osss.hpp>

#include <gtest/gtest.h>

namespace {

struct shape {
    virtual ~shape() = default;
    [[nodiscard]] virtual double area() const = 0;
};

struct circle final : shape {
    double radius = 0;
    [[nodiscard]] double area() const override { return 3.14159265358979 * radius * radius; }
};
void serialize(osss::archive& a, const circle& c) { a.put(c.radius); }
void deserialize(osss::archive_reader& r, circle& c) { r.get(c.radius); }

struct rect final : shape {
    double w = 0;
    double h = 0;
    [[nodiscard]] double area() const override { return w * h; }
};
void serialize(osss::archive& a, const rect& x)
{
    a.put(x.w);
    a.put(x.h);
}
void deserialize(osss::archive_reader& r, rect& x)
{
    r.get(x.w);
    r.get(x.h);
}

osss::poly_registry<shape> make_registry()
{
    osss::poly_registry<shape> reg;
    reg.register_type<circle>("circle");
    reg.register_type<rect>("rect");
    return reg;
}

TEST(Polymorphic, RoundTripsDynamicTypes)
{
    const auto reg = make_registry();
    circle c;
    c.radius = 2.0;
    rect r;
    r.w = 3.0;
    r.h = 4.0;

    osss::archive a;
    reg.serialize(a, c);
    reg.serialize(a, r);
    const auto bytes = a.take();

    osss::archive_reader rd{std::span<const std::uint8_t>{bytes}};
    const auto s1 = reg.deserialize(rd);
    const auto s2 = reg.deserialize(rd);
    ASSERT_NE(dynamic_cast<circle*>(s1.get()), nullptr);
    ASSERT_NE(dynamic_cast<rect*>(s2.get()), nullptr);
    EXPECT_DOUBLE_EQ(s1->area(), c.area());  // virtual dispatch after transport
    EXPECT_DOUBLE_EQ(s2->area(), 12.0);
}

TEST(Polymorphic, UnregisteredTypeRejected)
{
    struct triangle final : shape {
        [[nodiscard]] double area() const override { return 0; }
    };
    const auto reg = make_registry();
    osss::archive a;
    const triangle t;
    EXPECT_THROW(reg.serialize(a, t), std::invalid_argument);
}

TEST(Polymorphic, UnknownTagRejected)
{
    const auto reg = make_registry();
    osss::archive a;
    serialize(a, std::string{"hexagon"});
    const auto bytes = a.take();
    osss::archive_reader rd{std::span<const std::uint8_t>{bytes}};
    EXPECT_THROW((void)reg.deserialize(rd), std::invalid_argument);
}

TEST(Polymorphic, DoubleRegistrationRejected)
{
    osss::poly_registry<shape> reg;
    reg.register_type<circle>("circle");
    EXPECT_THROW(reg.register_type<circle>("circle2"), std::logic_error);
    EXPECT_THROW(reg.register_type<rect>("circle"), std::logic_error);
    EXPECT_EQ(reg.registered_types(), 1u);
}

TEST(Polymorphic, SerialSizeIncludesTag)
{
    const auto reg = make_registry();
    circle c;
    c.radius = 1.0;
    // tag: 8-byte length + 6 chars; payload: one double.
    EXPECT_EQ(reg.serial_size(c), 8u + 6u + 8u);
}

TEST(Polymorphic, WorksThroughSharedObjectCalls)
{
    // A Shared Object whose method consumes polymorphic payloads that
    // arrived over a serialised channel.
    struct accumulator {
        double total = 0;
    };
    sim::kernel k;
    const auto reg = make_registry();
    osss::shared_object<accumulator> so{"acc", osss::scheduling_policy::fifo};
    osss::object_socket<accumulator> sock{so};
    osss::p2p_channel link{"link", sim::time::ns(10)};
    auto port = osss::service_port<accumulator>::rmi(sock, "sender", link, 0);

    k.spawn([](const osss::poly_registry<shape>& r,
               osss::service_port<accumulator>& p) -> sim::process {
        circle c;
        c.radius = 1.0;
        rect rc;
        rc.w = 2.0;
        rc.h = 5.0;
        for (const shape* s : {static_cast<const shape*>(&c),
                               static_cast<const shape*>(&rc)}) {
            // Serialise the dynamic type, ship it, rebuild it inside the SO.
            osss::archive a;
            r.serialize(a, *s);
            auto payload = std::make_shared<std::vector<std::uint8_t>>(a.take());
            auto apply = [payload, &r](accumulator& acc) {
                osss::archive_reader rd{std::span<const std::uint8_t>{*payload}};
                acc.total += r.deserialize(rd)->area();
            };
            co_await p.call(payload->size(), 8, apply);
        }
    }(reg, port), "sender");
    k.run();
    EXPECT_NEAR(so.object().total, 3.14159265358979 + 10.0, 1e-9);
}

}  // namespace
