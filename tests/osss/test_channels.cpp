// OSSS channels: transfer timing, bus contention, P2P independence, RMI
// sockets, memories, serialisation.
#include <osss/osss.hpp>

#include <gtest/gtest.h>

#include <vector>

namespace {

using osss::opb_bus;
using osss::p2p_channel;
using osss::scheduling_policy;
using sim::time;

constexpr time clk = time::ns(10);  // 100 MHz, as in the paper

TEST(OpbBus, SingleTransferTiming)
{
    sim::kernel k;
    opb_bus bus{"opb", clk};  // 32-bit, arb 1 + addr 1 + 2 cycles/beat
    k.spawn([](opb_bus& b) -> sim::process {
        co_await b.transact(0, 64);  // 16 beats of 4 bytes
    }(bus));
    k.run();
    // 1 (arb) + 1 (addr) + 16*2 (beats) = 34 cycles.
    EXPECT_EQ(k.now(), clk * 34);
    EXPECT_EQ(bus.stats().transactions, 1u);
    EXPECT_EQ(bus.stats().data_beats, 16u);
    EXPECT_EQ(bus.stats().payload_bytes, 64u);
}

TEST(OpbBus, ZeroByteTransferStillCostsABeat)
{
    sim::kernel k;
    opb_bus bus{"opb", clk};
    k.spawn([](opb_bus& b) -> sim::process { co_await b.transact(0, 0); }(bus));
    k.run();
    EXPECT_EQ(k.now(), clk * 4);  // arb + addr + 1 beat * 2
}

TEST(OpbBus, ContentionSerialisesMasters)
{
    sim::kernel k;
    opb_bus bus{"opb", clk};
    std::vector<std::int64_t> done;
    for (int m = 0; m < 3; ++m) {
        k.spawn([](opb_bus& b, std::vector<std::int64_t>& d, int id) -> sim::process {
            co_await b.transact(id, 4);  // 1 beat → 4 cycles each
            d.push_back(sim::kernel::current()->now().to_ps());
        }(bus, done, m));
    }
    k.run();
    ASSERT_EQ(done.size(), 3u);
    // Transfers run strictly back-to-back: 4, 8, 12 cycles.
    EXPECT_EQ(done[0], (clk * 4).to_ps());
    EXPECT_EQ(done[1], (clk * 8).to_ps());
    EXPECT_EQ(done[2], (clk * 12).to_ps());
    EXPECT_GT(bus.stats().wait_time, time::zero());
}

TEST(OpbBus, WiderBusMovesDataFaster)
{
    auto run = [](int width_bits) {
        sim::kernel k;
        opb_bus::config cfg;
        cfg.width_bits = width_bits;
        opb_bus bus{"opb", clk, cfg};
        k.spawn([](opb_bus& b) -> sim::process { co_await b.transact(0, 1024); }(bus));
        return k.run();
    };
    EXPECT_LT(run(64), run(32));
    EXPECT_LT(run(32), run(8));
}

TEST(P2p, IndependentLinksDoNotContend)
{
    sim::kernel k;
    p2p_channel l0{"p2p0", clk};
    p2p_channel l1{"p2p1", clk};
    std::vector<std::int64_t> done;
    auto user = [](p2p_channel& c, std::vector<std::int64_t>& d) -> sim::process {
        co_await c.transact(0, 400);  // 100 beats + 1 setup = 101 cycles
        d.push_back(sim::kernel::current()->now().to_ps());
    };
    k.spawn(user(l0, done));
    k.spawn(user(l1, done));
    k.run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0], (clk * 101).to_ps());
    EXPECT_EQ(done[1], (clk * 101).to_ps());  // fully parallel
}

TEST(P2p, FasterThanBusForSamePayload)
{
    sim::kernel k;
    opb_bus bus{"opb", clk};
    p2p_channel link{"p2p", clk};
    // P2P: 1 setup + N beats·1; OPB: 2 + N·2 — P2P strictly faster.
    EXPECT_LT(link.uncontended_latency(256).to_ps(), bus.uncontended_latency(256).to_ps());
}

// ---- RMI socket ----

struct coproc {
    int invocations = 0;
    std::vector<int> scale(std::vector<int> v)
    {
        ++invocations;
        for (auto& x : v) x *= 2;
        return v;
    }
};

TEST(ObjectSocket, RmiCallMovesPayloadAndExecutes)
{
    sim::kernel k;
    osss::shared_object<coproc> so{"hw_so", scheduling_policy::fifo};
    osss::object_socket<coproc> sock{so};
    opb_bus bus{"opb", clk};
    auto b = sock.bind("sw_client", bus, /*initiator=*/0);

    std::vector<int> result;
    k.spawn([](osss::object_socket<coproc>& s, osss::object_socket<coproc>::binding& bd,
               std::vector<int>& out) -> sim::process {
        const std::vector<int> arg{1, 2, 3, 4};
        out = co_await s.call(bd, arg, [&arg](coproc& c) { return c.scale(arg); });
    }(sock, b, result));
    k.run();
    EXPECT_EQ(result, (std::vector<int>{2, 4, 6, 8}));
    EXPECT_EQ(so.object().invocations, 1);
    // Two bus transactions: request and response.
    EXPECT_EQ(bus.stats().transactions, 2u);
    // Request: 8 B header + 8 B length + 16 B data; response likewise.
    EXPECT_EQ(bus.stats().payload_bytes, 2u * (8 + 8 + 16));
    EXPECT_GT(k.now(), time::zero());
}

TEST(ObjectSocket, BusClientsContendP2pClientsDoNot)
{
    auto run = [](bool use_p2p) {
        sim::kernel k;
        osss::shared_object<coproc> so{"so", scheduling_policy::fifo};
        osss::object_socket<coproc> sock{so};
        opb_bus bus{"opb", clk};
        p2p_channel l0{"l0", clk}, l1{"l1", clk};
        auto b0 = use_p2p ? sock.bind("c0", l0, 0) : sock.bind("c0", bus, 0);
        auto b1 = use_p2p ? sock.bind("c1", l1, 1) : sock.bind("c1", bus, 1);
        auto user = [](osss::object_socket<coproc>& s,
                       osss::object_socket<coproc>::binding& bd) -> sim::process {
            // Large payloads, trivial method: communication dominates.
            co_await s.call_sized(bd, 4096, 4096, [](coproc&) {});
        };
        k.spawn(user(sock, b0));
        k.spawn(user(sock, b1));
        return k.run();
    };
    EXPECT_LT(run(true), run(false));  // the paper's 6b-vs-6a effect
}

// ---- memories ----

TEST(BlockRam, ChargesCyclesPerAccess)
{
    sim::kernel k;
    osss::xilinx_block_ram<std::int16_t> ram{"bram", clk, 1024};
    k.spawn([](osss::xilinx_block_ram<std::int16_t>& r) -> sim::process {
        co_await r.write(5, 123);
        const auto v = co_await r.read(5);
        EXPECT_EQ(v, 123);
    }(ram));
    k.run();
    EXPECT_EQ(k.now(), clk * 2);
    EXPECT_EQ(ram.stats().reads, 1u);
    EXPECT_EQ(ram.stats().writes, 1u);
}

TEST(BlockRam, BlockTransfersAndDualPort)
{
    auto run = [](int ports) {
        sim::kernel k;
        osss::xilinx_block_ram<std::int32_t> ram{
            "bram", clk, 4096, {.ports = ports, .cycles_per_access = 1}};
        k.spawn([](osss::xilinx_block_ram<std::int32_t>& r) -> sim::process {
            std::vector<std::int32_t> data(1000, 7);
            co_await r.write_block(0, data);
        }(ram));
        return k.run();
    };
    EXPECT_EQ(run(1), clk * 1000);
    EXPECT_EQ(run(2), clk * 500);
}

TEST(BlockRam, OutOfRangeThrows)
{
    sim::kernel k;
    osss::xilinx_block_ram<std::int32_t> ram{"bram", clk, 8};
    k.spawn([](osss::xilinx_block_ram<std::int32_t>& r) -> sim::process {
        bool threw = false;
        try {
            (void)co_await r.read(8);
        } catch (const std::out_of_range&) {
            threw = true;
        }
        EXPECT_TRUE(threw);
    }(ram));
    k.run();
}

TEST(OsssArray, SameInterfaceZeroTime)
{
    sim::kernel k;
    osss::osss_array<std::int16_t> arr{64};
    k.spawn([](osss::osss_array<std::int16_t>& a) -> sim::process {
        co_await a.write(3, 9);
        EXPECT_EQ(co_await a.read(3), 9);
    }(arr));
    k.run();
    EXPECT_EQ(k.now(), time::zero());  // Application Layer: no memory timing
}

TEST(DdrMemory, BurstLatencyModel)
{
    sim::kernel k;
    osss::ddr_memory ddr{"ddr", clk};
    k.spawn([](osss::ddr_memory& d) -> sim::process {
        co_await d.burst(0, 64);  // 12 CAS + 8 beats
    }(ddr));
    k.run();
    EXPECT_EQ(k.now(), clk * 20);
}

// ---- serialisation ----

TEST(Serialization, ScalarsAndVectorsRoundTrip)
{
    EXPECT_EQ(osss::serial_roundtrip(42), 42);
    EXPECT_EQ(osss::serial_roundtrip(3.5), 3.5);
    EXPECT_EQ(osss::serial_roundtrip(std::string{"tile"}), "tile");
    const std::vector<std::int16_t> v{1, -2, 3, -4};
    EXPECT_EQ(osss::serial_roundtrip(v), v);
    const std::vector<std::string> vs{"a", "bc"};
    EXPECT_EQ(osss::serial_roundtrip(vs), vs);
    const std::pair<int, double> p{7, 2.25};
    EXPECT_EQ(osss::serial_roundtrip(p), p);
}

TEST(Serialization, SizesMatchWireFormat)
{
    EXPECT_EQ(osss::serial_size(std::int32_t{1}), 4u);
    EXPECT_EQ(osss::serial_size(std::vector<std::int32_t>(10, 0)), 8u + 40u);
    EXPECT_EQ(osss::serial_size(std::string{"ab"}), 8u + 2u);
}

TEST(Serialization, ReaderUnderflowThrows)
{
    std::vector<std::uint8_t> two{1, 2};
    osss::archive_reader r{std::span<const std::uint8_t>{two}};
    std::int32_t v = 0;
    EXPECT_THROW(r.get(v), std::out_of_range);
}

// ---- design registry ----

TEST(Design, InventoryAndReport)
{
    osss::design d{"jpeg2000_v3"};
    d.add(osss::component_kind::sw_task, "arith_decoder", "sw_task", "microblaze0");
    d.add(osss::component_kind::shared_object, "hw_sw_so", "shared_object<iq_idwt>");
    d.add(osss::component_kind::channel, "opb", "opb_bus");
    d.add_link("arith_decoder", "hw_sw_so", "opb");
    EXPECT_EQ(d.components().size(), 3u);
    EXPECT_EQ(d.of_kind(osss::component_kind::channel).size(), 1u);
    const auto rep = d.report();
    EXPECT_NE(rep.find("arith_decoder"), std::string::npos);
    EXPECT_NE(rep.find("via opb"), std::string::npos);
}

TEST(Design, DotExportDrawsNodesAndEdges)
{
    osss::design d{"demo"};
    d.add(osss::component_kind::sw_task, "task0", "sw_task", "cpu0");
    d.add(osss::component_kind::processor, "cpu0", "microblaze");
    d.add(osss::component_kind::shared_object, "so", "shared_object<x>");
    d.add_link("task0", "so", "opb");
    const std::string dot = d.to_dot();
    EXPECT_NE(dot.find("digraph \"demo\""), std::string::npos);
    EXPECT_NE(dot.find("\"task0\" [shape=ellipse"), std::string::npos);
    EXPECT_NE(dot.find("\"so\" [shape=hexagon"), std::string::npos);
    EXPECT_NE(dot.find("\"task0\" -> \"so\" [label=\"opb\"]"), std::string::npos);
    EXPECT_NE(dot.find("style=dashed, label=\"mapped\""), std::string::npos);
}

}  // namespace
