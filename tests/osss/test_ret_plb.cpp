// RET deadline supervision, the PLB channel, and bus observability.
#include <osss/osss.hpp>

#include <gtest/gtest.h>

namespace {

using sim::time;

constexpr time clk = time::ns(10);

sim::task<int> busy_for(time t, int result)
{
    co_await sim::delay(t);
    co_return result;
}

TEST(Ret, MetDeadlinePassesThroughResult)
{
    sim::kernel k;
    int got = 0;
    k.spawn([](int& out) -> sim::process {
        out = co_await osss::ret(time::us(10), busy_for(time::us(5), 42));
    }(got));
    k.run();
    EXPECT_EQ(got, 42);
}

TEST(Ret, MissedDeadlineThrows)
{
    sim::kernel k;
    bool caught = false;
    k.spawn([](bool& c) -> sim::process {
        try {
            (void)co_await osss::ret(time::us(1), busy_for(time::us(5), 0));
        } catch (const osss::ret_violation& v) {
            c = true;
            EXPECT_EQ(v.deadline(), time::us(1));
            EXPECT_EQ(v.actual(), time::us(5));
        }
    }(caught));
    k.run();
    EXPECT_TRUE(caught);
}

TEST(Ret, MonitorRecordsInsteadOfThrowing)
{
    sim::kernel k;
    osss::ret_monitor mon;
    k.spawn([](osss::ret_monitor& m) -> sim::process {
        (void)co_await osss::ret(time::us(10), busy_for(time::us(5), 1), &m);
        (void)co_await osss::ret(time::us(2), busy_for(time::us(5), 2), &m);
        (void)co_await osss::ret(time::us(2), busy_for(time::us(9), 3), &m);
    }(mon));
    k.run();
    EXPECT_EQ(mon.checks(), 3u);
    EXPECT_EQ(mon.violations(), 2u);
    EXPECT_FALSE(mon.all_met());
    EXPECT_EQ(mon.worst_overrun(), time::us(7));
    EXPECT_EQ(mon.worst_actual(), time::us(9));
}

TEST(Ret, VoidBodySupported)
{
    sim::kernel k;
    osss::ret_monitor mon;
    k.spawn([](osss::ret_monitor& m) -> sim::process {
        auto body = []() -> sim::task<void> { co_await sim::delay(time::us(3)); };
        co_await osss::ret(time::us(4), body(), &m);
    }(mon));
    k.run();
    EXPECT_EQ(mon.checks(), 1u);
    EXPECT_TRUE(mon.all_met());
}

// ---- PLB ----

TEST(PlbBus, FasterThanOpbForLargePayloads)
{
    osss::opb_bus opb{"opb", clk};
    osss::plb_bus plb{"plb", clk};
    // 64-bit, 1 cycle/beat, burst: PLB must be much faster.
    EXPECT_LT(plb.uncontended_latency(4096).to_ns() * 3,
              opb.uncontended_latency(4096).to_ns());
}

TEST(PlbBus, PipeliningHidesAddressPhaseUnderContention)
{
    sim::kernel k;
    osss::plb_bus plb{"plb", clk};
    for (int m = 0; m < 2; ++m) {
        k.spawn([](osss::plb_bus& b, int id) -> sim::process {
            for (int i = 0; i < 8; ++i) co_await b.transact(id, 512);
        }(plb, m));
    }
    k.run();
    // 16 bursts of 512 B = 64 beats each; the first pays the address cycle,
    // contended ones overlap it: ≤ 16·64 + a few address cycles.
    const std::int64_t total_cycles = k.now() / clk;
    EXPECT_LE(total_cycles, 16 * 64 + 3);
    EXPECT_EQ(plb.stats().transactions, 16u);
}

TEST(PlbBus, ArbitratesLikeAnyChannel)
{
    sim::kernel k;
    osss::plb_bus plb{"plb", clk};
    std::vector<int> order;
    for (int m = 0; m < 3; ++m) {
        k.spawn([](osss::plb_bus& b, std::vector<int>& o, int id) -> sim::process {
            co_await b.transact(id, 64);
            o.push_back(id);
        }(plb, order, m));
    }
    k.run();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_GT(plb.stats().wait_time, time::zero());
}

// ---- observability ----

TEST(BusObservability, BusyAndPendingVisibleDuringRun)
{
    sim::kernel k;
    osss::opb_bus bus{"opb", clk};
    bool saw_busy = false;
    bool saw_pending = false;
    for (int m = 0; m < 3; ++m) {
        k.spawn([](osss::opb_bus& b, int id) -> sim::process {
            co_await b.transact(id, 1024);
        }(bus, m));
    }
    k.spawn([](osss::opb_bus& b, bool& busy, bool& pending) -> sim::process {
        for (int i = 0; i < 50; ++i) {
            busy |= b.busy();
            pending |= b.pending_masters() > 0;
            co_await sim::delay(time::ns(20));
        }
    }(bus, saw_busy, saw_pending));
    k.run();
    EXPECT_TRUE(saw_busy);
    EXPECT_TRUE(saw_pending);
    EXPECT_FALSE(bus.busy());  // released at the end
}

TEST(OpbBus, ChunkingReArbitratesLongTransfers)
{
    // A long transfer must not block the bus monolithically: a competing
    // 4-byte transfer finishes long before the 64 KiB one.
    sim::kernel k;
    osss::opb_bus bus{"opb", clk};
    time small_done{};
    k.spawn([](osss::opb_bus& b) -> sim::process {
        co_await b.transact(0, 65536);
    }(bus));
    k.spawn([](osss::opb_bus& b, time& done) -> sim::process {
        co_await sim::delay(time::ns(5));  // arrive just after the big one
        co_await b.transact(1, 4);
        done = sim::kernel::current()->now();
    }(bus, small_done));
    const time total = k.run();
    EXPECT_LT(small_done.to_ns(), total.to_ns() / 10);
}

}  // namespace
