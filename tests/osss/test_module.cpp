// osss::module and its VTA socket (clock/reset discipline).
#include <osss/module.hpp>

#include <gtest/gtest.h>

#include <vector>

namespace {

using sim::time;

TEST(Module, RunsAllDeclaredProcessesConcurrently)
{
    sim::kernel k;
    osss::module m{"idwt2d"};
    std::vector<int> done_at;
    for (int i = 1; i <= 3; ++i) {
        m.add_process("p" + std::to_string(i), [i, &done_at]() -> sim::task<void> {
            co_await sim::delay(time::us(i));
            done_at.push_back(i);
        });
    }
    EXPECT_EQ(m.process_count(), 3u);
    m.start(k);
    k.run();
    EXPECT_EQ(done_at, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(k.now(), time::us(3));  // concurrent, not sequential
}

TEST(ModuleSocket, HoldsProcessesUntilResetDeasserts)
{
    sim::kernel k;
    const sim::clock clk{"clk", time::ns(10)};
    sim::signal<bool> reset{"reset", true};
    osss::module m{"filter"};
    time started{};
    m.add_process("main", [&started]() -> sim::task<void> {
        started = sim::kernel::current()->now();
        co_return;
    });
    osss::module_socket sock{m, clk, reset};
    sock.start(k);
    // Deassert reset at 95 ns; the module starts on the next edge (100 ns).
    k.spawn([](sim::signal<bool>& rst) -> sim::process {
        co_await sim::delay(time::ns(95));
        rst.write(false);
    }(reset), "reset_gen");
    k.run();
    EXPECT_TRUE(sock.released());
    EXPECT_EQ(started, time::ns(100));
}

TEST(ModuleSocket, NeverReleasesWhileResetHeld)
{
    sim::kernel k;
    const sim::clock clk{"clk", time::ns(10)};
    sim::signal<bool> reset{"reset", true};
    osss::module m{"stuck"};
    bool ran = false;
    m.add_process("p", [&ran]() -> sim::task<void> {
        ran = true;
        co_return;
    });
    osss::module_socket sock{m, clk, reset};
    sock.start(k);
    k.run(time::ms(1));
    EXPECT_FALSE(sock.released());
    EXPECT_FALSE(ran);
}

}  // namespace
