// Arbiter: policy correctness, statistics, fairness.
#include <osss/scheduling.hpp>

#include <gtest/gtest.h>

#include <vector>

namespace {

using osss::arbiter;
using osss::scheduling_policy;
using sim::time;

/// Have `n` clients request at staggered times while a holder occupies the
/// resource; record the grant order.
std::vector<int> grant_order(scheduling_policy pol, const std::vector<int>& priorities)
{
    sim::kernel k;
    arbiter arb{"a", pol};
    std::vector<int> order;
    // Holder grabs at t=0 and releases at t=100ns.
    k.spawn([](arbiter& a) -> sim::process {
        co_await a.acquire(99);
        co_await sim::delay(time::ns(100));
        a.release();
    }(arb));
    for (std::size_t i = 0; i < priorities.size(); ++i) {
        k.spawn([](arbiter& a, std::vector<int>& ord, int id, int prio,
                   time when) -> sim::process {
            co_await sim::delay(when);
            co_await a.acquire(id, prio);
            ord.push_back(id);
            co_await sim::delay(time::ns(10));
            a.release();
        }(arb, order, static_cast<int>(i), priorities[i], time::ns(static_cast<std::int64_t>(i) + 1)));
    }
    k.run();
    return order;
}

TEST(Arbiter, FifoGrantsInRequestOrder)
{
    const auto order = grant_order(scheduling_policy::fifo, {0, 0, 0, 0});
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Arbiter, PriorityGrantsHighestFirst)
{
    // client ids 0..3, priorities 1, 3, 3, 7 → grant 3, then 1, 2 (FIFO among
    // equals), then 0.
    const auto order = grant_order(scheduling_policy::priority, {1, 3, 3, 7});
    EXPECT_EQ(order, (std::vector<int>{3, 1, 2, 0}));
}

TEST(Arbiter, RoundRobinCyclesThroughIds)
{
    // Last grantee before release is id 99, so the wrap picks the smallest id.
    const auto order = grant_order(scheduling_policy::round_robin, {0, 0, 0, 0});
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Arbiter, ImmediateGrantWhenIdle)
{
    sim::kernel k;
    arbiter arb{"a", scheduling_policy::fifo};
    time granted_at = time::ns(-1);
    k.spawn([](arbiter& a, time& g) -> sim::process {
        co_await sim::delay(time::ns(5));
        co_await a.acquire(0);
        g = sim::kernel::current()->now();
        a.release();
    }(arb, granted_at));
    k.run();
    EXPECT_EQ(granted_at, time::ns(5));  // no wait at all
    EXPECT_EQ(arb.stats().grants, 1u);
    EXPECT_EQ(arb.stats().total_wait, time::zero());
}

TEST(Arbiter, WaitTimeAccounted)
{
    sim::kernel k;
    arbiter arb{"a", scheduling_policy::fifo};
    k.spawn([](arbiter& a) -> sim::process {
        co_await a.acquire(0);
        co_await sim::delay(time::us(3));
        a.release();
    }(arb));
    k.spawn([](arbiter& a) -> sim::process {
        co_await sim::delay(time::us(1));
        co_await a.acquire(1);  // waits 2 us
        a.release();
    }(arb));
    k.run();
    EXPECT_EQ(arb.stats().grants, 2u);
    EXPECT_EQ(arb.stats().total_wait, time::us(2));
    EXPECT_EQ(arb.stats().busy_time, time::us(3));
}

TEST(Arbiter, RoundRobinIsFairUnderSaturation)
{
    sim::kernel k;
    arbiter arb{"a", scheduling_policy::round_robin};
    std::vector<int> grants;
    for (int id = 0; id < 3; ++id) {
        k.spawn([](arbiter& a, std::vector<int>& g, int my) -> sim::process {
            for (int i = 0; i < 10; ++i) {
                co_await a.acquire(my);
                g.push_back(my);
                co_await sim::delay(time::ns(10));
                a.release();
            }
        }(arb, grants, id));
    }
    k.run();
    ASSERT_EQ(grants.size(), 30u);
    // Under saturation round robin must interleave 0,1,2,0,1,2,...
    for (std::size_t i = 3; i < grants.size(); ++i)
        EXPECT_EQ(grants[i], grants[i - 3]) << "position " << i;
    int c0 = 0;
    for (int g : grants) c0 += g == 0;
    EXPECT_EQ(c0, 10);
}

TEST(Arbiter, PriorityCanStarveLowPriority)
{
    sim::kernel k;
    arbiter arb{"a", scheduling_policy::priority};
    std::vector<int> grants;
    // A holder keeps the resource busy while all contenders enqueue, so the
    // grant order is decided purely by the priority policy.
    k.spawn([](arbiter& a) -> sim::process {
        co_await a.acquire(9);
        co_await sim::delay(time::ns(50));
        a.release();
    }(arb));
    auto worker = [](arbiter& a, std::vector<int>& g, int id, int prio,
                     int rounds) -> sim::process {
        co_await sim::delay(time::ns(1));
        for (int i = 0; i < rounds; ++i) {
            co_await a.acquire(id, prio);
            g.push_back(id);
            co_await sim::delay(time::ns(10));
            a.release();
        }
    };
    k.spawn(worker(arb, grants, 0, 0, 1));
    k.spawn(worker(arb, grants, 1, 5, 5));
    k.spawn(worker(arb, grants, 2, 5, 5));
    k.run();
    ASSERT_EQ(grants.size(), 11u);
    EXPECT_EQ(grants.back(), 0);  // the low-priority client goes last
}

}  // namespace
