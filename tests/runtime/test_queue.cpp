// bounded_queue / two_level_queue — backpressure policies, close/drain
// semantics, strict-priority pop with promotion, MPMC safety.
#include <runtime/queue.hpp>

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace {

using runtime::backpressure;
using runtime::bounded_queue;
using runtime::priority;
using runtime::push_result;
using runtime::two_level_queue;

TEST(BoundedQueue, FifoOrderAndSize)
{
    bounded_queue<int> q{8};
    EXPECT_EQ(q.capacity(), 8u);
    for (int i = 0; i < 5; ++i) EXPECT_EQ(q.push(int{i}), push_result::ok);
    EXPECT_EQ(q.size(), 5u);
    for (int i = 0; i < 5; ++i) EXPECT_EQ(q.pop(), i);
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.try_pop(), std::nullopt);
}

TEST(BoundedQueue, ZeroCapacityIsClampedToOne)
{
    bounded_queue<int> q{0, backpressure::reject};
    EXPECT_EQ(q.capacity(), 1u);
    EXPECT_EQ(q.push(1), push_result::ok);
    EXPECT_EQ(q.push(2), push_result::rejected);
}

TEST(BoundedQueue, RejectPolicyFailsWhenFullAndKeepsItem)
{
    bounded_queue<std::unique_ptr<int>> q{2, backpressure::reject};
    EXPECT_EQ(q.push(std::make_unique<int>(1)), push_result::ok);
    EXPECT_EQ(q.push(std::make_unique<int>(2)), push_result::ok);
    auto keep = std::make_unique<int>(3);
    EXPECT_EQ(q.push(std::move(keep)), push_result::rejected);
    // The rejected item was not consumed — the caller can still fail it.
    ASSERT_NE(keep, nullptr);
    EXPECT_EQ(*keep, 3);
}

TEST(BoundedQueue, DropOldestEvictsFrontAndReturnsIt)
{
    bounded_queue<int> q{2, backpressure::drop_oldest};
    EXPECT_EQ(q.push(10), push_result::ok);
    EXPECT_EQ(q.push(11), push_result::ok);
    int victim = -1;
    EXPECT_EQ(q.push(12, &victim), push_result::dropped);
    EXPECT_EQ(victim, 10);
    EXPECT_EQ(q.pop(), 11);
    EXPECT_EQ(q.pop(), 12);
}

TEST(BoundedQueue, BlockPolicyWaitsForSpace)
{
    bounded_queue<int> q{1, backpressure::block};
    EXPECT_EQ(q.push(1), push_result::ok);
    std::atomic<bool> pushed{false};
    std::thread producer{[&] {
        EXPECT_EQ(q.push(2), push_result::ok);  // blocks until the pop below
        pushed.store(true);
    }};
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(pushed.load());
    EXPECT_EQ(q.pop(), 1);
    producer.join();
    EXPECT_TRUE(pushed.load());
    EXPECT_EQ(q.pop(), 2);
}

TEST(BoundedQueue, CloseDrainsRemainingItemsThenSignalsEmpty)
{
    bounded_queue<int> q{4};
    (void)q.push(1);
    (void)q.push(2);
    q.close();
    EXPECT_TRUE(q.closed());
    EXPECT_EQ(q.push(3), push_result::closed);
    EXPECT_EQ(q.pop(), 1);
    EXPECT_EQ(q.pop(), 2);
    EXPECT_EQ(q.pop(), std::nullopt);  // closed + empty, no blocking
}

TEST(BoundedQueue, CloseWakesBlockedProducerAndConsumer)
{
    bounded_queue<int> full{1, backpressure::block};
    (void)full.push(1);
    bounded_queue<int> empty{1};
    std::thread producer{[&] { EXPECT_EQ(full.push(2), push_result::closed); }};
    std::thread consumer{[&] { EXPECT_EQ(empty.pop(), std::nullopt); }};
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    full.close();
    empty.close();
    producer.join();
    consumer.join();
}

TEST(BoundedQueue, HighWaterTracksPeakOccupancy)
{
    bounded_queue<int> q{8};
    (void)q.push(1);
    (void)q.push(2);
    (void)q.push(3);
    (void)q.pop();
    (void)q.pop();
    (void)q.push(4);
    EXPECT_EQ(q.high_water(), 3u);
}

TEST(TwoLevelQueue, InteractiveJumpsTheBatchBacklog)
{
    two_level_queue<int> q{8};
    (void)q.push(100, priority::batch);
    (void)q.push(101, priority::batch);
    (void)q.push(1, priority::interactive);
    auto p = q.pop();
    ASSERT_TRUE(p);
    EXPECT_EQ(p->item, 1);
    EXPECT_EQ(p->prio, priority::interactive);
    EXPECT_FALSE(p->promoted);
    EXPECT_EQ(q.pop()->item, 100);  // then batch, FIFO within the level
    EXPECT_EQ(q.pop()->item, 101);
}

TEST(TwoLevelQueue, FifoWithinEachLevel)
{
    two_level_queue<int> q{8};
    for (int i = 0; i < 3; ++i) (void)q.push(int{i}, priority::interactive);
    for (int i = 10; i < 13; ++i) (void)q.push(int{i}, priority::batch);
    for (int want : {0, 1, 2, 10, 11, 12}) EXPECT_EQ(q.pop()->item, want);
}

TEST(TwoLevelQueue, PromotesBatchAfterConsecutiveBypassingPops)
{
    // promote_after = 2: every third pop under sustained interactive load
    // must deliver a (promoted) batch item.
    two_level_queue<int> q{16, backpressure::block, 2};
    for (int i = 0; i < 6; ++i) (void)q.push(int{i}, priority::interactive);
    (void)q.push(100, priority::batch);
    (void)q.push(101, priority::batch);

    std::vector<int> order;
    std::vector<bool> promoted;
    while (auto p = q.try_pop()) {
        order.push_back(p->item);
        promoted.push_back(p->promoted);
    }
    EXPECT_EQ(order, (std::vector<int>{0, 1, 100, 2, 3, 101, 4, 5}));
    EXPECT_EQ(promoted, (std::vector<bool>{false, false, true, false, false, true,
                                           false, false}));
    EXPECT_EQ(q.promoted(), 2u);
}

TEST(TwoLevelQueue, EmptyBatchLevelAccruesNoStarvationGrievance)
{
    // Interactive pops with nothing to bypass must not bank promotion credit:
    // batch work arriving later still waits out the full threshold.
    two_level_queue<int> q{16, backpressure::block, 2};
    for (int i = 0; i < 4; ++i) (void)q.push(int{i}, priority::interactive);
    EXPECT_EQ(q.pop()->item, 0);
    EXPECT_EQ(q.pop()->item, 1);  // two pops, no batch waiting
    (void)q.push(100, priority::batch);
    EXPECT_EQ(q.pop()->item, 2);  // bypass #1
    EXPECT_EQ(q.pop()->item, 3);  // bypass #2
    (void)q.push(4, priority::interactive);
    auto p = q.pop();  // threshold reached: batch promoted past item 4
    EXPECT_EQ(p->item, 100);
    EXPECT_TRUE(p->promoted);
    EXPECT_EQ(q.pop()->item, 4);
}

TEST(TwoLevelQueue, BatchPopWithoutBypassIsNotAPromotion)
{
    two_level_queue<int> q{8};
    (void)q.push(100, priority::batch);
    auto p = q.pop();  // no interactive waiting: plain pop, no promotion
    EXPECT_EQ(p->prio, priority::batch);
    EXPECT_FALSE(p->promoted);
    EXPECT_EQ(q.promoted(), 0u);
}

TEST(TwoLevelQueue, DropOldestEvictsOldestBatchBeforeAnyInteractive)
{
    two_level_queue<int> q{3, backpressure::drop_oldest};
    (void)q.push(100, priority::batch);
    (void)q.push(1, priority::interactive);
    (void)q.push(101, priority::batch);
    int victim = -1;
    priority victim_prio = priority::interactive;
    // Full queue: the victim is the oldest *batch* item even though the
    // oldest item overall is batch 100 < interactive 1 < batch 101 — and even
    // when the incoming item is interactive.
    EXPECT_EQ(q.push(2, priority::interactive, &victim, &victim_prio),
              push_result::dropped);
    EXPECT_EQ(victim, 100);
    EXPECT_EQ(victim_prio, priority::batch);
    // Still full, one batch left: batch evicted again.
    EXPECT_EQ(q.push(3, priority::interactive, &victim, &victim_prio),
              push_result::dropped);
    EXPECT_EQ(victim, 101);
    EXPECT_EQ(victim_prio, priority::batch);
    // No batch left: only now does an interactive item get sacrificed.
    EXPECT_EQ(q.push(4, priority::interactive, &victim, &victim_prio),
              push_result::dropped);
    EXPECT_EQ(victim, 1);
    EXPECT_EQ(victim_prio, priority::interactive);
}

TEST(TwoLevelQueue, SharedCapacityAndRejectAcrossLevels)
{
    two_level_queue<int> q{2, backpressure::reject};
    EXPECT_EQ(q.push(1, priority::interactive), push_result::ok);
    EXPECT_EQ(q.push(100, priority::batch), push_result::ok);
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.size(priority::interactive), 1u);
    EXPECT_EQ(q.size(priority::batch), 1u);
    // The bound spans both levels: either class is refused when full.
    EXPECT_EQ(q.push(2, priority::interactive), push_result::rejected);
    EXPECT_EQ(q.push(101, priority::batch), push_result::rejected);
    EXPECT_EQ(q.high_water(), 2u);
}

TEST(TwoLevelQueue, PerLevelCapacityRejectsIndependently)
{
    // interactive bound 1, batch bound 2, shared bound 8: each class sheds at
    // its own limit while the other still has headroom.
    two_level_queue<int> q{8, backpressure::reject, 8,
                           runtime::level_capacities{1, 2}};
    EXPECT_EQ(q.capacity(), 8u);
    EXPECT_EQ(q.capacity(priority::interactive), 1u);
    EXPECT_EQ(q.capacity(priority::batch), 2u);
    EXPECT_EQ(q.push(1, priority::interactive), push_result::ok);
    EXPECT_EQ(q.push(2, priority::interactive), push_result::rejected);
    EXPECT_EQ(q.push(100, priority::batch), push_result::ok);
    EXPECT_EQ(q.push(101, priority::batch), push_result::ok);
    EXPECT_EQ(q.push(102, priority::batch), push_result::rejected);
    // Draining one level frees its bound without touching the other's.
    EXPECT_EQ(q.pop()->item, 1);
    EXPECT_EQ(q.push(3, priority::interactive), push_result::ok);
    EXPECT_EQ(q.push(103, priority::batch), push_result::rejected);
}

TEST(TwoLevelQueue, DropOldestChargesEvictedPriority)
{
    // Regression: with a per-level bound, the victim must come from the level
    // that is actually over its bound — evicting from the other level would
    // free no room for the incoming item — and the reported victim priority
    // must name that level.  (Previously the oldest batch item was always
    // sacrificed, so an interactive push over the *interactive* bound evicted
    // batch work, left the interactive level still full, and the drop was
    // charged to the wrong class.)
    two_level_queue<int> q{8, backpressure::drop_oldest, 8,
                           runtime::level_capacities{2, 2}};
    (void)q.push(100, priority::batch);  // older than any interactive item
    (void)q.push(1, priority::interactive);
    (void)q.push(2, priority::interactive);
    int victim = -1;
    priority victim_prio = priority::batch;
    EXPECT_EQ(q.push(3, priority::interactive, &victim, &victim_prio),
              push_result::dropped);
    EXPECT_EQ(victim, 1);  // oldest *interactive*, not batch 100
    EXPECT_EQ(victim_prio, priority::interactive);
    EXPECT_EQ(q.size(priority::batch), 1u);
    EXPECT_EQ(q.size(priority::interactive), 2u);
    // Over the batch bound, the victim is the oldest batch item as before.
    (void)q.push(101, priority::batch);
    EXPECT_EQ(q.push(102, priority::batch, &victim, &victim_prio),
              push_result::dropped);
    EXPECT_EQ(victim, 100);
    EXPECT_EQ(victim_prio, priority::batch);
}

TEST(TwoLevelQueue, BlockPolicyWaitsOnLevelCapacity)
{
    // A producer blocked on its level bound must wake when *that level*
    // drains, even though the shared capacity never filled.
    two_level_queue<int> q{8, backpressure::block, 8,
                           runtime::level_capacities{1, 0}};
    (void)q.push(1, priority::interactive);
    EXPECT_EQ(q.push(100, priority::batch), push_result::ok);  // not bounded
    std::atomic<bool> pushed{false};
    std::thread producer{[&] {
        EXPECT_EQ(q.push(2, priority::interactive), push_result::ok);
        pushed.store(true);
    }};
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(pushed.load());
    EXPECT_EQ(q.pop()->item, 1);
    producer.join();
    EXPECT_TRUE(pushed.load());
}

TEST(TwoLevelQueue, CloseDrainsBothLevelsThenSignalsEmpty)
{
    two_level_queue<int> q{4};
    (void)q.push(100, priority::batch);
    (void)q.push(1, priority::interactive);
    q.close();
    EXPECT_EQ(q.push(2, priority::interactive), push_result::closed);
    EXPECT_EQ(q.pop()->item, 1);
    EXPECT_EQ(q.pop()->item, 100);
    EXPECT_EQ(q.pop(), std::nullopt);  // closed + empty, no blocking
}

TEST(BoundedQueue, MpmcStressConservesAllItems)
{
    // 4 producers × 500 items through a capacity-8 queue into 4 consumers:
    // every item must come out exactly once.  (Also the TSan workout.)
    constexpr int producers = 4, consumers = 4, per_producer = 500;
    bounded_queue<int> q{8, backpressure::block};
    std::vector<std::atomic<int>> seen(producers * per_producer);
    std::vector<std::thread> threads;
    for (int p = 0; p < producers; ++p)
        threads.emplace_back([&, p] {
            for (int i = 0; i < per_producer; ++i)
                ASSERT_EQ(q.push(p * per_producer + i), push_result::ok);
        });
    for (int c = 0; c < consumers; ++c)
        threads.emplace_back([&] {
            while (auto v = q.pop()) seen[static_cast<std::size_t>(*v)].fetch_add(1);
        });
    for (int p = 0; p < producers; ++p) threads[static_cast<std::size_t>(p)].join();
    q.close();
    for (int c = 0; c < consumers; ++c)
        threads[static_cast<std::size_t>(producers + c)].join();
    for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

}  // namespace
