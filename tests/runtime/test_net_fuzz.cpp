// Wire-protocol fuzzing for the J2NE framing layer: mutated request frames
// (byte flips, truncations, splices, targeted header corruption, hostile
// progressive flags) thrown at a live in-process net::server, and mutated
// streaming response payloads thrown at the client-side parsers.  The
// contract on both sides: a typed status / nullopt / documented exception or
// a clean connection close — never a crash, hang, or sanitizer report.
// Deterministic: fixed xorshift64 seeds drive every mutation, so failures
// replay exactly.
//
// Iteration count scales with the FUZZ_ITERS environment variable (default
// 150 per direction); CI's nightly schedule raises it.
#include <runtime/net/client.hpp>
#include <runtime/net/server.hpp>

#include <ccsds/ccsds123.hpp>
#include <j2k/j2k.hpp>

#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

namespace {

namespace net = runtime::net;

/// xorshift64: tiny, deterministic, good enough to drive mutations.
class xorshift64 {
public:
    explicit xorshift64(std::uint64_t seed) : s_{seed ? seed : 0x9E3779B97F4A7C15ull}
    {
    }
    std::uint64_t next()
    {
        s_ ^= s_ << 13;
        s_ ^= s_ >> 7;
        s_ ^= s_ << 17;
        return s_;
    }
    /// Uniform-ish value in [0, n).
    std::size_t below(std::size_t n) { return n ? next() % n : 0; }

private:
    std::uint64_t s_;
};

int fuzz_iters()
{
    if (const char* env = std::getenv("FUZZ_ITERS")) {
        const int v = std::atoi(env);
        if (v > 0) return v;
    }
    return 150;
}

std::vector<std::uint8_t> make_stream(int layers)
{
    j2k::codec_params p;
    p.tile_width = 32;
    p.tile_height = 32;
    p.quality_layers = layers;
    return j2k::encode(j2k::make_test_image(64, 64, 1), p);
}

/// One framed request (header + payload) ready for mutation.
std::vector<std::uint8_t> make_frame(const std::vector<std::uint8_t>& cs,
                                     bool progressive)
{
    net::request_header h;
    h.priority_raw = 0;
    h.format_raw = 0;
    h.flags = progressive ? net::k_flag_progressive : 0;
    h.request_id = 1;
    h.payload_len = static_cast<std::uint32_t>(cs.size());
    std::vector<std::uint8_t> frame(net::k_header_size);
    net::encode_request_header(h, frame.data());
    frame.insert(frame.end(), cs.begin(), cs.end());
    return frame;
}

/// Apply one randomly chosen mutation, skewed toward the 20-byte header
/// where a flipped byte changes framing control flow rather than payload.
std::vector<std::uint8_t> mutate(const std::vector<std::uint8_t>& seed,
                                 xorshift64& rng)
{
    std::vector<std::uint8_t> out = seed;
    switch (rng.below(6)) {
    case 0: {  // flip 1..8 random bytes anywhere
        const std::size_t flips = 1 + rng.below(8);
        for (std::size_t i = 0; i < flips && !out.empty(); ++i)
            out[rng.below(out.size())] ^=
                static_cast<std::uint8_t>(1 + rng.below(255));
        break;
    }
    case 1: {  // corrupt the frame header specifically
        const std::size_t region = std::min<std::size_t>(out.size(),
                                                         net::k_header_size);
        const std::size_t flips = 1 + rng.below(4);
        for (std::size_t i = 0; i < flips && region; ++i)
            out[rng.below(region)] ^=
                static_cast<std::uint8_t>(1 + rng.below(255));
        break;
    }
    case 2:  // truncate to a random prefix (possibly empty)
        out.resize(rng.below(out.size() + 1));
        break;
    case 3: {  // splice: overwrite a run with bytes from elsewhere
        if (out.size() > 8) {
            const std::size_t len = 1 + rng.below(out.size() / 4);
            const std::size_t dst = rng.below(out.size() - len);
            const std::size_t src = rng.below(out.size() - len);
            for (std::size_t i = 0; i < len; ++i) out[dst + i] = out[src + i];
        }
        break;
    }
    case 4: {  // insert random garbage mid-frame
        const std::size_t at = rng.below(out.size() + 1);
        const std::size_t len = 1 + rng.below(32);
        std::vector<std::uint8_t> junk(len);
        for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
        out.insert(out.begin() + static_cast<std::ptrdiff_t>(at), junk.begin(),
                   junk.end());
        break;
    }
    default: {  // delete a random run
        if (out.size() > 4) {
            const std::size_t len = 1 + rng.below(out.size() / 2);
            const std::size_t at = rng.below(out.size() - len);
            out.erase(out.begin() + static_cast<std::ptrdiff_t>(at),
                      out.begin() + static_cast<std::ptrdiff_t>(at + len));
        }
        break;
    }
    }
    return out;
}

/// Read exactly `len` bytes.  Returns bytes read; < len means clean EOF.
/// The socket carries a receive timeout — expiry fails the test (a hang).
std::size_t recv_upto(int fd, std::uint8_t* data, std::size_t len)
{
    std::size_t off = 0;
    while (off < len) {
        const ssize_t n = ::recv(fd, data + off, len - off, 0);
        if (n < 0) {
            if (errno == EINTR) continue;
            EXPECT_TRUE(errno != EAGAIN && errno != EWOULDBLOCK)
                << "server hung: no response and no close within the timeout";
            return off;  // timeout or reset — either way, stop reading
        }
        if (n == 0) return off;  // clean close
        off += static_cast<std::size_t>(n);
    }
    return off;
}

/// Throw one mutated frame at the server: every byte that comes back must
/// parse as well-formed response frames until the server closes the
/// connection; a receive timeout (hang) fails.
void expect_clean_exchange(std::uint16_t port,
                           const std::vector<std::uint8_t>& frame,
                           std::uint64_t iter)
{
    net::client cli{"127.0.0.1", port};
    timeval tv{};
    tv.tv_sec = 10;  // generous: decode of a surviving frame counts too
    ::setsockopt(cli.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);

    std::size_t off = 0;
    while (off < frame.size()) {
        const ssize_t n =
            ::send(cli.fd(), frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
        if (n < 0) return;  // server already refused and closed — fine
        off += static_cast<std::size_t>(n);
    }
    cli.shutdown_write();  // EOF ends any wait for missing payload bytes

    for (;;) {
        std::uint8_t hdr[net::k_header_size];
        const std::size_t got = recv_upto(cli.fd(), hdr, sizeof hdr);
        if (got == 0) return;  // clean close
        ASSERT_EQ(got, sizeof hdr) << "iter " << iter << ": torn response header";
        const auto h = net::decode_response_header(hdr);
        ASSERT_TRUE(h) << "iter " << iter << ": malformed response header";
        std::vector<std::uint8_t> payload(h->payload_len);
        if (h->payload_len)
            ASSERT_EQ(recv_upto(cli.fd(), payload.data(), payload.size()),
                      payload.size())
                << "iter " << iter << ": torn response payload";
        if (h->st == net::status::streaming)
            EXPECT_TRUE(net::decode_layer_header(payload))
                << "iter " << iter << ": streaming frame without a sub-header";
    }
}

TEST(NetFuzz, MutatedRequestFramesNeverCrashOrHangTheServer)
{
    net::server_config cfg;
    cfg.service.workers = 2;
    cfg.max_payload = 1u << 20;
    net::server srv{cfg};
    srv.start();

    const std::vector<std::uint8_t> plain = make_stream(1);
    const std::vector<std::vector<std::uint8_t>> seeds = {
        make_frame(plain, false),
        make_frame(make_stream(4), true),  // progressive: streamed responses
    };
    const int iters = fuzz_iters();
    std::uint64_t iter = 0;
    for (std::size_t s = 0; s < seeds.size(); ++s) {
        xorshift64 rng{0xF8A3EDull * (s + 1)};
        for (int i = 0; i < iters; ++i, ++iter)
            expect_clean_exchange(srv.port(), mutate(seeds[s], rng), iter);
        if (HasFatalFailure()) break;
    }

    // Frames that survived mutation were admitted as real decode jobs; the
    // server keeps draining them after their connections vanish.  Wait for
    // the backlog so the health check below isn't shed by a full queue.
    for (int spin = 0; spin < 3000; ++spin) {
        const auto m = srv.service().metrics();
        if (m.jobs_submitted == m.jobs_completed + m.jobs_failed +
                                    m.jobs_rejected + m.jobs_dropped)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }

    // The server survived the barrage and still serves valid traffic.
    net::client cli{"127.0.0.1", srv.port()};
    const auto r = cli.decode({plain, 0, net::result_format::raw, 99});
    ASSERT_TRUE(r.ok()) << net::status_name(r.st) << ": " << r.message() << "\n"
                        << srv.service().metrics().dump();
    EXPECT_EQ(net::decode_image_raw(r.payload), j2k::decoder{plain}.decode_all());
    srv.stop();
}

/// Codec-byte sweep on one live connection: every possible codec id on an
/// otherwise valid frame.  Known codecs answer ok or a typed decode error
/// (a j2k payload is garbage to ccsds — that is malformed_codestream, not a
/// crash); every unknown id is a typed unsupported_codec rejection.  The
/// connection must survive all 256, because a structurally valid frame never
/// costs the client its connection.
TEST(NetFuzz, CodecByteSweepAnswersTypedOnOneSurvivingConnection)
{
    net::server_config cfg;
    cfg.service.workers = 2;
    net::server srv{cfg};
    srv.start();
    const auto cs = make_stream(1);
    const j2k::image serial = j2k::decoder{cs}.decode_all();

    net::client cli{"127.0.0.1", srv.port()};
    for (int c = 0; c < 256; ++c) {
        net::request r;
        r.codestream = cs;
        r.request_id = static_cast<std::uint32_t>(c);
        r.codec = static_cast<std::uint8_t>(c);
        const auto resp = cli.decode(r);
        EXPECT_EQ(resp.request_id, static_cast<std::uint32_t>(c));
        EXPECT_EQ(resp.codec, static_cast<std::uint8_t>(c))
            << "response must echo the request codec byte";
        if (c == 0) {
            ASSERT_TRUE(resp.ok()) << resp.message();
            EXPECT_EQ(net::decode_image_raw(resp.payload), serial);
        } else if (c == 1) {
            EXPECT_EQ(resp.st, net::status::malformed_codestream)
                << "codec " << c << ": " << resp.message();
        } else {
            EXPECT_EQ(resp.st, net::status::unsupported_codec)
                << "codec " << c << ": " << resp.message();
            EXPECT_FALSE(resp.message().empty());
        }
    }
    srv.stop();
}

/// Codec/flag mismatch: progressive streaming requested from a codec whose
/// capabilities say no.  Typed rejection, connection survives, and a plain
/// decode of the same bytes still succeeds afterwards.
TEST(NetFuzz, ProgressiveFlagOnNonProgressiveCodecIsTypedNotFatal)
{
    net::server_config cfg;
    cfg.service.workers = 2;
    net::server srv{cfg};
    srv.start();

    const codec::image cube = codec::make_test_image(24, 16, 4, 16, 17);
    const auto cs = ccsds::encode(cube);

    net::client cli{"127.0.0.1", srv.port()};
    net::request r;
    r.codestream = cs;
    r.request_id = 5;
    r.codec = ccsds::k_codec_wire_id;
    r.progressive = true;
    const auto rej = cli.decode(r);
    EXPECT_EQ(rej.st, net::status::unsupported_codec) << rej.message();
    EXPECT_FALSE(rej.message().empty());

    r.progressive = false;
    r.request_id = 6;
    const auto ok = cli.decode(r);
    ASSERT_TRUE(ok.ok()) << ok.message();
    EXPECT_EQ(net::decode_image_raw(ok.payload), cube);
    srv.stop();
}

/// Client-side parsers against mutated streaming payloads: the layer
/// sub-header validates or rejects, and the raw-image parser either returns
/// an image or throws std::runtime_error — nothing else escapes.
TEST(NetFuzz, MutatedStreamingPayloadsNeverEscapeTheParserContract)
{
    const j2k::image img = j2k::make_test_image(33, 17, 3);
    std::vector<std::uint8_t> payload(net::k_layer_header_size);
    net::encode_layer_header({2, 3, 0}, payload.data());
    const auto raw = net::encode_image_raw(img);
    payload.insert(payload.end(), raw.begin(), raw.end());

    xorshift64 rng{0x57E4Aull};
    const int iters = fuzz_iters();
    for (int i = 0; i < iters; ++i) {
        const auto bytes = mutate(payload, rng);
        const auto lh = net::decode_layer_header(bytes);
        if (!lh) continue;  // rejected — fine
        EXPECT_GE(lh->layer, 1) << "iter " << i;
        EXPECT_LE(lh->layer, lh->total) << "iter " << i;
        try {
            const j2k::image out = net::decode_image_raw(
                std::span<const std::uint8_t>{bytes}.subspan(
                    net::k_layer_header_size));
            EXPECT_GT(out.width(), 0) << "iter " << i;
            EXPECT_GT(out.height(), 0) << "iter " << i;
        } catch (const std::runtime_error&) {
            // Documented failure mode for malformed payloads.
        }
    }
}

/// Truncated streaming responses: every prefix of a valid streamed reply
/// must part cleanly at the client — a complete well-formed frame, or a
/// header/payload rejection, never a crash.
TEST(NetFuzz, TruncatedStreamedResponsesPartCleanly)
{
    std::vector<std::uint8_t> wire(net::k_header_size);
    const j2k::image img = j2k::make_test_image(16, 16, 1);
    std::vector<std::uint8_t> payload(net::k_layer_header_size);
    net::encode_layer_header({1, 1, 1}, payload.data());
    const auto raw = net::encode_image_raw(img);
    payload.insert(payload.end(), raw.begin(), raw.end());
    net::response_header rh;
    rh.st = net::status::streaming;
    rh.request_id = 7;
    rh.payload_len = static_cast<std::uint32_t>(payload.size());
    net::encode_response_header(rh, wire.data());
    wire.insert(wire.end(), payload.begin(), payload.end());

    for (std::size_t cut = 0; cut <= wire.size(); ++cut) {
        const std::span<const std::uint8_t> prefix{wire.data(), cut};
        const auto h = net::decode_response_header(prefix);
        if (cut < net::k_header_size) {
            EXPECT_FALSE(h) << "cut " << cut;
            continue;
        }
        ASSERT_TRUE(h) << "cut " << cut;
        const auto body = prefix.subspan(net::k_header_size);
        if (body.size() < h->payload_len) continue;  // frame incomplete: wait
        const auto lh = net::decode_layer_header(body);
        ASSERT_TRUE(lh) << "cut " << cut;
        EXPECT_NO_THROW(
            (void)net::decode_image_raw(body.subspan(net::k_layer_header_size)))
            << "cut " << cut;
    }
}

}  // namespace
