// work_deque — Chase–Lev semantics: owner LIFO pop, thief FIFO steal, ring
// growth, and an owner-vs-thieves stress that TSan re-checks in CI.
#include <runtime/work_deque.hpp>

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

namespace {

using runtime::work_deque;

TEST(WorkDeque, OwnerPopsLifo)
{
    work_deque<int> d;
    int a = 1, b = 2, c = 3;
    d.push(&a);
    d.push(&b);
    d.push(&c);
    EXPECT_EQ(d.pop(), &c);
    EXPECT_EQ(d.pop(), &b);
    EXPECT_EQ(d.pop(), &a);
    EXPECT_EQ(d.pop(), nullptr);
    EXPECT_EQ(d.pop(), nullptr);  // stays empty after underflow bookkeeping
}

TEST(WorkDeque, ThiefStealsFifo)
{
    work_deque<int> d;
    int a = 1, b = 2, c = 3;
    d.push(&a);
    d.push(&b);
    d.push(&c);
    EXPECT_EQ(d.steal(), &a);  // oldest first
    EXPECT_EQ(d.steal(), &b);
    EXPECT_EQ(d.pop(), &c);  // owner takes the newest
    EXPECT_EQ(d.steal(), nullptr);
}

TEST(WorkDeque, LastElementGoesToExactlyOneSide)
{
    work_deque<int> d;
    int a = 1;
    d.push(&a);
    EXPECT_EQ(d.pop(), &a);
    EXPECT_EQ(d.steal(), nullptr);
}

TEST(WorkDeque, GrowthPreservesEveryElement)
{
    // Push far past the initial ring capacity; both ends must still see every
    // element exactly once.
    constexpr int n = 1000;
    work_deque<int> d{4};
    std::vector<int> vals(n);
    for (int i = 0; i < n; ++i) {
        vals[static_cast<std::size_t>(i)] = i;
        d.push(&vals[static_cast<std::size_t>(i)]);
    }
    std::vector<int> seen(n, 0);
    for (int i = 0; i < n / 2; ++i) ++seen[static_cast<std::size_t>(*d.steal())];
    while (int* p = d.pop()) ++seen[static_cast<std::size_t>(*p)];
    for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(WorkDeque, StressOwnerVsThievesConservesAllItems)
{
    // One owner pushing and popping against 3 thieves: every item must be
    // claimed exactly once across both ends.  (Also the TSan workout for the
    // Chase–Lev memory-order recipe.)
    constexpr int n = 20000;
    constexpr int thieves = 3;
    work_deque<int> d{8};
    std::vector<int> vals(n);
    std::vector<std::atomic<int>> seen(n);
    std::atomic<bool> done{false};

    std::vector<std::thread> ts;
    for (int t = 0; t < thieves; ++t)
        ts.emplace_back([&] {
            while (!done.load(std::memory_order_acquire)) {
                if (int* p = d.steal()) seen[static_cast<std::size_t>(*p)].fetch_add(1);
            }
            while (int* p = d.steal()) seen[static_cast<std::size_t>(*p)].fetch_add(1);
        });

    for (int i = 0; i < n; ++i) {
        vals[static_cast<std::size_t>(i)] = i;
        d.push(&vals[static_cast<std::size_t>(i)]);
        if (i % 3 == 0) {
            if (int* p = d.pop()) seen[static_cast<std::size_t>(*p)].fetch_add(1);
        }
    }
    while (int* p = d.pop()) seen[static_cast<std::size_t>(*p)].fetch_add(1);
    done.store(true, std::memory_order_release);
    for (auto& t : ts) t.join();

    for (int i = 0; i < n; ++i)
        ASSERT_EQ(seen[static_cast<std::size_t>(i)].load(), 1) << "item " << i;
}

}  // namespace
